package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBTBMonomorphicSite(t *testing.T) {
	b := NewBTB(DirectMapped(16))
	if b.Lookup(0x100, 0x200).Hit() {
		t.Error("cold BTB lookup should miss")
	}
	for i := 0; i < 10; i++ {
		if !b.Lookup(0x100, 0x200).Hit() {
			t.Error("stable target should always predict after training")
		}
	}
	hits, misses := b.Stats()
	if hits != 10 || misses != 1 {
		t.Errorf("stats = %d/%d, want 10/1", hits, misses)
	}
}

func TestBTBPolymorphicSite(t *testing.T) {
	b := NewBTB(DirectMapped(16))
	// Alternating targets at one site never predict.
	for i := 0; i < 10; i++ {
		if b.Lookup(0x100, uint32(0x200+(i%2)*0x100)).Hit() {
			t.Error("alternating targets must mispredict")
		}
	}
}

func TestBTBAliasing(t *testing.T) {
	b := NewBTB(DirectMapped(4)) // sites 4*4=16 bytes apart alias
	b.Lookup(0x0, 0xa)
	b.Lookup(0x10, 0xb) // evicts site 0x0's entry
	if b.Lookup(0x0, 0xa).Hit() {
		t.Error("aliased site should have been evicted")
	}
}

func TestBTBDistinctSites(t *testing.T) {
	b := NewBTB(DirectMapped(64))
	for site := uint32(0); site < 32; site++ {
		b.Lookup(site*4, site+0x1000)
	}
	for site := uint32(0); site < 32; site++ {
		if !b.Lookup(site*4, site+0x1000).Hit() {
			t.Errorf("site %d should predict", site)
		}
	}
}

func TestBTBTagCheck(t *testing.T) {
	// Two sites mapping to the same entry must not predict each other's
	// target even when the target matches.
	b := NewBTB(DirectMapped(4))
	b.Lookup(0x0, 0xa)
	if b.Lookup(0x10, 0xa).Hit() {
		t.Error("different site must not hit despite equal target")
	}
}

func TestNewBTBPanicsOnBadGeometry(t *testing.T) {
	bad := []BTBConfig{
		{},                             // zero sets/ways/levels
		DirectMapped(0),                // zero sets
		DirectMapped(-1),               // negative sets
		DirectMapped(3),                // non-power-of-two sets
		{Sets: 16, Ways: 3, Levels: 1}, // non-power-of-two ways
		{Sets: 16, Ways: 1, Levels: 0}, // zero levels
		{Sets: 16, Ways: 1, Levels: 3}, // too many levels
		{Sets: 16, Ways: 1, Levels: 2}, // missing L2 geometry
		{Sets: 16, Ways: 1, Levels: 1, L2Sets: 8, L2Ways: 1},   // L2 geometry without level 2
		{Sets: 16, Ways: 1, Levels: 1, SiteShift: 99},          // absurd shift
		{Sets: 16, Ways: 1, Levels: 1, Hash: numBTBHash},       // unknown hash
		{Sets: 16, Ways: 1, Levels: 1, Replace: numBTBReplace}, // unknown policy
	}
	for _, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBTB(%+v) should panic", cfg)
				}
			}()
			NewBTB(cfg)
		}()
	}
}

func TestNewRASPanicsOnBadGeometry(t *testing.T) {
	bad := []RASConfig{
		{},                                   // zero depth
		{Depth: -4},                          // negative depth
		{Depth: 8, Overflow: numRASOverflow}, // unknown overflow
		{Depth: 8, Repair: numRASRepair},     // unknown repair
	}
	for _, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRAS(%+v) should panic", cfg)
				}
			}()
			NewRAS(cfg)
		}()
	}
}

func TestRASBalancedCalls(t *testing.T) {
	r := NewRAS(FixedDepth(16))
	// Property: balanced call/return nesting within depth predicts 100%.
	var walk func(depth int, addr uint32)
	walk = func(depth int, addr uint32) {
		if depth == 0 {
			return
		}
		r.Push(addr)
		walk(depth-1, addr+4)
		if !r.Pop(addr) {
			t.Errorf("balanced return to %#x mispredicted", addr)
		}
	}
	for i := 0; i < 50; i++ {
		walk(10, uint32(i*0x100))
	}
	hits, misses := r.Stats()
	if misses != 0 {
		t.Errorf("balanced nesting: %d misses", misses)
	}
	if hits != 500 {
		t.Errorf("hits = %d, want 500", hits)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(FixedDepth(4))
	for i := uint32(0); i < 6; i++ {
		r.Push(i)
	}
	// Deepest two entries (0, 1) were overwritten; 5,4,3,2 remain.
	for _, want := range []uint32{5, 4, 3, 2} {
		if !r.Pop(want) {
			t.Errorf("expected hit for %d", want)
		}
	}
	if r.Pop(1) {
		t.Error("overwritten entry should mispredict")
	}
}

func TestRASEmptyPopMisses(t *testing.T) {
	r := NewRAS(FixedDepth(8))
	if r.Pop(0x100) {
		t.Error("empty RAS must mispredict")
	}
	r.Push(0x1)
	r.Pop(0x1)
	if r.Pop(0x1) {
		t.Error("drained RAS must mispredict")
	}
}

func TestRASMismatchedReturn(t *testing.T) {
	r := NewRAS(FixedDepth(8))
	r.Push(0x100)
	if r.Pop(0x104) {
		t.Error("wrong return address must mispredict")
	}
}

func TestResetClearsState(t *testing.T) {
	b := NewBTB(BTBConfig{Sets: 4, Ways: 2, Levels: 2, L2Sets: 4, L2Ways: 2, SiteShift: 2})
	b.Lookup(0x100, 0x200)
	b.Reset()
	if h, m := b.Stats(); h != 0 || m != 0 {
		t.Error("BTB Reset did not clear stats")
	}
	if b.Lookup(0x100, 0x200).Hit() {
		t.Error("BTB Reset did not clear entries")
	}

	r := NewRAS(RASConfig{Depth: 8, Overflow: OverflowDrop, Repair: RepairFull})
	r.Push(0x1)
	r.Reset()
	if r.Pop(0x1) {
		t.Error("RAS Reset did not clear the stack")
	}
	if r.Drops() != 0 || r.Depth() != 0 {
		t.Error("RAS Reset did not clear drops/depth")
	}
}

func TestStatsConservation(t *testing.T) {
	// Property: hits+misses equals the number of Lookup/Pop calls.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBTB(DirectMapped(32))
		r := NewRAS(FixedDepth(8))
		pops := 0
		lookups := 0
		for i := 0; i < int(n); i++ {
			switch rng.Intn(3) {
			case 0:
				b.Lookup(rng.Uint32()&0xfff, rng.Uint32()&0xfff)
				lookups++
			case 1:
				r.Push(rng.Uint32())
			case 2:
				r.Pop(rng.Uint32() & 0xf)
				pops++
			}
		}
		bh, bm := b.Stats()
		rh, rm := r.Stats()
		return int(rh+rm) == pops && int(bh+bm) == lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
