// Microbenchmark-style validation probes for the predictor models.
//
// Each probe is the simulation-side analogue of the guest programs BTB
// reverse-engineering work runs on real silicon: a synthetic site/target
// stream crafted so one geometry property (capacity, associativity,
// index hashing, level promotion, RAS depth, dispatch corruption, repair
// policy) fully determines the hit/miss counts, which the probe states in
// closed form. A model change that silently alters predictor semantics
// breaks a probe's exact expectation rather than nudging an end-to-end
// slowdown ratio nobody rechecks.
package predictor

// ProbeCounts is the observable outcome of a probe run: predictor event
// counts, exact, no rates.
type ProbeCounts struct {
	Hits   uint64 // BTB level-1 hits, or RAS hits
	L2Hits uint64 // BTB level-2 hits (zero for RAS probes)
	Misses uint64
	Drops  uint64 // RAS pushes discarded by OverflowDrop
}

// Probe is one self-contained predictor experiment with a closed-form
// expected outcome.
type Probe struct {
	Name     string // slash-qualified identifier, e.g. "btb/capacity-fits"
	Property string // geometry property the probe isolates
	Doc      string // what the stream does and why the expectation holds
	Run      func() (got, want ProbeCounts)
}

// Distinct Property values; Probes() covers each at least once.
const (
	PropCapacity      = "btb-capacity"
	PropAssociativity = "btb-associativity"
	PropIndexGeometry = "btb-index-geometry"
	PropMultiLevel    = "btb-multi-level"
	PropRASDepth      = "ras-depth-overflow"
	PropRASCorruption = "ras-dispatch-corruption"
	PropRASRepair     = "ras-repair"
)

func btbCounts(b *BTB) ProbeCounts {
	l1, l2, m := b.LevelStats()
	return ProbeCounts{Hits: l1, L2Hits: l2, Misses: m}
}

func rasCounts(r *RAS) ProbeCounts {
	h, m := r.Stats()
	return ProbeCounts{Hits: h, Misses: m, Drops: r.Drops()}
}

// site returns the i-th word-aligned branch-site address.
func site(i int) uint32 { return 0x1000 + uint32(i)*4 }

// target returns a distinct stable target for the i-th site.
func target(i int) uint32 { return 0x8000 + uint32(i)*16 }

// Probes returns the validation suite. Every probe's want counts are
// derived in its Doc; the table-driven test asserts got == want exactly.
func Probes() []Probe {
	const rounds = 8
	return []Probe{
		{
			Name:     "btb/capacity-fits",
			Property: PropCapacity,
			Doc: "32 monomorphic sites cycle through a 16-set x 2-way BTB (capacity 32). " +
				"Round 1 is compulsory misses; every later round hits: misses = 32, hits = 32*(rounds-1).",
			Run: func() (ProbeCounts, ProbeCounts) {
				b := NewBTB(BTBConfig{Sets: 16, Ways: 2, Levels: 1, SiteShift: 2})
				for r := 0; r < rounds; r++ {
					for i := 0; i < 32; i++ {
						b.Lookup(site(i), target(i))
					}
				}
				return btbCounts(b), ProbeCounts{Hits: 32 * (rounds - 1), Misses: 32}
			},
		},
		{
			Name:     "btb/capacity-thrash",
			Property: PropCapacity,
			Doc: "3 sites mapping to one 2-way LRU set: the working set exceeds the set by one, " +
				"so cyclic access always evicts the next site needed. Every lookup misses.",
			Run: func() (ProbeCounts, ProbeCounts) {
				b := NewBTB(BTBConfig{Sets: 1, Ways: 2, Levels: 1, SiteShift: 2})
				for r := 0; r < rounds; r++ {
					for i := 0; i < 3; i++ {
						b.Lookup(site(i), target(i))
					}
				}
				return btbCounts(b), ProbeCounts{Misses: 3 * rounds}
			},
		},
		{
			Name:     "btb/associativity-conflict",
			Property: PropAssociativity,
			Doc: "Two sites one index-stride apart alias to the same set. Direct-mapped they evict " +
				"each other every access (all misses after neither can stay resident).",
			Run: func() (ProbeCounts, ProbeCounts) {
				b := NewBTB(DirectMapped(4)) // sites 16 bytes apart alias
				for r := 0; r < rounds; r++ {
					b.Lookup(0x1000, 0xa)
					b.Lookup(0x1010, 0xb)
				}
				return btbCounts(b), ProbeCounts{Misses: 2 * rounds}
			},
		},
		{
			Name:     "btb/associativity-resolves-conflict",
			Property: PropAssociativity,
			Doc: "The same aliasing stream against 2 ways: both sites become resident, so only the " +
				"two compulsory misses remain: misses = 2, hits = 2*(rounds-1).",
			Run: func() (ProbeCounts, ProbeCounts) {
				b := NewBTB(BTBConfig{Sets: 4, Ways: 2, Levels: 1, SiteShift: 2})
				for r := 0; r < rounds; r++ {
					b.Lookup(0x1000, 0xa)
					b.Lookup(0x1010, 0xb)
				}
				return btbCounts(b), ProbeCounts{Hits: 2 * (rounds - 1), Misses: 2}
			},
		},
		{
			Name:     "btb/misaligned-sites-distinct-tags",
			Property: PropIndexGeometry,
			Doc: "Sites 0x1001 and 0x1002 differ only below SiteShift=2, so they share an index, but " +
				"tags are full addresses: with 2 ways and an identical target both train independently " +
				"and neither ever hits the other's entry. misses = 2 compulsory, hits = 2*(rounds-1).",
			Run: func() (ProbeCounts, ProbeCounts) {
				b := NewBTB(BTBConfig{Sets: 4, Ways: 2, Levels: 1, SiteShift: 2})
				for r := 0; r < rounds; r++ {
					b.Lookup(0x1001, 0xa)
					b.Lookup(0x1002, 0xa) // same target: a tag-less BTB would false-hit
				}
				return btbCounts(b), ProbeCounts{Hits: 2 * (rounds - 1), Misses: 2}
			},
		},
		{
			Name:     "btb/site-shift-moves-aliases",
			Property: PropIndexGeometry,
			Doc: "With SiteShift=4 the index stride grows to sets<<4 = 64 bytes: the pair 16 bytes " +
				"apart that thrashed a direct-mapped BTB at shift 2 now lands in different sets and " +
				"coexists, while a 64-byte-apart pair aliases and thrashes. Stream interleaves both " +
				"pairs: the near pair contributes 2 compulsory misses then hits, the far pair always misses.",
			Run: func() (ProbeCounts, ProbeCounts) {
				b := NewBTB(BTBConfig{Sets: 4, Ways: 1, Levels: 1, SiteShift: 4})
				for r := 0; r < rounds; r++ {
					b.Lookup(0x1000, 0xa) // near pair: sets 0 and 1 at shift 4
					b.Lookup(0x1010, 0xb)
					b.Lookup(0x1020, 0xc) // far pair: both set 2 at shift 4
					b.Lookup(0x1060, 0xd)
				}
				return btbCounts(b), ProbeCounts{Hits: 2 * (rounds - 1), Misses: 2 + 2*rounds}
			},
		},
		{
			Name:     "btb/two-level-promotion",
			Property: PropMultiLevel,
			Doc: "3 sites against L1 = 1x2 backed by L2 = 1x2 (exclusive). Round 1: 3 compulsory " +
				"misses, the L1 victim demotes into L2. Every later access misses L1 (the cyclic " +
				"pattern always wants the demoted site) but hits L2 and swap-promotes: " +
				"misses = 3, L2 hits = 3*(rounds-1), L1 hits = 0.",
			Run: func() (ProbeCounts, ProbeCounts) {
				b := NewBTB(BTBConfig{Sets: 1, Ways: 2, Levels: 2, L2Sets: 1, L2Ways: 2, SiteShift: 2})
				for r := 0; r < rounds; r++ {
					for i := 0; i < 3; i++ {
						b.Lookup(site(i), target(i))
					}
				}
				return btbCounts(b), ProbeCounts{L2Hits: 3 * (rounds - 1), Misses: 3}
			},
		},
		{
			Name:     "btb/two-level-capacity",
			Property: PropMultiLevel,
			Doc: "6 sites against L1 = 1x2 + L2 = 1x4: combined capacity exactly holds the working " +
				"set that thrashed a single level. After 6 compulsory misses, steady state is all " +
				"L2 hits (each access promotes, demoting the previous resident): " +
				"misses = 6, L2 hits = 6*(rounds-1).",
			Run: func() (ProbeCounts, ProbeCounts) {
				b := NewBTB(BTBConfig{Sets: 1, Ways: 2, Levels: 2, L2Sets: 1, L2Ways: 4, SiteShift: 2})
				for r := 0; r < rounds; r++ {
					for i := 0; i < 6; i++ {
						b.Lookup(site(i), target(i))
					}
				}
				return btbCounts(b), ProbeCounts{L2Hits: 6 * (rounds - 1), Misses: 6}
			},
		},
		{
			Name:     "ras/depth-within",
			Property: PropRASDepth,
			Doc: "Balanced call/return nesting to exactly the RAS depth (8): every return pops the " +
				"address just pushed. hits = 8*rounds, misses = 0.",
			Run: func() (ProbeCounts, ProbeCounts) {
				r := NewRAS(RASConfig{Depth: 8})
				for k := 0; k < rounds; k++ {
					for i := 0; i < 8; i++ {
						r.Push(site(i))
					}
					for i := 7; i >= 0; i-- {
						r.Pop(site(i))
					}
				}
				return rasCounts(r), ProbeCounts{Hits: 8 * rounds}
			},
		},
		{
			Name:     "ras/overflow-wrap",
			Property: PropRASDepth,
			Doc: "Nesting to depth 10 on an 8-deep wrapping RAS: the two outermost frames are " +
				"overwritten. The 8 innermost returns hit; the 2 outermost miss (stack drained). " +
				"Per round: hits = 8, misses = 2.",
			Run: func() (ProbeCounts, ProbeCounts) {
				r := NewRAS(RASConfig{Depth: 8, Overflow: OverflowWrap})
				for k := 0; k < rounds; k++ {
					for i := 0; i < 10; i++ {
						r.Push(site(i))
					}
					for i := 9; i >= 0; i-- {
						r.Pop(site(i))
					}
				}
				return rasCounts(r), ProbeCounts{Hits: 8 * rounds, Misses: 2 * rounds}
			},
		},
		{
			Name:     "ras/overflow-drop-repair-top",
			Property: PropRASDepth,
			Doc: "The same depth-10 nesting on an 8-deep dropping RAS with TOS repair: the two " +
				"innermost pushes are dropped (drops = 2), their returns mispredict but leave the " +
				"stack intact, and the remaining 8 returns all hit. Per round: hits = 8, misses = 2, " +
				"drops = 2 — drop+repair matches wrap on this stream.",
			Run: func() (ProbeCounts, ProbeCounts) {
				r := NewRAS(RASConfig{Depth: 8, Overflow: OverflowDrop, Repair: RepairTop})
				for k := 0; k < rounds; k++ {
					for i := 0; i < 10; i++ {
						r.Push(site(i))
					}
					for i := 9; i >= 0; i-- {
						r.Pop(site(i))
					}
				}
				return rasCounts(r), ProbeCounts{Hits: 8 * rounds, Misses: 2 * rounds, Drops: 2 * rounds}
			},
		},
		{
			Name:     "ras/overflow-drop-no-repair",
			Property: PropRASDepth,
			Doc: "Depth-10 nesting on an 8-deep dropping RAS without repair: the two mispredicted " +
				"innermost returns each consume a good frame, desynchronizing every later pop " +
				"(each return finds the frame two calls older) until the stack drains empty. " +
				"All 10 returns miss each round: hits = 0, misses = 10*rounds, drops = 2*rounds.",
			Run: func() (ProbeCounts, ProbeCounts) {
				r := NewRAS(RASConfig{Depth: 8, Overflow: OverflowDrop, Repair: RepairNone})
				for k := 0; k < rounds; k++ {
					for i := 0; i < 10; i++ {
						r.Push(site(i))
					}
					for i := 9; i >= 0; i-- {
						r.Pop(site(i))
					}
				}
				return rasCounts(r), ProbeCounts{Misses: 10 * rounds, Drops: 2 * rounds}
			},
		},
		{
			Name:     "ras/dispatch-corruption",
			Property: PropRASCorruption,
			Doc: "Guest code nests to the full RAS depth (8), then the SDT dispatcher makes 3 " +
				"helper calls of its own: on a wrapping RAS they overwrite the 3 oldest guest " +
				"frames. The dispatcher's returns hit (3), the 5 surviving guest returns hit, the " +
				"3 clobbered ones miss. Per round: hits = 8, misses = 3 — exactly why retcache/" +
				"fastret keep dispatch off the RAS.",
			Run: func() (ProbeCounts, ProbeCounts) {
				r := NewRAS(RASConfig{Depth: 8, Overflow: OverflowWrap})
				for k := 0; k < rounds; k++ {
					for i := 0; i < 8; i++ {
						r.Push(site(i)) // guest frames
					}
					for i := 0; i < 3; i++ {
						r.Push(target(i)) // dispatcher frames clobber guest frames
					}
					for i := 2; i >= 0; i-- {
						r.Pop(target(i))
					}
					for i := 7; i >= 0; i-- {
						r.Pop(site(i))
					}
				}
				return rasCounts(r), ProbeCounts{Hits: 8 * rounds, Misses: 3 * rounds}
			},
		},
		{
			Name:     "ras/repair-none",
			Property: PropRASRepair,
			Doc: "Corruption stream [push A, push B, ret X, ret B, ret A, ret A] without repair: " +
				"the spurious return consumes B, so B's real return pops A (miss, consumed), and " +
				"both returns to A find an empty stack. hits = 0, misses = 4.",
			Run: func() (ProbeCounts, ProbeCounts) {
				got := runRepairStream(RepairNone)
				return got, ProbeCounts{Misses: 4}
			},
		},
		{
			Name:     "ras/repair-top",
			Property: PropRASRepair,
			Doc: "The same stream with TOS-pointer repair: the spurious return leaves B in place, " +
				"so ret B and ret A both hit; the final duplicate ret A finds an empty stack. " +
				"hits = 2, misses = 2.",
			Run: func() (ProbeCounts, ProbeCounts) {
				got := runRepairStream(RepairTop)
				return got, ProbeCounts{Hits: 2, Misses: 2}
			},
		},
		{
			Name:     "ras/repair-full",
			Property: PropRASRepair,
			Doc: "The same stream with full repair: each mispredict rewrites the top entry with " +
				"the actual target (X, then B, then A), so only the final duplicate ret A hits " +
				"the resynchronized entry. hits = 1, misses = 3.",
			Run: func() (ProbeCounts, ProbeCounts) {
				got := runRepairStream(RepairFull)
				return got, ProbeCounts{Hits: 1, Misses: 3}
			},
		},
	}
}

// runRepairStream drives the shared repair-policy corruption stream: two
// real calls, one spurious return (target X never pushed), then the real
// returns plus one duplicate. The three policies produce three distinct
// hit/miss splits, pinning each policy's semantics.
func runRepairStream(rp RASRepair) ProbeCounts {
	const a, bAddr, x = 0x100, 0x200, 0x999
	r := NewRAS(RASConfig{Depth: 8, Repair: rp})
	r.Push(a)
	r.Push(bAddr)
	r.Pop(x)
	r.Pop(bAddr)
	r.Pop(a)
	r.Pop(a)
	return rasCounts(r)
}
