// Package predictor simulates the two hardware structures whose interaction
// with SDT dispatch the paper's cross-architecture results hinge on:
//
//   - the branch target buffer (BTB), which predicts indirect jump/call
//     targets per branch site — an SDT that funnels every indirect branch
//     through one shared dispatch jump destroys the per-site locality the
//     BTB depends on;
//   - the return address stack (RAS), which predicts returns perfectly for
//     call/return-disciplined code — an SDT that turns returns into table
//     lookups forfeits it, and "fast returns" exist to win it back.
//
// Both structures are parameterized by geometry configs (BTBConfig,
// RASConfig) so a hostarch.Model can describe anything from the flat
// direct-mapped BTB of the original cost models to the multi-level,
// set-associative organizations documented by BTB reverse-engineering work
// on real Arm cores. The closed-form behaviour of every geometry knob is
// pinned by the probe suite in probes.go.
package predictor

import "fmt"

// BTBHash selects how a branch-site address is folded into a set index.
type BTBHash int

const (
	// HashMask takes the low index bits of the shifted site address.
	HashMask BTBHash = iota
	// HashFib multiplies the shifted site by the 32-bit Fibonacci constant
	// and takes the high bits, spreading strided site layouts across sets.
	HashFib

	numBTBHash
)

func (h BTBHash) String() string {
	switch h {
	case HashMask:
		return "mask"
	case HashFib:
		return "fib"
	}
	return fmt.Sprintf("BTBHash(%d)", int(h))
}

// BTBReplace selects the within-set replacement policy.
type BTBReplace int

const (
	// ReplaceLRU evicts the least recently touched way.
	ReplaceLRU BTBReplace = iota
	// ReplaceRoundRobin evicts ways in rotation, ignoring recency.
	ReplaceRoundRobin

	numBTBReplace
)

func (r BTBReplace) String() string {
	switch r {
	case ReplaceLRU:
		return "lru"
	case ReplaceRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("BTBReplace(%d)", int(r))
}

// BTBConfig describes a set-associative, optionally two-level BTB.
//
// Level 1 is the small fast array probed on every indirect transfer. With
// Levels == 2, a larger second-level array backs it exclusively (an entry
// lives in exactly one level): an L1 miss probes L2, and an L2 hit promotes
// the entry into L1, demoting L1's victim back into L2. That is the
// micro-BTB/main-BTB split reverse-engineered on modern Arm cores.
type BTBConfig struct {
	Sets int // level-1 sets (positive power of two)
	Ways int // level-1 ways (positive power of two)

	Levels int // 1 or 2
	L2Sets int // level-2 sets; zero unless Levels == 2
	L2Ways int // level-2 ways; zero unless Levels == 2

	// SiteShift is the number of low site-address bits folded out before
	// indexing: log2 of the assumed branch-site alignment. The historical
	// implementation hardwired 2 (word-aligned sites); making it geometry
	// keeps misaligned or byte-addressed site streams from aliasing by
	// construction. Tags always use the full site address, so two sites
	// that collide on an index can never hit each other's entry.
	SiteShift int

	Hash    BTBHash
	Replace BTBReplace
}

// DirectMapped returns the geometry equivalent to the original flat BTB:
// single-level, one way per set, word-aligned sites, mask indexing.
func DirectMapped(entries int) BTBConfig {
	return BTBConfig{Sets: entries, Ways: 1, Levels: 1, SiteShift: 2}
}

// Entries returns the total capacity across levels.
func (c BTBConfig) Entries() int { return c.Sets*c.Ways + c.L2Sets*c.L2Ways }

func pow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate reports whether the geometry is well-formed.
func (c BTBConfig) Validate() error {
	if !pow2(c.Sets) {
		return fmt.Errorf("predictor: BTB sets = %d, want positive power of two", c.Sets)
	}
	if !pow2(c.Ways) {
		return fmt.Errorf("predictor: BTB ways = %d, want positive power of two", c.Ways)
	}
	switch c.Levels {
	case 1:
		if c.L2Sets != 0 || c.L2Ways != 0 {
			return fmt.Errorf("predictor: BTB level-2 geometry (%dx%d) set but Levels = 1", c.L2Sets, c.L2Ways)
		}
	case 2:
		if !pow2(c.L2Sets) {
			return fmt.Errorf("predictor: BTB L2 sets = %d, want positive power of two", c.L2Sets)
		}
		if !pow2(c.L2Ways) {
			return fmt.Errorf("predictor: BTB L2 ways = %d, want positive power of two", c.L2Ways)
		}
	default:
		return fmt.Errorf("predictor: BTB levels = %d, want 1 or 2", c.Levels)
	}
	if c.SiteShift < 0 || c.SiteShift > 16 {
		return fmt.Errorf("predictor: BTB site shift = %d, want 0..16", c.SiteShift)
	}
	if c.Hash < 0 || c.Hash >= numBTBHash {
		return fmt.Errorf("predictor: unknown BTB hash %d", int(c.Hash))
	}
	if c.Replace < 0 || c.Replace >= numBTBReplace {
		return fmt.Errorf("predictor: unknown BTB replacement policy %d", int(c.Replace))
	}
	return nil
}

// Outcome classifies one BTB lookup.
type Outcome uint8

const (
	Miss  Outcome = iota // no level predicted the target
	HitL1                // predicted by the first-level array
	HitL2                // predicted by the second-level array (promoted)
)

// Hit reports whether any level predicted the target.
func (o Outcome) Hit() bool { return o != Miss }

type btbEntry struct {
	site   uint32
	target uint32
	stamp  uint64 // recency for LRU
	valid  bool
}

// btbLevel is one set-associative array.
type btbLevel struct {
	entries  []btbEntry // sets*ways, set-major
	rr       []uint32   // per-set round-robin cursor
	mask     uint32     // sets-1
	fibShift uint32     // 32 - log2(sets), for HashFib
	ways     int
	shift    uint32 // site shift
	hash     BTBHash
	replace  BTBReplace
}

const fibMul32 = 2654435761 // 2^32 / golden ratio, as in the IBTC's fib hash

func newBTBLevel(sets, ways int, cfg BTBConfig) btbLevel {
	fibShift := uint32(32)
	for n := sets; n > 1; n >>= 1 {
		fibShift--
	}
	var rr []uint32
	if cfg.Replace == ReplaceRoundRobin {
		rr = make([]uint32, sets)
	}
	return btbLevel{
		entries:  make([]btbEntry, sets*ways),
		rr:       rr,
		mask:     uint32(sets - 1),
		fibShift: fibShift,
		ways:     ways,
		shift:    uint32(cfg.SiteShift),
		hash:     cfg.Hash,
		replace:  cfg.Replace,
	}
}

func (l *btbLevel) index(site uint32) uint32 {
	key := site >> l.shift
	if l.hash == HashFib {
		return (key * fibMul32) >> l.fibShift & l.mask
	}
	return key & l.mask
}

// find returns the set index for site and the resident entry tagged with
// site, or nil if no way in the set holds it.
func (l *btbLevel) find(site uint32) (uint32, *btbEntry) {
	set := l.index(site)
	base := int(set) * l.ways
	for i := base; i < base+l.ways; i++ {
		if e := &l.entries[i]; e.valid && e.site == site {
			return set, e
		}
	}
	return set, nil
}

// victim returns the way of set to (re)fill: an invalid way if one exists,
// else the way chosen by the replacement policy.
func (l *btbLevel) victim(set uint32) *btbEntry {
	base := int(set) * l.ways
	oldest := &l.entries[base]
	for i := base; i < base+l.ways; i++ {
		e := &l.entries[i]
		if !e.valid {
			return e
		}
		if e.stamp < oldest.stamp {
			oldest = e
		}
	}
	if l.replace == ReplaceRoundRobin {
		w := l.rr[set]
		l.rr[set] = (w + 1) % uint32(l.ways)
		return &l.entries[base+int(w)]
	}
	return oldest
}

func (l *btbLevel) reset() {
	for i := range l.entries {
		l.entries[i] = btbEntry{}
	}
	for i := range l.rr {
		l.rr[i] = 0
	}
}

// BTB is a set-associative, optionally two-level branch target buffer
// indexed by hashed site address and tagged by full site address.
//
// flat marks the degenerate geometry of the original cost models
// (single level, one way, mask indexing): with one way per set there is
// no replacement decision and no recency to track, so Lookup takes a
// branch-free direct-mapped path that costs the same as the historical
// implementation. The x86 and sparc models live on this path; the
// equivalence quick-checks in equiv_test.go pin both paths to identical
// observable behaviour.
type BTB struct {
	cfg    BTBConfig
	flat   bool
	l1     btbLevel
	l2     btbLevel
	tick   uint64
	l1hits uint64
	l2hits uint64
	misses uint64
}

// NewBTB builds a BTB with the given geometry. It panics on an invalid
// config; validate first when the geometry is untrusted.
func NewBTB(cfg BTBConfig) *BTB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	b := &BTB{
		cfg:  cfg,
		flat: cfg.Ways == 1 && cfg.Levels == 1 && cfg.Hash == HashMask,
		l1:   newBTBLevel(cfg.Sets, cfg.Ways, cfg),
	}
	if cfg.Levels == 2 {
		b.l2 = newBTBLevel(cfg.L2Sets, cfg.L2Ways, cfg)
	}
	return b
}

// Config returns the geometry the BTB was built with.
func (b *BTB) Config() BTBConfig { return b.cfg }

// Lookup simulates an indirect transfer at site jumping to target: it
// reports at which level (if any) the BTB predicted correctly, then trains.
// A tag hit with the wrong target retrains the entry in place; an L2 hit
// swaps the entry into L1 (demoting L1's victim); a full miss installs into
// L1 and demotes the victim into L2 when one exists.
func (b *BTB) Lookup(site, target uint32) Outcome {
	if b.flat {
		// Direct-mapped fast path: one candidate way, always retrain.
		// Same observable behaviour as lookupAssoc for this geometry,
		// minus the recency bookkeeping a 1-way set never uses. Kept
		// small so Lookup stays inlinable at its dispatch call sites.
		e := &b.l1.entries[(site>>b.l1.shift)&b.l1.mask]
		if e.valid && e.site == site && e.target == target {
			b.l1hits++
			return HitL1
		}
		e.site, e.target, e.valid = site, target, true
		b.misses++
		return Miss
	}
	return b.lookupAssoc(site, target)
}

// lookupAssoc is the general set-associative, optionally two-level path.
func (b *BTB) lookupAssoc(site, target uint32) Outcome {
	b.tick++
	set1, e1 := b.l1.find(site)
	if e1 != nil {
		e1.stamp = b.tick
		if e1.target == target {
			b.l1hits++
			return HitL1
		}
		e1.target = target
		b.misses++
		return Miss
	}
	if b.cfg.Levels == 2 {
		_, e2 := b.l2.find(site)
		if e2 != nil {
			e2.stamp = b.tick
			if e2.target != target {
				e2.target = target
				b.misses++
				return Miss
			}
			// Promote into L1; the displaced L1 entry moves down to L2
			// (exclusive levels: the promoted entry leaves L2).
			e2.valid = false
			b.install(&b.l1, set1, site, target)
			b.l2hits++
			return HitL2
		}
	}
	b.install(&b.l1, set1, site, target)
	b.misses++
	return Miss
}

// install fills a way of l's set with (site,target), demoting the evicted
// entry into the next level when the BTB has one.
func (b *BTB) install(l *btbLevel, set uint32, site, target uint32) {
	v := l.victim(set)
	old := *v
	*v = btbEntry{site: site, target: target, stamp: b.tick, valid: true}
	if old.valid && b.cfg.Levels == 2 && l == &b.l1 {
		set2, _ := b.l2.find(old.site)
		w := b.l2.victim(set2)
		old.stamp = b.tick
		*w = old
	}
}

// Stats returns cumulative predicted/mispredicted counts. Hits sum both
// levels; LevelStats splits them.
func (b *BTB) Stats() (hits, misses uint64) { return b.l1hits + b.l2hits, b.misses }

// LevelStats returns per-level hit counts and the miss count.
func (b *BTB) LevelStats() (l1Hits, l2Hits, misses uint64) {
	return b.l1hits, b.l2hits, b.misses
}

// Reset clears all entries and statistics.
func (b *BTB) Reset() {
	b.l1.reset()
	if b.cfg.Levels == 2 {
		b.l2.reset()
	}
	b.tick, b.l1hits, b.l2hits, b.misses = 0, 0, 0, 0
}

// RASOverflow selects what a push does to a full return address stack.
type RASOverflow int

const (
	// OverflowWrap overwrites the oldest entry (hardware circular buffer).
	OverflowWrap RASOverflow = iota
	// OverflowDrop discards the pushed address, keeping the oldest frames.
	OverflowDrop

	numRASOverflow
)

func (o RASOverflow) String() string {
	switch o {
	case OverflowWrap:
		return "wrap"
	case OverflowDrop:
		return "drop"
	}
	return fmt.Sprintf("RASOverflow(%d)", int(o))
}

// RASRepair selects what a mispredicted pop does to the stack.
type RASRepair int

const (
	// RepairNone consumes the top entry on a mispredict anyway — the
	// historical behaviour, matching a RAS that commits speculative pops.
	RepairNone RASRepair = iota
	// RepairTop restores the top-of-stack pointer on a mispredict: the
	// entry is kept for the next return (checkpointed TOS pointer).
	RepairTop
	// RepairFull restores the pointer and rewrites the top entry with the
	// actual target, resynchronizing the stack with the real call chain.
	RepairFull

	numRASRepair
)

func (r RASRepair) String() string {
	switch r {
	case RepairNone:
		return "none"
	case RepairTop:
		return "top"
	case RepairFull:
		return "full"
	}
	return fmt.Sprintf("RASRepair(%d)", int(r))
}

// RASConfig describes a return address stack.
type RASConfig struct {
	Depth    int
	Overflow RASOverflow
	Repair   RASRepair
}

// FixedDepth returns the geometry equivalent to the original RAS:
// wrap on overflow, no mispredict repair.
func FixedDepth(depth int) RASConfig { return RASConfig{Depth: depth} }

// Validate reports whether the geometry is well-formed.
func (c RASConfig) Validate() error {
	if c.Depth <= 0 {
		return fmt.Errorf("predictor: RAS depth = %d, want positive", c.Depth)
	}
	if c.Overflow < 0 || c.Overflow >= numRASOverflow {
		return fmt.Errorf("predictor: unknown RAS overflow policy %d", int(c.Overflow))
	}
	if c.Repair < 0 || c.Repair >= numRASRepair {
		return fmt.Errorf("predictor: unknown RAS repair policy %d", int(c.Repair))
	}
	return nil
}

// RAS is a fixed-depth return address stack with configurable overflow and
// mispredict-repair behaviour.
type RAS struct {
	cfg     RASConfig
	stack   []uint32
	top     int  // index of next push slot
	depth   int  // live entries, capped at len(stack)
	consume bool // Repair == RepairNone: a mispredicted pop still consumes
	rewrite bool // Repair == RepairFull: a mispredicted pop rewrites the top
	hits    uint64
	misses  uint64
	drops   uint64
}

// NewRAS builds a return address stack with the given geometry. It panics
// on an invalid config; validate first when the geometry is untrusted.
func NewRAS(cfg RASConfig) *RAS {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &RAS{
		cfg:     cfg,
		stack:   make([]uint32, cfg.Depth),
		consume: cfg.Repair == RepairNone,
		rewrite: cfg.Repair == RepairFull,
	}
}

// Config returns the geometry the RAS was built with.
func (r *RAS) Config() RASConfig { return r.cfg }

// Push records a call's return address. On a full stack, OverflowWrap
// overwrites the oldest entry and OverflowDrop discards retAddr.
func (r *RAS) Push(retAddr uint32) {
	if r.depth == len(r.stack) && r.cfg.Overflow == OverflowDrop {
		r.drops++
		return
	}
	r.stack[r.top] = retAddr
	r.top++
	if r.top == len(r.stack) {
		r.top = 0
	}
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop simulates a return to actual and reports whether the RAS predicted
// it. An empty RAS always mispredicts. On a mispredict the repair policy
// decides whether the top entry is consumed, kept, or rewritten to actual.
func (r *RAS) Pop(actual uint32) bool {
	if r.depth == 0 {
		r.misses++
		return false
	}
	i := r.top - 1
	if i < 0 {
		i = len(r.stack) - 1
	}
	if r.stack[i] == actual {
		r.top = i
		r.depth--
		r.hits++
		return true
	}
	r.misses++
	if r.consume {
		r.top = i
		r.depth--
	} else if r.rewrite {
		r.stack[i] = actual
	}
	return false
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Stats returns cumulative predicted/mispredicted counts.
func (r *RAS) Stats() (hits, misses uint64) { return r.hits, r.misses }

// Drops returns the number of pushes discarded by OverflowDrop.
func (r *RAS) Drops() uint64 { return r.drops }

// Reset empties the stack and clears statistics.
func (r *RAS) Reset() {
	r.top, r.depth, r.hits, r.misses, r.drops = 0, 0, 0, 0, 0
}
