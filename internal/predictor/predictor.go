// Package predictor simulates the two hardware structures whose interaction
// with SDT dispatch the paper's cross-architecture results hinge on:
//
//   - the branch target buffer (BTB), which predicts indirect jump/call
//     targets per branch site — an SDT that funnels every indirect branch
//     through one shared dispatch jump destroys the per-site locality the
//     BTB depends on;
//   - the return address stack (RAS), which predicts returns perfectly for
//     call/return-disciplined code — an SDT that turns returns into table
//     lookups forfeits it, and "fast returns" exist to win it back.
package predictor

// BTB is a direct-mapped branch target buffer indexed and tagged by branch
// site address.
type BTB struct {
	entries []btbEntry
	mask    uint32
	hits    uint64
	misses  uint64
}

type btbEntry struct {
	site   uint32
	target uint32
	valid  bool
}

// NewBTB builds a BTB with the given number of entries (a power of two).
func NewBTB(entries int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predictor: BTB entries must be a positive power of two")
	}
	return &BTB{entries: make([]btbEntry, entries), mask: uint32(entries - 1)}
}

// Lookup simulates an indirect transfer at site jumping to target. It
// reports whether the BTB predicted correctly, then trains the entry.
func (b *BTB) Lookup(site, target uint32) bool {
	e := &b.entries[(site>>2)&b.mask]
	hit := e.valid && e.site == site && e.target == target
	e.site, e.target, e.valid = site, target, true
	if hit {
		b.hits++
	} else {
		b.misses++
	}
	return hit
}

// Stats returns cumulative predicted/mispredicted counts.
func (b *BTB) Stats() (hits, misses uint64) { return b.hits, b.misses }

// Reset clears all entries and statistics.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = btbEntry{}
	}
	b.hits, b.misses = 0, 0
}

// RAS is a fixed-depth return address stack with wraparound, matching the
// overwrite-on-overflow behaviour of hardware return predictors.
type RAS struct {
	stack  []uint32
	top    int // index of next push slot
	depth  int // live entries, capped at len(stack)
	hits   uint64
	misses uint64
}

// NewRAS builds a return address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("predictor: RAS depth must be positive")
	}
	return &RAS{stack: make([]uint32, depth)}
}

// Push records a call's return address.
func (r *RAS) Push(retAddr uint32) {
	r.stack[r.top] = retAddr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop simulates a return to actual and reports whether the RAS predicted
// it. An empty RAS always mispredicts.
func (r *RAS) Pop(actual uint32) bool {
	if r.depth == 0 {
		r.misses++
		return false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	if r.stack[r.top] == actual {
		r.hits++
		return true
	}
	r.misses++
	return false
}

// Stats returns cumulative predicted/mispredicted counts.
func (r *RAS) Stats() (hits, misses uint64) { return r.hits, r.misses }

// Reset empties the stack and clears statistics.
func (r *RAS) Reset() {
	r.top, r.depth, r.hits, r.misses = 0, 0, 0, 0
}
