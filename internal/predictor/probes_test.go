package predictor

import "testing"

// TestProbes runs every validation probe and asserts the simulated counts
// equal the closed-form expectation exactly — no tolerances.
func TestProbes(t *testing.T) {
	for _, p := range Probes() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			got, want := p.Run()
			if got != want {
				t.Errorf("%s:\n  got  %+v\n  want %+v\ndoc: %s", p.Name, got, want, p.Doc)
			}
		})
	}
}

// TestProbeSuiteCoverage pins the acceptance shape of the suite: at least
// six distinct predictor properties, each probe documented and named.
func TestProbeSuiteCoverage(t *testing.T) {
	props := map[string]int{}
	names := map[string]bool{}
	for _, p := range Probes() {
		if p.Name == "" || p.Doc == "" || p.Property == "" {
			t.Errorf("probe %+q missing name/doc/property", p.Name)
		}
		if names[p.Name] {
			t.Errorf("duplicate probe name %q", p.Name)
		}
		names[p.Name] = true
		props[p.Property]++
	}
	want := []string{
		PropCapacity, PropAssociativity, PropIndexGeometry,
		PropMultiLevel, PropRASDepth, PropRASCorruption, PropRASRepair,
	}
	for _, w := range want {
		if props[w] == 0 {
			t.Errorf("no probe covers property %q", w)
		}
	}
	if len(props) < 6 {
		t.Errorf("suite covers %d properties, want >= 6", len(props))
	}
}

// TestProbesAreDeterministic reruns the suite and asserts identical counts:
// probes must not depend on shared or ambient state.
func TestProbesAreDeterministic(t *testing.T) {
	for _, p := range Probes() {
		a, _ := p.Run()
		b, _ := p.Run()
		if a != b {
			t.Errorf("%s not deterministic: %+v then %+v", p.Name, a, b)
		}
	}
}
