package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The pre-geometry predictor implementations, kept verbatim as reference
// oracles: a direct-mapped always-training BTB indexed by (site>>2)&mask,
// and a wrap-on-overflow RAS that consumes the top entry on every pop.
// The parameterized structures must be observationally equivalent to these
// under the legacy geometry, or every calibrated x86/sparc result moves.

type legacyBTB struct {
	entries []struct {
		site, target uint32
		valid        bool
	}
	mask uint32
}

func newLegacyBTB(entries int) *legacyBTB {
	l := &legacyBTB{mask: uint32(entries - 1)}
	l.entries = make([]struct {
		site, target uint32
		valid        bool
	}, entries)
	return l
}

func (b *legacyBTB) lookup(site, target uint32) bool {
	e := &b.entries[(site>>2)&b.mask]
	hit := e.valid && e.site == site && e.target == target
	e.site, e.target, e.valid = site, target, true
	return hit
}

type legacyRAS struct {
	stack      []uint32
	top, depth int
}

func newLegacyRAS(depth int) *legacyRAS { return &legacyRAS{stack: make([]uint32, depth)} }

func (r *legacyRAS) push(ret uint32) {
	r.stack[r.top] = ret
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

func (r *legacyRAS) pop(actual uint32) bool {
	if r.depth == 0 {
		return false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top] == actual
}

// TestBTBLegacyEquivalence: for every power-of-two size, a ways=1 levels=1
// shift=2 mask-indexed BTB agrees with the legacy direct-mapped BTB on
// random site/target streams, lookup by lookup.
func TestBTBLegacyEquivalence(t *testing.T) {
	f := func(seed int64, sizeSel uint8, n uint16) bool {
		sizes := []int{1, 2, 8, 64, 512}
		size := sizes[int(sizeSel)%len(sizes)]
		rng := rand.New(rand.NewSource(seed))
		oldB := newLegacyBTB(size)
		newB := NewBTB(DirectMapped(size))
		for i := 0; i < int(n)%2048; i++ {
			// Small site space forces aliasing; occasional misalignment
			// exercises the sub-shift bits; two targets per site force
			// retraining.
			site := rng.Uint32() & 0x1fff
			tgt := uint32(0xa000 + rng.Intn(2)*0x100)
			if oldB.lookup(site, tgt) != newB.Lookup(site, tgt).Hit() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRASLegacyEquivalence: wrap + no-repair matches the legacy RAS on
// random push/pop streams, operation by operation.
func TestRASLegacyEquivalence(t *testing.T) {
	f := func(seed int64, depthSel uint8, n uint16) bool {
		depths := []int{1, 2, 4, 8, 16}
		depth := depths[int(depthSel)%len(depths)]
		rng := rand.New(rand.NewSource(seed))
		oldR := newLegacyRAS(depth)
		newR := NewRAS(FixedDepth(depth))
		for i := 0; i < int(n)%2048; i++ {
			addr := rng.Uint32() & 0x3f // small space so pops sometimes match
			if rng.Intn(2) == 0 {
				oldR.push(addr)
				newR.Push(addr)
			} else if oldR.pop(addr) != newR.Pop(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomBTBConfig draws a valid geometry from a seeded rng.
func randomBTBConfig(rng *rand.Rand) BTBConfig {
	cfg := BTBConfig{
		Sets:      1 << rng.Intn(6),
		Ways:      1 << rng.Intn(3),
		Levels:    1 + rng.Intn(2),
		SiteShift: rng.Intn(5),
		Hash:      BTBHash(rng.Intn(int(numBTBHash))),
		Replace:   BTBReplace(rng.Intn(int(numBTBReplace))),
	}
	if cfg.Levels == 2 {
		cfg.L2Sets = 1 << rng.Intn(6)
		cfg.L2Ways = 1 << rng.Intn(3)
	}
	return cfg
}

// TestBTBConservationAllGeometries: for random valid geometries and random
// streams, L1 hits + L2 hits + misses == lookups, and single-level BTBs
// never report L2 hits.
func TestBTBConservationAllGeometries(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomBTBConfig(rng)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generated invalid config %+v: %v", cfg, err)
		}
		b := NewBTB(cfg)
		lookups := int(n) % 1024
		for i := 0; i < lookups; i++ {
			b.Lookup(rng.Uint32()&0xfff, rng.Uint32()&0xff)
		}
		l1, l2, m := b.LevelStats()
		if cfg.Levels == 1 && l2 != 0 {
			return false
		}
		h, m2 := b.Stats()
		return l1+l2+m == uint64(lookups) && h == l1+l2 && m == m2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRASRepairInvariants: on random streams, RepairTop never shrinks the
// stack on a mispredict, and every policy conserves hits+misses == pops.
func TestRASRepairInvariants(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := RASConfig{
			Depth:    1 << rng.Intn(5),
			Overflow: RASOverflow(rng.Intn(int(numRASOverflow))),
			Repair:   RASRepair(rng.Intn(int(numRASRepair))),
		}
		r := NewRAS(cfg)
		pops := uint64(0)
		for i := 0; i < int(n)%1024; i++ {
			addr := rng.Uint32() & 0x3f
			if rng.Intn(2) == 0 {
				r.Push(addr)
				continue
			}
			before := r.Depth()
			hit := r.Pop(addr)
			pops++
			if !hit && cfg.Repair != RepairNone && r.Depth() != before {
				return false // repairing policies must not consume on a miss
			}
			if hit && before > 0 && r.Depth() != before-1 {
				return false // hits always consume
			}
		}
		h, m := r.Stats()
		return h+m == pops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
