package bench

import (
	"math"
	"strings"
	"sync"
	"testing"

	"sdt/internal/hostarch"
)

// testRunner shrinks workloads hard so harness tests stay fast.
func testRunner() *Runner {
	r := NewRunner()
	r.ScaleDivisor = 50
	r.Workloads = []string{"gzip", "perlbmk", "vortex"}
	return r
}

func TestGeomean(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2}, 2},
		{[]float64{1, 4}, 2},
		{[]float64{2, 0, 8}, 0}, // nonpositive input
		{[]float64{2, 2, 2}, 2},
	}
	for _, tt := range tests {
		if got := Geomean(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNativeMemoized(t *testing.T) {
	r := testRunner()
	a, err := r.Native("gzip", "x86")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Native("gzip", "x86")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Native is not memoized")
	}
	c, err := r.Native("gzip", "sparc")
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("memoization key must include the architecture")
	}
}

func TestRunVerifiesEquivalence(t *testing.T) {
	r := testRunner()
	res, err := r.Run("perlbmk", "x86", "ibtc:1024")
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown() <= 1 {
		t.Errorf("slowdown = %v, want > 1", res.Slowdown())
	}
	if res.SDT.Checksum != res.Native.Checksum {
		t.Error("Run returned diverged result")
	}
	again, err := r.Run("perlbmk", "x86", "ibtc:1024")
	if err != nil {
		t.Fatal(err)
	}
	if again != res {
		t.Error("Run is not memoized")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	r := testRunner()
	if _, err := r.Run("nope", "x86", "ibtc:1024"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := r.Run("gzip", "vax", "ibtc:1024"); err == nil {
		t.Error("unknown arch accepted")
	}
	if _, err := r.Run("gzip", "x86", "warp"); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestRunWithModel(t *testing.T) {
	r := testRunner()
	m := hostarch.X86()
	m.Name = "x86-noflags"
	m.FlagsSave, m.FlagsRestore = 0, 0
	ablated, err := r.RunWithModel("perlbmk", "ibtc:1024", m)
	if err != nil {
		t.Fatal(err)
	}
	stock, err := r.Run("perlbmk", "x86", "ibtc:1024")
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Slowdown() >= stock.Slowdown() {
		t.Errorf("free flags (%.3f) should beat stock (%.3f)", ablated.Slowdown(), stock.Slowdown())
	}
}

func TestByID(t *testing.T) {
	for _, e := range Experiments {
		got, err := ByID(e.ID)
		if err != nil || got.Title != e.Title {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.Title, err)
		}
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s is incomplete", e.ID)
		}
	}
}

func TestEveryExperimentRunsOnSubset(t *testing.T) {
	// End-to-end: every experiment must complete and produce output on a
	// shrunken suite. Sweeps touch only their own subsets, so results are
	// small but the code paths are exercised.
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			r := NewRunner()
			r.ScaleDivisor = 60
			r.Workloads = []string{"gzip", "perlbmk", "vortex"}
			var sb strings.Builder
			if err := RunOne(r, &sb, e); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(sb.String()) < 80 {
				t.Errorf("%s produced almost no output:\n%s", e.ID, sb.String())
			}
		})
	}
}

func TestScaleDivisorShrinksWork(t *testing.T) {
	big := NewRunner()
	big.Workloads = []string{"gzip"}
	big.ScaleDivisor = 10
	small := NewRunner()
	small.Workloads = []string{"gzip"}
	small.ScaleDivisor = 60
	rb, err := big.Native("gzip", "x86")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := small.Native("gzip", "x86")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Native.Instret >= rb.Native.Instret {
		t.Error("larger divisor should mean less work")
	}
}

// Regression: a divisor exceeding DefaultScale used to risk flooring the
// scale to 0, which Image interprets as "full DefaultScale" — the huge
// divisor would silently select the LARGEST run. It must clamp and stay
// small instead.
func TestScaleDivisorBeyondDefaultScaleStaysSmall(t *testing.T) {
	def := NewRunner()
	def.Workloads = []string{"gzip"}
	huge := NewRunner()
	huge.Workloads = []string{"gzip"}
	huge.ScaleDivisor = 1 << 30
	rd, err := def.Native("gzip", "x86")
	if err != nil {
		t.Fatal(err)
	}
	rh, err := huge.Native("gzip", "x86")
	if err != nil {
		t.Fatal(err)
	}
	if rh.Native.Instret >= rd.Native.Instret {
		t.Errorf("divisor 2^30 ran %d instructions vs default %d — floor-to-0 selected the full workload",
			rh.Native.Instret, rd.Native.Instret)
	}
}

// Whole-suite experiments route their grids through the sweep engine;
// the rendered output must be byte-identical to a fully sequential run
// regardless of worker count (run under -race in CI).
func TestParallelExperimentOutputDeterministic(t *testing.T) {
	render := func(parallel int) string {
		r := testRunner()
		r.Parallel = parallel
		var buf strings.Builder
		for _, id := range []string{"E2", "E7", "E8"} {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			if err := RunOne(r, &buf, e); err != nil {
				t.Fatalf("%s at parallel=%d: %v", id, parallel, err)
			}
		}
		return buf.String()
	}
	sequential := render(1)
	for _, workers := range []int{4, 8} {
		if got := render(workers); got != sequential {
			t.Errorf("output at %d workers differs from sequential:\n%s\n--- vs ---\n%s",
				workers, got, sequential)
		}
	}
}

// A grid error must surface from the experiment, not crash or hang, and
// must identify the failing cell.
func TestGridErrorPropagates(t *testing.T) {
	r := testRunner()
	r.Workloads = []string{"gzip", "nosuchworkload"}
	e, err := ByID("E2")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	err = RunOne(r, &buf, e)
	if err == nil || !strings.Contains(err.Error(), "nosuchworkload") {
		t.Errorf("E2 with a bad workload: err = %v, want mention of nosuchworkload", err)
	}
}

func TestRunnerConcurrentDedup(t *testing.T) {
	// Concurrent requests for one measurement must produce one
	// computation and share the result.
	r := testRunner()
	const n = 8
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run("perlbmk", "x86", "ibtc:1024")
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatal("concurrent callers received different result objects")
		}
	}
}

func TestRunnerConcurrentDistinctKeys(t *testing.T) {
	r := testRunner()
	specs := []string{"ibtc:64", "ibtc:256", "sieve:64", "translator"}
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			_, errs[i] = r.Run("gzip", "x86", spec)
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("%s: %v", specs[i], err)
		}
	}
}

func TestExportCSV(t *testing.T) {
	r := testRunner()
	if _, err := r.Run("gzip", "x86", "ibtc:64"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run("gzip", "sparc", "ibtc:64"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.ExportCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// header + 2 natives + 2 runs
	if len(lines) != 5 {
		t.Fatalf("got %d CSV lines:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "workload,arch,mechanism") {
		t.Errorf("header = %q", lines[0])
	}
	for _, want := range []string{"gzip,sparc,ibtc:64", "gzip,x86,native"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("CSV missing row %q", want)
		}
	}
	// Stable ordering: exporting twice gives identical bytes.
	var sb2 strings.Builder
	if err := r.ExportCSV(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("CSV export is not deterministic")
	}
}

func TestBestSpecsParse(t *testing.T) {
	r := testRunner()
	for _, spec := range BestSpecs {
		if _, err := r.Run("gzip", "x86", spec); err != nil {
			t.Errorf("BestSpec %q failed: %v", spec, err)
		}
	}
}
