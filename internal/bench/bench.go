// Package bench is the experiment harness: it re-runs every table and
// figure of the paper's evaluation — plus three extension experiments —
// (E1..E15, indexed in DESIGN.md and EXPERIMENTS.md) against the synthetic
// SPEC CPU2000 suite, on both host cost models, and renders them as text
// tables and charts. Runner methods are safe for concurrent use.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/machine"
	"sdt/internal/profile"
	"sdt/internal/program"
	"sdt/internal/store"
	"sdt/internal/workload"
)

// runLimit bounds any single simulated run.
const runLimit = 2_000_000_000

// Canonical mechanism configurations used by the comparison experiments.
// The sweep experiments (E3/E5/E6) locate the knees these sit on.
const (
	SpecNaive    = "translator"
	SpecIBTC     = "ibtc:16384"
	SpecInline   = "inline:2+ibtc:16384"
	SpecSieve    = "sieve:16384"
	SpecFastRet  = "fastret+ibtc:16384"
	SpecRetCache = "retcache:16384+ibtc:16384"
	SpecAdaptive = "adaptive:16384"
)

// BestSpecs are the per-mechanism configurations compared head-to-head in
// E8/E9, in display order.
var BestSpecs = []string{SpecNaive, SpecIBTC, SpecInline, SpecSieve, SpecFastRet, SpecRetCache}

// Result is one (workload, arch, mechanism) measurement.
type Result struct {
	Workload string
	Arch     string
	Spec     string // "" for native

	Native machine.Result
	SDT    machine.Result
	Prof   profile.Profile
	Counts machine.Counts // native dynamic counts

	// BTBMissRate and RASMissRate are the SDT run's predictor miss
	// fractions (E12 reports them).
	BTBMissRate float64
	RASMissRate float64
}

// Slowdown is SDT cycles over native cycles.
func (r *Result) Slowdown() float64 {
	if r.Native.Cycles == 0 {
		return 0
	}
	return float64(r.SDT.Cycles) / float64(r.Native.Cycles)
}

// Runner executes and memoizes measurements.
type Runner struct {
	// Scale overrides every workload's default scale when nonzero.
	Scale int
	// ScaleDivisor divides each workload's default scale when Scale is
	// zero — proportional shrinking for quick runs (benchmarks use it).
	ScaleDivisor int
	// Workloads lists the suite used by the whole-suite experiments;
	// empty selects the twelve SPEC-shaped workloads.
	Workloads []string
	// Parallel bounds how many measurements a whole-suite experiment
	// computes concurrently through the sweep engine (0 = GOMAXPROCS,
	// 1 = fully sequential). Measurements are deterministic, so the
	// setting changes wall-clock time, never output.
	Parallel int
	// Verbose, when set, logs each run to Log as it happens.
	Verbose bool
	Log     io.Writer

	// Memoization groups; each deduplicates concurrent requests for the
	// same measurement (the second caller waits for the first) on top of
	// the shared single-flight store the sdtd service also uses. Runner
	// methods are safe for concurrent use.
	logMu   sync.Mutex
	images  *store.Group[*program.Image]
	natives *store.Group[*Result] // keyed by workload|arch
	runs    *store.Group[*Result] // keyed by workload|arch|spec
}

// NewRunner returns a Runner with empty caches.
func NewRunner() *Runner {
	return &Runner{
		images:  store.NewGroup[*program.Image](nil),
		natives: store.NewGroup[*Result](nil),
		runs:    store.NewGroup[*Result](nil),
	}
}

func (r *Runner) suite() []string {
	if len(r.Workloads) > 0 {
		return r.Workloads
	}
	return workload.SPECNames()
}

func (r *Runner) logf(format string, args ...any) {
	if r.Verbose && r.Log != nil {
		r.logMu.Lock()
		fmt.Fprintf(r.Log, format, args...)
		r.logMu.Unlock()
	}
}

func (r *Runner) image(name string) (*program.Image, error) {
	img, _, err := r.images.Do(context.Background(), name, func() (*program.Image, error) {
		spec, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		scale := r.Scale
		if scale == 0 && r.ScaleDivisor > 1 {
			// ScaledDown clamps away from 0: an unclamped floor would make
			// Image silently select the full DefaultScale.
			scale = spec.ScaledDown(r.ScaleDivisor)
		}
		return spec.Image(scale)
	})
	return img, err
}

// Native measures (and memoizes) the native baseline for a workload on an
// architecture.
func (r *Runner) Native(wl, arch string) (*Result, error) {
	res, _, err := r.natives.Do(context.Background(), wl+"|"+arch, func() (*Result, error) {
		img, err := r.image(wl)
		if err != nil {
			return nil, err
		}
		model, err := hostarch.ByName(arch)
		if err != nil {
			return nil, err
		}
		r.logf("native   %-10s %-6s ...\n", wl, arch)
		m, err := machine.RunImage(img, model, runLimit)
		if err != nil {
			return nil, fmt.Errorf("bench: native %s on %s: %w", wl, arch, err)
		}
		res := &Result{Workload: wl, Arch: arch, Native: m.Result(), Counts: m.Counts}
		m.Recycle()
		return res, nil
	})
	return res, err
}

// Run measures (and memoizes) one workload under one mechanism spec on one
// architecture, verifying output equivalence against the native run.
func (r *Runner) Run(wl, arch, spec string) (*Result, error) {
	res, _, err := r.runs.Do(context.Background(), wl+"|"+arch+"|"+spec, func() (*Result, error) {
		native, err := r.Native(wl, arch)
		if err != nil {
			return nil, err
		}
		img, err := r.image(wl)
		if err != nil {
			return nil, err
		}
		model, err := hostarch.ByName(arch)
		if err != nil {
			return nil, err
		}
		return r.measure(img, wl, arch, spec, model, native)
	})
	return res, err
}

// RunWithOptions measures one workload under spec with caller-mutated VM
// options (fragment cache size, superblocks, linking, block length).
// Results are not memoized.
func (r *Runner) RunWithOptions(wl, arch, spec string, mutate func(*core.Options)) (*Result, error) {
	native, err := r.Native(wl, arch)
	if err != nil {
		return nil, err
	}
	img, err := r.image(wl)
	if err != nil {
		return nil, err
	}
	model, err := hostarch.ByName(arch)
	if err != nil {
		return nil, err
	}
	cfg, err := ib.Parse(spec)
	if err != nil {
		return nil, err
	}
	opts := cfg.Options(model)
	if mutate != nil {
		mutate(&opts)
	}
	vm, err := core.New(img, opts)
	if err != nil {
		return nil, err
	}
	if err := vm.Run(runLimit); err != nil {
		return nil, fmt.Errorf("bench: %s under %s on %s: %w", wl, spec, arch, err)
	}
	res := &Result{
		Workload: wl, Arch: arch, Spec: spec,
		Native: native.Native, SDT: vm.Result(), Prof: vm.Prof, Counts: native.Counts,
	}
	vm.Recycle()
	if res.SDT.Checksum != res.Native.Checksum || res.SDT.Instret != res.Native.Instret {
		return nil, fmt.Errorf("bench: %s under %s on %s diverged from native execution", wl, spec, arch)
	}
	r.logf("sdt      %-10s %-6s %-28s %.2fx\n", wl, arch, spec, res.Slowdown())
	return res, nil
}

// RunWithHandler measures one workload under a caller-constructed handler
// (for mechanism combinations the spec grammar cannot express). mk must
// build a fresh handler per call. Results are memoized under name.
func (r *Runner) RunWithHandler(wl, arch, name string, mk func() core.IBHandler, fastReturns bool) (*Result, error) {
	res, _, err := r.runs.Do(context.Background(), wl+"|"+arch+"|handler:"+name, func() (*Result, error) {
		native, err := r.Native(wl, arch)
		if err != nil {
			return nil, err
		}
		img, err := r.image(wl)
		if err != nil {
			return nil, err
		}
		model, err := hostarch.ByName(arch)
		if err != nil {
			return nil, err
		}
		vm, err := core.New(img, core.Options{Model: model, Handler: mk(), FastReturns: fastReturns})
		if err != nil {
			return nil, err
		}
		if err := vm.Run(runLimit); err != nil {
			return nil, fmt.Errorf("bench: %s under %s on %s: %w", wl, name, arch, err)
		}
		res := &Result{
			Workload: wl, Arch: arch, Spec: name,
			Native: native.Native, SDT: vm.Result(), Prof: vm.Prof, Counts: native.Counts,
		}
		vm.Recycle()
		if res.SDT.Checksum != res.Native.Checksum || res.SDT.Instret != res.Native.Instret {
			return nil, fmt.Errorf("bench: %s under %s on %s diverged from native execution", wl, name, arch)
		}
		r.logf("sdt      %-10s %-6s %-28s %.2fx\n", wl, arch, name, res.Slowdown())
		return res, nil
	})
	return res, err
}

// RunWithModel measures one workload under a caller-supplied (possibly
// ablated) cost model. Results are not memoized.
func (r *Runner) RunWithModel(wl, spec string, model *hostarch.Model) (*Result, error) {
	img, err := r.image(wl)
	if err != nil {
		return nil, err
	}
	m, err := machine.RunImage(img, model, runLimit)
	if err != nil {
		return nil, fmt.Errorf("bench: native %s on %s: %w", wl, model.Name, err)
	}
	native := &Result{Workload: wl, Arch: model.Name, Native: m.Result(), Counts: m.Counts}
	m.Recycle()
	return r.measure(img, wl, model.Name, spec, model, native)
}

func (r *Runner) measure(img *program.Image, wl, arch, spec string, model *hostarch.Model, native *Result) (*Result, error) {
	cfg, err := ib.Parse(spec)
	if err != nil {
		return nil, err
	}
	vm, err := core.New(img, cfg.Options(model))
	if err != nil {
		return nil, err
	}
	if err := vm.Run(runLimit); err != nil {
		return nil, fmt.Errorf("bench: %s under %s on %s: %w", wl, spec, arch, err)
	}
	res := &Result{
		Workload: wl, Arch: arch, Spec: spec,
		Native: native.Native, SDT: vm.Result(), Prof: vm.Prof, Counts: native.Counts,
	}
	if h, m := vm.Env.BTB.Stats(); h+m > 0 {
		res.BTBMissRate = float64(m) / float64(h+m)
	}
	if h, m := vm.Env.RAS.Stats(); h+m > 0 {
		res.RASMissRate = float64(m) / float64(h+m)
	}
	vm.Recycle()
	if res.SDT.Checksum != res.Native.Checksum || res.SDT.Instret != res.Native.Instret {
		return nil, fmt.Errorf("bench: %s under %s on %s diverged from native execution", wl, spec, arch)
	}
	r.logf("sdt      %-10s %-6s %-28s %.2fx\n", wl, arch, spec, res.Slowdown())
	return res, nil
}

// Geomean returns the geometric mean of vs (0 for empty input).
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}
