package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"sdt/internal/isa"
)

// ExportCSV writes every measurement the runner has memoized (native
// baselines and SDT runs) as CSV, one row per run, for plotting outside
// the text harness. Rows are sorted by (workload, arch, spec) so exports
// are stable.
func (r *Runner) ExportCSV(w io.Writer) error {
	var rows []*Result
	r.natives.Range(func(_ string, res *Result) bool { rows = append(rows, res); return true })
	r.runs.Range(func(_ string, res *Result) bool { rows = append(rows, res); return true })

	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Arch != b.Arch {
			return a.Arch < b.Arch
		}
		return a.Spec < b.Spec
	})

	cw := csv.NewWriter(w)
	header := []string{
		"workload", "arch", "mechanism",
		"native_cycles", "sdt_cycles", "slowdown",
		"instructions", "ib_total", "ib_returns", "ib_ijumps", "ib_icalls",
		"mech_hit_rate", "translator_entries", "translations", "flushes",
		"btb_miss_rate", "ras_miss_rate",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.6f", v) }
	u := func(v uint64) string { return fmt.Sprintf("%d", v) }
	for _, res := range rows {
		spec := res.Spec
		if spec == "" {
			spec = "native"
		}
		c := res.Counts
		row := []string{
			res.Workload, res.Arch, spec,
			u(res.Native.Cycles), u(res.SDT.Cycles), f(res.Slowdown()),
			u(res.Native.Instret),
			u(c.IBTotal()), u(c.IB[isa.IBReturn]), u(c.IB[isa.IBJump]), u(c.IB[isa.IBCall]),
			f(res.Prof.HitRate()), u(res.Prof.TranslatorEntries),
			u(res.Prof.Translations), u(res.Prof.Flushes),
			f(res.BTBMissRate), f(res.RASMissRate),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
