package bench

import (
	"fmt"
	"io"
	"math"

	"sdt/internal/core"
	"sdt/internal/ib"
	"sdt/internal/profile"
	"sdt/internal/textplot"
)

// Extension experiments beyond the paper's figures: the configuration
// dimensions the abstract's "appropriate choice and configuration" framing
// opens, exercised on the same apparatus. Registered after E12.

func init() {
	Experiments = append(Experiments,
		Experiment{"E13", "Fragment cache pressure", "flush-policy discussion (extension)", runE13},
		Experiment{"E14", "Superblock formation", "fragment-linking/layout discussion (extension)", runE14},
		Experiment{"E15", "IBTC organization: associativity & hash", "IBTC configuration discussion (extension)", runE15},
		Experiment{"E16", "Trace formation with IB guards", "Dynamo/Strata trace mode (extension)", runE16},
		Experiment{"E17", "Per-kind cost attribution", "which IB kind buys what (extension)", runE17},
		Experiment{"E18", "Adaptive per-site mechanism selection", "online mechanism choice vs every static pick (extension)", runE18},
	)
}

// ---- E18: adaptive per-site selection ----------------------------------------

// runE18 races the adaptive mechanism (per-site inline -> IBTC -> sieve
// promotion with online re-translation) against the best static
// configuration of every mechanism family, on every host model. Two claims
// are under test: on the IB-heavy workloads the adaptive pick should match
// or beat the best static choice without knowing it in advance, and on the
// monomorphic workloads the exploration cost (the per-promotion
// re-translation charge) should stay in the noise.
func runE18(r *Runner, w io.Writer) error {
	specs := append([]string{SpecAdaptive}, BestSpecs...)
	names := []string{"adaptive", "naive", "ibtc", "inline+ibtc", "sieve", "fastret+ibtc", "retcache+ibtc"}
	heavy := make(map[string]bool, len(ibHeavy))
	for _, wl := range ibHeavy {
		heavy[wl] = true
	}
	for _, arch := range []string{"x86", "sparc", "arm"} {
		if err := r.grid(r.suite(), []string{arch}, specs); err != nil {
			return err
		}
		headers := append([]string{"workload"}, names...)
		headers = append(headers, "promo", "demo")
		var rows [][]string
		geo := make([][]float64, len(specs))
		heavyGeo := make([][]float64, len(specs))
		for _, wl := range r.suite() {
			row := []string{wl}
			var prof *profile.Profile
			for i, spec := range specs {
				res, err := r.Run(wl, arch, spec)
				if err != nil {
					return err
				}
				if i == 0 {
					prof = &res.Prof
				}
				row = append(row, fmtF(res.Slowdown())+"x")
				geo[i] = append(geo[i], res.Slowdown())
				if heavy[wl] {
					heavyGeo[i] = append(heavyGeo[i], res.Slowdown())
				}
			}
			row = append(row,
				fmt.Sprintf("%d", prof.AdaptPromotions),
				fmt.Sprintf("%d", prof.AdaptDemotions))
			rows = append(rows, row)
		}
		for _, g := range []struct {
			name string
			geos [][]float64
		}{{"geomean", geo}, {"geomean(ib-heavy)", heavyGeo}} {
			row := []string{g.name}
			for i := range specs {
				row = append(row, fmtF(Geomean(g.geos[i]))+"x")
			}
			rows = append(rows, append(row, "-", "-"))
		}
		fmt.Fprintf(w, "adaptive vs best static configuration of each mechanism (%s):\n", arch)
		textplot.Table(w, headers, rows)

		// The one-line verdict: adaptive against the best static LOOKUP
		// mechanism, judged on the IB-heavy subset where the choice
		// matters. fastret+ibtc is reported separately — fast returns are
		// a translation policy that sacrifices return-address
		// transparency, so it is not a pick the per-site selector could
		// have made.
		bestName, best := "", math.Inf(1)
		for i := 1; i < len(specs); i++ {
			if specs[i] == SpecFastRet {
				continue
			}
			if gm := Geomean(heavyGeo[i]); gm < best {
				bestName, best = names[i], gm
			}
		}
		ad := Geomean(heavyGeo[0])
		verdict := "matches"
		switch {
		case ad < best-0.005:
			verdict = "beats"
		case ad > best+0.005:
			verdict = "trails"
		}
		var fr float64
		for i, spec := range specs {
			if spec == SpecFastRet {
				fr = Geomean(heavyGeo[i])
			}
		}
		fmt.Fprintf(w, "\n%s, ib-heavy: adaptive %.2fx %s best static lookup %s (%.2fx); fastret+ibtc %.2fx (transparency-sacrificing)\n\n",
			arch, ad, verdict, bestName, best, fr)
	}
	fmt.Fprintln(w, "(promo/demo columns are the adaptive run's tier changes on that\n workload; each one re-translates a single owning fragment in place)")
	return nil
}

// ---- E17: per-kind attribution ----------------------------------------------

// runE17 fixes the naive translator on all indirect-branch kinds except
// one, which gets the full IBTC: the slowdown recovered by each column
// attributes the naive overhead to that kind. The rightmost columns are
// the all-naive and all-IBTC anchors.
func runE17(r *Runner, w io.Writer) error {
	type column struct {
		name string
		mk   func() core.IBHandler
	}
	fast := func() core.IBHandler { return ib.NewIBTC(ib.IBTCConfig{Entries: 16384}) }
	slow := func() core.IBHandler { return ib.NewTranslator() }
	cols := []column{
		{"returns-only", func() core.IBHandler { return ib.NewPerKind(fast(), slow(), slow()) }},
		{"ijumps-only", func() core.IBHandler { return ib.NewPerKind(slow(), fast(), slow()) }},
		{"icalls-only", func() core.IBHandler { return ib.NewPerKind(slow(), slow(), fast()) }},
	}
	if err := r.grid(r.suite(), []string{"x86"}, []string{SpecNaive, SpecIBTC}); err != nil {
		return err
	}
	headers := []string{"workload", "naive"}
	for _, c := range cols {
		headers = append(headers, c.name)
	}
	headers = append(headers, "all-ibtc")
	var rows [][]string
	geos := make([][]float64, len(cols)+2)
	for _, wl := range r.suite() {
		naive, err := r.Run(wl, "x86", SpecNaive)
		if err != nil {
			return err
		}
		row := []string{wl, fmtF(naive.Slowdown()) + "x"}
		geos[0] = append(geos[0], naive.Slowdown())
		for i, c := range cols {
			res, err := r.RunWithHandler(wl, "x86", c.name, c.mk, false)
			if err != nil {
				return err
			}
			row = append(row, fmtF(res.Slowdown())+"x")
			geos[i+1] = append(geos[i+1], res.Slowdown())
		}
		all, err := r.Run(wl, "x86", SpecIBTC)
		if err != nil {
			return err
		}
		row = append(row, fmtF(all.Slowdown())+"x")
		geos[len(cols)+1] = append(geos[len(cols)+1], all.Slowdown())
		rows = append(rows, row)
	}
	grow := []string{"geomean"}
	for _, g := range geos {
		grow = append(grow, fmtF(Geomean(g))+"x")
	}
	rows = append(rows, grow)
	fmt.Fprintln(w, "slowdown when only ONE IB kind gets the IBTC (others stay naive), x86:")
	textplot.Table(w, headers, rows)
	fmt.Fprintln(w, "\n(the kind whose column recovers most of the naive gap is the kind that\n was costing the program — returns, for most of the suite)")
	return nil
}

// ---- E16: traces ---------------------------------------------------------------

func runE16(r *Runner, w io.Writer) error {
	if err := r.grid(r.suite(), []string{"x86"},
		[]string{SpecIBTC, "trace+" + SpecIBTC, SpecFastRet}); err != nil {
		return err
	}
	headers := []string{"workload", "ibtc", "trace+ibtc", "fastret+ibtc", "guard hit%", "traces"}
	var rows [][]string
	var plain, traced, fast []float64
	for _, wl := range r.suite() {
		p, err := r.Run(wl, "x86", SpecIBTC)
		if err != nil {
			return err
		}
		tr, err := r.Run(wl, "x86", "trace+"+SpecIBTC)
		if err != nil {
			return err
		}
		fr, err := r.Run(wl, "x86", SpecFastRet)
		if err != nil {
			return err
		}
		plain = append(plain, p.Slowdown())
		traced = append(traced, tr.Slowdown())
		fast = append(fast, fr.Slowdown())
		guardRate := 0.0
		if tot := tr.Prof.TraceGuardHits + tr.Prof.TraceGuardMisses; tot > 0 {
			guardRate = 100 * float64(tr.Prof.TraceGuardHits) / float64(tot)
		}
		rows = append(rows, []string{
			wl,
			fmtF(p.Slowdown()) + "x",
			fmtF(tr.Slowdown()) + "x",
			fmtF(fr.Slowdown()) + "x",
			fmt.Sprintf("%.1f", guardRate),
			fmt.Sprintf("%d", tr.Prof.TracesFormed),
		})
	}
	rows = append(rows, []string{"geomean",
		fmtF(Geomean(plain)) + "x", fmtF(Geomean(traced)) + "x", fmtF(Geomean(fast)) + "x", "-", "-"})
	fmt.Fprintln(w, "NET-style traces with speculative IB guards (x86):")
	textplot.Table(w, headers, rows)
	fmt.Fprintln(w, "\n(a trace guard turns an on-trace monomorphic IB into one compare,\n buying part of fast returns' win without sacrificing transparency)")
	return nil
}

// ---- E13: fragment cache size sweep -----------------------------------------

var cacheSizes = []uint32{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 1 << 20}

func runE13(r *Runner, w io.Writer) error {
	// micro.bigcode's ~40 KiB translated footprint does not fit small
	// caches, forcing repeated flushes that also discard all mechanism
	// state; the SPEC-shaped workloads fit comfortably (their static
	// code is small), which is itself a finding worth a row.
	wls := []string{"micro.bigcode", "gcc"}
	xs := make([]string, len(cacheSizes))
	for i, n := range cacheSizes {
		xs[i] = fmt.Sprintf("%dK", n>>10)
	}
	var series []textplot.NamedSeries
	for _, wl := range wls {
		vals := make([]float64, len(cacheSizes))
		flushes := make([]uint64, len(cacheSizes))
		for i, n := range cacheSizes {
			n := n
			res, err := r.RunWithOptions(wl, "x86", SpecIBTC, func(o *core.Options) {
				o.CacheBytes = n
			})
			if err != nil {
				return err
			}
			vals[i] = res.Slowdown()
			flushes[i] = res.Prof.Flushes
		}
		series = append(series, textplot.NamedSeries{Name: wl, Values: vals})
		fmt.Fprintf(w, "%s flushes per run: %v\n", wl, flushes)
	}
	fmt.Fprintln(w)
	textplot.Series(w, "slowdown vs fragment cache capacity (ibtc:16384, x86)", "capacity", xs, series, "x")
	fmt.Fprintln(w, "\n(each flush discards fragments, links and all mechanism state)")
	return nil
}

// ---- E14: superblock formation ------------------------------------------------

func runE14(r *Runner, w io.Writer) error {
	headers := []string{"workload", "plain", "superblocks", "fragments plain", "fragments super"}
	var rows [][]string
	var plainVals, superVals []float64
	for _, wl := range r.suite() {
		plain, err := r.Run(wl, "x86", SpecIBTC)
		if err != nil {
			return err
		}
		super, err := r.RunWithOptions(wl, "x86", SpecIBTC, func(o *core.Options) {
			o.Superblocks = true
		})
		if err != nil {
			return err
		}
		plainVals = append(plainVals, plain.Slowdown())
		superVals = append(superVals, super.Slowdown())
		rows = append(rows, []string{
			wl,
			fmtF(plain.Slowdown()) + "x",
			fmtF(super.Slowdown()) + "x",
			fmt.Sprintf("%d", plain.Prof.Translations),
			fmt.Sprintf("%d", super.Prof.Translations),
		})
	}
	rows = append(rows, []string{"geomean",
		fmtF(Geomean(plainVals)) + "x", fmtF(Geomean(superVals)) + "x", "-", "-"})
	fmt.Fprintln(w, "superblock formation (follow forward direct jumps at translation), ibtc:16384, x86:")
	textplot.Table(w, headers, rows)
	fmt.Fprintln(w, "\n(elided jumps shorten fragment chains; IB handling is untouched, so the\n effect is bounded by each workload's direct-jump density)")
	return nil
}

// ---- E15: IBTC organization ----------------------------------------------------

func runE15(r *Runner, w io.Writer) error {
	specs := []string{"ibtc:16", "ibtc:16:4way", "ibtc:16:fib", "ibtc:256", "ibtc:256:4way", "ibtc:16384"}
	if err := r.grid(ibHeavy, []string{"x86"}, specs); err != nil {
		return err
	}
	headers := append([]string{"workload"}, specs...)
	var rows [][]string
	geo := make([][]float64, len(specs))
	for _, wl := range ibHeavy {
		row := []string{wl}
		for i, spec := range specs {
			res, err := r.Run(wl, "x86", spec)
			if err != nil {
				return err
			}
			row = append(row, fmtF(res.Slowdown())+"x")
			geo[i] = append(geo[i], res.Slowdown())
		}
		rows = append(rows, row)
	}
	grow := []string{"geomean"}
	for i := range specs {
		grow = append(grow, fmtF(Geomean(geo[i]))+"x")
	}
	rows = append(rows, grow)
	fmt.Fprintln(w, "IBTC organization at fixed capacity (x86, IB-heavy subset):")
	textplot.Table(w, headers, rows)
	fmt.Fprintln(w, "\n(associativity and hash quality matter only near the capacity knee;\n a big direct-mapped table dominates both, which is why SDTs ship one)")
	return nil
}
