package bench

import (
	"context"

	"sdt/internal/sweep"
)

// gridNative is the mech sentinel for a native-baseline cell in a grid
// (the empty string is not a valid mechanism spec).
const gridNative = ""

// grid computes every (workload × arch × spec) measurement of an
// experiment through the sharded sweep engine before the experiment's
// rendering loop replays them from the runner's memoized caches. The
// measurements are pure functions of their cell, so executing them in
// parallel cannot change a single rendered byte — the engine only moves
// the wall-clock cost of a whole-suite experiment from serial to
// Workers-wide. A spec of gridNative requests the native baseline.
//
// The first error in deterministic matrix order is returned; the other
// cells still complete (their results stay cached for later experiments).
// Parallel == 1 skips the prefetch entirely and lets the rendering loop
// compute sequentially, which is the reference behavior the parallel path
// is tested against.
func (r *Runner) grid(wls, archs, specs []string) error {
	if r.Parallel == 1 || len(wls) == 0 {
		return nil
	}
	m := sweep.Matrix{Workloads: wls, Archs: archs, Mechs: specs}
	eng := &sweep.Engine[sweep.Cell, *Result]{
		Workers: r.Parallel,
		Exec: func(ctx context.Context, c sweep.Cell) (*Result, error) {
			if c.Mech == gridNative {
				return r.Native(c.Workload, c.Arch)
			}
			return r.Run(c.Workload, c.Arch, c.Mech)
		},
	}
	var firstErr error
	eng.Ordered(context.Background(), m.Cells(), func(o sweep.Outcome[sweep.Cell, *Result]) {
		if firstErr == nil && o.Err != nil {
			firstErr = o.Err
		}
	})
	return firstErr
}
