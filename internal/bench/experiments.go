package bench

import (
	"fmt"
	"io"
	"sort"

	"sdt/internal/hostarch"
	"sdt/internal/isa"
	"sdt/internal/textplot"
	"sdt/internal/workload"
)

// Experiment is one regenerable table or figure from the paper's
// evaluation.
type Experiment struct {
	ID    string
	Title string
	// What the experiment corresponds to in the paper's narrative.
	Paper string
	Run   func(r *Runner, w io.Writer) error
}

// Experiments lists every experiment in presentation order.
var Experiments = []Experiment{
	{"E1", "Workload characterization", "IB frequency/kind table", runE1},
	{"E2", "Naive SDT overhead", "context-switch-per-IB overhead figure", runE2},
	{"E3", "IBTC size sweep", "IBTC sizing figure", runE3},
	{"E4", "Shared vs private IBTC", "IBTC sharing figure", runE4},
	{"E5", "Inline cache depth sweep", "inline-cache sizing figure", runE5},
	{"E6", "Sieve size sweep", "sieve sizing figure", runE6},
	{"E7", "Return handling", "fast returns / return cache figure", runE7},
	{"E8", "Best-of-each comparison (x86)", "headline x86 comparison figure", runE8},
	{"E9", "Best-of-each comparison (SPARC)", "cross-architecture comparison figure", runE9},
	{"E10", "Cycle breakdown", "where-the-time-goes table", runE10},
	{"E11", "Ablation: flags save/restore cost", "why inline compares hurt on x86", runE11},
	{"E12", "Ablation: dispatch-jump BTB locality", "shared vs per-site final jump", runE12},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// RunAll executes every experiment in order.
func RunAll(r *Runner, w io.Writer) error {
	for _, e := range Experiments {
		if err := RunOne(r, w, e); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes one experiment with its banner.
func RunOne(r *Runner, w io.Writer, e Experiment) error {
	fmt.Fprintf(w, "\n=== %s: %s (paper: %s) ===\n\n", e.ID, e.Title, e.Paper)
	return e.Run(r, w)
}

// ibHeavy is the sweep subset: the workloads whose IB density makes the
// parameter choice visible.
var ibHeavy = []string{"gcc", "crafty", "eon", "perlbmk", "gap", "vortex"}

func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// ---- E1: characterization -------------------------------------------------

func runE1(r *Runner, w io.Writer) error {
	if err := r.grid(r.suite(), []string{"x86"}, []string{gridNative}); err != nil {
		return err
	}
	headers := []string{"workload", "class", "inst(M)", "returns", "ijumps", "icalls", "IB/1k", "%ret"}
	var rows [][]string
	for _, wl := range r.suite() {
		res, err := r.Native(wl, "x86")
		if err != nil {
			return err
		}
		c := res.Counts
		total := c.IBTotal()
		pctRet := 0.0
		if total > 0 {
			pctRet = 100 * float64(c.IB[isa.IBReturn]) / float64(total)
		}
		spec, _ := r.workloadSpec(wl)
		rows = append(rows, []string{
			wl, spec,
			fmt.Sprintf("%.2f", float64(res.Native.Instret)/1e6),
			fmt.Sprintf("%d", c.IB[isa.IBReturn]),
			fmt.Sprintf("%d", c.IB[isa.IBJump]),
			fmt.Sprintf("%d", c.IB[isa.IBCall]),
			fmt.Sprintf("%.1f", c.IBPer1K()),
			fmt.Sprintf("%.0f%%", pctRet),
		})
	}
	textplot.Table(w, headers, rows)
	return nil
}

func (r *Runner) workloadSpec(wl string) (string, error) {
	s, err := workload.Get(wl)
	if err != nil {
		return "?", err
	}
	return s.IBClass, nil
}

// ---- E2: naive overhead ---------------------------------------------------

func runE2(r *Runner, w io.Writer) error {
	if err := r.grid(r.suite(), []string{"x86", "sparc"}, []string{SpecNaive}); err != nil {
		return err
	}
	for _, arch := range []string{"x86", "sparc"} {
		var labels []string
		var vals []float64
		for _, wl := range r.suite() {
			res, err := r.Run(wl, arch, SpecNaive)
			if err != nil {
				return err
			}
			labels = append(labels, wl)
			vals = append(vals, res.Slowdown())
		}
		labels = append(labels, "geomean")
		vals = append(vals, Geomean(vals))
		textplot.Bar(w, fmt.Sprintf("slowdown vs native, naive translator re-entry on every IB (%s)", arch), labels, vals, "x")
		fmt.Fprintln(w)
	}
	return nil
}

// ---- E3: IBTC size sweep --------------------------------------------------

var ibtcSizes = []int{16, 64, 256, 1024, 4096, 16384, 65536}

func runE3(r *Runner, w io.Writer) error {
	xs := make([]string, len(ibtcSizes))
	specs := make([]string, len(ibtcSizes))
	for i, n := range ibtcSizes {
		xs[i] = fmt.Sprintf("%d", n)
		specs[i] = fmt.Sprintf("ibtc:%d", n)
	}
	if err := r.grid(ibHeavy, []string{"x86"}, specs); err != nil {
		return err
	}
	var series []textplot.NamedSeries
	geo := make([][]float64, len(ibtcSizes))
	for _, wl := range ibHeavy {
		vals := make([]float64, len(ibtcSizes))
		for i, n := range ibtcSizes {
			res, err := r.Run(wl, "x86", fmt.Sprintf("ibtc:%d", n))
			if err != nil {
				return err
			}
			vals[i] = res.Slowdown()
			geo[i] = append(geo[i], vals[i])
		}
		series = append(series, textplot.NamedSeries{Name: wl, Values: vals})
	}
	gm := make([]float64, len(ibtcSizes))
	for i := range geo {
		gm[i] = Geomean(geo[i])
	}
	series = append(series, textplot.NamedSeries{Name: "geomean", Values: gm})
	textplot.Series(w, "slowdown vs shared IBTC entries (x86)", "entries", xs, series, "x")
	return nil
}

// ---- E4: shared vs private IBTC --------------------------------------------

func runE4(r *Runner, w io.Writer) error {
	specs := []string{"ibtc:16384", "ibtc:1024:private", "ibtc:64:private"}
	if err := r.grid(r.suite(), []string{"x86"}, specs); err != nil {
		return err
	}
	headers := append([]string{"workload"}, specs...)
	var rows [][]string
	geo := make([][]float64, len(specs))
	for _, wl := range r.suite() {
		row := []string{wl}
		for i, spec := range specs {
			res, err := r.Run(wl, "x86", spec)
			if err != nil {
				return err
			}
			row = append(row, fmtF(res.Slowdown())+"x")
			geo[i] = append(geo[i], res.Slowdown())
		}
		rows = append(rows, row)
	}
	grow := []string{"geomean"}
	for i := range specs {
		grow = append(grow, fmtF(Geomean(geo[i]))+"x")
	}
	rows = append(rows, grow)
	textplot.Table(w, headers, rows)
	fmt.Fprintln(w, "\n(private tables trade capacity for isolation; the shared table wins once it is large enough)")
	return nil
}

// ---- E5: inline cache depth sweep -------------------------------------------

var inlineDepths = []int{1, 2, 3, 4, 6, 8}

func runE5(r *Runner, w io.Writer) error {
	xs := make([]string, len(inlineDepths))
	specs := make([]string, len(inlineDepths))
	for i, k := range inlineDepths {
		xs[i] = fmt.Sprintf("%d", k)
		specs[i] = fmt.Sprintf("inline:%d+ibtc:16384", k)
	}
	if err := r.grid(ibHeavy, []string{"x86"}, specs); err != nil {
		return err
	}
	var series []textplot.NamedSeries
	geo := make([][]float64, len(inlineDepths))
	for _, wl := range ibHeavy {
		vals := make([]float64, len(inlineDepths))
		for i, k := range inlineDepths {
			res, err := r.Run(wl, "x86", fmt.Sprintf("inline:%d+ibtc:16384", k))
			if err != nil {
				return err
			}
			vals[i] = res.Slowdown()
			geo[i] = append(geo[i], vals[i])
		}
		series = append(series, textplot.NamedSeries{Name: wl, Values: vals})
	}
	gm := make([]float64, len(inlineDepths))
	for i := range geo {
		gm[i] = Geomean(geo[i])
	}
	series = append(series, textplot.NamedSeries{Name: "geomean", Values: gm})
	textplot.Series(w, "slowdown vs inline-cache depth, IBTC fallback (x86)", "depth", xs, series, "x")
	return nil
}

// ---- E6: sieve size sweep ---------------------------------------------------

var sieveSizes = []int{1, 4, 16, 64, 256, 1024, 16384}

func runE6(r *Runner, w io.Writer) error {
	xs := make([]string, len(sieveSizes))
	specs := make([]string, len(sieveSizes))
	for i, n := range sieveSizes {
		xs[i] = fmt.Sprintf("%d", n)
		specs[i] = fmt.Sprintf("sieve:%d", n)
	}
	if err := r.grid(ibHeavy, []string{"x86"}, specs); err != nil {
		return err
	}
	var series []textplot.NamedSeries
	geo := make([][]float64, len(sieveSizes))
	for _, wl := range ibHeavy {
		vals := make([]float64, len(sieveSizes))
		for i, n := range sieveSizes {
			res, err := r.Run(wl, "x86", fmt.Sprintf("sieve:%d", n))
			if err != nil {
				return err
			}
			vals[i] = res.Slowdown()
			geo[i] = append(geo[i], vals[i])
		}
		series = append(series, textplot.NamedSeries{Name: wl, Values: vals})
	}
	gm := make([]float64, len(sieveSizes))
	for i := range geo {
		gm[i] = Geomean(geo[i])
	}
	series = append(series, textplot.NamedSeries{Name: "geomean", Values: gm})
	textplot.Series(w, "slowdown vs sieve buckets (x86)", "buckets", xs, series, "x")
	return nil
}

// ---- E7: return handling ------------------------------------------------------

func runE7(r *Runner, w io.Writer) error {
	specs := []string{SpecIBTC, SpecRetCache, SpecFastRet}
	names := []string{"ibtc-returns", "return-cache", "fast-returns"}
	if err := r.grid(r.suite(), []string{"x86", "sparc"}, specs); err != nil {
		return err
	}
	for _, arch := range []string{"x86", "sparc"} {
		headers := append([]string{"workload"}, names...)
		var rows [][]string
		geo := make([][]float64, len(specs))
		for _, wl := range r.suite() {
			row := []string{wl}
			for i, spec := range specs {
				res, err := r.Run(wl, arch, spec)
				if err != nil {
					return err
				}
				row = append(row, fmtF(res.Slowdown())+"x")
				geo[i] = append(geo[i], res.Slowdown())
			}
			rows = append(rows, row)
		}
		grow := []string{"geomean"}
		for i := range specs {
			grow = append(grow, fmtF(Geomean(geo[i]))+"x")
		}
		rows = append(rows, grow)
		fmt.Fprintf(w, "return-handling slowdowns (%s):\n", arch)
		textplot.Table(w, headers, rows)
		fmt.Fprintln(w)
	}
	return nil
}

// ---- E8/E9: best-of-each comparison ---------------------------------------------

func bestOfEach(r *Runner, w io.Writer, arch string) error {
	if err := r.grid(r.suite(), []string{arch}, BestSpecs); err != nil {
		return err
	}
	names := []string{"naive", "ibtc", "inline+ibtc", "sieve", "fastret+ibtc", "retcache+ibtc"}
	headers := append([]string{"workload"}, names...)
	var rows [][]string
	geo := make([][]float64, len(BestSpecs))
	for _, wl := range r.suite() {
		row := []string{wl}
		for i, spec := range BestSpecs {
			res, err := r.Run(wl, arch, spec)
			if err != nil {
				return err
			}
			row = append(row, fmtF(res.Slowdown())+"x")
			geo[i] = append(geo[i], res.Slowdown())
		}
		rows = append(rows, row)
	}
	grow := []string{"geomean"}
	gms := make([]float64, len(BestSpecs))
	for i := range BestSpecs {
		gms[i] = Geomean(geo[i])
		grow = append(grow, fmtF(gms[i])+"x")
	}
	rows = append(rows, grow)
	fmt.Fprintf(w, "slowdown vs native, best configuration of each mechanism (%s):\n", arch)
	textplot.Table(w, headers, rows)

	// Ranking summary: the cross-architecture claim in one line.
	type rank struct {
		name string
		gm   float64
	}
	ranks := make([]rank, 0, len(names)-1)
	for i := 1; i < len(names); i++ { // skip naive
		ranks = append(ranks, rank{names[i], gms[i]})
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].gm < ranks[j].gm })
	fmt.Fprintf(w, "\nranking on %s:", arch)
	for i, rk := range ranks {
		if i > 0 {
			fmt.Fprint(w, " <")
		}
		fmt.Fprintf(w, " %s(%.2fx)", rk.name, rk.gm)
	}
	fmt.Fprintln(w)
	return nil
}

func runE8(r *Runner, w io.Writer) error { return bestOfEach(r, w, "x86") }
func runE9(r *Runner, w io.Writer) error { return bestOfEach(r, w, "sparc") }

// ---- E10: cycle breakdown ----------------------------------------------------

func runE10(r *Runner, w io.Writer) error {
	if err := r.grid(r.suite(), []string{"x86"}, []string{SpecNaive, SpecIBTC}); err != nil {
		return err
	}
	for _, spec := range []string{SpecNaive, SpecIBTC} {
		headers := []string{"workload", "slowdown", "body%", "IB%", "ctx%", "trans%", "mech hit%"}
		var rows [][]string
		for _, wl := range r.suite() {
			res, err := r.Run(wl, "x86", spec)
			if err != nil {
				return err
			}
			b := res.Prof.Overhead(res.SDT.Cycles)
			rows = append(rows, []string{
				wl,
				fmtF(res.Slowdown()) + "x",
				fmt.Sprintf("%.1f", 100*b.Frac(b.Body)),
				fmt.Sprintf("%.1f", 100*b.Frac(b.IB)),
				fmt.Sprintf("%.1f", 100*b.Frac(b.Ctx)),
				fmt.Sprintf("%.1f", 100*b.Frac(b.Trans)),
				fmt.Sprintf("%.1f", 100*res.Prof.HitRate()),
			})
		}
		fmt.Fprintf(w, "cycle breakdown under %s (x86):\n", spec)
		textplot.Table(w, headers, rows)
		fmt.Fprintln(w)
	}
	return nil
}

// ---- E11: flags cost ablation ---------------------------------------------------

var flagsCosts = []int{0, 4, 8, 12, 16, 20}

func runE11(r *Runner, w io.Writer) error {
	xs := make([]string, len(flagsCosts))
	for i, c := range flagsCosts {
		xs[i] = fmt.Sprintf("%d", c)
	}
	var series []textplot.NamedSeries
	for _, mech := range []string{SpecIBTC, SpecSieve, SpecInline} {
		vals := make([]float64, len(flagsCosts))
		for i, c := range flagsCosts {
			var all []float64
			for _, wl := range ibHeavy {
				m := hostarch.X86()
				m.Name = fmt.Sprintf("x86-flags%d", c)
				m.FlagsSave, m.FlagsRestore = c, c
				res, err := r.RunWithModel(wl, mech, m)
				if err != nil {
					return err
				}
				all = append(all, res.Slowdown())
			}
			vals[i] = Geomean(all)
		}
		series = append(series, textplot.NamedSeries{Name: mech, Values: vals})
	}
	textplot.Series(w, "geomean slowdown vs flags save/restore cost (x86 base model, IB-heavy subset)",
		"flags cycles", xs, series, "x")
	fmt.Fprintln(w, "\n(x86 charges ~9/7 cycles; SPARC charges 0 — this sweep isolates why the ranking shifts)")
	return nil
}

// ---- E12: dispatch-jump locality ablation ------------------------------------------

func runE12(r *Runner, w io.Writer) error {
	specs := []string{"ibtc:16384", "ibtc:16384:sharedjump", SpecNaive}
	// The flat direct-mapped x86 BTB is the paper's setting; the arm
	// model's two-level set-associative BTB (with a repairing RAS) is the
	// predictor-fidelity cross-check: if the shared-jump penalty survives
	// a faithful multi-level organization, the conclusion is not an
	// artifact of the flat model.
	archs := []string{"x86", "arm"}
	if err := r.grid(r.suite(), archs, specs); err != nil {
		return err
	}
	headers := []string{"workload",
		"per-site jump", "BTB miss%",
		"shared jump", "BTB miss%",
		"naive (shared exit)", "BTB miss%"}
	for _, arch := range archs {
		var rows [][]string
		for _, wl := range r.suite() {
			row := []string{wl}
			for _, spec := range specs {
				res, err := r.Run(wl, arch, spec)
				if err != nil {
					return err
				}
				row = append(row, fmtF(res.Slowdown())+"x",
					fmt.Sprintf("%.1f", 100*res.BTBMissRate))
			}
			rows = append(rows, row)
		}
		fmt.Fprintf(w, "[%s]\n", arch)
		textplot.Table(w, headers, rows)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(funneling all dispatches through one jump forfeits per-site BTB locality;")
	fmt.Fprintln(w, " the effect persists under arm's two-level set-associative BTB)")
	return nil
}
