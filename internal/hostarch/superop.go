package hostarch

import (
	"fmt"

	"sdt/internal/isa"
)

// SuperOp is one fused multi-instruction sequence a superblock compiler may
// emit as a single host operation. Fusion is a cost-model rewrite: the
// guest instructions still execute individually for their architectural
// effect, but a matched sequence is priced at Cycles (replacing the sum of
// its constituents' static costs) and occupies Bytes of emitted code
// (replacing len(Ops)*CodeBytesPerInst). Data-dependent costs — the D-cache
// reference of a load or store constituent — are still charged per
// instruction, so only the static pipeline cost fuses.
//
// Position rule: every constituent except the last must be a pure ALU
// operation; the final constituent may additionally be a load or store
// (an address-generation sequence folding into a memory operand). Control
// transfers never fuse — they end superblock parts.
//
// The built-in tables come from corpus mining: `sdtfuzz -mine` executes
// the differential random-program corpus through the semantic core and
// ranks recurring fusable op n-grams by dynamic frequency (see the table
// comments for the measured ranking).
type SuperOp struct {
	Name   string   // short mnemonic for profiles and docs, e.g. "lea"
	Ops    []isa.Op // guest opcode sequence, in order; len >= 2
	Cycles int      // fused static cost, replacing the constituents' sum
	Bytes  int      // fused emitted-code size, replacing len(Ops)*CodeBytesPerInst
}

// StaticOpCycles is the data-independent pipeline cost of one guest
// instruction under m: the per-op term machine.StaticBodyCost sums.
// Control transfers are zero here — their cost is charged at the fragment
// exit (or elided entirely inside a superblock); loads and stores price
// only the pipeline slot, with the D-cache reference charged at run time.
func (m *Model) StaticOpCycles(op isa.Op) int {
	switch {
	case op == isa.MUL:
		return m.Mul
	case op == isa.DIV || op == isa.DIVU || op == isa.REM || op == isa.REMU:
		return m.Div
	case op.IsLoad():
		return m.Load
	case op.IsStore():
		return m.Store
	case op == isa.OUT:
		return m.Out
	case op.IsControl():
		return 0
	default:
		return m.ALU
	}
}

// validateSuperOps checks the model's super-op table: well-formed sequences
// (length >= 2, ALU interior, ALU-or-memory final), profitable but
// non-negative costs (a fused sequence may not cost more cycles or bytes
// than its unfused form — otherwise the peephole rewriter would be a
// pessimization — and may not be free), and distinct opcode sequences.
// Validate runs on every VM construction, so the success path must not
// allocate; the duplicate check is a direct pairwise comparison (tables
// are a handful of entries), not a map of formatted keys.
func (m *Model) validateSuperOps() error {
	for i, so := range m.SuperOps {
		if so.Name == "" {
			return fmt.Errorf("hostarch: %s super-op %d has no name", m.Name, i)
		}
		if len(so.Ops) < 2 {
			return fmt.Errorf("hostarch: %s super-op %q has %d ops (need >= 2)", m.Name, so.Name, len(so.Ops))
		}
		unfused := 0
		for j, op := range so.Ops {
			last := j == len(so.Ops)-1
			if !op.IsALU() && !(last && op.IsMem()) {
				return fmt.Errorf("hostarch: %s super-op %q: op %v not fusable at position %d", m.Name, so.Name, op, j)
			}
			unfused += m.StaticOpCycles(op)
		}
		if so.Cycles < 1 || so.Cycles > unfused {
			return fmt.Errorf("hostarch: %s super-op %q: fused cost %d outside [1, %d]", m.Name, so.Name, so.Cycles, unfused)
		}
		maxBytes := len(so.Ops) * m.CodeBytesPerInst
		if so.Bytes < 1 || so.Bytes > maxBytes {
			return fmt.Errorf("hostarch: %s super-op %q: fused size %d outside [1, %d]", m.Name, so.Name, so.Bytes, maxBytes)
		}
		for _, prev := range m.SuperOps[:i] {
			if sameOps(prev.Ops, so.Ops) {
				return fmt.Errorf("hostarch: %s super-op %q duplicates sequence %v", m.Name, so.Name, so.Ops)
			}
		}
	}
	return nil
}

func sameOps(a, b []isa.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
