// Package hostarch defines parametric cost models of the host processors
// the paper measures on. A Model prices every host-level operation an SDT
// emits or a native program executes: ALU work, memory references (on top
// of the simulated L1 caches), control transfers (on top of the simulated
// BTB and return-address stack), condition-flag spills, context switches
// and translation work.
//
// Two built-in models bracket the paper's cross-architecture comparison:
//
//   - X86: deep pipeline, expensive indirect-branch mispredictions, and —
//     decisive for inline compare sequences — expensive eflags save/restore
//     (pushf/popf) around any compare the SDT inserts inside the guest's
//     live-flags region.
//   - SPARC: shallower pipeline with cheaper mispredictions, costlier
//     context switches (register-window spill/fill), and free "flags"
//     handling because compares can target a scratch condition register.
//
// The absolute numbers are calibrated to mid-2000s hardware of each flavour
// but every experiment reports ratios (SDT cycles / native cycles), so the
// reproduction depends on relative, not absolute, costs. E11/E12 ablate the
// two parameters that drive the paper's architecture-dependence claim.
package hostarch

import (
	"fmt"

	"sdt/internal/cache"
)

// CostModelVersion identifies the current calibration of the built-in
// models. It is folded into every content-addressed result key (see
// internal/service), so persisted measurements are invalidated when the
// numbers change. Bump it whenever any built-in model's parameters, the
// cache/predictor geometries, or the cost-charging rules move.
const CostModelVersion = 1

// Model prices host-level operations in cycles.
type Model struct {
	Name string

	// Straight-line instruction costs. Load/Store are the pipeline costs
	// of a hitting access; cache misses add the penalties below.
	ALU, Mul, Div int
	Load, Store   int
	Out           int // environment/output instruction

	// Control transfers. ReturnHit/Miss price a host return through the
	// RAS; IndirectHit/Miss price a host indirect jump through the BTB.
	BranchTaken, BranchNotTaken int
	DirectJump                  int
	CallDirect                  int
	ReturnHit, ReturnMiss       int
	IndirectHit, IndirectMiss   int

	// Costs of SDT-emitted helper code.
	FlagsSave, FlagsRestore int // spill/reload of condition flags
	CompareBranch           int // one inline compare-and-branch probe
	HashCompute             int // hash of a target address (shift/mask)
	TableAddr               int // address arithmetic for one table probe
	TableStore              int // updating a software table entry
	CtxSave, CtxRestore     int // one half of a full context switch
	MapProbe                int // translator-side lookup (beyond D-cache)
	TransBase, TransPerInst int // translating one fragment / one instruction

	// Memory hierarchy. Hitting accesses are priced by Load/Store (data)
	// and zero (instruction fetch overlaps); misses add the penalties.
	DMissPenalty, IMissPenalty int
	ICache, DCache             cache.Config
	BTBEntries, RASDepth       int

	// Code layout: emitted host-code bytes per translated guest
	// instruction and per dispatch stub. These set the fragment cache's
	// I-cache footprint, which is what the sieve trades against the IBTC.
	CodeBytesPerInst int
	StubBytes        int
}

// Validate reports whether every parameter is in a sane range.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("hostarch: model has no name")
	}
	nonneg := map[string]int{
		"ALU": m.ALU, "Mul": m.Mul, "Div": m.Div, "Load": m.Load, "Store": m.Store,
		"Out": m.Out, "BranchTaken": m.BranchTaken, "BranchNotTaken": m.BranchNotTaken,
		"DirectJump": m.DirectJump, "CallDirect": m.CallDirect,
		"ReturnHit": m.ReturnHit, "ReturnMiss": m.ReturnMiss,
		"IndirectHit": m.IndirectHit, "IndirectMiss": m.IndirectMiss,
		"FlagsSave": m.FlagsSave, "FlagsRestore": m.FlagsRestore,
		"CompareBranch": m.CompareBranch, "HashCompute": m.HashCompute,
		"TableAddr": m.TableAddr, "TableStore": m.TableStore,
		"CtxSave": m.CtxSave, "CtxRestore": m.CtxRestore, "MapProbe": m.MapProbe,
		"TransBase": m.TransBase, "TransPerInst": m.TransPerInst,
		"DMissPenalty": m.DMissPenalty, "IMissPenalty": m.IMissPenalty,
	}
	for name, v := range nonneg {
		if v < 0 {
			return fmt.Errorf("hostarch: %s.%s = %d is negative", m.Name, name, v)
		}
	}
	if err := m.ICache.Validate(); err != nil {
		return fmt.Errorf("hostarch: %s I-cache: %w", m.Name, err)
	}
	if err := m.DCache.Validate(); err != nil {
		return fmt.Errorf("hostarch: %s D-cache: %w", m.Name, err)
	}
	if m.BTBEntries <= 0 || m.BTBEntries&(m.BTBEntries-1) != 0 {
		return fmt.Errorf("hostarch: %s BTBEntries = %d, want positive power of two", m.Name, m.BTBEntries)
	}
	if m.RASDepth <= 0 {
		return fmt.Errorf("hostarch: %s RASDepth = %d, want positive", m.Name, m.RASDepth)
	}
	if m.CodeBytesPerInst <= 0 || m.StubBytes <= 0 {
		return fmt.Errorf("hostarch: %s code layout sizes must be positive", m.Name)
	}
	return nil
}

// X86 returns the deep-pipeline, flags-architecture model.
func X86() *Model {
	return &Model{
		Name: "x86",
		ALU:  1, Mul: 4, Div: 24, Load: 1, Store: 1, Out: 2,
		BranchTaken: 2, BranchNotTaken: 1, DirectJump: 1, CallDirect: 2,
		ReturnHit: 2, ReturnMiss: 25, IndirectHit: 2, IndirectMiss: 25,
		FlagsSave: 9, FlagsRestore: 7,
		CompareBranch: 2, HashCompute: 2, TableAddr: 1, TableStore: 2,
		CtxSave: 100, CtxRestore: 100, MapProbe: 30,
		TransBase: 400, TransPerInst: 40,
		DMissPenalty: 18, IMissPenalty: 30,
		ICache:     cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		DCache:     cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		BTBEntries: 512, RASDepth: 16,
		CodeBytesPerInst: 6, StubBytes: 16,
	}
}

// ARM returns a third calibration point between the two paper models: an
// embedded-class core with a short pipeline (cheap mispredictions), small
// predictors, modest caches — and a small nonzero flags cost, because ARM
// compare sequences can usually use a scratch condition field but not
// always. Not part of the paper's evaluation; useful for the
// cross-architecture experiments' robustness and available to every CLI
// via -arch arm.
func ARM() *Model {
	return &Model{
		Name: "arm",
		ALU:  1, Mul: 3, Div: 20, Load: 1, Store: 1, Out: 2,
		BranchTaken: 1, BranchNotTaken: 1, DirectJump: 1, CallDirect: 1,
		ReturnHit: 1, ReturnMiss: 8, IndirectHit: 1, IndirectMiss: 8,
		FlagsSave: 2, FlagsRestore: 2,
		CompareBranch: 2, HashCompute: 2, TableAddr: 1, TableStore: 2,
		CtxSave: 70, CtxRestore: 70, MapProbe: 24,
		TransBase: 350, TransPerInst: 35,
		DMissPenalty: 22, IMissPenalty: 22,
		ICache:     cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Ways: 2},
		DCache:     cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Ways: 2},
		BTBEntries: 64, RASDepth: 8,
		CodeBytesPerInst: 4, StubBytes: 12,
	}
}

// SPARC returns the shallow-pipeline, windowed-register model.
func SPARC() *Model {
	return &Model{
		Name: "sparc",
		ALU:  1, Mul: 5, Div: 36, Load: 2, Store: 2, Out: 2,
		BranchTaken: 1, BranchNotTaken: 1, DirectJump: 1, CallDirect: 1,
		ReturnHit: 1, ReturnMiss: 12, IndirectHit: 1, IndirectMiss: 12,
		FlagsSave: 0, FlagsRestore: 0,
		CompareBranch: 2, HashCompute: 2, TableAddr: 1, TableStore: 2,
		CtxSave: 160, CtxRestore: 160, MapProbe: 30,
		TransBase: 500, TransPerInst: 50,
		DMissPenalty: 26, IMissPenalty: 26,
		ICache:     cache.Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 2},
		DCache:     cache.Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 2},
		BTBEntries: 128, RASDepth: 8,
		CodeBytesPerInst: 8, StubBytes: 16,
	}
}

// Models returns the built-in models keyed by name.
func Models() map[string]*Model {
	return map[string]*Model{"x86": X86(), "sparc": SPARC(), "arm": ARM()}
}

// ByName returns a fresh copy of the named built-in model.
func ByName(name string) (*Model, error) {
	switch name {
	case "x86":
		return X86(), nil
	case "sparc":
		return SPARC(), nil
	case "arm":
		return ARM(), nil
	}
	return nil, fmt.Errorf("hostarch: unknown model %q (want x86, sparc or arm)", name)
}
