// Package hostarch defines parametric cost models of the host processors
// the paper measures on. A Model prices every host-level operation an SDT
// emits or a native program executes: ALU work, memory references (on top
// of the simulated L1 caches), control transfers (on top of the simulated
// BTB and return-address stack), condition-flag spills, context switches
// and translation work.
//
// Two built-in models bracket the paper's cross-architecture comparison:
//
//   - X86: deep pipeline, expensive indirect-branch mispredictions, and —
//     decisive for inline compare sequences — expensive eflags save/restore
//     (pushf/popf) around any compare the SDT inserts inside the guest's
//     live-flags region.
//   - SPARC: shallower pipeline with cheaper mispredictions, costlier
//     context switches (register-window spill/fill), and free "flags"
//     handling because compares can target a scratch condition register.
//
// The absolute numbers are calibrated to mid-2000s hardware of each flavour
// but every experiment reports ratios (SDT cycles / native cycles), so the
// reproduction depends on relative, not absolute, costs. E11/E12 ablate the
// two parameters that drive the paper's architecture-dependence claim.
package hostarch

import (
	"fmt"

	"sdt/internal/cache"
	"sdt/internal/isa"
	"sdt/internal/predictor"
)

// CostModelVersion identifies the current calibration of the built-in
// models. It is folded into every content-addressed result key (see
// internal/service), so persisted measurements are invalidated when the
// numbers change. Bump it whenever any built-in model's parameters, the
// cache/predictor geometries, or the cost-charging rules move.
//
// Version 2: parameterized predictor geometries (set-associative/two-level
// BTB, RAS overflow+repair policies) and the arm model's two-level BTB.
//
// Version 3: superblock compilation — traces execute as fused single-body
// fragments (direct transfers along the recorded path elided, emitted
// trace code compacted through per-model super-op tables, I-fetch charged
// per emitted cache line), so every trace-mode cycle total moved.
//
// Version 4: adaptive dispatch — per-arch AdaptiveParams (promotion and
// demotion thresholds, per-promotion re-translation charge) join the
// model, so runs under the "adaptive" mechanism depend on these numbers.
const CostModelVersion = 4

// Model prices host-level operations in cycles.
type Model struct {
	Name string

	// Straight-line instruction costs. Load/Store are the pipeline costs
	// of a hitting access; cache misses add the penalties below.
	ALU, Mul, Div int
	Load, Store   int
	Out           int // environment/output instruction

	// Control transfers. ReturnHit/Miss price a host return through the
	// RAS; IndirectHit/Miss price a host indirect jump through the BTB.
	BranchTaken, BranchNotTaken int
	DirectJump                  int
	CallDirect                  int
	ReturnHit, ReturnMiss       int
	IndirectHit, IndirectMiss   int

	// Costs of SDT-emitted helper code.
	FlagsSave, FlagsRestore int // spill/reload of condition flags
	CompareBranch           int // one inline compare-and-branch probe
	HashCompute             int // hash of a target address (shift/mask)
	TableAddr               int // address arithmetic for one table probe
	TableStore              int // updating a software table entry
	CtxSave, CtxRestore     int // one half of a full context switch
	MapProbe                int // translator-side lookup (beyond D-cache)
	TransBase, TransPerInst int // translating one fragment / one instruction

	// Memory hierarchy. Hitting accesses are priced by Load/Store (data)
	// and zero (instruction fetch overlaps); misses add the penalties.
	DMissPenalty, IMissPenalty int
	ICache, DCache             cache.Config

	// Predictor geometries. BTBL2HitPenalty is the extra cost of an
	// indirect transfer predicted by the BTB's second level (zero for
	// single-level models): the promoted prediction arrives later than a
	// first-level hit but far earlier than a mispredict redirect.
	BTB             predictor.BTBConfig
	RAS             predictor.RASConfig
	BTBL2HitPenalty int

	// Code layout: emitted host-code bytes per translated guest
	// instruction and per dispatch stub. These set the fragment cache's
	// I-cache footprint, which is what the sieve trades against the IBTC.
	CodeBytesPerInst int
	StubBytes        int

	// SuperOps are the fused multi-instruction sequences this host can
	// emit as single operations; superblock compilation peephole-rewrites
	// trace bodies through this table (see SuperOp). Empty disables
	// fusion for the model.
	SuperOps []SuperOp

	// Adaptive parameterizes adaptive per-site mechanism selection (the
	// "adaptive" entry in internal/ib): when a site's observed behaviour
	// crosses these thresholds its emitted lookup sequence is swapped by
	// re-translating the owning fragment. The thresholds are per-arch
	// because the crossover points depend on the relative costs of flag
	// spills, indirect mispredictions and translation work.
	Adaptive AdaptiveParams
}

// AdaptiveParams tunes the adaptive mechanism's per-site promotion state
// machine and prices its re-translations.
type AdaptiveParams struct {
	// PromoteExecs is how many executions a site must accumulate before
	// any tier change is considered (the observation window).
	PromoteExecs uint64
	// PolyTargets is the distinct-target count above which a site leaves
	// the inline tier for the IBTC tier.
	PolyTargets int
	// MegaTargets is the distinct-target count above which an IBTC-tier
	// site is promoted to the sieve tier. Must exceed PolyTargets.
	MegaTargets int
	// DemoteRun is the length of a run of consecutive same-target
	// executions after which a promoted site is demoted back to the
	// inline tier (the site has gone monomorphic again).
	DemoteRun uint64
	// RetransCycles is the charge per tier change: the translator work of
	// re-emitting the owning fragment with the new lookup sequence. It is
	// attributed to the translation category.
	RetransCycles uint64
	// MissBudget is the number of inline-tier misses a site may take
	// within one translation tenure (the counter resets on flush and on
	// tier change) before it is promoted regardless of its distinct-target
	// count. It catches thrashing sites the polymorphism rule cannot: a
	// return alternating between two callers never exceeds PolyTargets
	// distinct targets yet misses a single-slot compare on most
	// executions, and every such miss costs a full translator entry —
	// break-even against the IBTC probe sits at a miss rate of a few
	// percent, so the budget is a count, not a rate.
	MissBudget uint64
}

func (a AdaptiveParams) validate(model string) error {
	if a.PromoteExecs < 1 {
		return fmt.Errorf("hostarch: %s Adaptive.PromoteExecs = %d must be >= 1", model, a.PromoteExecs)
	}
	if a.PolyTargets < 1 {
		return fmt.Errorf("hostarch: %s Adaptive.PolyTargets = %d must be >= 1", model, a.PolyTargets)
	}
	if a.MegaTargets <= a.PolyTargets {
		return fmt.Errorf("hostarch: %s Adaptive.MegaTargets = %d must exceed PolyTargets = %d",
			model, a.MegaTargets, a.PolyTargets)
	}
	if a.DemoteRun < 1 {
		return fmt.Errorf("hostarch: %s Adaptive.DemoteRun = %d must be >= 1", model, a.DemoteRun)
	}
	if a.MissBudget < 1 {
		return fmt.Errorf("hostarch: %s Adaptive.MissBudget = %d must be >= 1", model, a.MissBudget)
	}
	return nil
}

// Validate reports whether every parameter is in a sane range.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("hostarch: model has no name")
	}
	nonneg := map[string]int{
		"ALU": m.ALU, "Mul": m.Mul, "Div": m.Div, "Load": m.Load, "Store": m.Store,
		"Out": m.Out, "BranchTaken": m.BranchTaken, "BranchNotTaken": m.BranchNotTaken,
		"DirectJump": m.DirectJump, "CallDirect": m.CallDirect,
		"ReturnHit": m.ReturnHit, "ReturnMiss": m.ReturnMiss,
		"IndirectHit": m.IndirectHit, "IndirectMiss": m.IndirectMiss,
		"FlagsSave": m.FlagsSave, "FlagsRestore": m.FlagsRestore,
		"CompareBranch": m.CompareBranch, "HashCompute": m.HashCompute,
		"TableAddr": m.TableAddr, "TableStore": m.TableStore,
		"CtxSave": m.CtxSave, "CtxRestore": m.CtxRestore, "MapProbe": m.MapProbe,
		"TransBase": m.TransBase, "TransPerInst": m.TransPerInst,
		"DMissPenalty": m.DMissPenalty, "IMissPenalty": m.IMissPenalty,
		"BTBL2HitPenalty": m.BTBL2HitPenalty,
	}
	for name, v := range nonneg {
		if v < 0 {
			return fmt.Errorf("hostarch: %s.%s = %d is negative", m.Name, name, v)
		}
	}
	if err := m.ICache.Validate(); err != nil {
		return fmt.Errorf("hostarch: %s I-cache: %w", m.Name, err)
	}
	if err := m.DCache.Validate(); err != nil {
		return fmt.Errorf("hostarch: %s D-cache: %w", m.Name, err)
	}
	if err := m.BTB.Validate(); err != nil {
		return fmt.Errorf("hostarch: %s BTB: %w", m.Name, err)
	}
	if err := m.RAS.Validate(); err != nil {
		return fmt.Errorf("hostarch: %s RAS: %w", m.Name, err)
	}
	if m.BTB.Levels == 1 && m.BTBL2HitPenalty != 0 {
		return fmt.Errorf("hostarch: %s BTBL2HitPenalty = %d but the BTB has one level", m.Name, m.BTBL2HitPenalty)
	}
	if m.CodeBytesPerInst <= 0 || m.StubBytes <= 0 {
		return fmt.Errorf("hostarch: %s code layout sizes must be positive", m.Name)
	}
	if err := m.Adaptive.validate(m.Name); err != nil {
		return err
	}
	return m.validateSuperOps()
}

// X86 returns the deep-pipeline, flags-architecture model.
func X86() *Model {
	return &Model{
		Name: "x86",
		ALU:  1, Mul: 4, Div: 24, Load: 1, Store: 1, Out: 2,
		BranchTaken: 2, BranchNotTaken: 1, DirectJump: 1, CallDirect: 2,
		ReturnHit: 2, ReturnMiss: 25, IndirectHit: 2, IndirectMiss: 25,
		FlagsSave: 9, FlagsRestore: 7,
		CompareBranch: 2, HashCompute: 2, TableAddr: 1, TableStore: 2,
		CtxSave: 100, CtxRestore: 100, MapProbe: 30,
		TransBase: 400, TransPerInst: 40,
		DMissPenalty: 18, IMissPenalty: 30,
		ICache:           cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		DCache:           cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		BTB:              predictor.DirectMapped(512),
		RAS:              predictor.FixedDepth(16),
		CodeBytesPerInst: 6, StubBytes: 16,
		SuperOps:         x86SuperOpsTable,
		// Expensive flag spills and indirect mispredictions: tolerate more
		// distinct targets in the IBTC tier before paying for sieve chains
		// (every sieve probe saves eflags).
		Adaptive: AdaptiveParams{
			PromoteExecs: 16, PolyTargets: 2, MegaTargets: 16,
			DemoteRun: 64, RetransCycles: 300, MissBudget: 16,
		},
	}
}

// x86SuperOpsTable is the x86 fusion table, mined from the differential
// corpus (sdtfuzz -mine over 64 seeds, ~111k dynamic instructions). The
// tables are package-level and shared by every model copy — VM
// construction is allocation-sensitive — so they are read-only; a caller
// experimenting with custom fusions must assign a fresh slice, not edit
// in place. The top host-realizable n-grams and their dynamic counts:
//
//	lui+ori      8346   32-bit immediate formation -> mov imm32
//	lui+xori     3962   address formation ("la")   -> mov imm32
//	slli+add     3691   scaled index               -> lea
//	slli+add+lw  2063   scaled indexed load        -> mov r,[b+i*s]
//	add+lw       2063   base+index load            -> mov r,[b+i]
//	addi+sw      1077   push idiom (sp adjust+store) -> push
//
// The overall top raw pattern (add+xor+addi, 7134) is rejected: no modeled
// host retires three dependent ALU ops as one — fusion entries must map to
// a single host instruction or fused pair.
var x86SuperOpsTable = []SuperOp{
	{Name: "movimm", Ops: []isa.Op{isa.LUI, isa.ORI}, Cycles: 1, Bytes: 6},
	{Name: "movimmx", Ops: []isa.Op{isa.LUI, isa.XORI}, Cycles: 1, Bytes: 6},
	{Name: "lea", Ops: []isa.Op{isa.SLLI, isa.ADD}, Cycles: 1, Bytes: 6},
	{Name: "loadidx", Ops: []isa.Op{isa.SLLI, isa.ADD, isa.LW}, Cycles: 2, Bytes: 8},
	{Name: "loadbi", Ops: []isa.Op{isa.ADD, isa.LW}, Cycles: 1, Bytes: 6},
	{Name: "push", Ops: []isa.Op{isa.ADDI, isa.SW}, Cycles: 1, Bytes: 3},
}

// ARM returns a third calibration point between the two paper models: an
// embedded-class core with a short pipeline (cheap mispredictions), small
// predictors, modest caches — and a small nonzero flags cost, because ARM
// compare sequences can usually use a scratch condition field but not
// always. Not part of the paper's evaluation; useful for the
// cross-architecture experiments' robustness and available to every CLI
// via -arch arm (alias arm-like).
//
// Its BTB follows the organization reverse-engineered on real Arm cores: a
// tiny fully-probed first level (the "micro-BTB") backed by a larger
// set-associative second level with a hashed index, promotion on L2 hit,
// and a small extra cost for L2-predicted transfers. Its RAS checkpoints
// the top-of-stack pointer, so a mispredicted return does not consume the
// frame the next real return needs.
func ARM() *Model {
	return &Model{
		Name: "arm",
		ALU:  1, Mul: 3, Div: 20, Load: 1, Store: 1, Out: 2,
		BranchTaken: 1, BranchNotTaken: 1, DirectJump: 1, CallDirect: 1,
		ReturnHit: 1, ReturnMiss: 8, IndirectHit: 1, IndirectMiss: 8,
		FlagsSave: 2, FlagsRestore: 2,
		CompareBranch: 2, HashCompute: 2, TableAddr: 1, TableStore: 2,
		CtxSave: 70, CtxRestore: 70, MapProbe: 24,
		TransBase: 350, TransPerInst: 35,
		DMissPenalty: 22, IMissPenalty: 22,
		ICache: cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Ways: 2},
		DCache: cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Ways: 2},
		BTB: predictor.BTBConfig{
			Sets: 8, Ways: 4, // 32-entry micro-BTB
			Levels: 2,
			L2Sets: 64, L2Ways: 4, // 256-entry main BTB
			SiteShift: 2,
			Hash:      predictor.HashFib,
			Replace:   predictor.ReplaceLRU,
		},
		RAS:              predictor.RASConfig{Depth: 8, Overflow: predictor.OverflowWrap, Repair: predictor.RepairTop},
		BTBL2HitPenalty:  2,
		CodeBytesPerInst: 4, StubBytes: 12,
		SuperOps:         armSuperOpsTable,
		// Cheap mispredictions and small caches: middle ground between the
		// two paper models.
		Adaptive: AdaptiveParams{
			PromoteExecs: 16, PolyTargets: 2, MegaTargets: 8,
			DemoteRun: 64, RetransCycles: 250, MissBudget: 16,
		},
	}
}

// armSuperOpsTable is the arm fusion table (same corpus mining and
// sharing rules as x86SuperOpsTable). Shifted-operand ALU and
// scaled-register addressing are the signature arm fusions; the immediate
// pairs model a movw/movt-style fused pair.
var armSuperOpsTable = []SuperOp{
	{Name: "movimm", Ops: []isa.Op{isa.LUI, isa.ORI}, Cycles: 1, Bytes: 4},
	{Name: "movimmx", Ops: []isa.Op{isa.LUI, isa.XORI}, Cycles: 1, Bytes: 4},
	{Name: "alushift", Ops: []isa.Op{isa.SLLI, isa.ADD}, Cycles: 1, Bytes: 4},
	{Name: "ldrscaled", Ops: []isa.Op{isa.SLLI, isa.ADD, isa.LW}, Cycles: 2, Bytes: 4},
}

// SPARC returns the shallow-pipeline, windowed-register model.
func SPARC() *Model {
	return &Model{
		Name: "sparc",
		ALU:  1, Mul: 5, Div: 36, Load: 2, Store: 2, Out: 2,
		BranchTaken: 1, BranchNotTaken: 1, DirectJump: 1, CallDirect: 1,
		ReturnHit: 1, ReturnMiss: 12, IndirectHit: 1, IndirectMiss: 12,
		FlagsSave: 0, FlagsRestore: 0,
		CompareBranch: 2, HashCompute: 2, TableAddr: 1, TableStore: 2,
		CtxSave: 160, CtxRestore: 160, MapProbe: 30,
		TransBase: 500, TransPerInst: 50,
		DMissPenalty: 26, IMissPenalty: 26,
		ICache:           cache.Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 2},
		DCache:           cache.Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 2},
		BTB:              predictor.DirectMapped(128),
		RAS:              predictor.FixedDepth(8),
		CodeBytesPerInst: 8, StubBytes: 16,
		SuperOps:         sparcSuperOpsTable,
		// Flags are free, so sieve chains are cheap: promote to the sieve
		// tier at a low distinct-target count.
		Adaptive: AdaptiveParams{
			PromoteExecs: 16, PolyTargets: 2, MegaTargets: 4,
			DemoteRun: 64, RetransCycles: 350, MissBudget: 16,
		},
	}
}

// sparcSuperOpsTable is the sparc fusion table (same corpus mining and
// sharing rules as x86SuperOpsTable). SPARC has no scaled addressing modes
// and no shifted-operand ALU, so only the sethi+or immediate-formation
// pair fuses — fusion benefit is architecture-dependent, like everything
// else in the paper.
var sparcSuperOpsTable = []SuperOp{
	{Name: "sethior", Ops: []isa.Op{isa.LUI, isa.ORI}, Cycles: 1, Bytes: 8},
	{Name: "sethixor", Ops: []isa.Op{isa.LUI, isa.XORI}, Cycles: 1, Bytes: 8},
}

// Models returns the built-in models keyed by name.
func Models() map[string]*Model {
	return map[string]*Model{"x86": X86(), "sparc": SPARC(), "arm": ARM()}
}

// ByName returns a fresh copy of the named built-in model. Each model is
// also reachable under a "-like" alias ("x86-like", "sparc-like",
// "arm-like") — the models are calibrated flavours, not specific parts.
func ByName(name string) (*Model, error) {
	switch name {
	case "x86", "x86-like":
		return X86(), nil
	case "sparc", "sparc-like":
		return SPARC(), nil
	case "arm", "arm-like":
		return ARM(), nil
	}
	return nil, fmt.Errorf("hostarch: unknown model %q (want x86, sparc or arm)", name)
}
