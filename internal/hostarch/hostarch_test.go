package hostarch

import "testing"

func TestBuiltinModelsValid(t *testing.T) {
	for name, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("model key %q has Name %q", name, m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"x86", "sparc", "arm"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("vax"); err == nil {
		t.Error("ByName should reject unknown names")
	}
}

func TestByNameReturnsFreshCopies(t *testing.T) {
	a, _ := ByName("x86")
	b, _ := ByName("x86")
	a.FlagsSave = 999
	if b.FlagsSave == 999 {
		t.Error("ByName must return independent copies")
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Model)
	}{
		{"no name", func(m *Model) { m.Name = "" }},
		{"negative cost", func(m *Model) { m.Div = -1 }},
		{"negative flags", func(m *Model) { m.FlagsSave = -3 }},
		{"bad icache", func(m *Model) { m.ICache.LineBytes = 48 }},
		{"bad dcache", func(m *Model) { m.DCache.SizeBytes = 0 }},
		{"bad btb", func(m *Model) { m.BTBEntries = 100 }},
		{"zero btb", func(m *Model) { m.BTBEntries = 0 }},
		{"zero ras", func(m *Model) { m.RASDepth = 0 }},
		{"zero code bytes", func(m *Model) { m.CodeBytesPerInst = 0 }},
		{"zero stub bytes", func(m *Model) { m.StubBytes = 0 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			m := X86()
			tt.mutate(m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted model with %s", tt.name)
			}
		})
	}
}

func TestArchitectureContrasts(t *testing.T) {
	// The relationships the paper's cross-architecture argument rests on
	// must hold between the two models.
	x, s := X86(), SPARC()
	if !(x.FlagsSave > 0 && s.FlagsSave == 0) {
		t.Error("x86 must pay for flags saves; sparc must not")
	}
	if !(x.IndirectMiss > s.IndirectMiss) {
		t.Error("x86's deeper pipeline must make indirect mispredictions dearer")
	}
	if !(s.CtxSave > x.CtxSave) {
		t.Error("sparc register windows must make context switches dearer")
	}
	if !(x.ReturnMiss > x.ReturnHit && s.ReturnMiss > s.ReturnHit) {
		t.Error("return mispredictions must cost more than hits")
	}
	if !(x.IndirectMiss > x.IndirectHit && s.IndirectMiss > s.IndirectHit) {
		t.Error("indirect mispredictions must cost more than hits")
	}
	a := ARM()
	if !(a.IndirectMiss < s.IndirectMiss && a.IndirectMiss < x.IndirectMiss) {
		t.Error("the short-pipeline arm model must have the cheapest mispredictions")
	}
	if !(a.FlagsSave > 0 && a.FlagsSave < x.FlagsSave) {
		t.Error("arm flags cost must sit between sparc (free) and x86 (dear)")
	}
}
