package hostarch

import (
	"testing"

	"sdt/internal/predictor"
)

func TestBuiltinModelsValid(t *testing.T) {
	for name, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("model key %q has Name %q", name, m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"x86", "sparc", "arm"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("vax"); err == nil {
		t.Error("ByName should reject unknown names")
	}
}

// TestByNameAliases: every shipped model is reachable under its "-like"
// alias, resolves to the canonical model, and passes Validate.
func TestByNameAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"x86-like":   "x86",
		"sparc-like": "sparc",
		"arm-like":   "arm",
	} {
		m, err := ByName(alias)
		if err != nil {
			t.Errorf("ByName(%q): %v", alias, err)
			continue
		}
		if m.Name != canonical {
			t.Errorf("ByName(%q).Name = %q, want %q", alias, m.Name, canonical)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("aliased model %q invalid: %v", alias, err)
		}
	}
}

func TestByNameReturnsFreshCopies(t *testing.T) {
	a, _ := ByName("x86")
	b, _ := ByName("x86")
	a.FlagsSave = 999
	if b.FlagsSave == 999 {
		t.Error("ByName must return independent copies")
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Model)
	}{
		{"no name", func(m *Model) { m.Name = "" }},
		{"negative cost", func(m *Model) { m.Div = -1 }},
		{"negative flags", func(m *Model) { m.FlagsSave = -3 }},
		{"bad icache", func(m *Model) { m.ICache.LineBytes = 48 }},
		{"bad dcache", func(m *Model) { m.DCache.SizeBytes = 0 }},
		{"non-power-of-two btb sets", func(m *Model) { m.BTB.Sets = 100 }},
		{"zero btb sets", func(m *Model) { m.BTB.Sets = 0 }},
		{"non-power-of-two btb ways", func(m *Model) { m.BTB.Ways = 3 }},
		{"zero btb ways", func(m *Model) { m.BTB.Ways = 0 }},
		{"zero btb levels", func(m *Model) { m.BTB.Levels = 0 }},
		{"three btb levels", func(m *Model) { m.BTB.Levels = 3 }},
		{"levels=2 without L2 geometry", func(m *Model) { m.BTB.Levels = 2 }},
		{"L2 geometry without levels=2", func(m *Model) { m.BTB.L2Sets = 8; m.BTB.L2Ways = 2 }},
		{"absurd site shift", func(m *Model) { m.BTB.SiteShift = 99 }},
		{"negative site shift", func(m *Model) { m.BTB.SiteShift = -1 }},
		{"unknown btb hash", func(m *Model) { m.BTB.Hash = predictor.BTBHash(99) }},
		{"unknown btb replacement", func(m *Model) { m.BTB.Replace = predictor.BTBReplace(99) }},
		{"zero ras depth", func(m *Model) { m.RAS.Depth = 0 }},
		{"negative ras depth", func(m *Model) { m.RAS.Depth = -8 }},
		{"unknown ras overflow", func(m *Model) { m.RAS.Overflow = predictor.RASOverflow(99) }},
		{"unknown ras repair", func(m *Model) { m.RAS.Repair = predictor.RASRepair(99) }},
		{"L2 penalty on single-level btb", func(m *Model) { m.BTBL2HitPenalty = 2 }},
		{"negative L2 penalty", func(m *Model) { m.BTBL2HitPenalty = -1 }},
		{"zero code bytes", func(m *Model) { m.CodeBytesPerInst = 0 }},
		{"zero stub bytes", func(m *Model) { m.StubBytes = 0 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			m := X86()
			tt.mutate(m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted model with %s", tt.name)
			}
		})
	}

	// The same mutations must be caught on a two-level model where the
	// second level, not the first, is malformed.
	l2muts := []struct {
		name   string
		mutate func(*Model)
	}{
		{"non-power-of-two L2 sets", func(m *Model) { m.BTB.L2Sets = 100 }},
		{"zero L2 sets", func(m *Model) { m.BTB.L2Sets = 0 }},
		{"non-power-of-two L2 ways", func(m *Model) { m.BTB.L2Ways = 5 }},
	}
	for _, tt := range l2muts {
		t.Run(tt.name, func(t *testing.T) {
			m := ARM()
			tt.mutate(m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted model with %s", tt.name)
			}
		})
	}
}

// TestPredictorGeometryPinned pins the geometry each shipped model feeds
// the predictors: x86/sparc keep the historical flat organization (so the
// calibrated results stand), arm carries the two-level BTB and repairing
// RAS the profile exists to exercise.
func TestPredictorGeometryPinned(t *testing.T) {
	x := X86()
	if x.BTB != predictor.DirectMapped(512) || x.RAS != predictor.FixedDepth(16) {
		t.Errorf("x86 predictor geometry moved: BTB %+v RAS %+v", x.BTB, x.RAS)
	}
	s := SPARC()
	if s.BTB != predictor.DirectMapped(128) || s.RAS != predictor.FixedDepth(8) {
		t.Errorf("sparc predictor geometry moved: BTB %+v RAS %+v", s.BTB, s.RAS)
	}
	a := ARM()
	if a.BTB.Levels != 2 || a.BTB.Hash != predictor.HashFib || a.BTBL2HitPenalty <= 0 {
		t.Errorf("arm must model a two-level hashed BTB with an L2 penalty, got %+v penalty %d",
			a.BTB, a.BTBL2HitPenalty)
	}
	if a.RAS.Repair != predictor.RepairTop {
		t.Errorf("arm RAS must checkpoint the TOS pointer, got %v", a.RAS.Repair)
	}
	if a.BTB.Entries() <= a.BTB.Sets*a.BTB.Ways {
		t.Error("arm's second level must add capacity")
	}
}

func TestArchitectureContrasts(t *testing.T) {
	// The relationships the paper's cross-architecture argument rests on
	// must hold between the two models.
	x, s := X86(), SPARC()
	if !(x.FlagsSave > 0 && s.FlagsSave == 0) {
		t.Error("x86 must pay for flags saves; sparc must not")
	}
	if !(x.IndirectMiss > s.IndirectMiss) {
		t.Error("x86's deeper pipeline must make indirect mispredictions dearer")
	}
	if !(s.CtxSave > x.CtxSave) {
		t.Error("sparc register windows must make context switches dearer")
	}
	if !(x.ReturnMiss > x.ReturnHit && s.ReturnMiss > s.ReturnHit) {
		t.Error("return mispredictions must cost more than hits")
	}
	if !(x.IndirectMiss > x.IndirectHit && s.IndirectMiss > s.IndirectHit) {
		t.Error("indirect mispredictions must cost more than hits")
	}
	a := ARM()
	if !(a.IndirectMiss < s.IndirectMiss && a.IndirectMiss < x.IndirectMiss) {
		t.Error("the short-pipeline arm model must have the cheapest mispredictions")
	}
	if !(a.FlagsSave > 0 && a.FlagsSave < x.FlagsSave) {
		t.Error("arm flags cost must sit between sparc (free) and x86 (dear)")
	}
}
