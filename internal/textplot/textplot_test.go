package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, []string{"name", "value"}, [][]string{
		{"alpha", "1.00"},
		{"b", "123.45"},
	})
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator line = %q", lines[1])
	}
	// Numeric cells right-align: both values end at the same column.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("numeric columns not aligned:\n%q\n%q", lines[2], lines[3])
	}
}

func TestTableRaggedRows(t *testing.T) {
	var b strings.Builder
	// Rows longer or shorter than the header must not panic.
	Table(&b, []string{"a", "b"}, [][]string{
		{"1"},
		{"1", "2", "3"},
	})
	if !strings.Contains(b.String(), "3") {
		t.Error("extra cell dropped")
	}
}

func TestBarScaling(t *testing.T) {
	var b strings.Builder
	Bar(&b, "title", []string{"small", "large"}, []float64{1, 10}, "x")
	out := b.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	smallBars := strings.Count(lineWith(out, "small"), "#")
	largeBars := strings.Count(lineWith(out, "large"), "#")
	if largeBars != 50 {
		t.Errorf("max bar = %d, want full width 50", largeBars)
	}
	if smallBars != 5 {
		t.Errorf("small bar = %d, want 5", smallBars)
	}
	if !strings.Contains(lineWith(out, "large"), "10.00x") {
		t.Error("value label missing")
	}
}

func TestBarTinyNonZeroGetsOneMark(t *testing.T) {
	var b strings.Builder
	Bar(&b, "", []string{"tiny", "huge"}, []float64{0.001, 100}, "")
	if strings.Count(lineWith(b.String(), "tiny"), "#") != 1 {
		t.Error("nonzero value should render at least one mark")
	}
}

func TestBarZeroValues(t *testing.T) {
	var b strings.Builder
	Bar(&b, "", []string{"z"}, []float64{0}, "")
	if strings.Count(lineWith(b.String(), "z"), "#") != 0 {
		t.Error("zero value should render no marks")
	}
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	Series(&b, "sweep", "size", []string{"16", "64"}, []NamedSeries{
		{Name: "gcc", Values: []float64{2.5, 1.25}},
		{Name: "mcf", Values: []float64{1, 1}},
	}, "x")
	out := b.String()
	for _, want := range []string{"sweep", "size", "gcc", "mcf", "2.50x", "1.25x"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	for _, s := range []string{"1.25x", "100%", "-3", "2.5", "1e9"} {
		if !isNumeric(s) {
			t.Errorf("isNumeric(%q) = false", s)
		}
	}
	for _, s := range []string{"", "-", "gcc", "a1", "1 2"} {
		if isNumeric(s) {
			t.Errorf("isNumeric(%q) = true", s)
		}
	}
}

func lineWith(out, sub string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, sub) {
			return l
		}
	}
	return ""
}
