// Package textplot renders the experiment harness's tables and figures as
// plain text: aligned tables for the paper's tables, horizontal bar charts
// for its per-benchmark figures, and multi-series grids for its parameter
// sweeps.
package textplot

import (
	"fmt"
	"io"
	"strings"
)

// Table writes an aligned table with a header row.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				// Right-align numeric-looking cells, left-align the rest.
				if isNumeric(cell) {
					b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
					b.WriteString(cell)
				} else {
					b.WriteString(cell)
					if i < len(cells)-1 {
						b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
					}
				}
			} else {
				b.WriteString(cell)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	writeRow(headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range rows {
		writeRow(row)
	}
}

func isNumeric(s string) bool {
	if s == "" || s == "-" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c == '.', c == '-', c == '+', c == 'x', c == '%', c == 'e', c == 'k', c == 'M':
		default:
			return false
		}
	}
	return true
}

// Bar writes a horizontal bar chart: one row per label, bar length
// proportional to value, value printed after the bar.
func Bar(w io.Writer, title string, labels []string, values []float64, unit string) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if i < len(values) && values[i] > maxVal {
			maxVal = values[i]
		}
	}
	const barWidth = 50
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := 0
		if maxVal > 0 {
			n = int(v / maxVal * barWidth)
		}
		if n < 1 && v > 0 {
			n = 1
		}
		fmt.Fprintf(w, "  %-*s |%s %.2f%s\n", maxLabel, l, strings.Repeat("#", n), v, unit)
	}
}

// Series writes a sweep grid: one row per series, one column per x value.
// It is the textual form of the paper's line-chart figures.
func Series(w io.Writer, title string, xName string, xs []string, series []NamedSeries, unit string) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	headers := append([]string{xName + " \\ " + "series"}, xs...)
	rows := make([][]string, len(series))
	for i, s := range series {
		row := []string{s.Name}
		for _, v := range s.Values {
			row = append(row, fmt.Sprintf("%.2f%s", v, unit))
		}
		rows[i] = row
	}
	Table(w, headers, rows)
}

// NamedSeries is one row of a Series grid.
type NamedSeries struct {
	Name   string
	Values []float64
}
