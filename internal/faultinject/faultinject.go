// Package faultinject is the repo's deterministic fault-injection
// substrate: a seeded Plan arms named fault sites (store disk I/O, worker
// job boundaries, sweep cells, sweep journals) with a probability or a
// deterministic cadence, an error class, optional latency and a fire
// limit. A compiled Injector is consulted at each site; with no plan the
// injector is nil and every consumer guards the call behind a single
// pointer comparison, so the hooks cost nothing on production hot paths.
//
// Determinism: each site owns an independent splitmix64 stream seeded
// from (plan seed, site name), and cadence counters advance only on
// calls that could fire for that site's class. Two runs with the same
// plan, the same seed and the same per-site call sequence therefore
// inject exactly the same faults — failures found by cmd/sdtchaos replay.
//
// Plans are written in JSON, inline or in a file (see ParsePlan):
//
//	{
//	  "seed": 42,
//	  "points": [
//	    {"site": "store.disk.read", "class": "corrupt", "prob": 0.2},
//	    {"site": "store.disk.write", "class": "io", "every": 3, "limit": 10},
//	    {"site": "service.job", "class": "panic", "prob": 0.05},
//	    {"site": "sweep.cell", "class": "transient", "prob": 0.1, "latency_ms": 2}
//	  ]
//	}
package faultinject

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Fault classes a Point may carry.
const (
	// ClassIO is a generic injected I/O failure (not retryable).
	ClassIO = "io"
	// ClassTransient is a failure retry classifiers should retry.
	ClassTransient = "transient"
	// ClassPermanent is a failure that must never be retried.
	ClassPermanent = "permanent"
	// ClassCorrupt flips one bit of the data passing through the site
	// (delivered via Injector.Corrupt; Injector.Fail ignores it).
	ClassCorrupt = "corrupt"
	// ClassPanic panics at the site (exercising recover paths).
	ClassPanic = "panic"
	// ClassLatency injects only the configured delay, no error.
	ClassLatency = "latency"
)

var knownClasses = map[string]bool{
	ClassIO: true, ClassTransient: true, ClassPermanent: true,
	ClassCorrupt: true, ClassPanic: true, ClassLatency: true,
}

// Point arms one fault site. Exactly one of Prob and Every selects when
// the site fires: Prob fires pseudo-randomly (deterministically, from the
// site's seeded stream), Every fires on every Every-th eligible call.
type Point struct {
	// Site names the instrumented location (see each package's Site*
	// constants, e.g. store.SiteDiskRead).
	Site string `json:"site"`
	// Class is one of the Class* constants.
	Class string `json:"class"`
	// Prob is the per-call fire probability in [0, 1].
	Prob float64 `json:"prob,omitempty"`
	// Every fires deterministically every Every-th call (1 = every call).
	Every int `json:"every,omitempty"`
	// After skips the first After calls before the site can fire.
	After int `json:"after,omitempty"`
	// Limit caps total fires at the site (0 = unlimited).
	Limit int `json:"limit,omitempty"`
	// LatencyMS is a delay injected whenever the point fires.
	LatencyMS int `json:"latency_ms,omitempty"`
}

func (p Point) validate() error {
	if p.Site == "" {
		return errors.New("faultinject: point with empty site")
	}
	if !knownClasses[p.Class] {
		return fmt.Errorf("faultinject: point %s: unknown class %q", p.Site, p.Class)
	}
	if p.Prob < 0 || p.Prob > 1 {
		return fmt.Errorf("faultinject: point %s: prob %v outside [0, 1]", p.Site, p.Prob)
	}
	if p.Every < 0 || p.After < 0 || p.Limit < 0 || p.LatencyMS < 0 {
		return fmt.Errorf("faultinject: point %s: negative cadence/limit/latency", p.Site)
	}
	if p.Prob > 0 && p.Every > 0 {
		return fmt.Errorf("faultinject: point %s: prob and every are mutually exclusive", p.Site)
	}
	if p.Prob == 0 && p.Every == 0 {
		return fmt.Errorf("faultinject: point %s: neither prob nor every set (would never fire)", p.Site)
	}
	return nil
}

// Plan is a full fault plan: a seed plus one Point per armed site.
type Plan struct {
	Seed   uint64  `json:"seed"`
	Points []Point `json:"points"`
}

// Validate checks every point and rejects duplicate sites.
func (p *Plan) Validate() error {
	seen := make(map[string]bool, len(p.Points))
	for _, pt := range p.Points {
		if err := pt.validate(); err != nil {
			return err
		}
		if seen[pt.Site] {
			return fmt.Errorf("faultinject: duplicate point for site %s", pt.Site)
		}
		seen[pt.Site] = true
	}
	return nil
}

// ParsePlan reads a plan from spec: an inline JSON object (first
// non-space byte '{') or the path of a JSON file. The plan is validated.
func ParsePlan(spec string) (*Plan, error) {
	raw := []byte(spec)
	if !strings.HasPrefix(strings.TrimSpace(spec), "{") {
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, fmt.Errorf("faultinject: reading plan: %w", err)
		}
		raw = data
	}
	var plan Plan
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&plan); err != nil {
		return nil, fmt.Errorf("faultinject: decoding plan: %w", err)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &plan, nil
}

// ErrInjected matches (via errors.Is) every error produced by an
// Injector, whatever its class.
var ErrInjected = errors.New("faultinject: injected fault")

// Error is an injected failure, carrying its site and class.
type Error struct {
	Site  string
	Class string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s fault at %s", e.Class, e.Site)
}

// Is reports true for ErrInjected, so errors.Is(err, ErrInjected) holds
// for any injected fault.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// IsTransient reports whether err is an injected fault of ClassTransient
// (false for nil and for every non-injected error).
func IsTransient(err error) bool {
	var ie *Error
	return errors.As(err, &ie) && ie.Class == ClassTransient
}

// IsInjected reports whether err (or anything it wraps) was produced by
// an Injector.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// PointStats is the observed activity of one site.
type PointStats struct {
	Calls uint64 // eligible consultations of the site
	Fired uint64 // faults actually injected
}

// Injector is a compiled Plan. All methods are safe on a nil receiver
// (no-ops), so callers may thread a nil *Injector through without
// guards — though hot paths should still skip the call entirely.
type Injector struct {
	mu    sync.Mutex
	sites map[string]*siteState
}

type siteState struct {
	point Point
	rng   uint64
	calls uint64
	fired uint64
}

// New compiles plan into an Injector. A nil or empty plan compiles to a
// nil Injector.
func New(plan *Plan) *Injector {
	if plan == nil || len(plan.Points) == 0 {
		return nil
	}
	in := &Injector{sites: make(map[string]*siteState, len(plan.Points))}
	for _, pt := range plan.Points {
		h := fnv.New64a()
		h.Write([]byte(pt.Site))
		in.sites[pt.Site] = &siteState{point: pt, rng: plan.Seed ^ h.Sum64()}
	}
	return in
}

// splitmix64 advances *x and returns the next value of its stream.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d49fb133111eb3
	return z ^ (z >> 31)
}

// hit decides whether site fires on this call. wantCorrupt selects which
// consumer entry point is asking: Fail handles every class but corrupt,
// Corrupt handles only corrupt — a site of the other kind is ignored
// without consuming cadence, keeping the two entry points independent.
// draw is an extra deterministic value for the caller (bit selection).
func (in *Injector) hit(site string, wantCorrupt bool) (pt Point, draw uint64, fire bool) {
	if in == nil {
		return Point{}, 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.sites[site]
	if st == nil || (st.point.Class == ClassCorrupt) != wantCorrupt {
		return Point{}, 0, false
	}
	st.calls++
	if st.calls <= uint64(st.point.After) {
		return Point{}, 0, false
	}
	if st.point.Limit > 0 && st.fired >= uint64(st.point.Limit) {
		return Point{}, 0, false
	}
	if st.point.Every > 0 {
		fire = (st.calls-uint64(st.point.After))%uint64(st.point.Every) == 0
	} else {
		fire = float64(splitmix64(&st.rng)>>11)/(1<<53) < st.point.Prob
	}
	if !fire {
		return Point{}, 0, false
	}
	st.fired++
	return st.point, splitmix64(&st.rng), true
}

// Fail consults the plan at site and, when it fires, applies the point's
// latency and returns the injected error (nil for latency-only points).
// Panic-class points panic with an *Error value. Corrupt-class points
// never fire here; use Corrupt.
func (in *Injector) Fail(site string) error {
	pt, _, fire := in.hit(site, false)
	if !fire {
		return nil
	}
	if pt.LatencyMS > 0 {
		time.Sleep(time.Duration(pt.LatencyMS) * time.Millisecond)
	}
	switch pt.Class {
	case ClassPanic:
		panic(&Error{Site: site, Class: ClassPanic})
	case ClassLatency:
		return nil
	default:
		return &Error{Site: site, Class: pt.Class}
	}
}

// Corrupt consults a corrupt-class point at site and, when it fires,
// returns a copy of data with one deterministically chosen bit flipped.
// ok reports whether corruption was injected; data is returned unchanged
// (and aliased) otherwise. Empty data is never corrupted.
func (in *Injector) Corrupt(site string, data []byte) (out []byte, ok bool) {
	pt, draw, fire := in.hit(site, true)
	if !fire || len(data) == 0 {
		return data, false
	}
	if pt.LatencyMS > 0 {
		time.Sleep(time.Duration(pt.LatencyMS) * time.Millisecond)
	}
	out = make([]byte, len(data))
	copy(out, data)
	bit := draw % uint64(len(data)*8)
	out[bit/8] ^= 1 << (bit % 8)
	return out, true
}

// Stats snapshots per-site activity (nil map on a nil Injector).
func (in *Injector) Stats() map[string]PointStats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]PointStats, len(in.sites))
	for name, st := range in.sites {
		out[name] = PointStats{Calls: st.calls, Fired: st.fired}
	}
	return out
}

// String summarizes the injector's activity, sites sorted, one per line.
func (in *Injector) String() string {
	if in == nil {
		return "faultinject: no plan"
	}
	stats := in.Stats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s: fired %d of %d calls\n", n, stats[n].Fired, stats[n].Calls)
	}
	return b.String()
}
