package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fail("any.site"); err != nil {
		t.Fatalf("nil Fail = %v", err)
	}
	data := []byte("abc")
	out, ok := in.Corrupt("any.site", data)
	if ok || !bytes.Equal(out, data) {
		t.Fatalf("nil Corrupt = (%q, %v)", out, ok)
	}
	if st := in.Stats(); st != nil {
		t.Fatalf("nil Stats = %v", st)
	}
	if New(nil) != nil || New(&Plan{}) != nil {
		t.Fatal("empty plan must compile to a nil Injector")
	}
}

func TestEveryCadence(t *testing.T) {
	in := New(&Plan{Seed: 1, Points: []Point{
		{Site: "s", Class: ClassIO, Every: 3},
	}})
	var fired []int
	for i := 1; i <= 9; i++ {
		if err := in.Fail("s"); err != nil {
			fired = append(fired, i)
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not match ErrInjected: %v", err)
			}
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired on calls %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on calls %v, want %v", fired, want)
		}
	}
}

func TestAfterAndLimit(t *testing.T) {
	in := New(&Plan{Points: []Point{
		{Site: "s", Class: ClassPermanent, Every: 1, After: 2, Limit: 3},
	}})
	n := 0
	for i := 0; i < 10; i++ {
		if in.Fail("s") != nil {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("fired %d times, want 3 (after=2 limit=3)", n)
	}
	st := in.Stats()["s"]
	if st.Calls != 10 || st.Fired != 3 {
		t.Fatalf("stats = %+v, want calls=10 fired=3", st)
	}
}

func TestProbDeterministicAcrossRuns(t *testing.T) {
	plan := &Plan{Seed: 99, Points: []Point{
		{Site: "a", Class: ClassTransient, Prob: 0.4},
		{Site: "b", Class: ClassIO, Prob: 0.4},
	}}
	pattern := func() []bool {
		in := New(plan)
		var p []bool
		for i := 0; i < 200; i++ {
			p = append(p, in.Fail("a") != nil, in.Fail("b") != nil)
		}
		return p
	}
	p1, p2 := pattern(), pattern()
	fires := 0
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("fire pattern diverged at step %d between identical runs", i)
		}
		if p1[i] {
			fires++
		}
	}
	if fires < 80 || fires > 240 {
		t.Fatalf("%d fires out of 400 calls at p=0.4 — stream looks broken", fires)
	}
	// A different seed must produce a different pattern.
	other := New(&Plan{Seed: 100, Points: plan.Points})
	same := true
	for i := 0; i < 200; i++ {
		if (other.Fail("a") != nil) != p1[2*i] {
			same = false
		}
		other.Fail("b")
	}
	if same {
		t.Fatal("seed change did not change the fire pattern")
	}
}

func TestSiteStreamsIndependent(t *testing.T) {
	// Interleaving calls to a second site must not perturb the first
	// site's pattern (per-site streams).
	plan := &Plan{Seed: 7, Points: []Point{
		{Site: "a", Class: ClassIO, Prob: 0.5},
		{Site: "b", Class: ClassIO, Prob: 0.5},
	}}
	solo := New(&Plan{Seed: 7, Points: plan.Points[:1]})
	var want []bool
	for i := 0; i < 100; i++ {
		want = append(want, solo.Fail("a") != nil)
	}
	mixed := New(plan)
	for i := 0; i < 100; i++ {
		if got := mixed.Fail("a") != nil; got != want[i] {
			t.Fatalf("site a pattern perturbed at step %d by site b traffic", i)
		}
		mixed.Fail("b")
		mixed.Fail("b")
	}
}

func TestTransientClassification(t *testing.T) {
	in := New(&Plan{Points: []Point{
		{Site: "t", Class: ClassTransient, Every: 1},
		{Site: "p", Class: ClassPermanent, Every: 1},
	}})
	terr, perr := in.Fail("t"), in.Fail("p")
	if !IsTransient(terr) {
		t.Fatalf("transient fault not classified transient: %v", terr)
	}
	if IsTransient(perr) {
		t.Fatalf("permanent fault classified transient: %v", perr)
	}
	if !IsInjected(perr) || IsInjected(errors.New("organic")) || IsTransient(nil) {
		t.Fatal("IsInjected/IsTransient misclassify")
	}
}

func TestPanicClass(t *testing.T) {
	in := New(&Plan{Points: []Point{{Site: "s", Class: ClassPanic, Every: 1}}})
	defer func() {
		r := recover()
		ie, ok := r.(*Error)
		if !ok || ie.Class != ClassPanic || ie.Site != "s" {
			t.Fatalf("recovered %v, want *Error{s, panic}", r)
		}
	}()
	in.Fail("s")
	t.Fatal("panic-class point did not panic")
}

func TestLatencyClassReturnsNil(t *testing.T) {
	in := New(&Plan{Points: []Point{{Site: "s", Class: ClassLatency, Every: 1, LatencyMS: 1}}})
	if err := in.Fail("s"); err != nil {
		t.Fatalf("latency fault returned error %v", err)
	}
	if st := in.Stats()["s"]; st.Fired != 1 {
		t.Fatalf("latency fire not counted: %+v", st)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	in := New(&Plan{Seed: 3, Points: []Point{{Site: "s", Class: ClassCorrupt, Every: 1}}})
	data := bytes.Repeat([]byte{0xAA}, 64)
	out, ok := in.Corrupt("s", data)
	if !ok {
		t.Fatal("corrupt point did not fire")
	}
	if bytes.Equal(out, data) {
		t.Fatal("corruption produced identical bytes")
	}
	diffBits := 0
	for i := range data {
		x := out[i] ^ data[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
	// The original slice must be untouched.
	if !bytes.Equal(data, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Fatal("Corrupt mutated the caller's slice")
	}
	// Fail must ignore corrupt-class sites entirely.
	if err := in.Fail("s"); err != nil {
		t.Fatalf("Fail fired on a corrupt-class site: %v", err)
	}
	// And Corrupt must ignore non-corrupt sites.
	in2 := New(&Plan{Points: []Point{{Site: "e", Class: ClassIO, Every: 1}}})
	if _, ok := in2.Corrupt("e", data); ok {
		t.Fatal("Corrupt fired on an io-class site")
	}
}

func TestParsePlanInlineAndFile(t *testing.T) {
	const spec = `{"seed": 5, "points": [{"site": "x", "class": "io", "prob": 0.5}]}`
	p, err := ParsePlan(spec)
	if err != nil || p.Seed != 5 || len(p.Points) != 1 {
		t.Fatalf("inline ParsePlan = (%+v, %v)", p, err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err = ParsePlan(path)
	if err != nil || p.Seed != 5 {
		t.Fatalf("file ParsePlan = (%+v, %v)", p, err)
	}
	for _, bad := range []string{
		`{"points": [{"site": "", "class": "io", "prob": 1}]}`,          // empty site
		`{"points": [{"site": "x", "class": "nope", "prob": 1}]}`,       // unknown class
		`{"points": [{"site": "x", "class": "io", "prob": 2}]}`,         // prob out of range
		`{"points": [{"site": "x", "class": "io"}]}`,                    // never fires
		`{"points": [{"site": "x", "class": "io", "prob": 1, "every": 2}]}`, // both cadences
		`{"points": [{"site": "x", "class": "io", "prob": 1}, {"site": "x", "class": "io", "prob": 1}]}`, // dup site
		`{"unknown_field": 1}`, // strict decoding
		`/no/such/file.json`,   // missing file
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted an invalid plan", bad)
		}
	}
}
