package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		{SizeBytes: 1024, LineBytes: 32, Ways: 1},
		{SizeBytes: 64, LineBytes: 16, Ways: 4}, // fully associative (1 set)
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
	bad := []Config{
		{},
		{SizeBytes: -1, LineBytes: 64, Ways: 1},
		{SizeBytes: 1024, LineBytes: 48, Ways: 1},  // line not power of two
		{SizeBytes: 1000, LineBytes: 64, Ways: 1},  // not divisible
		{SizeBytes: 3072, LineBytes: 64, Ways: 16}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic on invalid config")
		}
	}()
	New(Config{})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.Access(0x100) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x100) {
		t.Error("second access should hit")
	}
	if !c.Access(0x13c) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x140) {
		t.Error("next line should miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d hits %d misses, want 2/2", hits, misses)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 4 sets of 1 way, 64B lines: addresses 64*4=256 apart conflict.
	c := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 1})
	c.Access(0)
	c.Access(256)
	if c.Access(0) {
		t.Error("conflicting line should have evicted address 0")
	}
}

func TestLRUReplacement(t *testing.T) {
	// One set, 2 ways.
	c := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	c.Access(0)       // miss, install A
	c.Access(64)      // miss, install B (same set: only 1 set)
	c.Access(0)       // hit A, making B the LRU
	c.Access(128)     // miss, must evict B
	if !c.Access(0) { // A must survive
		t.Error("LRU evicted the most recently used line")
	}
	if c.Access(64) {
		t.Error("B should have been evicted")
	}
}

func TestFullyAssociative(t *testing.T) {
	c := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 4}) // 1 set
	for i := uint32(0); i < 4; i++ {
		c.Access(i * 64)
	}
	for i := uint32(0); i < 4; i++ {
		if !c.Access(i * 64) {
			t.Errorf("line %d should be resident", i)
		}
	}
	c.Access(4 * 64) // evicts line 0 (LRU)
	if c.Access(0) {
		t.Error("line 0 should have been evicted")
	}
}

func TestReset(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	c.Access(0)
	c.Access(0)
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("Reset did not clear stats")
	}
	if c.Access(0) {
		t.Error("Reset did not invalidate lines")
	}
}

func TestMissRate(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.MissRate() != 0 {
		t.Error("empty cache MissRate should be 0")
	}
	c.Access(0)
	c.Access(0)
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
}

func TestWorkingSetFitsAlwaysHits(t *testing.T) {
	// Property: after a warm-up pass, re-touching a working set that fits
	// in the cache never misses.
	f := func(seed int64) bool {
		c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
		rng := rand.New(rand.NewSource(seed))
		// 64 lines total capacity; use 32 distinct lines spread evenly
		// across sets (sequential lines map to distinct sets).
		addrs := make([]uint32, 32)
		for i := range addrs {
			addrs[i] = uint32(i * 64)
		}
		for _, a := range addrs {
			c.Access(a)
		}
		for i := 0; i < 1000; i++ {
			if !c.Access(addrs[rng.Intn(len(addrs))]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsConserved(t *testing.T) {
	// Property: hits + misses == accesses for any access pattern.
	f := func(addrs []uint32) bool {
		c := New(Config{SizeBytes: 512, LineBytes: 32, Ways: 2})
		for _, a := range addrs {
			c.Access(a)
		}
		h, m := c.Stats()
		return h+m == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
