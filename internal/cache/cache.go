// Package cache implements a set-associative L1 cache simulator with LRU
// replacement. The SDT study uses two instances per run: an I-cache fed with
// the addresses of executed code (guest addresses natively, fragment-cache
// addresses under the SDT — the sieve's stub chains live here) and a D-cache
// fed with guest data accesses plus the SDT's own table probes (the IBTC
// lives here).
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Ways      int // associativity; 1 = direct-mapped
}

// Validate reports whether the geometry is realizable.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: nonpositive geometry %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*ways=%d", c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

type line struct {
	tag   uint32
	valid bool
	lru   uint64 // last-touched tick; larger = more recent
}

// Cache is one simulated cache. The zero value is not usable; call New.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint32
	tagShift  uint
	ways      int
	lines     []line // sets laid out contiguously, ways per set
	tick      uint64
	hits      uint64
	misses    uint64

	// Recent-line memo: the last few distinct lines touched. References
	// to a memoized line (straight-line code, stack traffic, a hot loop
	// alternating between a superblock body and its side-exit fragments)
	// skip the set scan. A memoized line cannot have been evicted between
	// accesses — eviction only happens inside accessSlow, which clears any
	// memo entry aimed at the victim — so taking the fast path updates the
	// same LRU word a full scan hit would, leaving identical state.
	memo     [memoWays]memoEntry
	memoNext int
}

// memoWays sizes the recent-line memo: enough to cover the few lines a hot
// dispatch loop cycles through without making the scan-before-lookup
// noticeable on misses.
const memoWays = 4

type memoEntry struct {
	lineAddr uint32
	ent      *line
}

// New builds a cache for the given geometry. It panics if the geometry is
// invalid; validate configs from external input with Config.Validate first.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	nsets := cfg.Sets()
	c := &Cache{cfg: cfg, lineShift: shift, setMask: uint32(nsets - 1)}
	c.tagShift = uint(popcount(c.setMask))
	c.ways = cfg.Ways
	c.lines = make([]line, nsets*cfg.Ways)
	return c
}

// Config returns the geometry the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates a reference to addr and reports whether it hit. Misses
// install the line (allocate-on-miss, for both reads and writes).
func (c *Cache) Access(addr uint32) bool {
	lineAddr := addr >> c.lineShift
	for i := range c.memo {
		m := &c.memo[i]
		if m.ent != nil && m.lineAddr == lineAddr {
			c.tick++
			m.ent.lru = c.tick
			c.hits++
			return true
		}
	}
	return c.accessSlow(lineAddr)
}

// memoize records lineAddr → ent in the next memo slot, round-robin.
func (c *Cache) memoize(lineAddr uint32, ent *line) {
	c.memo[c.memoNext] = memoEntry{lineAddr: lineAddr, ent: ent}
	c.memoNext = (c.memoNext + 1) % memoWays
}

func (c *Cache) accessSlow(lineAddr uint32) bool {
	c.tick++
	base := int(lineAddr&c.setMask) * c.ways
	set := c.lines[base : base+c.ways]
	tag := lineAddr >> c.tagShift
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			c.hits++
			c.memoize(lineAddr, &set[i])
			return true
		}
		if set[i].lru < set[victim].lru || !set[i].valid && set[victim].valid {
			victim = i
		}
	}
	// The victim's old line is gone; any memo entry still aiming at its
	// slot would resurrect it as a phantom hit.
	for i := range c.memo {
		if c.memo[i].ent == &set[victim] {
			c.memo[i] = memoEntry{}
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.tick}
	c.misses++
	c.memoize(lineAddr, &set[victim])
	return false
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.tick, c.hits, c.misses = 0, 0, 0
	c.memo = [memoWays]memoEntry{}
	c.memoNext = 0
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
