// Package randprog generates random, well-formed SimRISC-32 programs for
// differential testing: every generated program is guaranteed to
// assemble, terminate, never fault, and emit a checksum — but is otherwise
// an arbitrary tangle of ALU work, memory traffic, bounded loops, forward
// branches, jump-table switches, direct and indirect calls and returns.
// Running one natively and under the SDT (any mechanism) and comparing
// outputs is a strong whole-system equivalence test; the package tests
// sweep hundreds of seeds across mechanisms and cost models.
//
// Well-formedness is by construction:
//
//   - calls only target strictly higher-numbered functions, so the call
//     graph is a DAG and recursion is impossible;
//   - loops use dedicated counters with fixed trip counts and bodies that
//     contain no calls;
//   - conditional branches only jump forward within the function;
//   - indirect jumps go through generated jump tables of local labels;
//   - memory accesses hit a private scratch arena at bounded aligned
//     offsets;
//   - non-leaf functions save and restore ra around their bodies and
//     never otherwise touch it (so the programs are also valid under
//     fast returns).
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config shapes a generated program.
type Config struct {
	// Seed selects the program; equal configs generate equal programs.
	Seed int64
	// Funcs is the number of functions besides main (>= 1).
	Funcs int
	// BlocksPerFunc is the number of random blocks in each function body.
	BlocksPerFunc int
	// Iterations is main's loop count; each iteration calls into the
	// function DAG.
	Iterations int
}

// Default returns a mid-sized configuration for a seed.
func Default(seed int64) Config {
	return Config{Seed: seed, Funcs: 8, BlocksPerFunc: 6, Iterations: 150}
}

func (c Config) withDefaults() Config {
	if c.Funcs < 1 {
		c.Funcs = 1
	}
	if c.BlocksPerFunc < 1 {
		c.BlocksPerFunc = 1
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	return c
}

type pgen struct {
	rng  *rand.Rand
	b    strings.Builder
	cfg  Config
	lbl  int
	fn   int  // current function index
	call bool // current function makes calls
}

// Generate produces the assembly source for cfg.
func Generate(cfg Config) string {
	cfg = cfg.withDefaults()
	g := &pgen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	g.f(".name \"randprog-%d\"", cfg.Seed)
	g.f(".mem 0x100000")
	g.f("main:")
	g.f("\tli r27, 0")
	g.f("\tli r25, %d", uint32(cfg.Seed)*2654435761+1)
	g.f("\tli r20, %d", cfg.Iterations)
	g.f("mainloop:")
	// Call a pseudo-random entry function each iteration, half the time
	// through the function-pointer table.
	g.f("\tli r1, 1103515245")
	g.f("\tmul r25, r25, r1")
	g.f("\taddi r25, r25, 12345")
	g.f("\tsrli r3, r25, 9")
	g.f("\tli r1, %d", cfg.Funcs)
	g.f("\trem r3, r3, r1")
	g.f("\tandi r1, r20, 1")
	g.f("\tbeqz r1, direct_%d", cfg.Seed)
	g.f("\tla r1, fntab")
	g.f("\tslli r3, r3, 2")
	g.f("\tadd r1, r1, r3")
	g.f("\tlw r3, (r1)")
	g.f("\tcallr r3")
	g.f("\tjmp called_%d", cfg.Seed)
	g.f("direct_%d:", cfg.Seed)
	g.f("\tcall fn0")
	g.f("called_%d:", cfg.Seed)
	g.f("\tslli r1, r27, 5")
	g.f("\tadd r27, r27, r1")
	g.f("\txor r27, r27, rv")
	g.f("\tsubi r20, r20, 1")
	g.f("\tbnez r20, mainloop")
	g.f("\tout r27")
	g.f("\thalt")

	for fn := 0; fn < cfg.Funcs; fn++ {
		g.emitFunc(fn)
	}

	g.f(".data")
	g.f("fntab:")
	for fn := 0; fn < cfg.Funcs; fn++ {
		g.f("\t.word fn%d", fn)
	}
	g.f("scratch: .space 4096")
	return g.b.String()
}

func (g *pgen) f(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *pgen) label(stem string) string {
	g.lbl++
	return fmt.Sprintf("%s_%d_%d", stem, g.fn, g.lbl)
}

// temp registers a function body scribbles on.
var temps = []string{"r8", "r9", "r10", "r11", "r12"}

func (g *pgen) t() string { return temps[g.rng.Intn(len(temps))] }

func (g *pgen) emitFunc(fn int) {
	g.fn = fn
	// Decide up front whether this function calls (it can only call
	// higher-numbered functions).
	g.call = fn+1 < g.cfg.Funcs && g.rng.Intn(3) > 0
	g.f("fn%d:", fn)
	if g.call {
		g.f("\taddi sp, sp, -4")
		g.f("\tsw ra, (sp)")
	}
	g.f("\tli rv, %d", g.rng.Intn(1000)+fn)
	for b := 0; b < g.cfg.BlocksPerFunc; b++ {
		g.emitBlock(fn)
	}
	g.f("\txor rv, rv, %s", g.t())
	if g.call {
		g.f("\tlw ra, (sp)")
		g.f("\taddi sp, sp, 4")
	}
	g.f("\tret")
}

func (g *pgen) emitBlock(fn int) {
	kinds := []func(int){g.aluBlock, g.memBlock, g.loopBlock, g.branchBlock, g.switchBlock}
	if g.call {
		kinds = append(kinds, g.callBlock, g.callBlock)
	}
	kinds[g.rng.Intn(len(kinds))](fn)
}

// aluBlock: a few random register-register / register-immediate ops.
func (g *pgen) aluBlock(int) {
	n := 3 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		d, s := g.t(), g.t()
		switch g.rng.Intn(8) {
		case 0:
			g.f("\tadd %s, %s, %s", d, s, g.t())
		case 1:
			g.f("\tsub %s, %s, %s", d, s, g.t())
		case 2:
			g.f("\tmul %s, %s, %s", d, s, g.t())
		case 3:
			g.f("\txor %s, %s, %s", d, s, g.t())
		case 4:
			g.f("\taddi %s, %s, %d", d, s, g.rng.Intn(4000)-2000)
		case 5:
			g.f("\tslli %s, %s, %d", d, s, g.rng.Intn(31))
		case 6:
			g.f("\tsrli %s, %s, %d", d, s, g.rng.Intn(31))
		case 7:
			// division exercises the slow path; the +1 avoids relying
			// on divide-by-zero semantics in generated code (they are
			// defined, but tested separately)
			g.f("\tori %s, zero, %d", s, g.rng.Intn(30)+1)
			g.f("\tdivu %s, %s, %s", d, g.t(), s)
		}
	}
	g.f("\txor rv, rv, %s", g.t())
}

// memBlock: aligned stores and loads inside the scratch arena.
func (g *pgen) memBlock(int) {
	off := g.rng.Intn(1000) * 4
	g.f("\tla r3, scratch")
	g.f("\tsw %s, %d(r3)", g.t(), off)
	g.f("\tlw %s, %d(r3)", g.t(), off)
	if g.rng.Intn(2) == 0 {
		boff := g.rng.Intn(4000)
		g.f("\tsb %s, %d(r3)", g.t(), boff)
		g.f("\tlbu %s, %d(r3)", g.t(), boff)
	}
}

// loopBlock: a fixed-trip loop with a call-free body.
func (g *pgen) loopBlock(int) {
	top := g.label("loop")
	g.f("\tli r13, %d", 2+g.rng.Intn(6))
	g.f("%s:", top)
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		g.f("\tadd %s, %s, %s", g.t(), g.t(), g.t())
	}
	g.f("\txor rv, rv, %s", g.t())
	g.f("\tsubi r13, r13, 1")
	g.f("\tbnez r13, %s", top)
}

// branchBlock: a forward conditional branch over a couple of operations.
func (g *pgen) branchBlock(int) {
	skip := g.label("skip")
	ops := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
	g.f("\t%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.t(), g.t(), skip)
	for i := 0; i < 1+g.rng.Intn(2); i++ {
		g.f("\taddi %s, %s, %d", g.t(), g.t(), g.rng.Intn(100))
	}
	g.f("%s:", skip)
}

// switchBlock: an indirect jump through a local jump table.
func (g *pgen) switchBlock(int) {
	n := 2 + g.rng.Intn(3)
	tbl := g.label("tbl")
	done := g.label("swdone")
	cases := make([]string, n)
	for i := range cases {
		cases[i] = g.label("case")
	}
	g.f("\tsrli r3, %s, 3", g.t())
	g.f("\tli r1, %d", n)
	g.f("\tremu r3, r3, r1")
	g.f("\tla r1, %s", tbl)
	g.f("\tslli r3, r3, 2")
	g.f("\tadd r1, r1, r3")
	g.f("\tlw r3, (r1)")
	g.f("\tjr r3")
	for i, c := range cases {
		g.f("%s:", c)
		g.f("\taddi rv, rv, %d", i*7+1)
		g.f("\tjmp %s", done)
	}
	g.f("%s:", done)
	// the jump table lives in .data at the end; remember it inline via a
	// local data stash: emit now into a per-table .data chunk
	g.f(".data")
	g.f("%s:", tbl)
	for _, c := range cases {
		g.f("\t.word %s", c)
	}
	g.f(".text")
}

// callBlock: a direct or table-indirect call to a higher-numbered function.
func (g *pgen) callBlock(fn int) {
	callee := fn + 1 + g.rng.Intn(g.cfg.Funcs-fn-1)
	if g.rng.Intn(2) == 0 {
		g.f("\tcall fn%d", callee)
	} else {
		g.f("\tla r1, fntab")
		g.f("\tlw r3, %d(r1)", callee*4)
		g.f("\tcallr r3")
	}
	g.f("\txor rv, rv, %s", g.t())
}
