package randprog

// Small returns a differential-test-sized configuration for a seed:
// enough functions and blocks to execute every indirect-branch kind, few
// enough iterations that a full mechanism × arch × variant sweep stays
// fast.
func Small(seed int64) Config {
	return Config{Seed: seed, Funcs: 4, BlocksPerFunc: 3, Iterations: 25}
}

// Corpus generates n deterministic sources at differential-test scale,
// seeds 1..n. Fuzz targets use it for their seed corpora and sdtfuzz
// -gen exports it to disk for `go test -fuzz` runs.
func Corpus(n int) []string {
	out := make([]string, 0, n)
	for seed := int64(1); seed <= int64(n); seed++ {
		out = append(out, Generate(Small(seed)))
	}
	return out
}

// Shrink returns candidate configurations strictly smaller than cfg,
// biggest reduction first. Minimizers (internal/oracle.MinimizeRandprog)
// walk the list and keep the first candidate that still reproduces their
// failure, looping until none does; shrinking the generator configuration
// preserves well-formedness by construction, which line-level
// minimization cannot.
func Shrink(cfg Config) []Config {
	cfg = cfg.withDefaults()
	var out []Config
	seen := map[Config]bool{cfg: true}
	add := func(c Config) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	halve := func(n int) int {
		if n > 1 {
			return n / 2
		}
		return 1
	}
	// Halve everything at once, then each axis, then single steps.
	add(Config{Seed: cfg.Seed, Funcs: halve(cfg.Funcs), BlocksPerFunc: halve(cfg.BlocksPerFunc), Iterations: halve(cfg.Iterations)})
	add(Config{Seed: cfg.Seed, Funcs: halve(cfg.Funcs), BlocksPerFunc: cfg.BlocksPerFunc, Iterations: cfg.Iterations})
	add(Config{Seed: cfg.Seed, Funcs: cfg.Funcs, BlocksPerFunc: halve(cfg.BlocksPerFunc), Iterations: cfg.Iterations})
	add(Config{Seed: cfg.Seed, Funcs: cfg.Funcs, BlocksPerFunc: cfg.BlocksPerFunc, Iterations: halve(cfg.Iterations)})
	if cfg.Funcs > 1 {
		add(Config{Seed: cfg.Seed, Funcs: cfg.Funcs - 1, BlocksPerFunc: cfg.BlocksPerFunc, Iterations: cfg.Iterations})
	}
	if cfg.BlocksPerFunc > 1 {
		add(Config{Seed: cfg.Seed, Funcs: cfg.Funcs, BlocksPerFunc: cfg.BlocksPerFunc - 1, Iterations: cfg.Iterations})
	}
	if cfg.Iterations > 1 {
		add(Config{Seed: cfg.Seed, Funcs: cfg.Funcs, BlocksPerFunc: cfg.BlocksPerFunc, Iterations: cfg.Iterations - 1})
	}
	return out
}
