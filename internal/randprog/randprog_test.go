package randprog_test

import (
	"fmt"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/machine"
	"sdt/internal/program"
	"sdt/internal/randprog"
)

func build(t *testing.T, seed int64) *program.Image {
	t.Helper()
	src := randprog.Generate(randprog.Default(seed))
	img, err := asm.Assemble(fmt.Sprintf("rand%d.s", seed), src)
	if err != nil {
		t.Fatalf("seed %d does not assemble: %v", seed, err)
	}
	return img
}

func TestGenerateDeterministic(t *testing.T) {
	a := randprog.Generate(randprog.Default(7))
	b := randprog.Generate(randprog.Default(7))
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := randprog.Generate(randprog.Default(8))
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsRunNative(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		img := build(t, seed)
		m, err := machine.RunImage(img, hostarch.X86(), 50_000_000)
		if err != nil {
			t.Fatalf("seed %d faulted natively: %v", seed, err)
		}
		if m.Result().OutCount != 1 {
			t.Errorf("seed %d: %d outputs, want 1", seed, m.Result().OutCount)
		}
		if m.Result().Instret < 1000 {
			t.Errorf("seed %d retired only %d instructions", seed, m.Result().Instret)
		}
	}
}

// TestDifferential is the whole-system equivalence sweep: random programs,
// every mechanism family, both cost models, tiny fragment caches.
func TestDifferential(t *testing.T) {
	specs := []string{
		"translator",
		"ibtc:64",
		"ibtc:1024:private",
		"sieve:32",
		"inline:2+ibtc:256",
		"retcache:256+ibtc:256",
		"fastret+ibtc:1024",
		"fastret+inline:1+sieve:64",
	}
	archs := []string{"x86", "sparc"}
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			img := build(t, seed)
			native, err := machine.RunImage(img, hostarch.X86(), 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			want := native.Result()
			for _, spec := range specs {
				for _, arch := range archs {
					cfg, err := ib.Parse(spec)
					if err != nil {
						t.Fatal(err)
					}
					model, _ := hostarch.ByName(arch)
					vm, err := core.New(img, core.Options{
						Model:       model,
						Handler:     cfg.Handler,
						FastReturns: cfg.FastReturns,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := vm.Run(50_000_000); err != nil {
						t.Fatalf("%s/%s: %v", spec, arch, err)
					}
					got := vm.Result()
					if got.Checksum != want.Checksum || got.Instret != want.Instret {
						t.Errorf("%s/%s: diverged (chk %#x vs %#x, inst %d vs %d)",
							spec, arch, got.Checksum, want.Checksum, got.Instret, want.Instret)
					}
				}
			}
		})
	}
}

// TestDifferentialUnderFlushPressure repeats a smaller sweep with a
// fragment cache that flushes constantly.
func TestDifferentialUnderFlushPressure(t *testing.T) {
	specs := []string{"ibtc:64", "sieve:32", "fastret+ibtc:64"}
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			img := build(t, seed)
			native, err := machine.RunImage(img, hostarch.X86(), 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range specs {
				cfg, _ := ib.Parse(spec)
				vm, err := core.New(img, core.Options{
					Model:       hostarch.X86(),
					Handler:     cfg.Handler,
					FastReturns: cfg.FastReturns,
					CacheBytes:  2048,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := vm.Run(50_000_000); err != nil {
					t.Fatalf("%s: %v", spec, err)
				}
				if vm.Prof.Flushes == 0 {
					t.Fatalf("%s: expected flushes", spec)
				}
				if vm.Result().Checksum != native.Result().Checksum {
					t.Errorf("%s: diverged under flush pressure", spec)
				}
			}
		})
	}
}

// TestDifferentialTinyBlocks stresses fragment splitting.
func TestDifferentialTinyBlocks(t *testing.T) {
	img := build(t, 3)
	native, err := machine.RunImage(img, hostarch.X86(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxBlock := range []int{1, 2, 3, 7} {
		cfg, _ := ib.Parse("ibtc:256")
		vm, err := core.New(img, core.Options{
			Model:         hostarch.X86(),
			Handler:       cfg.Handler,
			MaxBlockInsts: maxBlock,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(50_000_000); err != nil {
			t.Fatalf("maxBlock=%d: %v", maxBlock, err)
		}
		if vm.Result().Checksum != native.Result().Checksum {
			t.Errorf("maxBlock=%d: diverged", maxBlock)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	src := randprog.Generate(randprog.Config{Seed: 1})
	img, err := asm.Assemble("min.s", src)
	if err != nil {
		t.Fatalf("minimal config: %v", err)
	}
	if _, err := machine.RunImage(img, hostarch.X86(), 10_000_000); err != nil {
		t.Fatalf("minimal config run: %v", err)
	}
}
