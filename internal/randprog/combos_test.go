package randprog_test

import (
	"fmt"
	"testing"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/machine"
)

// TestOptionCombinations sweeps the VM's translation-policy options in
// every combination over random programs: superblocks, traces, fast
// returns, disabled linking, tiny blocks and a small cache all at once
// must still be observationally equivalent to native execution.
func TestOptionCombinations(t *testing.T) {
	type combo struct {
		name   string
		mutate func(*core.Options)
	}
	combos := []combo{
		{"superblocks", func(o *core.Options) { o.Superblocks = true }},
		{"traces", func(o *core.Options) { o.Traces = true; o.TraceThreshold = 3 }},
		{"super+traces", func(o *core.Options) {
			o.Superblocks = true
			o.Traces = true
			o.TraceThreshold = 3
		}},
		{"traces+tinyblocks", func(o *core.Options) {
			o.Traces = true
			o.TraceThreshold = 2
			o.MaxBlockInsts = 3
		}},
		{"nolink+traces", func(o *core.Options) {
			o.DisableLinking = true
			o.Traces = true
			o.TraceThreshold = 2
		}},
		{"everything", func(o *core.Options) {
			o.Superblocks = true
			o.Traces = true
			o.TraceThreshold = 2
			o.MaxTraceFrags = 4
			o.MaxBlockInsts = 5
			o.CacheBytes = 4096
		}},
	}
	specs := []string{"ibtc:128", "fastret+sieve:64"}
	for seed := int64(200); seed < 208; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			img := build(t, seed)
			native, err := machine.RunImage(img, hostarch.X86(), 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range combos {
				for _, spec := range specs {
					cfg, err := ib.Parse(spec)
					if err != nil {
						t.Fatal(err)
					}
					opts := cfg.Options(hostarch.X86())
					c.mutate(&opts)
					vm, err := core.New(img, opts)
					if err != nil {
						t.Fatal(err)
					}
					if err := vm.Run(50_000_000); err != nil {
						t.Fatalf("%s/%s: %v", c.name, spec, err)
					}
					got := vm.Result()
					want := native.Result()
					if got.Checksum != want.Checksum || got.Instret != want.Instret {
						t.Errorf("%s/%s: diverged", c.name, spec)
					}
				}
			}
		})
	}
}
