package profile

import "testing"

func TestSiteStatsObserve(t *testing.T) {
	tbl := NewSiteTable(3)
	s := tbl.Obtain(0x100)
	if tbl.Obtain(0x100) != s {
		t.Fatal("Obtain is not idempotent per pc")
	}

	for _, target := range []uint32{8, 8, 8, 12, 8} {
		s.Observe(target)
	}
	if s.Execs != 5 {
		t.Errorf("Execs = %d, want 5", s.Execs)
	}
	if s.Distinct() != 2 {
		t.Errorf("Distinct = %d, want 2", s.Distinct())
	}
	if s.Run != 1 { // the final observation changed target back to 8
		t.Errorf("Run = %d, want 1", s.Run)
	}
	s.Observe(8)
	if s.Run != 2 {
		t.Errorf("Run = %d after repeat, want 2", s.Run)
	}
	if s.LastTarget() != 8 {
		t.Errorf("LastTarget = %d, want 8", s.LastTarget())
	}
}

func TestSiteStatsDistinctSaturates(t *testing.T) {
	s := NewSiteTable(3).Obtain(0)
	for i := uint32(0); i < 10; i++ {
		s.Observe(i * 4)
	}
	// Exact up to the cap of 3, then saturates at cap+1.
	if got := s.Distinct(); got != 4 {
		t.Errorf("Distinct = %d, want saturation at 4", got)
	}
	// Re-observing an old target once capped must not grow anything.
	s.Observe(0)
	if got := s.Distinct(); got != 4 {
		t.Errorf("Distinct after capped re-observe = %d, want 4", got)
	}
}

func TestSiteStatsResetTargets(t *testing.T) {
	s := NewSiteTable(4).Obtain(0)
	for i := uint32(0); i < 6; i++ {
		s.Observe(i * 4)
	}
	execs := s.Execs
	s.ResetTargets()
	// The last target is re-seeded so the current behaviour is retained.
	if got := s.Distinct(); got != 1 {
		t.Errorf("Distinct after reset = %d, want 1", got)
	}
	if s.Execs != execs {
		t.Errorf("reset clobbered Execs: %d -> %d", execs, s.Execs)
	}
	s.Observe(s.LastTarget())
	if got := s.Distinct(); got != 1 {
		t.Errorf("re-observing last target after reset grew Distinct to %d", got)
	}
}

func TestOverheadOverAttribution(t *testing.T) {
	p := Profile{CyclesIB: 60, CyclesCtx: 30, CyclesTrans: 20}
	b := p.Overhead(100)
	if !b.OverAttributed {
		t.Error("attributed 110 of 100 cycles without OverAttributed")
	}
	if b.Body != 0 {
		t.Errorf("over-attributed Body = %d, want 0", b.Body)
	}
	ok := p.Overhead(200)
	if ok.OverAttributed {
		t.Error("clean attribution flagged as over-attributed")
	}
	if ok.Body != 90 {
		t.Errorf("Body = %d, want 90", ok.Body)
	}
}
