package profile

// SiteStats is the per-indirect-branch-site observation record adaptive
// dispatch decides from: executions, fast-path hit/miss tallies, the
// distinct targets seen (tracked exactly up to a fixed cap), and the
// length of the current run of consecutive same-target executions. The
// stats deliberately survive fragment-cache flushes — a site's learned
// behaviour is a property of the guest, not of any one translation of it.
type SiteStats struct {
	PC     uint32 // guest address of the site
	Execs  uint64 // executions observed
	Hits   uint64 // fast-path hits at this site
	Misses uint64 // fast-path misses at this site
	Run    uint64 // consecutive executions with the same target

	targets    []uint32 // distinct targets, exact up to cap(targets)
	capped     bool     // true once the target set overflowed its cap
	lastTarget uint32
	seenAny    bool
}

// Observe records one execution with the given resolved target.
func (s *SiteStats) Observe(target uint32) {
	s.Execs++
	if s.seenAny && target == s.lastTarget {
		s.Run++
	} else {
		s.Run = 1
		s.lastTarget = target
		s.seenAny = true
	}
	if s.capped {
		return
	}
	for _, t := range s.targets {
		if t == target {
			return
		}
	}
	if len(s.targets) == cap(s.targets) {
		s.capped = true
		return
	}
	s.targets = append(s.targets, target)
}

// Distinct returns the number of distinct targets observed. Once the
// tracking cap is exceeded the count saturates at cap+1 — enough to answer
// every threshold comparison the promotion policy makes.
func (s *SiteStats) Distinct() int {
	if s.capped {
		return cap(s.targets) + 1
	}
	return len(s.targets)
}

// LastTarget returns the most recently observed target (valid once
// Execs > 0).
func (s *SiteStats) LastTarget() uint32 { return s.lastTarget }

// ResetTargets forgets the accumulated target set (keeping executions and
// the current run) so a site demoted after a phase change re-learns its
// polymorphism degree from current behaviour instead of stale history.
func (s *SiteStats) ResetTargets() {
	s.targets = s.targets[:0]
	s.capped = false
	if s.seenAny {
		s.targets = append(s.targets, s.lastTarget)
	}
}

// SiteTable owns the SiteStats records for every IB site of one run,
// keyed by the site's guest pc. Records persist across fragment-cache
// flushes and re-translations.
type SiteTable struct {
	sites    map[uint32]*SiteStats
	trackCap int
}

// NewSiteTable builds an empty table whose records track up to trackCap
// distinct targets exactly (beyond that Distinct saturates).
func NewSiteTable(trackCap int) *SiteTable {
	if trackCap < 1 {
		trackCap = 1
	}
	return &SiteTable{sites: make(map[uint32]*SiteStats), trackCap: trackCap}
}

// Obtain returns the record for the site at pc, creating it on first use.
func (t *SiteTable) Obtain(pc uint32) *SiteStats {
	if s := t.sites[pc]; s != nil {
		return s
	}
	s := &SiteStats{PC: pc, targets: make([]uint32, 0, t.trackCap)}
	t.sites[pc] = s
	return s
}

// Len returns the number of sites tracked.
func (t *SiteTable) Len() int { return len(t.sites) }

// Each calls fn for every tracked site (iteration order unspecified;
// reporting code must sort).
func (t *SiteTable) Each(fn func(*SiteStats)) {
	for _, s := range t.sites {
		fn(s)
	}
}
