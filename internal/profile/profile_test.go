package profile

import (
	"strings"
	"testing"
	"testing/quick"

	"sdt/internal/isa"
)

func TestIBTotal(t *testing.T) {
	p := &Profile{}
	p.IBExec[isa.IBReturn] = 10
	p.IBExec[isa.IBJump] = 20
	p.IBExec[isa.IBCall] = 5
	if got := p.IBTotal(); got != 35 {
		t.Errorf("IBTotal = %d, want 35", got)
	}
}

func TestHitRate(t *testing.T) {
	p := &Profile{}
	if p.HitRate() != 0 {
		t.Error("empty profile HitRate should be 0")
	}
	p.MechHits, p.MechMisses = 3, 1
	if got := p.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}

func TestOverheadPartition(t *testing.T) {
	p := &Profile{CyclesIB: 30, CyclesCtx: 20, CyclesTrans: 10}
	b := p.Overhead(100)
	if b.Body != 40 {
		t.Errorf("Body = %d, want 40", b.Body)
	}
	if b.Body+b.IB+b.Ctx+b.Trans != b.Total {
		t.Error("breakdown does not partition the total")
	}
	if b.Frac(b.IB) != 0.3 {
		t.Errorf("Frac = %v, want 0.3", b.Frac(b.IB))
	}
}

func TestOverheadNeverNegative(t *testing.T) {
	// Property: Body is clamped at zero even for inconsistent inputs.
	f := func(ib, ctx, trans, total uint32) bool {
		p := &Profile{CyclesIB: uint64(ib), CyclesCtx: uint64(ctx), CyclesTrans: uint64(trans)}
		b := p.Overhead(uint64(total))
		return b.Body <= b.Total || b.Body == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFracEmptyRun(t *testing.T) {
	var b Breakdown
	if b.Frac(10) != 0 {
		t.Error("Frac on empty breakdown should be 0")
	}
}

func TestDump(t *testing.T) {
	p := &Profile{
		MechHits: 99, MechMisses: 1,
		TranslatorEntries: 7, Translations: 5, TransInsts: 50,
		CyclesIB: 25, CyclesCtx: 25, CyclesTrans: 10,
	}
	p.IBExec[isa.IBReturn] = 80
	p.IBExec[isa.IBJump] = 15
	p.IBExec[isa.IBCall] = 5
	var sb strings.Builder
	p.Dump(&sb, 100)
	out := sb.String()
	for _, want := range []string{
		"100", "ret=80", "ijump=15", "icall=5",
		"hits=99", "hit-rate=0.99",
		"entries=7", "translations=5",
		"body=40.0%", "ib=25.0%", "ctx=25.0%", "trans=10.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump output missing %q:\n%s", want, out)
		}
	}
}
