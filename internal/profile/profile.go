// Package profile collects the execution statistics the paper's evaluation
// reports: indirect-branch dynamic counts by kind, mechanism hit/miss
// behaviour, translator entries, and a cycle breakdown separating useful
// work from IB handling, context switching and translation.
package profile

import (
	"fmt"
	"io"

	"sdt/internal/isa"
)

// Profile accumulates SDT execution statistics for one run.
type Profile struct {
	// Indirect-branch dynamics.
	IBExec [isa.NumIBKinds]uint64 // executed IBs by kind
	IBMiss [isa.NumIBKinds]uint64 // IBs that fell back to the translator

	// Mechanism behaviour.
	MechHits     uint64 // fast-path hits (IBTC/inline/sieve/fast-return)
	MechMisses   uint64 // fast-path misses
	InlineProbes uint64 // inline-cache compares executed
	InlineHits   uint64 // IBs resolved by an inline probe (direct jump, no BTB)
	SieveProbes  uint64 // sieve chain stubs walked

	// Translator activity.
	TranslatorEntries uint64 // full context switches into the translator
	Translations      uint64 // fragments translated
	TransInsts        uint64 // guest instructions translated
	Flushes           uint64 // fragment cache flushes

	// Trace formation and superblock execution (Options.Traces).
	TracesFormed     uint64 // traces materialized as superblocks
	TraceGuardHits   uint64 // in-trace IB guards that stayed on trace
	TraceGuardMisses uint64 // in-trace IB guards that left the trace
	TraceExits       uint64 // early departures from a trace (any exit kind)
	// Abandoned recordings, by cause: a completed recording shorter than
	// two parts is not worth a trace; a full fragment cache stops trace
	// formation rather than forcing flush churn. Before these counters the
	// second case was invisible — a workload could silently stop forming
	// traces under cache pressure and the E16 analysis had no way to see it.
	TraceAbandonedShort     uint64
	TraceAbandonedCacheFull uint64
	// Superblock execution: entries from the trace head, and fused
	// super-ops retired by rewritten trace bodies (see hostarch.SuperOp).
	SuperblockExecs uint64
	SuperOpsRetired uint64

	// Adaptive dispatch (the "adaptive" mechanism): per-site tier changes
	// and the targeted re-translations they triggered. A promotion or
	// demotion re-translates the owning fragment unless the site was a
	// shadow site with no owner, so AdaptRetrans <= AdaptPromotions +
	// AdaptDemotions always.
	AdaptPromotions uint64
	AdaptDemotions  uint64
	AdaptRetrans    uint64

	// Cycle breakdown. CyclesIB counts cycles spent in emitted IB-handling
	// code; CyclesCtx counts context-switch and translator-lookup cycles;
	// CyclesTrans counts translation work. The remainder of the run's
	// total is straight-line fragment execution.
	CyclesIB    uint64
	CyclesCtx   uint64
	CyclesTrans uint64
}

// IBTotal returns the number of executed indirect branches.
func (p *Profile) IBTotal() uint64 {
	var t uint64
	for _, n := range p.IBExec {
		t += n
	}
	return t
}

// SideExitRate returns the fraction of superblock executions that left
// through a side exit rather than a loop closure, in [0,1].
func (p *Profile) SideExitRate() float64 {
	if p.SuperblockExecs == 0 {
		return 0
	}
	return float64(p.TraceExits) / float64(p.SuperblockExecs)
}

// HitRate returns the mechanism fast-path hit rate in [0,1].
func (p *Profile) HitRate() float64 {
	total := p.MechHits + p.MechMisses
	if total == 0 {
		return 0
	}
	return float64(p.MechHits) / float64(total)
}

// Overhead splits totalCycles into the four reporting categories. When
// the attributed categories sum past the run's total — a cost-accounting
// bug, since every attributed cycle was charged to the same counter the
// total comes from — Body clamps to 0 and OverAttributed is set so the
// inconsistency is visible instead of silently absorbed (the oracle
// asserts it never happens).
func (p *Profile) Overhead(totalCycles uint64) Breakdown {
	b := Breakdown{
		Total: totalCycles,
		IB:    p.CyclesIB,
		Ctx:   p.CyclesCtx,
		Trans: p.CyclesTrans,
	}
	spent := b.IB + b.Ctx + b.Trans
	if totalCycles >= spent {
		b.Body = totalCycles - spent
	} else {
		b.OverAttributed = true
	}
	return b
}

// Breakdown is a cycle attribution for one run.
type Breakdown struct {
	Total uint64
	Body  uint64 // straight-line translated code
	IB    uint64 // emitted IB-handling code
	Ctx   uint64 // context switches + translator lookups
	Trans uint64 // translation work
	// OverAttributed reports that IB+Ctx+Trans exceeded Total and Body
	// was clamped to 0: the attribution double-charged somewhere.
	OverAttributed bool
}

// Frac returns part/Total, or 0 for an empty run.
func (b Breakdown) Frac(part uint64) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(part) / float64(b.Total)
}

// Dump writes a human-readable report.
func (p *Profile) Dump(w io.Writer, totalCycles uint64) {
	fmt.Fprintf(w, "indirect branches: %d (ret=%d ijump=%d icall=%d)\n",
		p.IBTotal(), p.IBExec[isa.IBReturn], p.IBExec[isa.IBJump], p.IBExec[isa.IBCall])
	fmt.Fprintf(w, "mechanism: hits=%d misses=%d hit-rate=%.4f probes(inline=%d sieve=%d)\n",
		p.MechHits, p.MechMisses, p.HitRate(), p.InlineProbes, p.SieveProbes)
	fmt.Fprintf(w, "translator: entries=%d translations=%d insts=%d flushes=%d\n",
		p.TranslatorEntries, p.Translations, p.TransInsts, p.Flushes)
	if p.TracesFormed > 0 || p.TraceAbandonedShort > 0 || p.TraceAbandonedCacheFull > 0 {
		fmt.Fprintf(w, "traces: formed=%d guard-hits=%d guard-misses=%d exits=%d abandoned(short=%d cache-full=%d)\n",
			p.TracesFormed, p.TraceGuardHits, p.TraceGuardMisses, p.TraceExits,
			p.TraceAbandonedShort, p.TraceAbandonedCacheFull)
		fmt.Fprintf(w, "superblocks: execs=%d side-exit-rate=%.4f super-ops-retired=%d\n",
			p.SuperblockExecs, p.SideExitRate(), p.SuperOpsRetired)
	}
	if p.AdaptPromotions > 0 || p.AdaptDemotions > 0 || p.AdaptRetrans > 0 {
		fmt.Fprintf(w, "adaptive: promotions=%d demotions=%d retranslations=%d\n",
			p.AdaptPromotions, p.AdaptDemotions, p.AdaptRetrans)
	}
	b := p.Overhead(totalCycles)
	fmt.Fprintf(w, "cycles: total=%d body=%.1f%% ib=%.1f%% ctx=%.1f%% trans=%.1f%%\n",
		b.Total, 100*b.Frac(b.Body), 100*b.Frac(b.IB), 100*b.Frac(b.Ctx), 100*b.Frac(b.Trans))
	if b.OverAttributed {
		fmt.Fprintf(w, "cycles: WARNING: over-attributed (ib+ctx+trans exceed total)\n")
	}
}
