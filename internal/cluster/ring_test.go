package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761+12345)
	}
	return keys
}

// Ownership must depend only on the set of member names, not their
// order — every node builds the ring from its own -peers flag, and
// they must all agree.
func TestRingOrderIndependent(t *testing.T) {
	keys := ringKeys(500)
	a := newRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	b := newRing([]string{"n3:3", "n1:1", "n2:2"}, 0)
	nameA := []string{"n1:1", "n2:2", "n3:3"}
	nameB := []string{"n3:3", "n1:1", "n2:2"}
	for _, k := range keys {
		if nameA[a.owner(k)] != nameB[b.owner(k)] {
			t.Fatalf("key %s: owner differs across member orderings", k)
		}
	}
}

// Removing one member must only move the keys it owned: everyone
// else's keys keep their owner (the minimal-disruption property that
// makes rolling membership changes cheap on the store).
func TestRingConsistency(t *testing.T) {
	keys := ringKeys(2000)
	full := []string{"a:1", "b:2", "c:3", "d:4"}
	without := []string{"a:1", "b:2", "d:4"} // c:3 removed
	rf := newRing(full, 0)
	rw := newRing(without, 0)
	moved := 0
	for _, k := range keys {
		was := full[rf.owner(k)]
		now := without[rw.owner(k)]
		if was != "c:3" && was != now {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, was, now)
		}
		if was == "c:3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed member; test is vacuous")
	}
}

// With 64 vnodes per member no node should own a wildly outsized key
// share.
func TestRingBalance(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3"}
	r := newRing(members, 0)
	counts := make([]int, len(members))
	for _, k := range ringKeys(9000) {
		counts[r.owner(k)]++
	}
	for i, c := range counts {
		if c < 1500 || c > 4500 {
			// mean is 3000; allow a generous 0.5x..1.5x band
			t.Fatalf("member %s owns %d of 9000 keys — ring badly unbalanced %v", members[i], c, counts)
		}
	}
}

// successors must start at the owner and enumerate every member
// exactly once, deterministically.
func TestRingSuccessors(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	r := newRing(members, 0)
	for _, k := range ringKeys(100) {
		succ := r.successors(k)
		if len(succ) != len(members) {
			t.Fatalf("successors(%s) = %v, want %d distinct members", k, succ, len(members))
		}
		if succ[0] != r.owner(k) {
			t.Fatalf("successors(%s)[0] = %d, owner = %d", k, succ[0], r.owner(k))
		}
		seen := make(map[int]bool)
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("successors(%s) = %v repeats member %d", k, succ, m)
			}
			seen[m] = true
		}
	}
}
