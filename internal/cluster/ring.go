// Package cluster lets N sdtd nodes form a cooperating fleet. It
// provides four things:
//
//   - A consistent-hash ring over the content-addressed key space, so
//     every store key has a deterministic replica set and ownership
//     moves minimally when the membership changes. Membership is
//     versioned: each change installs a new immutable View at the next
//     ring epoch (see view.go), and in-flight work completes against
//     the epoch it started under.
//   - A peer tier for store.ByteStore: Fetch walks a key's replica set
//     in successor order for its sealed entry over HTTP, guarded by
//     per-peer circuit breakers (reusing store.Breaker) and a
//     background health prober.
//   - Asynchronous replication: freshly computed entries fan out to the
//     first RF ring successors through a bounded queue, with
//     anti-entropy retries when a down peer comes back (replicate.go).
//   - An ordered-merge helper the sweep coordinator uses to interleave
//     per-shard NDJSON streams back into matrix order, preserving the
//     byte-identity of single-node Ordered output.
//
// The package deliberately does not import internal/service: the
// service layer owns the HTTP handlers and sweep coordination, and
// wires a *Cluster into both the store (as its Remote tier) and the
// coordinator. See docs/CLUSTER.md for the protocol.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVNodes is how many virtual nodes each member contributes to
// the ring. 128 points per member keeps the max/mean key imbalance
// modest (~1.1-1.3x) for small fleets while the ring stays tiny (a
// 16-node fleet is 2048 points, one binary search over 32KB).
const defaultVNodes = 128

// ring maps keys to member indices by consistent hashing: each member
// contributes vnode points at fnv64a("name#i"), keys hash with the
// same function, and a key is owned by the first point clockwise from
// its hash. A ring is immutable once built; membership changes build a
// fresh ring inside a new View rather than mutating this one.
type ring struct {
	points  []ringPoint // sorted by hash
	members int
}

type ringPoint struct {
	hash   uint64
	member int
}

// hash64 is fnv64a followed by a splitmix64-style finalizer. Raw FNV
// has weak avalanche in the high bits for short, similar inputs — the
// vnode labels below differ only in a trailing counter, and without
// the mix their points cluster so badly that one of three members can
// own ~70% of the ring. The finalizer restores uniform spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds a ring over members (names must be distinct; order is
// irrelevant — placement depends only on the set of names, which is
// what keeps ownership stable across restarts and config reordering).
func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{
		points:  make([]ringPoint, 0, len(names)*vnodes),
		members: len(names),
	}
	for m, name := range names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(name + "#" + strconv.Itoa(i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// owner returns the member index owning key.
func (r *ring) owner(key string) int {
	return r.points[r.at(key)].member
}

// at returns the index into points of the first point at or clockwise
// from key's hash.
func (r *ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// successors returns all member indices in ring order starting from
// key's owner, each member once. Index 0 is the owner; the rest is the
// failover order used when reassigning work away from dead nodes —
// deterministic for a given key and membership, so every coordinator
// computes the same reassignment.
func (r *ring) successors(key string) []int {
	out := make([]int, 0, r.members)
	seen := make([]bool, r.members)
	for i, n := r.at(key), 0; n < len(r.points); i, n = i+1, n+1 {
		p := r.points[i%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
			if len(out) == r.members {
				break
			}
		}
	}
	return out
}
