package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sdt/internal/store"
)

// twoNode builds a self + one remote peer cluster where the remote is
// the given test server, and returns a key the remote owns.
func twoNode(t *testing.T, ts *httptest.Server, cfg Config) (*Cluster, string) {
	t.Helper()
	self := "http://127.0.0.1:1"
	cfg.Self = self
	cfg.Peers = []string{self, ts.URL}
	cfg.ProbeInterval = -1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("%064x", i)
		if !c.Owner(k).Self() {
			return c, k
		}
	}
	t.Fatal("no key owned by the remote peer in 4096 candidates")
	return nil, ""
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:2"}}); err == nil {
		t.Fatal("self outside the membership list accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://a:1/"}}); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "ftp://b:2"}}); err == nil {
		t.Fatal("non-http peer accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://b:2/base"}}); err == nil {
		t.Fatal("peer url with a path accepted")
	}
}

// A fetch for a remotely-owned key must hit the owner's sealed-entry
// endpoint and verify the framing; a locally-owned key must miss with
// no RPC at all.
func TestFetchHitAndLocalMiss(t *testing.T) {
	payload := []byte(`{"cycles":42}`)
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if !strings.HasPrefix(r.URL.Path, PeerResultPath) {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		w.Write(store.SealEntry(payload))
	}))
	defer ts.Close()
	c, key := twoNode(t, ts, Config{})

	data, ok, err := c.Fetch(key)
	if err != nil || !ok || string(data) != string(payload) {
		t.Fatalf("Fetch = %q, %v, %v", data, ok, err)
	}
	// A key the local node owns never leaves the process.
	var local string
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("%064x", i)
		if c.Owner(k).Self() {
			local = k
			break
		}
	}
	if _, ok, err := c.Fetch(local); ok || err != nil {
		t.Fatalf("locally-owned fetch = %v, %v; want clean miss", ok, err)
	}
	if calls != 1 {
		t.Fatalf("owner called %d times, want 1", calls)
	}
	h := c.Health()
	var hits, misses uint64
	for _, p := range h {
		hits += p.Hits
		misses += p.Misses
	}
	if hits != 1 || misses != 0 {
		t.Fatalf("health counters = %+v, want 1 hit", h)
	}
}

// A 404 from the owner is a clean miss and healthy I/O.
func TestFetchMiss(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer ts.Close()
	c, key := twoNode(t, ts, Config{})
	if _, ok, err := c.Fetch(key); ok || err != nil {
		t.Fatalf("Fetch = %v, %v; want clean miss", ok, err)
	}
	for _, p := range c.Health() {
		if p.Degraded {
			t.Fatalf("peer degraded after a clean miss: %+v", p)
		}
	}
}

// Consecutive failures must trip the owner's breaker; once open,
// fetches skip the RPC entirely instead of hammering a dead node.
func TestFetchUnreachableTripsBreaker(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	c, key := twoNode(t, ts, Config{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	ts.Close() // now unreachable

	for i := 0; i < 2; i++ {
		if _, _, err := c.Fetch(key); err == nil {
			t.Fatalf("fetch %d from a dead owner succeeded", i)
		}
	}
	// Breaker open: a miss without an error, and without an RPC.
	if _, ok, err := c.Fetch(key); ok || err != nil {
		t.Fatalf("open-breaker fetch = %v, %v; want silent miss", ok, err)
	}
	var remote PeerHealth
	for _, p := range c.Health() {
		if !p.Self {
			remote = p
		}
	}
	if !remote.Degraded || remote.BreakerTrips != 1 || remote.Errors != 2 || remote.Skipped != 1 {
		t.Fatalf("remote health = %+v, want degraded with 2 errors, 1 skip, 1 trip", remote)
	}
}

// A corrupt sealed entry is a data problem: the fetch errors (caller
// recomputes) but the breaker records availability Success.
func TestFetchCorruptEntry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw := store.SealEntry([]byte(`{"cycles":42}`))
		raw[len(raw)-1] ^= 0x01
		w.Write(raw)
	}))
	defer ts.Close()
	c, key := twoNode(t, ts, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	if _, ok, err := c.Fetch(key); ok || err == nil {
		t.Fatalf("Fetch of corrupt entry = %v, %v; want error", ok, err)
	}
	for _, p := range c.Health() {
		if p.Degraded {
			t.Fatalf("corruption tripped the availability breaker: %+v", p)
		}
	}
}

// fakeFaults injects at a single site.
type fakeFaults struct {
	site    string
	err     error
	corrupt bool
}

func (f *fakeFaults) Fail(site string) error {
	if site == f.site {
		return f.err
	}
	return nil
}

func (f *fakeFaults) Corrupt(site string, data []byte) ([]byte, bool) {
	if site == f.site && f.corrupt && len(data) > 0 {
		mut := append([]byte(nil), data...)
		mut[len(mut)/2] ^= 0x10
		return mut, true
	}
	return data, false
}

// The SiteFetch seam must be able to fail a fetch before any RPC and
// to corrupt a response after it.
func TestFetchFaultInjection(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Write(store.SealEntry([]byte(`{"ok":true}`)))
	}))
	defer ts.Close()

	f := &fakeFaults{site: SiteFetch, err: errors.New("injected")}
	c, key := twoNode(t, ts, Config{Faults: f})
	if _, _, err := c.Fetch(key); err == nil || calls != 0 {
		t.Fatalf("io-class injection: err=%v calls=%d, want pre-RPC failure", err, calls)
	}

	f.err = nil
	f.corrupt = true
	if _, ok, err := c.Fetch(key); ok || err == nil {
		t.Fatalf("corrupt-class injection: ok=%v err=%v, want integrity rejection", ok, err)
	}
	if calls != 1 {
		t.Fatalf("corrupt-class injection made %d calls, want 1", calls)
	}
}

// The prober must mark a dead peer down and a recovered one up, and
// MarkDown must be sticky until the next probe.
func TestProber(t *testing.T) {
	var healthy sync.Map
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, down := healthy.Load("down"); down {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()
	self := "http://127.0.0.1:1"
	c, err := New(Config{
		Self:          self,
		Peers:         []string{self, ts.URL},
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	var remote *Peer
	for _, p := range c.Members() {
		if !p.Self() {
			remote = p
		}
	}
	wait := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for remote.Up() != want {
			if time.Now().After(deadline) {
				t.Fatalf("peer never became %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	wait(true, "up")
	healthy.Store("down", true)
	wait(false, "down")
	healthy.Delete("down")
	wait(true, "up again")
}

// A peer that is still booting when Start fires its initial probe must be
// re-probed with short backoff and marked up as soon as it answers — not
// after a full probe interval. The interval here is far longer than the
// test timeout, so only the boot-phase retry loop can flip the peer up.
func TestProberBootBackoff(t *testing.T) {
	var ready sync.Map
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := ready.Load("up"); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()
	self := "http://127.0.0.1:1"
	c, err := New(Config{
		Self:          self,
		Peers:         []string{self, ts.URL},
		ProbeInterval: time.Hour, // the steady ticker never fires in-test
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	var remote *Peer
	for _, p := range c.Members() {
		if !p.Self() {
			remote = p
		}
	}
	// Let the initial probe see the peer down, then bring it up.
	deadline := time.Now().Add(5 * time.Second)
	for remote.Up() {
		if time.Now().After(deadline) {
			t.Fatal("initial probe never marked the booting peer down")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ready.Store("up", true)
	for !remote.Up() {
		if time.Now().After(deadline) {
			t.Fatal("boot backoff never re-probed the peer (would have waited a full interval)")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Merge must emit records in global index order no matter the delivery
// order, matching what a single-node Ordered sweep would stream.
func TestMergeOrder(t *testing.T) {
	const n = 257
	var got []int
	m := NewMerge[int](n, func(index, v int) {
		if index != v {
			t.Fatalf("emit(%d, %d): index/value mismatch", index, v)
		}
		got = append(got, v)
	})
	perm := rand.New(rand.NewSource(7)).Perm(n)
	var wg sync.WaitGroup
	for shard := 0; shard < 4; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := shard; i < n; i += 4 {
				m.Add(perm[i], perm[i])
			}
		}(shard)
	}
	wg.Wait()
	if !m.Done() || m.Pending() != 0 {
		t.Fatalf("Done=%v Pending=%d after all adds", m.Done(), m.Pending())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emission order broken at %d: got %d", i, v)
		}
	}
	if len(got) != n {
		t.Fatalf("emitted %d records, want %d", len(got), n)
	}
}

// Assign must walk the deterministic failover order and fall back to
// self when nobody is acceptable.
func TestAssignFailover(t *testing.T) {
	self := "http://a:1"
	c, err := New(Config{
		Self:          self,
		Peers:         []string{self, "http://b:2", "http://c:3"},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("%064x", 99)
	owner := c.Assign(key, nil)
	if owner != c.Owner(key) {
		t.Fatal("nil-predicate Assign is not Owner")
	}
	// Excluding the owner yields a different member, deterministically.
	alt := c.Assign(key, func(p *Peer) bool { return p != owner })
	if alt == owner {
		t.Fatal("Assign returned the excluded owner")
	}
	if again := c.Assign(key, func(p *Peer) bool { return p != owner }); again != alt {
		t.Fatal("failover assignment is not deterministic")
	}
	// Nobody acceptable: work still lands somewhere (self).
	if p := c.Assign(key, func(*Peer) bool { return false }); !p.Self() {
		t.Fatalf("all-rejected Assign = %s, want self", p.Name())
	}
}
