package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sdt/internal/store"
)

// peerServer is a scripted fleet member: it serves sealed entries for
// the keys it holds (404 otherwise), accepts replica PUTs, and answers
// health probes.
type peerServer struct {
	ts   *httptest.Server
	mu   sync.Mutex
	held map[string][]byte
	puts int
}

func newPeerServer(t *testing.T) *peerServer {
	t.Helper()
	ps := &peerServer{held: make(map[string][]byte)}
	ps.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			w.WriteHeader(http.StatusOK)
		case strings.HasPrefix(r.URL.Path, PeerResultPath):
			key := strings.TrimPrefix(r.URL.Path, PeerResultPath)
			switch r.Method {
			case http.MethodGet:
				ps.mu.Lock()
				data, ok := ps.held[key]
				ps.mu.Unlock()
				if !ok {
					http.Error(w, "no", http.StatusNotFound)
					return
				}
				w.Write(store.SealEntry(data))
			case http.MethodPut:
				raw := make([]byte, 0, 1024)
				buf := make([]byte, 1024)
				for {
					n, err := r.Body.Read(buf)
					raw = append(raw, buf[:n]...)
					if err != nil {
						break
					}
				}
				data, err := store.OpenEntry(raw)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				ps.mu.Lock()
				ps.held[key] = data
				ps.puts++
				ps.mu.Unlock()
				w.WriteHeader(http.StatusNoContent)
			}
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ps.ts.Close)
	return ps
}

func (ps *peerServer) hold(key string, data []byte) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.held[key] = data
}

func (ps *peerServer) get(key string) ([]byte, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	d, ok := ps.held[key]
	return d, ok
}

// testFleet builds a cluster whose self is a non-listening URL plus the
// given live peer servers, with the prober off.
func testFleet(t *testing.T, rf int, servers ...*peerServer) *Cluster {
	t.Helper()
	self := "http://127.0.0.1:1"
	peers := []string{self}
	for _, ps := range servers {
		peers = append(peers, ps.ts.URL)
	}
	c, err := New(Config{
		Self:          self,
		Peers:         peers,
		Replication:   rf,
		ProbeInterval: -1,
		Client:        servers[0].ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// peerOf maps a server back to its Peer in the current view.
func peerOf(t *testing.T, c *Cluster, ps *peerServer) *Peer {
	t.Helper()
	name := strings.TrimPrefix(ps.ts.URL, "http://")
	for _, p := range c.Members() {
		if p.Name() == name {
			return p
		}
	}
	t.Fatalf("server %s not in membership", name)
	return nil
}

// findKey searches deterministic candidate keys for one accepted by ok
// on the cluster's current view.
func findKey(t *testing.T, c *Cluster, ok func(v *View, key string) bool) string {
	t.Helper()
	v := c.CurrentView()
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("%064x", i*2654435761+99991)
		if ok(v, key) {
			return key
		}
	}
	t.Fatal("no key matching predicate in 100000 candidates")
	return ""
}

func TestViewEpochsJoinLeaveApply(t *testing.T) {
	a := newPeerServer(t)
	c := testFleet(t, 1, a)
	if c.Epoch() != 0 || c.Size() != 2 {
		t.Fatalf("boot view: epoch=%d size=%d, want 0/2", c.Epoch(), c.Size())
	}
	peerA := peerOf(t, c, a)

	v, err := c.Join("http://10.9.9.9:1234")
	if err != nil || v.Epoch() != 1 || v.Size() != 3 {
		t.Fatalf("join: view=%+v err=%v, want epoch 1 size 3", v, err)
	}
	if _, err := c.Join("http://10.9.9.9:1234"); err == nil {
		t.Fatal("duplicate join accepted")
	}
	// Surviving members keep their Peer objects (breakers, counters).
	if peerOf(t, c, a) != peerA {
		t.Fatal("join rebuilt the surviving peer object")
	}

	v, err = c.Leave("http://10.9.9.9:1234")
	if err != nil || v.Epoch() != 2 || v.Size() != 2 {
		t.Fatalf("leave: view=%+v err=%v, want epoch 2 size 2", v, err)
	}
	if _, err := c.Leave("http://10.9.9.9:1234"); err == nil {
		t.Fatal("leaving a non-member accepted")
	}

	// Stale epochs are ignored.
	if _, changed, err := c.Apply(1, []string{"http://127.0.0.1:1"}); err != nil || changed {
		t.Fatalf("stale apply: changed=%v err=%v, want no-op", changed, err)
	}
	// A membership excluding self installs a solo view at the broadcast
	// epoch: the node is out of the ring but keeps serving.
	v2, changed, err := c.Apply(10, []string{a.ts.URL})
	if err != nil || !changed || v2.Epoch() != 10 || v2.Size() != 1 || !v2.Self().Self() {
		t.Fatalf("self-excluding apply: view=%+v changed=%v err=%v, want solo epoch 10", v2, changed, err)
	}
	// The last member cannot leave.
	if _, err := c.Leave(c.SelfName()); err == nil {
		t.Fatal("removing the last member accepted")
	}
}

// Fetch walks the whole replica set: a 404 from the first replica is a
// per-peer miss and the walk continues to the next, where the entry is
// found and verified.
func TestFetchWalksReplicas(t *testing.T) {
	a, b := newPeerServer(t), newPeerServer(t)
	c := testFleet(t, 2, a, b)
	pa, pb := peerOf(t, c, a), peerOf(t, c, b)
	key := findKey(t, c, func(v *View, k string) bool {
		reps := v.Replicas(k)
		return len(reps) == 2 && reps[0] == pa && reps[1] == pb
	})
	b.hold(key, []byte("payload"))

	data, ok, err := c.Fetch(key)
	if err != nil || !ok || string(data) != "payload" {
		t.Fatalf("Fetch = (%q, %v, %v), want replica hit", data, ok, err)
	}
	if pa.misses.Load() != 1 || pa.errors.Load() != 0 {
		t.Fatalf("first replica: misses=%d errors=%d, want a clean 404 miss", pa.misses.Load(), pa.errors.Load())
	}
	if pb.hits.Load() != 1 {
		t.Fatalf("second replica hits = %d, want 1", pb.hits.Load())
	}
	if pa.Degraded() {
		t.Fatal("404s must not feed the breaker")
	}
}

// A down replica is skipped without an RPC, and the walk extends past
// the replica set (fallback copies can live on later successors after
// reassignment during an outage).
func TestFetchSkipsDownAndExtendsWalk(t *testing.T) {
	a, b := newPeerServer(t), newPeerServer(t)
	c := testFleet(t, 1, a, b)
	pa, pb := peerOf(t, c, a), peerOf(t, c, b)
	// Owner is a (sole replica at RF=1); b holds a fallback copy.
	key := findKey(t, c, func(v *View, k string) bool {
		return v.Replicas(k)[0] == pa
	})
	b.hold(key, []byte("fallback"))
	pa.MarkDown()

	data, ok, err := c.Fetch(key)
	if err != nil || !ok || string(data) != "fallback" {
		t.Fatalf("Fetch = (%q, %v, %v), want extended-walk hit", data, ok, err)
	}
	if pa.skipped.Load() != 1 {
		t.Fatalf("down replica skipped = %d, want 1", pa.skipped.Load())
	}
	if pb.hits.Load() != 1 {
		t.Fatalf("successor hits = %d, want 1", pb.hits.Load())
	}
}

// Transport errors and 404s take different paths: an unreachable
// replica feeds its breaker and accrues an error counter, but the walk
// still reaches the live replica and the caller gets the data.
func TestFetchTransportErrorVsMiss(t *testing.T) {
	a, b := newPeerServer(t), newPeerServer(t)
	// Kill a's listener but keep its URL in the membership.
	deadURL := a.ts.URL
	a.ts.Close()
	self := "http://127.0.0.1:1"
	c, err := New(Config{
		Self:             self,
		Peers:            []string{self, deadURL, b.ts.URL},
		Replication:      2,
		ProbeInterval:    -1,
		BreakerThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var pa, pb *Peer
	for _, p := range c.Members() {
		switch p.Name() {
		case strings.TrimPrefix(deadURL, "http://"):
			pa = p
		case strings.TrimPrefix(b.ts.URL, "http://"):
			pb = p
		}
	}
	key := findKey(t, c, func(v *View, k string) bool {
		reps := v.Replicas(k)
		return len(reps) == 2 && reps[0] == pa && reps[1] == pb
	})
	b.hold(key, []byte("alive"))

	data, ok, err := c.Fetch(key)
	if err != nil || !ok || string(data) != "alive" {
		t.Fatalf("Fetch = (%q, %v, %v), want hit despite dead first replica", data, ok, err)
	}
	if pa.errors.Load() != 1 || pa.misses.Load() != 0 {
		t.Fatalf("dead replica: errors=%d misses=%d, want the failure counted as transport error", pa.errors.Load(), pa.misses.Load())
	}
	if !pa.Degraded() {
		t.Fatal("transport failure at threshold 1 must trip the breaker")
	}
	// Next fetch skips the open breaker instead of timing out again.
	key2 := findKey(t, c, func(v *View, k string) bool {
		reps := v.Replicas(k)
		return len(reps) == 2 && reps[0] == pa && reps[1] == pb
	})
	b.hold(key2, []byte("alive2"))
	if _, ok, err := c.Fetch(key2); err != nil || !ok {
		t.Fatalf("Fetch with open breaker = (%v, %v), want hit via next replica", ok, err)
	}
	if pa.skipped.Load() == 0 {
		t.Fatal("open breaker must skip, not re-dial")
	}
}

// Replicate fans a freshly computed entry out to the other members of
// its replica set; the replicas verify the seal and store it.
func TestReplicateFanout(t *testing.T) {
	a, b := newPeerServer(t), newPeerServer(t)
	c := testFleet(t, 3, a, b) // rf = fleet size: every entry everywhere
	c.Start()
	defer c.Close()

	key := findKey(t, c, func(v *View, k string) bool { return true })
	c.Replicate(key, []byte("replicated"))

	deadline := time.Now().Add(5 * time.Second)
	for {
		da, oka := a.get(key)
		db, okb := b.get(key)
		if oka && okb {
			if string(da) != "replicated" || string(db) != "replicated" {
				t.Fatalf("replicas hold %q / %q", da, db)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never received the entry (a=%v b=%v)", oka, okb)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.ReplStats(); st.Sent != 2 {
		t.Fatalf("repl stats = %+v, want 2 sent", st)
	}
}

// With RF < 2 replication is off entirely.
func TestReplicateNoopAtRF1(t *testing.T) {
	a := newPeerServer(t)
	c := testFleet(t, 1, a)
	c.Start()
	defer c.Close()
	c.Replicate("deadbeef", []byte("x"))
	time.Sleep(20 * time.Millisecond)
	if st := c.ReplStats(); st.Sent != 0 || st.Queue != 0 || st.Pending != 0 {
		t.Fatalf("repl stats = %+v, want untouched at RF=1", st)
	}
	if a.puts != 0 {
		t.Fatal("peer received a replica at RF=1")
	}
}

type mapLocal map[string][]byte

func (m mapLocal) Get(key string) ([]byte, bool) {
	d, ok := m[key]
	return d, ok
}

// A replica push to a down peer parks the key; when the prober sees the
// peer again, anti-entropy re-reads the bytes from the local store and
// delivers them.
func TestReplicateAntiEntropyOnRecovery(t *testing.T) {
	a := newPeerServer(t)
	c := testFleet(t, 2, a)
	c.Start()
	defer c.Close()
	pa := peerOf(t, c, a)

	key := findKey(t, c, func(v *View, k string) bool { return true })
	c.SetLocal(mapLocal{key: []byte("late")})
	pa.MarkDown()
	c.Replicate(key, []byte("late"))

	if st := c.ReplStats(); st.Pending != 1 || st.Sent != 0 {
		t.Fatalf("repl stats after down-peer write = %+v, want 1 pending", st)
	}
	// What the prober does on a down->up transition.
	pa.up.Store(true)
	c.recoverPeer(pa)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if d, ok := a.get(key); ok {
			if string(d) != "late" {
				t.Fatalf("replica holds %q, want the local store's bytes", d)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("anti-entropy never delivered the parked key")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.ReplStats(); st.Requeued != 1 || st.Sent != 1 || st.Pending != 0 {
		t.Fatalf("repl stats after recovery = %+v, want requeued=1 sent=1", st)
	}
}

// After a membership change, keys whose owner moved are still found on
// their previous-epoch replicas — the lazy migration path — and counted.
func TestFetchPrevViewMigration(t *testing.T) {
	a, b := newPeerServer(t), newPeerServer(t)
	c := testFleet(t, 1, a, b)
	pb := peerOf(t, c, b)
	key := findKey(t, c, func(v *View, k string) bool {
		return v.Owner(k) == pb
	})
	b.hold(key, []byte("migrating"))

	if _, err := c.Leave(b.ts.URL); err != nil {
		t.Fatal(err)
	}
	data, ok, err := c.Fetch(key)
	if err != nil || !ok || string(data) != "migrating" {
		t.Fatalf("Fetch after leave = (%q, %v, %v), want prev-epoch hit", data, ok, err)
	}
	if st := c.ReplStats(); st.Migrated != 1 {
		t.Fatalf("repl stats = %+v, want 1 migrated key", st)
	}
}
