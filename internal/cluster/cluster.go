package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdt/internal/store"
)

// Fault-injection site names for the cluster layer (armed by a
// faultinject.Plan; see docs/ROBUSTNESS.md).
const (
	// SiteFetch fires around a peer-tier fetch. An io-class point fails
	// the fetch as if the owner were unreachable (feeding its breaker);
	// a corrupt-class point flips a bit in the sealed response so the
	// integrity check rejects it.
	SiteFetch = "cluster.peer.fetch"
	// SiteShard fires before the coordinator dispatches a sweep shard
	// to a peer. An io-class point fails the dispatch, exercising the
	// reassignment path without killing a process.
	SiteShard = "cluster.sweep.shard"
)

// PeerResultPath is the local-only sealed-entry endpoint prefix peers
// fetch from (the key is appended). The handler serves via the strictly
// local ByteStore.Get, so a fetch can never cascade into further peer
// fetches.
const PeerResultPath = "/v1/peer/result/"

// maxEntryBytes bounds a fetched sealed entry. Results are small JSON
// documents; anything near this size is a protocol error, not data.
const maxEntryBytes = 16 << 20

// Config parameterizes New.
type Config struct {
	// Self is this node's own base URL and must appear in Peers —
	// every member must agree on the membership list or consistent
	// hashing would send keys to different owners on different nodes.
	Self string
	// Peers is the full static membership, Self included, as base URLs
	// (e.g. http://10.0.0.1:8080). Order is irrelevant.
	Peers []string
	// BreakerThreshold is how many consecutive fetch failures open a
	// peer's circuit breaker (0 = 3, < 0 = breakers disabled).
	BreakerThreshold int
	// BreakerCooldown is the base open -> half-open wait (0 = 1s).
	BreakerCooldown time.Duration
	// ProbeInterval is how often the background prober checks each
	// peer's /healthz (0 = 2s, < 0 = no prober; fetch and dispatch
	// outcomes still update liveness).
	ProbeInterval time.Duration
	// FetchTimeout bounds one peer fetch or probe (0 = 5s).
	FetchTimeout time.Duration
	// VNodes is the virtual nodes per member on the ring (0 = 64).
	// All members must use the same value.
	VNodes int
	// Client is the HTTP client for fetches and probes (nil = a
	// dedicated default client).
	Client *http.Client
	// Faults arms the cluster's fault-injection seam (nil = none).
	Faults store.Faults
}

// Peer is one fleet member as seen from the local node.
type Peer struct {
	name string // host:port, the ring identity
	url  string // normalized base URL
	self bool

	br *store.Breaker
	up atomic.Bool // last probe/dispatch verdict; optimistic start

	hits    atomic.Uint64 // fetches that returned a verified entry
	misses  atomic.Uint64 // fetches the owner answered 404
	errors  atomic.Uint64 // fetches that failed (network, status, corrupt)
	skipped atomic.Uint64 // fetches refused by the open breaker
}

// Name returns the peer's ring identity (host:port of its URL).
func (p *Peer) Name() string { return p.name }

// URL returns the peer's normalized base URL.
func (p *Peer) URL() string { return p.url }

// Self reports whether this peer is the local node.
func (p *Peer) Self() bool { return p.self }

// Up reports the peer's last known liveness (probe or dispatch
// outcome). Self is always up.
func (p *Peer) Up() bool { return p.self || p.up.Load() }

// MarkDown records an out-of-band liveness failure (e.g. a sweep shard
// dispatch that died mid-stream). The prober will mark the peer up
// again once /healthz answers.
func (p *Peer) MarkDown() {
	if !p.self {
		p.up.Store(false)
	}
}

// Degraded reports whether the peer's fetch breaker is open or
// half-open.
func (p *Peer) Degraded() bool { return !p.self && p.br.Degraded() }

// PeerHealth is one peer's externally visible state, reported under
// /healthz and rendered as sdtd_peer_* metrics.
type PeerHealth struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	Self         bool   `json:"self"`
	Up           bool   `json:"up"`
	Degraded     bool   `json:"degraded,omitempty"`
	Hits         uint64 `json:"fetch_hits,omitempty"`
	Misses       uint64 `json:"fetch_misses,omitempty"`
	Errors       uint64 `json:"fetch_errors,omitempty"`
	Skipped      uint64 `json:"fetch_skipped,omitempty"`
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
}

// Cluster is the local node's view of the fleet: the ring, one Peer
// per member, and the fetch/probe machinery. It implements
// store.Remote, so it slots directly into ByteStore as the tier behind
// disk.
type Cluster struct {
	self    *Peer
	members []*Peer // sorted by name; indices match the ring
	ring    *ring
	client  *http.Client
	timeout time.Duration
	faults  store.Faults

	probeEvery time.Duration
	stop       chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup
}

// peerName derives the ring identity from a base URL.
func peerName(raw string) (name, normalized string, err error) {
	u, err := url.Parse(strings.TrimRight(raw, "/"))
	if err != nil {
		return "", "", fmt.Errorf("cluster: peer url %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", "", fmt.Errorf("cluster: peer url %q: scheme must be http or https", raw)
	}
	if u.Host == "" || u.Path != "" || u.RawQuery != "" {
		return "", "", fmt.Errorf("cluster: peer url %q: want scheme://host:port with no path", raw)
	}
	return u.Host, u.Scheme + "://" + u.Host, nil
}

// New builds the local node's view of the fleet. Self must be one of
// Peers; names (host:port) must be distinct. The prober is not started
// until Start.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: empty membership")
	}
	selfName, _, err := peerName(cfg.Self)
	if err != nil {
		return nil, err
	}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = 3
	}
	seen := make(map[string]bool, len(cfg.Peers))
	members := make([]*Peer, 0, len(cfg.Peers))
	for _, raw := range cfg.Peers {
		name, normalized, err := peerName(raw)
		if err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate peer %s", name)
		}
		seen[name] = true
		p := &Peer{
			name: name,
			url:  normalized,
			self: name == selfName,
			br:   store.NewBreaker(threshold, cfg.BreakerCooldown),
		}
		p.up.Store(true) // optimistic: usable before the first probe lands
		members = append(members, p)
	}
	if !seen[selfName] {
		return nil, fmt.Errorf("cluster: self %s is not in the peer list (every member must share one membership list)", selfName)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].name < members[j].name })
	names := make([]string, len(members))
	var self *Peer
	for i, p := range members {
		names[i] = p.name
		if p.self {
			self = p
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	timeout := cfg.FetchTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	probe := cfg.ProbeInterval
	if probe == 0 {
		probe = 2 * time.Second
	}
	return &Cluster{
		self:       self,
		members:    members,
		ring:       newRing(names, cfg.VNodes),
		client:     client,
		timeout:    timeout,
		faults:     cfg.Faults,
		probeEvery: probe,
		stop:       make(chan struct{}),
	}, nil
}

// SetFaults arms the cluster's fault-injection seam (nil disarms). Not
// safe to call concurrently with Fetch.
func (c *Cluster) SetFaults(f store.Faults) { c.faults = f }

// SelfName returns the local node's ring identity.
func (c *Cluster) SelfName() string { return c.self.name }

// HTTPClient returns the client used for all peer traffic.
func (c *Cluster) HTTPClient() *http.Client { return c.client }

// Size returns the number of members, self included.
func (c *Cluster) Size() int { return len(c.members) }

// Members returns the fleet sorted by name. The slice is shared and
// must not be mutated.
func (c *Cluster) Members() []*Peer { return c.members }

// Owner returns the peer owning key on the ring.
func (c *Cluster) Owner(key string) *Peer { return c.members[c.ring.owner(key)] }

// Assign returns the first peer in key's deterministic failover order
// accepted by ok. With a nil ok it is Owner. It falls back to self if
// ok rejects every member, so work always has somewhere to run.
func (c *Cluster) Assign(key string, ok func(*Peer) bool) *Peer {
	if ok == nil {
		return c.Owner(key)
	}
	for _, m := range c.ring.successors(key) {
		if ok(c.members[m]) {
			return c.members[m]
		}
	}
	return c.self
}

// Health returns a per-peer snapshot, sorted by name.
func (c *Cluster) Health() []PeerHealth {
	out := make([]PeerHealth, len(c.members))
	for i, p := range c.members {
		out[i] = PeerHealth{
			Name:     p.name,
			URL:      p.url,
			Self:     p.self,
			Up:       p.Up(),
			Degraded: p.Degraded(),
			Hits:     p.hits.Load(),
			Misses:   p.misses.Load(),
			Errors:   p.errors.Load(),
			Skipped:  p.skipped.Load(),
		}
		if !p.self {
			out[i].BreakerTrips = p.br.TripCount()
		}
	}
	return out
}

// Fetch implements store.Remote: it asks the consistent-hash owner of
// key for its sealed entry. Keys owned locally (or by a peer whose
// breaker is open) miss without an RPC; a fetched entry is verified
// with store.OpenEntry before it is returned, so a corrupt peer
// response is rejected exactly like local disk rot — an availability
// Success (the peer answered) but a fetch error, leaving the caller to
// recompute.
func (c *Cluster) Fetch(key string) ([]byte, bool, error) {
	p := c.Owner(key)
	if p.self {
		return nil, false, nil
	}
	if !p.br.Allow() {
		p.skipped.Add(1)
		return nil, false, nil
	}
	data, ok, err := c.fetchFrom(p, key)
	if err != nil {
		p.errors.Add(1)
		return nil, false, fmt.Errorf("cluster: fetch %s from %s: %w", key, p.name, err)
	}
	if ok {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
	}
	return data, ok, nil
}

// fetchFrom performs one peer fetch, feeding p's breaker.
func (c *Cluster) fetchFrom(p *Peer, key string) ([]byte, bool, error) {
	if c.faults != nil {
		if err := c.faults.Fail(SiteFetch); err != nil {
			p.br.Failure()
			return nil, false, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+PeerResultPath+key, nil)
	if err != nil {
		p.br.Failure()
		return nil, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		p.br.Failure()
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		p.br.Success()
		return nil, false, nil
	default:
		p.br.Failure()
		return nil, false, fmt.Errorf("owner answered %s", resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil {
		p.br.Failure()
		return nil, false, err
	}
	if len(raw) > maxEntryBytes {
		p.br.Failure()
		return nil, false, fmt.Errorf("entry exceeds %d bytes", maxEntryBytes)
	}
	if c.faults != nil {
		raw, _ = c.faults.Corrupt(SiteFetch, raw)
	}
	payload, err := store.OpenEntry(raw)
	if err != nil {
		// The peer answered; its data was rot. Availability is fine.
		p.br.Success()
		return nil, false, fmt.Errorf("sealed entry rejected: %w", err)
	}
	p.br.Success()
	return payload, true, nil
}

// Start launches the background health prober (a no-op when the
// configured interval is negative or the cluster was already started).
//
// Boot phase: peers of a sequentially booting fleet are routinely still
// coming up when the first probe fires, and a single startup probe would
// leave them marked down for a whole probe interval (the waitClusterUp
// race the chaos/smoke drivers used to work around). Peers that fail the
// initial probe are re-probed with a short doubling backoff until every
// peer has answered once or the backoff reaches the steady interval;
// thereafter the ticker takes over.
func (c *Cluster) Start() {
	if c.probeEvery < 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.probeEvery)
		defer t.Stop()
		c.probeAll()
		for backoff := 25 * time.Millisecond; backoff < c.probeEvery && c.anyPeerDown(); backoff *= 2 {
			select {
			case <-c.stop:
				return
			case <-time.After(backoff):
			}
			c.probeDown()
		}
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Close stops the prober and waits for it to exit.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// probeAll checks every remote peer's /healthz concurrently. Any HTTP
// 200 marks the peer up (a degraded-store 200 still serves results);
// errors and non-200s — including a draining node's 503 — mark it
// down so the sweep coordinator stops assigning it new work.
func (c *Cluster) probeAll() {
	var wg sync.WaitGroup
	for _, p := range c.members {
		if p.self {
			continue
		}
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			p.up.Store(c.probe(p))
		}(p)
	}
	wg.Wait()
}

// anyPeerDown reports whether any remote peer is currently marked down.
func (c *Cluster) anyPeerDown() bool {
	for _, p := range c.members {
		if !p.self && !p.up.Load() {
			return true
		}
	}
	return false
}

// probeDown re-probes only the peers currently marked down (the boot-phase
// retry loop; up peers are left to the steady ticker).
func (c *Cluster) probeDown() {
	var wg sync.WaitGroup
	for _, p := range c.members {
		if p.self || p.up.Load() {
			continue
		}
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			p.up.Store(c.probe(p))
		}(p)
	}
	wg.Wait()
}

func (c *Cluster) probe(p *Peer) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
