package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdt/internal/store"
)

// Fault-injection site names for the cluster layer (armed by a
// faultinject.Plan; see docs/ROBUSTNESS.md).
const (
	// SiteFetch fires around a peer-tier fetch. An io-class point fails
	// the fetch as if the owner were unreachable (feeding its breaker);
	// a corrupt-class point flips a bit in the sealed response so the
	// integrity check rejects it.
	SiteFetch = "cluster.peer.fetch"
	// SiteShard fires before the coordinator dispatches a sweep shard
	// to a peer. An io-class point fails the dispatch, exercising the
	// reassignment path without killing a process.
	SiteShard = "cluster.sweep.shard"
)

// PeerResultPath is the local-only sealed-entry endpoint prefix peers
// fetch from and replicate to (the key is appended). The GET handler
// serves via the strictly local ByteStore.Get, so a fetch can never
// cascade into further peer fetches; the PUT handler verifies the seal
// and stores locally without re-replicating, so a replica write can
// never cascade into further replication.
const PeerResultPath = "/v1/peer/result/"

// PeerJournalPath is the peer endpoint prefix for replicated sweep
// checkpoint journals (the sweep id is appended): the coordinator PUTs
// its journal to ring successors as it checkpoints, and a survivor
// GETs it back when adopting an orphaned sweep.
const PeerJournalPath = "/v1/peer/journal/"

// maxEntryBytes bounds a fetched sealed entry. Results are small JSON
// documents; anything near this size is a protocol error, not data.
const maxEntryBytes = 16 << 20

// Config parameterizes New.
type Config struct {
	// Self is this node's own base URL and must appear in Peers —
	// every member must agree on the membership list or consistent
	// hashing would send keys to different owners on different nodes.
	Self string
	// Peers is the boot membership, Self included, as base URLs
	// (e.g. http://10.0.0.1:8080). Order is irrelevant. Join/Leave/
	// Apply rebuild the membership at runtime (ring epochs).
	Peers []string
	// Replication is how many distinct ring successors hold each sealed
	// entry (the owner included). 0 or 1 means no replication; values
	// above the fleet size are clamped per view.
	Replication int
	// BreakerThreshold is how many consecutive fetch failures open a
	// peer's circuit breaker (0 = 3, < 0 = breakers disabled).
	BreakerThreshold int
	// BreakerCooldown is the base open -> half-open wait (0 = 1s).
	BreakerCooldown time.Duration
	// ProbeInterval is how often the background prober checks each
	// peer's /healthz (0 = 2s, < 0 = no prober; fetch and dispatch
	// outcomes still update liveness).
	ProbeInterval time.Duration
	// FetchTimeout bounds one peer fetch, replica push or probe (0 = 5s).
	FetchTimeout time.Duration
	// VNodes is the virtual nodes per member on the ring (0 = 64).
	// All members must use the same value.
	VNodes int
	// Client is the HTTP client for fetches and probes (nil = a
	// dedicated default client).
	Client *http.Client
	// Faults arms the cluster's fault-injection seam (nil = none).
	Faults store.Faults
}

// Peer is one fleet member as seen from the local node. Peer objects
// survive membership changes: a member present in consecutive views
// keeps its breaker state, liveness and counters.
type Peer struct {
	name string // host:port, the ring identity
	url  string // normalized base URL
	self bool

	br *store.Breaker
	up atomic.Bool // last probe/dispatch verdict; optimistic start

	hits    atomic.Uint64 // fetches that returned a verified entry
	misses  atomic.Uint64 // fetches the peer answered 404
	errors  atomic.Uint64 // fetches that failed (network, status, corrupt)
	skipped atomic.Uint64 // fetches refused (down peer or open breaker)
}

// Name returns the peer's ring identity (host:port of its URL).
func (p *Peer) Name() string { return p.name }

// URL returns the peer's normalized base URL.
func (p *Peer) URL() string { return p.url }

// Self reports whether this peer is the local node.
func (p *Peer) Self() bool { return p.self }

// Up reports the peer's last known liveness (probe or dispatch
// outcome). Self is always up.
func (p *Peer) Up() bool { return p.self || p.up.Load() }

// MarkDown records an out-of-band liveness failure (e.g. a sweep shard
// dispatch that died mid-stream). The prober will mark the peer up
// again once /healthz answers.
func (p *Peer) MarkDown() {
	if !p.self {
		p.up.Store(false)
	}
}

// Degraded reports whether the peer's fetch breaker is open or
// half-open.
func (p *Peer) Degraded() bool { return !p.self && p.br.Degraded() }

// PeerHealth is one peer's externally visible state, reported under
// /healthz and rendered as sdtd_peer_* metrics.
type PeerHealth struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	Self         bool   `json:"self"`
	Up           bool   `json:"up"`
	Degraded     bool   `json:"degraded,omitempty"`
	Hits         uint64 `json:"fetch_hits,omitempty"`
	Misses       uint64 `json:"fetch_misses,omitempty"`
	Errors       uint64 `json:"fetch_errors,omitempty"`
	Skipped      uint64 `json:"fetch_skipped,omitempty"`
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
}

// Cluster is the local node's view of the fleet: the current View
// (members + ring at one epoch), the fetch/replication machinery and
// the background prober. It implements store.Remote and
// store.Replicator, so it slots directly into ByteStore as the tier
// behind disk and the write fan-out.
type Cluster struct {
	selfName string
	rf       int // configured replication factor (clamped per view)
	vnodes   int
	brN      int
	brWait   time.Duration
	client   *http.Client
	timeout  time.Duration
	faults   store.Faults
	local    Local // strictly-local store for anti-entropy re-reads

	mu   sync.Mutex // serializes membership changes
	cur  atomic.Pointer[View]
	prev atomic.Pointer[View] // one epoch back; the lazy-migration fetch source

	repl *replicator

	probeEvery time.Duration
	stop       chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup
}

// peerName derives the ring identity from a base URL.
func peerName(raw string) (name, normalized string, err error) {
	u, err := url.Parse(strings.TrimRight(raw, "/"))
	if err != nil {
		return "", "", fmt.Errorf("cluster: peer url %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", "", fmt.Errorf("cluster: peer url %q: scheme must be http or https", raw)
	}
	if u.Host == "" || u.Path != "" || u.RawQuery != "" {
		return "", "", fmt.Errorf("cluster: peer url %q: want scheme://host:port with no path", raw)
	}
	return u.Host, u.Scheme + "://" + u.Host, nil
}

// New builds the local node's view of the fleet. Self must be one of
// Peers; names (host:port) must be distinct. The prober and replication
// workers are not started until Start.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: empty membership")
	}
	selfName, _, err := peerName(cfg.Self)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	timeout := cfg.FetchTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	probe := cfg.ProbeInterval
	if probe == 0 {
		probe = 2 * time.Second
	}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = 3
	}
	rf := cfg.Replication
	if rf < 1 {
		rf = 1
	}
	c := &Cluster{
		selfName:   selfName,
		rf:         rf,
		vnodes:     cfg.VNodes,
		brN:        threshold,
		brWait:     cfg.BreakerCooldown,
		client:     client,
		timeout:    timeout,
		faults:     cfg.Faults,
		repl:       newReplicator(),
		probeEvery: probe,
		stop:       make(chan struct{}),
	}
	v, err := c.makeView(0, cfg.Peers, nil)
	if err != nil {
		return nil, err
	}
	if !v.self.self || v.self.name != selfName {
		return nil, fmt.Errorf("cluster: self %s is not in the peer list (every member must share one membership list)", selfName)
	}
	c.cur.Store(v)
	return c, nil
}

// makeView builds a View at epoch over urls, reusing Peer objects from
// reuse (by name) so surviving members keep their state. Self must be
// derivable from c.selfName; if self is absent from urls the error is
// reported by the caller's policy (Apply tolerates it, New does not).
func (c *Cluster) makeView(epoch uint64, urls []string, reuse *View) (*View, error) {
	seen := make(map[string]bool, len(urls))
	byName := make(map[string]*Peer)
	if reuse != nil {
		for _, p := range reuse.members {
			byName[p.name] = p
		}
	}
	members := make([]*Peer, 0, len(urls))
	selfSeen := false
	for _, raw := range urls {
		name, normalized, err := peerName(raw)
		if err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate peer %s", name)
		}
		seen[name] = true
		if name == c.selfName {
			selfSeen = true
		}
		if p, ok := byName[name]; ok {
			members = append(members, p)
			continue
		}
		p := &Peer{
			name: name,
			url:  normalized,
			self: name == c.selfName,
			br:   store.NewBreaker(c.brN, c.brWait),
		}
		p.up.Store(true) // optimistic: usable before the first probe lands
		members = append(members, p)
	}
	if !selfSeen {
		return nil, errSelfExcluded
	}
	return buildView(epoch, members, c.vnodes, c.rf)
}

// errSelfExcluded marks a membership update that does not contain the
// local node — the shape a leave broadcast has from the leaver's own
// point of view.
var errSelfExcluded = errors.New("cluster: membership update excludes self")

// SetFaults arms the cluster's fault-injection seam (nil disarms). Not
// safe to call concurrently with Fetch.
func (c *Cluster) SetFaults(f store.Faults) { c.faults = f }

// SetLocal wires the strictly-local store the replicator re-reads
// payloads from (anti-entropy). Call before Start, like SetRemote on
// the store side.
func (c *Cluster) SetLocal(l Local) { c.local = l }

// SelfName returns the local node's ring identity.
func (c *Cluster) SelfName() string { return c.selfName }

// HTTPClient returns the client used for all peer traffic.
func (c *Cluster) HTTPClient() *http.Client { return c.client }

// CurrentView returns the membership at the current ring epoch.
// Work that must stay coherent across membership changes (a sweep's
// partitioning) captures this once and uses the View throughout.
func (c *Cluster) CurrentView() *View { return c.cur.Load() }

// Epoch returns the current ring epoch (0 at boot; each membership
// change increments it).
func (c *Cluster) Epoch() uint64 { return c.cur.Load().epoch }

// ReplicationFactor returns the configured replication factor (>= 1).
func (c *Cluster) ReplicationFactor() int { return c.rf }

// Size returns the number of members in the current view, self included.
func (c *Cluster) Size() int { return c.cur.Load().Size() }

// Members returns the current view's fleet sorted by name. The slice is
// shared and must not be mutated.
func (c *Cluster) Members() []*Peer { return c.cur.Load().Members() }

// Owner returns the peer owning key on the current view's ring.
func (c *Cluster) Owner(key string) *Peer { return c.cur.Load().Owner(key) }

// Assign returns the first peer in key's deterministic failover order
// accepted by ok, on the current view. See View.Assign.
func (c *Cluster) Assign(key string, ok func(*Peer) bool) *Peer {
	return c.cur.Load().Assign(key, ok)
}

// Join adds a member by URL and installs the new view at epoch+1.
// The caller (the service's admin handler) broadcasts the resulting
// membership to the rest of the fleet.
func (c *Cluster) Join(raw string) (*View, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name, _, err := peerName(raw)
	if err != nil {
		return nil, err
	}
	old := c.cur.Load()
	for _, p := range old.members {
		if p.name == name {
			return nil, fmt.Errorf("cluster: %s is already a member", name)
		}
	}
	urls := append(old.MemberURLs(), raw)
	v, err := c.makeView(old.epoch+1, urls, old)
	if err != nil {
		return nil, err
	}
	c.install(old, v)
	return v, nil
}

// Leave removes a member by URL (or bare host:port name) and installs
// the new view at epoch+1. Removing self yields a solo view: the node
// keeps serving (so migrating keys can still be pulled from it) but no
// longer participates in the ring.
func (c *Cluster) Leave(raw string) (*View, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := raw
	if strings.Contains(raw, "://") {
		var err error
		if name, _, err = peerName(raw); err != nil {
			return nil, err
		}
	}
	old := c.cur.Load()
	urls := make([]string, 0, len(old.members))
	found := false
	for _, p := range old.members {
		if p.name == name {
			found = true
			continue
		}
		urls = append(urls, p.url)
	}
	if !found {
		return nil, fmt.Errorf("cluster: %s is not a member", name)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: refusing to remove the last member")
	}
	v, err := c.makeView(old.epoch+1, urls, old)
	if errors.Is(err, errSelfExcluded) {
		v, err = c.soloView(old.epoch + 1)
	}
	if err != nil {
		return nil, err
	}
	c.install(old, v)
	return v, nil
}

// Apply installs a broadcast membership (epoch, member URLs) if it is
// newer than the current view. It returns the view now in effect and
// whether it changed. A membership that excludes self installs a solo
// view: this node has been removed and should expect to be drained, but
// keeps serving its store so migrating keys can be pulled from it.
func (c *Cluster) Apply(epoch uint64, urls []string) (*View, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.cur.Load()
	if epoch <= old.epoch {
		return old, false, nil
	}
	v, err := c.makeView(epoch, urls, old)
	if errors.Is(err, errSelfExcluded) {
		v, err = c.soloView(epoch)
	}
	if err != nil {
		return nil, false, err
	}
	c.install(old, v)
	return v, true, nil
}

// soloView is the view a removed node adopts: itself, alone, at the
// broadcast epoch.
func (c *Cluster) soloView(epoch uint64) (*View, error) {
	old := c.cur.Load()
	return c.makeView(epoch, []string{old.self.url}, old)
}

// install swaps in a new view, keeping the outgoing one as the
// lazy-migration fetch source. Only keys whose owner set differs
// between prev and cur ever move, and they move lazily: the first
// local miss on the new owner pulls the entry from a previous-epoch
// replica through the ordinary peer tier.
func (c *Cluster) install(old, v *View) {
	c.prev.Store(old)
	c.cur.Store(v)
}

// Health returns a per-peer snapshot of the current view, sorted by
// name.
func (c *Cluster) Health() []PeerHealth {
	members := c.cur.Load().members
	out := make([]PeerHealth, len(members))
	for i, p := range members {
		out[i] = PeerHealth{
			Name:     p.name,
			URL:      p.url,
			Self:     p.self,
			Up:       p.Up(),
			Degraded: p.Degraded(),
			Hits:     p.hits.Load(),
			Misses:   p.misses.Load(),
			Errors:   p.errors.Load(),
			Skipped:  p.skipped.Load(),
		}
		if !p.self {
			out[i].BreakerTrips = p.br.TripCount()
		}
	}
	return out
}

// Fetch implements store.Remote: it walks key's replica set in
// successor order, skipping down peers and open breakers, until a
// verified sealed entry turns up. A 404 is a clean per-peer miss (the
// peer answered; try the next replica); a transport error feeds that
// peer's breaker and the walk continues. If any replica had to be
// skipped or errored, the walk extends past the replica set to the
// remaining successors — reassignment during an outage can leave
// fallback copies there. Finally, after a membership change, the
// previous epoch's replica set is consulted: that is the lazy key
// migration path, and a hit there is counted as a migrated key before
// the caller promotes it into the local tiers of its new owner.
//
// Entries are verified with store.OpenEntry before being returned, so a
// corrupt peer response is rejected exactly like local disk rot — an
// availability Success (the peer answered) but a fetch error, leaving
// the caller to try elsewhere or recompute.
func (c *Cluster) Fetch(key string) ([]byte, bool, error) {
	v := c.cur.Load()
	var (
		errs    []error
		blocked bool // some replica was unreachable: its copy may exist but can't be read
		tried   = make(map[string]bool, v.rf+1)
	)
	attempt := func(p *Peer, migration bool) ([]byte, bool) {
		tried[p.name] = true
		if p.self {
			return nil, false
		}
		if !p.Up() || !p.br.Allow() {
			p.skipped.Add(1)
			blocked = true
			return nil, false
		}
		data, ok, err := c.fetchFrom(p, key)
		if err != nil {
			p.errors.Add(1)
			blocked = true
			errs = append(errs, fmt.Errorf("cluster: fetch %s from %s: %w", key, p.name, err))
			return nil, false
		}
		if !ok {
			p.misses.Add(1)
			return nil, false
		}
		p.hits.Add(1)
		if migration {
			c.repl.migrated.Add(1)
		}
		return data, true
	}
	for _, p := range v.Replicas(key) {
		if data, ok := attempt(p, false); ok {
			return data, true, nil
		}
	}
	if blocked {
		for _, p := range v.Successors(key) {
			if tried[p.name] {
				continue
			}
			if data, ok := attempt(p, false); ok {
				return data, true, nil
			}
		}
	}
	if pv := c.prev.Load(); pv != nil {
		for _, p := range pv.Replicas(key) {
			if tried[p.name] {
				continue
			}
			if data, ok := attempt(p, true); ok {
				return data, true, nil
			}
		}
	}
	if len(errs) > 0 {
		return nil, false, errors.Join(errs...)
	}
	return nil, false, nil
}

// fetchFrom performs one peer fetch, feeding p's breaker.
func (c *Cluster) fetchFrom(p *Peer, key string) ([]byte, bool, error) {
	if c.faults != nil {
		if err := c.faults.Fail(SiteFetch); err != nil {
			p.br.Failure()
			return nil, false, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+PeerResultPath+key, nil)
	if err != nil {
		p.br.Failure()
		return nil, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		p.br.Failure()
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		p.br.Success()
		return nil, false, nil
	default:
		p.br.Failure()
		return nil, false, fmt.Errorf("peer answered %s", resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil {
		p.br.Failure()
		return nil, false, err
	}
	if len(raw) > maxEntryBytes {
		p.br.Failure()
		return nil, false, fmt.Errorf("entry exceeds %d bytes", maxEntryBytes)
	}
	if c.faults != nil {
		raw, _ = c.faults.Corrupt(SiteFetch, raw)
	}
	payload, err := store.OpenEntry(raw)
	if err != nil {
		// The peer answered; its data was rot. Availability is fine.
		p.br.Success()
		return nil, false, fmt.Errorf("sealed entry rejected: %w", err)
	}
	p.br.Success()
	return payload, true, nil
}

// Start launches the background health prober and the replication
// workers (probing is a no-op when the configured interval is negative;
// calling Start twice is not supported).
//
// Boot phase: peers of a sequentially booting fleet are routinely still
// coming up when the first probe fires, and a single startup probe would
// leave them marked down for a whole probe interval (the waitClusterUp
// race the chaos/smoke drivers used to work around). Peers that fail the
// initial probe are re-probed with a short doubling backoff until every
// peer has answered once or the backoff reaches the steady interval;
// thereafter the ticker takes over.
func (c *Cluster) Start() {
	for i := 0; i < replWorkers; i++ {
		c.wg.Add(1)
		go c.replLoop()
	}
	if c.probeEvery < 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.probeEvery)
		defer t.Stop()
		c.probeAll()
		for backoff := 25 * time.Millisecond; backoff < c.probeEvery && c.anyPeerDown(); backoff *= 2 {
			select {
			case <-c.stop:
				return
			case <-time.After(backoff):
			}
			c.probeDown()
		}
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Close stops the prober and replication workers and waits for them to
// exit.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// probeOne probes p, updates its liveness, and triggers anti-entropy
// when it is reachable and has a replication backlog (both the down->up
// transition and retries of transiently failed pushes).
func (c *Cluster) probeOne(p *Peer) {
	alive := c.probe(p)
	p.up.Store(alive)
	if alive {
		c.recoverPeer(p)
	}
}

// probeAll checks every remote peer's /healthz concurrently. Any HTTP
// 200 marks the peer up (a degraded-store 200 still serves results);
// errors and non-200s — including a draining node's 503 — mark it
// down so the sweep coordinator stops assigning it new work.
func (c *Cluster) probeAll() {
	var wg sync.WaitGroup
	for _, p := range c.cur.Load().members {
		if p.self {
			continue
		}
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			c.probeOne(p)
		}(p)
	}
	wg.Wait()
}

// anyPeerDown reports whether any remote peer is currently marked down.
func (c *Cluster) anyPeerDown() bool {
	for _, p := range c.cur.Load().members {
		if !p.self && !p.up.Load() {
			return true
		}
	}
	return false
}

// probeDown re-probes only the peers currently marked down (the boot-phase
// retry loop; up peers are left to the steady ticker).
func (c *Cluster) probeDown() {
	var wg sync.WaitGroup
	for _, p := range c.cur.Load().members {
		if p.self || p.up.Load() {
			continue
		}
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			c.probeOne(p)
		}(p)
	}
	wg.Wait()
}

func (c *Cluster) probe(p *Peer) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
