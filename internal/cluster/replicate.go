package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"sdt/internal/store"
)

// Local is the strictly-local store view the replicator reads from when
// it retries a key whose bytes it no longer holds (anti-entropy after a
// peer recovers). In practice it is the node's own ByteStore; Get must
// never cascade into peer fetches.
type Local interface {
	Get(key string) ([]byte, bool)
}

// Replication tuning. The queue bounds memory (tasks carry the sealed
// payload); the pending set bounds the anti-entropy backlog per peer;
// the attempt cap keeps a peer that accepts probes but rejects writes
// from recycling the same key forever.
const (
	replQueueDepth  = 1024
	replPendingMax  = 4096
	replMaxAttempts = 8
	replWorkers     = 2
)

// replTask is one queued fan-out: push key's sealed entry to peer. A
// nil data means "re-read from the local store at send time" (the
// anti-entropy path, where holding every deferred payload in memory
// would defeat the bounded queue).
type replTask struct {
	peer     *Peer
	key      string
	data     []byte
	attempts int
}

// ReplStats is a snapshot of the replication counters, reported under
// /healthz and rendered as sdtd_replication_* metrics.
type ReplStats struct {
	Sent     uint64 `json:"sent"`               // sealed entries acknowledged by a replica
	Failed   uint64 `json:"failed,omitempty"`   // pushes that errored (deferred for anti-entropy)
	Dropped  uint64 `json:"dropped,omitempty"`  // keys given up on (bounds exceeded or retries exhausted)
	Requeued uint64 `json:"requeued,omitempty"` // anti-entropy retries enqueued after a peer recovered
	Received uint64 `json:"received,omitempty"` // replica writes accepted from peers
	Migrated uint64 `json:"migrated,omitempty"` // fetches served by a previous-epoch replica (lazy key migration)
	Pending  int    `json:"pending,omitempty"`  // keys awaiting anti-entropy retry
	Queue    int    `json:"queue,omitempty"`    // fan-out tasks currently queued
}

// replicator fans sealed entries out to ring successors: a bounded
// queue drained by a couple of workers, plus a per-peer pending set for
// keys that could not be pushed (peer down, queue full, transport
// error). Pending keys are re-enqueued when the prober next sees their
// peer up — anti-entropy on probe recovery — with payloads re-read from
// the local store so the backlog costs keys, not bytes.
type replicator struct {
	queue chan replTask

	mu      sync.Mutex
	pending map[string]map[string]int // peer name -> key -> attempts so far

	sent     atomic.Uint64
	failed   atomic.Uint64
	dropped  atomic.Uint64
	requeued atomic.Uint64
	received atomic.Uint64
	migrated atomic.Uint64
}

func newReplicator() *replicator {
	return &replicator{
		queue:   make(chan replTask, replQueueDepth),
		pending: make(map[string]map[string]int),
	}
}

// stats snapshots the counters.
func (r *replicator) stats() ReplStats {
	r.mu.Lock()
	pending := 0
	for _, keys := range r.pending {
		pending += len(keys)
	}
	r.mu.Unlock()
	return ReplStats{
		Sent:     r.sent.Load(),
		Failed:   r.failed.Load(),
		Dropped:  r.dropped.Load(),
		Requeued: r.requeued.Load(),
		Received: r.received.Load(),
		Migrated: r.migrated.Load(),
		Pending:  pending,
		Queue:    len(r.queue),
	}
}

// defer_ parks key for peer until anti-entropy retries it. Attempts
// carries over so a key cannot bounce queue<->pending forever.
func (r *replicator) defer_(peer *Peer, key string, attempts int) {
	if attempts >= replMaxAttempts {
		r.dropped.Add(1)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := r.pending[peer.name]
	if keys == nil {
		keys = make(map[string]int)
		r.pending[peer.name] = keys
	}
	if _, ok := keys[key]; !ok && len(keys) >= replPendingMax {
		r.dropped.Add(1)
		return
	}
	if prev := keys[key]; attempts < prev {
		attempts = prev
	}
	keys[key] = attempts
}

// take removes and returns peer's pending key set.
func (r *replicator) take(peer *Peer) map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := r.pending[peer.name]
	delete(r.pending, peer.name)
	return keys
}

// Replicate implements store.Replicator: it fans key's freshly computed
// bytes out to the other members of its replica set, asynchronously and
// best-effort. With RF < 2 (or a fleet of one) it is a no-op. Callers
// must not mutate data afterwards (the store already demands this).
func (c *Cluster) Replicate(key string, data []byte) {
	v := c.cur.Load()
	if v.rf < 2 {
		return
	}
	for _, p := range v.Replicas(key) {
		if p.self {
			continue
		}
		if !p.Up() {
			// Don't burn queue slots on a known-dead peer; anti-entropy
			// delivers when the prober sees it again.
			c.repl.defer_(p, key, 0)
			continue
		}
		select {
		case c.repl.queue <- replTask{peer: p, key: key, data: data}:
		default:
			c.repl.defer_(p, key, 0)
		}
	}
}

// NoteReplicaReceived counts one replica write accepted from a peer
// (the service's PUT handler calls it, keeping all replication counters
// in one place).
func (c *Cluster) NoteReplicaReceived() { c.repl.received.Add(1) }

// ReplStats snapshots the replication counters.
func (c *Cluster) ReplStats() ReplStats { return c.repl.stats() }

// replLoop is one replication worker: it drains the queue and pushes
// each task's sealed entry to its peer.
func (c *Cluster) replLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case t := <-c.repl.queue:
			c.replSend(t)
		}
	}
}

// replSend performs one replica push. Failures defer the key for
// anti-entropy rather than erroring anywhere visible: replication is
// best-effort by design, and the content-addressed store makes a
// missed replica merely a future recompute, never wrong data.
func (c *Cluster) replSend(t replTask) {
	data := t.data
	if data == nil {
		if c.local == nil {
			c.repl.dropped.Add(1)
			return
		}
		var ok bool
		data, ok = c.local.Get(t.key)
		if !ok {
			// The bytes are gone locally (evicted memory-only store);
			// nothing to replicate.
			c.repl.dropped.Add(1)
			return
		}
	}
	if err := c.putEntry(t.peer, t.key, data); err != nil {
		c.repl.failed.Add(1)
		c.repl.defer_(t.peer, t.key, t.attempts+1)
		return
	}
	c.repl.sent.Add(1)
}

// putEntry PUTs one sealed entry to peer's replica endpoint.
func (c *Cluster) putEntry(p *Peer, key string, data []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		p.url+PeerResultPath+key, bytes.NewReader(store.SealEntry(data)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("replica answered %s", resp.Status)
	}
	return nil
}

// recoverPeer re-enqueues peer's pending keys after the prober saw it
// answer (or on the steady probe tick, which retries transient push
// failures). Payloads are re-read from the local store at send time; a
// key whose current replica set no longer includes the peer (the ring
// moved while it was parked) is dropped rather than pushed to a node
// that no longer owns it.
func (c *Cluster) recoverPeer(p *Peer) {
	keys := c.repl.take(p)
	if len(keys) == 0 {
		return
	}
	v := c.cur.Load()
	for key, attempts := range keys {
		stillReplica := false
		for _, rp := range v.Replicas(key) {
			if rp == p {
				stillReplica = true
				break
			}
		}
		if !stillReplica {
			c.repl.dropped.Add(1)
			continue
		}
		select {
		case c.repl.queue <- replTask{peer: p, key: key, attempts: attempts}:
			c.repl.requeued.Add(1)
		default:
			c.repl.defer_(p, key, attempts)
		}
	}
}
