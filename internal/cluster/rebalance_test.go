package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// ownerSets renders each key's first-rf successor set (sorted member
// names) on a ring over names — the identity replication cares about: a
// key only migrates when this set changes.
func ownerSets(names []string, rf int, keys []string) map[string]string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	r := newRing(sorted, 0)
	sets := make(map[string]string, len(keys))
	for _, key := range keys {
		idx := r.successors(key)
		if len(idx) > rf {
			idx = idx[:rf]
		}
		out := make([]string, len(idx))
		for i, m := range idx {
			out[i] = sorted[m]
		}
		sort.Strings(out)
		sets[key] = strings.Join(out, ",")
	}
	return sets
}

// Property: across random join/leave sequences, the fraction of keys
// whose owner set changes at each step is bounded by ~rf/N — consistent
// hashing's minimal-movement guarantee, which is what makes runtime
// membership changes affordable (only the keys whose replica placement
// actually changed ever migrate).
func TestRingRebalanceBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := ringKeys(3000)
	pool := make([]string, 20)
	for i := range pool {
		pool[i] = fmt.Sprintf("node%02d:%d", i, 8000+i)
	}
	members := append([]string(nil), pool[:4]...)
	for _, rf := range []int{1, 2} {
		before := ownerSets(members, rf, keys)
		for step := 0; step < 12; step++ {
			join := rng.Intn(2) == 0 || len(members) <= rf+1
			if len(members) >= len(pool) {
				join = false
			}
			prevN := len(members)
			if join {
				// Pick an unused name from the pool.
				used := make(map[string]bool, len(members))
				for _, m := range members {
					used[m] = true
				}
				var candidates []string
				for _, p := range pool {
					if !used[p] {
						candidates = append(candidates, p)
					}
				}
				members = append(members, candidates[rng.Intn(len(candidates))])
			} else {
				i := rng.Intn(len(members))
				members = append(members[:i], members[i+1:]...)
			}
			minN := prevN
			if len(members) < minN {
				minN = len(members)
			}
			moved := 0
			now := ownerSets(members, rf, keys)
			for _, k := range keys {
				if now[k] != before[k] {
					moved++
				}
			}
			before = now
			frac := float64(moved) / float64(len(keys))
			bound := float64(rf)/float64(minN) + 0.12
			if frac > bound {
				t.Fatalf("step %d (rf=%d, %d->%d members): %.3f of owner sets changed, bound %.3f",
					step, rf, prevN, len(members), frac, bound)
			}
		}
	}
}

// successors must return each member at most (and, asked for the full
// ring, exactly) once — even on a pathological ring where vnode points
// of different members collide on the same hash.
func TestRingSuccessorsNoDuplicatesOnCollision(t *testing.T) {
	r := &ring{
		members: 3,
		points: []ringPoint{
			// Sorted by hash; hashes 10 and 30 are shared across members.
			{hash: 10, member: 0},
			{hash: 10, member: 1},
			{hash: 10, member: 2},
			{hash: 20, member: 1},
			{hash: 30, member: 0},
			{hash: 30, member: 2},
			{hash: 40, member: 0},
		},
	}
	for _, key := range ringKeys(200) {
		succ := r.successors(key)
		if len(succ) != r.members {
			t.Fatalf("key %s: successors = %v, want all %d members", key, succ, r.members)
		}
		seen := make(map[int]bool)
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("key %s: member %d appears twice in %v", key, m, succ)
			}
			seen[m] = true
		}
	}
}

// The same dedup property on real rings with tiny vnode counts, where
// interleaving is maximal relative to ring size.
func TestRingSuccessorsNoDuplicatesSmallVNodes(t *testing.T) {
	names := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	for _, vnodes := range []int{1, 2, 3} {
		r := newRing(names, vnodes)
		for _, key := range ringKeys(500) {
			succ := r.successors(key)
			seen := make(map[int]bool)
			for _, m := range succ {
				if seen[m] {
					t.Fatalf("vnodes=%d key %s: duplicate member in %v", vnodes, key, succ)
				}
				seen[m] = true
			}
			if len(succ) != len(names) {
				t.Fatalf("vnodes=%d key %s: successors = %v, want %d members", vnodes, key, succ, len(names))
			}
		}
	}
}
