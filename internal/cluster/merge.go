package cluster

import "sync"

// Merge is the coordinator's reorder buffer: per-shard sweep streams
// deliver cell records tagged with their global matrix index in
// whatever order the shards finish them, and Merge emits them in index
// order — the same order a single node's Ordered sweep produces, which
// is what keeps merged output byte-identical across any node count.
//
// It is the cross-node analogue of the reorder buffer inside
// sweep.Engine's Ordered mode, but keyed by sparse global indices
// (each shard holds a subset of 0..total-1) and safe for concurrent
// Add from one goroutine per shard.
type Merge[V any] struct {
	emit func(index int, v V)

	mu   sync.Mutex
	buf  map[int]V
	next int
	n    int
}

// NewMerge returns a Merge over indices 0..total-1. emit is called in
// strict index order, serialized under the Merge's lock (so it may
// write to a shared stream without further locking, but must not call
// back into the Merge).
func NewMerge[V any](total int, emit func(index int, v V)) *Merge[V] {
	return &Merge[V]{emit: emit, buf: make(map[int]V), n: total}
}

// Add delivers the record for one global index, emitting it — and any
// buffered successors it unblocks — in order. Each index must be added
// exactly once.
func (m *Merge[V]) Add(index int, v V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf[index] = v
	for {
		r, ok := m.buf[m.next]
		if !ok {
			return
		}
		delete(m.buf, m.next)
		m.emit(m.next, r)
		m.next++
	}
}

// Done reports whether every index has been emitted.
func (m *Merge[V]) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next >= m.n
}

// Pending returns how many delivered records are still waiting for a
// predecessor.
func (m *Merge[V]) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.buf)
}
