package cluster

import (
	"fmt"
	"sort"
)

// View is an immutable snapshot of the fleet at one ring epoch: the
// member list (sorted by name, indices matching the ring) and the
// consistent-hash ring built over it. Membership changes install a new
// View; anything that must stay coherent across a change — most
// importantly a cluster sweep's partitioning — captures one View up
// front and uses it throughout, so in-flight work completes against the
// ring epoch it started under while new work sees the new epoch.
//
// Peer objects are shared between consecutive Views (a member that
// survives a change keeps its breaker state, liveness and counters), so
// a View is cheap: a slice of pointers and a ring.
type View struct {
	epoch   uint64
	members []*Peer // sorted by name; indices match the ring
	ring    *ring
	self    *Peer
	rf      int // effective replication factor: min(configured, len(members))
}

// Epoch returns the view's ring epoch. Epoch 0 is the boot membership;
// every join or leave increments it.
func (v *View) Epoch() uint64 { return v.epoch }

// Members returns the fleet sorted by name. The slice is shared and
// must not be mutated.
func (v *View) Members() []*Peer { return v.members }

// MemberURLs returns every member's normalized base URL, sorted by
// member name — the wire form of the membership (what join/leave
// broadcasts carry).
func (v *View) MemberURLs() []string {
	out := make([]string, len(v.members))
	for i, p := range v.members {
		out[i] = p.url
	}
	return out
}

// Size returns the number of members, self included.
func (v *View) Size() int { return len(v.members) }

// RF returns the effective replication factor (clamped to the fleet
// size, never below 1).
func (v *View) RF() int { return v.rf }

// Self returns the local node's Peer.
func (v *View) Self() *Peer { return v.self }

// Owner returns the peer owning key on this view's ring.
func (v *View) Owner(key string) *Peer { return v.members[v.ring.owner(key)] }

// Successors returns every member in key's deterministic ring order
// (owner first, each member once) — the failover and replica-placement
// order.
func (v *View) Successors(key string) []*Peer {
	idx := v.ring.successors(key)
	out := make([]*Peer, len(idx))
	for i, m := range idx {
		out[i] = v.members[m]
	}
	return out
}

// Replicas returns the first RF members in key's successor order: the
// owner set — the nodes a sealed entry for key is written to when
// replication is on, and the nodes Fetch walks looking for it.
func (v *View) Replicas(key string) []*Peer {
	idx := v.ring.successors(key)
	if len(idx) > v.rf {
		idx = idx[:v.rf]
	}
	out := make([]*Peer, len(idx))
	for i, m := range idx {
		out[i] = v.members[m]
	}
	return out
}

// Assign returns the first peer in key's successor order accepted by
// ok. With a nil ok it is Owner. It falls back to self if ok rejects
// every member, so work always has somewhere to run.
func (v *View) Assign(key string, ok func(*Peer) bool) *Peer {
	if ok == nil {
		return v.Owner(key)
	}
	for _, m := range v.ring.successors(key) {
		if ok(v.members[m]) {
			return v.members[m]
		}
	}
	return v.self
}

// buildView assembles a View over members (which must already carry
// exactly one self peer). It sorts members by name and builds the ring.
func buildView(epoch uint64, members []*Peer, vnodes, rf int) (*View, error) {
	sort.Slice(members, func(i, j int) bool { return members[i].name < members[j].name })
	names := make([]string, len(members))
	var self *Peer
	for i, p := range members {
		names[i] = p.name
		if p.self {
			self = p
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: view without a self peer")
	}
	if rf < 1 {
		rf = 1
	}
	if rf > len(members) {
		rf = len(members)
	}
	return &View{
		epoch:   epoch,
		members: members,
		ring:    newRing(names, vnodes),
		self:    self,
		rf:      rf,
	}, nil
}
