// Package program defines the loadable unit shared by the assembler, the
// reference machine and the SDT: a memory image with code, data, an entry
// point and an optional symbol table.
//
// Guest memory layout convention:
//
//	0x00000000          unmapped guard page (loads/stores trap)
//	CodeBase (0x1000)   instruction words
//	DataBase            data section, immediately after code (word aligned)
//	...                 heap (grows up from end of data)
//	MemSize             top of memory; the stack grows down from here
//
// All guest addresses are below 0x40000000; the SDT places its fragment
// cache and lookup tables above that boundary in the simulated host address
// space, mirroring how a real SDT shares the process address space with the
// guest.
package program

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"sdt/internal/isa"
)

// Address-space constants.
const (
	// CodeBase is where the first instruction of every image is loaded.
	CodeBase = 0x1000
	// GuardSize is the size of the unmapped low region; accesses below
	// CodeBase fault, which catches null-pointer dereferences in guest code.
	GuardSize = CodeBase
	// MaxGuestAddr is the exclusive upper bound of guest memory. Addresses
	// at or above it belong to the simulated host (fragment cache, tables).
	MaxGuestAddr = 0x4000_0000
	// DefaultMemSize is the guest memory size when an image does not
	// request one.
	DefaultMemSize = 4 << 20
)

// Image is a loadable guest program.
type Image struct {
	Name    string
	Entry   uint32   // byte address of the first instruction
	MemSize uint32   // total guest memory size in bytes
	Code    []uint32 // instruction words, loaded at CodeBase
	Data    []byte   // data section, loaded at DataBase()
	Symbols map[string]uint32

	decoded atomic.Pointer[[]isa.Inst] // Decoded() memo; nil until first use
}

// Decoded returns the predecoded code section, decoding it on first use and
// memoizing the result on the image. Every consumer of one image (the native
// machine, each of the daemon's repeated SDT runs) shares a single decode
// pass. The returned slice is shared and must be treated as read-only; it is
// safe for concurrent callers. Callers must not mutate Code after the first
// Decoded call.
func (im *Image) Decoded() []isa.Inst {
	if p := im.decoded.Load(); p != nil {
		return *p
	}
	code := make([]isa.Inst, len(im.Code))
	for i, w := range im.Code {
		code[i] = isa.Decode(w)
	}
	// A racing decode produces an identical slice; either winner is fine.
	im.decoded.Store(&code)
	return code
}

// DataBase returns the load address of the data section: the first word
// boundary after the code.
func (im *Image) DataBase() uint32 {
	return CodeBase + uint32(len(im.Code))*isa.WordSize
}

// CodeEnd returns the first byte address past the code section.
func (im *Image) CodeEnd() uint32 { return im.DataBase() }

// Validate checks the structural invariants an executable image must
// satisfy.
func (im *Image) Validate() error {
	if len(im.Code) == 0 {
		return errors.New("program: image has no code")
	}
	size := im.MemSize
	if size == 0 {
		size = DefaultMemSize
	}
	if size > MaxGuestAddr {
		return fmt.Errorf("program: memory size %#x exceeds guest limit %#x", size, uint32(MaxGuestAddr))
	}
	end := im.DataBase() + uint32(len(im.Data))
	if end > size {
		return fmt.Errorf("program: code+data end %#x exceeds memory size %#x", end, size)
	}
	if im.Entry < CodeBase || im.Entry >= im.CodeEnd() || im.Entry%isa.WordSize != 0 {
		return fmt.Errorf("program: entry point %#x outside code section [%#x,%#x)", im.Entry, uint32(CodeBase), im.CodeEnd())
	}
	return nil
}

// MemBytes returns the guest memory size the image executes with.
func (im *Image) MemBytes() uint32 {
	if im.MemSize == 0 {
		return DefaultMemSize
	}
	return im.MemSize
}

// BuildMemory lays out a fresh guest memory for executing the image.
func (im *Image) BuildMemory() ([]byte, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	mem := make([]byte, im.MemBytes())
	im.layout(mem)
	return mem, nil
}

// LayoutMemory writes the image into mem, which must be zeroed and exactly
// MemBytes long — the recycled-buffer path of BuildMemory.
func (im *Image) LayoutMemory(mem []byte) error {
	if err := im.Validate(); err != nil {
		return err
	}
	if uint32(len(mem)) != im.MemBytes() {
		return fmt.Errorf("program: memory buffer is %d bytes, image needs %d", len(mem), im.MemBytes())
	}
	im.layout(mem)
	return nil
}

func (im *Image) layout(mem []byte) {
	for i, w := range im.Code {
		binary.LittleEndian.PutUint32(mem[CodeBase+uint32(i)*isa.WordSize:], w)
	}
	copy(mem[im.DataBase():], im.Data)
}

// SymbolAt returns the name of the symbol defined exactly at addr, if any.
func (im *Image) SymbolAt(addr uint32) (string, bool) {
	for name, a := range im.Symbols {
		if a == addr {
			return name, true
		}
	}
	return "", false
}

// Disassemble writes a human-readable listing of the code section to w.
func (im *Image) Disassemble(w io.Writer) error {
	type sym struct {
		addr uint32
		name string
	}
	var syms []sym
	for name, a := range im.Symbols {
		syms = append(syms, sym{a, name})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})
	bw := bufio.NewWriter(w)
	si := 0
	for i, word := range im.Code {
		addr := CodeBase + uint32(i)*isa.WordSize
		for si < len(syms) && syms[si].addr <= addr {
			if syms[si].addr == addr {
				fmt.Fprintf(bw, "%s:\n", syms[si].name)
			}
			si++
		}
		fmt.Fprintf(bw, "  %08x:  %08x  %s\n", addr, word, isa.Decode(word))
	}
	return bw.Flush()
}

// Binary image serialization. The format is a fixed header followed by the
// code words, data bytes and symbol table, all little-endian.
const magic = "SDTIMG1\x00"

// WriteTo serializes the image. It implements io.WriterTo.
func (im *Image) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	bw.WriteString(magic)
	writeStr(bw, im.Name)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], im.Entry)
	binary.LittleEndian.PutUint32(hdr[4:], im.MemSize)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(im.Code)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(im.Data)))
	bw.Write(hdr[:])
	var wb [4]byte
	for _, word := range im.Code {
		binary.LittleEndian.PutUint32(wb[:], word)
		bw.Write(wb[:])
	}
	bw.Write(im.Data)
	binary.LittleEndian.PutUint32(wb[:], uint32(len(im.Symbols)))
	bw.Write(wb[:])
	names := make([]string, 0, len(im.Symbols))
	for name := range im.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeStr(bw, name)
		binary.LittleEndian.PutUint32(wb[:], im.Symbols[name])
		bw.Write(wb[:])
	}
	err := bw.Flush()
	return cw.n, err
}

// Read deserializes an image written by WriteTo.
func Read(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("program: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, errors.New("program: not an SDT image (bad magic)")
	}
	im := &Image{}
	var err error
	if im.Name, err = readStr(br); err != nil {
		return nil, err
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("program: reading header: %w", err)
	}
	im.Entry = binary.LittleEndian.Uint32(hdr[0:])
	im.MemSize = binary.LittleEndian.Uint32(hdr[4:])
	nCode := binary.LittleEndian.Uint32(hdr[8:])
	nData := binary.LittleEndian.Uint32(hdr[12:])
	const maxSection = 64 << 20
	if nCode > maxSection/isa.WordSize || nData > maxSection {
		return nil, fmt.Errorf("program: unreasonable section sizes (code=%d data=%d)", nCode, nData)
	}
	im.Code = make([]uint32, nCode)
	var wb [4]byte
	for i := range im.Code {
		if _, err := io.ReadFull(br, wb[:]); err != nil {
			return nil, fmt.Errorf("program: reading code: %w", err)
		}
		im.Code[i] = binary.LittleEndian.Uint32(wb[:])
	}
	im.Data = make([]byte, nData)
	if _, err := io.ReadFull(br, im.Data); err != nil {
		return nil, fmt.Errorf("program: reading data: %w", err)
	}
	if _, err := io.ReadFull(br, wb[:]); err != nil {
		return nil, fmt.Errorf("program: reading symbol count: %w", err)
	}
	nSym := binary.LittleEndian.Uint32(wb[:])
	if nSym > 1<<20 {
		return nil, fmt.Errorf("program: unreasonable symbol count %d", nSym)
	}
	if nSym > 0 {
		im.Symbols = make(map[string]uint32, nSym)
	}
	for i := uint32(0); i < nSym; i++ {
		name, err := readStr(br)
		if err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(br, wb[:]); err != nil {
			return nil, fmt.Errorf("program: reading symbol %q: %w", name, err)
		}
		im.Symbols[name] = binary.LittleEndian.Uint32(wb[:])
	}
	return im, nil
}

func writeStr(w *bufio.Writer, s string) {
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(s)))
	w.Write(lb[:])
	w.WriteString(s)
}

func readStr(r *bufio.Reader) (string, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return "", fmt.Errorf("program: reading string length: %w", err)
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n > 1<<16 {
		return "", fmt.Errorf("program: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("program: reading string: %w", err)
	}
	return string(buf), nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
