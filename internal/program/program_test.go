package program

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"sdt/internal/isa"
)

func sampleImage() *Image {
	return &Image{
		Name:    "sample",
		Entry:   CodeBase,
		MemSize: 1 << 20,
		Code: []uint32{
			isa.Encode(isa.Inst{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 42}),
			isa.Encode(isa.Inst{Op: isa.OUT, Rs1: 1}),
			isa.Encode(isa.Inst{Op: isa.HALT}),
		},
		Data:    []byte{1, 2, 3, 4, 5},
		Symbols: map[string]uint32{"main": CodeBase, "table": CodeBase + 12},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleImage().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Image)
	}{
		{"no code", func(im *Image) { im.Code = nil }},
		{"entry below code", func(im *Image) { im.Entry = 0 }},
		{"entry past code", func(im *Image) { im.Entry = im.CodeEnd() }},
		{"entry misaligned", func(im *Image) { im.Entry = CodeBase + 2 }},
		{"memory too small", func(im *Image) { im.MemSize = CodeBase + 4 }},
		{"memory exceeds guest space", func(im *Image) { im.MemSize = MaxGuestAddr + 4096 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			im := sampleImage()
			tt.mutate(im)
			if err := im.Validate(); err == nil {
				t.Errorf("Validate accepted invalid image (%s)", tt.name)
			}
		})
	}
}

func TestBuildMemoryLayout(t *testing.T) {
	im := sampleImage()
	mem, err := im.BuildMemory()
	if err != nil {
		t.Fatal(err)
	}
	if len(mem) != int(im.MemSize) {
		t.Fatalf("memory size = %d, want %d", len(mem), im.MemSize)
	}
	for i, w := range im.Code {
		got := binary.LittleEndian.Uint32(mem[CodeBase+uint32(i)*4:])
		if got != w {
			t.Errorf("code word %d = %#x, want %#x", i, got, w)
		}
	}
	if !bytes.Equal(mem[im.DataBase():im.DataBase()+5], im.Data) {
		t.Error("data section not loaded at DataBase")
	}
	for i := 0; i < CodeBase; i++ {
		if mem[i] != 0 {
			t.Fatalf("guard page byte %d nonzero", i)
		}
	}
}

func TestBuildMemoryDefaultSize(t *testing.T) {
	im := sampleImage()
	im.MemSize = 0
	mem, err := im.BuildMemory()
	if err != nil {
		t.Fatal(err)
	}
	if len(mem) != DefaultMemSize {
		t.Fatalf("default memory size = %d, want %d", len(mem), DefaultMemSize)
	}
}

func TestRoundTripSerialization(t *testing.T) {
	im := sampleImage()
	var buf bytes.Buffer
	n, err := im.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, buffer has %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(im, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, im)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: serialization round-trips arbitrary images.
	rng := rand.New(rand.NewSource(3))
	f := func(name string, entryOff uint16, nCode uint8, data []byte) bool {
		code := make([]uint32, int(nCode)+1)
		for i := range code {
			code[i] = rng.Uint32()
		}
		im := &Image{
			Name:    name,
			Entry:   CodeBase + uint32(entryOff%uint16(len(code)))*4,
			MemSize: 1 << 20,
			Code:    code,
			Data:    data,
		}
		if len(data) == 0 {
			im.Data = []byte{}
		}
		var buf bytes.Buffer
		if _, err := im.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		return err == nil && reflect.DeepEqual(im, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC and then some longer content here"),
		append([]byte(magic), 0xff, 0xff, 0xff, 0xff), // absurd name length
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: Read accepted garbage", i)
		}
	}
}

func TestReadTruncated(t *testing.T) {
	im := sampleImage()
	var buf bytes.Buffer
	if _, err := im.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := Read(bytes.NewReader(full[:len(full)-cut])); err == nil {
			t.Fatalf("Read accepted image truncated by %d bytes", cut)
		}
	}
}

func TestSymbolAt(t *testing.T) {
	im := sampleImage()
	if name, ok := im.SymbolAt(CodeBase); !ok || name != "main" {
		t.Errorf("SymbolAt(CodeBase) = %q,%v", name, ok)
	}
	if _, ok := im.SymbolAt(0xdead); ok {
		t.Error("SymbolAt found phantom symbol")
	}
}

func TestDisassemble(t *testing.T) {
	im := sampleImage()
	var buf bytes.Buffer
	if err := im.Disassemble(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"main:", "addi r1, zero, 42", "out r1", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDataBase(t *testing.T) {
	im := sampleImage()
	want := uint32(CodeBase + len(im.Code)*4)
	if im.DataBase() != want {
		t.Errorf("DataBase = %#x, want %#x", im.DataBase(), want)
	}
}
