package workload

// SPECfp-2000-shaped workloads. SimRISC-32 has no floating-point unit, so
// these model their namesakes' *control-flow* character — long array
// kernels with almost no indirect branches — using fixed-point arithmetic.
// They anchor the extreme low end of the IB-density spectrum (the paper's
// point that SDT overhead concentrates where IBs are): under any sane
// mechanism their slowdown is essentially the translation tax.
//
// They are not part of the default experiment suite (the paper's tables
// use the integer programs); select them explicitly via `sdtbench -w` or
// workload.FPNames.

// FPNames returns the SPECfp-shaped workload names.
func FPNames() []string { return []string{"art", "equake", "ammp"} }

var _ = register(&Spec{
	Name:         "art",
	Model:        "179.art (fp)",
	IBClass:      "fp-low",
	DefaultScale: 45,
	Gen:          genArt,
})

// genArt models the neural-net simulator: dense matrix-vector products in
// fixed point over an F1 layer, with one leaf call per training step.
func genArt(scale int) string {
	g := &gen{}
	g.f("; art-shaped workload: fixed-point neural net, scale=%d", scale)
	g.raw(".name \"art\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x5ee71e57")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, weights")
	// 64x64 weight matrix, Q16 fixed point
	g.raw("\tli r16, 0")
	g.raw("winit:")
	g.lcg()
	g.raw("\tsrli r3, r25, 12")
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw r3, (r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 4096")
	g.raw("\tblt r16, r1, winit")

	g.f("\tli r20, %d", scale)
	g.raw("step:")
	g.raw("\tli r16, 0") // output neuron
	g.raw("neuron:")
	g.raw("\tli r17, 0") // input index
	g.raw("\tli r18, 0") // accumulator
	g.raw("dot:")
	// acc += (w[i][j] * act[j]) >> 8, both Q-ish fixed point
	g.raw("\tslli r1, r16, 8") // row*64*4
	g.raw("\tslli r3, r17, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r9, (r8)")
	g.raw("\tla r1, acts")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tmul r9, r9, r3")
	g.raw("\tsrli r9, r9, 8")
	g.raw("\tadd r18, r18, r9")
	g.raw("\taddi r17, r17, 1")
	g.raw("\tli r1, 64")
	g.raw("\tblt r17, r1, dot")
	// winner-take-some: store the clipped activation back
	g.raw("\tmov a0, r18")
	g.raw("\tcall clip")
	g.raw("\tla r1, acts")
	g.raw("\tslli r3, r16, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tsw rv, (r1)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 64")
	g.raw("\tblt r16, r1, neuron")
	g.raw("\tla r1, acts")
	g.raw("\tlw r9, (r1)")
	g.mix("r9")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, step")
	g.epilogue()

	// clip(a0): saturate to 16 bits. Leaf; the only call in the kernel.
	g.raw("clip:")
	g.raw("\tli r1, 0xffff")
	g.raw("\tbltu a0, r1, noclip")
	g.raw("\tmov a0, r1")
	g.raw("noclip:")
	g.raw("\tmov rv, a0")
	g.raw("\tret")

	g.raw(".data")
	g.raw("weights: .space 16384")
	g.raw("acts:")
	g.raw("\t.space 256")
	return g.String()
}

var _ = register(&Spec{
	Name:         "equake",
	Model:        "183.equake (fp)",
	IBClass:      "fp-low",
	DefaultScale: 43,
	Gen:          genEquake,
})

// genEquake models the earthquake simulator: a sparse-matrix-vector loop
// over an irregular index structure — memory-bound, call-free inner loop.
func genEquake(scale int) string {
	g := &gen{}
	g.f("; equake-shaped workload: sparse MVM in fixed point, scale=%d", scale)
	g.raw(".name \"equake\"")
	g.raw(".mem 0x200000")
	g.raw("main:")
	g.raw("\tli r25, 0xec0a1157")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, vals")
	// 4096 sparse entries: value + column index
	g.raw("\tli r16, 0")
	g.raw("einit:")
	g.lcg()
	g.raw("\tsrli r3, r25, 10")
	g.raw("\tslli r1, r16, 3")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw r3, (r8)")
	g.raw("\tsrli r3, r25, 19")
	g.raw("\tandi r3, r3, 1023")
	g.raw("\tsw r3, 4(r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 4096")
	g.raw("\tblt r16, r1, einit")

	g.f("\tli r20, %d", scale)
	g.raw("quake:")
	g.raw("\tli r16, 0")
	g.raw("\tli r18, 0")
	g.raw("smvp:")
	g.raw("\tslli r1, r16, 3")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r9, (r8)")  // value
	g.raw("\tlw r3, 4(r8)") // column
	g.raw("\tla r1, vec")
	g.raw("\tslli r3, r3, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tmul r9, r9, r3")
	g.raw("\tsrli r9, r9, 10")
	g.raw("\tadd r18, r18, r9")
	g.raw("\tsw r18, (r1)") // scatter back
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 4096")
	g.raw("\tblt r16, r1, smvp")
	g.mix("r18")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, quake")
	g.epilogue()

	g.raw(".data")
	g.raw("vals: .space 32768")
	g.raw("vec: .space 4096")
	return g.String()
}

var _ = register(&Spec{
	Name:         "ammp",
	Model:        "188.ammp (fp)",
	IBClass:      "fp-low",
	DefaultScale: 8,
	Gen:          genAmmp,
})

// genAmmp models molecular dynamics: an O(n^2)-ish pairwise force loop
// with a distance cutoff branch, plus one bookkeeping call per particle.
func genAmmp(scale int) string {
	g := &gen{}
	g.f("; ammp-shaped workload: pairwise forces with cutoff, scale=%d", scale)
	g.raw(".name \"ammp\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x0a331bb5")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, pos")
	g.raw("\tli r16, 0")
	g.raw("ainit:")
	g.lcg()
	g.raw("\tsrli r3, r25, 14")
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw r3, (r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 128")
	g.raw("\tblt r16, r1, ainit")

	g.f("\tli r20, %d", scale)
	g.raw("mdstep:")
	g.raw("\tli r16, 0")
	g.raw("outer:")
	g.raw("\tli r17, 0")
	g.raw("\tli r19, 0") // force accumulator
	g.raw("inner:")
	g.raw("\tbeq r16, r17, skippair")
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r9, (r8)")
	g.raw("\tslli r1, r17, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r3, (r8)")
	g.raw("\tsub r9, r9, r3")
	g.raw("\tbge r9, zero, dpos2")
	g.raw("\tsub r9, zero, r9")
	g.raw("dpos2:")
	// cutoff: skip distant pairs (branchy, like the real neighbour list)
	g.raw("\tli r1, 0x20000")
	g.raw("\tbgeu r9, r1, skippair")
	g.raw("\tsrli r3, r9, 5")
	g.raw("\taddi r3, r3, 1")
	g.raw("\tli r1, 0x10000")
	g.raw("\tdivu r3, r1, r3") // 1/r-ish force
	g.raw("\tadd r19, r19, r3")
	g.raw("skippair:")
	g.raw("\taddi r17, r17, 1")
	g.raw("\tli r1, 128")
	g.raw("\tblt r17, r1, inner")
	g.raw("\tmov a0, r19")
	g.raw("\tcall integrate")
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw rv, (r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 128")
	g.raw("\tblt r16, r1, outer")
	g.raw("\tlw r9, (r26)")
	g.mix("r9")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, mdstep")
	g.epilogue()

	// integrate(a0): damped position update. Leaf.
	g.raw("integrate:")
	g.raw("\tsrli rv, a0, 2")
	g.raw("\txori rv, rv, 0x1a5")
	g.raw("\tli r1, 0x7fffff")
	g.raw("\tand rv, rv, r1")
	g.raw("\tret")

	g.raw(".data")
	g.raw("pos: .space 512")
	return g.String()
}
