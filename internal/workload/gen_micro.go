package workload

import "fmt"

// Microbenchmarks isolate one indirect-branch behaviour each, for the
// parameter sweeps (E3/E5/E6) where the interesting variable is target-set
// size or call discipline rather than a realistic instruction mix.

func init() {
	register(&Spec{
		Name:         "micro.ret",
		Model:        "synthetic",
		IBClass:      "ret-heavy",
		DefaultScale: 120000,
		Gen:          genMicroRet,
	})
	for _, k := range []int{2, 16, 64, 256} {
		k := k
		register(&Spec{
			Name:         fmt.Sprintf("micro.ijump%d", k),
			Model:        "synthetic",
			IBClass:      "ijump-heavy",
			DefaultScale: 80000,
			Gen:          func(scale int) string { return genMicroIJump(k, scale) },
		})
	}
	register(&Spec{
		Name:         "micro.icall8",
		Model:        "synthetic",
		IBClass:      "icall-heavy",
		DefaultScale: 90000,
		Gen:          genMicroICall,
	})
	register(&Spec{
		Name:         "micro.bigcode",
		Model:        "synthetic",
		IBClass:      "mixed",
		DefaultScale: 60,
		Gen:          genMicroBigCode,
	})
}

// genMicroBigCode touches a large static code footprint every iteration:
// 600 distinct functions called round-robin through a pointer table. Its
// translated image (~40 KiB of emitted code) does not fit small fragment
// caches, making it the probe workload for the cache-pressure experiment
// (E13) and for I-cache effects.
func genMicroBigCode(scale int) string {
	const funcs = 600
	g := &gen{}
	g.f("; micro.bigcode: %d functions, round-robin, scale=%d", funcs, scale)
	g.raw(".name \"micro.bigcode\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r27, 0")
	g.f("\tli r20, %d", scale)
	g.raw("round:")
	g.raw("\tli r16, 0")
	g.raw("sweep:")
	g.raw("\tla r1, ftab")
	g.raw("\tslli r3, r16, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tmov a0, r16")
	g.raw("\tcallr r3")
	g.mix("rv")
	g.raw("\taddi r16, r16, 1")
	g.f("\tli r1, %d", funcs)
	g.raw("\tblt r16, r1, sweep")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, round")
	g.epilogue()
	for i := 0; i < funcs; i++ {
		g.f("bf%d:", i)
		// distinct 6-8 instruction bodies so no two functions share code
		g.f("\tslli rv, a0, %d", i%13+1)
		g.f("\txori rv, rv, %d", i*31+7)
		g.raw("\tadd rv, rv, a0")
		if i%2 == 0 {
			g.f("\tsrli r1, rv, %d", i%11+2)
			g.raw("\txor rv, rv, r1")
		}
		if i%3 == 0 {
			g.f("\taddi rv, rv, %d", i)
		}
		g.raw("\tret")
	}
	g.raw(".data")
	g.raw("ftab:")
	for i := 0; i < funcs; i++ {
		g.f("\t.word bf%d", i)
	}
	return g.String()
}

// genMicroRet: a tight loop of leaf calls — the purest return stream.
func genMicroRet(scale int) string {
	g := &gen{}
	g.f("; micro.ret: leaf call/return loop, scale=%d", scale)
	g.raw(".name \"micro.ret\"")
	g.raw(".mem 0x40000")
	g.raw("main:")
	g.raw("\tli r27, 0")
	g.f("\tli r20, %d", scale)
	g.raw("loop:")
	g.raw("\tmov a0, r20")
	g.raw("\tcall leaf")
	g.mix("rv")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, loop")
	g.epilogue()
	g.raw("leaf:")
	g.raw("\tslli rv, a0, 1")
	g.raw("\txor rv, rv, a0")
	g.raw("\tret")
	return g.String()
}

// genMicroIJump: one indirect-jump site cycling uniformly through k
// targets. Sweeping k against table sizes maps out the capacity behaviour
// of the IBTC and the sieve.
func genMicroIJump(k, scale int) string {
	g := &gen{}
	g.f("; micro.ijump%d: one site, %d targets, scale=%d", k, k, scale)
	g.f(".name \"micro.ijump%d\"", k)
	g.raw(".mem 0x40000")
	g.raw("main:")
	g.raw("\tli r27, 0")
	g.raw("\tli r25, 0x12345")
	g.f("\tli r20, %d", scale)
	g.raw("loop:")
	g.lcg()
	g.raw("\tsrli r3, r25, 10")
	g.f("\tandi r3, r3, %d", k-1)
	g.raw("\tla r1, table")
	g.raw("\tslli r3, r3, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tjr r3")
	for i := 0; i < k; i++ {
		g.f("t%d:", i)
		g.f("\taddi r27, r27, %d", i+1)
		g.raw("\tjmp next")
	}
	g.raw("next:")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, loop")
	g.epilogue()
	g.raw(".data")
	g.raw("table:")
	for i := 0; i < k; i++ {
		g.f("\t.word t%d", i)
	}
	return g.String()
}

// genMicroICall: function-pointer calls cycling through 8 callees.
func genMicroICall(scale int) string {
	const k = 8
	g := &gen{}
	g.f("; micro.icall8: function-pointer calls over %d callees, scale=%d", k, scale)
	g.raw(".name \"micro.icall8\"")
	g.raw(".mem 0x40000")
	g.raw("main:")
	g.raw("\tli r27, 0")
	g.raw("\tli r25, 0x777")
	g.f("\tli r20, %d", scale)
	g.raw("loop:")
	g.lcg()
	g.raw("\tsrli r3, r25, 12")
	g.f("\tandi r3, r3, %d", k-1)
	g.raw("\tla r1, fns")
	g.raw("\tslli r3, r3, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tmov a0, r20")
	g.raw("\tcallr r3")
	g.mix("rv")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, loop")
	g.epilogue()
	for i := 0; i < k; i++ {
		g.f("f%d:", i)
		g.f("\tslli rv, a0, %d", i%5+1)
		g.f("\txori rv, rv, %d", i*29+1)
		g.raw("\tret")
	}
	g.raw(".data")
	g.raw("fns:")
	for i := 0; i < k; i++ {
		g.f("\t.word f%d", i)
	}
	return g.String()
}
