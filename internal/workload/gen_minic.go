package workload

import (
	"fmt"

	"sdt/internal/minic"
)

// micro.mcvm is authored in MiniC rather than assembly: a little stack VM
// whose opcode handlers are reached through a function-pointer table. The
// generated code therefore carries compiler-shaped calling sequences
// (stack frames, spills) around its indirect calls — a different flavour
// of icall-heavy code than the hand-written eon workload, and a
// whole-pipeline exercise: MiniC -> assembler -> image -> SDT.
var _ = register(&Spec{
	Name:         "micro.mcvm",
	Model:        "synthetic (MiniC)",
	IBClass:      "icall-heavy",
	DefaultScale: 130,
	Gen:          genMCVM,
})

// MCVMSource returns the MiniC source of the micro.mcvm workload before
// compilation. Fuzz targets (minic.FuzzCompile, oracle.FuzzDifferential)
// seed their corpora with it so the fuzzers start from a real
// compiler-shaped program rather than toy snippets.
func MCVMSource(scale int) string {
	return fmt.Sprintf(`
// a stack VM written in MiniC; handlers dispatched via function pointers
var ops[8];
var stack[64];
var sp = 0;
var seed = 0x5ca1ab1e;

func push(v) { stack[sp] = v; sp = sp + 1; return v; }
func pop() { sp = sp - 1; return stack[sp]; }

func op_add() { return push(pop() + pop()); }
func op_sub() { var b = pop(); var a = pop(); return push(a - b); }
func op_mul() { return push(pop() * pop()); }
func op_xor() { return push(pop() ^ pop()); }
func op_shl() { var b = pop(); var a = pop(); return push(a << (b & 7)); }
func op_dup() { var v = pop(); push(v); return push(v); }
func op_lit() { seed = seed * 1103515245 + 12345; return push((seed >> 16) & 255); }
func op_mix() { var v = pop(); out v & 0xffff; return push(v); }

func rand8() {
	seed = seed * 1103515245 + 12345;
	return (seed >> 18) & 7;
}

func main() {
	ops[0] = &op_add; ops[1] = &op_sub; ops[2] = &op_mul; ops[3] = &op_xor;
	ops[4] = &op_shl; ops[5] = &op_dup; ops[6] = &op_lit; ops[7] = &op_mix;
	push(1); push(2); push(3); push(4);
	var steps = %d;
	var i = 0;
	while (i < steps) {
		var k = rand8();
		// keep the stack in bounds: force pushes when low, pops when high
		if (sp < 4) { k = 6; }
		if (sp > 56) { k = 0; }
		var f = ops[k];
		f();
		i = i + 1;
	}
	out sp;
}
`, scale*100)
}

func genMCVM(scale int) string {
	asmText, err := minic.Compile(MCVMSource(scale))
	if err != nil {
		// The source is a compile-time constant of this package; failure
		// is a bug, not an input error.
		panic("workload: micro.mcvm does not compile: " + err.Error())
	}
	return asmText
}
