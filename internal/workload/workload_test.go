package workload_test

import (
	"testing"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/workload"
)

const testScaleDivisor = 10 // shrink default scales to keep tests quick

func testScale(s *workload.Spec) int {
	return s.ScaledDown(testScaleDivisor)
}

func TestRegistry(t *testing.T) {
	names := workload.Names()
	if len(names) < 17 { // 12 SPEC + >=5 micro
		t.Fatalf("only %d workloads registered: %v", len(names), names)
	}
	for _, want := range workload.SPECNames() {
		if _, err := workload.Get(want); err != nil {
			t.Errorf("SPEC workload %s missing: %v", want, err)
		}
	}
	if _, err := workload.Get("nonexistent"); err == nil {
		t.Error("Get accepted an unknown name")
	}
}

// A divisor larger than DefaultScale must clamp, never floor to 0: scale
// 0 means "full DefaultScale" to Generate/Image, so an unclamped floor
// would turn "run tiny" into "run everything".
func TestScaledDownNeverFloorsToZero(t *testing.T) {
	for _, name := range workload.Names() {
		s, _ := workload.Get(name)
		for _, div := range []int{1, 2, s.DefaultScale, s.DefaultScale * 10, 1 << 30} {
			got := s.ScaledDown(div)
			if got < 1 {
				t.Errorf("%s.ScaledDown(%d) = %d, want >= 1", name, div, got)
			}
			if div > 1 && got > s.DefaultScale {
				t.Errorf("%s.ScaledDown(%d) = %d exceeds DefaultScale %d", name, div, got, s.DefaultScale)
			}
		}
		if got := s.ScaledDown(0); got != s.DefaultScale {
			t.Errorf("%s.ScaledDown(0) = %d, want DefaultScale %d", name, got, s.DefaultScale)
		}
		// The clamped scale must still take effect — the regression this
		// test pins is scale flooring to 0, which Generate interprets as
		// the FULL DefaultScale. (Workloads whose DefaultScale is already
		// at the clamp floor have nothing to shrink.)
		huge := s.ScaledDown(1 << 30)
		if huge < s.DefaultScale && s.Generate(huge) == s.Generate(0) {
			t.Errorf("%s at clamped scale %d generates its full default program", name, huge)
		}
	}
}

func TestAllWorkloadsAssemble(t *testing.T) {
	for _, name := range workload.Names() {
		s, _ := workload.Get(name)
		if _, err := s.Image(testScale(s)); err != nil {
			t.Errorf("%s does not assemble: %v", name, err)
		}
	}
}

func TestAllWorkloadsRunNative(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, _ := workload.Get(name)
			img, err := s.Image(testScale(s))
			if err != nil {
				t.Fatal(err)
			}
			m, err := machine.RunImage(img, hostarch.X86(), 200_000_000)
			if err != nil {
				t.Fatalf("native run: %v", err)
			}
			r := m.Result()
			if r.OutCount == 0 {
				t.Error("workload produced no output (no self-check)")
			}
			if r.Instret < 1000 {
				t.Errorf("workload retired only %d instructions", r.Instret)
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	s, _ := workload.Get("gcc")
	img1, err := s.Image(testScale(s))
	if err != nil {
		t.Fatal(err)
	}
	img2, _ := s.Image(testScale(s))
	a, err := machine.RunImage(img1, hostarch.X86(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.RunImage(img2, hostarch.SPARC(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Architectural results must not depend on the cost model.
	if a.Result().Checksum != b.Result().Checksum || a.Result().Instret != b.Result().Instret {
		t.Error("workload results vary across cost models")
	}
}

func TestScaleScalesWork(t *testing.T) {
	s, _ := workload.Get("vortex")
	small, err := s.Image(50)
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.Image(5000)
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := machine.RunImage(small, hostarch.X86(), 200_000_000)
	ml, _ := machine.RunImage(large, hostarch.X86(), 200_000_000)
	if ml.Result().Instret < ms.Result().Instret*5 {
		t.Errorf("scale barely changes work: %d vs %d", ms.Result().Instret, ml.Result().Instret)
	}
}

func TestSDTEquivalenceOnWorkloads(t *testing.T) {
	// The deep end-to-end invariant: every workload computes the same
	// output stream natively and under the SDT, under contrasting
	// mechanisms, on both cost models.
	specs := []string{"translator", "ibtc:4096", "sieve:1024", "fastret+inline:2+ibtc:4096"}
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, _ := workload.Get(name)
			scale := testScale(s) / 4
			if scale < 2 {
				scale = 2
			}
			img, err := s.Image(scale)
			if err != nil {
				t.Fatal(err)
			}
			native, err := machine.RunImage(img, hostarch.X86(), 200_000_000)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range specs {
				cfg, err := ib.Parse(spec)
				if err != nil {
					t.Fatal(err)
				}
				for _, model := range []string{"x86", "sparc"} {
					m, _ := hostarch.ByName(model)
					// Each VM needs a fresh handler: re-parse.
					cfg, _ = ib.Parse(spec)
					vm, err := core.New(img, core.Options{Model: m, Handler: cfg.Handler, FastReturns: cfg.FastReturns})
					if err != nil {
						t.Fatal(err)
					}
					if err := vm.Run(200_000_000); err != nil {
						t.Fatalf("%s on %s: %v", spec, model, err)
					}
					if vm.Result().Checksum != native.Result().Checksum {
						t.Errorf("%s on %s: checksum mismatch", spec, model)
					}
					if vm.Result().Instret != native.Result().Instret {
						t.Errorf("%s on %s: instret mismatch", spec, model)
					}
				}
			}
		})
	}
}

func TestIBClassesMatchBehaviour(t *testing.T) {
	// The generators' advertised IB classes must be visible in their
	// dynamic counts — this pins the workload calibration.
	type profile struct {
		per1k          float64
		ret, jmp, call uint64
	}
	profiles := map[string]profile{}
	for _, name := range workload.SPECNames() {
		s, _ := workload.Get(name)
		img, err := s.Image(testScale(s))
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.RunImage(img, hostarch.X86(), 200_000_000)
		if err != nil {
			t.Fatal(err)
		}
		profiles[name] = profile{
			per1k: m.Counts.IBPer1K(),
			ret:   m.Counts.IB[isa.IBReturn],
			jmp:   m.Counts.IB[isa.IBJump],
			call:  m.Counts.IB[isa.IBCall],
		}
	}
	// Sparse group stays sparse; heavy groups are an order of magnitude up.
	for _, low := range []string{"gzip", "mcf", "twolf", "bzip2"} {
		if p := profiles[low]; p.per1k > 15 {
			t.Errorf("%s: %.1f IB/1k, want sparse (<15)", low, p.per1k)
		}
	}
	for _, high := range []string{"gcc", "perlbmk", "eon", "vortex", "gap"} {
		if p := profiles[high]; p.per1k < 20 {
			t.Errorf("%s: %.1f IB/1k, want heavy (>20)", high, p.per1k)
		}
	}
	// Kind mixes.
	if p := profiles["perlbmk"]; p.jmp < p.ret {
		t.Errorf("perlbmk should be ijump-dominant: jmp=%d ret=%d", p.jmp, p.ret)
	}
	if p := profiles["gcc"]; p.jmp < p.ret {
		t.Errorf("gcc should be ijump-dominant: jmp=%d ret=%d", p.jmp, p.ret)
	}
	if p := profiles["vortex"]; p.ret < 4*p.jmp {
		t.Errorf("vortex should be returns-dominant: ret=%d jmp=%d", p.ret, p.jmp)
	}
	if p := profiles["eon"]; p.call == 0 || p.call < p.jmp {
		t.Errorf("eon should be icall-heavy: call=%d jmp=%d", p.call, p.jmp)
	}
	if p := profiles["parser"]; p.ret < 10*p.call {
		t.Errorf("parser should be returns-dominant: ret=%d call=%d", p.ret, p.call)
	}
}

func TestGenerateStableAcrossCalls(t *testing.T) {
	s, _ := workload.Get("perlbmk")
	if s.Generate(5) != s.Generate(5) {
		t.Error("Generate is not deterministic")
	}
}
