package workload

import "fmt"

// The ijump-heavy group: gcc, perlbmk, gap. Large multiway switches and
// interpreter dispatch loops are where indirect-jump handling dominates SDT
// overhead — the workloads where the paper's IBTC-size and sieve-size
// sweeps move the most.

var _ = register(&Spec{
	Name:         "gcc",
	Model:        "176.gcc",
	IBClass:      "ijump-heavy",
	DefaultScale: 55000,
	Gen:          genGcc,
})

// genGcc models an optimizer pass over an IR: a big switch over node kinds
// (20 cases, jump-table dispatched) with distinct per-kind bodies, a
// per-kind helper called through a function-pointer table every few nodes,
// and a code footprint large enough to exercise translation.
func genGcc(scale int) string {
	const kinds = 20
	g := &gen{}
	g.f("; gcc-shaped workload: IR walk over %d node kinds, scale=%d", kinds, scale)
	g.raw(".name \"gcc\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x9e3779b9")
	g.raw("\tli r27, 0")
	g.f("\tli r20, %d", scale)
	g.raw("node:")
	// kind = top bits of the LCG, scaled into [0,kinds)
	g.lcg()
	g.raw("\tsrli r16, r25, 8")
	g.f("\tli r1, %d", kinds)
	g.raw("\trem r16, r16, r1")
	// operand value for the case body
	g.raw("\tsrli r17, r25, 3")
	// walk the node's operand list, the straight-line work between
	// dispatches in a real IR pass
	g.raw("\tli r18, 4")
	g.raw("opscan:")
	g.raw("\tslli r1, r17, 1")
	g.raw("\txor r17, r17, r1")
	g.raw("\tsrli r1, r17, 7")
	g.raw("\tadd r17, r17, r1")
	g.raw("\tsubi r18, r18, 1")
	g.raw("\tbnez r18, opscan")
	// dispatch through the jump table
	g.raw("\tla r1, kindtab")
	g.raw("\tslli r3, r16, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tjr r3")
	// distinct case bodies: different lengths and operations so each kind
	// is its own fragment, like real compiler case arms
	for k := 0; k < kinds; k++ {
		g.f("kind%d:", k)
		switch k % 5 {
		case 0:
			g.f("\tslli r8, r17, %d", 1+k%7)
			g.raw("\txor r8, r8, r17")
			g.f("\taddi r8, r8, %d", 100+k)
		case 1:
			g.f("\tsrli r8, r17, %d", 1+k%9)
			g.raw("\tadd r8, r8, r17")
			g.raw("\tand r8, r8, r17")
			g.f("\tori r8, r8, %d", k)
		case 2:
			g.f("\tli r8, %d", 7919+k)
			g.raw("\tmul r8, r8, r17")
			g.raw("\tsrli r8, r8, 4")
		case 3:
			g.raw("\tsub r8, zero, r17")
			g.f("\txori r8, r8, %d", k*3+1)
			g.raw("\tslli r3, r8, 2")
			g.raw("\tadd r8, r8, r3")
		case 4:
			g.f("\tandi r8, r17, %d", 1023)
			g.f("\taddi r8, r8, %d", k*17)
			g.raw("\txor r8, r8, r17")
			g.raw("\tsrli r3, r8, 9")
			g.raw("\tadd r8, r8, r3")
		}
		// every 4th kind calls its helper through the fnptr table (icall)
		if k%4 == 0 {
			g.raw("\tla r1, helptab")
			g.f("\tlw r3, %d(r1)", (k/4)*4)
			g.raw("\tmov a0, r8")
			g.raw("\tcallr r3")
			g.raw("\tmov r8, rv")
		}
		g.mix("r8")
		g.raw("\tjmp done")
	}
	g.raw("done:")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, node")
	g.epilogue()

	// five helper functions reached via the function-pointer table
	for h := 0; h < 5; h++ {
		g.f("helper%d:", h)
		g.f("\tslli rv, a0, %d", h+1)
		g.raw("\txor rv, rv, a0")
		g.f("\taddi rv, rv, %d", 31*h+7)
		g.raw("\tret")
	}

	g.raw(".data")
	g.raw("kindtab:")
	for k := 0; k < kinds; k++ {
		g.f("\t.word kind%d", k)
	}
	g.raw("helptab:")
	for h := 0; h < 5; h++ {
		g.f("\t.word helper%d", h)
	}
	return g.String()
}

var _ = register(&Spec{
	Name:         "perlbmk",
	Model:        "253.perlbmk",
	IBClass:      "ijump-heavy",
	DefaultScale: 310,
	Gen:          genPerlbmk,
})

// perlOps is the bytecode set of the perlbmk-shaped interpreter.
const (
	opPush = iota // push imm8
	opAdd
	opSub
	opMul
	opXor
	opShl
	opShr
	opDup
	opSwap
	opLoad  // load var imm8
	opStore // store var imm8
	opCall  // call subroutine imm8 (bytecode-level, uses guest call)
	opMix   // fold TOS into checksum
	opJnz   // skip imm8 bytecodes back if TOS nonzero (bounded loop)
	opDrop
	opEnd
	numPerlOps
)

// genPerlbmk models the perl interpreter's dispatch loop: a stack machine
// with 16 opcodes whose handler addresses come from a jump table, executing
// a pseudo-random (but well-formed) bytecode program. Indirect jumps
// dominate; opCall adds call/return traffic.
func genPerlbmk(scale int) string {
	prog := perlProgram(997, 600)
	g := &gen{}
	g.f("; perlbmk-shaped workload: %d-op bytecode interpreter, scale=%d", numPerlOps, scale)
	g.raw(".name \"perlbmk\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r27, 0")
	g.f("\tli r20, %d", scale)
	g.raw("\tla r22, stack") // value-stack pointer (grows up)
	g.raw("run:")
	g.raw("\tla r21, bytecode") // bytecode pc
	g.raw("dispatch:")
	g.raw("\tlbu r16, (r21)")  // opcode
	g.raw("\tlbu r17, 1(r21)") // immediate
	g.raw("\taddi r21, r21, 2")
	g.raw("\tla r1, optab")
	g.raw("\tslli r3, r16, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tjr r3")

	g.raw("h_push:")
	g.raw("\tsw r17, (r22)")
	g.raw("\taddi r22, r22, 4")
	g.raw("\tjmp dispatch")
	for _, bin := range []struct{ name, op string }{
		{"h_add", "add"}, {"h_sub", "sub"}, {"h_mul", "mul"}, {"h_xor", "xor"},
	} {
		g.f("%s:", bin.name)
		g.raw("\tsubi r22, r22, 4")
		g.raw("\tlw r8, (r22)")
		g.raw("\tlw r9, -4(r22)")
		g.f("\t%s r9, r9, r8", bin.op)
		g.raw("\tsw r9, -4(r22)")
		g.raw("\tjmp dispatch")
	}
	g.raw("h_shl:")
	g.raw("\tlw r8, -4(r22)")
	g.raw("\tandi r9, r17, 7")
	g.raw("\tsll r8, r8, r9")
	g.raw("\tsw r8, -4(r22)")
	g.raw("\tjmp dispatch")
	g.raw("h_shr:")
	g.raw("\tlw r8, -4(r22)")
	g.raw("\tandi r9, r17, 7")
	g.raw("\tsrl r8, r8, r9")
	g.raw("\tsw r8, -4(r22)")
	g.raw("\tjmp dispatch")
	g.raw("h_dup:")
	g.raw("\tlw r8, -4(r22)")
	g.raw("\tsw r8, (r22)")
	g.raw("\taddi r22, r22, 4")
	g.raw("\tjmp dispatch")
	g.raw("h_swap:")
	g.raw("\tlw r8, -4(r22)")
	g.raw("\tlw r9, -8(r22)")
	g.raw("\tsw r9, -4(r22)")
	g.raw("\tsw r8, -8(r22)")
	g.raw("\tjmp dispatch")
	g.raw("h_load:")
	g.raw("\tla r1, vars")
	g.raw("\tandi r3, r17, 63")
	g.raw("\tslli r3, r3, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r8, (r1)")
	g.raw("\tsw r8, (r22)")
	g.raw("\taddi r22, r22, 4")
	g.raw("\tjmp dispatch")
	g.raw("h_store:")
	g.raw("\tsubi r22, r22, 4")
	g.raw("\tlw r8, (r22)")
	g.raw("\tla r1, vars")
	g.raw("\tandi r3, r17, 63")
	g.raw("\tslli r3, r3, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tsw r8, (r1)")
	g.raw("\tjmp dispatch")
	// opCall: invoke one of 4 interpreter service routines via guest call
	g.raw("h_call:")
	g.raw("\tlw a0, -4(r22)")
	g.raw("\tandi r3, r17, 3")
	g.raw("\tla r1, svctab")
	g.raw("\tslli r3, r3, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tcallr r3")
	g.raw("\tsw rv, -4(r22)")
	g.raw("\tjmp dispatch")
	g.raw("h_mix:")
	g.raw("\tlw r8, -4(r22)")
	g.mix("r8")
	g.raw("\tjmp dispatch")
	// opJnz: bounded back-jump: decrement TOS; if nonzero, jump back imm
	// bytecodes; else drop it.
	g.raw("h_jnz:")
	g.raw("\tlw r8, -4(r22)")
	g.raw("\tsubi r8, r8, 1")
	g.raw("\tsw r8, -4(r22)")
	g.raw("\tbeqz r8, jnzdone")
	g.raw("\tslli r3, r17, 1")
	g.raw("\tsub r21, r21, r3")
	g.raw("\tjmp dispatch")
	g.raw("jnzdone:")
	g.raw("\tsubi r22, r22, 4")
	g.raw("\tjmp dispatch")
	g.raw("h_drop:")
	g.raw("\tsubi r22, r22, 4")
	g.raw("\tjmp dispatch")
	g.raw("h_end:")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, run")
	g.epilogue()

	// interpreter service routines (reached by icall)
	for s := 0; s < 4; s++ {
		g.f("svc%d:", s)
		g.f("\tslli rv, a0, %d", s+1)
		g.raw("\tadd rv, rv, a0")
		g.f("\txori rv, rv, %d", 0x55*(s+1))
		g.raw("\tret")
	}

	g.raw(".data")
	g.raw("optab:")
	for _, h := range []string{"h_push", "h_add", "h_sub", "h_mul", "h_xor", "h_shl",
		"h_shr", "h_dup", "h_swap", "h_load", "h_store", "h_call", "h_mix", "h_jnz",
		"h_drop", "h_end"} {
		g.f("\t.word %s", h)
	}
	g.raw("svctab:")
	for s := 0; s < 4; s++ {
		g.f("\t.word svc%d", s)
	}
	g.raw("bytecode:")
	for i := 0; i < len(prog); i += 16 {
		end := i + 16
		if end > len(prog) {
			end = len(prog)
		}
		line := "\t.byte "
		for j := i; j < end; j++ {
			if j > i {
				line += ", "
			}
			line += fmt.Sprintf("%d", prog[j])
		}
		g.raw(line)
	}
	g.raw("vars: .space 256")
	g.raw("stack: .space 4096")
	return g.String()
}

// perlProgram generates a well-formed bytecode program: every opcode is
// emitted as an (op, imm) pair; stack depth is tracked so underflow cannot
// occur; the program ends with opEnd.
func perlProgram(seed uint32, ops int) []byte {
	var out []byte
	depth := 0
	rnd := func(n uint32) uint32 {
		seed = seed*1103515245 + 12345
		return (seed >> 16) % n
	}
	emit := func(op, imm byte) { out = append(out, op, imm) }
	// seed the loop counter used by a single bounded opJnz loop near the
	// end of the stream
	for len(out)/2 < ops {
		switch op := rnd(14); {
		case depth == 0 || (op < 2 && depth < 60):
			emit(opPush, byte(rnd(200)))
			depth++
		case op < 5 && depth >= 2:
			emit(byte(opAdd+rnd(4)), 0)
			depth--
		case op < 7:
			emit(byte(opShl+rnd(2)), byte(rnd(8)))
		case op == 7 && depth < 60:
			emit(opDup, 0)
			depth++
		case op == 8 && depth >= 2:
			emit(opSwap, 0)
		case op == 9:
			emit(opLoad, byte(rnd(64)))
			depth++
		case op == 10 && depth >= 1:
			emit(opStore, byte(rnd(64)))
			depth--
		case op == 11:
			emit(opCall, byte(rnd(4)))
		case op == 12:
			emit(opMix, 0)
		default:
			if depth >= 1 {
				emit(opDrop, 0)
				depth--
			} else {
				emit(opPush, 1)
				depth++
			}
		}
	}
	// a bounded inner loop: push 8; [mix; jnz back over 2 ops]
	emit(opPush, 8)
	emit(opMix, 0)
	emit(opJnz, 2) // jump back 2 bytecodes (the mix) while TOS nonzero
	for depth > 0 {
		emit(opDrop, 0)
		depth--
	}
	emit(opEnd, 0)
	return out
}

var _ = register(&Spec{
	Name:         "gap",
	Model:        "254.gap",
	IBClass:      "ijump-heavy",
	DefaultScale: 95000,
	Gen:          genGap,
})

// genGap models the GAP computer-algebra interpreter: expression evaluation
// dispatched over a jump table, with every third operation invoking a
// builtin through a function-pointer table — a heavier icall share than
// perlbmk alongside the dispatch ijumps.
func genGap(scale int) string {
	const builtins = 8
	g := &gen{}
	g.f("; gap-shaped workload: algebra evaluator with %d builtins, scale=%d", builtins, scale)
	g.raw(".name \"gap\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x41c64e6d")
	g.raw("\tli r27, 0")
	g.raw("\tli r23, 1") // running value
	g.f("\tli r20, %d", scale)
	g.raw("eval:")
	g.lcg()
	g.raw("\tsrli r16, r25, 9")
	g.raw("\tandi r16, r16, 7") // 8 expression kinds
	g.raw("\tsrli r17, r25, 2")
	g.raw("\tla r1, evaltab")
	g.raw("\tslli r3, r16, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tjr r3")
	for k := 0; k < 8; k++ {
		g.f("ev%d:", k)
		switch k % 4 {
		case 0:
			g.raw("\tadd r23, r23, r17")
			g.f("\tslli r1, r23, %d", k%3+1)
			g.raw("\txor r23, r23, r1")
		case 1:
			g.raw("\tmul r23, r23, r17")
			g.raw("\tsrli r23, r23, 1")
			g.f("\tori r23, r23, %d", k)
		case 2:
			g.raw("\tsub r23, r17, r23")
			g.f("\tandi r1, r23, %d", 0x7ff)
			g.raw("\tadd r23, r23, r1")
		case 3:
			g.raw("\txor r23, r23, r17")
			g.raw("\tsrli r1, r23, 5")
			g.raw("\tadd r23, r23, r1")
		}
		// every even kind invokes a builtin via icall
		if k%2 == 0 {
			g.raw("\tsrli r3, r25, 13")
			g.f("\tandi r3, r3, %d", builtins-1)
			g.raw("\tla r1, bitab")
			g.raw("\tslli r3, r3, 2")
			g.raw("\tadd r1, r1, r3")
			g.raw("\tlw r3, (r1)")
			g.raw("\tmov a0, r23")
			g.raw("\tcallr r3")
			g.raw("\tmov r23, rv")
		}
		g.raw("\tjmp evdone")
	}
	g.raw("evdone:")
	g.mix("r23")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, eval")
	g.epilogue()

	for b := 0; b < builtins; b++ {
		g.f("builtin%d:", b)
		g.f("\tslli rv, a0, %d", b%5+1)
		g.raw("\txor rv, rv, a0")
		if b%2 == 1 {
			g.f("\tli r1, %d", 2654435761)
			g.raw("\tmul rv, rv, r1")
			g.raw("\tsrli rv, rv, 3")
		}
		g.f("\taddi rv, rv, %d", b*101+3)
		g.raw("\tret")
	}

	g.raw(".data")
	g.raw("evaltab:")
	for k := 0; k < 8; k++ {
		g.f("\t.word ev%d", k)
	}
	g.raw("bitab:")
	for b := 0; b < builtins; b++ {
		g.f("\t.word builtin%d", b)
	}
	return g.String()
}
