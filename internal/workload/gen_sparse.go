package workload

// The IB-sparse group: gzip, bzip2, mcf, twolf. These anchor the low end
// of the characterization table — programs whose SDT overhead is modest no
// matter the mechanism, because they rarely execute indirect branches.
//
// Register conventions shared by all generators:
//
//	r1,r3,r8,r9   scratch, clobbered everywhere (r1 also by lcg/mix)
//	r2 (rv)       return values
//	r4-r7 (a0-a3) arguments
//	r10-r15       scratch preserved by leaf functions
//	r16-r24       main-loop state
//	r25           LCG seed
//	r26           global base pointer for the workload's main array
//	r27           running checksum, emitted by epilogue
var _ = register(&Spec{
	Name:         "gzip",
	Model:        "164.gzip",
	IBClass:      "low",
	DefaultScale: 65,
	Gen:          genGzip,
})

// genGzip models LZ-style compression: a sliding hash over a byte buffer
// with chained match attempts. Calls are leaf-only and conditional, so
// returns are the only indirect branches and they are sparse.
func genGzip(scale int) string {
	g := &gen{}
	g.f("; gzip-shaped workload: hash-chain compression scan, scale=%d", scale)
	g.raw(".name \"gzip\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x2545f491")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, buf")
	// Fill the 4 KiB buffer with LCG bytes.
	g.raw("\tli r16, 0")
	g.raw("fill:")
	g.lcg()
	g.raw("\tsrli r3, r25, 13")
	g.raw("\tadd r8, r26, r16")
	g.raw("\tsb r3, (r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 4096")
	g.raw("\tblt r16, r1, fill")

	g.f("\tli r20, %d", scale) // outer rounds
	g.raw("outer:")
	g.raw("\tli r16, 0") // position
	g.raw("scan:")
	// h = (buf[i]*31 + buf[i+1]) & 255
	g.raw("\tadd r8, r26, r16")
	g.raw("\tlbu r9, (r8)")
	g.raw("\tlbu r3, 1(r8)")
	g.raw("\tslli r1, r9, 5")
	g.raw("\tsub r9, r1, r9")
	g.raw("\tadd r9, r9, r3")
	g.raw("\tandi r9, r9, 255")
	// prev = head[h]; head[h] = i
	g.raw("\tla r1, head")
	g.raw("\tslli r3, r9, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r10, (r1)")
	g.raw("\tsw r16, (r1)")
	// every 8th position with a live chain, try a match
	g.raw("\tandi r3, r16, 7")
	g.raw("\tbnez r3, nomatch")
	g.raw("\tbeqz r10, nomatch")
	g.raw("\tmov a0, r10")
	g.raw("\tmov a1, r16")
	g.raw("\tcall matchlen")
	g.mix("rv")
	g.raw("nomatch:")
	g.mix("r9")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 2048")
	g.raw("\tblt r16, r1, scan")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, outer")
	g.epilogue()

	// matchlen(a0=p, a1=q): count equal bytes up to 8. Leaf.
	g.raw("matchlen:")
	g.raw("\tli rv, 0")
	g.raw("\tla r3, buf")
	g.raw("\tadd a0, a0, r3")
	g.raw("\tadd a1, a1, r3")
	g.raw("mloop:")
	g.raw("\tlbu r8, (a0)")
	g.raw("\tlbu r9, (a1)")
	g.raw("\tbne r8, r9, mdone")
	g.raw("\taddi rv, rv, 1")
	g.raw("\taddi a0, a0, 1")
	g.raw("\taddi a1, a1, 1")
	g.raw("\tli r1, 8")
	g.raw("\tblt rv, r1, mloop")
	g.raw("mdone:")
	g.raw("\tret")

	g.raw(".data")
	g.raw("buf: .space 4100")
	g.raw("head: .space 1024")
	return g.String()
}

var _ = register(&Spec{
	Name:         "bzip2",
	Model:        "256.bzip2",
	IBClass:      "low",
	DefaultScale: 43,
	Gen:          genBzip2,
})

// genBzip2 models block-sorting compression: repeated quicksorts of a block
// (bursts of recursion, so returns cluster) followed by a run-length pass.
func genBzip2(scale int) string {
	g := &gen{}
	g.f("; bzip2-shaped workload: quicksort blocks + RLE, scale=%d", scale)
	g.raw(".name \"bzip2\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x1badb002")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, block")
	g.f("\tli r20, %d", scale)
	g.raw("round:")
	// refill block with pseudo-random words
	g.raw("\tli r16, 0")
	g.raw("refill:")
	g.lcg()
	g.raw("\tsrli r3, r25, 7")
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw r3, (r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 512")
	g.raw("\tblt r16, r1, refill")
	// sort it
	g.raw("\tli a0, 0")
	g.raw("\tli a1, 511")
	g.raw("\tcall qsort")
	// RLE pass: count runs of equal high bytes
	g.raw("\tli r16, 1")
	g.raw("\tli r17, 0") // runs
	g.raw("rle:")
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r9, (r8)")
	g.raw("\tlw r3, -4(r8)")
	g.raw("\tsrli r9, r9, 24")
	g.raw("\tsrli r3, r3, 24")
	g.raw("\tbeq r9, r3, rlesame")
	g.raw("\taddi r17, r17, 1")
	g.raw("rlesame:")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 512")
	g.raw("\tblt r16, r1, rle")
	g.mix("r17")
	// verify sortedness contributes to checksum
	g.raw("\tlw r9, (r26)")
	g.mix("r9")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, round")
	g.epilogue()

	// qsort(a0=lo, a1=hi) over words at r26. Recursive; Hoare-ish
	// Lomuto partition. Clobbers r1,r3,r8,r9,r10,r11,r12.
	g.raw("qsort:")
	g.raw("\tbge a0, a1, qdone")
	g.raw("\tpush ra")
	g.raw("\tpush a0")
	g.raw("\tpush a1")
	// pivot = arr[hi]
	g.raw("\tslli r1, a1, 2")
	g.raw("\tadd r10, r26, r1") // &arr[hi]
	g.raw("\tlw r11, (r10)")    // pivot
	g.raw("\tmov r12, a0")      // store index
	g.raw("\tmov r9, a0")       // scan index
	g.raw("qpart:")
	g.raw("\tslli r1, r9, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r3, (r8)")
	g.raw("\tbgeu r3, r11, qskip")
	// swap arr[r12], arr[r9]
	g.raw("\tslli r1, r12, 2")
	g.raw("\tadd r1, r26, r1")
	g.raw("\tlw r2, (r1)")
	g.raw("\tsw r3, (r1)")
	g.raw("\tsw r2, (r8)")
	g.raw("\taddi r12, r12, 1")
	g.raw("qskip:")
	g.raw("\taddi r9, r9, 1")
	g.raw("\tblt r9, a1, qpart")
	// swap arr[r12], arr[hi]
	g.raw("\tslli r1, r12, 2")
	g.raw("\tadd r1, r26, r1")
	g.raw("\tlw r2, (r1)")
	g.raw("\tlw r3, (r10)")
	g.raw("\tsw r3, (r1)")
	g.raw("\tsw r2, (r10)")
	// recurse left: qsort(lo, r12-1)
	g.raw("\tpush r12")
	g.raw("\tsubi a1, r12, 1")
	g.raw("\tcall qsort")
	g.raw("\tpop r12")
	// recurse right: qsort(r12+1, hi)
	g.raw("\tlw a1, (sp)") // saved hi
	g.raw("\taddi a0, r12, 1")
	g.raw("\tcall qsort")
	g.raw("\tpop a1")
	g.raw("\tpop a0")
	g.raw("\tpop ra")
	g.raw("qdone:")
	g.raw("\tret")

	g.raw(".data")
	g.raw("block: .space 2048")
	return g.String()
}

var _ = register(&Spec{
	Name:         "mcf",
	Model:        "181.mcf",
	IBClass:      "low",
	DefaultScale: 33,
	Gen:          genMcf,
})

// genMcf models network-simplex pointer chasing: long walks over a linked
// structure whose nodes are scattered, hammering the D-cache while
// executing almost no indirect branches.
func genMcf(scale int) string {
	g := &gen{}
	g.f("; mcf-shaped workload: pointer chasing over %d-node arcs, scale=%d", 8192, scale)
	g.raw(".name \"mcf\"")
	g.raw(".mem 0x200000")
	g.raw("main:")
	g.raw("\tli r25, 0x6b43a9b5")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, arcs")
	// Build a full-cycle successor function: next[i] = (i*4229+1) % 8192
	// (4229 odd => the map is a permutation of Z/8192 with one long orbit
	// for this stride choice), scattering successive accesses.
	g.raw("\tli r16, 0")
	g.raw("build:")
	g.raw("\tli r1, 4229")
	g.raw("\tmul r3, r16, r1")
	g.raw("\taddi r3, r3, 1")
	g.raw("\tli r1, 8191")
	g.raw("\tand r3, r3, r1")
	g.raw("\tslli r3, r3, 3") // *8: node stride
	g.raw("\tslli r1, r16, 3")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw r3, (r8)") // next offset
	g.lcg()
	g.raw("\tsrli r9, r25, 11")
	g.raw("\tsw r9, 4(r8)") // cost
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 8192")
	g.raw("\tblt r16, r1, build")

	g.f("\tli r20, %d", scale)
	g.raw("iter:")
	g.raw("\tli r17, 0") // walk counter
	g.raw("\tli r18, 0") // current node offset
	g.raw("\tli r19, 0") // accumulated cost
	g.raw("walk:")
	g.raw("\tadd r8, r26, r18")
	g.raw("\tlw r18, (r8)") // next
	g.raw("\tlw r9, 4(r8)") // cost
	g.raw("\tadd r19, r19, r9")
	g.raw("\taddi r17, r17, 1")
	g.raw("\tandi r1, r17, 1023")
	g.raw("\tbnez r1, nocall")
	g.raw("\tmov a0, r19")
	g.raw("\tcall relax")
	g.raw("\tmov r19, rv")
	g.raw("nocall:")
	g.raw("\tli r1, 8192")
	g.raw("\tblt r17, r1, walk")
	g.mix("r19")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, iter")
	g.epilogue()

	// relax(a0): fold the accumulated cost. Leaf.
	g.raw("relax:")
	g.raw("\tsrli rv, a0, 3")
	g.raw("\txor rv, rv, a0")
	g.raw("\tslli r1, rv, 1")
	g.raw("\tadd rv, rv, r1")
	g.raw("\tret")

	g.raw(".data")
	g.raw("arcs: .space 65536")
	return g.String()
}

var _ = register(&Spec{
	Name:         "twolf",
	Model:        "300.twolf",
	IBClass:      "low",
	DefaultScale: 55000,
	Gen:          genTwolf,
})

// genTwolf models simulated-annealing placement: LCG-driven swap proposals
// with branchy accept/reject logic, inline cost evaluation and occasional
// leaf calls.
func genTwolf(scale int) string {
	g := &gen{}
	g.f("; twolf-shaped workload: annealing swaps over a 64x16 grid, scale=%d", scale)
	g.raw(".name \"twolf\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x7f4a7c15")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, grid")
	g.raw("\tli r16, 0")
	g.raw("ginit:")
	g.lcg()
	g.raw("\tsrli r3, r25, 9")
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw r3, (r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 1024")
	g.raw("\tblt r16, r1, ginit")

	g.f("\tli r20, %d", scale)
	g.raw("\tli r21, 40000") // temperature
	g.raw("anneal:")
	// pick cells a (r16) and b (r17)
	g.lcg()
	g.raw("\tsrli r16, r25, 12")
	g.raw("\tandi r16, r16, 1023")
	g.lcg()
	g.raw("\tsrli r17, r25, 12")
	g.raw("\tandi r17, r17, 1023")
	// delta = |grid[a] & 0xffff - grid[b] & 0xffff| style cost
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r10, (r8)")
	g.raw("\tslli r1, r17, 2")
	g.raw("\tadd r9, r26, r1")
	g.raw("\tlw r11, (r9)")
	g.raw("\tandi r3, r10, 16383")
	g.raw("\tandi r1, r11, 16383")
	g.raw("\tsub r12, r3, r1")
	g.raw("\tbge r12, zero, dpos")
	g.raw("\tsub r12, zero, r12")
	g.raw("dpos:")
	// accept if delta < temperature, else reject and cool slightly
	g.raw("\tblt r12, r21, accept")
	g.raw("\tsubi r21, r21, 1")
	g.raw("\tjmp cooled")
	g.raw("accept:")
	g.raw("\tsw r11, (r8)")
	g.raw("\tsw r10, (r9)")
	g.mix("r12")
	g.raw("cooled:")
	// every 8th proposal, recompute a row cost through a leaf call
	g.raw("\tandi r1, r20, 7")
	g.raw("\tbnez r1, skipcall")
	g.raw("\tandi a0, r16, 960") // row base (64-cell rows)
	g.raw("\tcall rowcost")
	g.mix("rv")
	g.raw("skipcall:")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, anneal")
	g.epilogue()

	// rowcost(a0 = row base index): sum 16 cells. Leaf.
	g.raw("rowcost:")
	g.raw("\tli rv, 0")
	g.raw("\tli r3, 0")
	g.raw("rcl:")
	g.raw("\tadd r1, a0, r3")
	g.raw("\tslli r1, r1, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r9, (r8)")
	g.raw("\tadd rv, rv, r9")
	g.raw("\taddi r3, r3, 1")
	g.raw("\tli r1, 16")
	g.raw("\tblt r3, r1, rcl")
	g.raw("\tret")

	g.raw(".data")
	g.raw("grid: .space 4096")
	return g.String()
}
