// Package workload generates the guest programs the experiments run: one
// deterministic stand-in per SPEC CPU2000 integer benchmark, shaped to
// match the published indirect-branch character of its namesake, plus
// microbenchmarks for targeted sweeps.
//
// SPEC CPU2000 itself is proprietary and its binaries target real ISAs, so
// the reproduction substitutes synthetic programs (see DESIGN.md). What the
// paper's experiments actually depend on is each benchmark's dynamic
// control-flow mix — how often it executes returns, indirect jumps and
// indirect calls, how many distinct targets each site sees, and how much
// code it touches. Each generator here reproduces that mix:
//
//	name      modeled after            IB character
//	----      -------------            ------------
//	gzip      compression              few IBs; tight loops, leaf calls
//	vpr       place & route            moderate returns, small switches
//	gcc       optimizing compiler      ijump-heavy (big switches) + calls
//	mcf       network simplex          IB-sparse, D-cache-hostile walks
//	crafty    chess search             recursion + switches, mixed IBs
//	parser    link grammar parser      returns-heavy deep recursion
//	eon       C++ ray tracer           icall-heavy (virtual dispatch)
//	perlbmk   perl interpreter         ijump-dominant dispatch loop
//	gap       group theory system      interpreter + function table icalls
//	vortex    OO database              returns-dominant, call-dense
//	bzip2     block-sort compression   recursion bursts, few ijumps
//	twolf     simulated annealing      branchy loops, leaf calls
//
// Every workload self-checks: it accumulates a checksum in r27 and OUTs it
// before halting, so any semantic divergence between native and translated
// execution changes the output stream.
package workload

import (
	"fmt"
	"sort"

	"sdt/internal/asm"
	"sdt/internal/program"
)

// Spec describes one workload generator.
type Spec struct {
	// Name is the short identifier used by CLIs and benchmarks.
	Name string
	// Model names the SPEC CPU2000 benchmark this workload is shaped
	// after.
	Model string
	// IBClass summarizes the indirect-branch character.
	IBClass string
	// DefaultScale is the iteration parameter giving a run long enough to
	// amortize translation (roughly 1-5M guest instructions).
	DefaultScale int
	// Gen produces the assembly source at a given scale.
	Gen func(scale int) string
}

// ScaledDown returns DefaultScale reduced by div for quick runs, clamped
// so the result can never reach 0. The clamp matters: Generate and Image
// interpret scale 0 as "use the full DefaultScale", so an unclamped
// DefaultScale/div with a large divisor would silently select the
// *largest* run — the opposite of what the divisor asks for. The floor is
// 2 rather than 1 because several generators degenerate at scale 1 (empty
// dispatch tables, zero-iteration loops).
func (s *Spec) ScaledDown(div int) int {
	if div <= 1 {
		return s.DefaultScale
	}
	scale := s.DefaultScale / div
	if scale < 2 {
		scale = 2
	}
	return scale
}

// Generate returns the workload's assembly source at scale (0 selects
// DefaultScale).
func (s *Spec) Generate(scale int) string {
	if scale <= 0 {
		scale = s.DefaultScale
	}
	return s.Gen(scale)
}

// Image assembles the workload at scale (0 selects DefaultScale).
func (s *Spec) Image(scale int) (*program.Image, error) {
	img, err := asm.Assemble(s.Name+".s", s.Generate(scale))
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	img.Name = s.Name
	return img, nil
}

var registry = map[string]*Spec{}

func register(s *Spec) *Spec {
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate " + s.Name)
	}
	registry[s.Name] = s
	return s
}

// Names returns all workload names, SPEC suite first (in conventional
// order), then microbenchmarks, each group alphabetical.
func Names() []string {
	var spec, micro []string
	for name := range registry {
		if len(name) > 6 && name[:6] == "micro." {
			micro = append(micro, name)
		} else {
			spec = append(spec, name)
		}
	}
	sort.Strings(spec)
	sort.Strings(micro)
	return append(spec, micro...)
}

// SPECNames returns the names of the twelve SPECint-shaped workloads in
// conventional suite order.
func SPECNames() []string {
	return []string{"gzip", "vpr", "gcc", "mcf", "crafty", "parser",
		"eon", "perlbmk", "gap", "vortex", "bzip2", "twolf"}
}

// Get looks a workload up by name.
func Get(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return s, nil
}

// gen is a small assembly-emitting helper shared by the generators.
type gen struct {
	b   []byte
	lbl int
}

func (g *gen) f(format string, args ...any) {
	g.b = append(g.b, fmt.Sprintf(format, args...)...)
	g.b = append(g.b, '\n')
}

func (g *gen) raw(s string) { g.b = append(g.b, s...); g.b = append(g.b, '\n') }

func (g *gen) String() string { return string(g.b) }

// label returns a fresh unique label with the given stem.
func (g *gen) label(stem string) string {
	g.lbl++
	return fmt.Sprintf("%s_%d", stem, g.lbl)
}

// lcg emits the shared pseudo-random step: seed register r25 advances by a
// 32-bit LCG; the caller reads bits out of r25. Clobbers r1.
func (g *gen) lcg() {
	g.raw("\tli r1, 1103515245")
	g.raw("\tmul r25, r25, r1")
	g.raw("\taddi r25, r25, 12345")
}

// mix folds a register into the checksum register r27. Clobbers r1.
func (g *gen) mix(reg string) {
	g.f("\tslli r1, r27, 5")
	g.f("\tadd r27, r27, r1")
	g.f("\txor r27, r27, %s", reg)
}

// epilogue emits the checksum OUT and halt.
func (g *gen) epilogue() {
	g.raw("\tout r27")
	g.raw("\thalt")
}
