package workload

// The return- and icall-heavy group: vortex, eon, parser, crafty, vpr.
// Returns are the most frequent indirect branch in real suites (the paper's
// characterization makes this point); vortex and parser anchor that
// behaviour, eon anchors virtual-call dispatch.

var _ = register(&Spec{
	Name:         "vortex",
	Model:        "255.vortex",
	IBClass:      "ret-heavy",
	DefaultScale: 35000,
	Gen:          genVortex,
})

// genVortex models an object database: every transaction runs a four-deep
// call chain (txn -> lookup -> fetch -> validate), giving the suite's
// densest return stream with shallow, RAS-friendly nesting.
func genVortex(scale int) string {
	g := &gen{}
	g.f("; vortex-shaped workload: OO database transactions, scale=%d", scale)
	g.raw(".name \"vortex\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x0bad5eed")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, db")
	// initialize 1024 records of 16 bytes
	g.raw("\tli r16, 0")
	g.raw("dbinit:")
	g.lcg()
	g.raw("\tsrli r3, r25, 5")
	g.raw("\tslli r1, r16, 4")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw r3, (r8)")
	g.raw("\tsw r16, 4(r8)")
	g.raw("\txori r3, r3, 0x2a")
	g.raw("\tsw r3, 8(r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 1024")
	g.raw("\tblt r16, r1, dbinit")

	g.f("\tli r20, %d", scale)
	g.raw("txnloop:")
	g.lcg()
	g.raw("\tsrli a0, r25, 14")
	g.raw("\tandi a0, a0, 1023")
	g.raw("\tcall txn")
	g.mix("rv")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, txnloop")
	g.epilogue()

	// txn(a0=key) -> lookup -> fetch -> validate, each layer adding work
	g.raw("txn:")
	g.raw("\tpush ra")
	g.raw("\tslli r10, a0, 1")
	g.raw("\txor r10, r10, a0")
	g.raw("\tcall lookup")
	g.raw("\tpop ra")
	g.raw("\taddi rv, rv, 1")
	g.raw("\tret")
	g.raw("lookup:")
	g.raw("\tpush ra")
	g.raw("\tandi a0, a0, 1023")
	g.raw("\tslli r9, a0, 4")
	g.raw("\tadd a1, r26, r9")
	g.raw("\tcall fetch")
	g.raw("\tpop ra")
	g.raw("\txor rv, rv, a0")
	g.raw("\tret")
	g.raw("fetch:")
	g.raw("\tpush ra")
	g.raw("\tlw r8, (a1)")
	g.raw("\tlw r9, 8(a1)")
	g.raw("\tadd a2, r8, r9")
	// scan the record's neighbourhood, the way vortex walks its object
	// representations between calls
	g.raw("\tli r3, 6")
	g.raw("fscan:")
	g.raw("\tlw r1, 4(a1)")
	g.raw("\txor a2, a2, r1")
	g.raw("\tslli r1, a2, 1")
	g.raw("\tadd a2, a2, r1")
	g.raw("\tsrli a2, a2, 1")
	g.raw("\tsubi r3, r3, 1")
	g.raw("\tbnez r3, fscan")
	g.raw("\tcall validate")
	g.raw("\tpop ra")
	g.raw("\tsrli r1, rv, 7")
	g.raw("\tadd rv, rv, r1")
	g.raw("\tret")
	g.raw("validate:")
	g.raw("\tslli rv, a2, 3")
	g.raw("\txor rv, rv, a2")
	g.raw("\tsrli r1, rv, 11")
	g.raw("\txor rv, rv, r1")
	g.raw("\tret")

	g.raw(".data")
	g.raw("db: .space 16384")
	return g.String()
}

var _ = register(&Spec{
	Name:         "eon",
	Model:        "252.eon (C++)",
	IBClass:      "icall-heavy",
	DefaultScale: 900,
	Gen:          genEon,
})

// genEon models C++ virtual dispatch: a scene of objects drawn from six
// classes, each rendering step loading the object's vtable and calling a
// virtual method indirectly. Indirect calls (and their returns) dominate.
func genEon(scale int) string {
	const classes = 6
	g := &gen{}
	g.f("; eon-shaped workload: virtual dispatch over %d classes, scale=%d", classes, scale)
	g.raw(".name \"eon\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x00c0ffee")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, scene")
	// 256 objects: {class id, payload}
	g.raw("\tli r16, 0")
	g.raw("sceneinit:")
	g.lcg()
	g.raw("\tsrli r3, r25, 9")
	g.f("\tli r1, %d", classes)
	g.raw("\trem r3, r3, r1")
	g.raw("\tslli r1, r16, 3")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw r3, (r8)")
	g.raw("\tsrli r3, r25, 3")
	g.raw("\tsw r3, 4(r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 256")
	g.raw("\tblt r16, r1, sceneinit")

	g.f("\tli r20, %d", scale)
	g.raw("frame:")
	g.raw("\tli r16, 0")
	g.raw("obj:")
	g.raw("\tslli r1, r16, 3")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r9, (r8)")  // class id
	g.raw("\tlw a0, 4(r8)") // payload
	// method index alternates by frame parity: two virtuals per class
	g.raw("\tandi r3, r20, 1")
	g.raw("\tslli r9, r9, 3") // class stride in vtable region (2 words)
	g.raw("\tslli r3, r3, 2")
	g.raw("\tadd r9, r9, r3")
	g.raw("\tla r1, vtables")
	g.raw("\tadd r1, r1, r9")
	g.raw("\tlw r3, (r1)")
	g.raw("\tcallr r3")
	g.mix("rv")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 64")
	g.raw("\tblt r16, r1, obj")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, frame")
	g.epilogue()

	// classes x 2 virtual methods; each does a short shading loop so the
	// dynamic IB density lands near real eon's rather than a pure
	// dispatch microbenchmark's
	for c := 0; c < classes; c++ {
		for m := 0; m < 2; m++ {
			g.f("m_%d_%d:", c, m)
			g.f("\tslli rv, a0, %d", (c+m)%5+1)
			g.raw("\txor rv, rv, a0")
			if m == 1 {
				g.f("\tli r1, %d", 1000003+c)
				g.raw("\tmul rv, rv, r1")
			}
			g.f("\tli r9, %d", 4+c%3)
			lbl := g.label("shade")
			g.f("%s:", lbl)
			g.raw("\tsrli r1, rv, 5")
			g.raw("\tadd rv, rv, r1")
			g.f("\txori rv, rv, %d", c*19+m*7+3)
			g.raw("\tsubi r9, r9, 1")
			g.f("\tbnez r9, %s", lbl)
			g.f("\taddi rv, rv, %d", c*37+m*11+1)
			g.raw("\tret")
		}
	}

	g.raw(".data")
	g.raw("vtables:")
	for c := 0; c < classes; c++ {
		g.f("\t.word m_%d_0, m_%d_1", c, c)
	}
	g.raw("scene: .space 2048")
	return g.String()
}

var _ = register(&Spec{
	Name:         "parser",
	Model:        "197.parser",
	IBClass:      "ret-heavy",
	DefaultScale: 800,
	Gen:          genParser,
})

// genParser models recursive-descent parsing: expr/term/factor mutual
// recursion over a generated token stream, with nesting depth that
// exercises the RAS without constantly overflowing it.
func genParser(scale int) string {
	toks := parserTokens(0x1234abcd, 300)
	g := &gen{}
	g.f("; parser-shaped workload: recursive descent over %d tokens, scale=%d", len(toks), scale)
	g.raw(".name \"parser\"")
	g.raw(".mem 0x100000")
	// tokens: 0=NUM 1=PLUS 2=STAR 3=LPAREN 4=RPAREN 5=END
	g.raw("main:")
	g.raw("\tli r27, 0")
	g.f("\tli r20, %d", scale)
	g.raw("parse:")
	g.raw("\tla r24, tokens") // token cursor (global)
	g.raw("\tcall expr")
	g.mix("rv")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, parse")
	g.epilogue()

	// expr := term (op term)*
	g.raw("expr:")
	g.raw("\tpush ra")
	g.raw("\tcall term")
	g.raw("\tmov r10, rv")
	g.raw("exprloop:")
	g.raw("\tlbu r8, (r24)")
	g.raw("\tli r1, 1") // PLUS
	g.raw("\tbeq r8, r1, exprplus")
	g.raw("\tmov rv, r10")
	g.raw("\tpop ra")
	g.raw("\tret")
	g.raw("exprplus:")
	g.raw("\taddi r24, r24, 1")
	g.raw("\tpush r10")
	g.raw("\tcall term")
	g.raw("\tpop r10")
	g.raw("\tadd r10, r10, rv")
	g.raw("\tjmp exprloop")

	// term := factor (STAR factor)*
	g.raw("term:")
	g.raw("\tpush ra")
	g.raw("\tcall factor")
	g.raw("\tmov r11, rv")
	g.raw("termloop:")
	g.raw("\tlbu r8, (r24)")
	g.raw("\tli r1, 2") // STAR
	g.raw("\tbeq r8, r1, termstar")
	g.raw("\tmov rv, r11")
	g.raw("\tpop ra")
	g.raw("\tret")
	g.raw("termstar:")
	g.raw("\taddi r24, r24, 1")
	g.raw("\tpush r11")
	g.raw("\tcall factor")
	g.raw("\tpop r11")
	g.raw("\tmul r11, r11, rv")
	g.raw("\tandi r11, r11, 0x3fff") // keep values bounded
	g.raw("\tjmp termloop")

	// factor := NUM | LPAREN expr RPAREN   (r11 is caller-saved here via stack)
	g.raw("factor:")
	g.raw("\tlbu r8, (r24)")
	g.raw("\taddi r24, r24, 1")
	g.raw("\tbeqz r8, facnum")
	g.raw("\tli r1, 3") // LPAREN
	g.raw("\tbeq r8, r1, facparen")
	// END or unexpected: value 1, back up the cursor
	g.raw("\tsubi r24, r24, 1")
	g.raw("\tli rv, 1")
	g.raw("\tret")
	g.raw("facnum:")
	g.raw("\tlbu rv, (r24)") // NUM carries a value byte
	g.raw("\taddi r24, r24, 1")
	g.raw("\taddi rv, rv, 1")
	g.raw("\tret")
	g.raw("facparen:")
	g.raw("\tpush ra")
	g.raw("\tcall expr")
	g.raw("\tpop ra")
	g.raw("\tlbu r8, (r24)") // expect RPAREN
	g.raw("\tli r1, 4")
	g.raw("\tbne r8, r1, facmiss")
	g.raw("\taddi r24, r24, 1")
	g.raw("facmiss:")
	g.raw("\tret")

	g.raw(".data")
	g.raw("tokens:")
	for i := 0; i < len(toks); i += 16 {
		end := i + 16
		if end > len(toks) {
			end = len(toks)
		}
		line := "\t.byte "
		for j := i; j < end; j++ {
			if j > i {
				line += ", "
			}
			line += itoaByte(toks[j])
		}
		g.raw(line)
	}
	return g.String()
}

func itoaByte(b byte) string {
	if b == 0 {
		return "0"
	}
	var d []byte
	for b > 0 {
		d = append([]byte{byte('0' + b%10)}, d...)
		b /= 10
	}
	return string(d)
}

// parserTokens generates a well-formed expression token stream:
// 0=NUM(value byte follows) 1=PLUS 2=STAR 3=LPAREN 4=RPAREN 5=END.
func parserTokens(seed uint32, target int) []byte {
	var out []byte
	rnd := func(n uint32) uint32 {
		seed = seed*1103515245 + 12345
		return (seed >> 16) % n
	}
	var emitExpr func(depth int)
	emitFactor := func(depth int) {}
	emitFactor = func(depth int) {
		if depth < 6 && rnd(100) < 35 {
			out = append(out, 3) // (
			emitExpr(depth + 1)
			out = append(out, 4) // )
			return
		}
		out = append(out, 0, byte(rnd(50))) // NUM value
	}
	emitExpr = func(depth int) {
		emitFactor(depth)
		for terms := rnd(3); terms > 0; terms-- {
			if rnd(2) == 0 {
				out = append(out, 1) // +
			} else {
				out = append(out, 2) // *
			}
			emitFactor(depth)
		}
	}
	for len(out) < target {
		emitExpr(0)
		if len(out) < target {
			out = append(out, 1) // chain expressions with +
		}
	}
	out = append(out, 5) // END
	return out
}

var _ = register(&Spec{
	Name:         "crafty",
	Model:        "186.crafty",
	IBClass:      "mixed",
	DefaultScale: 220,
	Gen:          genCrafty,
})

// genCrafty models game-tree search: bounded recursion with a move-kind
// switch (jump table) at every node and bit-twiddling evaluation, mixing
// returns with indirect jumps.
func genCrafty(scale int) string {
	g := &gen{}
	g.f("; crafty-shaped workload: depth-4 search with move switches, scale=%d", scale)
	g.raw(".name \"crafty\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x88B81733")
	g.raw("\tli r27, 0")
	g.f("\tli r20, %d", scale)
	g.raw("game:")
	g.lcg()
	g.raw("\tsrli a0, r25, 7") // position hash
	g.raw("\tli a1, 4")        // depth
	g.raw("\tcall search")
	g.mix("rv")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, game")
	g.epilogue()

	// search(a0=pos, a1=depth): evaluate 3 moves, recursing on each.
	g.raw("search:")
	g.raw("\tbnez a1, deeper")
	// leaf: popcount-style evaluation
	g.raw("\tli rv, 0")
	g.raw("\tmov r8, a0")
	g.raw("evl:")
	g.raw("\tandi r1, r8, 1")
	g.raw("\tadd rv, rv, r1")
	g.raw("\tsrli r8, r8, 1")
	g.raw("\tbnez r8, evl")
	g.raw("\tret")
	g.raw("deeper:")
	g.raw("\tpush ra")
	g.raw("\tpush r10")
	g.raw("\tpush r11")
	g.raw("\tpush r12")
	g.raw("\tmov r10, a0") // pos
	g.raw("\tmov r11, a1") // depth
	g.raw("\tli r12, 0")   // move index / best
	g.raw("\tli r13, 0")   // accumulated score... r13 must survive calls
	g.raw("\tpush r13")
	g.raw("moves:")
	// move kind = (pos >> move) & 7, switch over 8 generators
	g.raw("\tsrl r8, r10, r12")
	g.raw("\tandi r8, r8, 7")
	g.raw("\tla r1, movetab")
	g.raw("\tslli r3, r8, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tjr r3")
	for k := 0; k < 8; k++ {
		g.f("mv%d:", k)
		switch k % 3 {
		case 0:
			g.f("\tslli r9, r10, %d", k%4+1)
			g.raw("\txor r9, r9, r10")
		case 1:
			g.f("\tsrli r9, r10, %d", k%5+1)
			g.raw("\tadd r9, r9, r10")
		case 2:
			g.f("\txori r9, r10, %d", k*73+5)
			g.raw("\tslli r1, r9, 2")
			g.raw("\tadd r9, r9, r1")
		}
		g.raw("\tjmp domove")
	}
	g.raw("domove:")
	g.raw("\tmov a0, r9")
	g.raw("\tsubi a1, r11, 1")
	g.raw("\tcall search")
	g.raw("\tlw r13, (sp)")
	g.raw("\tadd r13, r13, rv")
	g.raw("\tsw r13, (sp)")
	g.raw("\taddi r12, r12, 1")
	g.raw("\tli r1, 3")
	g.raw("\tblt r12, r1, moves")
	g.raw("\tpop r13")
	g.raw("\tmov rv, r13")
	g.raw("\tpop r12")
	g.raw("\tpop r11")
	g.raw("\tpop r10")
	g.raw("\tpop ra")
	g.raw("\tret")

	g.raw(".data")
	g.raw("movetab:")
	for k := 0; k < 8; k++ {
		g.f("\t.word mv%d", k)
	}
	return g.String()
}

var _ = register(&Spec{
	Name:         "vpr",
	Model:        "175.vpr",
	IBClass:      "mixed",
	DefaultScale: 30000,
	Gen:          genVpr,
})

// genVpr models placement-and-routing: swap proposals over a grid with a
// per-swap cost call and a small direction switch, a middle-of-the-road IB
// mix between twolf and gcc.
func genVpr(scale int) string {
	g := &gen{}
	g.f("; vpr-shaped workload: place-and-route swaps, scale=%d", scale)
	g.raw(".name \"vpr\"")
	g.raw(".mem 0x100000")
	g.raw("main:")
	g.raw("\tli r25, 0x3ade68b1")
	g.raw("\tli r27, 0")
	g.raw("\tla r26, cells")
	g.raw("\tli r16, 0")
	g.raw("cinit:")
	g.lcg()
	g.raw("\tsrli r3, r25, 6")
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tsw r3, (r8)")
	g.raw("\taddi r16, r16, 1")
	g.raw("\tli r1, 512")
	g.raw("\tblt r16, r1, cinit")

	g.f("\tli r20, %d", scale)
	g.raw("place:")
	g.lcg()
	g.raw("\tsrli r16, r25, 10")
	g.raw("\tandi r16, r16, 511")
	// direction switch: 4 neighbours via jump table
	g.raw("\tsrli r17, r25, 3")
	g.raw("\tandi r17, r17, 3")
	g.raw("\tla r1, dirtab")
	g.raw("\tslli r3, r17, 2")
	g.raw("\tadd r1, r1, r3")
	g.raw("\tlw r3, (r1)")
	g.raw("\tjr r3")
	g.raw("dn:")
	g.raw("\taddi r17, r16, 16")
	g.raw("\tjmp dircont")
	g.raw("ds:")
	g.raw("\tsubi r17, r16, 16")
	g.raw("\tjmp dircont")
	g.raw("de:")
	g.raw("\taddi r17, r16, 1")
	g.raw("\tjmp dircont")
	g.raw("dw:")
	g.raw("\tsubi r17, r16, 1")
	g.raw("dircont:")
	g.raw("\tandi r17, r17, 511")
	// wire-length accumulation over the bounding box, vpr's inner loop
	g.raw("\tli r18, 8")
	g.raw("\tli r19, 0")
	g.raw("bbox:")
	g.raw("\tadd r1, r16, r18")
	g.raw("\tandi r1, r1, 511")
	g.raw("\tslli r1, r1, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r9, (r8)")
	g.raw("\tandi r9, r9, 4095")
	g.raw("\tadd r19, r19, r9")
	g.raw("\tsubi r18, r18, 1")
	g.raw("\tbnez r18, bbox")
	g.mix("r19")
	g.raw("\tmov a0, r16")
	g.raw("\tmov a1, r17")
	g.raw("\tcall swapcost")
	g.raw("\tandi r1, rv, 1")
	g.raw("\tbnez r1, noswap")
	// swap the two cells
	g.raw("\tslli r1, r16, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tslli r1, r17, 2")
	g.raw("\tadd r9, r26, r1")
	g.raw("\tlw r3, (r8)")
	g.raw("\tlw r1, (r9)")
	g.raw("\tsw r1, (r8)")
	g.raw("\tsw r3, (r9)")
	g.raw("noswap:")
	g.mix("rv")
	g.raw("\tsubi r20, r20, 1")
	g.raw("\tbnez r20, place")
	g.epilogue()

	// swapcost(a0,a1): bounded wire-length style cost. Leaf.
	g.raw("swapcost:")
	g.raw("\tslli r1, a0, 2")
	g.raw("\tadd r8, r26, r1")
	g.raw("\tlw r8, (r8)")
	g.raw("\tslli r1, a1, 2")
	g.raw("\tadd r9, r26, r1")
	g.raw("\tlw r9, (r9)")
	g.raw("\txor rv, r8, r9")
	g.raw("\tsrli r1, rv, 9")
	g.raw("\tadd rv, rv, r1")
	g.raw("\tandi rv, rv, 0x7fff")
	g.raw("\tret")

	g.raw(".data")
	g.raw("cells: .space 2048")
	g.raw("dirtab: .word dn, ds, de, dw")
	return g.String()
}
