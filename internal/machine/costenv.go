package machine

import (
	"sdt/internal/cache"
	"sdt/internal/hostarch"
	"sdt/internal/isa"
	"sdt/internal/predictor"
)

// CostEnv bundles a host cost model with the simulated microarchitectural
// state (L1 caches, BTB, RAS) and a cycle accumulator. The native machine
// and the SDT each own one; comparing their Cycles for the same guest
// program yields the slowdown the experiments report.
type CostEnv struct {
	Model  *hostarch.Model
	ICache *cache.Cache
	DCache *cache.Cache
	BTB    *predictor.BTB
	RAS    *predictor.RAS
	Cycles uint64
}

// NewCostEnv builds the microarchitectural state for a model.
func NewCostEnv(m *hostarch.Model) (*CostEnv, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &CostEnv{
		Model:  m,
		ICache: cache.New(m.ICache),
		DCache: cache.New(m.DCache),
		BTB:    predictor.NewBTB(m.BTB),
		RAS:    predictor.NewRAS(m.RAS),
	}, nil
}

// Charge adds n cycles.
func (e *CostEnv) Charge(n int) { e.Cycles += uint64(n) }

// IFetch models fetching code at addr: free on an I-cache hit, the model's
// miss penalty otherwise.
func (e *CostEnv) IFetch(addr uint32) {
	if !e.ICache.Access(addr) {
		e.Cycles += uint64(e.Model.IMissPenalty)
	}
}

// DTouch models a data reference to addr through the D-cache.
func (e *CostEnv) DTouch(addr uint32) {
	if !e.DCache.Access(addr) {
		e.Cycles += uint64(e.Model.DMissPenalty)
	}
}

// IndirectTransfer models a host indirect jump at site to target through
// the BTB and reports whether it predicted. A second-level hit pays the
// model's promotion penalty on top of the hit cost.
func (e *CostEnv) IndirectTransfer(site, target uint32) bool {
	switch e.BTB.Lookup(site, target) {
	case predictor.HitL1:
		e.Cycles += uint64(e.Model.IndirectHit)
		return true
	case predictor.HitL2:
		e.Cycles += uint64(e.Model.IndirectHit + e.Model.BTBL2HitPenalty)
		return true
	default:
		e.Cycles += uint64(e.Model.IndirectMiss)
		return false
	}
}

// HostCall models a host call instruction: charges the call cost and pushes
// the return address on the RAS.
func (e *CostEnv) HostCall(retAddr uint32) {
	e.Cycles += uint64(e.Model.CallDirect)
	e.RAS.Push(retAddr)
}

// HostReturn models a host return to target through the RAS and reports
// whether it predicted.
func (e *CostEnv) HostReturn(target uint32) bool {
	hit := e.RAS.Pop(target)
	if hit {
		e.Cycles += uint64(e.Model.ReturnHit)
	} else {
		e.Cycles += uint64(e.Model.ReturnMiss)
	}
	return hit
}

// ChargeBody charges the straight-line cost of in executing against s:
// ALU/multiply/divide pipeline costs, and load/store costs including the
// D-cache access to the effective address. Control-flow costs are charged
// separately because they differ between native and SDT execution.
// ChargeBody must be called before Exec so effective addresses are computed
// from pre-execution register values.
func (e *CostEnv) ChargeBody(s *State, in isa.Inst) {
	m := e.Model
	switch {
	case in.Op == isa.MUL:
		e.Cycles += uint64(m.Mul)
	case in.Op == isa.DIV || in.Op == isa.DIVU || in.Op == isa.REM || in.Op == isa.REMU:
		e.Cycles += uint64(m.Div)
	case in.Op.IsLoad():
		e.Cycles += uint64(m.Load)
		e.DTouch(s.Regs[in.Rs1] + uint32(in.Imm))
	case in.Op.IsStore():
		e.Cycles += uint64(m.Store)
		e.DTouch(s.Regs[in.Rs1] + uint32(in.Imm))
	case in.Op == isa.OUT:
		e.Cycles += uint64(m.Out)
	case in.Op.IsControl():
		// Charged by the control-flow accounting in the caller.
	default:
		e.Cycles += uint64(m.ALU)
	}
}

// StaticBodyCost returns the data-independent part of ChargeBody summed
// over insts: everything except the D-cache accesses of loads and stores
// (whose addresses are run-time values) and control-flow costs (charged at
// the exit). The SDT precomputes this per fragment at translation time and
// charges it in one batch per execution; because simulated cycles are a pure
// sum, batching the static terms leaves completed-run totals bit-identical
// to per-instruction charging.
func StaticBodyCost(m *hostarch.Model, insts []isa.Inst) uint64 {
	var n uint64
	for _, in := range insts {
		n += uint64(m.StaticOpCycles(in.Op))
	}
	return n
}

// FusePlan summarizes one superblock part body after super-op rewriting:
// the fused data-independent cost (the superblock's batch charge), the
// emitted code size after compaction (which sets the trace's I-cache
// footprint), and how many super-ops the rewritten body retires per
// execution (profile accounting).
type FusePlan struct {
	Static    uint64 // fused static body cost in cycles
	EmitBytes uint32 // emitted code bytes after fusion and elision
	Fused     uint64 // super-ops matched in the body
}

// PlanFusedBody peephole-rewrites one superblock part body through the
// model's super-op table and prices the result. Matching is greedy and
// longest-first: at each position the longest table sequence that matches
// the upcoming opcodes is fused (charged SuperOp.Cycles and SuperOp.Bytes),
// and unmatched instructions keep their StaticOpCycles cost and
// CodeBytesPerInst footprint. table is normally m.SuperOps; nil disables
// fusion (the NoSuperOps ablation), leaving Static == StaticBodyCost.
//
// Direct jumps contribute no bytes: every JMP on a recorded superblock
// path transfers to the recorded successor, which the compiled body lays
// out fall-through, so the jump is elided from the emitted code (its
// static cost is already zero). Control transfers never participate in
// fusion: no table sequence can contain one, and an elided jump still
// splits the match window — the retired jump keeps its slot in the
// instruction stream even though it emits no code.
func PlanFusedBody(m *hostarch.Model, insts []isa.Inst, table []hostarch.SuperOp) FusePlan {
	var p FusePlan
	cb := uint32(m.CodeBytesPerInst)
	n := len(insts)
	for i := 0; i < n; {
		best := -1
		for t := range table {
			ops := table[t].Ops
			if best >= 0 && len(ops) <= len(table[best].Ops) {
				continue
			}
			if i+len(ops) > n {
				continue
			}
			match := true
			for j, op := range ops {
				if insts[i+j].Op != op {
					match = false
					break
				}
			}
			if match {
				best = t
			}
		}
		if best >= 0 {
			so := &table[best]
			p.Static += uint64(so.Cycles)
			p.EmitBytes += uint32(so.Bytes)
			p.Fused++
			i += len(so.Ops)
			continue
		}
		p.Static += uint64(m.StaticOpCycles(insts[i].Op))
		if insts[i].Op != isa.JMP {
			p.EmitBytes += cb
		}
		i++
	}
	return p
}

// ChargeControl charges the native cost of a control outcome at pc and
// updates the predictors the way a directly executing host would.
func (e *CostEnv) ChargeControl(pc uint32, out Outcome) {
	m := e.Model
	switch out.Kind {
	case OutNext:
		// straight-line; nothing beyond body cost
	case OutBranch:
		if out.Taken {
			e.Cycles += uint64(m.BranchTaken)
		} else {
			e.Cycles += uint64(m.BranchNotTaken)
		}
	case OutJump:
		e.Cycles += uint64(m.DirectJump)
	case OutCall:
		e.HostCall(pc + isa.WordSize)
	case OutIndirect:
		switch out.IB {
		case isa.IBReturn:
			e.HostReturn(out.Target)
		case isa.IBJump:
			e.IndirectTransfer(pc, out.Target)
		case isa.IBCall:
			e.IndirectTransfer(pc, out.Target)
			e.RAS.Push(pc + isa.WordSize)
		}
	case OutHalt:
		e.Cycles += uint64(m.ALU)
	}
}
