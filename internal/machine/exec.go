package machine

import (
	"sdt/internal/isa"
)

// OutcomeKind classifies how an instruction transferred control.
type OutcomeKind uint8

// Outcome kinds.
const (
	OutNext     OutcomeKind = iota // fall through to pc+4
	OutBranch                      // conditional branch, taken or not
	OutJump                        // direct jump (JMP)
	OutCall                        // direct call (JAL)
	OutIndirect                    // JR / CALLR / RET; see IBKind
	OutHalt
)

// Outcome describes an instruction's control-flow effect. Target is the
// next pc. For OutBranch, Taken distinguishes the two successors. For
// OutIndirect, Kind2 is the indirect-branch kind and the new pc came from
// architectural state.
type Outcome struct {
	Kind   OutcomeKind
	Target uint32
	Taken  bool
	IB     isa.IBKind // valid when Kind == OutIndirect
}

// Exec applies one instruction to s. The instruction must have been fetched
// from address pc (used for pc-relative semantics and fault reporting).
// On success, s.PC is advanced to the outcome target and s.Instret is
// incremented. Exec performs no cost accounting: it is the shared semantic
// core of the native machine and the SDT's fragment execution.
func Exec(s *State, in isa.Inst, pc uint32) (Outcome, error) {
	s.PC = pc // for fault reporting
	next := pc + isa.WordSize
	out := Outcome{Kind: OutNext, Target: next}
	r := &s.Regs

	switch in.Op {
	case isa.ADD:
		s.SetReg(in.Rd, r[in.Rs1]+r[in.Rs2])
	case isa.SUB:
		s.SetReg(in.Rd, r[in.Rs1]-r[in.Rs2])
	case isa.MUL:
		s.SetReg(in.Rd, r[in.Rs1]*r[in.Rs2])
	case isa.DIV:
		a, b := int32(r[in.Rs1]), int32(r[in.Rs2])
		switch {
		case b == 0:
			s.SetReg(in.Rd, 0xffffffff)
		case a == -1<<31 && b == -1: // overflow: result is the dividend
			s.SetReg(in.Rd, uint32(a))
		default:
			s.SetReg(in.Rd, uint32(a/b))
		}
	case isa.DIVU:
		if r[in.Rs2] == 0 {
			s.SetReg(in.Rd, 0xffffffff)
		} else {
			s.SetReg(in.Rd, r[in.Rs1]/r[in.Rs2])
		}
	case isa.REM:
		a, b := int32(r[in.Rs1]), int32(r[in.Rs2])
		switch {
		case b == 0:
			s.SetReg(in.Rd, uint32(a))
		case a == -1<<31 && b == -1:
			s.SetReg(in.Rd, 0)
		default:
			s.SetReg(in.Rd, uint32(a%b))
		}
	case isa.REMU:
		if r[in.Rs2] == 0 {
			s.SetReg(in.Rd, r[in.Rs1])
		} else {
			s.SetReg(in.Rd, r[in.Rs1]%r[in.Rs2])
		}
	case isa.AND:
		s.SetReg(in.Rd, r[in.Rs1]&r[in.Rs2])
	case isa.OR:
		s.SetReg(in.Rd, r[in.Rs1]|r[in.Rs2])
	case isa.XOR:
		s.SetReg(in.Rd, r[in.Rs1]^r[in.Rs2])
	case isa.SLL:
		s.SetReg(in.Rd, r[in.Rs1]<<(r[in.Rs2]&31))
	case isa.SRL:
		s.SetReg(in.Rd, r[in.Rs1]>>(r[in.Rs2]&31))
	case isa.SRA:
		s.SetReg(in.Rd, uint32(int32(r[in.Rs1])>>(r[in.Rs2]&31)))
	case isa.SLT:
		s.SetReg(in.Rd, b2u(int32(r[in.Rs1]) < int32(r[in.Rs2])))
	case isa.SLTU:
		s.SetReg(in.Rd, b2u(r[in.Rs1] < r[in.Rs2]))

	case isa.ADDI:
		s.SetReg(in.Rd, r[in.Rs1]+uint32(in.Imm))
	case isa.ANDI:
		s.SetReg(in.Rd, r[in.Rs1]&uint32(in.Imm))
	case isa.ORI:
		s.SetReg(in.Rd, r[in.Rs1]|uint32(in.Imm))
	case isa.XORI:
		s.SetReg(in.Rd, r[in.Rs1]^uint32(in.Imm))
	case isa.SLLI:
		s.SetReg(in.Rd, r[in.Rs1]<<(uint32(in.Imm)&31))
	case isa.SRLI:
		s.SetReg(in.Rd, r[in.Rs1]>>(uint32(in.Imm)&31))
	case isa.SRAI:
		s.SetReg(in.Rd, uint32(int32(r[in.Rs1])>>(uint32(in.Imm)&31)))
	case isa.SLTI:
		s.SetReg(in.Rd, b2u(int32(r[in.Rs1]) < in.Imm))
	case isa.SLTIU:
		s.SetReg(in.Rd, b2u(r[in.Rs1] < uint32(in.Imm)))
	case isa.LUI:
		s.SetReg(in.Rd, uint32(in.Imm)<<16)

	case isa.LW:
		v, err := s.LoadWord(r[in.Rs1] + uint32(in.Imm))
		if err != nil {
			return out, err
		}
		s.SetReg(in.Rd, v)
	case isa.LH:
		v, err := s.LoadHalf(r[in.Rs1] + uint32(in.Imm))
		if err != nil {
			return out, err
		}
		s.SetReg(in.Rd, uint32(int32(int16(v))))
	case isa.LHU:
		v, err := s.LoadHalf(r[in.Rs1] + uint32(in.Imm))
		if err != nil {
			return out, err
		}
		s.SetReg(in.Rd, uint32(v))
	case isa.LB:
		v, err := s.LoadByte(r[in.Rs1] + uint32(in.Imm))
		if err != nil {
			return out, err
		}
		s.SetReg(in.Rd, uint32(int32(int8(v))))
	case isa.LBU:
		v, err := s.LoadByte(r[in.Rs1] + uint32(in.Imm))
		if err != nil {
			return out, err
		}
		s.SetReg(in.Rd, uint32(v))
	case isa.SW:
		if err := s.StoreWord(r[in.Rs1]+uint32(in.Imm), r[in.Rd]); err != nil {
			return out, err
		}
	case isa.SH:
		if err := s.StoreHalf(r[in.Rs1]+uint32(in.Imm), uint16(r[in.Rd])); err != nil {
			return out, err
		}
	case isa.SB:
		if err := s.StoreByte(r[in.Rs1]+uint32(in.Imm), byte(r[in.Rd])); err != nil {
			return out, err
		}

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		taken := false
		a, b := r[in.Rs1], r[in.Rs2]
		switch in.Op {
		case isa.BEQ:
			taken = a == b
		case isa.BNE:
			taken = a != b
		case isa.BLT:
			taken = int32(a) < int32(b)
		case isa.BGE:
			taken = int32(a) >= int32(b)
		case isa.BLTU:
			taken = a < b
		case isa.BGEU:
			taken = a >= b
		}
		out.Kind, out.Taken = OutBranch, taken
		if taken {
			out.Target = pc + uint32(in.Imm)*isa.WordSize
		}

	case isa.JMP:
		out.Kind = OutJump
		out.Target = uint32(in.Imm) * isa.WordSize
	case isa.JAL:
		s.SetReg(isa.RegRA, next)
		out.Kind = OutCall
		out.Target = uint32(in.Imm) * isa.WordSize
	case isa.JR:
		out.Kind, out.IB = OutIndirect, isa.IBJump
		out.Target = r[in.Rs1]
	case isa.CALLR:
		target := r[in.Rs1] // read before the ra write in case rs1 == ra
		s.SetReg(isa.RegRA, next)
		out.Kind, out.IB = OutIndirect, isa.IBCall
		out.Target = target
	case isa.RET:
		out.Kind, out.IB = OutIndirect, isa.IBReturn
		out.Target = r[isa.RegRA]

	case isa.OUT:
		s.Out.Emit(r[in.Rs1])
	case isa.HALT:
		s.Halted = true
		s.ExitCode = r[in.Rs1]
		out.Kind, out.Target = OutHalt, pc
	case isa.NOP:
		// nothing
	default:
		return out, s.fault(pc, "illegal instruction")
	}

	s.Instret++
	s.PC = out.Target
	return out, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// ExecStraight applies a straight-line run of instructions — a superblock
// part body up to, not including, its control terminator — to s, starting
// at pc, and returns the pc after the run. It is the batched twin of Exec:
// semantics are identical instruction-for-instruction (the two switches are
// kept adjacent in this file and exercised against each other by the
// differential fuzzer, whose native side runs Exec), but the per-
// instruction Outcome construction, instret update and pc store are
// hoisted out of the loop. s.PC is only maintained across instructions
// that can fault (memory accesses and illegal opcodes) — ALU work cannot
// observe it mid-run.
//
// If env is non-nil, loads and stores charge their D-cache reference
// through env.DTouch before the access, exactly as ChargeBody orders it;
// their static pipeline cost is assumed pre-charged (StaticBodyCost or a
// fused superblock batch).
//
// One control transfer is permitted: a direct jump (JMP), whose target is
// static — the caller guarantees the instruction following it in insts is
// the instruction at that target, which is exactly the contract of a
// superblock body whose elided jumps splice the recorded successor in
// fall-through position. Any other control transfer (or HALT) faults,
// because silently falling through one would corrupt the caller's notion
// of where execution is.
func ExecStraight(s *State, env *CostEnv, insts []isa.Inst, pc uint32) (uint32, error) {
	r := &s.Regs
	for i := range insts {
		in := insts[i]
		switch in.Op {
		case isa.ADD:
			s.SetReg(in.Rd, r[in.Rs1]+r[in.Rs2])
		case isa.SUB:
			s.SetReg(in.Rd, r[in.Rs1]-r[in.Rs2])
		case isa.MUL:
			s.SetReg(in.Rd, r[in.Rs1]*r[in.Rs2])
		case isa.DIV:
			a, b := int32(r[in.Rs1]), int32(r[in.Rs2])
			switch {
			case b == 0:
				s.SetReg(in.Rd, 0xffffffff)
			case a == -1<<31 && b == -1:
				s.SetReg(in.Rd, uint32(a))
			default:
				s.SetReg(in.Rd, uint32(a/b))
			}
		case isa.DIVU:
			if r[in.Rs2] == 0 {
				s.SetReg(in.Rd, 0xffffffff)
			} else {
				s.SetReg(in.Rd, r[in.Rs1]/r[in.Rs2])
			}
		case isa.REM:
			a, b := int32(r[in.Rs1]), int32(r[in.Rs2])
			switch {
			case b == 0:
				s.SetReg(in.Rd, uint32(a))
			case a == -1<<31 && b == -1:
				s.SetReg(in.Rd, 0)
			default:
				s.SetReg(in.Rd, uint32(a%b))
			}
		case isa.REMU:
			if r[in.Rs2] == 0 {
				s.SetReg(in.Rd, r[in.Rs1])
			} else {
				s.SetReg(in.Rd, r[in.Rs1]%r[in.Rs2])
			}
		case isa.AND:
			s.SetReg(in.Rd, r[in.Rs1]&r[in.Rs2])
		case isa.OR:
			s.SetReg(in.Rd, r[in.Rs1]|r[in.Rs2])
		case isa.XOR:
			s.SetReg(in.Rd, r[in.Rs1]^r[in.Rs2])
		case isa.SLL:
			s.SetReg(in.Rd, r[in.Rs1]<<(r[in.Rs2]&31))
		case isa.SRL:
			s.SetReg(in.Rd, r[in.Rs1]>>(r[in.Rs2]&31))
		case isa.SRA:
			s.SetReg(in.Rd, uint32(int32(r[in.Rs1])>>(r[in.Rs2]&31)))
		case isa.SLT:
			s.SetReg(in.Rd, b2u(int32(r[in.Rs1]) < int32(r[in.Rs2])))
		case isa.SLTU:
			s.SetReg(in.Rd, b2u(r[in.Rs1] < r[in.Rs2]))

		case isa.ADDI:
			s.SetReg(in.Rd, r[in.Rs1]+uint32(in.Imm))
		case isa.ANDI:
			s.SetReg(in.Rd, r[in.Rs1]&uint32(in.Imm))
		case isa.ORI:
			s.SetReg(in.Rd, r[in.Rs1]|uint32(in.Imm))
		case isa.XORI:
			s.SetReg(in.Rd, r[in.Rs1]^uint32(in.Imm))
		case isa.SLLI:
			s.SetReg(in.Rd, r[in.Rs1]<<(uint32(in.Imm)&31))
		case isa.SRLI:
			s.SetReg(in.Rd, r[in.Rs1]>>(uint32(in.Imm)&31))
		case isa.SRAI:
			s.SetReg(in.Rd, uint32(int32(r[in.Rs1])>>(uint32(in.Imm)&31)))
		case isa.SLTI:
			s.SetReg(in.Rd, b2u(int32(r[in.Rs1]) < in.Imm))
		case isa.SLTIU:
			s.SetReg(in.Rd, b2u(r[in.Rs1] < uint32(in.Imm)))
		case isa.LUI:
			s.SetReg(in.Rd, uint32(in.Imm)<<16)

		case isa.LW:
			addr := r[in.Rs1] + uint32(in.Imm)
			s.PC = pc
			if env != nil {
				env.DTouch(addr)
			}
			v, err := s.LoadWord(addr)
			if err != nil {
				s.Instret += uint64(i)
				return pc, err
			}
			s.SetReg(in.Rd, v)
		case isa.LH:
			addr := r[in.Rs1] + uint32(in.Imm)
			s.PC = pc
			if env != nil {
				env.DTouch(addr)
			}
			v, err := s.LoadHalf(addr)
			if err != nil {
				s.Instret += uint64(i)
				return pc, err
			}
			s.SetReg(in.Rd, uint32(int32(int16(v))))
		case isa.LHU:
			addr := r[in.Rs1] + uint32(in.Imm)
			s.PC = pc
			if env != nil {
				env.DTouch(addr)
			}
			v, err := s.LoadHalf(addr)
			if err != nil {
				s.Instret += uint64(i)
				return pc, err
			}
			s.SetReg(in.Rd, uint32(v))
		case isa.LB:
			addr := r[in.Rs1] + uint32(in.Imm)
			s.PC = pc
			if env != nil {
				env.DTouch(addr)
			}
			v, err := s.LoadByte(addr)
			if err != nil {
				s.Instret += uint64(i)
				return pc, err
			}
			s.SetReg(in.Rd, uint32(int32(int8(v))))
		case isa.LBU:
			addr := r[in.Rs1] + uint32(in.Imm)
			s.PC = pc
			if env != nil {
				env.DTouch(addr)
			}
			v, err := s.LoadByte(addr)
			if err != nil {
				s.Instret += uint64(i)
				return pc, err
			}
			s.SetReg(in.Rd, uint32(v))
		case isa.SW:
			addr := r[in.Rs1] + uint32(in.Imm)
			s.PC = pc
			if env != nil {
				env.DTouch(addr)
			}
			if err := s.StoreWord(addr, r[in.Rd]); err != nil {
				s.Instret += uint64(i)
				return pc, err
			}
		case isa.SH:
			addr := r[in.Rs1] + uint32(in.Imm)
			s.PC = pc
			if env != nil {
				env.DTouch(addr)
			}
			if err := s.StoreHalf(addr, uint16(r[in.Rd])); err != nil {
				s.Instret += uint64(i)
				return pc, err
			}
		case isa.SB:
			addr := r[in.Rs1] + uint32(in.Imm)
			s.PC = pc
			if env != nil {
				env.DTouch(addr)
			}
			if err := s.StoreByte(addr, byte(r[in.Rd])); err != nil {
				s.Instret += uint64(i)
				return pc, err
			}

		case isa.OUT:
			s.Out.Emit(r[in.Rs1])
		case isa.NOP:
			// nothing
		case isa.JMP:
			// Elided on-trace jump: retire it and continue at its static
			// target, where the caller has placed the next instruction.
			pc = uint32(in.Imm)*isa.WordSize - isa.WordSize
		default:
			s.PC = pc
			s.Instret += uint64(i)
			return pc, s.fault(pc, "control transfer or illegal instruction in straight-line body")
		}
		pc += isa.WordSize
	}
	s.Instret += uint64(len(insts))
	s.PC = pc
	return pc, nil
}
