package machine

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/hostarch"
	"sdt/internal/isa"
	"sdt/internal/program"
)

func assemble(t *testing.T, src string) *program.Image {
	t.Helper()
	img, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func run(t *testing.T, src string) *Machine {
	t.Helper()
	m, err := RunImage(assemble(t, src), hostarch.X86(), 10_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestALUOps(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want uint32
	}{
		{"add", "li r1, 5\n li r2, 7\n add r3, r1, r2\n out r3\n halt", 12},
		{"sub", "li r1, 5\n li r2, 7\n sub r3, r1, r2\n out r3\n halt", 0xfffffffe},
		{"mul", "li r1, 6\n li r2, 7\n mul r3, r1, r2\n out r3\n halt", 42},
		{"div", "li r1, -20\n li r2, 3\n div r3, r1, r2\n out r3\n halt", uint32(0xfffffffa)}, // -6
		{"divu", "li r1, 20\n li r2, 3\n divu r3, r1, r2\n out r3\n halt", 6},
		{"div by zero", "li r1, 20\n div r3, r1, zero\n out r3\n halt", 0xffffffff},
		{"divu by zero", "li r1, 20\n divu r3, r1, zero\n out r3\n halt", 0xffffffff},
		{"div overflow", "li r1, 0x80000000\n li r2, -1\n div r3, r1, r2\n out r3\n halt", 0x80000000},
		{"rem", "li r1, -20\n li r2, 3\n rem r3, r1, r2\n out r3\n halt", uint32(0xfffffffe)}, // -2
		{"rem by zero", "li r1, 20\n rem r3, r1, zero\n out r3\n halt", 20},
		{"rem overflow", "li r1, 0x80000000\n li r2, -1\n rem r3, r1, r2\n out r3\n halt", 0},
		{"remu", "li r1, 20\n li r2, 3\n remu r3, r1, r2\n out r3\n halt", 2},
		{"remu by zero", "li r1, 20\n remu r3, r1, zero\n out r3\n halt", 20},
		{"and", "li r1, 0xff0f\n li r2, 0x0fff\n and r3, r1, r2\n out r3\n halt", 0x0f0f},
		{"or", "li r1, 0xf000\n li r2, 0x000f\n or r3, r1, r2\n out r3\n halt", 0xf00f},
		{"xor", "li r1, 0xffff\n li r2, 0x0ff0\n xor r3, r1, r2\n out r3\n halt", 0xf00f},
		{"sll", "li r1, 1\n li r2, 31\n sll r3, r1, r2\n out r3\n halt", 0x80000000},
		{"sll wraps", "li r1, 1\n li r2, 33\n sll r3, r1, r2\n out r3\n halt", 2},
		{"srl", "li r1, 0x80000000\n li r2, 31\n srl r3, r1, r2\n out r3\n halt", 1},
		{"sra", "li r1, 0x80000000\n li r2, 31\n sra r3, r1, r2\n out r3\n halt", 0xffffffff},
		{"slt true", "li r1, -1\n li r2, 1\n slt r3, r1, r2\n out r3\n halt", 1},
		{"slt false", "li r1, 1\n li r2, -1\n slt r3, r1, r2\n out r3\n halt", 0},
		{"sltu", "li r1, -1\n li r2, 1\n sltu r3, r1, r2\n out r3\n halt", 0}, // 0xffffffff not < 1
		{"addi", "li r1, 5\n addi r3, r1, -10\n out r3\n halt", 0xfffffffb},
		{"andi", "li r1, 0xff\n andi r3, r1, 0x0f\n out r3\n halt", 0x0f},
		{"ori", "li r1, 0xf0\n ori r3, r1, 0x0f\n out r3\n halt", 0xff},
		{"xori", "li r1, 0xff\n xori r3, r1, -1\n out r3\n halt", 0xffffff00},
		{"slli", "li r1, 3\n slli r3, r1, 4\n out r3\n halt", 48},
		{"srli", "li r1, 0x80000000\n srli r3, r1, 4\n out r3\n halt", 0x08000000},
		{"srai", "li r1, 0x80000000\n srai r3, r1, 4\n out r3\n halt", 0xf8000000},
		{"slti", "li r1, -5\n slti r3, r1, -4\n out r3\n halt", 1},
		{"sltiu", "li r1, 4\n sltiu r3, r1, 5\n out r3\n halt", 1},
		{"lui", "lui r3, 0x1234\n out r3\n halt", 0x12340000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := run(t, "main:\n"+tt.src+"\n")
			if len(m.State.Out.Values) != 1 || m.State.Out.Values[0] != tt.want {
				t.Errorf("out = %#x, want %#x", m.State.Out.Values, tt.want)
			}
		})
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, `
		main:
			la r1, buf
			li r2, 0xdeadbeef
			sw r2, (r1)
			lw r3, (r1)
			out r3          ; 0xdeadbeef
			lb r4, (r1)
			out r4          ; sign-extended 0xef
			lbu r5, 1(r1)
			out r5          ; 0xbe
			lh r6, 2(r1)
			out r6          ; sign-extended 0xdead
			lhu r7, 2(r1)
			out r7          ; 0xdead
			sb r2, 4(r1)
			lbu r8, 4(r1)
			out r8          ; 0xef
			sh r2, 6(r1)
			lhu r9, 6(r1)
			out r9          ; 0xbeef
			halt
		.data
		buf: .space 16
	`)
	want := []uint32{0xdeadbeef, 0xffffffef, 0xbe, 0xffffdead, 0xdead, 0xef, 0xbeef}
	got := m.State.Out.Values
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d: %#x", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestFaults(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"null load", "main: lw r1, (zero)\n halt", "guard page"},
		{"null store", "main: sw r1, 4(zero)\n halt", "guard page"},
		{"oob load", "main: li r1, 0x100000\n lw r2, (r1)\n halt", "past end"},
		{"misaligned word", "main: li r1, 0x2002\n lw r2, (r1)\n halt", "misaligned"},
		{"misaligned half", "main: li r1, 0x2001\n lh r2, (r1)\n halt", "misaligned"},
		{"wild jump", "main: li r1, 0x2000\n jr r1\n halt", "outside code"},
		{"misaligned jump", "main: li r1, 0x1001\n jr r1\n halt", "outside code"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			img := assemble(t, tt.src+"\n.mem 0x100000\n")
			_, err := RunImage(img, hostarch.X86(), 1000)
			if err == nil {
				t.Fatal("expected fault")
			}
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("error %T is not a Fault: %v", err, err)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("fault %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 with a loop.
	m := run(t, `
		main:
			li r1, 0      ; sum
			li r2, 1      ; i
			li r3, 10
		loop:
			add r1, r1, r2
			addi r2, r2, 1
			ble r2, r3, loop
			out r1
			halt
	`)
	if m.State.Out.Values[0] != 55 {
		t.Errorf("sum = %d, want 55", m.State.Out.Values[0])
	}
	if m.Counts.Branches != 10 || m.Counts.Taken != 9 {
		t.Errorf("branches = %d taken = %d, want 10/9", m.Counts.Branches, m.Counts.Taken)
	}
}

func TestCallsAndReturns(t *testing.T) {
	// Recursive factorial exercises JAL/RET and the stack.
	m := run(t, `
		main:
			li a0, 6
			call fact
			out rv
			halt
		fact:               ; rv = a0!
			li rv, 1
			li r9, 2
			blt a0, r9, base
			push ra
			push a0
			subi a0, a0, 1
			call fact
			pop a0
			pop ra
			mul rv, rv, a0
		base:
			ret
	`)
	if m.State.Out.Values[0] != 720 {
		t.Errorf("6! = %d, want 720", m.State.Out.Values[0])
	}
	if m.Counts.IB[isa.IBReturn] != 6 {
		t.Errorf("returns = %d, want 6", m.Counts.IB[isa.IBReturn])
	}
	if m.Counts.Calls != 6 {
		t.Errorf("direct calls = %d, want 6", m.Counts.Calls)
	}
}

func TestIndirectJumpTable(t *testing.T) {
	// A switch over a jump table exercises JR.
	m := run(t, `
		main:
			li r10, 0         ; case index loops 0,1,2
			li r11, 0         ; sum
			li r12, 3         ; iterations
		loop:
			la r1, table
			slli r2, r10, 2
			add r1, r1, r2
			lw r3, (r1)
			jr r3
		case0:
			addi r11, r11, 100
			jmp next
		case1:
			addi r11, r11, 200
			jmp next
		case2:
			addi r11, r11, 300
		next:
			addi r10, r10, 1
			blt r10, r12, loop
			out r11
			halt
		.data
		table: .word case0, case1, case2
	`)
	if m.State.Out.Values[0] != 600 {
		t.Errorf("switch sum = %d, want 600", m.State.Out.Values[0])
	}
	if m.Counts.IB[isa.IBJump] != 3 {
		t.Errorf("indirect jumps = %d, want 3", m.Counts.IB[isa.IBJump])
	}
}

func TestIndirectCall(t *testing.T) {
	m := run(t, `
		main:
			la r1, double
			li a0, 21
			callr r1
			out rv
			halt
		double:
			add rv, a0, a0
			ret
	`)
	if m.State.Out.Values[0] != 42 {
		t.Errorf("out = %d, want 42", m.State.Out.Values[0])
	}
	if m.Counts.IB[isa.IBCall] != 1 || m.Counts.IB[isa.IBReturn] != 1 {
		t.Errorf("icalls/returns = %d/%d, want 1/1", m.Counts.IB[isa.IBCall], m.Counts.IB[isa.IBReturn])
	}
}

func TestR0StaysZero(t *testing.T) {
	m := run(t, `
		main:
			li r1, 7
			add zero, r1, r1
			out zero
			halt
	`)
	if m.State.Out.Values[0] != 0 {
		t.Error("write to r0 was not discarded")
	}
}

func TestCallrThroughRA(t *testing.T) {
	// callr where rs1 == ra: the target must be read before ra is
	// clobbered with the return address.
	m := run(t, `
		main:
			la ra, fn
			callr ra
			out rv
			halt
		fn:
			li rv, 9
			ret
	`)
	if m.State.Out.Values[0] != 9 {
		t.Errorf("out = %d, want 9", m.State.Out.Values[0])
	}
}

func TestInstructionLimit(t *testing.T) {
	img := assemble(t, "main: jmp main\n")
	_, err := RunImage(img, hostarch.X86(), 1000)
	if !errors.Is(err, ErrLimit) {
		t.Errorf("err = %v, want ErrLimit", err)
	}
}

func TestHaltExitCode(t *testing.T) {
	m := run(t, "main:\n li r4, 3\n halt r4\n")
	if m.State.ExitCode != 3 {
		t.Errorf("exit code = %d, want 3", m.State.ExitCode)
	}
}

func TestOutputChecksumDeterministic(t *testing.T) {
	src := `
		main:
			li r1, 0
			li r2, 100
		loop:
			out r1
			addi r1, r1, 1
			blt r1, r2, loop
			halt
	`
	a := run(t, src).State.Out
	b := run(t, src).State.Out
	if a.Checksum != b.Checksum || a.Count != b.Count {
		t.Error("output checksum not deterministic")
	}
	if a.Count != 100 {
		t.Errorf("count = %d, want 100", a.Count)
	}
	// Different streams must (practically) differ.
	c := run(t, strings.Replace(src, "li r1, 0", "li r1, 1", 1)).State.Out
	if c.Checksum == a.Checksum {
		t.Error("different streams share a checksum")
	}
}

func TestCycleAccountingSanity(t *testing.T) {
	m := run(t, `
		main:
			li r1, 0
			li r2, 1000
		loop:
			addi r1, r1, 1
			blt r1, r2, loop
			out r1
			halt
	`)
	r := m.Result()
	if r.Cycles == 0 {
		t.Fatal("no cycles charged")
	}
	if r.Cycles < r.Instret {
		t.Errorf("cycles (%d) < instructions (%d): every instruction costs at least 1", r.Cycles, r.Instret)
	}
	// Loop code is tiny: the I-cache should make CPI modest.
	cpi := float64(r.Cycles) / float64(r.Instret)
	if cpi > 5 {
		t.Errorf("native CPI = %.2f, suspiciously high for a hot loop", cpi)
	}
}

func TestReturnsCheaperThanIndirectJumpsNatively(t *testing.T) {
	// The RAS should make call/return-heavy code cheaper per transfer
	// than BTB-hostile indirect jumps with many targets.
	retProg := `
		main:
			li r10, 0
			li r11, 2000
		loop:
			call fn
			addi r10, r10, 1
			blt r10, r11, loop
			halt
		fn: ret
	`
	// Indirect jumps alternating between targets defeat the BTB.
	jmpProg := `
		main:
			li r10, 0
			li r11, 2000
			la r1, t0
			la r2, t1
		loop:
			andi r3, r10, 1
			beqz r3, even
			mov r4, r2
			jmp dojr
		even:
			mov r4, r1
		dojr:
			jr r4          ; one site, alternating targets
		t0:
			jmp next
		t1:
			nop
		next:
			addi r10, r10, 1
			blt r10, r11, loop
			halt
	`
	rm := run(t, retProg)
	jm := run(t, jmpProg)
	retHits, retMisses := rm.Env.RAS.Stats()
	if retMisses > retHits/10 {
		t.Errorf("RAS on balanced code: %d hits %d misses", retHits, retMisses)
	}
	btbHits, btbMisses := jm.Env.BTB.Stats()
	if btbHits > btbMisses {
		t.Errorf("alternating-target JR should thrash the BTB: %d hits %d misses", btbHits, btbMisses)
	}
}

func TestExecRandomNeverPanics(t *testing.T) {
	// Property: Exec handles any decodable instruction against a small
	// state without panicking (faults are fine).
	img := assemble(t, "main: halt\n.mem 0x10000\n")
	st, err := NewState(img)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		in := isa.Decode(rng.Uint32())
		for r := range st.Regs {
			st.Regs[r] = rng.Uint32() % 0x20000
		}
		st.Regs[0] = 0
		st.Halted = false
		_, _ = Exec(st, in, program.CodeBase)
		if st.Regs[0] != 0 {
			t.Fatalf("instruction %v wrote r0", in)
		}
	}
}

func TestCountsConservation(t *testing.T) {
	m := run(t, `
		main:
			li r1, 0
			li r2, 50
		loop:
			call fn
			addi r1, r1, 1
			blt r1, r2, loop
			halt
		fn: ret
	`)
	c := m.Counts
	if c.Total != m.State.Instret {
		t.Errorf("Counts.Total %d != Instret %d", c.Total, m.State.Instret)
	}
	if c.Calls != 50 || c.IB[isa.IBReturn] != 50 {
		t.Errorf("calls/returns = %d/%d, want 50/50", c.Calls, c.IB[isa.IBReturn])
	}
	if got := c.IBPer1K(); got <= 0 {
		t.Errorf("IBPer1K = %v, want positive", got)
	}
}

func TestIBTraceCallback(t *testing.T) {
	img := assemble(t, `
		main:
			call fn
			halt
		fn: ret
	`)
	m, err := New(img, hostarch.X86())
	if err != nil {
		t.Fatal(err)
	}
	var sites []uint32
	m.Trace = func(site, target uint32, kind isa.IBKind) {
		if kind == isa.IBReturn {
			sites = append(sites, site)
		}
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0] != img.Symbols["fn"] {
		t.Errorf("trace sites = %#x, want [%#x]", sites, img.Symbols["fn"])
	}
}
