// Package machine implements SimRISC-32 execution. It provides three
// layers, used by both the "native" baseline and the SDT:
//
//   - State: architectural state (registers, pc, memory, output stream) and
//     fault-checked memory accessors;
//   - Exec: pure single-instruction semantics — the SDT's fragments execute
//     guest instructions through exactly this function, which is what makes
//     "translated code computes the same answers" testable;
//   - Machine: the native runner, which couples Exec with a CostEnv to
//     model the program running directly on the host. Its cycle count is
//     the denominator of every slowdown the experiments report.
package machine

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sdt/internal/isa"
	"sdt/internal/program"
)

// Fault is a guest run-time error (bad memory access, wild jump, illegal
// instruction).
type Fault struct {
	PC   uint32
	Addr uint32
	Msg  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("machine: fault at pc=%#x: %s (addr=%#x)", f.PC, f.Msg, f.Addr)
}

// Output accumulates the guest's OUT stream. Workloads self-check by
// emitting checksums; equivalence tests compare whole streams.
type Output struct {
	Checksum uint64   // FNV-1a over the little-endian value stream
	Count    uint64   // values emitted
	Values   []uint32 // first KeepValues values, for debugging and tests
}

// KeepValues bounds how many raw output values are retained.
const KeepValues = 4096

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Emit appends v to the output stream.
func (o *Output) Emit(v uint32) {
	h := o.Checksum
	if h == 0 && o.Count == 0 {
		h = fnvOffset
	}
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime
	}
	o.Checksum = h
	o.Count++
	if len(o.Values) < KeepValues {
		o.Values = append(o.Values, v)
	}
}

// State is the complete architectural state of a SimRISC-32 guest.
type State struct {
	Regs     [isa.NumRegs]uint32
	PC       uint32
	Mem      []byte
	Out      Output
	Halted   bool
	ExitCode uint32
	Instret  uint64 // retired guest instructions
}

// memPool recycles guest memory buffers between runs. Buffers are zeroed
// before reuse, so a pooled buffer is indistinguishable from a fresh one;
// Get falls back to allocation when the pooled buffer is too small.
var memPool sync.Pool // stores *[]byte

func grabMem(size uint32) []byte {
	if p, _ := memPool.Get().(*[]byte); p != nil && uint32(cap(*p)) >= size {
		mem := (*p)[:size]
		clear(mem)
		return mem
	}
	return make([]byte, size)
}

// NewState builds the initial state for an image: memory laid out, pc at
// the entry point, sp at the top of memory and gp at the data base.
// Guest memory comes from a recycled buffer when one is available (see
// Recycle), so repeated runs of similar-sized images do not reallocate it.
func NewState(img *program.Image) (*State, error) {
	mem := grabMem(img.MemBytes())
	if err := img.LayoutMemory(mem); err != nil {
		return nil, err
	}
	s := &State{PC: img.Entry, Mem: mem}
	s.Regs[isa.RegSP] = uint32(len(mem))
	s.Regs[isa.RegGP] = img.DataBase()
	return s, nil
}

// Recycle returns the state's memory buffer to the shared pool. The state
// (and any slice of its memory) must not be used afterwards.
func (s *State) Recycle() {
	if s.Mem == nil {
		return
	}
	mem := s.Mem
	s.Mem = nil
	memPool.Put(&mem)
}

// fault builds a Fault at the current pc.
func (s *State) fault(addr uint32, msg string) error {
	return &Fault{PC: s.PC, Addr: addr, Msg: msg}
}

func (s *State) checkData(addr, size uint32) error {
	if addr < program.GuardSize {
		return s.fault(addr, "access in guard page (null pointer?)")
	}
	if uint64(addr)+uint64(size) > uint64(len(s.Mem)) {
		return s.fault(addr, "access past end of memory")
	}
	if addr%size != 0 {
		return s.fault(addr, fmt.Sprintf("misaligned %d-byte access", size))
	}
	return nil
}

// LoadWord reads a 32-bit little-endian word.
func (s *State) LoadWord(addr uint32) (uint32, error) {
	if err := s.checkData(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(s.Mem[addr:]), nil
}

// StoreWord writes a 32-bit little-endian word.
func (s *State) StoreWord(addr, v uint32) error {
	if err := s.checkData(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(s.Mem[addr:], v)
	return nil
}

// LoadHalf reads a 16-bit little-endian halfword.
func (s *State) LoadHalf(addr uint32) (uint16, error) {
	if err := s.checkData(addr, 2); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(s.Mem[addr:]), nil
}

// StoreHalf writes a 16-bit little-endian halfword.
func (s *State) StoreHalf(addr uint32, v uint16) error {
	if err := s.checkData(addr, 2); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(s.Mem[addr:], v)
	return nil
}

// LoadByte reads one byte.
func (s *State) LoadByte(addr uint32) (byte, error) {
	if err := s.checkData(addr, 1); err != nil {
		return 0, err
	}
	return s.Mem[addr], nil
}

// StoreByte writes one byte.
func (s *State) StoreByte(addr uint32, v byte) error {
	if err := s.checkData(addr, 1); err != nil {
		return err
	}
	s.Mem[addr] = v
	return nil
}

// SetReg writes a register, enforcing that r0 stays zero.
func (s *State) SetReg(r isa.Reg, v uint32) {
	if r != isa.RegZero {
		s.Regs[r] = v
	}
}
