package machine

import (
	"context"
	"errors"
	"fmt"

	"sdt/internal/hostarch"
	"sdt/internal/isa"
	"sdt/internal/program"
)

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the guest halts.
var ErrLimit = errors.New("machine: instruction limit exceeded")

// DefaultLimit is the Run instruction budget when none is given.
const DefaultLimit = 2_000_000_000

// Counts are dynamic execution statistics gathered by the native machine;
// experiment E1 (the paper's workload characterization table) reports them.
type Counts struct {
	Total    uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
	Taken    uint64
	Calls    uint64 // direct calls (JAL)
	IB       [isa.NumIBKinds]uint64
}

// IBTotal is the dynamic count of all indirect branches.
func (c *Counts) IBTotal() uint64 {
	var t uint64
	for _, n := range c.IB {
		t += n
	}
	return t
}

// IBPer1K is indirect branches per thousand retired instructions.
func (c *Counts) IBPer1K() float64 {
	if c.Total == 0 {
		return 0
	}
	return 1000 * float64(c.IBTotal()) / float64(c.Total)
}

// IBTrace observes every executed indirect branch: its site (guest pc),
// resolved guest target and kind. The profiler attaches one to measure
// target-set sizes and locality.
type IBTrace func(site, target uint32, kind isa.IBKind)

// Machine executes a guest image directly ("natively") against a cost
// model. It is both the performance baseline and the semantic oracle the
// SDT is tested against.
type Machine struct {
	State  *State
	Env    *CostEnv
	Counts Counts
	Trace  IBTrace // optional

	img  *program.Image
	code []isa.Inst // predecoded code section
}

// New builds a machine for img with the given host model.
func New(img *program.Image, model *hostarch.Model) (*Machine, error) {
	st, err := NewState(img)
	if err != nil {
		return nil, err
	}
	env, err := NewCostEnv(model)
	if err != nil {
		return nil, err
	}
	return &Machine{State: st, Env: env, img: img, code: img.Decoded()}, nil
}

// Recycle returns the machine's reusable buffers (guest memory) to their
// pools. The machine must not be used afterwards.
func (m *Machine) Recycle() { m.State.Recycle() }

// FetchDecoded returns the predecoded instruction at pc, faulting on
// addresses outside the code section. Execution never leaves the static
// code section (SimRISC has no self-modifying code).
func (m *Machine) FetchDecoded(pc uint32) (isa.Inst, error) {
	idx := (pc - program.CodeBase) / isa.WordSize
	if pc < program.CodeBase || pc%isa.WordSize != 0 || int(idx) >= len(m.code) {
		return isa.Inst{}, &Fault{PC: pc, Addr: pc, Msg: "pc outside code section"}
	}
	return m.code[idx], nil
}

// Image returns the image the machine was built from.
func (m *Machine) Image() *program.Image { return m.img }

// Step executes one instruction with full native cost accounting.
func (m *Machine) Step() error {
	pc := m.State.PC
	in, err := m.FetchDecoded(pc)
	if err != nil {
		return err
	}
	m.Env.IFetch(pc)
	m.Env.ChargeBody(m.State, in)
	out, err := Exec(m.State, in, pc)
	if err != nil {
		return err
	}
	m.Env.ChargeControl(pc, out)
	m.count(pc, in, out)
	return nil
}

func (m *Machine) count(pc uint32, in isa.Inst, out Outcome) {
	c := &m.Counts
	c.Total++
	switch {
	case in.Op.IsLoad():
		c.Loads++
	case in.Op.IsStore():
		c.Stores++
	}
	switch out.Kind {
	case OutBranch:
		c.Branches++
		if out.Taken {
			c.Taken++
		}
	case OutCall:
		c.Calls++
	case OutIndirect:
		c.IB[out.IB]++
		if m.Trace != nil {
			m.Trace(pc, out.Target, out.IB)
		}
	}
}

// Run executes until the guest halts or limit instructions retire.
// limit <= 0 selects DefaultLimit.
func (m *Machine) Run(limit uint64) error {
	return m.RunContext(context.Background(), limit)
}

// ctxCheckInsts is how many retired instructions pass between cancellation
// checks in RunContext; the native interpreter steps one instruction at a
// time, so polling every step would dominate the loop.
const ctxCheckInsts = 4096

// RunContext executes like Run but additionally stops when ctx is
// cancelled or its deadline passes, returning an error wrapping ctx's
// cause. A context that is never cancellable (context.Background) costs
// nothing.
func (m *Machine) RunContext(ctx context.Context, limit uint64) error {
	if limit == 0 {
		limit = DefaultLimit
	}
	done := ctx.Done()
	nextCheck := m.State.Instret + ctxCheckInsts
	for !m.State.Halted {
		if m.State.Instret >= limit {
			return fmt.Errorf("%w (%d instructions)", ErrLimit, limit)
		}
		if done != nil && m.State.Instret >= nextCheck {
			nextCheck = m.State.Instret + ctxCheckInsts
			select {
			case <-done:
				return fmt.Errorf("machine: run stopped after %d instructions: %w",
					m.State.Instret, context.Cause(ctx))
			default:
			}
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Result summarizes a finished run.
type Result struct {
	Cycles   uint64
	Instret  uint64
	Checksum uint64
	OutCount uint64
	ExitCode uint32
}

// Result captures the current run summary.
func (m *Machine) Result() Result {
	return Result{
		Cycles:   m.Env.Cycles,
		Instret:  m.State.Instret,
		Checksum: m.State.Out.Checksum,
		OutCount: m.State.Out.Count,
		ExitCode: m.State.ExitCode,
	}
}

// RunImage is a convenience wrapper: build a machine, run to completion and
// return the machine for inspection.
func RunImage(img *program.Image, model *hostarch.Model, limit uint64) (*Machine, error) {
	m, err := New(img, model)
	if err != nil {
		return nil, err
	}
	if err := m.Run(limit); err != nil {
		return nil, err
	}
	return m, nil
}
