package machine

import (
	"testing"

	"sdt/internal/asm"
	"sdt/internal/isa"
	"sdt/internal/program"
)

func smallState(t *testing.T) *State {
	t.Helper()
	img, err := asm.Assemble("t.s", "main: halt\n.mem 0x10000\n")
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(img)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestInitialState(t *testing.T) {
	st := smallState(t)
	if st.Regs[isa.RegSP] != 0x10000 {
		t.Errorf("sp = %#x, want top of memory", st.Regs[isa.RegSP])
	}
	if st.Regs[isa.RegGP] == 0 {
		t.Error("gp not initialized to the data base")
	}
	if st.PC != program.CodeBase {
		t.Errorf("pc = %#x", st.PC)
	}
}

func TestMemoryBoundaries(t *testing.T) {
	st := smallState(t)
	last := uint32(len(st.Mem))

	// The last word is accessible; one past is not.
	if err := st.StoreWord(last-4, 0x11223344); err != nil {
		t.Errorf("store at top-4: %v", err)
	}
	if v, err := st.LoadWord(last - 4); err != nil || v != 0x11223344 {
		t.Errorf("load at top-4 = %#x, %v", v, err)
	}
	if err := st.StoreWord(last, 1); err == nil {
		t.Error("store at memory size should fault")
	}
	if _, err := st.LoadByte(last); err == nil {
		t.Error("byte load at memory size should fault")
	}
	if err := st.StoreByte(last-1, 0xff); err != nil {
		t.Errorf("last byte store: %v", err)
	}
	// Wraparound attempt: huge address + size overflowing uint32.
	if _, err := st.LoadWord(0xfffffffc); err == nil {
		t.Error("near-overflow address should fault")
	}
}

func TestGuardPage(t *testing.T) {
	st := smallState(t)
	for _, addr := range []uint32{0, 4, program.GuardSize - 4} {
		if _, err := st.LoadWord(addr); err == nil {
			t.Errorf("load at %#x should hit the guard page", addr)
		}
	}
	if _, err := st.LoadWord(program.GuardSize); err != nil {
		t.Errorf("load at guard boundary: %v", err)
	}
}

func TestHalfwordAccess(t *testing.T) {
	st := smallState(t)
	if err := st.StoreHalf(0x2000, 0xbeef); err != nil {
		t.Fatal(err)
	}
	v, err := st.LoadHalf(0x2000)
	if err != nil || v != 0xbeef {
		t.Errorf("halfword = %#x, %v", v, err)
	}
	if _, err := st.LoadHalf(0x2001); err == nil {
		t.Error("misaligned halfword should fault")
	}
}

func TestOutputKeepValuesBound(t *testing.T) {
	var o Output
	for i := uint32(0); i < KeepValues+100; i++ {
		o.Emit(i)
	}
	if o.Count != KeepValues+100 {
		t.Errorf("Count = %d", o.Count)
	}
	if len(o.Values) != KeepValues {
		t.Errorf("retained %d values, want cap %d", len(o.Values), KeepValues)
	}
	// Checksum still covers every value, not just retained ones.
	var o2 Output
	for i := uint32(0); i < KeepValues+99; i++ {
		o2.Emit(i)
	}
	if o.Checksum == o2.Checksum {
		t.Error("checksum ignored values past the retention cap")
	}
}

func TestOutputChecksumOrderSensitive(t *testing.T) {
	var a, b Output
	a.Emit(1)
	a.Emit(2)
	b.Emit(2)
	b.Emit(1)
	if a.Checksum == b.Checksum {
		t.Error("checksum must be order-sensitive")
	}
}

func TestOutputZeroValueVsNothing(t *testing.T) {
	var a, b Output
	a.Emit(0)
	if a.Checksum == b.Checksum && a.Count == b.Count {
		t.Error("emitting zero must differ from emitting nothing")
	}
}

func TestFaultError(t *testing.T) {
	st := smallState(t)
	st.PC = 0x1234
	err := st.fault(0x42, "boom")
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("fault() returned %T", err)
	}
	if f.PC != 0x1234 || f.Addr != 0x42 {
		t.Errorf("fault = %+v", f)
	}
	for _, want := range []string{"0x1234", "boom", "0x42"} {
		if !contains(err.Error(), want) {
			t.Errorf("fault message %q missing %q", err.Error(), want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
