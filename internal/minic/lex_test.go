package minic_test

import (
	"strings"
	"testing"

	"sdt/internal/minic"
)

// Lexer and parser edge cases beyond the main suite.
func TestLexerEdges(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"hex literal", `func main() { out 0xFF; }`, ""},
		{"hex empty", `func main() { out 0x; }`, "malformed number"},
		{"huge hex", `func main() { out 0x1ffffffff; }`, "too large"},
		{"stray char", "func main() { out `1`; }", "unexpected character"},
		{"keyword as var", `func main() { var while; }`, "expected identifier"},
		{"missing paren", `func main( { }`, "expected identifier"},
		{"bad param sep", `func f(a b) {} func main() {}`, "expected ','"},
		{"bad call sep", `func f(a,b){} func main() { f(1 2); }`, "expected ','"},
		{"top-level junk", `out 1;`, "top level"},
		{"global bad init", `var g = x; func main() {}`, "literal"},
		{"array len ident", `var a[n]; func main() {}`, "positive literal"},
		{"assign to call", `func f(){} func main() { f() = 1; }`, `expected ";"`},
		{"empty source", ``, "no main"},
		{"unclosed paren", `func main() { out (1; }`, `expected ")"`},
		{"unclosed index", `var a[4]; func main() { out a[1; }`, `expected "]"`},
		{"amp number", `func main() { out &5; }`, "expected identifier"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := minic.Compile(tt.src)
			if tt.wantSub == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := minic.Compile("func main() {\n  out $;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	e, ok := err.(*minic.Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Line != 2 {
		t.Errorf("error line = %d, want 2", e.Line)
	}
	if !strings.HasPrefix(err.Error(), "minic:2:") {
		t.Errorf("formatted error = %q", err.Error())
	}
}

func TestArrayReadAsStatement(t *testing.T) {
	// An array read in statement position parses and keeps its (possibly
	// faulting) access.
	_, err := minic.Compile(`var a[4]; func main() { a[1]; a[2] + 3; }`)
	if err != nil {
		t.Fatalf("array-read statement rejected: %v", err)
	}
}

func TestPrecedenceMatrix(t *testing.T) {
	// Spot checks pinning the operator table against C.
	// C precedence: & over ^ over | — so 3&1=1, 2^1=3, 1|3=3. (Go groups
	// these differently, which is exactly why it's worth pinning.)
	expect(t, `func main() { out 1 | 2 ^ 3 & 1; }`, 3)
	expect(t, `func main() { out 1 + 2 << 3; }`, 24)    // + before <<? No: << binds looser
	expect(t, `func main() { out 10 - 4 - 3 * 2; }`, 0) // * first, - left-assoc
	expect(t, `func main() { out 1 < 2 == 1; }`, 1)     // relational before equality
	expect(t, `func main() { out 0 || 1 && 0; }`, 0)    // && before ||
	expect(t, `func main() { out -2 * 3; }`, uint32(0xfffffffa))
	expect(t, `func main() { out !1 == 0; }`, 1) // unary before binary
}
