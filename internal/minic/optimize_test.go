package minic_test

import (
	"fmt"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/hostarch"
	"sdt/internal/machine"
	"sdt/internal/minic"
)

// compileBoth builds optimized and unoptimized images of src.
func compileBoth(t *testing.T, src string) (opt, plain []uint32, optInsts, plainInsts int) {
	t.Helper()
	runOne := func(optimize bool) ([]uint32, int) {
		asmText, err := minic.CompileWith(src, minic.CompileOptions{Optimize: optimize})
		if err != nil {
			t.Fatalf("compile(opt=%v): %v", optimize, err)
		}
		img, err := asm.Assemble("t.s", asmText)
		if err != nil {
			t.Fatalf("assemble(opt=%v): %v", optimize, err)
		}
		m, err := machine.RunImage(img, hostarch.X86(), 50_000_000)
		if err != nil {
			t.Fatalf("run(opt=%v): %v", optimize, err)
		}
		return m.State.Out.Values, len(img.Code)
	}
	opt, optInsts = runOne(true)
	plain, plainInsts = runOne(false)
	return
}

func sameOutputs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOptimizerPreservesSemantics(t *testing.T) {
	programs := []string{
		`func main() { out 2 + 3 * 4 - 1; }`,
		`func main() { out 7 / 0; out 7 % 0; }`, // ISA div-by-zero
		`func main() { out 0x80000000 / -1; }`,  // overflow case
		`func main() { out (1 << 31) >> 31; }`,  // logical shift
		`func main() { var x = 5; out x * 8; out x * 0; out x + 0; }`,
		`func main() { if (1) { out 10; } else { out 20; } }`,
		`func main() { if (0) { out 10; } else { out 20; } }`,
		`func main() { while (0) { out 99; } out 1; }`,
		`func main() { out 3 && 0; out 0 || 5; out 2 && 2; }`,
		`var hit = 0;
		 func f() { hit = hit + 1; return 2; }
		 func main() { out 0 * 1 && f(); out hit; out 1 && f(); out hit; }`,
		`func main() { var i = 0; var s = 0;
		  while (i < 20) { s = s + i * 4; i = i + 1; } out s; }`,
	}
	for i, src := range programs {
		opt, plain, _, _ := compileBoth(t, src)
		if !sameOutputs(opt, plain) {
			t.Errorf("program %d: optimized %v != unoptimized %v", i, opt, plain)
		}
	}
}

func TestOptimizerShrinksCode(t *testing.T) {
	src := `
	func main() {
		out 2 * 3 + 4 * 5;         // fully folds
		var x = 7;
		out x * 16;                // strength-reduced to a shift
		if (1 == 2) { out 111; out 222; out 333; }  // dead
		while (0) { out 444; }     // dead
		out x + 0;                 // identity
	}`
	_, _, optInsts, plainInsts := compileBoth(t, src)
	if optInsts >= plainInsts {
		t.Errorf("optimizer did not shrink code: %d vs %d instructions", optInsts, plainInsts)
	}
}

func TestOptimizerKeepsSideEffects(t *testing.T) {
	// Multiplication by zero must not delete a call; dead expression
	// statements with calls must survive.
	src := `
	var hit = 0;
	func f() { hit = hit + 1; return 3; }
	func main() {
		out f() * 0;
		out hit;       // must be 1
		f();           // expression statement with an effect
		out hit;       // must be 2
		out 0 * 7;     // pure: folds to 0
	}`
	opt, plain, _, _ := compileBoth(t, src)
	if !sameOutputs(opt, plain) {
		t.Fatalf("side effects lost: %v vs %v", opt, plain)
	}
	if opt[1] != 1 || opt[2] != 2 {
		t.Errorf("calls were optimized away: %v", opt)
	}
}

func TestOptimizerKeepsArrayFaults(t *testing.T) {
	// An out-of-range index must still fault after optimization.
	src := `
	var a[4];
	func main() {
		a[300000000] = 1;  // ~1.2 GB offset: far past guest memory
		out 1;
	}`
	asmText, err := minic.CompileWith(src, minic.CompileOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble("t.s", asmText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunImage(img, hostarch.X86(), 1_000_000); err == nil {
		t.Error("optimizer deleted a faulting access")
	}
}

func TestOptimizerDifferentialOnGenerated(t *testing.T) {
	// Pseudo-random MiniC programs: optimized and unoptimized binaries
	// must agree output-for-output.
	for seed := uint32(1); seed <= 15; seed++ {
		src := genMiniC(seed)
		opt, plain, _, _ := compileBoth(t, src)
		if !sameOutputs(opt, plain) {
			t.Errorf("seed %d: outputs diverge\nsource:\n%s", seed, src)
		}
	}
}

// genMiniC produces a small random-but-valid MiniC program (expression
// heavy, to exercise the folder).
func genMiniC(seed uint32) string {
	rnd := func(n uint32) uint32 {
		seed = seed*1664525 + 1013904223
		return (seed >> 16) % n
	}
	var exprGen func(depth int) string
	exprGen = func(depth int) string {
		if depth <= 0 || rnd(3) == 0 {
			switch rnd(3) {
			case 0:
				return fmt.Sprintf("%d", rnd(1000))
			case 1:
				return "x"
			default:
				return fmt.Sprintf("(0 - %d)", rnd(50))
			}
		}
		ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "<", ">", "==", "!=", "&&", "||"}
		op := ops[rnd(uint32(len(ops)))]
		r := exprGen(depth - 1)
		if op == "<<" || op == ">>" {
			r = fmt.Sprintf("%d", rnd(31))
		}
		return fmt.Sprintf("(%s %s %s)", exprGen(depth-1), op, r)
	}
	src := "func main() {\n\tvar x = " + fmt.Sprintf("%d", rnd(100)) + ";\n"
	for i := uint32(0); i < 6+rnd(6); i++ {
		switch rnd(4) {
		case 0:
			src += "\tout " + exprGen(3) + ";\n"
		case 1:
			src += "\tx = " + exprGen(3) + ";\n"
		case 2:
			src += "\tif (" + exprGen(2) + ") { out x; } else { x = x + 1; }\n"
		default:
			src += "\tout x + " + fmt.Sprintf("%d", rnd(16)) + ";\n"
		}
	}
	src += "\tout x;\n}\n"
	return src
}
