package minic_test

import (
	"strings"
	"testing"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/machine"
	"sdt/internal/minic"
)

// run compiles and executes src natively, returning the output values.
func run(t *testing.T, src string) []uint32 {
	t.Helper()
	img, err := minic.CompileToImage("test.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := machine.RunImage(img, hostarch.X86(), 20_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.State.Out.Values
}

func expect(t *testing.T, src string, want ...uint32) {
	t.Helper()
	got := run(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d outputs %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d (%#x), want %d", i, got[i], got[i], want[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	expect(t, `func main() { out 2 + 3 * 4; }`, 14)
	expect(t, `func main() { out (2 + 3) * 4; }`, 20)
	expect(t, `func main() { out 10 - 2 - 3; }`, 5) // left associative
	expect(t, `func main() { out 100 / 7; }`, 14)
	expect(t, `func main() { out 100 % 7; }`, 2)
	expect(t, `func main() { out -5 + 3; }`, 0xfffffffe)
	expect(t, `func main() { out 1 << 10; }`, 1024)
	expect(t, `func main() { out 0x80000000 >> 31; }`, 1) // logical shift
	expect(t, `func main() { out 0xf0 | 0x0f; }`, 0xff)
	expect(t, `func main() { out 0xff & 0x3c; }`, 0x3c)
	expect(t, `func main() { out 0xff ^ 0x0f; }`, 0xf0)
	expect(t, `func main() { out ~0; }`, 0xffffffff)
	expect(t, `func main() { out !0; out !7; }`, 1, 0)
	expect(t, `func main() { out 5 / 0; }`, 0xffffffff) // ISA semantics
}

func TestComparisons(t *testing.T) {
	expect(t, `func main() { out 1 < 2; out 2 < 1; out 2 < 2; }`, 1, 0, 0)
	expect(t, `func main() { out 2 > 1; out 1 > 2; }`, 1, 0)
	expect(t, `func main() { out 2 <= 2; out 3 <= 2; }`, 1, 0)
	expect(t, `func main() { out 2 >= 2; out 2 >= 3; }`, 1, 0)
	expect(t, `func main() { out 5 == 5; out 5 == 6; }`, 1, 0)
	expect(t, `func main() { out 5 != 6; out 5 != 5; }`, 1, 0)
	expect(t, `func main() { out -1 < 1; }`, 1) // signed compare
}

func TestShortCircuit(t *testing.T) {
	// The right operand must not evaluate when the left decides; a global
	// side effect detects evaluation.
	src := `
	var hit = 0;
	func bump() { hit = hit + 1; return 1; }
	func main() {
		out 0 && bump();
		out hit;
		out 1 || bump();
		out hit;
		out 1 && bump();
		out hit;
	}`
	expect(t, src, 0, 0, 1, 0, 1, 1)
}

func TestControlFlow(t *testing.T) {
	expect(t, `
	func main() {
		var i = 0;
		var sum = 0;
		while (i < 10) {
			i = i + 1;
			if (i % 2 == 0) { continue; }
			if (i > 7) { break; }
			sum = sum + i;
		}
		out sum;    // 1+3+5+7 = 16
		out i;      // 9 (break at i=9)
	}`, 16, 9)
	expect(t, `
	func main() {
		if (3 > 2) { out 1; } else { out 2; }
		if (2 > 3) { out 1; } else if (1) { out 2; } else { out 3; }
	}`, 1, 2)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expect(t, `
	func fib(n) {
		if (n < 2) { return n; }
		return fib(n-1) + fib(n-2);
	}
	func main() { out fib(15); }`, 610)
	expect(t, `
	func add3(a, b, c) { return a + b*10 + c*100; }
	func main() { out add3(1, 2, 3); }`, 321)
	expect(t, `
	func noret() { }
	func main() { out noret(); }`, 0)
}

func TestFunctionPointers(t *testing.T) {
	expect(t, `
	func double(x) { return x + x; }
	func square(x) { return x * x; }
	func apply(f, x) { return f(x); }
	func main() {
		out apply(&double, 7);
		out apply(&square, 7);
		var g = &double;
		out g(3);
	}`, 14, 49, 6)
}

func TestGlobalsAndArrays(t *testing.T) {
	expect(t, `
	var counter = 41;
	var arr[8];
	func main() {
		counter = counter + 1;
		out counter;
		var i = 0;
		while (i < 8) { arr[i] = i * i; i = i + 1; }
		out arr[7];
		out arr[arr[2]];   // arr[4] = 16
	}`, 42, 49, 16)
	expect(t, `var g = -3; func main() { out g; }`, 0xfffffffd)
}

func TestDispatchTable(t *testing.T) {
	// The pattern the paper studies, written in the high-level language:
	// an array of function addresses dispatched indirectly.
	expect(t, `
	var ops[4];
	func op0(x) { return x + 1; }
	func op1(x) { return x * 2; }
	func op2(x) { return x - 3; }
	func op3(x) { return x ^ 15; }
	func main() {
		ops[0] = &op0; ops[1] = &op1; ops[2] = &op2; ops[3] = &op3;
		var i = 0;
		var acc = 100;
		while (i < 8) {
			var f = ops[i % 4];
			acc = f(acc);
			i = i + 1;
		}
		out acc;
	}`, 384)
}

func TestHaltExitCode(t *testing.T) {
	img, err := minic.CompileToImage("t.mc", `func main() { halt 7; out 9; }`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.RunImage(img, hostarch.X86(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.State.ExitCode != 7 {
		t.Errorf("exit code = %d, want 7", m.State.ExitCode)
	}
	if m.State.Out.Count != 0 {
		t.Error("halt did not stop execution")
	}
	// main's return value becomes the exit code via the runtime stub.
	img2, _ := minic.CompileToImage("t.mc", `func main() { return 5; }`)
	m2, err := machine.RunImage(img2, hostarch.X86(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if m2.State.ExitCode != 5 {
		t.Errorf("main return exit code = %d, want 5", m2.State.ExitCode)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"no main", `func f() {}`, "no main"},
		{"main params", `func main(x) {}`, "main takes no parameters"},
		{"undefined var", `func main() { out x; }`, "undefined variable"},
		{"undefined func", `func main() { foo(); }`, "undefined function"},
		{"undefined assign", `func main() { x = 1; }`, "undefined variable"},
		{"redeclared local", `func main() { var x; var x; }`, "redeclared"},
		{"redefined func", `func f() {} func f() {} func main() {}`, "redefined"},
		{"redefined global", `var g; var g; func main() {}`, "redefined"},
		{"func/global clash", `var f; func f() {} func main() {}`, "both global and function"},
		{"break outside", `func main() { break; }`, "break outside loop"},
		{"continue outside", `func main() { continue; }`, "continue outside loop"},
		{"array no index", `var a[4]; func main() { out a; }`, "read without index"},
		{"scalar indexed", `var s; func main() { out s[0]; }`, "not a global array"},
		{"addr of nonfunc", `var v; func main() { out &v; }`, "not a function"},
		{"bad array len", `var a[0]; func main() {}`, "array length"},
		{"syntax", `func main() { out 1 +; }`, "unexpected token"},
		{"missing semi", `func main() { out 1 }`, `expected ";"`},
		{"bad char", "func main() { out 1 @ 2; }", "unexpected character"},
		{"big literal", `func main() { out 99999999999; }`, "too large"},
		{"param repeated", `func f(a, a) {} func main() {}`, "repeated"},
		{"unterminated block", `func main() { out 1;`, "end of file"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := minic.Compile(tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestComments(t *testing.T) {
	expect(t, `
	// leading comment
	func main() {
		out 1; // trailing
		// out 2;
	}`, 1)
}

func TestDeepExpressionStack(t *testing.T) {
	// Nested expressions exercise the intermediate stack.
	expect(t, `func main() { out ((1+2)*(3+4)) - ((5-6)*(7+8)); }`, 36)
	expect(t, `
	func f(a, b, c, d, e) { return a + b + c + d + e; }
	func main() { out f(f(1,2,3,4,5), 2, 3, f(1,1,1,1,1), 5); }`, 30)
}

func TestMiniCUnderSDT(t *testing.T) {
	// Compiled code must behave identically natively and translated,
	// including under fast returns and traces.
	src := `
	var ops[4];
	func op0(x) { return x + 1; }
	func op1(x) { return x * 3; }
	func op2(x) { return x ^ 255; }
	func op3(x) { return x >> 1; }
	func step(f, x) { return f(x); }
	func main() {
		ops[0] = &op0; ops[1] = &op1; ops[2] = &op2; ops[3] = &op3;
		var seed = 12345;
		var acc = 1;
		var i = 0;
		while (i < 3000) {
			seed = seed * 1103515245 + 12345;
			var k = (seed >> 16) % 4;
			if (k < 0) { k = -k; }
			acc = step(ops[k], acc) & 0xffff;
			out acc;
			i = i + 1;
		}
	}`
	img, err := minic.CompileToImage("sdt.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	native, err := machine.RunImage(img, hostarch.X86(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"ibtc:1024", "fastret+inline:2+ibtc:1024", "trace+sieve:256"} {
		cfg, err := ib.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		model, _ := hostarch.ByName("x86")
		vm, err := core.New(img, cfg.Options(model))
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(50_000_000); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if vm.Result().Checksum != native.Result().Checksum {
			t.Errorf("%s: compiled program diverged under SDT", spec)
		}
	}
}
