package minic

// AST-level optimization: constant folding with exactly the target ISA's
// 32-bit semantics (wraparound, logical >>, division-by-zero yielding -1),
// algebraic simplification guarded by purity, strength reduction of
// multiplications by powers of two, and dead-branch elimination. The
// optimizer must be semantics-preserving by construction: every rewrite
// either evaluates the same arithmetic the machine would, or removes code
// whose effects provably cannot happen.

// Optimize rewrites the program in place and returns it.
func Optimize(p *Program) *Program {
	for _, f := range p.Funcs {
		f.Body = foldStmts(f.Body)
	}
	return p
}

func foldStmts(list []Stmt) []Stmt {
	var out []Stmt
	for _, s := range list {
		switch s := s.(type) {
		case *VarStmt:
			if s.Init != nil {
				s.Init = foldExpr(s.Init)
			}
			out = append(out, s)
		case *AssignStmt:
			if s.Index != nil {
				s.Index = foldExpr(s.Index)
			}
			s.Value = foldExpr(s.Value)
			out = append(out, s)
		case *IfStmt:
			s.Cond = foldExpr(s.Cond)
			s.Then = foldStmts(s.Then)
			s.Else = foldStmts(s.Else)
			if n, ok := s.Cond.(*NumExpr); ok {
				if uint32(n.Val) != 0 {
					out = append(out, s.Then...)
				} else {
					out = append(out, s.Else...)
				}
				continue
			}
			out = append(out, s)
		case *WhileStmt:
			s.Cond = foldExpr(s.Cond)
			s.Body = foldStmts(s.Body)
			if n, ok := s.Cond.(*NumExpr); ok && uint32(n.Val) == 0 {
				continue // while(0): dead
			}
			out = append(out, s)
		case *ReturnStmt:
			if s.Value != nil {
				s.Value = foldExpr(s.Value)
			}
			out = append(out, s)
		case *OutStmt:
			s.Value = foldExpr(s.Value)
			out = append(out, s)
		case *HaltStmt:
			if s.Value != nil {
				s.Value = foldExpr(s.Value)
			}
			out = append(out, s)
		case *ExprStmt:
			s.X = foldExpr(s.X)
			if pure(s.X) {
				continue // effect-free expression statement: dead
			}
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}

// pure reports whether evaluating e can have no side effect (no calls; in
// this language loads cannot fault the program's logic but array reads are
// kept anyway to preserve potential guard-page faults).
func pure(e Expr) bool {
	switch e := e.(type) {
	case *NumExpr, *VarExpr, *AddrExpr:
		return true
	case *IndexExpr:
		return false // an out-of-range index faults; keep it observable
	case *UnaryExpr:
		return pure(e.X)
	case *BinExpr:
		return pure(e.L) && pure(e.R)
	}
	return false
}

func num(v uint32) *NumExpr { return &NumExpr{Val: int64(v)} }

func foldExpr(e Expr) Expr {
	switch e := e.(type) {
	case *UnaryExpr:
		e.X = foldExpr(e.X)
		if n, ok := e.X.(*NumExpr); ok {
			x := uint32(n.Val)
			switch e.Op {
			case "-":
				return num(-x)
			case "~":
				return num(^x)
			case "!":
				if x == 0 {
					return num(1)
				}
				return num(0)
			}
		}
		return e

	case *BinExpr:
		e.L = foldExpr(e.L)
		e.R = foldExpr(e.R)
		ln, lConst := e.L.(*NumExpr)
		rn, rConst := e.R.(*NumExpr)
		if lConst && rConst {
			return num(evalBin(e.Op, uint32(ln.Val), uint32(rn.Val)))
		}
		return algebra(e, lConst, rConst)

	case *CallExpr:
		for i := range e.Args {
			e.Args[i] = foldExpr(e.Args[i])
		}
		return e

	case *IndexExpr:
		e.Index = foldExpr(e.Index)
		return e
	}
	return e
}

// evalBin evaluates a binary operator with the machine's exact semantics.
func evalBin(op string, l, r uint32) uint32 {
	switch op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "/":
		a, b := int32(l), int32(r)
		switch {
		case b == 0:
			return 0xffffffff
		case a == -1<<31 && b == -1:
			return l
		default:
			return uint32(a / b)
		}
	case "%":
		a, b := int32(l), int32(r)
		switch {
		case b == 0:
			return l
		case a == -1<<31 && b == -1:
			return 0
		default:
			return uint32(a % b)
		}
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	case "<<":
		return l << (r & 31)
	case ">>":
		return l >> (r & 31)
	case "<":
		return b2u(int32(l) < int32(r))
	case "<=":
		return b2u(int32(l) <= int32(r))
	case ">":
		return b2u(int32(l) > int32(r))
	case ">=":
		return b2u(int32(l) >= int32(r))
	case "==":
		return b2u(l == r)
	case "!=":
		return b2u(l != r)
	case "&&":
		return b2u(l != 0 && r != 0)
	case "||":
		return b2u(l != 0 || r != 0)
	}
	panic("minic: evalBin " + op)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// algebra applies identity and strength-reduction rewrites. Rewrites that
// would delete a subexpression require it to be pure.
func algebra(e *BinExpr, lConst, rConst bool) Expr {
	lv, rv := uint32(0), uint32(0)
	if lConst {
		lv = uint32(e.L.(*NumExpr).Val)
	}
	if rConst {
		rv = uint32(e.R.(*NumExpr).Val)
	}
	switch e.Op {
	case "+":
		if rConst && rv == 0 {
			return e.L
		}
		if lConst && lv == 0 {
			return e.R
		}
	case "-":
		if rConst && rv == 0 {
			return e.L
		}
	case "*":
		if rConst {
			switch {
			case rv == 1:
				return e.L
			case rv == 0 && pure(e.L):
				return num(0)
			case rv != 0 && rv&(rv-1) == 0:
				return &BinExpr{Op: "<<", L: e.L, R: num(log2(rv))}
			}
		}
		if lConst {
			switch {
			case lv == 1:
				return e.R
			case lv == 0 && pure(e.R):
				return num(0)
			case lv != 0 && lv&(lv-1) == 0:
				return &BinExpr{Op: "<<", L: e.R, R: num(log2(lv))}
			}
		}
	case "/":
		if rConst && rv == 1 {
			return e.L
		}
	case "<<", ">>":
		if rConst && rv&31 == 0 && rv < 32 {
			return e.L
		}
	case "&":
		if rConst && rv == 0 && pure(e.L) {
			return num(0)
		}
		if lConst && lv == 0 && pure(e.R) {
			return num(0)
		}
		if rConst && rv == 0xffffffff {
			return e.L
		}
	case "|", "^":
		if rConst && rv == 0 {
			return e.L
		}
		if lConst && lv == 0 {
			return e.R
		}
	case "&&":
		// 0 && x  -> 0 always (short-circuit: x never evaluates)
		if lConst && lv == 0 {
			return num(0)
		}
		// c && x (c != 0) -> normalize x to 0/1
		if lConst && lv != 0 {
			return &BinExpr{Op: "!=", L: e.R, R: num(0)}
		}
	case "||":
		if lConst && lv != 0 {
			return num(1)
		}
		if lConst && lv == 0 {
			return &BinExpr{Op: "!=", L: e.R, R: num(0)}
		}
	}
	return e
}

func log2(v uint32) uint32 {
	n := uint32(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
