package minic_test

import (
	"testing"

	"sdt/internal/asm"
	"sdt/internal/minic"
)

// FuzzCompile: the compiler must reject or accept arbitrary input without
// panicking, and anything it accepts must produce assembly our own
// assembler accepts — a pipeline-coherence property.
func FuzzCompile(f *testing.F) {
	f.Add("func main() { out 1; }")
	f.Add("var g[8]; func f(a,b) { return a%b; } func main() { g[0]=&f; var h=g[0]; out h(7,3); }")
	f.Add("func main() { var i=0; while(i<3){ if(i==1){continue;} i=i+1; } }")
	f.Add("func main() { out 1 && 2 || !3; halt 4; }")
	f.Add("func r(n) { if (n) { return r(n-1)+1; } return 0; } func main() { out r(9); }")
	f.Add("var x = -5; func main() { x = ~x << 2 >> 1; out x; }")
	f.Fuzz(func(t *testing.T, src string) {
		asmText, err := minic.Compile(src)
		if err != nil {
			return
		}
		if _, err := asm.Assemble("fuzz.s", asmText); err != nil {
			t.Errorf("compiler emitted assembly the assembler rejects: %v\nsource:\n%s", err, src)
		}
	})
}
