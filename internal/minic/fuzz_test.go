package minic_test

import (
	"os"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/minic"
	"sdt/internal/workload"
)

// FuzzCompile: the compiler must reject or accept arbitrary input without
// panicking, and anything it accepts must produce assembly our own
// assembler accepts — a pipeline-coherence property.
//
// Besides the hand-written snippets, the corpus is seeded with the two
// real MiniC programs in the tree: the micro.mcvm workload source and the
// examples/minic expression evaluator. Both are full compiler-shaped
// programs (globals, arrays, function-pointer tables, while/if nesting),
// so mutations start deep in the grammar instead of rediscovering it.
func FuzzCompile(f *testing.F) {
	f.Add("func main() { out 1; }")
	f.Add("var g[8]; func f(a,b) { return a%b; } func main() { g[0]=&f; var h=g[0]; out h(7,3); }")
	f.Add("func main() { var i=0; while(i<3){ if(i==1){continue;} i=i+1; } }")
	f.Add("func main() { out 1 && 2 || !3; halt 4; }")
	f.Add("func r(n) { if (n) { return r(n-1)+1; } return 0; } func main() { out r(9); }")
	f.Add("var x = -5; func main() { x = ~x << 2 >> 1; out x; }")
	f.Add(workload.MCVMSource(1))
	if mc, err := os.ReadFile("../../examples/minic/prog.mc"); err == nil {
		f.Add(string(mc))
	}
	f.Fuzz(func(t *testing.T, src string) {
		asmText, err := minic.Compile(src)
		if err != nil {
			return
		}
		if _, err := asm.Assemble("fuzz.s", asmText); err != nil {
			t.Errorf("compiler emitted assembly the assembler rejects: %v\nsource:\n%s", err, src)
		}
	})
}
