// Package minic implements a small imperative language compiled to
// SimRISC-32 assembly, so guest programs (workloads, tests, demos) can be
// written above raw assembler. The language is deliberately tiny but
// includes the constructs the indirect-branch study cares about: function
// calls and returns, function pointers (indirect calls), and computed
// dispatch via arrays of function addresses.
//
// Language sketch:
//
//	var seed = 1;            // word-sized global
//	var table[64];           // global word array
//
//	func rand() {
//	    seed = seed * 1103515245 + 12345;
//	    return (seed >> 16) & 32767;
//	}
//
//	func apply(f, x) {       // f holds a function address
//	    return f(x);         // indirect call
//	}
//
//	func main() {
//	    var i = 0;
//	    while (i < 10) {
//	        out apply(&rand, i);
//	        i = i + 1;
//	    }
//	}
//
// Types: everything is a 32-bit word. Operators (C precedence): unary
// - ! ~ &f; binary * / % + - << >> < <= > >= == != & ^ | && ||
// (short-circuiting). Statements: var, assignment (scalars and global
// array elements), if/else, while, break, continue, return, out, halt,
// and expression statements. Execution begins at main; falling off main
// halts with exit code 0.
package minic

import (
	"fmt"
	"strings"
)

// Error reports a compile error with position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minic:%d:%d: %s", e.Line, e.Col, e.Msg) }

// ---- tokens -----------------------------------------------------------------

type tokKind uint8

const (
	tEOF tokKind = iota
	tNum
	tIdent
	tKeyword
	tPunct
)

type token struct {
	kind tokKind
	text string
	val  int64
	line int
	col  int
}

var keywords = map[string]bool{
	"func": true, "var": true, "if": true, "else": true, "while": true,
	"return": true, "out": true, "halt": true, "break": true, "continue": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (lx *lexer) errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.pos++
			lx.line++
			lx.col = 1
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
			lx.col++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: lx.line, col: lx.col}, nil

scan:
	start, line, col := lx.pos, lx.line, lx.col
	c := lx.src[lx.pos]
	switch {
	case c >= '0' && c <= '9':
		base := int64(10)
		if c == '0' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == 'x' || lx.src[lx.pos+1] == 'X') {
			base = 16
			lx.pos += 2
			lx.col += 2
		}
		var v int64
		digits := 0
		for lx.pos < len(lx.src) {
			d := int64(-1)
			ch := lx.src[lx.pos]
			switch {
			case ch >= '0' && ch <= '9':
				d = int64(ch - '0')
			case base == 16 && ch >= 'a' && ch <= 'f':
				d = int64(ch-'a') + 10
			case base == 16 && ch >= 'A' && ch <= 'F':
				d = int64(ch-'A') + 10
			}
			if d < 0 || d >= base {
				break
			}
			v = v*base + d
			if v > 1<<32 {
				return token{}, lx.errf(line, col, "integer literal too large")
			}
			digits++
			lx.pos++
			lx.col++
		}
		if digits == 0 {
			return token{}, lx.errf(line, col, "malformed number")
		}
		return token{kind: tNum, text: lx.src[start:lx.pos], val: v, line: line, col: col}, nil

	case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if ch == '_' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch >= '0' && ch <= '9' {
				lx.pos++
				lx.col++
			} else {
				break
			}
		}
		text := lx.src[start:lx.pos]
		k := tIdent
		if keywords[text] {
			k = tKeyword
		}
		return token{kind: k, text: text, line: line, col: col}, nil

	default:
		// multi-char operators, longest first
		for _, op := range []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"} {
			if strings.HasPrefix(lx.src[lx.pos:], op) {
				lx.pos += 2
				lx.col += 2
				return token{kind: tPunct, text: op, line: line, col: col}, nil
			}
		}
		if strings.ContainsRune("+-*/%&|^!~<>=(){}[];,", rune(c)) {
			lx.pos++
			lx.col++
			return token{kind: tPunct, text: string(c), line: line, col: col}, nil
		}
		return token{}, lx.errf(line, col, "unexpected character %q", c)
	}
}

// ---- AST --------------------------------------------------------------------

// Program is a parsed compilation unit.
type Program struct {
	Globals []*Global
	Funcs   []*Func
}

// Global is a module-level scalar or array.
type Global struct {
	Name string
	Len  int   // 0 for scalars
	Init int64 // scalars only
	Line int
}

// Func is a function definition.
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

type (
	// VarStmt declares a local, optionally initialized.
	VarStmt struct {
		Name string
		Init Expr // may be nil
		Line int
	}
	// AssignStmt assigns to a local, param, global, or global array cell.
	AssignStmt struct {
		Name  string
		Index Expr // nil for scalars
		Value Expr
		Line  int
	}
	// IfStmt is if/else.
	IfStmt struct {
		Cond Expr
		Then []Stmt
		Else []Stmt
	}
	// WhileStmt is a while loop.
	WhileStmt struct {
		Cond Expr
		Body []Stmt
	}
	// ReturnStmt returns a value (nil means 0).
	ReturnStmt struct{ Value Expr }
	// OutStmt emits a value to the machine output.
	OutStmt struct{ Value Expr }
	// HaltStmt stops the program; the value is the exit code (nil = 0).
	HaltStmt struct{ Value Expr }
	// BreakStmt exits the innermost loop.
	BreakStmt struct{ Line int }
	// ContinueStmt restarts the innermost loop.
	ContinueStmt struct{ Line int }
	// ExprStmt evaluates an expression for effect (calls).
	ExprStmt struct{ X Expr }
)

func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*OutStmt) stmtNode()      {}
func (*HaltStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

type (
	// NumExpr is an integer literal.
	NumExpr struct{ Val int64 }
	// VarExpr reads a local, param or global scalar.
	VarExpr struct {
		Name string
		Line int
	}
	// IndexExpr reads a global array cell.
	IndexExpr struct {
		Name  string
		Index Expr
		Line  int
	}
	// AddrExpr is &f, the address of a function.
	AddrExpr struct {
		Name string
		Line int
	}
	// CallExpr calls a named function (direct when Name is a function,
	// indirect when it is a variable holding an address).
	CallExpr struct {
		Name string
		Args []Expr
		Line int
	}
	// UnaryExpr is -x, !x or ~x.
	UnaryExpr struct {
		Op string
		X  Expr
	}
	// BinExpr is a binary operation; && and || short-circuit.
	BinExpr struct {
		Op   string
		L, R Expr
	}
)

func (*NumExpr) exprNode()   {}
func (*VarExpr) exprNode()   {}
func (*IndexExpr) exprNode() {}
func (*AddrExpr) exprNode()  {}
func (*CallExpr) exprNode()  {}
func (*UnaryExpr) exprNode() {}
func (*BinExpr) exprNode()   {}

// ---- parser -----------------------------------------------------------------

type parser struct {
	lx  *lexer
	tok token
}

// Parse builds the AST for a MiniC source file.
func Parse(src string) (*Program, error) {
	p := &parser{lx: &lexer{src: src, line: 1, col: 1}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tEOF {
		switch {
		case p.isKeyword("var"):
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case p.isKeyword("func"):
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errf("expected 'func' or 'var' at top level, got %q", p.tok.text)
		}
	}
	return prog, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) isKeyword(kw string) bool { return p.tok.kind == tKeyword && p.tok.text == kw }
func (p *parser) isPunct(s string) bool    { return p.tok.kind == tPunct && p.tok.text == s }

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, got %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected identifier, got %q", p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) globalDecl() (*Global, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // var
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	g := &Global{Name: name, Line: line}
	if p.isPunct("[") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tNum || p.tok.val <= 0 || p.tok.val > 1<<20 {
			return nil, p.errf("array length must be a positive literal, got %q", p.tok.text)
		}
		g.Len = int(p.tok.val)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	} else if p.isPunct("=") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		neg := false
		if p.isPunct("-") {
			neg = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tNum {
			return nil, p.errf("global initializer must be a literal, got %q", p.tok.text)
		}
		g.Init = p.tok.val
		if neg {
			g.Init = -g.Init
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return g, p.expectPunct(";")
}

func (p *parser) funcDecl() (*Func, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // func
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f := &Func{Name: name, Line: line}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		param, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, param)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if !p.isPunct(")") {
			return nil, p.errf("expected ',' or ')' in parameter list, got %q", p.tok.text)
		}
	}
	if err := p.advance(); err != nil { // )
		return nil, err
	}
	f.Body, err = p.block()
	return f, err
}

func (p *parser) block() ([]Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.isPunct("}") {
		if p.tok.kind == tEOF {
			return nil, p.errf("unexpected end of file inside block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, p.advance() // }
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.isKeyword("var"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		s := &VarStmt{Name: name, Line: line}
		if p.isPunct("=") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			s.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return s, p.expectPunct(";")

	case p.isKeyword("if"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then}
		if p.isKeyword("else") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isKeyword("if") {
				inner, err := p.stmt()
				if err != nil {
					return nil, err
				}
				s.Else = []Stmt{inner}
			} else {
				s.Else, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return s, nil

	case p.isKeyword("while"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil

	case p.isKeyword("return"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		s := &ReturnStmt{}
		if !p.isPunct(";") {
			var err error
			s.Value, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return s, p.expectPunct(";")

	case p.isKeyword("out"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &OutStmt{Value: v}, p.expectPunct(";")

	case p.isKeyword("halt"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		s := &HaltStmt{}
		if !p.isPunct(";") {
			var err error
			s.Value, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return s, p.expectPunct(";")

	case p.isKeyword("break"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line}, p.expectPunct(";")

	case p.isKeyword("continue"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line}, p.expectPunct(";")

	case p.tok.kind == tIdent:
		// assignment or expression statement; decide by lookahead
		name := p.tok.text
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.isPunct("="):
			if err := p.advance(); err != nil {
				return nil, err
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name, Value: v, Line: line}, p.expectPunct(";")
		case p.isPunct("["):
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if p.isPunct("=") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				return &AssignStmt{Name: name, Index: idx, Value: v, Line: line}, p.expectPunct(";")
			}
			// an array read as a statement: finish parsing it as an expression
			x, err := p.exprContinue(&IndexExpr{Name: name, Index: idx, Line: line})
			if err != nil {
				return nil, err
			}
			return &ExprStmt{X: x}, p.expectPunct(";")
		default:
			// expression statement beginning with the identifier
			prim, err := p.primaryFromIdent(name, line)
			if err != nil {
				return nil, err
			}
			x, err := p.exprContinue(prim)
			if err != nil {
				return nil, err
			}
			return &ExprStmt{X: x}, p.expectPunct(";")
		}
	}
	return nil, p.errf("unexpected token %q at start of statement", p.tok.text)
}
