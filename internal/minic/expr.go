package minic

// Expression parsing: precedence climbing over the C-like operator table.

// binPrec maps binary operators to precedence (higher binds tighter).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	return p.binRHS(1, l)
}

// exprContinue resumes binary-operator parsing with an already-parsed left
// operand (used by the statement parser after its one-token lookahead).
func (p *parser) exprContinue(left Expr) (Expr, error) {
	return p.binRHS(1, left)
}

func (p *parser) binRHS(minPrec int, left Expr) (Expr, error) {
	for {
		op := p.tok.text
		prec, isBin := 0, false
		if p.tok.kind == tPunct {
			prec, isBin = binPrec[op], binPrec[op] > 0
		}
		if !isBin || prec < minPrec {
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		// bind tighter operators to the right operand first
		for p.tok.kind == tPunct && binPrec[p.tok.text] > prec {
			right, err = p.binRHS(binPrec[p.tok.text], right)
			if err != nil {
				return nil, err
			}
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) unary() (Expr, error) {
	switch {
	case p.isPunct("-") || p.isPunct("!") || p.isPunct("~"):
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x}, nil
	case p.isPunct("&"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &AddrExpr{Name: name, Line: line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.tok.kind == tNum:
		v := p.tok.val
		return &NumExpr{Val: v}, p.advance()
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return x, p.expectPunct(")")
	case p.tok.kind == tIdent:
		name := p.tok.text
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.primaryFromIdent(name, line)
	}
	return nil, p.errf("unexpected token %q in expression", p.tok.text)
}

// primaryFromIdent finishes a primary whose leading identifier has already
// been consumed: a call, an array read, or a plain variable.
func (p *parser) primaryFromIdent(name string, line int) (Expr, error) {
	switch {
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		call := &CallExpr{Name: name, Line: line}
		for !p.isPunct(")") {
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if !p.isPunct(")") {
				return nil, p.errf("expected ',' or ')' in call, got %q", p.tok.text)
			}
		}
		return call, p.advance()
	case p.isPunct("["):
		if err := p.advance(); err != nil {
			return nil, err
		}
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &IndexExpr{Name: name, Index: idx, Line: line}, p.expectPunct("]")
	}
	return &VarExpr{Name: name, Line: line}, nil
}
