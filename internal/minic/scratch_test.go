package minic_test

import (
	"strings"
	"testing"

	"sdt/internal/minic"
)

// The expression scratch allocator: call-free subtrees evaluate in
// registers; calls force stack spills; nesting past the register file
// spills too.

func TestCallFreeExpressionsAvoidStack(t *testing.T) {
	asmText, err := minic.Compile(`func main() { var a = 1; out (a+2)*(a+3); }`)
	if err != nil {
		t.Fatal(err)
	}
	// Only the function prologue/epilogue may touch sp.
	for _, line := range strings.Split(asmText, "\n") {
		l := strings.TrimSpace(line)
		if strings.HasPrefix(l, "push r8") || strings.HasPrefix(l, "pop r9") {
			t.Fatalf("call-free expression spilled to the stack:\n%s", asmText)
		}
	}
}

func TestCallsForceSpill(t *testing.T) {
	asmText, err := minic.Compile(`
		func f() { return 1; }
		func main() { out 2 + f(); }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, "push r8") {
		t.Errorf("value live across a call was not spilled:\n%s", asmText)
	}
}

func TestDeepNestingSpillsBeyondScratchFile(t *testing.T) {
	// Build an expression right-nested deeper than the 6 scratch
	// registers: ((((((((1+2)+3)... with each level holding a live left
	// value. Right-nesting ( a + ( b + ( c + ... maximizes live temps.
	expr := "x"
	for i := 0; i < 10; i++ {
		expr = "x + (" + expr + ")"
	}
	src := "func main() { var x = 3; out " + expr + "; }"
	asmText, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, "push r8") {
		t.Error("expected stack spills past the scratch file")
	}
	// And it must compute the right answer: x * 11 = 33.
	expect(t, src, 33)
}

func TestScratchCorrectnessStress(t *testing.T) {
	// Mixed depth, calls at various positions, array reads as operands.
	expect(t, `
	var a[4];
	func inc(x) { return x + 1; }
	func main() {
		a[0] = 5; a[1] = 7; a[2] = 11; a[3] = 13;
		out (a[0] + a[1]) * (a[2] + a[3]) + inc(a[0]) * (a[1] - inc(1));
		out inc(inc(inc(0))) + (a[3] - a[2]) * ((a[1] * a[0]) - inc(30));
	}`, (5+7)*(11+13)+6*(7-2), 3+(13-11)*((7*5)-31))
}
