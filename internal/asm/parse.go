package asm

import (
	"strings"

	"sdt/internal/isa"
	"sdt/internal/program"
)

// instruction parses one instruction or pseudo-instruction statement into
// zero or more items. Pseudo expansion happens here, in pass 1, so every
// statement has a fixed size before labels are resolved.
func (a *assembler) instruction(n int, s string) {
	if a.sec != secText {
		a.errorf(n, "instruction outside .text")
		return
	}
	mn, rest, _ := strings.Cut(s, " ")
	mn = strings.ToLower(mn)
	ops := splitOperands(rest)

	if a.pseudo(n, mn, ops) {
		return
	}

	op, ok := isa.OpByName[mn]
	if !ok {
		a.errorf(n, "unknown instruction %q", mn)
		return
	}
	it := item{line: n, inst: isa.Inst{Op: op}}
	switch op.Format() {
	case isa.FormatR:
		if !a.wantOps(n, mn, ops, 3) {
			return
		}
		it.inst.Rd = a.reg(n, ops[0])
		it.inst.Rs1 = a.reg(n, ops[1])
		it.inst.Rs2 = a.reg(n, ops[2])
	case isa.FormatI:
		switch {
		case op.IsLoad() || op.IsStore():
			if !a.wantOps(n, mn, ops, 2) {
				return
			}
			it.inst.Rd = a.reg(n, ops[0])
			base, off, ok := a.memOperand(n, ops[1])
			if !ok {
				return
			}
			it.inst.Rs1, it.inst.Imm = base, off
		case op == isa.LUI:
			if !a.wantOps(n, mn, ops, 2) {
				return
			}
			it.inst.Rd = a.reg(n, ops[0])
			v, ok := a.parseInt(n, ops[1])
			if !ok {
				return
			}
			if v < 0 || v > 0xffff {
				a.errorf(n, "lui immediate %d out of range [0,65535]", v)
				return
			}
			it.inst.Imm = int32(v)
		default:
			if !a.wantOps(n, mn, ops, 3) {
				return
			}
			it.inst.Rd = a.reg(n, ops[0])
			it.inst.Rs1 = a.reg(n, ops[1])
			imm, ok := a.imm16(n, ops[2], op)
			if !ok {
				return
			}
			it.inst.Imm = imm
		}
	case isa.FormatB:
		if !a.wantOps(n, mn, ops, 3) {
			return
		}
		it.inst.Rs1 = a.reg(n, ops[0])
		it.inst.Rs2 = a.reg(n, ops[1])
		if v, ok := a.tryParseInt(ops[2]); ok {
			it.inst.Imm = int32(v)
		} else if isIdent(ops[2]) {
			it.ref = ops[2]
		} else {
			a.errorf(n, "bad branch target %q", ops[2])
			return
		}
	case isa.FormatJ:
		if !a.wantOps(n, mn, ops, 1) {
			return
		}
		if v, ok := a.tryParseInt(ops[0]); ok {
			if v%isa.WordSize != 0 {
				a.errorf(n, "jump target %#x not word aligned", v)
				return
			}
			it.inst.Imm = int32(v / isa.WordSize)
		} else if isIdent(ops[0]) {
			it.ref = ops[0]
		} else {
			a.errorf(n, "bad jump target %q", ops[0])
			return
		}
	case isa.FormatS:
		if op == isa.HALT && len(ops) == 0 {
			// bare "halt": exit code register defaults to zero
		} else {
			if !a.wantOps(n, mn, ops, 1) {
				return
			}
			it.inst.Rs1 = a.reg(n, ops[0])
		}
	case isa.FormatN:
		if len(ops) != 0 {
			a.errorf(n, "%s takes no operands", mn)
			return
		}
	}
	a.items = append(a.items, it)
}

// pseudo expands pseudo-instructions; it reports whether mn was one.
func (a *assembler) pseudo(n int, mn string, ops []string) bool {
	emit := func(in isa.Inst) { a.items = append(a.items, item{line: n, inst: in}) }
	switch mn {
	case "li", "la":
		if !a.wantOps(n, mn, ops, 2) {
			return true
		}
		rd := a.reg(n, ops[0])
		if v, ok := a.tryParseInt(ops[1]); ok {
			if v < -(1<<31) || v > (1<<32)-1 {
				a.errorf(n, "li value %d does not fit in 32 bits", v)
				return true
			}
			hi, lo := v>>16&0xffff, v&0xffff
			if lo&0x8000 != 0 {
				// XORI sign-extends its imm16; pre-complement the high
				// half so the extension cancels out.
				emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(hi ^ 0xffff)})
				emit(isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rd, Imm: int32(int16(lo))})
			} else {
				emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(hi)})
				emit(isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32(lo)})
			}
		} else if base, _, ok := parseLabelExpr(ops[1]); ok && base != "" {
			a.items = append(a.items,
				item{line: n, inst: isa.Inst{Op: isa.LUI, Rd: rd}, ref: ops[1], refHi: true},
				item{line: n, inst: isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rd}, ref: ops[1], refLo: true})
		} else {
			a.errorf(n, "bad %s operand %q", mn, ops[1])
		}
		return true
	case "mov":
		if a.wantOps(n, mn, ops, 2) {
			emit(isa.Inst{Op: isa.ADDI, Rd: a.reg(n, ops[0]), Rs1: a.reg(n, ops[1])})
		}
		return true
	case "neg":
		if a.wantOps(n, mn, ops, 2) {
			emit(isa.Inst{Op: isa.SUB, Rd: a.reg(n, ops[0]), Rs2: a.reg(n, ops[1])})
		}
		return true
	case "not":
		if a.wantOps(n, mn, ops, 2) {
			emit(isa.Inst{Op: isa.XORI, Rd: a.reg(n, ops[0]), Rs1: a.reg(n, ops[1]), Imm: -1})
		}
		return true
	case "subi":
		if a.wantOps(n, mn, ops, 3) {
			imm, ok := a.imm16(n, ops[2], isa.ADDI)
			if ok {
				emit(isa.Inst{Op: isa.ADDI, Rd: a.reg(n, ops[0]), Rs1: a.reg(n, ops[1]), Imm: -imm})
			}
		}
		return true
	case "beqz", "bnez":
		if a.wantOps(n, mn, ops, 2) {
			op := isa.BEQ
			if mn == "bnez" {
				op = isa.BNE
			}
			a.items = append(a.items, item{line: n,
				inst: isa.Inst{Op: op, Rs1: a.reg(n, ops[0])}, ref: ops[1]})
		}
		return true
	case "bgt", "ble", "bgtu", "bleu":
		if a.wantOps(n, mn, ops, 3) {
			var op isa.Op
			switch mn {
			case "bgt":
				op = isa.BLT
			case "ble":
				op = isa.BGE
			case "bgtu":
				op = isa.BLTU
			case "bleu":
				op = isa.BGEU
			}
			a.items = append(a.items, item{line: n,
				inst: isa.Inst{Op: op, Rs1: a.reg(n, ops[1]), Rs2: a.reg(n, ops[0])}, ref: ops[2]})
		}
		return true
	case "push":
		if a.wantOps(n, mn, ops, 1) {
			emit(isa.Inst{Op: isa.ADDI, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: -4})
			emit(isa.Inst{Op: isa.SW, Rd: a.reg(n, ops[0]), Rs1: isa.RegSP})
		}
		return true
	case "pop":
		if a.wantOps(n, mn, ops, 1) {
			emit(isa.Inst{Op: isa.LW, Rd: a.reg(n, ops[0]), Rs1: isa.RegSP})
			emit(isa.Inst{Op: isa.ADDI, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: 4})
		}
		return true
	case "call":
		if a.wantOps(n, mn, ops, 1) {
			a.items = append(a.items, item{line: n, inst: isa.Inst{Op: isa.JAL}, ref: ops[0]})
		}
		return true
	case "b":
		if a.wantOps(n, mn, ops, 1) {
			a.items = append(a.items, item{line: n, inst: isa.Inst{Op: isa.JMP}, ref: ops[0]})
		}
		return true
	}
	return false
}

func (a *assembler) wantOps(n int, mn string, ops []string, want int) bool {
	if len(ops) != want {
		a.errorf(n, "%s wants %d operands, got %d", mn, want, len(ops))
		return false
	}
	return true
}

func (a *assembler) reg(n int, s string) isa.Reg {
	r, ok := isa.RegByName(strings.ToLower(strings.TrimSpace(s)))
	if !ok {
		a.errorf(n, "bad register %q", s)
		return 0
	}
	return r
}

func (a *assembler) imm16(n int, s string, op isa.Op) (int32, bool) {
	v, ok := a.tryParseInt(s)
	if !ok {
		a.errorf(n, "bad immediate %q", s)
		return 0, false
	}
	switch op {
	case isa.SLLI, isa.SRLI, isa.SRAI:
		if v < 0 || v > 31 {
			a.errorf(n, "shift amount %d out of range [0,31]", v)
			return 0, false
		}
	case isa.ANDI, isa.ORI, isa.XORI:
		if v < -32768 || v > 65535 {
			a.errorf(n, "immediate %d out of range", v)
			return 0, false
		}
		// Values in [32768,65535] are expressed as their sign-extended
		// 16-bit pattern; the machine sign-extends, so only the low 16
		// bits matter for bitwise ops... but sign extension changes the
		// result. Restrict to the representable signed range instead.
		if v > 32767 {
			a.errorf(n, "immediate %d not representable (imm16 is sign-extended)", v)
			return 0, false
		}
	default:
		if v < -32768 || v > 32767 {
			a.errorf(n, "immediate %d out of range [-32768,32767]", v)
			return 0, false
		}
	}
	return int32(v), true
}

// memOperand parses "off(reg)" or "(reg)".
func (a *assembler) memOperand(n int, s string) (isa.Reg, int32, bool) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		a.errorf(n, "bad memory operand %q, want off(reg)", s)
		return 0, 0, false
	}
	var off int64
	if offStr := strings.TrimSpace(s[:open]); offStr != "" {
		var ok bool
		off, ok = a.tryParseInt(offStr)
		if !ok || off < -32768 || off > 32767 {
			a.errorf(n, "bad memory offset %q", offStr)
			return 0, 0, false
		}
	}
	r := a.reg(n, s[open+1:len(s)-1])
	return r, int32(off), true
}

// finish is pass 2: resolve labels, emit code words, fix data refs and
// assemble the final image.
func (a *assembler) finish() {
	dataBase := uint32(program.CodeBase + len(a.items)*isa.WordSize)
	addrOf := func(name string) (uint32, bool) {
		l, ok := a.labels[name]
		if !ok {
			return 0, false
		}
		if l.sec == secText {
			return program.CodeBase + l.off*isa.WordSize, true
		}
		return dataBase + l.off, true
	}

	for i := range a.items {
		it := &a.items[i]
		if it.ref == "" {
			continue
		}
		base, add, _ := parseLabelExpr(it.ref)
		addr, ok := addrOf(base)
		if !ok {
			a.errorf(it.line, "undefined label %q", base)
			continue
		}
		addr += uint32(add)
		switch {
		case it.refHi:
			hi := addr >> 16
			if addr&0x8000 != 0 {
				// The paired XORI sign-extends; see the li expansion.
				hi ^= 0xffff
			}
			it.inst.Imm = int32(hi)
		case it.refLo:
			it.inst.Imm = int32(int16(addr & 0xffff))
		case it.inst.Op.IsBranch():
			here := uint32(program.CodeBase + i*isa.WordSize)
			delta := (int64(addr) - int64(here)) / isa.WordSize
			if delta < -32768 || delta > 32767 {
				a.errorf(it.line, "branch to %q out of range (%d words)", it.ref, delta)
				continue
			}
			it.inst.Imm = int32(delta)
		default: // JMP/JAL
			it.inst.Imm = int32(addr / isa.WordSize)
		}
	}

	for _, ref := range a.dataRefs {
		addr, ok := addrOf(ref.name)
		if !ok {
			a.errorf(ref.line, "undefined label %q", ref.name)
			continue
		}
		addr += uint32(ref.add)
		a.data[ref.off] = byte(addr)
		a.data[ref.off+1] = byte(addr >> 8)
		a.data[ref.off+2] = byte(addr >> 16)
		a.data[ref.off+3] = byte(addr >> 24)
	}

	entryName := a.entry
	if entryName == "" {
		entryName = "main"
	}
	if addr, ok := addrOf(entryName); ok {
		a.img.Entry = addr
	} else if a.entry == "" && len(a.items) > 0 {
		a.img.Entry = program.CodeBase
	} else {
		a.errorf(0, "entry label %q not defined", entryName)
	}

	if len(a.errs) > 0 {
		return
	}
	a.img.Code = make([]uint32, len(a.items))
	for i, it := range a.items {
		a.img.Code[i] = isa.Encode(it.inst)
	}
	a.img.Data = a.data
	for name, l := range a.labels {
		if l.sec == secText {
			a.img.Symbols[name] = program.CodeBase + l.off*isa.WordSize
		} else {
			a.img.Symbols[name] = dataBase + l.off
		}
	}
	if err := a.img.Validate(); err != nil {
		a.errorf(0, "invalid image: %v", err)
	}
}
