// Package asm implements a two-pass assembler for SimRISC-32.
//
// Syntax overview (full grammar in the package tests and README):
//
//	; comment        # comment        // comment
//	.name "prog"     image name
//	.mem  1048576    guest memory size in bytes
//	.entry main      entry symbol (default: "main", else first instruction)
//	.text / .data    section switch (default .text)
//	label:           define a symbol at the current location
//	add rd, rs1, rs2
//	addi rd, rs1, -4
//	lw rd, 8(rs1)    sw rd, off(rs1)
//	beq rs1, rs2, label
//	jmp label        jal label        jr rs1      ret
//	.word e, e, ...  32-bit data words (labels allowed)
//	.byte b, b, ...  .space N         .ascii "s"     .align N
//
// Pseudo-instructions (expanded in pass 1 with fixed sizes):
//
//	li rd, imm32     -> lui+ori (always two instructions)
//	la rd, label     -> lui+ori
//	mov rd, rs       -> addi rd, rs, 0
//	neg rd, rs       -> sub rd, zero, rs
//	not rd, rs       -> xori rd, rs, -1
//	subi rd, rs, imm -> addi rd, rs, -imm
//	beqz/bnez rs, l  -> beq/bne rs, zero, l
//	bgt/ble a, b, l  -> blt/bge b, a, l
//	bgtu/bleu a,b,l  -> bltu/bgeu b, a, l
//	push rs          -> subi sp,sp,4 ; sw rs,0(sp)
//	pop rd           -> lw rd,0(sp) ; addi sp,sp,4
//	call l           -> jal l
package asm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"sdt/internal/isa"
	"sdt/internal/program"
)

// Error describes an assembly failure at a specific source line.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

// ErrorList is the non-empty set of errors from one assembly.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 1 {
		return l[0].Error()
	}
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Assemble translates SimRISC-32 assembly source into a program image.
// name is used for error messages and as the default image name.
func Assemble(name, src string) (*program.Image, error) {
	a := &assembler{file: name, img: &program.Image{Name: name, Symbols: map[string]uint32{}}}
	a.run(src)
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	return a.img, nil
}

type section int

const (
	secText section = iota
	secData
)

// item is one parsed statement awaiting pass 2.
type item struct {
	line  int
	inst  isa.Inst // instruction template (ops with label refs carry ref)
	ref   string   // unresolved label operand, "" if none
	refHi bool     // ref resolves to high half (lui of la/li expansion)
	refLo bool     // ref resolves to low half
}

type assembler struct {
	file  string
	img   *program.Image
	errs  ErrorList
	entry string

	sec      section
	items    []item           // code statements
	data     []byte           // data bytes
	dataRefs []dataRef        // label references inside .word data
	labels   map[string]label // name -> location
	seen     map[string]int   // label name -> defining line
}

type label struct {
	sec section
	off uint32 // instruction index (text) or byte offset (data)
}

type dataRef struct {
	line int
	off  uint32 // byte offset in data
	name string
	add  int32
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, &Error{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

func (a *assembler) run(src string) {
	a.labels = make(map[string]label)
	a.seen = make(map[string]int)
	for i, raw := range strings.Split(src, "\n") {
		a.line(i+1, raw)
	}
	if len(a.errs) > 0 {
		return
	}
	a.finish()
}

// stripComment removes ;, # and // comments, respecting string literals.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inStr = !inStr
		case inStr && c == '\\':
			i++
		case !inStr && (c == ';' || c == '#'):
			return s[:i]
		case !inStr && c == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func (a *assembler) line(n int, raw string) {
	s := strings.TrimSpace(stripComment(raw))
	for {
		colon := strings.Index(s, ":")
		if colon < 0 {
			break
		}
		name := strings.TrimSpace(s[:colon])
		if !isIdent(name) {
			a.errorf(n, "invalid label name %q", name)
			return
		}
		a.defineLabel(n, name)
		s = strings.TrimSpace(s[colon+1:])
	}
	if s == "" {
		return
	}
	if strings.HasPrefix(s, ".") {
		a.directive(n, s)
		return
	}
	a.instruction(n, s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '$':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) defineLabel(n int, name string) {
	if prev, dup := a.seen[name]; dup {
		a.errorf(n, "label %q already defined at line %d", name, prev)
		return
	}
	a.seen[name] = n
	if a.sec == secText {
		a.labels[name] = label{secText, uint32(len(a.items))}
	} else {
		a.labels[name] = label{secData, uint32(len(a.data))}
	}
}

func (a *assembler) directive(n int, s string) {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".name":
		v, err := strconv.Unquote(rest)
		if err != nil {
			a.errorf(n, ".name wants a quoted string: %v", err)
			return
		}
		a.img.Name = v
	case ".entry":
		if !isIdent(rest) {
			a.errorf(n, ".entry wants a label name, got %q", rest)
			return
		}
		a.entry = rest
	case ".mem":
		v, ok := a.parseInt(n, rest)
		if !ok {
			return
		}
		if v <= 0 || uint64(v) > program.MaxGuestAddr {
			a.errorf(n, ".mem size %d out of range", v)
			return
		}
		a.img.MemSize = uint32(v)
	case ".word":
		if a.sec != secData {
			a.errorf(n, ".word only allowed in .data")
			return
		}
		for _, f := range splitOperands(rest) {
			if v, ok := a.tryParseInt(f); ok {
				var b [4]byte
				binary.LittleEndian.PutUint32(b[:], uint32(v))
				a.data = append(a.data, b[:]...)
			} else if base, add, ok := parseLabelExpr(f); ok {
				a.dataRefs = append(a.dataRefs, dataRef{n, uint32(len(a.data)), base, add})
				a.data = append(a.data, 0, 0, 0, 0)
			} else {
				a.errorf(n, "bad .word operand %q", f)
			}
		}
	case ".byte":
		if a.sec != secData {
			a.errorf(n, ".byte only allowed in .data")
			return
		}
		for _, f := range splitOperands(rest) {
			v, ok := a.parseInt(n, f)
			if !ok {
				return
			}
			if v < -128 || v > 255 {
				a.errorf(n, ".byte value %d out of range", v)
				return
			}
			a.data = append(a.data, byte(v))
		}
	case ".space":
		if a.sec != secData {
			a.errorf(n, ".space only allowed in .data")
			return
		}
		v, ok := a.parseInt(n, rest)
		if !ok {
			return
		}
		if v < 0 || v > 64<<20 {
			a.errorf(n, ".space size %d out of range", v)
			return
		}
		// Bound the running total, not just each directive: unchecked
		// growth makes repeated .space lines quadratic in allocation.
		if int64(len(a.data))+v > 64<<20 {
			a.errorf(n, ".space grows data section past 64 MiB (already %d bytes)", len(a.data))
			return
		}
		a.data = append(a.data, make([]byte, v)...)
	case ".ascii":
		if a.sec != secData {
			a.errorf(n, ".ascii only allowed in .data")
			return
		}
		v, err := strconv.Unquote(rest)
		if err != nil {
			a.errorf(n, ".ascii wants a quoted string: %v", err)
			return
		}
		a.data = append(a.data, v...)
	case ".align":
		if a.sec != secData {
			a.errorf(n, ".align only allowed in .data")
			return
		}
		v, ok := a.parseInt(n, rest)
		if !ok {
			return
		}
		if v <= 0 || v > 4096 || v&(v-1) != 0 {
			a.errorf(n, ".align wants a power of two in (0,4096], got %d", v)
			return
		}
		for uint32(len(a.data))%uint32(v) != 0 {
			a.data = append(a.data, 0)
		}
	default:
		a.errorf(n, "unknown directive %s", name)
	}
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseLabelExpr parses "label" or "label+N" / "label-N".
func parseLabelExpr(s string) (base string, add int32, ok bool) {
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			v, err := strconv.ParseInt(s[i:], 0, 32)
			if err != nil {
				return "", 0, false
			}
			base = strings.TrimSpace(s[:i])
			if !isIdent(base) {
				return "", 0, false
			}
			return base, int32(v), true
		}
	}
	if !isIdent(s) {
		return "", 0, false
	}
	return s, 0, true
}

func (a *assembler) parseInt(n int, s string) (int64, bool) {
	v, ok := a.tryParseInt(s)
	if !ok {
		a.errorf(n, "bad integer %q", s)
	}
	return v, ok
}

func (a *assembler) tryParseInt(s string) (int64, bool) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		r, _, _, err := strconv.UnquoteChar(s[1:len(s)-1], '\'')
		if err != nil {
			return 0, false
		}
		return int64(r), true
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
