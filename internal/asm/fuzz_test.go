package asm_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/randprog"
)

// FuzzAssemble: on arbitrary source the assembler must either return a
// structured ErrorList or produce a valid image whose disassembly
// reassembles to exactly the same code words — assemble -> disassemble ->
// reassemble is a fixed point or a clean error, never a panic and never
// drift.
func FuzzAssemble(f *testing.F) {
	f.Add("main: halt\n")
	f.Add("main:\n\tadd r1, r2, r3\n\tbeq r1, r2, main\n\thalt\n")
	f.Add(".data\nx: .word 1, 2, main+4\n.text\nmain: la r1, x\n jr r1\n")
	f.Add("main: li r1, 0xdeadbeef\n push r1\n pop r2\n ret\n")
	f.Add(".mem 99999\n.entry foo\nfoo: out zero\n halt\n")
	f.Add("label: label2: .ascii \"x;y\"\n")
	f.Add("main:\n\tli r9, 42\n\tout r9\n\thalt\n")
	f.Add("main:\n\tcall f\n\thalt\nf:\n\tmov r9, ra\n\tret\n")
	f.Add("main:\n\tla r1, t\n\tlw r2, (r1)\n\tjr r2\nt:\n\thalt\n.data\n\t.word t\n")
	f.Add("start:\n\tbeq r1, r2, start\n\taddi r1, r1, -2048\n\tsb r1, 4095(r3)\n\thalt\n")
	f.Add(randprog.Generate(randprog.Config{Seed: 3, Funcs: 2, BlocksPerFunc: 2, Iterations: 2}))

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		img, err := asm.Assemble("fuzz.s", src)
		if err != nil {
			var list asm.ErrorList
			if !errors.As(err, &list) || len(list) == 0 {
				t.Fatalf("assembler returned unstructured error %T: %v", err, err)
			}
			return
		}
		if err := img.Validate(); err != nil {
			t.Fatalf("accepted program fails Validate: %v", err)
		}
		var listing bytes.Buffer
		if err := img.Disassemble(&listing); err != nil {
			t.Fatalf("image does not disassemble: %v", err)
		}
		re := instructionColumn(listing.String())
		back, err := asm.Assemble("reassembled.s", re)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\nsource:\n%s\nlisting:\n%s", err, src, re)
		}
		if len(back.Code) != len(img.Code) {
			t.Fatalf("reassembled %d words, want %d", len(back.Code), len(img.Code))
		}
		for i := range img.Code {
			if back.Code[i] != img.Code[i] {
				t.Fatalf("word %d: reassembled %#x, want %#x (%s)", i, back.Code[i], img.Code[i], src)
			}
		}
	})
}

// instructionColumn extracts the assembly text column from a listing,
// the inverse-input format the round-trip property feeds back in.
func instructionColumn(listing string) string {
	var re strings.Builder
	for _, line := range strings.Split(listing, "\n") {
		if !strings.Contains(line, ":  ") {
			continue // label lines
		}
		parts := strings.SplitN(line, "  ", 4)
		if len(parts) == 4 {
			re.WriteString(parts[3])
			re.WriteByte('\n')
		}
	}
	return re.String()
}
