package asm_test

import (
	"strings"
	"testing"

	"sdt/internal/asm"
)

// Error-path coverage for directives and operand forms not exercised by
// the main test file.
func TestDirectiveErrorPaths(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"bad name string", `.name unquoted` + "\nmain: halt\n", "quoted string"},
		{"bad entry", `.entry 9bad` + "\nmain: halt\n", ".entry wants a label"},
		{"bad mem", `.mem lots` + "\nmain: halt\n", "bad integer"},
		{"mem zero", `.mem 0` + "\nmain: halt\n", "out of range"},
		{"mem huge", `.mem 0x80000000` + "\nmain: halt\n", "out of range"},
		{"byte range", "main: halt\n.data\n.byte 300\n", "out of range"},
		{"byte bad", "main: halt\n.data\n.byte x\n", "bad integer"},
		{"space negative", "main: halt\n.data\n.space -1\n", "out of range"},
		{"space huge", "main: halt\n.data\n.space 999999999\n", "out of range"},
		{"ascii unquoted", "main: halt\n.data\n.ascii hi\n", "quoted string"},
		{"align zero", "main: halt\n.data\n.align 0\n", "power of two"},
		{"align odd", "main: halt\n.data\n.align 3\n", "power of two"},
		{"byte outside data", "main: halt\n.byte 1\n", "only allowed in .data"},
		{"space outside data", "main: halt\n.space 4\n", "only allowed in .data"},
		{"ascii outside data", "main: halt\n.ascii \"x\"\n", "only allowed in .data"},
		{"align outside data", "main: halt\n.align 4\n", "only allowed in .data"},
		{"word bad operand", "main: halt\n.data\n.word 1+2\n", "bad .word operand"},
		{"word undefined label", "main: halt\n.data\n.word nowhere\n", "undefined label"},
		{"label expr bad offset", "main: halt\n.data\n.word main+x\n", "bad .word operand"},
		{"jump misaligned literal", "main: jmp 0x1002\n", "not word aligned"},
		{"bad jmp target", "main: jmp 1x\n", "bad jump target"},
		{"mem operand missing paren", "main: lw r1, 4[r2]\n", "memory operand"},
		{"mem offset range", "main: lw r1, 99999(r2)\n", "bad memory offset"},
		{"store imm range", "main: sw r1, 99999(r2)\n", "bad memory offset"},
		{"lui negative", "main: lui r1, -1\n", "out of range"},
		{"li too big", "main: li r1, 0x1ffffffff\n", "does not fit"},
		{"li garbage", "main: li r1, @@\n", "bad li operand"},
		{"branch imm overflow", "main: beq r1, r2, 99999\n", ""},
		{"out needs operand", "main: out\n", "wants 1 operands"},
		{"jr needs operand", "main: jr\n", "wants 1 operands"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := asm.Assemble("t.s", tt.src)
			if tt.wantSub == "" {
				return // only checking it does not panic
			}
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestBranchRangeEnforced(t *testing.T) {
	// A branch across >32767 words must be rejected at assembly.
	var b strings.Builder
	b.WriteString("main: beq r1, r2, far\n")
	for i := 0; i < 33000; i++ {
		b.WriteString("\tnop\n")
	}
	b.WriteString("far: halt\n")
	_, err := asm.Assemble("t.s", b.String())
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v, want branch-range error", err)
	}
}

func TestImageValidationSurfaced(t *testing.T) {
	// An image whose code+data exceed .mem must fail at the final check.
	src := ".mem 0x2000\nmain: halt\n.data\n.space 0x3000\n"
	_, err := asm.Assemble("t.s", src)
	if err == nil || !strings.Contains(err.Error(), "invalid image") {
		t.Errorf("err = %v, want invalid image", err)
	}
}

func TestErrorTypeFields(t *testing.T) {
	_, err := asm.Assemble("file.s", "main: frob\n")
	el, ok := err.(asm.ErrorList)
	if !ok || len(el) != 1 {
		t.Fatalf("err = %T %v", err, err)
	}
	if el[0].File != "file.s" || el[0].Line != 1 {
		t.Errorf("error position = %s:%d", el[0].File, el[0].Line)
	}
	if !strings.Contains(el.Error(), "file.s:1:") {
		t.Errorf("formatted error = %q", el.Error())
	}
}
