package asm_test

import (
	"bytes"
	"strings"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/randprog"
	"sdt/internal/workload"
)

// TestDisassemblyReassembles is the encoder/decoder/assembler coherence
// property: disassembling any program and feeding the instruction text
// back through the assembler must reproduce the original code words
// exactly. (Numeric jump targets, branch offsets and immediates all
// round-trip through the textual syntax.)
func TestDisassemblyReassembles(t *testing.T) {
	var sources []string
	for _, name := range workload.Names() {
		s, _ := workload.Get(name)
		sources = append(sources, s.Generate(2))
	}
	for seed := int64(1); seed <= 5; seed++ {
		sources = append(sources, randprog.Generate(randprog.Default(seed)))
	}
	for i, src := range sources {
		img, err := asm.Assemble("orig.s", src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		var listing bytes.Buffer
		if err := img.Disassemble(&listing); err != nil {
			t.Fatal(err)
		}
		// Extract the instruction column: "  %08x:  %08x  <asm>".
		var re strings.Builder
		for _, line := range strings.Split(listing.String(), "\n") {
			if !strings.Contains(line, ":  ") {
				continue // label lines
			}
			parts := strings.SplitN(line, "  ", 4)
			if len(parts) == 4 {
				re.WriteString(parts[3])
				re.WriteByte('\n')
			}
		}
		back, err := asm.Assemble("reassembled.s", re.String())
		if err != nil {
			t.Fatalf("source %d: reassembly failed: %v\nfirst lines:\n%s",
				i, err, head(re.String(), 5))
		}
		if len(back.Code) != len(img.Code) {
			t.Fatalf("source %d: %d words reassembled, want %d", i, len(back.Code), len(img.Code))
		}
		for j := range img.Code {
			if back.Code[j] != img.Code[j] {
				t.Fatalf("source %d: word %d = %#x, want %#x", i, j, back.Code[j], img.Code[j])
			}
		}
	}
}

func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// FuzzAssemble: the assembler must reject or accept arbitrary input
// without panicking, and anything it accepts must produce a valid image.
func FuzzAssemble(f *testing.F) {
	f.Add("main: halt\n")
	f.Add("main:\n\tadd r1, r2, r3\n\tbeq r1, r2, main\n\thalt\n")
	f.Add(".data\nx: .word 1, 2, main+4\n.text\nmain: la r1, x\n jr r1\n")
	f.Add("main: li r1, 0xdeadbeef\n push r1\n pop r2\n ret\n")
	f.Add(".mem 99999\n.entry foo\nfoo: out zero\n halt\n")
	f.Add("label: label2: .ascii \"x;y\"\n")
	f.Fuzz(func(t *testing.T, src string) {
		img, err := asm.Assemble("fuzz.s", src)
		if err != nil {
			return
		}
		if err := img.Validate(); err != nil {
			t.Errorf("accepted program fails Validate: %v", err)
		}
	})
}
