package asm_test

import (
	"bytes"
	"strings"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/randprog"
	"sdt/internal/workload"
)

// TestDisassemblyReassembles is the encoder/decoder/assembler coherence
// property: disassembling any program and feeding the instruction text
// back through the assembler must reproduce the original code words
// exactly. (Numeric jump targets, branch offsets and immediates all
// round-trip through the textual syntax.)
func TestDisassemblyReassembles(t *testing.T) {
	var sources []string
	for _, name := range workload.Names() {
		s, _ := workload.Get(name)
		sources = append(sources, s.Generate(2))
	}
	for seed := int64(1); seed <= 5; seed++ {
		sources = append(sources, randprog.Generate(randprog.Default(seed)))
	}
	for i, src := range sources {
		img, err := asm.Assemble("orig.s", src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		var listing bytes.Buffer
		if err := img.Disassemble(&listing); err != nil {
			t.Fatal(err)
		}
		// Extract the instruction column: "  %08x:  %08x  <asm>".
		var re strings.Builder
		for _, line := range strings.Split(listing.String(), "\n") {
			if !strings.Contains(line, ":  ") {
				continue // label lines
			}
			parts := strings.SplitN(line, "  ", 4)
			if len(parts) == 4 {
				re.WriteString(parts[3])
				re.WriteByte('\n')
			}
		}
		back, err := asm.Assemble("reassembled.s", re.String())
		if err != nil {
			t.Fatalf("source %d: reassembly failed: %v\nfirst lines:\n%s",
				i, err, head(re.String(), 5))
		}
		if len(back.Code) != len(img.Code) {
			t.Fatalf("source %d: %d words reassembled, want %d", i, len(back.Code), len(img.Code))
		}
		for j := range img.Code {
			if back.Code[j] != img.Code[j] {
				t.Fatalf("source %d: word %d = %#x, want %#x", i, j, back.Code[j], img.Code[j])
			}
		}
	}
}

func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
