package asm

import (
	"strings"
	"testing"

	"sdt/internal/isa"
	"sdt/internal/program"
)

func mustAssemble(t *testing.T, src string) *program.Image {
	t.Helper()
	img, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return img
}

func decodeAll(img *program.Image) []isa.Inst {
	out := make([]isa.Inst, len(img.Code))
	for i, w := range img.Code {
		out[i] = isa.Decode(w)
	}
	return out
}

func TestBasicProgram(t *testing.T) {
	img := mustAssemble(t, `
		; a trivial program
		main:
			addi r1, zero, 42   # meaning of life
			out r1
			halt
	`)
	ins := decodeAll(img)
	want := []isa.Inst{
		{Op: isa.ADDI, Rd: 1, Imm: 42},
		{Op: isa.OUT, Rs1: 1},
		{Op: isa.HALT},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(ins), len(want))
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, ins[i], want[i])
		}
	}
	if img.Entry != program.CodeBase {
		t.Errorf("entry = %#x, want %#x", img.Entry, program.CodeBase)
	}
}

func TestAllFormats(t *testing.T) {
	img := mustAssemble(t, `
		main:
			add r1, r2, r3
			slli r4, r5, 3
			lw r6, 8(sp)
			sw r6, -4(fp)
			lb r7, (r8)
			lui r9, 65535
			beq r1, r2, main
			jmp main
			jal main
			jr r10
			callr r11
			ret
			out r1
			halt r4
			nop
	`)
	ins := decodeAll(img)
	checks := []isa.Inst{
		{Op: isa.ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.SLLI, Rd: 4, Rs1: 5, Imm: 3},
		{Op: isa.LW, Rd: 6, Rs1: isa.RegSP, Imm: 8},
		{Op: isa.SW, Rd: 6, Rs1: isa.RegFP, Imm: -4},
		{Op: isa.LB, Rd: 7, Rs1: 8, Imm: 0},
		{Op: isa.LUI, Rd: 9, Imm: -1}, // 0xffff sign-extends on decode
		{Op: isa.BEQ, Rs1: 1, Rs2: 2, Imm: -6},
		{Op: isa.JMP, Imm: program.CodeBase / 4},
		{Op: isa.JAL, Imm: program.CodeBase / 4},
		{Op: isa.JR, Rs1: 10},
		{Op: isa.CALLR, Rs1: 11},
		{Op: isa.RET},
		{Op: isa.OUT, Rs1: 1},
		{Op: isa.HALT, Rs1: 4},
		{Op: isa.NOP},
	}
	for i, want := range checks {
		if ins[i] != want {
			t.Errorf("inst %d = %+v, want %+v", i, ins[i], want)
		}
	}
}

func TestBranchOffsets(t *testing.T) {
	img := mustAssemble(t, `
		main:
			beq r1, r2, fwd
			nop
			nop
		fwd:
			bne r1, r2, main
	`)
	ins := decodeAll(img)
	if ins[0].Imm != 3 {
		t.Errorf("forward branch imm = %d, want 3", ins[0].Imm)
	}
	if ins[3].Imm != -3 {
		t.Errorf("backward branch imm = %d, want -3", ins[3].Imm)
	}
}

func TestLiExpansion(t *testing.T) {
	tests := []struct {
		val  string
		want uint32
	}{
		{"42", 42},
		{"0x12345678", 0x12345678},
		{"0xdeadbeef", 0xdeadbeef}, // low half has sign bit set
		{"-1", 0xffffffff},
		{"0x8000", 0x8000},
		{"0xffff", 0xffff},
		{"0x7fff", 0x7fff},
		{"0x10000", 0x10000},
		{"-32768", 0xffff8000},
	}
	for _, tt := range tests {
		img := mustAssemble(t, "main:\n li r1, "+tt.val+"\n halt\n")
		ins := decodeAll(img)
		if len(ins) != 3 {
			t.Fatalf("li %s: got %d instructions, want 3", tt.val, len(ins))
		}
		// Simulate the two-instruction sequence.
		var r1 uint32
		for _, in := range ins[:2] {
			switch in.Op {
			case isa.LUI:
				r1 = uint32(in.Imm) << 16
			case isa.ORI:
				r1 |= uint32(in.Imm)
			case isa.XORI:
				r1 ^= uint32(in.Imm)
			default:
				t.Fatalf("li %s: unexpected op %v", tt.val, in.Op)
			}
		}
		if r1 != tt.want {
			t.Errorf("li %s = %#x, want %#x", tt.val, r1, tt.want)
		}
	}
}

func TestLaResolvesDataLabels(t *testing.T) {
	img := mustAssemble(t, `
		main:
			la r1, table
			lw r2, (r1)
			halt
		.data
		table:
			.word 7, 8, 9
	`)
	want := img.Symbols["table"]
	if want != img.DataBase() {
		t.Fatalf("table symbol = %#x, want DataBase %#x", want, img.DataBase())
	}
	ins := decodeAll(img)
	var r1 uint32
	for _, in := range ins[:2] {
		switch in.Op {
		case isa.LUI:
			r1 = uint32(in.Imm) << 16
		case isa.XORI:
			r1 ^= uint32(in.Imm)
		}
	}
	if r1 != want {
		t.Errorf("la produced %#x, want %#x", r1, want)
	}
}

func TestDataDirectives(t *testing.T) {
	img := mustAssemble(t, `
		main: halt
		.data
		a: .word 1, 0x10, -1
		b: .byte 1, 2, 255
		   .align 4
		c: .space 8
		d: .ascii "hi\n"
	`)
	d := img.Data
	if len(d) != 12+3+1+8+3 {
		t.Fatalf("data length = %d", len(d))
	}
	if d[0] != 1 || d[4] != 0x10 || d[8] != 0xff || d[11] != 0xff {
		t.Errorf("words wrong: % x", d[:12])
	}
	if d[12] != 1 || d[14] != 255 {
		t.Errorf("bytes wrong: % x", d[12:15])
	}
	if img.Symbols["c"]-img.DataBase() != 16 {
		t.Errorf("c offset = %d, want 16 (aligned)", img.Symbols["c"]-img.DataBase())
	}
	if string(d[24:27]) != "hi\n" {
		t.Errorf("ascii wrong: %q", d[24:27])
	}
}

func TestWordLabelRefs(t *testing.T) {
	img := mustAssemble(t, `
		main:
			halt
		.data
		tbl: .word main, tbl, tbl+4
	`)
	d := img.Data
	get := func(i int) uint32 {
		return uint32(d[i]) | uint32(d[i+1])<<8 | uint32(d[i+2])<<16 | uint32(d[i+3])<<24
	}
	if get(0) != img.Entry {
		t.Errorf("tbl[0] = %#x, want entry %#x", get(0), img.Entry)
	}
	if get(4) != img.Symbols["tbl"] {
		t.Errorf("tbl[1] = %#x, want %#x", get(4), img.Symbols["tbl"])
	}
	if get(8) != img.Symbols["tbl"]+4 {
		t.Errorf("tbl[2] = %#x, want %#x", get(8), img.Symbols["tbl"]+4)
	}
}

func TestPseudoInstructions(t *testing.T) {
	img := mustAssemble(t, `
		main:
			mov r1, r2
			neg r3, r4
			not r5, r6
			subi r7, r8, 10
			push r1
			pop r2
			call main
			b main
	`)
	ins := decodeAll(img)
	want := []isa.Inst{
		{Op: isa.ADDI, Rd: 1, Rs1: 2},
		{Op: isa.SUB, Rd: 3, Rs2: 4},
		{Op: isa.XORI, Rd: 5, Rs1: 6, Imm: -1},
		{Op: isa.ADDI, Rd: 7, Rs1: 8, Imm: -10},
		{Op: isa.ADDI, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: -4},
		{Op: isa.SW, Rd: 1, Rs1: isa.RegSP},
		{Op: isa.LW, Rd: 2, Rs1: isa.RegSP},
		{Op: isa.ADDI, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: 4},
		{Op: isa.JAL, Imm: program.CodeBase / 4},
		{Op: isa.JMP, Imm: program.CodeBase / 4},
	}
	for i, w := range want {
		if ins[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, ins[i], w)
		}
	}
}

func TestBranchPseudos(t *testing.T) {
	img := mustAssemble(t, `
		main:
			beqz r1, main
			bnez r2, main
			bgt r3, r4, main
			ble r3, r4, main
			bgtu r3, r4, main
			bleu r3, r4, main
	`)
	ins := decodeAll(img)
	want := []isa.Inst{
		{Op: isa.BEQ, Rs1: 1, Imm: 0},
		{Op: isa.BNE, Rs1: 2, Imm: -1},
		{Op: isa.BLT, Rs1: 4, Rs2: 3, Imm: -2},
		{Op: isa.BGE, Rs1: 4, Rs2: 3, Imm: -3},
		{Op: isa.BLTU, Rs1: 4, Rs2: 3, Imm: -4},
		{Op: isa.BGEU, Rs1: 4, Rs2: 3, Imm: -5},
	}
	for i, w := range want {
		if ins[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, ins[i], w)
		}
	}
}

func TestEntryDirective(t *testing.T) {
	img := mustAssemble(t, `
		.entry start
		helper:
			ret
		start:
			halt
	`)
	if img.Entry != program.CodeBase+4 {
		t.Errorf("entry = %#x, want %#x", img.Entry, program.CodeBase+4)
	}
}

func TestNameAndMemDirectives(t *testing.T) {
	img := mustAssemble(t, `
		.name "myprog"
		.mem 65536
		main: halt
	`)
	if img.Name != "myprog" {
		t.Errorf("name = %q", img.Name)
	}
	if img.MemSize != 65536 {
		t.Errorf("mem = %d", img.MemSize)
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"unknown op", "main: frobnicate r1\n", "unknown instruction"},
		{"bad register", "main: add r1, r2, r99\n", "bad register"},
		{"wrong operand count", "main: add r1, r2\n", "wants 3 operands"},
		{"undefined label", "main: jmp nowhere\n", "undefined label"},
		{"duplicate label", "main: halt\nmain: halt\n", "already defined"},
		{"imm out of range", "main: addi r1, r2, 40000\n", "out of range"},
		{"shift out of range", "main: slli r1, r2, 32\n", "out of range"},
		{"bad mem operand", "main: lw r1, r2\n", "memory operand"},
		{"word outside data", "main: halt\n.word 1\n", "only allowed in .data"},
		{"instruction in data", ".data\nadd r1, r2, r3\nmain:\n", "outside .text"},
		{"bad directive", ".bogus 1\nmain: halt\n", "unknown directive"},
		{"no entry", ".entry start\nhelper: ret\n", `entry label "start" not defined`},
		{"bad label", "9lives: halt\n", "invalid label"},
		{"ret operands", "main: ret r1\n", "takes no operands"},
		{"bad lui", "main: lui r1, 65536\n", "out of range"},
		{"branch target", "main: beq r1, r2, 12q\n", "bad branch target"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble("t.s", tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestErrorListReportsAll(t *testing.T) {
	_, err := Assemble("t.s", "main: frob r1\n glorp r2\n halt\n")
	if err == nil {
		t.Fatal("expected errors")
	}
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T, want ErrorList", err)
	}
	if len(el) != 2 {
		t.Errorf("got %d errors, want 2: %v", len(el), err)
	}
	if el[0].Line != 1 || el[1].Line != 2 {
		t.Errorf("error lines = %d,%d, want 1,2", el[0].Line, el[1].Line)
	}
}

func TestCommentsInsideStrings(t *testing.T) {
	img := mustAssemble(t, `
		main: halt
		.data
		s: .ascii "a;b#c//d"
	`)
	if string(img.Data) != "a;b#c//d" {
		t.Errorf("string data = %q", img.Data)
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	img := mustAssemble(t, "main: start: halt\n")
	if img.Symbols["main"] != img.Symbols["start"] {
		t.Error("stacked labels should share an address")
	}
}

func TestCharLiterals(t *testing.T) {
	img := mustAssemble(t, "main: addi r1, zero, 'A'\n halt\n")
	if in := isa.Decode(img.Code[0]); in.Imm != 65 {
		t.Errorf("char literal imm = %d, want 65", in.Imm)
	}
}
