package oracle

import (
	"fmt"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/isa"
)

// RetAddrProbeSource is the guest-reads-own-return-address probe, the
// canonical transparency test from the paper: f publishes the return
// address the call wrote into ra. A transparent SDT reproduces the native
// observation (a guest code address); fast returns are documented to fail
// this probe by publishing a fragment-cache address instead.
const RetAddrProbeSource = `
main:
	call f
	out r9
	halt
f:
	mov r9, ra      ; the guest observes its own return address
	ret
`

// CheckRetAddrTransparency runs the probe under arch/spec and asserts the
// documented outcome: non-fastret configurations must be fully
// transparent (oracle level 1 clean); fastret configurations must diverge
// — and only in the expected way, with the observed value a
// fragment-cache address and every other architectural check clean.
func CheckRetAddrTransparency(arch, spec string) ([]Divergence, error) {
	img, err := asm.Assemble("retaddr-probe.s", RetAddrProbeSource)
	if err != nil {
		return nil, err
	}
	rep, err := Diff(img, Config{Arch: arch, Spec: spec})
	if err != nil {
		return nil, err
	}
	if rep.NativeErr != nil || rep.VMErr != nil {
		return []Divergence{{"probe.run", fmt.Sprintf("native err=%v, sdt err=%v", rep.NativeErr, rep.VMErr)}}, nil
	}

	if !rep.FastReturns {
		return rep.Divergences, nil
	}

	// Fast returns: the divergence must exist and be exactly the
	// documented one.
	var divs []Divergence
	if rep.Clean() {
		divs = append(divs, Divergence{"probe.hazard",
			"fastret config passed the return-address probe; the documented transparency hazard disappeared"})
	}
	// The only legal failing checks are the ones the published ra value
	// flows into: the output stream and the register holding the copy.
	// (ra itself is already exempted by the level-1 oracle.)
	allowed := map[string]bool{"out.checksum": true, "out.values": true, "reg": true}
	for _, d := range rep.Divergences {
		if !allowed[d.Check] {
			divs = append(divs, Divergence{"probe.hazard",
				fmt.Sprintf("unexpected divergence beyond the documented hazard: %s", d)})
		}
	}
	if n := rep.VM.State.Out.Values; len(n) == 1 {
		if n[0] < core.FragBase {
			divs = append(divs, Divergence{"probe.hazard",
				fmt.Sprintf("fastret guest observed %#x, want a fragment-cache address (>= %#x)", n[0], uint32(core.FragBase))})
		}
	} else {
		divs = append(divs, Divergence{"probe.hazard",
			fmt.Sprintf("probe emitted %d values under SDT, want 1", len(n))})
	}
	if nat := rep.Native.State.Out.Values; len(nat) != 1 || nat[0] != rep.Native.Image().Entry+isa.WordSize {
		divs = append(divs, Divergence{"probe.native",
			fmt.Sprintf("native observation %v, want the guest return address %#x", nat, rep.Native.Image().Entry+isa.WordSize)})
	}
	return divs, nil
}
