package oracle_test

import (
	"fmt"
	"strings"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/ib"
	"sdt/internal/oracle"
	"sdt/internal/program"
	"sdt/internal/randprog"
)

var sweepArchs = []string{"x86", "sparc"}

func build(t *testing.T, cfg randprog.Config) *program.Image {
	t.Helper()
	src := randprog.Generate(cfg)
	img, err := asm.Assemble(fmt.Sprintf("rand%d.s", cfg.Seed), src)
	if err != nil {
		t.Fatalf("seed %d does not assemble: %v", cfg.Seed, err)
	}
	return img
}

// TestSweepEveryMechanism is the tier-1 oracle sweep: every registered
// mechanism's sweep specs × both paper architectures × every metamorphic
// variant, against the native oracle, over deterministic random programs.
// Zero unexplained divergences allowed.
func TestSweepEveryMechanism(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			img := build(t, randprog.Small(seed))
			findings, err := oracle.SweepImage(img, sweepArchs, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range findings {
				t.Errorf("%s", f)
			}
		})
	}
}

// TestSweepSpecsCoverRegistry guards the auto-pickup contract: every
// registered mechanism family must contribute at least one parseable
// sweep spec that mentions it, so a new registry entry cannot silently
// escape the oracle.
func TestSweepSpecsCoverRegistry(t *testing.T) {
	specs := ib.SweepSpecs()
	for _, spec := range specs {
		if _, err := ib.Parse(spec); err != nil {
			t.Errorf("sweep spec %q does not parse: %v", spec, err)
		}
	}
	for _, e := range ib.Registered() {
		if len(e.Sweep) == 0 {
			t.Errorf("registry entry %q has no sweep specs", e.Name)
			continue
		}
		found := false
		for _, spec := range specs {
			for _, comp := range strings.Split(spec, "+") {
				if strings.Split(comp, ":")[0] == e.Name {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("no sweep spec exercises registry entry %q", e.Name)
		}
	}
}

// TestDeterminism: repeated runs must be bit-identical, cycle counts and
// profile included, for a representative spec of every family and for
// the trace/flush variants that exercise the most handler state.
func TestDeterminism(t *testing.T) {
	img := build(t, randprog.Small(11))
	for _, spec := range ib.SweepSpecs() {
		for _, v := range oracle.Variants() {
			divs, err := oracle.CheckDeterminism(img, oracle.Config{
				Arch: "x86", Spec: spec, Options: v.Mutate,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", spec, v.Name, err)
			}
			for _, d := range divs {
				t.Errorf("%s/%s: %s", spec, v.Name, d)
			}
		}
	}
}

// TestRetAddrTransparency: every non-fastret sweep spec must pass the
// guest-reads-own-return-address probe; every fastret spec must fail it
// in exactly the documented way.
func TestRetAddrTransparency(t *testing.T) {
	for _, arch := range sweepArchs {
		for _, spec := range ib.SweepSpecs() {
			divs, err := oracle.CheckRetAddrTransparency(arch, spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", arch, spec, err)
			}
			for _, d := range divs {
				t.Errorf("%s/%s: %s", arch, spec, d)
			}
		}
	}
}

// TestOracleCatchesInjectedBug: with the IBTC tag-aliasing bug injected,
// the oracle must report a divergence — the subsystem's own smoke test
// that a wrong dispatch cannot hide from the state comparison.
func TestOracleCatchesInjectedBug(t *testing.T) {
	img := build(t, randprog.Small(1))
	rep, err := oracle.Diff(img, oracle.Config{
		Arch: "x86",
		Spec: "ibtc:2",
		Handler: func(h core.IBHandler) {
			if !ib.InjectIBTCTagAlias(h) {
				t.Fatal("no IBTC found in handler chain")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("oracle reported a broken IBTC as equivalent")
	}
}

// TestDiffReportsFaultSymmetry: a guest that faults natively must fault
// under the SDT at the same retired-instruction count.
func TestDiffReportsFaultSymmetry(t *testing.T) {
	src := `
	main:
		li r9, 3
		li r1, 0
		lw r2, (r1)    ; guard-page load: faults in both executions
		halt
	`
	img, err := asm.Assemble("fault.s", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"translator", "ibtc:16", "fastret+ibtc:16"} {
		rep, err := oracle.Diff(img, oracle.Config{Arch: "x86", Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		if rep.NativeErr == nil {
			t.Fatal("fault program ran clean natively")
		}
		for _, d := range rep.Divergences {
			t.Errorf("%s: %s", spec, d)
		}
	}
}

// TestLaxFastretSkipsStateChecks: arbitrary guests that manufacture
// return addresses are out of scope for fastret equivalence; Lax must
// suppress the comparison rather than report the documented hazard as a
// bug.
func TestLaxFastretSkipsStateChecks(t *testing.T) {
	// The probe program observes ra, which diverges under fastret.
	img, err := asm.Assemble("probe.s", oracle.RetAddrProbeSource)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := oracle.Diff(img, oracle.Config{Arch: "x86", Spec: "fastret+ibtc:16"})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Clean() {
		t.Error("strict oracle missed the fastret hazard")
	}
	lax, err := oracle.Diff(img, oracle.Config{Arch: "x86", Spec: "fastret+ibtc:16", Lax: true})
	if err != nil {
		t.Fatal(err)
	}
	if !lax.Clean() {
		t.Errorf("lax oracle still reports: %v", lax.Divergences)
	}
}
