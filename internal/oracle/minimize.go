package oracle

import (
	"strings"

	"sdt/internal/randprog"
)

// Keep reports whether a candidate source still exhibits the behaviour
// being minimized (typically: assembles, runs clean natively, and still
// diverges under the SDT — see Diverges). It must be deterministic.
type Keep func(src string) bool

// Minimize shrinks assembly source by delta debugging over lines: it
// repeatedly removes line chunks at doubling granularity while keep still
// holds, then removes single lines to a fixed point. The result is
// 1-minimal — no single remaining line can be deleted — and keep(result)
// is guaranteed true provided keep(src) was.
//
// Candidates that break assembly are rejected by keep itself, which is
// what lets a generic line-deleting minimizer walk structured assembly:
// deleting a referenced label or a needed directive simply fails to
// assemble and the candidate is discarded.
func Minimize(src string, keep Keep) string {
	lines := nonEmptyLines(src)
	if joined := strings.Join(lines, "\n"); !keep(joined) {
		return src // caller's property doesn't hold; don't touch it
	}

	// ddmin: try removing chunks, halving chunk size on failure.
	for chunk := len(lines) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(lines); {
			cand := make([]string, 0, len(lines)-chunk)
			cand = append(cand, lines[:start]...)
			cand = append(cand, lines[start+chunk:]...)
			if keep(strings.Join(cand, "\n")) {
				lines = cand
				removed = true
				// keep start: the next chunk slid into this position
			} else {
				start += chunk
			}
		}
		if !removed || chunk > len(lines) {
			chunk /= 2
		}
	}

	// Single-line fixed point (1-minimality).
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(lines); i++ {
			cand := make([]string, 0, len(lines)-1)
			cand = append(cand, lines[:i]...)
			cand = append(cand, lines[i+1:]...)
			if keep(strings.Join(cand, "\n")) {
				lines = cand
				changed = true
				i--
			}
		}
	}
	return strings.Join(lines, "\n")
}

func nonEmptyLines(src string) []string {
	var out []string
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

// MinimizeRandprog shrinks a failing random program in two stages:
// structurally, by walking randprog.Shrink candidates (smaller function
// counts, block counts and iteration counts) while keep holds on the
// generated source; then textually, with line-level delta debugging. It
// returns the final configuration and the minimized source.
func MinimizeRandprog(cfg randprog.Config, keep Keep) (randprog.Config, string) {
	for {
		shrunk := false
		for _, cand := range randprog.Shrink(cfg) {
			if keep(randprog.Generate(cand)) {
				cfg = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	return cfg, Minimize(randprog.Generate(cfg), keep)
}
