package oracle_test

import (
	"strings"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/ib"
	"sdt/internal/oracle"
	"sdt/internal/randprog"
	"sdt/internal/workload"
)

// fuzzLimit keeps each differential execution fast enough for the fuzz
// engine; programs that exhaust it on both sides still check error
// symmetry. Together with the source-size bound below it also caps the
// degenerate sweep configurations (a one-bucket sieve walks a chain as
// long as the target set on every lookup).
const fuzzLimit = 100_000

// FuzzDifferential feeds arbitrary assembly through the oracle: whatever
// the fuzzer constructs, native and translated execution must agree — on
// results when the program runs clean, on failure position when it
// faults. The mechanism and architecture axes ride in two extra fuzzed
// bytes so the engine explores the full sweep without paying for every
// cell on every input.
//
// Seeds: randprog corpora, the MiniC-compiled VM workload, and
// hand-written programs exercising every indirect-branch kind.
func FuzzDifferential(f *testing.F) {
	specs := ib.SweepSpecs()
	for i, src := range randprog.Corpus(4) {
		f.Add(src, uint8(i), uint8(i%2))
	}
	f.Add(workload.MCVMSource(1), uint8(1), uint8(0))
	f.Add(oracle.RetAddrProbeSource, uint8(0), uint8(1))
	f.Add(`
main:
	li r10, 0
loop:
	la r1, f
	callr r1
	la r1, hop
	jr r1
back:
	addi r10, r10, 1
	li r9, 5
	blt r10, r9, loop
	out r10
	halt
f:	ret
hop:	jmp back
`, uint8(3), uint8(0))

	f.Fuzz(func(t *testing.T, src string, mech, archBit uint8) {
		if len(src) > 1<<13 {
			return // bound assembly and run time
		}
		img, err := asm.Assemble("fuzz.s", src)
		if err != nil {
			return
		}
		spec := specs[int(mech)%len(specs)]
		arch := "x86"
		if archBit&1 == 1 {
			arch = "sparc"
		}
		// Arbitrary sources may observe or manufacture return addresses,
		// which fastret is documented not to survive.
		lax := parsedFastret(t, spec)
		rep, err := oracle.Diff(img, oracle.Config{
			Arch: arch, Spec: spec, Limit: fuzzLimit, Lax: lax,
		})
		if err != nil {
			t.Fatalf("harness: %v", err)
		}
		for _, d := range rep.Divergences {
			t.Errorf("%s/%s: %s", arch, spec, d)
		}
	})
}

func parsedFastret(t *testing.T, spec string) bool {
	cfg, err := ib.Parse(spec)
	if err != nil {
		t.Fatalf("sweep spec %q: %v", spec, err)
	}
	return cfg.FastReturns
}

// FuzzMinimize drives the line-level minimizer with an assembles-and-
// runs predicate over arbitrary fuzzed sources: whatever it is handed,
// Minimize must terminate, never panic, and return a source still
// satisfying the predicate (or the input untouched).
func FuzzMinimize(f *testing.F) {
	for _, src := range randprog.Corpus(2) {
		f.Add(src)
	}
	f.Add("main:\n\tout r9\n\thalt\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 || strings.Count(src, "\n") > 200 {
			return // ddmin is quadratic in lines; keep the engine fast
		}
		keep := func(s string) bool {
			img, err := asm.Assemble("fuzz.s", s)
			if err != nil {
				return false
			}
			rep, err := oracle.Diff(img, oracle.Config{Arch: "x86", Spec: "ibtc:16", Limit: 50_000})
			return err == nil && rep.NativeErr == nil && rep.Clean()
		}
		held := keep(src)
		got := oracle.Minimize(src, keep)
		if held && !keep(got) {
			t.Errorf("minimized source lost the property:\n%s", got)
		}
		if !held && got != src {
			t.Errorf("minimizer rewrote a non-qualifying source")
		}
	})
}
