package oracle_test

import (
	"testing"

	"sdt/internal/core"
	"sdt/internal/ib"
	"sdt/internal/oracle"
	"sdt/internal/randprog"
)

// brokenIBTC is the injected-divergence configuration the minimizer is
// validated against: a tiny shared IBTC whose entries are (deliberately)
// tagged with the set index, so colliding targets dispatch to the wrong
// fragment.
func brokenIBTC() oracle.Config {
	return oracle.Config{
		Arch: "x86",
		Spec: "ibtc:2",
		Handler: func(h core.IBHandler) {
			ib.InjectIBTCTagAlias(h)
		},
	}
}

// TestMinimizeInjectedDivergence is the acceptance gate for the
// minimizer: starting from a random program that exposes the broken
// IBTC, structural + line-level shrinking must land on a repro of fewer
// than 30 instructions that still diverges.
func TestMinimizeInjectedDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("minimization runs hundreds of differential executions")
	}
	cfg := brokenIBTC()
	keep := func(src string) bool { return oracle.Diverges(src, cfg) }

	start := randprog.Small(1)
	if !keep(randprog.Generate(start)) {
		t.Fatal("seed program does not expose the injected IBTC bug")
	}
	shrunk, src := oracle.MinimizeRandprog(start, keep)
	if !keep(src) {
		t.Fatal("minimizer returned a non-reproducing source")
	}
	n, err := oracle.InstCount(src)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("minimized %+v to %d instructions:\n%s", shrunk, n, src)
	if n >= 30 {
		t.Errorf("repro has %d instructions, want < 30", n)
	}
}

// TestMinimizePreservesProperty: Minimize on a non-reproducing source
// must return it unchanged rather than shrink against a vacuous
// predicate.
func TestMinimizePreservesProperty(t *testing.T) {
	src := "main:\n\thalt\n"
	got := oracle.Minimize(src, func(string) bool { return false })
	if got != src {
		t.Errorf("Minimize rewrote a source whose property does not hold: %q", got)
	}
}
