// Package oracle is the differential-testing and invariant-checking
// subsystem: it runs one guest program through the native reference
// machine (internal/machine) and through the SDT under a configured
// indirect-branch mechanism, and checks a hierarchy of oracles:
//
//  1. Architectural-state equivalence — registers, full memory image,
//     output stream (checksum, count and retained values), retired
//     instruction count, exit code and final pc must match the native
//     run exactly. Cycle counts are the experiment's subject and are
//     never compared.
//  2. Metamorphic invariants — the simulation is a pure function of
//     image × configuration (repeated runs are bit-identical, including
//     cycle counts); fragment-cache flush pressure, superblock formation
//     and trace formation may only change cycle counts, never
//     guest-visible state; and the profile's mechanism hit/miss counts
//     must account exactly for every executed indirect branch.
//  3. Transparency hazards — fast returns sacrifice transparency by
//     construction: a guest that reads its own return address observes a
//     fragment-cache address. The oracle knows the documented shape of
//     that divergence and asserts it is exactly the expected one (see
//     CheckRetAddrTransparency); any other deviation is still an error.
//
// The mechanism axis comes from the ib registry (ib.SweepSpecs), so a
// newly registered mechanism is swept with no oracle changes. The package
// also provides the corpus minimizer behind `sdtfuzz -minimize`
// (Minimize, MinimizeRandprog).
package oracle

import (
	"encoding/binary"
	"fmt"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/program"
)

// DefaultLimit bounds one oracle run; differential corpora are small, so
// hitting it usually means a translated execution ran away.
const DefaultLimit = 5_000_000

// Config selects one differential comparison.
type Config struct {
	// Arch names the host cost model ("x86", "sparc", "arm", or a
	// "-like" alias of any of them).
	Arch string
	// Spec is the IB mechanism spec, ib.Parse grammar.
	Spec string
	// Limit is the instruction budget per run (0 = DefaultLimit).
	Limit uint64
	// Options, when set, mutates the VM options after spec parsing —
	// the metamorphic variants (flush pressure, superblocks, traces)
	// plug in here.
	Options func(*core.Options)
	// Handler, when set, is applied to the parsed handler before the VM
	// is built; fault-injection hooks (ib.InjectIBTCTagAlias) plug in
	// here.
	Handler func(core.IBHandler)
	// Lax relaxes the oracle for arbitrary (fuzzer-generated) guests
	// under fast-return specs: such guests may legally observe or
	// manufacture hostized return addresses, which changes control flow
	// in documented but unpredictable ways, so only crash-freedom is
	// checked. Structured corpora (randprog, the workloads) are
	// ra-disciplined and must leave this false.
	Lax bool
}

// Divergence is one failed oracle check.
type Divergence struct {
	Check  string // which oracle failed: "checksum", "reg", "mem", ...
	Detail string
}

func (d Divergence) String() string { return d.Check + ": " + d.Detail }

// Report is the outcome of one differential comparison.
type Report struct {
	Native      *machine.Machine
	VM          *core.VM
	NativeErr   error
	VMErr       error
	FastReturns bool
	Divergences []Divergence
}

// Clean reports whether every oracle check passed.
func (r *Report) Clean() bool { return len(r.Divergences) == 0 }

func (r *Report) failf(check, format string, args ...any) {
	r.Divergences = append(r.Divergences, Divergence{check, fmt.Sprintf(format, args...)})
}

// Diff runs img natively and under the SDT per cfg and applies the
// equivalence and accounting oracles. The returned error covers harness
// misconfiguration (unknown arch, bad spec) only; guest-level trouble is
// reported as divergences.
func Diff(img *program.Image, cfg Config) (*Report, error) {
	model, err := hostarch.ByName(cfg.Arch)
	if err != nil {
		return nil, err
	}
	mech, err := ib.Parse(cfg.Spec)
	if err != nil {
		return nil, err
	}
	limit := cfg.Limit
	if limit == 0 {
		limit = DefaultLimit
	}

	rep := &Report{}
	rep.Native, rep.NativeErr = runNative(img, model, limit)

	opts := mech.Options(model)
	if cfg.Options != nil {
		cfg.Options(&opts)
	}
	if cfg.Handler != nil {
		cfg.Handler(opts.Handler)
	}
	rep.FastReturns = opts.FastReturns
	rep.VM, rep.VMErr = runVM(img, opts, limit)

	rep.compare(img, cfg.Lax)
	return rep, nil
}

func runNative(img *program.Image, model *hostarch.Model, limit uint64) (*machine.Machine, error) {
	m, err := machine.New(img, model)
	if err != nil {
		return nil, err
	}
	return m, m.Run(limit)
}

func runVM(img *program.Image, opts core.Options, limit uint64) (*core.VM, error) {
	vm, err := core.New(img, opts)
	if err != nil {
		return nil, err
	}
	return vm, vm.Run(limit)
}

// compare applies the oracle hierarchy to the finished pair of runs.
func (r *Report) compare(img *program.Image, lax bool) {
	if r.Native == nil || r.VM == nil {
		// Construction failed on one side: both must reject the image.
		if (r.Native == nil) != (r.VM == nil) {
			r.failf("construct", "native err=%v, sdt err=%v", r.NativeErr, r.VMErr)
		}
		return
	}
	if r.FastReturns && lax {
		// Arbitrary guests may observe hostized return addresses; every
		// downstream comparison is unsound. Reaching this point at all
		// (no panic) is the property under test.
		return
	}
	if r.NativeErr != nil || r.VMErr != nil {
		r.compareErrors()
		return
	}
	r.compareState(img)
	r.checkAccounting()
}

// compareErrors checks fault symmetry: a guest that faults (or exhausts
// its budget) natively must do the same under translation, at the same
// retired-instruction count — translation must not create, hide or move
// guest-visible errors.
func (r *Report) compareErrors() {
	if (r.NativeErr == nil) != (r.VMErr == nil) {
		r.failf("error", "native err=%v, sdt err=%v", r.NativeErr, r.VMErr)
		return
	}
	ni, si := r.Native.State.Instret, r.VM.State.Instret
	if ni != si {
		r.failf("error.instret", "fault after %d native instructions vs %d under SDT (native err=%v, sdt err=%v)",
			ni, si, r.NativeErr, r.VMErr)
	}
}

// compareState is oracle level 1: architectural equivalence, with the two
// documented fast-return exemptions (ra and spilled copies of ra hold
// fragment-cache addresses).
func (r *Report) compareState(img *program.Image) {
	ns, ss := r.Native.State, r.VM.State
	nr, sr := r.Native.Result(), r.VM.Result()

	if nr.ExitCode != sr.ExitCode {
		r.failf("exitcode", "native %d, sdt %d", nr.ExitCode, sr.ExitCode)
	}
	if nr.Instret != sr.Instret {
		r.failf("instret", "native %d, sdt %d", nr.Instret, sr.Instret)
	}
	if nr.OutCount != sr.OutCount {
		r.failf("out.count", "native %d, sdt %d", nr.OutCount, sr.OutCount)
	}
	if nr.Checksum != sr.Checksum {
		r.failf("out.checksum", "native %#x, sdt %#x", nr.Checksum, sr.Checksum)
	}
	for i := range min(len(ns.Out.Values), len(ss.Out.Values)) {
		if ns.Out.Values[i] != ss.Out.Values[i] {
			r.failf("out.values", "output %d: native %#x, sdt %#x", i, ns.Out.Values[i], ss.Out.Values[i])
			break
		}
	}
	if ns.PC != ss.PC {
		r.failf("pc", "native %#x, sdt %#x", ns.PC, ss.PC)
	}

	for reg := 0; reg < isa.NumRegs; reg++ {
		nv, sv := ns.Regs[reg], ss.Regs[reg]
		if nv == sv {
			continue
		}
		if r.FastReturns && reg == int(isa.RegRA) && sv >= core.FragBase {
			continue // documented hazard: ra holds a hostized return address
		}
		r.failf("reg", "%s: native %#x, sdt %#x", isa.RegName(isa.Reg(reg)), nv, sv)
	}

	r.compareMemory(img, ns.Mem, ss.Mem)
}

// compareMemory diffs the full memory images word by word. Under fast
// returns a differing word is legal only when it is a spilled return
// address: the translated side holds a fragment-cache address and the
// native side a code-section address.
func (r *Report) compareMemory(img *program.Image, nm, sm []byte) {
	if len(nm) != len(sm) {
		r.failf("mem", "memory sizes differ: native %d, sdt %d", len(nm), len(sm))
		return
	}
	reported := 0
	for off := 0; off+4 <= len(nm); off += 4 {
		nw := binary.LittleEndian.Uint32(nm[off:])
		sw := binary.LittleEndian.Uint32(sm[off:])
		if nw == sw {
			continue
		}
		if r.FastReturns && sw >= core.FragBase &&
			nw >= program.CodeBase && nw < img.CodeEnd() {
			continue // spilled hostized return address
		}
		r.failf("mem", "word at %#x: native %#x, sdt %#x", off, nw, sw)
		if reported++; reported >= 8 {
			r.failf("mem", "... further memory differences suppressed")
			return
		}
	}
	for off := len(nm) &^ 3; off < len(nm); off++ {
		if nm[off] != sm[off] {
			r.failf("mem", "byte at %#x: native %#x, sdt %#x", off, nm[off], sm[off])
		}
	}
}

// checkAccounting is the profile half of oracle level 2: the SDT must
// have seen exactly the indirect branches the native machine counted, and
// the mechanism hit/miss/guard tallies must account for every one of
// them.
func (r *Report) checkAccounting() {
	p := &r.VM.Prof
	for k := isa.IBKind(0); k < isa.NumIBKinds; k++ {
		if p.IBExec[k] != r.Native.Counts.IB[k] {
			r.failf("prof.ibexec", "%v: sdt executed %d, native counted %d",
				k, p.IBExec[k], r.Native.Counts.IB[k])
		}
	}

	var misses uint64
	for _, n := range p.IBMiss {
		misses += n
	}
	if misses != p.MechMisses {
		r.failf("prof.miss", "per-kind IB misses sum to %d, MechMisses = %d", misses, p.MechMisses)
	}

	// Every executed IB is resolved exactly once: by a trace guard hit or
	// by exactly one terminal hit/miss in the handler chain. Fast returns
	// add re-resolutions for transparency escapes (a guest-address return
	// target falls back into the handler after being counted as a miss),
	// so the tally may only exceed the execution count there — and
	// ra-disciplined corpora never escape, keeping equality in practice.
	resolved := p.MechHits + p.MechMisses + p.TraceGuardHits
	if !r.FastReturns && resolved != p.IBTotal() {
		r.failf("prof.resolved", "hits(%d)+misses(%d)+guardhits(%d) = %d, want IB total %d",
			p.MechHits, p.MechMisses, p.TraceGuardHits, resolved, p.IBTotal())
	}
	if r.FastReturns && resolved < p.IBTotal() {
		r.failf("prof.resolved", "hits(%d)+misses(%d)+guardhits(%d) = %d < IB total %d",
			p.MechHits, p.MechMisses, p.TraceGuardHits, resolved, p.IBTotal())
	}

	// Superblock counters must be internally consistent: a superblock
	// execution requires a materialized trace, a retired super-op requires
	// a superblock execution, and each execution departs the trace at most
	// once, so side exits can never outnumber entries.
	if p.SuperblockExecs > 0 && p.TracesFormed == 0 {
		r.failf("prof.superblock", "%d superblock execs with no traces formed", p.SuperblockExecs)
	}
	if p.SuperOpsRetired > 0 && p.SuperblockExecs == 0 {
		r.failf("prof.superblock", "%d super-ops retired with no superblock execs", p.SuperOpsRetired)
	}
	if p.TraceExits > p.SuperblockExecs {
		r.failf("prof.superblock", "%d trace exits exceed %d superblock execs", p.TraceExits, p.SuperblockExecs)
	}
	if p.TraceGuardHits+p.TraceGuardMisses > 0 && p.SuperblockExecs == 0 {
		r.failf("prof.superblock", "trace guards fired (%d hits, %d misses) with no superblock execs",
			p.TraceGuardHits, p.TraceGuardMisses)
	}

	// Adaptive dispatch: every re-translation was triggered by a tier
	// change (a change on an ownerless shadow site re-translates nothing,
	// so the inequality is <=).
	if p.AdaptRetrans > p.AdaptPromotions+p.AdaptDemotions {
		r.failf("prof.adaptive", "%d re-translations exceed %d promotions + %d demotions",
			p.AdaptRetrans, p.AdaptPromotions, p.AdaptDemotions)
	}

	// Cycle attribution must never exceed the run's own total: every
	// attributed cycle was also charged to the cost environment the total
	// comes from, so over-attribution means double counting somewhere.
	if b := p.Overhead(r.VM.Result().Cycles); b.OverAttributed {
		r.failf("prof.overattributed", "ib(%d)+ctx(%d)+trans(%d) cycles exceed run total %d",
			b.IB, b.Ctx, b.Trans, b.Total)
	}
}

// CheckDeterminism is the repeatability half of oracle level 2: two SDT
// runs of the same image under the same configuration must be
// bit-identical — results, cycle counts and the whole profile. Handler
// state, cache simulators and trace formation may hold no hidden
// nondeterminism (map-iteration order, time, pointer identity).
func CheckDeterminism(img *program.Image, cfg Config) ([]Divergence, error) {
	model, err := hostarch.ByName(cfg.Arch)
	if err != nil {
		return nil, err
	}
	limit := cfg.Limit
	if limit == 0 {
		limit = DefaultLimit
	}
	run := func() (*core.VM, error) {
		mech, err := ib.Parse(cfg.Spec) // fresh handler per run: no shared state
		if err != nil {
			return nil, err
		}
		opts := mech.Options(model)
		if cfg.Options != nil {
			cfg.Options(&opts)
		}
		return runVM(img, opts, limit)
	}
	a, errA := run()
	b, errB := run()
	if a == nil || b == nil {
		return nil, fmt.Errorf("oracle: determinism run failed to construct: %v / %v", errA, errB)
	}

	var divs []Divergence
	fail := func(check, format string, args ...any) {
		divs = append(divs, Divergence{check, fmt.Sprintf(format, args...)})
	}
	if (errA == nil) != (errB == nil) {
		fail("det.error", "run 1 err=%v, run 2 err=%v", errA, errB)
	}
	ra, rb := a.Result(), b.Result()
	if ra != rb {
		fail("det.result", "run 1 %+v, run 2 %+v", ra, rb)
	}
	if a.Prof != b.Prof {
		fail("det.profile", "profiles differ:\nrun 1: %+v\nrun 2: %+v", a.Prof, b.Prof)
	}
	return divs, nil
}

// Variant is one metamorphic run configuration: an option mutation that
// must not change guest-visible results.
type Variant struct {
	Name   string
	Mutate func(*core.Options)
}

// Variants returns the metamorphic axis of the sweep: baseline options
// plus the translation-policy and cache-pressure mutations that are
// required to be invisible to the guest.
func Variants() []Variant {
	return []Variant{
		{"baseline", func(*core.Options) {}},
		// 512 bytes holds only a handful of fragments (an x86 fragment is
		// ~6 bytes/inst plus a 16-byte stub), so even corpus-scale
		// programs flush the cache repeatedly.
		{"flushpressure", func(o *core.Options) { o.CacheBytes = 512 }},
		{"superblocks", func(o *core.Options) { o.Superblocks = true }},
		// Eager trace formation: threshold 3 makes corpus-scale programs
		// form superblocks within their short budgets.
		{"traces", func(o *core.Options) { o.Traces = true; o.TraceThreshold = 3 }},
		// Super-op fusion ablation: same superblocks, unfused bodies. The
		// rewrite may only change cycle counts, never guest-visible state.
		{"traces:nosuper", func(o *core.Options) {
			o.Traces = true
			o.TraceThreshold = 3
			o.NoSuperOps = true
		}},
		// Minimum-length traces: MaxTraceFrags at its floor of 2 stresses
		// the degenerate two-part superblock and its single side exit.
		{"traces:minfrags", func(o *core.Options) {
			o.Traces = true
			o.TraceThreshold = 3
			o.MaxTraceFrags = 2
		}},
		// Superblocks under flush pressure: materialized traces are torn
		// down by epoch flushes mid-run and must re-form cleanly.
		{"traces+flushpressure", func(o *core.Options) {
			o.Traces = true
			o.TraceThreshold = 3
			o.CacheBytes = 512
		}},
		{"tinyblocks+flush", func(o *core.Options) {
			o.MaxBlockInsts = 4
			o.CacheBytes = 1024
		}},
	}
}

// Finding is one non-clean sweep cell.
type Finding struct {
	Arch, Spec, Variant string
	Divergences         []Divergence
}

func (f Finding) String() string {
	return fmt.Sprintf("%s/%s/%s: %d divergence(s), first: %s",
		f.Arch, f.Spec, f.Variant, len(f.Divergences), f.Divergences[0])
}

// SweepImage runs img through every arch × spec × metamorphic variant and
// returns the cells whose oracle checks failed. Empty archs or specs
// select the paper's two architectures and the full registry sweep.
func SweepImage(img *program.Image, archs, specs []string, limit uint64) ([]Finding, error) {
	if len(archs) == 0 {
		archs = []string{"x86", "sparc"}
	}
	if len(specs) == 0 {
		specs = ib.SweepSpecs()
	}
	var findings []Finding
	for _, arch := range archs {
		for _, spec := range specs {
			for _, v := range Variants() {
				rep, err := Diff(img, Config{Arch: arch, Spec: spec, Limit: limit, Options: v.Mutate})
				if err != nil {
					return findings, fmt.Errorf("oracle: %s/%s/%s: %w", arch, spec, v.Name, err)
				}
				if !rep.Clean() {
					findings = append(findings, Finding{arch, spec, v.Name, rep.Divergences})
				}
			}
		}
	}
	return findings, nil
}

// Diverges assembles src and reports whether the SDT run under cfg
// deviates from native execution while the native run itself is clean.
// It is the Keep predicate `sdtfuzz -minimize` shrinks against: sources
// that stop assembling, fault natively or stop diverging are rejected.
func Diverges(src string, cfg Config) bool {
	img, err := asm.Assemble("minimize.s", src)
	if err != nil {
		return false
	}
	rep, err := Diff(img, cfg)
	if err != nil || rep.NativeErr != nil {
		return false
	}
	return !rep.Clean()
}

// InstCount assembles src and returns its static instruction count.
func InstCount(src string) (int, error) {
	img, err := asm.Assemble("count.s", src)
	if err != nil {
		return 0, err
	}
	return len(img.Code), nil
}
