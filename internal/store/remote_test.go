package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeRemote is a scripted peer tier.
type fakeRemote struct {
	data  map[string][]byte
	err   error
	calls int
}

func (f *fakeRemote) Fetch(key string) ([]byte, bool, error) {
	f.calls++
	if f.err != nil {
		return nil, false, f.err
	}
	v, ok := f.data[key]
	return v, ok, nil
}

const remoteKey = "ab12cd34ab12cd34"

// A peer hit must satisfy Do as a cache hit, be promoted through both
// local tiers, and never run compute.
func TestRemoteTierHitPromotes(t *testing.T) {
	dir := t.TempDir()
	remote := &fakeRemote{data: map[string][]byte{remoteKey: []byte("peer bytes")}}
	s, err := OpenByteStoreWith(Options{Dir: dir, Remote: remote})
	if err != nil {
		t.Fatal(err)
	}
	computed := false
	data, hit, err := s.Do(context.Background(), remoteKey, func() ([]byte, error) {
		computed = true
		return nil, errors.New("must not compute")
	})
	if err != nil || string(data) != "peer bytes" {
		t.Fatalf("Do = %q, %v", data, err)
	}
	if computed {
		t.Fatal("compute ran despite a peer hit")
	}
	if !hit {
		t.Fatal("peer hit not reported as a cache hit")
	}
	st := s.Stats()
	if st.PeerHits != 1 || st.PeerErrors != 0 {
		t.Fatalf("stats = %+v, want 1 peer hit", st)
	}

	// Promotion: the next lookup is local (memory), and the entry is
	// durable on disk for the node's own future restarts.
	if v, ok := s.Get(remoteKey); !ok || string(v) != "peer bytes" {
		t.Fatalf("promoted Get = %q, %v", v, ok)
	}
	if st := s.Stats(); st.MemHits != 1 {
		t.Fatalf("promoted lookup not served from memory: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, remoteKey[:2], remoteKey)); err != nil {
		t.Fatalf("peer hit not written through to disk: %v", err)
	}
	if remote.calls != 1 {
		t.Fatalf("remote consulted %d times, want 1", remote.calls)
	}
}

// A failing peer tier must degrade to computation, counted but invisible
// to the caller.
func TestRemoteTierErrorFallsThrough(t *testing.T) {
	remote := &fakeRemote{err: errors.New("peer down")}
	s, err := OpenByteStoreWith(Options{Remote: remote})
	if err != nil {
		t.Fatal(err)
	}
	data, hit, err := s.Do(context.Background(), remoteKey, func() ([]byte, error) {
		return []byte("computed"), nil
	})
	if err != nil || hit || string(data) != "computed" {
		t.Fatalf("Do = %q, hit=%v, %v", data, hit, err)
	}
	st := s.Stats()
	if st.PeerErrors != 1 || st.PeerHits != 0 {
		t.Fatalf("stats = %+v, want 1 peer error", st)
	}
	// The computed value is stored locally; the peer is not consulted for
	// the now-cached key.
	if _, hit, _ := s.Do(context.Background(), remoteKey, nil); !hit {
		t.Fatal("computed value not cached")
	}
	if remote.calls != 1 {
		t.Fatalf("remote consulted %d times, want 1", remote.calls)
	}
}

// A clean remote miss computes without counting an error.
func TestRemoteTierMissComputes(t *testing.T) {
	remote := &fakeRemote{data: map[string][]byte{}}
	s, err := OpenByteStoreWith(Options{Remote: remote})
	if err != nil {
		t.Fatal(err)
	}
	data, hit, err := s.Do(context.Background(), remoteKey, func() ([]byte, error) {
		return []byte("computed"), nil
	})
	if err != nil || hit || string(data) != "computed" {
		t.Fatalf("Do = %q, hit=%v, %v", data, hit, err)
	}
	if st := s.Stats(); st.PeerErrors != 0 || st.PeerHits != 0 {
		t.Fatalf("stats = %+v, want no peer activity counted", st)
	}
}

// Quarantined entries older than the TTL are swept at open; fresh
// evidence is kept.
func TestQuarantineAgeSweep(t *testing.T) {
	dir := t.TempDir()
	qdir := filepath.Join(dir, quarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(qdir, "aaaa1111")
	fresh := filepath.Join(qdir, "bbbb2222")
	for _, p := range []string{old, fresh} {
		if err := os.WriteFile(p, []byte("corpse"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-DefaultQuarantineTTL - time.Hour)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}

	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.QuarantineSwept(); n != 1 {
		t.Fatalf("QuarantineSwept = %d, want 1", n)
	}
	if _, err := os.Stat(old); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale quarantine file survived the sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh quarantine file swept: %v", err)
	}

	// ttl < 0 keeps everything.
	d2, err := OpenDiskTTL(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if n := d2.QuarantineSwept(); n != 0 {
		t.Fatalf("negative-ttl open swept %d files", n)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("negative-ttl open removed quarantine evidence: %v", err)
	}
}

// Sealed entries must round-trip and reject any bit flip — the framing is
// also the peer-transfer format, so this is the cluster's wire integrity.
func TestSealOpenEntryRoundTrip(t *testing.T) {
	payload := []byte(`{"key":"abc","cycles":123}`)
	raw := SealEntry(payload)
	got, err := OpenEntry(raw)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("round trip = %q, %v", got, err)
	}
	for bit := 0; bit < len(raw)*8; bit += 37 {
		mut := append([]byte(nil), raw...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := OpenEntry(mut); err == nil {
			t.Fatalf("flipped bit %d not detected", bit)
		}
	}
	if _, err := OpenEntry([]byte("short")); err == nil {
		t.Fatal("truncated entry not rejected")
	}
}
