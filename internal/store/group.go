// Package store is the shared memoization substrate of the SDT lab: a
// single-flight computation Group that deduplicates concurrent requests
// for the same key, pluggable storage backends (unbounded map, bounded
// LRU), an on-disk content-addressed layer, and ByteStore, which stacks
// all three into the persistent result store the sdtd service and the
// bench Runner are built on.
package store

import (
	"context"
	"sync"
)

// Backend is the storage a Group memoizes into. A Group calls Get and Put
// with its own lock held, so backends used only through a Group need no
// internal locking — but they must not call back into the Group.
type Backend[V any] interface {
	// Get returns the stored value for key, if present.
	Get(key string) (V, bool)
	// Put stores the value for key (replacing any previous value).
	Put(key string, v V)
}

// Ranger is optionally implemented by backends that can enumerate their
// contents (Group.Range uses it).
type Ranger[V any] interface {
	Range(f func(key string, v V) bool)
}

// Group memoizes computations by key with single-flight deduplication:
// concurrent callers of Do with the same key perform the computation at
// most once, later callers are served from the backend. A failed
// computation is not cached; waiters retry it themselves, so one caller's
// cancellation cannot poison the result for everyone else.
type Group[V any] struct {
	mu       sync.Mutex
	backend  Backend[V]
	inflight map[string]chan struct{}
	hits     uint64
	misses   uint64
}

// NewGroup returns a Group memoizing into backend. A nil backend selects a
// fresh unbounded Map.
func NewGroup[V any](backend Backend[V]) *Group[V] {
	if backend == nil {
		backend = NewMap[V]()
	}
	return &Group[V]{backend: backend, inflight: make(map[string]chan struct{})}
}

// Do returns the value for key, computing it if the backend does not hold
// it. Concurrent calls for the same key compute at most once: the first
// caller runs compute, the rest wait. hit reports whether the value came
// from the backend (false exactly when this call ran compute). A waiting
// caller whose ctx ends returns ctx's cause without disturbing the
// computation in flight; in particular a waiter whose ctx is already over
// when the leader fails returns the cause instead of retrying as the new
// leader. A stored value is always served, even to a dead ctx — the hit
// is free — but a dead ctx never starts a computation.
func (g *Group[V]) Do(ctx context.Context, key string, compute func() (V, error)) (v V, hit bool, err error) {
	g.mu.Lock()
	for {
		if v, ok := g.backend.Get(key); ok {
			g.hits++
			g.mu.Unlock()
			return v, true, nil
		}
		ch, busy := g.inflight[key]
		if !busy {
			if ctx.Err() != nil {
				g.mu.Unlock()
				var zero V
				return zero, false, context.Cause(ctx)
			}
			break
		}
		g.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			var zero V
			return zero, false, context.Cause(ctx)
		}
		g.mu.Lock()
	}
	g.misses++
	ch := make(chan struct{})
	g.inflight[key] = ch
	g.mu.Unlock()

	v, err = compute()

	g.mu.Lock()
	delete(g.inflight, key)
	if err == nil {
		g.backend.Put(key, v)
	}
	close(ch)
	g.mu.Unlock()
	if err != nil {
		var zero V
		return zero, false, err
	}
	return v, false, nil
}

// Get returns the backend's value for key without computing anything. It
// does not wait for an in-flight computation.
func (g *Group[V]) Get(key string) (V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backend.Get(key)
}

// Put stores a value directly, bypassing Do.
func (g *Group[V]) Put(key string, v V) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.backend.Put(key, v)
}

// Stats returns cumulative backend hit and miss counts observed by Do.
func (g *Group[V]) Stats() (hits, misses uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits, g.misses
}

// Range enumerates the stored values if the backend supports it (it is a
// no-op otherwise). f must not call back into the Group.
func (g *Group[V]) Range(f func(key string, v V) bool) {
	if r, ok := g.backend.(Ranger[V]); ok {
		g.mu.Lock()
		defer g.mu.Unlock()
		r.Range(f)
	}
}

// Map is the default unbounded Backend: a plain map. Safe only under a
// Group (or external locking).
type Map[V any] struct{ m map[string]V }

// NewMap returns an empty Map backend.
func NewMap[V any]() *Map[V] { return &Map[V]{m: make(map[string]V)} }

// Get implements Backend.
func (m *Map[V]) Get(key string) (V, bool) { v, ok := m.m[key]; return v, ok }

// Put implements Backend.
func (m *Map[V]) Put(key string, v V) { m.m[key] = v }

// Len returns the number of stored entries.
func (m *Map[V]) Len() int { return len(m.m) }

// Range implements Ranger.
func (m *Map[V]) Range(f func(key string, v V) bool) {
	for k, v := range m.m {
		if !f(k, v) {
			return
		}
	}
}
