package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupMemoizes(t *testing.T) {
	g := NewGroup[int](nil)
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }
	v, hit, err := g.Do(context.Background(), "k", compute)
	if err != nil || v != 42 || hit {
		t.Fatalf("first Do = (%d, %v, %v), want (42, false, nil)", v, hit, err)
	}
	v, hit, err = g.Do(context.Background(), "k", compute)
	if err != nil || v != 42 || !hit {
		t.Fatalf("second Do = (%d, %v, %v), want (42, true, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if hits, misses := g.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("Stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

func TestGroupSingleFlight(t *testing.T) {
	g := NewGroup[int](nil)
	var calls, coldReturns atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := g.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				<-release
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
			if !hit {
				coldReturns.Add(1)
			}
		}()
	}
	// Wait for the one computation to start, then release it.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if coldReturns.Load() != 1 {
		t.Fatalf("%d callers reported a cold result, want exactly 1", coldReturns.Load())
	}
}

func TestGroupErrorNotCachedAndRetried(t *testing.T) {
	g := NewGroup[int](nil)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := g.Do(context.Background(), "k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
	v, hit, err := g.Do(context.Background(), "k", func() (int, error) { calls++; return 9, nil })
	if err != nil || v != 9 || hit {
		t.Fatalf("retry Do = (%d, %v, %v), want (9, false, nil)", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

// A waiter whose computation leader fails must retry the computation
// itself rather than inherit the leader's error.
func TestGroupWaiterRetriesAfterLeaderFailure(t *testing.T) {
	g := NewGroup[int](nil)
	started := make(chan struct{})
	release := make(chan struct{})
	go g.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 0, errors.New("leader failed")
	})
	<-started
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := g.Do(context.Background(), "k", func() (int, error) { return 5, nil })
		if err != nil || v != 5 {
			t.Errorf("waiter Do = (%d, %v), want (5, nil)", v, err)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter block on the leader
	close(release)
	<-done
}

func TestGroupWaiterHonorsContext(t *testing.T) {
	g := NewGroup[int](nil)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go g.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := g.Do(ctx, "k", func() (int, error) { return 1, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter error = %v, want DeadlineExceeded", err)
	}
}

func TestLRUEviction(t *testing.T) {
	l := NewLRU[int](2)
	l.Put("aa", 1)
	l.Put("bb", 2)
	l.Get("aa") // refresh aa; bb is now oldest
	l.Put("cc", 3)
	if _, ok := l.Get("bb"); ok {
		t.Fatal("bb should have been evicted")
	}
	if _, ok := l.Get("aa"); !ok {
		t.Fatal("aa should have survived")
	}
	if l.Len() != 2 || l.Evictions() != 1 {
		t.Fatalf("Len=%d Evictions=%d, want 2, 1", l.Len(), l.Evictions())
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "deadbeef00"
	if _, ok, err := d.Get(key); ok || err != nil {
		t.Fatalf("Get on empty store = (%v, %v)", ok, err)
	}
	if err := d.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := d.Get(key)
	if err != nil || !ok || string(data) != "payload" {
		t.Fatalf("Get = (%q, %v, %v)", data, ok, err)
	}
	if n, err := d.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want 1", n, err)
	}
	// No stray temp files after a successful Put.
	matches, _ := filepath.Glob(filepath.Join(d.Root(), "de", ".*tmp*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func TestDiskRejectsHostileKeys(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "ab", "../../etc/passwd", "ABCDEF00", "abcd/ef00"} {
		if err := d.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a hostile key", key)
		}
		if _, _, err := d.Get(key); err == nil {
			t.Errorf("Get(%q) accepted a hostile key", key)
		}
	}
}

func TestByteStoreTiering(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenByteStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	key := "cafe0123"
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("value"), nil }

	if _, hit, err := s.Do(context.Background(), key, compute); err != nil || hit {
		t.Fatalf("cold Do = (hit=%v, %v)", hit, err)
	}
	if _, hit, err := s.Do(context.Background(), key, compute); err != nil || !hit {
		t.Fatalf("warm Do = (hit=%v, %v)", hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}

	// A fresh store over the same directory must hit on disk and promote
	// into memory.
	s2, err := OpenByteStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	data, hit, err := s2.Do(context.Background(), key, compute)
	if err != nil || !hit || string(data) != "value" {
		t.Fatalf("restart Do = (%q, hit=%v, %v)", data, hit, err)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemEntries != 1 {
		t.Fatalf("restart stats = %+v, want one disk hit promoted to memory", st)
	}
	if v, ok := s2.Get(key); !ok || string(v) != "value" {
		t.Fatalf("Get after promotion = (%q, %v)", v, ok)
	}
	if st := s2.Stats(); st.MemHits == 0 {
		t.Fatalf("promotion did not land in memory: %+v", st)
	}
}

func TestByteStoreMemoryOnly(t *testing.T) {
	s, err := OpenByteStore("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Persistent() {
		t.Fatal("memory-only store claims persistence")
	}
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("abcd%04d", i), []byte{byte(i)})
	}
	if st := s.Stats(); st.MemEntries != 2 || st.Evictions != 2 {
		t.Fatalf("stats after overflow = %+v, want 2 entries, 2 evictions", st)
	}
}

func TestByteStoreSurvivesCorruptDiskDir(t *testing.T) {
	// A file squatting where the shard directory should go makes every
	// disk write fail; the store must keep serving from memory and count
	// the errors.
	dir := t.TempDir()
	s, err := OpenByteStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := "beef0000"
	if err := os.WriteFile(filepath.Join(dir, key[:2]), []byte("squat"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, hit, err := s.Do(context.Background(), key, func() ([]byte, error) { return []byte("v"), nil })
	if err != nil || hit || string(data) != "v" {
		t.Fatalf("Do with broken disk = (%q, %v, %v)", data, hit, err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("value lost: memory layer should still hold it")
	}
	if st := s.Stats(); st.DiskErrors == 0 {
		t.Fatalf("disk errors not counted: %+v", st)
	}
}
