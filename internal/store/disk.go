package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Disk is a content-addressed on-disk byte store. Each entry lives at
// <root>/<key[:2]>/<key>; writes go through a temp file plus rename, so a
// crash mid-write never leaves a truncated entry behind. Keys are expected
// to be hex digests; anything that could escape the root is rejected.
type Disk struct{ root string }

// OpenDisk opens (creating if needed) an on-disk store rooted at root.
func OpenDisk(root string) (*Disk, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening disk layer: %w", err)
	}
	return &Disk{root: root}, nil
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

func validKey(key string) error {
	if len(key) < 4 || len(key) > 256 {
		return fmt.Errorf("store: key %q has unreasonable length", key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return fmt.Errorf("store: key %q is not a lowercase hex digest", key)
		}
	}
	return nil
}

func (d *Disk) path(key string) string {
	return filepath.Join(d.root, key[:2], key)
}

// Get returns the stored bytes for key. A missing entry is (nil, false,
// nil); an unreadable one reports its error.
func (d *Disk) Get(key string) ([]byte, bool, error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(d.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: reading %s: %w", key, err)
	}
	return data, true, nil
}

// Put atomically stores data under key.
func (d *Disk) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	dir := filepath.Dir(d.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path(key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", key, werr)
	}
	return nil
}

// Len walks the store and returns the number of entries (it is O(entries);
// intended for tests and diagnostics, not hot paths).
func (d *Disk) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(d.root, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() && validKey(de.Name()) == nil {
			n++
		}
		return nil
	})
	return n, err
}
