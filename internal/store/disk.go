package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// Fault-injection site names for the disk layer (armed by a
// faultinject.Plan; see docs/ROBUSTNESS.md).
const (
	// SiteDiskRead fires around entry reads. An io-class point fails the
	// read; a corrupt-class point flips a bit in the raw entry bytes
	// before verification, exercising the quarantine path.
	SiteDiskRead = "store.disk.read"
	// SiteDiskWrite fires before the temp-file write of a Put.
	SiteDiskWrite = "store.disk.write"
	// SiteDiskRename fires before the atomic rename that commits a Put.
	SiteDiskRename = "store.disk.rename"
)

// Faults is the store's seam for deterministic fault injection
// (*faultinject.Injector satisfies it). A nil Faults disables injection;
// the disk layer guards every use behind a single nil check.
type Faults interface {
	// Fail returns the error to inject at site, or nil.
	Fail(site string) error
	// Corrupt optionally returns a corrupted copy of data at site.
	Corrupt(site string, data []byte) ([]byte, bool)
}

// ErrCorrupt matches (via errors.Is) a Get that found an entry whose
// bytes failed integrity verification. The entry has already been
// quarantined; callers treat the key as absent and recompute.
var ErrCorrupt = errors.New("store: corrupt entry")

// Entry framing: every on-disk entry is a fixed header — magic, then the
// SHA-256 of the payload — followed by the payload. Get verifies the
// digest on every read, so a flipped bit anywhere in the file (header or
// payload) is detected before the bytes are served as a cached result.
const (
	entryMagic      = "SDS1"
	entryHeaderSize = len(entryMagic) + sha256.Size
)

// quarantineDirName is where corrupt entries are moved, preserved for
// post-mortem under <root>/quarantine/<key>.
const quarantineDirName = "quarantine"

// DefaultQuarantineTTL is how long quarantined corrupt entries are kept
// for post-mortem before OpenDisk sweeps them. Quarantine is evidence,
// not storage: unbounded retention would let a slowly-rotting disk fill
// itself with its own corpses.
const DefaultQuarantineTTL = 7 * 24 * time.Hour

// SealEntry frames payload with the store's integrity header (magic plus
// the SHA-256 of the payload). It is the on-disk entry format, and also
// the peer-transfer format of internal/cluster: a fetched entry is
// verified with OpenEntry on the receiving node, so a corrupt peer
// response is detected exactly like a flipped bit on local disk.
func SealEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, entryHeaderSize+len(payload))
	buf = append(buf, entryMagic...)
	buf = append(buf, sum[:]...)
	return append(buf, payload...)
}

// OpenEntry verifies raw's framing and digest and returns the payload.
func OpenEntry(raw []byte) ([]byte, error) {
	if len(raw) < entryHeaderSize || !bytes.HasPrefix(raw, []byte(entryMagic)) {
		return nil, errors.New("bad entry header")
	}
	payload := raw[entryHeaderSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[len(entryMagic):entryHeaderSize]) {
		return nil, errors.New("payload digest mismatch")
	}
	return payload, nil
}

// Disk is a content-addressed on-disk byte store. Each entry lives at
// <root>/<key[:2]>/<key> framed by a checksummed header that Get verifies
// on every read; corrupt entries are quarantined to <root>/quarantine/
// and reported as ErrCorrupt so the tier above recomputes them
// (read-repair). Writes go through a temp file plus rename, so a crash
// mid-write never leaves a truncated entry behind; temp files orphaned by
// a crash are swept at OpenDisk time. Keys are expected to be hex
// digests; anything that could escape the root is rejected.
type Disk struct {
	root   string
	faults Faults

	corruptions atomic.Uint64 // entries that failed verification
	quarantined atomic.Uint64 // corrupt entries preserved in quarantine/
	orphans     atomic.Uint64 // tmp files swept at open
	qswept      atomic.Uint64 // aged-out quarantine files swept at open
}

// OpenDisk opens (creating if needed) an on-disk store rooted at root,
// sweeping any orphaned temp files a previous crash left behind and any
// quarantined entries older than DefaultQuarantineTTL.
func OpenDisk(root string) (*Disk, error) {
	return OpenDiskTTL(root, 0)
}

// OpenDiskTTL is OpenDisk with an explicit quarantine retention: files
// under <root>/quarantine/ older than ttl are removed at open (0 selects
// DefaultQuarantineTTL, < 0 keeps quarantined entries forever).
func OpenDiskTTL(root string, ttl time.Duration) (*Disk, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening disk layer: %w", err)
	}
	d := &Disk{root: root}
	d.sweepOrphans()
	if ttl == 0 {
		ttl = DefaultQuarantineTTL
	}
	if ttl > 0 {
		d.sweepQuarantine(ttl)
	}
	return d, nil
}

// SetFaults arms the disk layer's fault-injection seam (nil disarms).
// Not safe to call concurrently with Get/Put.
func (d *Disk) SetFaults(f Faults) { d.faults = f }

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

// QuarantineDir returns the directory corrupt entries are moved to.
func (d *Disk) QuarantineDir() string { return filepath.Join(d.root, quarantineDirName) }

// Corruptions returns how many entries failed integrity verification.
func (d *Disk) Corruptions() uint64 { return d.corruptions.Load() }

// Quarantined returns how many corrupt entries were preserved in the
// quarantine directory (<= Corruptions; a failed move deletes instead).
func (d *Disk) Quarantined() uint64 { return d.quarantined.Load() }

// OrphansSwept returns how many crash-orphaned temp files OpenDisk
// removed.
func (d *Disk) OrphansSwept() uint64 { return d.orphans.Load() }

// QuarantineSwept returns how many aged-out quarantined entries OpenDisk
// removed.
func (d *Disk) QuarantineSwept() uint64 { return d.qswept.Load() }

func validKey(key string) error {
	if len(key) < 4 || len(key) > 256 {
		return fmt.Errorf("store: key %q has unreasonable length", key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return fmt.Errorf("store: key %q is not a lowercase hex digest", key)
		}
	}
	return nil
}

func (d *Disk) path(key string) string {
	return filepath.Join(d.root, key[:2], key)
}

// isTmpName matches the temp files Put creates ("." + key + ".tmp" +
// random suffix).
func isTmpName(name string) bool {
	return strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp")
}

// sweepOrphans removes temp files left by a crash mid-Put. The
// quarantine directory is left untouched.
func (d *Disk) sweepOrphans() {
	filepath.WalkDir(d.root, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return nil // best effort: an unreadable corner must not fail open
		}
		if de.IsDir() {
			if de.Name() == quarantineDirName && path != d.root {
				return fs.SkipDir
			}
			return nil
		}
		if isTmpName(de.Name()) {
			if os.Remove(path) == nil {
				d.orphans.Add(1)
			}
		}
		return nil
	})
}

// sweepQuarantine removes quarantined entries whose modification time —
// set when quarantine moved them, i.e. when the corruption was detected —
// is older than ttl. Mirrors the orphan-.tmp sweep: best effort, at open
// only, so quarantine keeps recent evidence without growing forever.
func (d *Disk) sweepQuarantine(ttl time.Duration) {
	cutoff := time.Now().Add(-ttl)
	entries, err := os.ReadDir(d.QuarantineDir())
	if err != nil {
		return // no quarantine directory yet, or unreadable: nothing to age out
	}
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil || !info.ModTime().Before(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(d.QuarantineDir(), de.Name())) == nil {
			d.qswept.Add(1)
		}
	}
}

// Get returns the stored bytes for key. A missing entry is (nil, false,
// nil); an unreadable one reports its error; one that fails integrity
// verification is quarantined and reported as an error matching
// ErrCorrupt.
func (d *Disk) Get(key string) ([]byte, bool, error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	if d.faults != nil {
		if err := d.faults.Fail(SiteDiskRead); err != nil {
			return nil, false, fmt.Errorf("store: reading %s: %w", key, err)
		}
	}
	raw, err := os.ReadFile(d.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: reading %s: %w", key, err)
	}
	if d.faults != nil {
		raw, _ = d.faults.Corrupt(SiteDiskRead, raw)
	}
	payload, verr := OpenEntry(raw)
	if verr != nil {
		d.corruptions.Add(1)
		d.quarantine(key)
		return nil, false, fmt.Errorf("store: entry %s: %v: %w", key, verr, ErrCorrupt)
	}
	return payload, true, nil
}

// quarantine moves the entry for key out of the serving tree, preserving
// it under quarantine/ for post-mortem (removed outright if the move
// fails — a corrupt entry must never be served again).
func (d *Disk) quarantine(key string) {
	src := d.path(key)
	qdir := d.QuarantineDir()
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(src, filepath.Join(qdir, key)) == nil {
			d.quarantined.Add(1)
			return
		}
	}
	os.Remove(src)
}

// Put atomically stores data under key (framed with its integrity
// header).
func (d *Disk) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if d.faults != nil {
		if err := d.faults.Fail(SiteDiskWrite); err != nil {
			return fmt.Errorf("store: writing %s: %w", key, err)
		}
	}
	dir := filepath.Dir(d.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	_, werr := tmp.Write(SealEntry(data))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil && d.faults != nil {
		werr = d.faults.Fail(SiteDiskRename)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path(key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", key, werr)
	}
	return nil
}

// Len walks the store and returns the number of entries, not counting
// quarantined ones (it is O(entries); intended for tests and
// diagnostics, not hot paths).
func (d *Disk) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(d.root, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			if de.Name() == quarantineDirName && path != d.root {
				return fs.SkipDir
			}
			return nil
		}
		if validKey(de.Name()) == nil {
			n++
		}
		return nil
	})
	return n, err
}
