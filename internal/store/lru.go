package store

import "container/list"

// LRU is a bounded Backend evicting the least-recently-used entry once it
// exceeds its capacity (in entries). Like Map it is unsynchronized; use it
// under a Group or an external lock.
type LRU[V any] struct {
	capacity  int
	ll        *list.List // front = most recently used
	index     map[string]*list.Element
	evictions uint64
}

type lruEntry[V any] struct {
	key string
	v   V
}

// NewLRU returns an LRU holding at most capacity entries; capacity <= 0
// means unbounded.
func NewLRU[V any](capacity int) *LRU[V] {
	return &LRU[V]{capacity: capacity, ll: list.New(), index: make(map[string]*list.Element)}
}

// Get implements Backend, refreshing the entry's recency on hit.
func (l *LRU[V]) Get(key string) (V, bool) {
	if el, ok := l.index[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).v, true
	}
	var zero V
	return zero, false
}

// Put implements Backend, evicting the oldest entry when over capacity.
func (l *LRU[V]) Put(key string, v V) {
	if el, ok := l.index[key]; ok {
		el.Value.(*lruEntry[V]).v = v
		l.ll.MoveToFront(el)
		return
	}
	l.index[key] = l.ll.PushFront(&lruEntry[V]{key: key, v: v})
	if l.capacity > 0 && l.ll.Len() > l.capacity {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.index, oldest.Value.(*lruEntry[V]).key)
		l.evictions++
	}
}

// Len returns the number of live entries.
func (l *LRU[V]) Len() int { return l.ll.Len() }

// Evictions returns the cumulative eviction count.
func (l *LRU[V]) Evictions() uint64 { return l.evictions }

// Range implements Ranger, most recently used first.
func (l *LRU[V]) Range(f func(key string, v V) bool) {
	for el := l.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry[V])
		if !f(e.key, e.v) {
			return
		}
	}
}
