package store

import (
	"math/rand"
	"sync"
	"time"
)

// breaker states.
const (
	breakerClosed = iota // normal operation
	breakerOpen          // disk bypassed until the cooldown elapses
	breakerHalfOpen      // one probe in flight decides reopen vs close
)

// breaker is a consecutive-failure circuit breaker guarding the disk
// layer. Closed is normal operation; Threshold consecutive I/O failures
// open it, and while open every allow() is refused — the ByteStore then
// runs memory-LRU-only (degraded mode) instead of hammering a dying
// disk. After a jittered cooldown the breaker goes half-open and admits
// a single probe operation: success closes it, failure re-opens it and
// restarts the cooldown. Integrity failures (ErrCorrupt) are data
// problems, not availability problems, and must be reported as success.
type breaker struct {
	threshold int           // consecutive failures to open (<= 0 disables)
	cooldown  time.Duration // base open -> half-open wait, jittered ±50%

	mu       sync.Mutex
	state    int
	failures int       // consecutive failures while closed
	until    time.Time // earliest half-open probe while open
	probing  bool      // a half-open probe is in flight
	trips    uint64    // closed/half-open -> open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// jittered spreads reopen probes so a fleet sharing one sick disk does
// not thundering-herd it (determinism is not needed here; fault plans
// stay deterministic because injection decisions never consult this).
func (b *breaker) jittered() time.Duration {
	return time.Duration((0.5 + rand.Float64()) * float64(b.cooldown))
}

// allow reports whether a disk operation may proceed, transitioning
// open -> half-open when the cooldown has elapsed.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(b.until) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: only the single probe proceeds
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a disk operation that completed at the I/O level.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.probing = false
	}
}

// failure records a disk I/O failure, opening the breaker when the
// consecutive-failure threshold is reached (or immediately on a failed
// half-open probe).
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	}
}

// trip must be called with the lock held.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.failures = 0
	b.probing = false
	b.until = time.Now().Add(b.jittered())
	b.trips++
}

// degraded reports whether the disk is currently bypassed (open) or on
// probation (half-open).
func (b *breaker) degraded() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}

// tripCount returns how many times the breaker has opened.
func (b *breaker) tripCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
