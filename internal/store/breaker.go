package store

import (
	"math/rand"
	"sync"
	"time"
)

// Breaker states.
const (
	breakerClosed   = iota // normal operation
	breakerOpen            // guarded resource bypassed until the cooldown elapses
	breakerHalfOpen        // one probe in flight decides reopen vs close
)

// Breaker is a consecutive-failure circuit breaker guarding an unreliable
// resource — the ByteStore's disk layer, or one remote peer in
// internal/cluster. Closed is normal operation; Threshold consecutive I/O
// failures open it, and while open every Allow is refused — the caller
// then skips the resource (memory-LRU-only for the disk, miss-without-RPC
// for a peer) instead of hammering something that is down. After a
// jittered cooldown the breaker goes half-open and admits a single probe
// operation: success closes it, failure re-opens it and restarts the
// cooldown. Integrity failures (ErrCorrupt, a bad peer payload) are data
// problems, not availability problems, and must be reported as Success.
type Breaker struct {
	threshold int           // consecutive failures to open (<= 0 disables)
	cooldown  time.Duration // base open -> half-open wait, jittered ±50%

	mu       sync.Mutex
	state    int
	failures int       // consecutive failures while closed
	until    time.Time // earliest half-open probe while open
	probing  bool      // a half-open probe is in flight
	trips    uint64    // closed/half-open -> open transitions
}

// NewBreaker returns a Breaker that opens after threshold consecutive
// failures (<= 0 disables it) and waits cooldown (0 = 1s), jittered ±50%,
// before probing again.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// jittered spreads reopen probes so a fleet sharing one sick disk does
// not thundering-herd it (determinism is not needed here; fault plans
// stay deterministic because injection decisions never consult this).
func (b *Breaker) jittered() time.Duration {
	return time.Duration((0.5 + rand.Float64()) * float64(b.cooldown))
}

// Allow reports whether an operation may proceed, transitioning
// open -> half-open when the cooldown has elapsed.
func (b *Breaker) Allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(b.until) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: only the single probe proceeds
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records an operation that completed at the I/O level.
func (b *Breaker) Success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.probing = false
	}
}

// Failure records an I/O failure, opening the breaker when the
// consecutive-failure threshold is reached (or immediately on a failed
// half-open probe).
func (b *Breaker) Failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	}
}

// trip must be called with the lock held.
func (b *Breaker) trip() {
	b.state = breakerOpen
	b.failures = 0
	b.probing = false
	b.until = time.Now().Add(b.jittered())
	b.trips++
}

// Degraded reports whether the resource is currently bypassed (open) or
// on probation (half-open).
func (b *Breaker) Degraded() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}

// TripCount returns how many times the breaker has opened.
func (b *Breaker) TripCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
