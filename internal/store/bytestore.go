package store

import (
	"context"
	"sync"
)

// ByteStore is the content-addressed result store: a single-flight Group
// in front of an in-memory LRU in front of an optional on-disk layer.
// Lookups try memory, then disk (promoting disk hits into memory);
// successful computations are written through to both. Disk read/write
// errors never fail a request — the entry is simply treated as absent and
// the error counted in Stats.
type ByteStore struct {
	group *Group[[]byte]

	mu       sync.Mutex
	mem      *LRU[[]byte]
	disk     *Disk
	memHits  uint64
	diskHits uint64
	misses   uint64
	diskErrs uint64
}

// ByteStoreStats is a snapshot of store counters.
type ByteStoreStats struct {
	MemHits    uint64 // lookups served from the in-memory LRU
	DiskHits   uint64 // lookups served from disk
	Misses     uint64 // lookups that found nothing and had to compute
	DiskErrors uint64 // disk reads/writes that failed (entry treated as absent)
	MemEntries int    // live entries in the in-memory LRU
	Evictions  uint64 // LRU evictions
}

// Hits returns total cache hits across both layers.
func (s ByteStoreStats) Hits() uint64 { return s.MemHits + s.DiskHits }

// OpenByteStore opens a store with an in-memory LRU of memEntries entries
// (<= 0 means unbounded) backed by an on-disk layer at dir; an empty dir
// selects a memory-only store.
func OpenByteStore(dir string, memEntries int) (*ByteStore, error) {
	s := &ByteStore{mem: NewLRU[[]byte](memEntries)}
	if dir != "" {
		d, err := OpenDisk(dir)
		if err != nil {
			return nil, err
		}
		s.disk = d
	}
	s.group = NewGroup[[]byte](tiered{s})
	return s, nil
}

// tiered adapts the two storage layers to the Group's Backend interface
// without exposing Backend methods on ByteStore itself (ByteStore.Get/Put
// are the synchronized public equivalents).
type tiered struct{ s *ByteStore }

func (t tiered) Get(key string) ([]byte, bool) { return t.s.Get(key) }
func (t tiered) Put(key string, v []byte)      { t.s.Put(key, v) }

// Get returns the stored bytes for key, trying memory then disk. A disk
// hit is promoted into memory.
func (s *ByteStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.mem.Get(key); ok {
		s.memHits++
		return v, true
	}
	if s.disk != nil {
		v, ok, err := s.disk.Get(key)
		if err != nil {
			s.diskErrs++
		} else if ok {
			s.diskHits++
			s.mem.Put(key, v)
			return v, true
		}
	}
	s.misses++
	return nil, false
}

// Put writes the entry through both layers. Callers must not mutate data
// afterwards.
func (s *ByteStore) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem.Put(key, data)
	if s.disk != nil {
		if err := s.disk.Put(key, data); err != nil {
			s.diskErrs++
		}
	}
}

// Do returns the stored bytes for key, computing (and storing) them at
// most once across concurrent callers. hit reports whether any layer
// already held the value. See Group.Do for the cancellation contract.
func (s *ByteStore) Do(ctx context.Context, key string, compute func() ([]byte, error)) (data []byte, hit bool, err error) {
	return s.group.Do(ctx, key, compute)
}

// Stats returns a snapshot of the store counters.
func (s *ByteStore) Stats() ByteStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ByteStoreStats{
		MemHits:    s.memHits,
		DiskHits:   s.diskHits,
		Misses:     s.misses,
		DiskErrors: s.diskErrs,
		MemEntries: s.mem.Len(),
		Evictions:  s.mem.Evictions(),
	}
}

// Persistent reports whether the store has an on-disk layer.
func (s *ByteStore) Persistent() bool { return s.disk != nil }
