package store

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ByteStore is the content-addressed result store: a single-flight Group
// in front of an in-memory LRU in front of an optional on-disk layer.
// Lookups try memory, then disk (promoting disk hits into memory);
// successful computations are written through to both. Disk read/write
// errors never fail a request — the entry is simply treated as absent and
// the error counted in Stats. Two self-healing behaviours sit on top:
//
//   - Integrity: the disk layer verifies a checksummed header on every
//     read. A corrupt entry is quarantined and counted, the lookup misses,
//     and the recomputed value is written back through Put — read-repair,
//     serialized by the Group's single-flight.
//   - Availability: consecutive disk I/O failures trip a circuit breaker
//     (closed -> open -> half-open with jittered backoff). While the
//     breaker is not closed the store runs memory-LRU-only; Degraded
//     reports that state so the service can surface it on /healthz.
type ByteStore struct {
	group *Group[[]byte]
	br    *breaker

	mu       sync.Mutex
	mem      *LRU[[]byte]
	disk     *Disk
	memHits  uint64
	diskHits uint64
	misses   uint64
	diskErrs uint64
}

// ByteStoreStats is a snapshot of store counters.
type ByteStoreStats struct {
	MemHits     uint64 // lookups served from the in-memory LRU
	DiskHits    uint64 // lookups served from disk
	Misses      uint64 // lookups that found nothing and had to compute
	DiskErrors  uint64 // disk reads/writes that failed (entry treated as absent)
	MemEntries  int    // live entries in the in-memory LRU
	Evictions   uint64 // LRU evictions
	Corruptions uint64 // entries that failed integrity verification
	Quarantined uint64 // corrupt entries preserved under quarantine/
	BreakerTrips uint64 // times the disk circuit breaker opened
	Degraded    bool   // disk currently bypassed by the breaker
}

// Hits returns total cache hits across both layers.
func (s ByteStoreStats) Hits() uint64 { return s.MemHits + s.DiskHits }

// Options parameterizes OpenByteStoreWith.
type Options struct {
	// Dir is the on-disk layer root ("" = memory only).
	Dir string
	// MemEntries bounds the in-memory LRU (<= 0 = unbounded).
	MemEntries int
	// Faults arms the disk layer's fault-injection seam (nil = none).
	Faults Faults
	// BreakerThreshold is how many consecutive disk I/O failures trip the
	// circuit breaker (0 = 5, < 0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is the base open -> half-open wait, jittered ±50%
	// (0 = 1s).
	BreakerCooldown time.Duration
}

// OpenByteStore opens a store with an in-memory LRU of memEntries entries
// (<= 0 means unbounded) backed by an on-disk layer at dir; an empty dir
// selects a memory-only store.
func OpenByteStore(dir string, memEntries int) (*ByteStore, error) {
	return OpenByteStoreWith(Options{Dir: dir, MemEntries: memEntries})
}

// OpenByteStoreWith opens a store with explicit Options.
func OpenByteStoreWith(o Options) (*ByteStore, error) {
	threshold := o.BreakerThreshold
	if threshold == 0 {
		threshold = 5
	}
	s := &ByteStore{
		mem: NewLRU[[]byte](o.MemEntries),
		br:  newBreaker(threshold, o.BreakerCooldown),
	}
	if o.Dir != "" {
		d, err := OpenDisk(o.Dir)
		if err != nil {
			return nil, err
		}
		d.SetFaults(o.Faults)
		s.disk = d
	}
	s.group = NewGroup[[]byte](tiered{s})
	return s, nil
}

// tiered adapts the two storage layers to the Group's Backend interface
// without exposing Backend methods on ByteStore itself (ByteStore.Get/Put
// are the synchronized public equivalents).
type tiered struct{ s *ByteStore }

func (t tiered) Get(key string) ([]byte, bool) { return t.s.Get(key) }
func (t tiered) Put(key string, v []byte)      { t.s.Put(key, v) }

// Get returns the stored bytes for key, trying memory then disk. A disk
// hit is promoted into memory.
func (s *ByteStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.mem.Get(key); ok {
		s.memHits++
		return v, true
	}
	if s.disk != nil && s.br.allow() {
		v, ok, err := s.disk.Get(key)
		switch {
		case err == nil && ok:
			s.br.success()
			s.diskHits++
			s.mem.Put(key, v)
			return v, true
		case err == nil:
			s.br.success() // a clean miss is healthy I/O
		case errors.Is(err, ErrCorrupt):
			// Verification failure: the disk answered, the data was rot.
			// Quarantine already happened in the layer below; the miss
			// below triggers recomputation and Put writes fresh bytes
			// back (read-repair).
			s.br.success()
		default:
			s.diskErrs++
			s.br.failure()
		}
	}
	s.misses++
	return nil, false
}

// Put writes the entry through both layers. Callers must not mutate data
// afterwards.
func (s *ByteStore) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem.Put(key, data)
	if s.disk != nil && s.br.allow() {
		if err := s.disk.Put(key, data); err != nil {
			s.diskErrs++
			s.br.failure()
		} else {
			s.br.success()
		}
	}
}

// Do returns the stored bytes for key, computing (and storing) them at
// most once across concurrent callers. hit reports whether any layer
// already held the value. See Group.Do for the cancellation contract.
func (s *ByteStore) Do(ctx context.Context, key string, compute func() ([]byte, error)) (data []byte, hit bool, err error) {
	return s.group.Do(ctx, key, compute)
}

// Stats returns a snapshot of the store counters.
func (s *ByteStore) Stats() ByteStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ByteStoreStats{
		MemHits:      s.memHits,
		DiskHits:     s.diskHits,
		Misses:       s.misses,
		DiskErrors:   s.diskErrs,
		MemEntries:   s.mem.Len(),
		Evictions:    s.mem.Evictions(),
		BreakerTrips: s.br.tripCount(),
		Degraded:     s.br.degraded(),
	}
	if s.disk != nil {
		st.Corruptions = s.disk.Corruptions()
		st.Quarantined = s.disk.Quarantined()
	}
	return st
}

// Degraded reports whether the disk layer is currently bypassed by the
// circuit breaker (the store is serving memory-LRU-only).
func (s *ByteStore) Degraded() bool { return s.br.degraded() }

// Persistent reports whether the store has an on-disk layer.
func (s *ByteStore) Persistent() bool { return s.disk != nil }
