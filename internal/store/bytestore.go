package store

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Remote is an optional third storage tier consulted by Do after both
// local tiers miss — in practice internal/cluster's peer fetch, which
// asks the consistent-hash owner of the key. Fetch returns (data, true,
// nil) on a remote hit, (nil, false, nil) on a clean remote miss (the key
// is owned locally, or the owner does not have it), and an error when the
// owner could not be consulted (unreachable peer, corrupt payload —
// per-peer breakers live below this interface). Implementations must be
// safe for concurrent calls.
type Remote interface {
	Fetch(key string) ([]byte, bool, error)
}

// Replicator is an optional write fan-out consulted by Do after a fresh
// computation: the cluster layer pushes the new entry to the other
// members of its replica set, asynchronously and best-effort. It fires
// only for values this node actually computed — never for peer-tier
// hits or replica writes accepted from peers, which is what keeps a
// replicating fleet from echoing entries back and forth.
// Implementations must be safe for concurrent calls and must not mutate
// or retain-and-modify data.
type Replicator interface {
	Replicate(key string, data []byte)
}

// ByteStore is the content-addressed result store: a single-flight Group
// in front of an in-memory LRU in front of an optional on-disk layer,
// with an optional remote peer tier behind both. Lookups try memory,
// then disk (promoting disk hits into memory); Do additionally tries the
// peer tier before computing, and a peer hit is written through both
// local tiers (promotion) so the next lookup is local. Disk read/write
// errors never fail a request — the entry is simply treated as absent and
// the error counted in Stats — and neither do peer errors. Two
// self-healing behaviours sit on top:
//
//   - Integrity: the disk layer verifies a checksummed header on every
//     read. A corrupt entry is quarantined and counted, the lookup misses,
//     and the recomputed value is written back through Put — read-repair,
//     serialized by the Group's single-flight.
//   - Availability: consecutive disk I/O failures trip a circuit breaker
//     (closed -> open -> half-open with jittered backoff). While the
//     breaker is not closed the store runs memory-LRU-only; Degraded
//     reports that state so the service can surface it on /healthz.
//     (The peer tier has its own per-peer breakers, inside Remote.)
type ByteStore struct {
	group  *Group[[]byte]
	br     *Breaker
	remote Remote
	repl   Replicator

	peerHits atomic.Uint64
	peerErrs atomic.Uint64

	mu       sync.Mutex
	mem      *LRU[[]byte]
	disk     *Disk
	memHits  uint64
	diskHits uint64
	misses   uint64
	diskErrs uint64
}

// ByteStoreStats is a snapshot of store counters.
type ByteStoreStats struct {
	MemHits      uint64 // lookups served from the in-memory LRU
	DiskHits     uint64 // lookups served from disk
	PeerHits     uint64 // Do calls served from the remote peer tier
	Misses       uint64 // lookups that found nothing locally
	DiskErrors   uint64 // disk reads/writes that failed (entry treated as absent)
	PeerErrors   uint64 // peer fetches that failed (entry treated as absent)
	MemEntries   int    // live entries in the in-memory LRU
	Evictions    uint64 // LRU evictions
	Corruptions  uint64 // entries that failed integrity verification
	Quarantined  uint64 // corrupt entries preserved under quarantine/
	BreakerTrips uint64 // times the disk circuit breaker opened
	Degraded     bool   // disk currently bypassed by the breaker
}

// Hits returns total cache hits across all layers.
func (s ByteStoreStats) Hits() uint64 { return s.MemHits + s.DiskHits + s.PeerHits }

// Options parameterizes OpenByteStoreWith.
type Options struct {
	// Dir is the on-disk layer root ("" = memory only).
	Dir string
	// MemEntries bounds the in-memory LRU (<= 0 = unbounded).
	MemEntries int
	// Faults arms the disk layer's fault-injection seam (nil = none).
	Faults Faults
	// BreakerThreshold is how many consecutive disk I/O failures trip the
	// circuit breaker (0 = 5, < 0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is the base open -> half-open wait, jittered ±50%
	// (0 = 1s).
	BreakerCooldown time.Duration
	// QuarantineTTL bounds how long quarantined corrupt entries are kept
	// before OpenDisk sweeps them (0 = DefaultQuarantineTTL, < 0 = keep
	// forever).
	QuarantineTTL time.Duration
	// Remote is the optional peer tier consulted by Do after both local
	// tiers miss (nil = none; the single-node paths pay one nil check).
	Remote Remote
}

// OpenByteStore opens a store with an in-memory LRU of memEntries entries
// (<= 0 means unbounded) backed by an on-disk layer at dir; an empty dir
// selects a memory-only store.
func OpenByteStore(dir string, memEntries int) (*ByteStore, error) {
	return OpenByteStoreWith(Options{Dir: dir, MemEntries: memEntries})
}

// OpenByteStoreWith opens a store with explicit Options.
func OpenByteStoreWith(o Options) (*ByteStore, error) {
	threshold := o.BreakerThreshold
	if threshold == 0 {
		threshold = 5
	}
	s := &ByteStore{
		mem:    NewLRU[[]byte](o.MemEntries),
		br:     NewBreaker(threshold, o.BreakerCooldown),
		remote: o.Remote,
	}
	if o.Dir != "" {
		d, err := OpenDiskTTL(o.Dir, o.QuarantineTTL)
		if err != nil {
			return nil, err
		}
		d.SetFaults(o.Faults)
		s.disk = d
	}
	s.group = NewGroup[[]byte](tiered{s})
	return s, nil
}

// SetRemote arms (or with nil disarms) the peer tier. Not safe to call
// concurrently with Do; intended for wiring right after construction,
// before the store serves traffic.
func (s *ByteStore) SetRemote(r Remote) { s.remote = r }

// SetReplicator arms (or with nil disarms) the write fan-out. Same
// wiring contract as SetRemote: call before the store serves traffic.
func (s *ByteStore) SetReplicator(r Replicator) { s.repl = r }

// tiered adapts the two storage layers to the Group's Backend interface
// without exposing Backend methods on ByteStore itself (ByteStore.Get/Put
// are the synchronized public equivalents).
type tiered struct{ s *ByteStore }

func (t tiered) Get(key string) ([]byte, bool) { return t.s.Get(key) }
func (t tiered) Put(key string, v []byte)      { t.s.Put(key, v) }

// Get returns the stored bytes for key, trying memory then disk. A disk
// hit is promoted into memory. Get is strictly local: the peer tier is
// consulted only by Do, so a node serving its own store to peers can
// never be tricked into fetching from them in turn.
func (s *ByteStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.mem.Get(key); ok {
		s.memHits++
		return v, true
	}
	if s.disk != nil && s.br.Allow() {
		v, ok, err := s.disk.Get(key)
		switch {
		case err == nil && ok:
			s.br.Success()
			s.diskHits++
			s.mem.Put(key, v)
			return v, true
		case err == nil:
			s.br.Success() // a clean miss is healthy I/O
		case errors.Is(err, ErrCorrupt):
			// Verification failure: the disk answered, the data was rot.
			// Quarantine already happened in the layer below; the miss
			// below triggers recomputation and Put writes fresh bytes
			// back (read-repair).
			s.br.Success()
		default:
			s.diskErrs++
			s.br.Failure()
		}
	}
	s.misses++
	return nil, false
}

// Put writes the entry through both local layers. Callers must not mutate
// data afterwards.
func (s *ByteStore) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem.Put(key, data)
	if s.disk != nil && s.br.Allow() {
		if err := s.disk.Put(key, data); err != nil {
			s.diskErrs++
			s.br.Failure()
		} else {
			s.br.Success()
		}
	}
}

// Do returns the stored bytes for key, computing (and storing) them at
// most once across concurrent callers. On a local miss the remote peer
// tier (if armed) is consulted before compute runs — inside the
// single-flight, so concurrent callers for one key trigger at most one
// peer RPC — and a peer hit is promoted through both local tiers. hit
// reports whether any tier (local or peer) already held the value. A
// failed peer fetch is counted and falls through to compute; it never
// fails the request. See Group.Do for the cancellation contract.
func (s *ByteStore) Do(ctx context.Context, key string, compute func() ([]byte, error)) (data []byte, hit bool, err error) {
	if s.remote == nil {
		data, hit, err = s.group.Do(ctx, key, compute)
		if !hit && err == nil && s.repl != nil {
			s.repl.Replicate(key, data)
		}
		return data, hit, err
	}
	fromPeer := false
	data, hit, err = s.group.Do(ctx, key, func() ([]byte, error) {
		if v, ok := s.fetchRemote(key); ok {
			fromPeer = true
			return v, nil
		}
		return compute()
	})
	// Only the leader's closure can set fromPeer, and it is only read
	// after that leader's Do returns: a peer hit is a cache hit to the
	// caller, not a computation. Replication fires exactly when this
	// call ran compute — a peer hit means the value's replica set
	// already holds it (or is receiving it from its computer).
	if !hit && !fromPeer && err == nil && s.repl != nil {
		s.repl.Replicate(key, data)
	}
	if fromPeer {
		hit = true
	}
	return data, hit, err
}

// fetchRemote consults the peer tier, counting hits and failures.
func (s *ByteStore) fetchRemote(key string) ([]byte, bool) {
	v, ok, err := s.remote.Fetch(key)
	switch {
	case err != nil:
		s.peerErrs.Add(1)
		return nil, false
	case ok:
		s.peerHits.Add(1)
		return v, true
	default:
		return nil, false
	}
}

// Stats returns a snapshot of the store counters.
func (s *ByteStore) Stats() ByteStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ByteStoreStats{
		MemHits:      s.memHits,
		DiskHits:     s.diskHits,
		PeerHits:     s.peerHits.Load(),
		Misses:       s.misses,
		DiskErrors:   s.diskErrs,
		PeerErrors:   s.peerErrs.Load(),
		MemEntries:   s.mem.Len(),
		Evictions:    s.mem.Evictions(),
		BreakerTrips: s.br.TripCount(),
		Degraded:     s.br.Degraded(),
	}
	if s.disk != nil {
		st.Corruptions = s.disk.Corruptions()
		st.Quarantined = s.disk.Quarantined()
	}
	return st
}

// Degraded reports whether the disk layer is currently bypassed by the
// circuit breaker (the store is serving memory-LRU-only).
func (s *ByteStore) Degraded() bool { return s.br.Degraded() }

// Persistent reports whether the store has an on-disk layer.
func (s *ByteStore) Persistent() bool { return s.disk != nil }
