package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdt/internal/faultinject"
)

// flipOneBit corrupts the on-disk entry file for key in place.
func flipOneBit(t *testing.T, d *Disk, key string) {
	t.Helper()
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Satellite: orphaned temp files left by a crash mid-Put are swept at
// OpenDisk time; real entries and quarantined files survive.
func TestOpenDiskSweepsOrphanTmp(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	key := "deadbeef00"
	if err := d.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Plant crash debris: a tmp file in a shard dir, one at the root, and
	// a file in quarantine that must NOT be touched.
	orphan1 := filepath.Join(root, "de", "."+key+".tmp12345")
	orphan2 := filepath.Join(root, ".cafecafe00.tmp9")
	qfile := filepath.Join(root, quarantineDirName, ".weird.tmpname")
	for _, f := range []string{orphan1, orphan2} {
		if err := os.WriteFile(f, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Dir(qfile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(qfile, []byte("preserved"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.OrphansSwept(); got != 2 {
		t.Errorf("OrphansSwept = %d, want 2", got)
	}
	for _, f := range []string{orphan1, orphan2} {
		if _, err := os.Stat(f); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphan %s survived the sweep", f)
		}
	}
	if _, err := os.Stat(qfile); err != nil {
		t.Errorf("quarantined file was swept: %v", err)
	}
	if data, ok, err := d2.Get(key); err != nil || !ok || string(data) != "payload" {
		t.Errorf("real entry damaged by sweep: (%q, %v, %v)", data, ok, err)
	}
}

func TestDiskQuarantinesCorruptEntry(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "cafe456789"
	if err := d.Put(key, []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	flipOneBit(t, d, key)

	data, ok, err := d.Get(key)
	if ok || data != nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt entry = (%q, %v, %v), want ErrCorrupt", data, ok, err)
	}
	if d.Corruptions() != 1 || d.Quarantined() != 1 {
		t.Fatalf("counters = (%d, %d), want (1, 1)", d.Corruptions(), d.Quarantined())
	}
	// The entry is out of the serving tree and preserved in quarantine.
	if _, err := os.Stat(d.path(key)); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt entry still present in the serving tree")
	}
	if _, err := os.Stat(filepath.Join(d.QuarantineDir(), key)); err != nil {
		t.Errorf("corrupt entry not preserved in quarantine: %v", err)
	}
	// The next Get is a clean miss, and a fresh Put fully heals the key.
	if _, ok, err := d.Get(key); ok || err != nil {
		t.Fatalf("Get after quarantine = (%v, %v), want clean miss", ok, err)
	}
	if err := d.Put(key, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if data, ok, err := d.Get(key); err != nil || !ok || string(data) != "fresh" {
		t.Fatalf("Get after re-Put = (%q, %v, %v)", data, ok, err)
	}
	// A garbage file that never had a valid header is also quarantined.
	key2 := "beefbeef22"
	if err := os.MkdirAll(filepath.Dir(d.path(key2)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path(key2), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get(key2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("headerless entry error = %v, want ErrCorrupt", err)
	}
}

// The store tier recomputes through the single-flight and writes the
// fresh bytes back: a flipped bit costs one recomputation, after which
// the disk entry verifies again.
func TestByteStoreReadRepair(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenByteStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	key := "abcd1234"
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("value"), nil }
	if _, _, err := s.Do(context.Background(), key, compute); err != nil {
		t.Fatal(err)
	}
	flipOneBit(t, s.disk, key)

	// A fresh store over the same dir (cold memory) must detect the rot,
	// recompute, and repair the disk entry.
	s2, err := OpenByteStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	data, hit, err := s2.Do(context.Background(), key, compute)
	if err != nil || hit || string(data) != "value" {
		t.Fatalf("Do over corrupt entry = (%q, hit=%v, %v), want recompute", data, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (original + repair)", calls)
	}
	st := s2.Stats()
	if st.Corruptions != 1 || st.Quarantined != 1 || st.DiskErrors != 0 || st.Degraded {
		t.Fatalf("stats after repair = %+v", st)
	}
	// Third store: the repaired entry must verify and hit on disk.
	s3, err := OpenByteStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	data, hit, err = s3.Do(context.Background(), key, compute)
	if err != nil || !hit || string(data) != "value" || calls != 2 {
		t.Fatalf("post-repair Do = (%q, hit=%v, %v), calls=%d", data, hit, err, calls)
	}
}

// Sustained disk I/O failure trips the breaker into degraded
// (memory-only) mode; once the disk heals, a half-open probe closes it.
func TestByteStoreBreakerDegradesAndRecovers(t *testing.T) {
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		// Every disk write fails for the first 10 fires, then the "disk"
		// heals.
		{Site: SiteDiskWrite, Class: faultinject.ClassIO, Every: 1, Limit: 10},
	}})
	s, err := OpenByteStoreWith(Options{
		Dir:              t.TempDir(),
		MemEntries:       16,
		Faults:           inj,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive failing operations until the breaker opens.
	for i := 0; i < 3; i++ {
		s.Put("aaaa000"+string(rune('0'+i)), []byte("v"))
	}
	st := s.Stats()
	if !st.Degraded || st.BreakerTrips != 1 || st.DiskErrors != 3 {
		t.Fatalf("stats after 3 failures = %+v, want degraded after one trip", st)
	}
	// Degraded mode still serves from memory.
	if v, ok := s.Get("aaaa0000"); !ok || string(v) != "v" {
		t.Fatalf("memory layer lost data in degraded mode: (%q, %v)", v, ok)
	}
	// While open, disk is bypassed: error count must not grow.
	s.Put("bbbb0000", []byte("w"))
	if got := s.Stats().DiskErrors; got != 3 {
		t.Fatalf("disk touched while breaker open (%d errors, want 3)", got)
	}

	// The injector still has fires left; half-open probes keep failing and
	// re-open the breaker. Eventually the limit exhausts, a probe
	// succeeds, and the store leaves degraded mode.
	deadline := time.Now().Add(5 * time.Second)
	for s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after faults exhausted: %+v\n%s", s.Stats(), inj)
		}
		time.Sleep(5 * time.Millisecond)
		s.Put("cccc0000", []byte("x"))
	}
	// Healed: a fresh write round-trips through disk again.
	s.Put("dddd0000", []byte("y"))
	if v, ok, err := s.disk.Get("dddd0000"); err != nil || !ok || string(v) != "y" {
		t.Fatalf("disk after recovery = (%q, %v, %v)", v, ok, err)
	}
}

// Satellite: waiters whose contexts are already cancelled when the
// leader fails must return the context cause, never retry as leader.
func TestGroupWaiterCancelledDuringLeaderFailure(t *testing.T) {
	g := NewGroup[int](nil)
	started := make(chan struct{})
	release := make(chan struct{})
	go g.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 0, errors.New("leader failed")
	})
	<-started

	cause := errors.New("waiter gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	var retried atomic.Int64
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := g.Do(ctx, "k", func() (int, error) {
				retried.Add(1)
				return 1, nil
			})
			results[i] = err
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters block on the leader
	cancel(cause)                     // every waiter's ctx is now over...
	time.Sleep(5 * time.Millisecond)
	close(release) // ...when the leader fails

	wg.Wait()
	if n := retried.Load(); n != 0 {
		t.Fatalf("%d cancelled waiters retried as leader, want 0", n)
	}
	for i, err := range results {
		if !errors.Is(err, cause) {
			t.Errorf("waiter %d error = %v, want the cancellation cause", i, err)
		}
	}
	// And an entirely fresh Do with a dead ctx must not compute either.
	if _, _, err := g.Do(ctx, "k", func() (int, error) {
		retried.Add(1)
		return 1, nil
	}); !errors.Is(err, cause) || retried.Load() != 0 {
		t.Fatalf("pre-cancelled Do = %v (computed %d times), want cause without compute", err, retried.Load())
	}
	// A stored value is still served to a dead ctx: hits are free.
	g.Put("k2", 7)
	if v, hit, err := g.Do(ctx, "k2", nil); err != nil || !hit || v != 7 {
		t.Fatalf("hit with dead ctx = (%d, %v, %v), want (7, true, nil)", v, hit, err)
	}
}

// Injected write/rename failures surface as Put errors; injected read
// failures surface as Get errors — and none of them panic or corrupt the
// good path once the plan's fires are exhausted.
func TestDiskFaultSites(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		{Site: SiteDiskWrite, Class: faultinject.ClassIO, Every: 1, Limit: 1},
		{Site: SiteDiskRename, Class: faultinject.ClassIO, Every: 1, Limit: 1},
		{Site: SiteDiskRead, Class: faultinject.ClassIO, Every: 1, Limit: 1},
	}})
	d.SetFaults(inj)
	key := "feedface01"
	if err := d.Put(key, []byte("v")); !faultinject.IsInjected(err) {
		t.Fatalf("first Put error = %v, want injected write fault", err)
	}
	if err := d.Put(key, []byte("v")); !faultinject.IsInjected(err) {
		t.Fatalf("second Put error = %v, want injected rename fault", err)
	}
	// The failed rename must not leave a temp file behind.
	matches, _ := filepath.Glob(filepath.Join(d.Root(), key[:2], ".*tmp*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left after injected rename failure: %v", matches)
	}
	if err := d.Put(key, []byte("v")); err != nil {
		t.Fatalf("post-exhaustion Put = %v", err)
	}
	if _, _, err := d.Get(key); !faultinject.IsInjected(err) {
		t.Fatalf("first Get error = %v, want injected read fault", err)
	}
	if data, ok, err := d.Get(key); err != nil || !ok || string(data) != "v" {
		t.Fatalf("post-exhaustion Get = (%q, %v, %v)", data, ok, err)
	}
}

// Injected corruption on the read path composes with quarantine and
// read-repair exactly like real bit rot.
func TestDiskInjectedCorruption(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "0123456789"
	if err := d.Put(key, []byte("clean")); err != nil {
		t.Fatal(err)
	}
	d.SetFaults(faultinject.New(&faultinject.Plan{Seed: 11, Points: []faultinject.Point{
		{Site: SiteDiskRead, Class: faultinject.ClassCorrupt, Every: 1, Limit: 1},
	}}))
	if _, _, err := d.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get under injected corruption = %v, want ErrCorrupt", err)
	}
	if d.Corruptions() != 1 {
		t.Fatalf("Corruptions = %d, want 1", d.Corruptions())
	}
	// The entry was quarantined (even though the underlying file was
	// healthy, simulated rot must behave like real rot); re-Put heals.
	if _, ok, err := d.Get(key); ok || err != nil {
		t.Fatalf("Get after injected corruption = (%v, %v), want clean miss", ok, err)
	}
}
