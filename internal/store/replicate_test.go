package store

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// fakeReplicator records Replicate calls.
type fakeReplicator struct {
	mu    sync.Mutex
	calls []string
}

func (f *fakeReplicator) Replicate(key string, data []byte) {
	f.mu.Lock()
	f.calls = append(f.calls, key)
	f.mu.Unlock()
}

func (f *fakeReplicator) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

const replKey = "cd34ef56cd34ef56"

// Replicate fires exactly when this node ran compute: once for a fresh
// computation, never for cache hits, never for peer-tier hits (the peer
// already owns the replica set for that value).
func TestReplicatorFiresOnlyOnCompute(t *testing.T) {
	repl := &fakeReplicator{}
	s, err := OpenByteStoreWith(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s.SetReplicator(repl)

	if _, _, err := s.Do(context.Background(), replKey, func() ([]byte, error) {
		return []byte("fresh"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if repl.count() != 1 {
		t.Fatalf("fresh compute fanned out %d times, want 1", repl.count())
	}

	// Cache hit: no fan-out.
	if _, hit, _ := s.Do(context.Background(), replKey, nil); !hit {
		t.Fatal("cached value not hit")
	}
	if repl.count() != 1 {
		t.Fatalf("cache hit fanned out (%d calls)", repl.count())
	}

	// Failed compute: no fan-out.
	if _, _, err := s.Do(context.Background(), "ee"+replKey, func() ([]byte, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Fatal("failed compute reported success")
	}
	if repl.count() != 1 {
		t.Fatalf("failed compute fanned out (%d calls)", repl.count())
	}
}

// A peer-tier hit must not re-replicate: the value entered this node
// from the fleet, so pushing it back out would bounce entries between
// replicas forever.
func TestReplicatorSilentOnPeerHit(t *testing.T) {
	repl := &fakeReplicator{}
	remote := &fakeRemote{data: map[string][]byte{replKey: []byte("peer bytes")}}
	s, err := OpenByteStoreWith(Options{Dir: t.TempDir(), Remote: remote})
	if err != nil {
		t.Fatal(err)
	}
	s.SetReplicator(repl)

	data, hit, err := s.Do(context.Background(), replKey, func() ([]byte, error) {
		return nil, errors.New("must not compute")
	})
	if err != nil || !hit || string(data) != "peer bytes" {
		t.Fatalf("Do = (%q, %v, %v), want peer hit", data, hit, err)
	}
	if repl.count() != 0 {
		t.Fatalf("peer hit fanned out (%d calls)", repl.count())
	}
}

// The degraded-replica read path: a corrupt disk frame is repaired from
// a replica without rerunning compute, and the repair re-seals the
// local frame so future reads are local again.
func TestCorruptFrameRepairsFromReplicaWithoutCompute(t *testing.T) {
	dir := t.TempDir()
	remote := &fakeRemote{data: map[string][]byte{replKey: []byte("replica copy")}}
	s, err := OpenByteStoreWith(Options{Dir: dir, MemEntries: 1, Remote: remote})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(replKey, []byte("replica copy"))
	// Push the entry out of the memory tier and corrupt the disk frame.
	s.Put("ff"+replKey[2:], []byte("evict"))
	flipOneBit(t, s.disk, replKey)

	data, hit, err := s.Do(context.Background(), replKey, func() ([]byte, error) {
		t.Fatal("compute ran: read repair must come from the replica")
		return nil, nil
	})
	if err != nil || string(data) != "replica copy" {
		t.Fatalf("Do = (%q, %v, %v), want replica repair", data, hit, err)
	}
	st := s.Stats()
	if st.Corruptions != 1 {
		t.Fatalf("stats = %+v, want the corruption counted", st)
	}
	if st.PeerHits != 1 {
		t.Fatalf("stats = %+v, want the repair sourced from the peer tier", st)
	}

	// The repair re-seals the local frame: a fresh store over the same
	// directory serves the key from disk with no remote.
	s2, err := OpenByteStoreWith(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get(replKey); !ok || string(v) != "replica copy" {
		t.Fatalf("repaired frame Get = (%q, %v), want local hit", v, ok)
	}
}
