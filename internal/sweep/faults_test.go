package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sdt/internal/faultinject"
)

// Satellite coverage: retry classification under injected faults. A
// transient fault burns bounded retries and then succeeds; a permanent
// fault is never retried; an always-firing transient site exhausts the
// retry budget and stops — bounded retries are actually bounded.

func newFaultEngine(inj *faultinject.Injector, retries int, execs *atomic.Int64) *Engine[int, int] {
	return &Engine[int, int]{
		Workers:     1,
		Retries:     retries,
		Backoff:     time.Millisecond,
		IsTransient: faultinject.IsTransient,
		Faults:      inj,
		Exec: func(ctx context.Context, i int) (int, error) {
			execs.Add(1)
			return i * 10, nil
		},
	}
}

func TestInjectedTransientFaultRetriedToSuccess(t *testing.T) {
	// The site fires on the first two attempts, then exhausts its limit;
	// the third attempt reaches Exec and succeeds.
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		{Site: SiteCell, Class: faultinject.ClassTransient, Every: 1, Limit: 2},
	}})
	var execs atomic.Int64
	outs, err := newFaultEngine(inj, 3, &execs).Collect(context.Background(), []int{7})
	if err != nil {
		t.Fatal(err)
	}
	o := outs[0]
	if o.Err != nil || o.Result != 70 || o.Attempts != 3 {
		t.Fatalf("outcome = %+v, want success on attempt 3", o)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("Exec ran %d times, want 1 (injected attempts must not execute)", got)
	}
}

func TestInjectedPermanentFaultNeverRetried(t *testing.T) {
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		{Site: SiteCell, Class: faultinject.ClassPermanent, Every: 1},
	}})
	var execs atomic.Int64
	outs, err := newFaultEngine(inj, 5, &execs).Collect(context.Background(), []int{7})
	if err != nil {
		t.Fatal(err)
	}
	o := outs[0]
	if !faultinject.IsInjected(o.Err) || faultinject.IsTransient(o.Err) {
		t.Fatalf("error = %v, want an injected permanent fault", o.Err)
	}
	if o.Attempts != 1 {
		t.Fatalf("permanent fault retried: %d attempts, want 1", o.Attempts)
	}
	if execs.Load() != 0 {
		t.Fatalf("Exec ran %d times past a permanent fault", execs.Load())
	}
	if st := inj.Stats()[SiteCell]; st.Fired != 1 {
		t.Fatalf("site fired %d times, want exactly 1", st.Fired)
	}
}

func TestInjectedTransientFaultBudgetBounded(t *testing.T) {
	// The site always fires: the engine must stop at 1 + Retries attempts
	// and report the transient error, not loop forever.
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		{Site: SiteCell, Class: faultinject.ClassTransient, Every: 1},
	}})
	var execs atomic.Int64
	outs, err := newFaultEngine(inj, 2, &execs).Collect(context.Background(), []int{7})
	if err != nil {
		t.Fatal(err)
	}
	o := outs[0]
	if !faultinject.IsTransient(o.Err) {
		t.Fatalf("error = %v, want the exhausted transient fault", o.Err)
	}
	if o.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", o.Attempts)
	}
	if st := inj.Stats()[SiteCell]; st.Fired != 3 {
		t.Fatalf("site fired %d times, want 3", st.Fired)
	}
	if execs.Load() != 0 {
		t.Fatalf("Exec ran %d times under an always-firing site", execs.Load())
	}
}

func TestInjectedFaultsMixWithRealResults(t *testing.T) {
	// Probabilistic transient injection across a batch: every item must
	// still end in success (retries absorb the faults) and the output
	// must be the correct per-item result.
	inj := faultinject.New(&faultinject.Plan{Seed: 21, Points: []faultinject.Point{
		{Site: SiteCell, Class: faultinject.ClassTransient, Prob: 0.4, Limit: 30},
	}})
	var execs atomic.Int64
	items := make([]int, 24)
	for i := range items {
		items[i] = i
	}
	e := newFaultEngine(inj, 40, &execs)
	e.Workers = 4
	outs, err := e.Collect(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("item %d failed: %v (attempts %d)", o.Index, o.Err, o.Attempts)
		}
		if o.Result != o.Item*10 {
			t.Fatalf("item %d result = %d, want %d", o.Index, o.Result, o.Item*10)
		}
		if o.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("plan injected nothing — probability stream looks dead")
	}
	if got := execs.Load(); got != int64(len(items)) {
		t.Fatalf("Exec ran %d times, want exactly %d (one success per item)", got, len(items))
	}
}

// An engine without Faults must not consult anything (nil fast path) and
// must behave identically to the pre-hook engine.
func TestNilFaultsFastPath(t *testing.T) {
	e := &Engine[int, int]{
		Workers: 2,
		Exec:    func(ctx context.Context, i int) (int, error) { return i, nil },
	}
	outs, err := e.Collect(context.Background(), []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err != nil || o.Result != i+1 || o.Attempts != 1 {
			t.Fatalf("outcome %d = %+v", i, o)
		}
	}
	if errors.Is(outs[0].Err, faultinject.ErrInjected) {
		t.Fatal("impossible: nil-faults engine produced an injected error")
	}
}
