package sweep

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// busyExec is a small CPU-bound cell body (~1µs): enough work that the
// benchmark measures scheduling overhead relative to real computation,
// not channel ping-pong alone.
func busyExec(ctx context.Context, i int) (uint64, error) {
	h := uint64(i) + 0x9e3779b97f4a7c15
	for k := 0; k < 400; k++ {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
	}
	return h, nil
}

func benchEngine(b *testing.B, workers int, ordered bool) {
	items := make([]int, 1024)
	for i := range items {
		items[i] = i
	}
	e := &Engine[int, uint64]{Workers: workers, Exec: busyExec}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var err error
		sink := func(o Outcome[int, uint64]) {}
		if ordered {
			err = e.Ordered(context.Background(), items, sink)
		} else {
			err = e.Stream(context.Background(), items, sink)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(items))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

// BenchmarkSweepStream measures the engine's raw scheduling throughput in
// completion-order mode at full parallelism.
func BenchmarkSweepStream(b *testing.B) {
	benchEngine(b, runtime.GOMAXPROCS(0), false)
}

// BenchmarkSweepOrdered adds the deterministic reorder merge.
func BenchmarkSweepOrdered(b *testing.B) {
	benchEngine(b, runtime.GOMAXPROCS(0), true)
}

// BenchmarkSweepSequential is the single-worker anchor the parallel
// numbers are read against.
func BenchmarkSweepSequential(b *testing.B) {
	benchEngine(b, 1, true)
}

func BenchmarkMatrixExpand(b *testing.B) {
	wls := make([]string, 12)
	for i := range wls {
		wls[i] = fmt.Sprintf("wl%d", i)
	}
	m := Matrix{
		Workloads: wls,
		Archs:     []string{"x86", "sparc"},
		Mechs:     []string{"ibtc:16384", "sieve:16384", "inline:2+ibtc:16384"},
		Scales:    []int{0, 1000, 2000},
	}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if cells := m.Cells(); len(cells) != m.Size() {
			b.Fatal("expansion size mismatch")
		}
	}
}
