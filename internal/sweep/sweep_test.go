package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMatrixCells(t *testing.T) {
	m := Matrix{
		Workloads: []string{"a", "b"},
		Archs:     []string{"x86"},
		Mechs:     []string{"m1", "m2"},
	}
	if got := m.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4 (empty Scales selects the default scale)", got)
	}
	want := []Cell{
		{"a", "x86", "m1", 0}, {"a", "x86", "m2", 0},
		{"b", "x86", "m1", 0}, {"b", "x86", "m2", 0},
	}
	got := m.Cells()
	if len(got) != len(want) {
		t.Fatalf("Cells = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}
	m.Scales = []int{10, 20}
	if got := m.Size(); got != 8 {
		t.Errorf("Size with 2 scales = %d, want 8", got)
	}
	if c := m.Cells()[1]; c.Scale != 20 {
		t.Errorf("second cell scale = %d, want 20", c.Scale)
	}
}

// jitterExec computes a result derived only from the item but takes a
// per-item amount of time, so completion order under parallelism differs
// wildly from item order.
func jitterExec(ctx context.Context, i int) ([]byte, error) {
	time.Sleep(time.Duration((i*37)%5) * time.Millisecond)
	return []byte(fmt.Sprintf("item %d -> %x\n", i, i*i*2654435761)), nil
}

// The core determinism contract: Ordered output at many workers is
// byte-identical to a one-worker (sequential) run. Run under -race in CI.
func TestOrderedDeterministicAcrossWorkerCounts(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		e := &Engine[int, []byte]{Workers: workers, Exec: jitterExec}
		if err := e.Ordered(context.Background(), items, func(o Outcome[int, []byte]) {
			if o.Err != nil {
				t.Errorf("item %d failed: %v", o.Index, o.Err)
			}
			buf.Write(o.Result)
		}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := render(1)
	for _, workers := range []int{4, 8} {
		if parallel := render(workers); !bytes.Equal(sequential, parallel) {
			t.Errorf("%d-worker output differs from sequential:\n%s\n---\n%s",
				workers, sequential, parallel)
		}
	}
}

func TestStreamEmitsEveryItemOnce(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	seen := make([]int, len(items))
	e := &Engine[int, []byte]{Workers: 8, Exec: jitterExec}
	if err := e.Stream(context.Background(), items, func(o Outcome[int, []byte]) {
		seen[o.Index]++
	}); err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("item %d emitted %d times, want 1", i, n)
		}
	}
}

// One poisoned item must yield exactly one error outcome while every
// other item completes.
func TestErrorIsolation(t *testing.T) {
	boom := errors.New("poisoned")
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	e := &Engine[int, string]{
		Workers: 4,
		Exec: func(ctx context.Context, i int) (string, error) {
			if i == 3 {
				return "", boom
			}
			return fmt.Sprint(i), nil
		},
	}
	outs, err := e.Collect(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	var failed, ok int
	for _, o := range outs {
		if o.Err != nil {
			failed++
			if o.Index != 3 || !errors.Is(o.Err, boom) {
				t.Errorf("unexpected failure: index %d err %v", o.Index, o.Err)
			}
		} else {
			ok++
		}
	}
	if failed != 1 || ok != 7 {
		t.Errorf("failed=%d ok=%d, want 1/7", failed, ok)
	}
}

func TestTransientRetry(t *testing.T) {
	transient := errors.New("transient")
	permanent := errors.New("permanent")
	var calls atomic.Int64
	e := &Engine[int, int]{
		Workers: 2,
		Retries: 3,
		Backoff: time.Millisecond,
		IsTransient: func(err error) bool {
			return errors.Is(err, transient)
		},
		Exec: func(ctx context.Context, i int) (int, error) {
			switch i {
			case 0: // succeeds on the third attempt
				if calls.Add(1) < 3 {
					return 0, transient
				}
				return 42, nil
			case 1: // permanent errors are not retried
				return 0, permanent
			default:
				return i, nil
			}
		},
	}
	outs, err := e.Collect(context.Background(), []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil || outs[0].Result != 42 || outs[0].Attempts != 3 {
		t.Errorf("retried item: %+v, want success after 3 attempts", outs[0])
	}
	if !errors.Is(outs[1].Err, permanent) || outs[1].Attempts != 1 {
		t.Errorf("permanent failure: %+v, want 1 attempt", outs[1])
	}
	if outs[2].Err != nil || outs[2].Attempts != 1 {
		t.Errorf("healthy item: %+v", outs[2])
	}
}

func TestRetriesExhausted(t *testing.T) {
	transient := errors.New("transient")
	var calls atomic.Int64
	e := &Engine[int, int]{
		Workers: 1,
		Retries: 2,
		Backoff: time.Millisecond,
		IsTransient: func(error) bool {
			return true
		},
		Exec: func(ctx context.Context, i int) (int, error) {
			calls.Add(1)
			return 0, transient
		},
	}
	outs, err := e.Collect(context.Background(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("exec calls = %d, want 3 (1 + 2 retries)", got)
	}
	if outs[0].Attempts != 3 || !errors.Is(outs[0].Err, transient) {
		t.Errorf("outcome = %+v", outs[0])
	}
}

// Cancelling the context mid-run must stop scheduling new items: the
// unstarted remainder drains as outcomes with Attempts 0 carrying the
// context cause, and Stream reports the cause.
func TestCancellationDrainsRemainder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 32)
	for i := range items {
		items[i] = i
	}
	e := &Engine[int, int]{
		Workers: 2,
		Exec: func(ctx context.Context, i int) (int, error) {
			if i == 0 {
				cancel()
				return 0, context.Cause(ctx)
			}
			// Simulate a long run that notices cancellation (like the VM's
			// periodic context poll); the timeout is a liveness backstop.
			select {
			case <-ctx.Done():
				return 0, context.Cause(ctx)
			case <-time.After(5 * time.Second):
				return i, nil
			}
		},
	}
	var executed, skipped int
	err := e.Stream(ctx, items, func(o Outcome[int, int]) {
		if o.Attempts == 0 {
			skipped++
			if !errors.Is(o.Err, context.Canceled) {
				t.Errorf("skipped item %d err = %v, want context.Canceled", o.Index, o.Err)
			}
		} else {
			executed++
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Stream error = %v, want context.Canceled", err)
	}
	if executed+skipped != len(items) {
		t.Errorf("executed %d + skipped %d != %d items", executed, skipped, len(items))
	}
	if skipped == 0 {
		t.Error("cancellation skipped no items; expected most of the batch to be cut off")
	}
}

// With one overloaded shard, idle workers must steal the stragglers:
// items land round-robin, so worker 0's shard holds all the slow items
// when every slow index is ≡ 0 (mod workers). If stealing worked, total
// wall time is far below the serialized time of the slow shard.
func TestWorkStealingBalancesShards(t *testing.T) {
	const workers = 4
	const slowDelay = 30 * time.Millisecond
	items := make([]int, 16)
	for i := range items {
		items[i] = i
	}
	var maxInflight, inflight atomic.Int64
	e := &Engine[int, int]{
		Workers: workers,
		Exec: func(ctx context.Context, i int) (int, error) {
			cur := inflight.Add(1)
			defer inflight.Add(-1)
			for {
				prev := maxInflight.Load()
				if cur <= prev || maxInflight.CompareAndSwap(prev, cur) {
					break
				}
			}
			if i%workers == 0 { // all slow items in shard 0
				time.Sleep(slowDelay)
			}
			return i, nil
		},
	}
	start := time.Now()
	if _, err := e.Collect(context.Background(), items); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	serialized := time.Duration(len(items)/workers) * slowDelay
	if elapsed >= serialized {
		t.Errorf("elapsed %v not better than serialized slow shard %v — stealing is not happening", elapsed, serialized)
	}
	if got := maxInflight.Load(); got > workers {
		t.Errorf("max inflight = %d, want <= %d workers", got, workers)
	}
}

func TestWorkerCountClamp(t *testing.T) {
	var maxInflight, inflight atomic.Int64
	e := &Engine[int, int]{
		Workers: 64, // far more than items
		Exec: func(ctx context.Context, i int) (int, error) {
			cur := inflight.Add(1)
			defer inflight.Add(-1)
			for {
				prev := maxInflight.Load()
				if cur <= prev || maxInflight.CompareAndSwap(prev, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			return i, nil
		},
	}
	if _, err := e.Collect(context.Background(), []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := maxInflight.Load(); got > 3 {
		t.Errorf("max inflight = %d, want <= 3 (pool clamped to item count)", got)
	}
}

func TestNilExec(t *testing.T) {
	e := &Engine[int, int]{}
	if err := e.Stream(context.Background(), []int{1}, func(Outcome[int, int]) {}); err == nil {
		t.Error("nil Exec accepted")
	}
}

func TestEmptyItems(t *testing.T) {
	e := &Engine[int, int]{Exec: func(ctx context.Context, i int) (int, error) { return i, nil }}
	outs, err := e.Collect(context.Background(), nil)
	if err != nil || len(outs) != 0 {
		t.Errorf("Collect(nil) = %v, %v", outs, err)
	}
}

// Concurrent engines sharing one memoizing executor must be race-clean
// (exercised meaningfully under -race).
func TestConcurrentEngines(t *testing.T) {
	items := make([]int, 24)
	for i := range items {
		items[i] = i
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := &Engine[int, []byte]{Workers: 4, Exec: jitterExec}
			if _, err := e.Collect(context.Background(), items); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
