// Package sweep is the sharded matrix-execution engine: it expands a
// (workloads × archs × mechanisms × scales) sweep request into cells,
// schedules them across a bounded worker pool with work stealing, retries
// transient failures, and merges the results back into a deterministic
// order — the parallel output of Ordered is byte-identical to a
// sequential run of the same items.
//
// The engine is generic over the item and result types so the same
// scheduler serves three layers: sdtd's POST /v1/sweep batch endpoint
// (cells → stored measurement bytes), the bench Runner's whole-suite
// experiment grids (cells → *bench.Result), and cmd/sdtbench's
// experiment-level parallelism (experiments → rendered output). Result
// deduplication is not the engine's job: executors memoize through the
// store.Group / store.ByteStore tier, so identical cells — within one
// sweep or across concurrent sweeps — execute at most once.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Cell is one point of the evaluation matrix.
type Cell struct {
	Workload string
	Arch     string
	Mech     string
	// Scale is the workload's iteration parameter (0 = its default).
	Scale int
}

// Matrix is a sweep request before expansion. Expansion order is
// workload-major: workloads, then archs, then mechs, then scales — the
// order a sequential quadruple loop would visit.
type Matrix struct {
	Workloads []string
	Archs     []string
	Mechs     []string
	// Scales may be empty, which selects the single scale 0 (each
	// workload's default).
	Scales []int
}

func (m Matrix) scales() []int {
	if len(m.Scales) == 0 {
		return []int{0}
	}
	return m.Scales
}

// Size returns the number of cells the matrix expands to.
func (m Matrix) Size() int {
	return len(m.Workloads) * len(m.Archs) * len(m.Mechs) * len(m.scales())
}

// Cells expands the matrix in deterministic order.
func (m Matrix) Cells() []Cell {
	cells := make([]Cell, 0, m.Size())
	for _, wl := range m.Workloads {
		for _, arch := range m.Archs {
			for _, mech := range m.Mechs {
				for _, scale := range m.scales() {
					cells = append(cells, Cell{Workload: wl, Arch: arch, Mech: mech, Scale: scale})
				}
			}
		}
	}
	return cells
}

// SiteCell is the engine's fault-injection site, consulted once per
// execution attempt when Faults is armed (see internal/faultinject).
const SiteCell = "sweep.cell"

// Faults is the engine's seam for deterministic fault injection
// (*faultinject.Injector satisfies it). A nil Faults disables injection;
// the attempt loop guards the call behind a single nil check, so the
// unarmed hot path pays nothing.
type Faults interface {
	// Fail returns the error to inject at site, or nil.
	Fail(site string) error
}

// Outcome is the terminal state of one item: either Result or Err is
// meaningful. Attempts counts executions performed — 0 means the engine
// was cancelled before the item started (Err then carries the context
// cause), >1 means transient failures were retried.
type Outcome[T, R any] struct {
	Index    int
	Item     T
	Result   R
	Err      error
	Attempts int
	Elapsed  time.Duration
}

// Engine schedules items across a bounded worker pool. Items are sharded
// round-robin across per-worker queues; an idle worker steals from its
// neighbours, so one shard of slow items cannot strand the rest of the
// pool. The zero value is not usable: Exec is required.
type Engine[T, R any] struct {
	// Workers bounds concurrent Exec calls (0 = GOMAXPROCS). The pool is
	// never larger than the item count.
	Workers int
	// Retries is how many times a transient failure is re-executed on top
	// of the first attempt (0 = no retries).
	Retries int
	// IsTransient classifies an Exec error as retryable. nil disables
	// retries regardless of Retries.
	IsTransient func(error) bool
	// Backoff is the pause before the first retry, growing linearly with
	// the attempt number (0 = 25ms). The wait is context-aware.
	Backoff time.Duration
	// Exec computes one item. It must be safe for concurrent calls.
	Exec func(ctx context.Context, item T) (R, error)
	// Faults, when non-nil, is consulted at SiteCell before every Exec
	// attempt; an injected error replaces the execution and is classified
	// (and retried) exactly like an Exec error.
	Faults Faults
}

var errNoExec = errors.New("sweep: Engine.Exec is nil")

func (e *Engine[T, R]) workers(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Stream executes every item and calls emit once per item, from a single
// goroutine, in completion order. When ctx ends, items not yet started
// are drained as outcomes with Attempts 0 and Err set to the context
// cause (in-flight items finish or notice ctx themselves), and Stream
// returns the cause once all outcomes are emitted. emit must not block
// indefinitely.
func (e *Engine[T, R]) Stream(ctx context.Context, items []T, emit func(Outcome[T, R])) error {
	if e.Exec == nil {
		return errNoExec
	}
	if len(items) == 0 {
		return context.Cause(ctx)
	}
	out := make(chan Outcome[T, R], len(items))
	go e.run(ctx, items, out)
	for o := range out {
		emit(o)
	}
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// Ordered is Stream with a deterministic merge: outcomes are emitted in
// item order (outcome i only after 0..i-1), so the emitted sequence is
// byte-identical to a sequential run no matter how many workers raced.
func (e *Engine[T, R]) Ordered(ctx context.Context, items []T, emit func(Outcome[T, R])) error {
	buf := make([]*Outcome[T, R], len(items))
	next := 0
	return e.Stream(ctx, items, func(o Outcome[T, R]) {
		buf[o.Index] = &o
		for next < len(buf) && buf[next] != nil {
			emit(*buf[next])
			buf[next] = nil
			next++
		}
	})
}

// Collect runs every item and returns the outcomes in item order.
func (e *Engine[T, R]) Collect(ctx context.Context, items []T) ([]Outcome[T, R], error) {
	res := make([]Outcome[T, R], 0, len(items))
	err := e.Ordered(ctx, items, func(o Outcome[T, R]) { res = append(res, o) })
	return res, err
}

// shard is one worker's queue of item indices. The owner pops from the
// front; thieves steal from the back, so an owner working through its own
// shard and a thief draining it from the far end rarely contend on the
// same item.
type shard struct {
	mu    sync.Mutex
	items []int
}

func (s *shard) pop() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return 0, false
	}
	idx := s.items[0]
	s.items = s.items[1:]
	return idx, true
}

func (s *shard) steal() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return 0, false
	}
	idx := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return idx, true
}

// run shards the items, executes them on the pool, and closes out when
// every item has produced exactly one outcome.
func (e *Engine[T, R]) run(ctx context.Context, items []T, out chan<- Outcome[T, R]) {
	n := e.workers(len(items))
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{}
	}
	for idx := range items {
		s := shards[idx%n]
		s.items = append(s.items, idx)
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				idx, ok := shards[w].pop()
				for k := 1; !ok && k < n; k++ {
					idx, ok = shards[(w+k)%n].steal()
				}
				if !ok {
					return
				}
				if ctx.Err() != nil {
					// Drain without executing: the outcome records why.
					out <- Outcome[T, R]{Index: idx, Item: items[idx], Err: context.Cause(ctx)}
					continue
				}
				out <- e.attempt(ctx, idx, items[idx])
			}
		}(w)
	}
	wg.Wait()
	close(out)
}

// attempt executes one item, retrying transient failures with linear
// backoff while the context is live.
func (e *Engine[T, R]) attempt(ctx context.Context, idx int, item T) Outcome[T, R] {
	o := Outcome[T, R]{Index: idx, Item: item}
	start := time.Now()
	backoff := e.Backoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	for {
		o.Attempts++
		o.Err = nil
		if e.Faults != nil {
			o.Err = e.Faults.Fail(SiteCell)
		}
		if o.Err == nil {
			o.Result, o.Err = e.Exec(ctx, item)
		}
		if o.Err == nil || o.Attempts > e.Retries ||
			e.IsTransient == nil || !e.IsTransient(o.Err) || ctx.Err() != nil {
			break
		}
		select {
		case <-time.After(time.Duration(o.Attempts) * backoff):
		case <-ctx.Done():
		}
	}
	o.Elapsed = time.Since(start)
	return o
}
