package core

import (
	"context"
	"fmt"

	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/profile"
	"sdt/internal/program"
)

// VM is the software dynamic translator executing one guest image.
//
// Lookup structures are allocation-free on the dispatch path: the
// translation table is a dense slice indexed by guest code word, the
// host-address index is a flat open-addressed table, and fragments live in
// pooled arena chunks (alloc.go). Liveness across flushes is tracked by
// epoch tags instead of map membership, so a flush is an epoch bump plus a
// constant amount of list surgery rather than a rebuild.
type VM struct {
	State *machine.State
	Env   *machine.CostEnv
	Prof  profile.Profile

	opts Options
	img  *program.Image
	code []isa.Inst // predecoded guest code section (shared, read-only)

	frags   []*Fragment // dense: (guestPC-CodeBase)/WordSize -> fragment
	hostTab hostTable   // fragment cache addr -> fragment / guest return pc

	fchunks  []*fragChunk // arena chunks holding this epoch's fragments
	fused    int          // slots used in the last fragment chunk
	schunks  []*siteChunk // likewise for IB sites
	sused    int
	freeFrag []*fragChunk // chunks past limbo, available for reuse
	freeSite []*siteChunk
	// Flushed chunks age through limboGens generations before reuse so
	// that in-flight pointers into just-flushed fragments stay intact —
	// see limboGens. Unused (always empty) in trace mode.
	fragLimbo [limboGens][]*fragChunk
	siteLimbo [limboGens][]*siteChunk

	codeTop   uint32 // next fragment cache address
	dataTop   uint32 // next SDT table address
	cacheUsed uint32 // fragment cache bytes live since last flush
	epoch     uint64 // bumped on every flush

	limit   uint64
	callObs CallObserver // opts.Handler, if it observes calls
	rec     *traceRec    // active trace recording, if any
}

// New builds a VM for img. The handler's Init hook runs before New returns.
func New(img *program.Image, opts Options) (*VM, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	st, err := machine.NewState(img)
	if err != nil {
		return nil, err
	}
	env, err := machine.NewCostEnv(o.Model)
	if err != nil {
		return nil, err
	}
	vm := &VM{
		State:   st,
		Env:     env,
		opts:    o,
		img:     img,
		code:    img.Decoded(),
		codeTop: FragBase,
		dataTop: TableBase,
	}
	vm.frags = grabFragTable(len(vm.code))
	vm.hostTab.init(grabHostTab())
	vm.callObs, _ = o.Handler.(CallObserver)
	o.Handler.Init(vm)
	return vm, nil
}

// Options returns the effective (defaulted) options.
func (vm *VM) Options() Options { return vm.opts }

// Image returns the guest image.
func (vm *VM) Image() *program.Image { return vm.img }

// Handler returns the configured IB handler.
func (vm *VM) Handler() IBHandler { return vm.opts.Handler }

// Epoch returns the current fragment cache generation; it increments on
// every flush. Handlers can use it to detect stale cached state.
func (vm *VM) Epoch() uint64 { return vm.epoch }

// Live reports whether f was translated in the current fragment cache
// epoch, i.e. whether a cached *Fragment may still be dispatched to.
// Handlers must revalidate pointers they held when their Flush callback
// runs, and must not retain a pointer across more than one flush: after a
// second flush the fragment's storage may have been reused.
func (vm *VM) Live(f *Fragment) bool { return f != nil && f.epoch == vm.epoch }

// deadEpoch marks a fragment invalidated mid-epoch (see Invalidate). The
// VM's epoch counts up from zero, so this value is never a live epoch.
const deadEpoch = ^uint64(0)

// Invalidate retires a single fragment without flushing the cache: the
// fragment's epoch is poisoned so every lookup path (translation table,
// host-address index, patched links, handler-cached pointers revalidated
// through Live) misses it, and the next execution of its guest block
// retranslates. The fragment's cache bytes are not reclaimed — like a real
// SDT's in-place retranslation, the dead code stays resident until the
// next full flush. Reports whether f was live.
//
// This is the re-translation primitive adaptive dispatch uses to swap a
// site's emitted lookup sequence: invalidate the owning fragment, and the
// organic retranslation re-attaches the site under the new configuration.
func (vm *VM) Invalidate(f *Fragment) bool {
	if !vm.Live(f) {
		return false
	}
	idx := (f.GuestPC - program.CodeBase) / isa.WordSize
	if int(idx) < len(vm.frags) && vm.frags[idx] == f {
		vm.frags[idx] = nil
	}
	f.epoch = deadEpoch
	return true
}

// AllocCode reserves bytes in the fragment cache (for mechanism stubs such
// as sieve chain entries) and returns their address.
func (vm *VM) AllocCode(bytes uint32) uint32 {
	addr := vm.codeTop
	vm.codeTop += bytes
	vm.cacheUsed += bytes
	return addr
}

// AllocData reserves bytes in the SDT's data space (for lookup tables) and
// returns their address.
func (vm *VM) AllocData(bytes uint32) uint32 {
	addr := vm.dataTop
	vm.dataTop += bytes
	return addr
}

// Lookup returns the live fragment for a guest pc without charging any cost
// (handlers use it for bookkeeping, not on simulated lookup paths).
func (vm *VM) Lookup(guest uint32) *Fragment { return vm.lookupLive(guest) }

// lookupLive is the host-side translation-table probe: one indexed load
// plus an epoch check. The GuestPC comparison rejects a slot whose arena
// storage was reused for a different block after a flush.
func (vm *VM) lookupLive(guest uint32) *Fragment {
	idx := (guest - program.CodeBase) / isa.WordSize
	if guest%isa.WordSize != 0 || int(idx) >= len(vm.frags) {
		return nil
	}
	if f := vm.frags[idx]; f != nil && f.epoch == vm.epoch && f.GuestPC == guest {
		return f
	}
	return nil
}

// FragmentByHost returns the fragment whose code starts at the given
// fragment cache address, if it is live in the current epoch.
func (vm *VM) FragmentByHost(host uint32) *Fragment {
	if e := vm.hostTab.get(host); e != nil {
		if f := e.frag; f != nil && f.epoch == vm.epoch && f.HostAddr == host {
			return f
		}
	}
	return nil
}

// GuestOfHostRet translates a hostized return address back to its guest
// return pc. It reports false for addresses the VM never issued.
func (vm *VM) GuestOfHostRet(host uint32) (uint32, bool) {
	if e := vm.hostTab.get(host); e != nil && e.hasRet {
		return e.guestRet, true
	}
	return 0, false
}

// EnterTranslator models the full slow path of an indirect branch or
// unlinked exit: a context switch out of translated code, a probe of the
// translator's guest-pc-to-fragment map, translation if the target has
// never been seen, and the context switch back. It returns the target
// fragment. Cycles are attributed to the Ctx and Trans profile categories.
func (vm *VM) EnterTranslator(guest uint32) (*Fragment, error) {
	m := vm.Env.Model
	vm.Prof.TranslatorEntries++
	start := vm.Env.Cycles
	trans0 := vm.Prof.CyclesTrans

	vm.Env.Charge(m.CtxSave)
	vm.Env.Charge(m.MapProbe)
	// Two dependent probes of the translator's map, in SDT data space.
	h := (guest >> 2) * 2654435761 // Fibonacci hashing
	vm.Env.DTouch(translatorMapAddr + h%(1<<20)&^3)
	vm.Env.DTouch(translatorMapAddr + (1 << 20) + h/(1<<20)&^3)

	f := vm.lookupLive(guest)
	if f == nil {
		var err error
		f, err = vm.translate(guest)
		if err != nil {
			return nil, err
		}
	}
	vm.Env.Charge(m.CtxRestore)
	vm.Prof.CyclesCtx += (vm.Env.Cycles - start) - (vm.Prof.CyclesTrans - trans0)
	return f, nil
}

// fetchGuest bounds-checks pc against the static code section.
func (vm *VM) fetchGuest(pc uint32) (isa.Inst, error) {
	idx := (pc - program.CodeBase) / isa.WordSize
	if pc < program.CodeBase || pc%isa.WordSize != 0 || int(idx) >= len(vm.code) {
		return isa.Inst{}, &machine.Fault{PC: pc, Addr: pc, Msg: "translation target outside code section"}
	}
	return vm.code[idx], nil
}

// translate builds the fragment for the basic block at guest, charging
// translation costs and flushing the fragment cache if it is full.
func (vm *VM) translate(guest uint32) (*Fragment, error) {
	start := vm.Env.Cycles
	m := vm.Env.Model

	// Decode the block: up to MaxBlockInsts instructions, through the
	// first control transfer. With superblock formation, forward direct
	// jumps are followed (and elided from the emitted code) instead of
	// ending the block; forward-only following keeps decoding loop-free.
	// A straight-line block is a subslice of the predecoded code section
	// (no copy); only a followed jump forces the body into its own buffer.
	const maxFollows = 8
	startIdx := (guest - program.CodeBase) / isa.WordSize
	var buf []isa.Inst // non-nil once a followed jump breaks contiguity
	count := 0
	pc := guest
	termPC := guest
	follows := 0
	for count < vm.opts.MaxBlockInsts {
		in, err := vm.fetchGuest(pc)
		if err != nil {
			if count == 0 {
				return nil, err
			}
			// The block ran off the end of the code section. Native
			// execution retires the valid prefix before the overrun
			// fetch faults, so translation must not fault early: end
			// the fragment here and let its fall-through (or followed
			// jump) re-enter the translator at the bad pc, which
			// faults at the architecturally correct instruction count.
			break
		}
		if buf != nil {
			buf = append(buf, in)
		}
		count++
		termPC = pc
		if in.Op.IsControl() {
			if vm.opts.Superblocks && in.Op == isa.JMP && follows < maxFollows {
				if target := uint32(in.Imm) * isa.WordSize; target > pc {
					if buf == nil {
						buf = make([]isa.Inst, count, vm.opts.MaxBlockInsts)
						copy(buf, vm.code[startIdx:startIdx+uint32(count)])
					}
					pc = target
					follows++
					continue
				}
			}
			break
		}
		pc += isa.WordSize
	}
	insts := buf
	if insts == nil {
		end := startIdx + uint32(count)
		insts = vm.code[startIdx:end:end]
	}
	term := insts[count-1]
	bodyBytes := uint32(count * m.CodeBytesPerInst)
	size := bodyBytes + uint32(m.StubBytes)

	if vm.cacheUsed+size > vm.opts.CacheBytes {
		vm.flush()
	}

	f := vm.newFragment()
	*f = Fragment{
		GuestPC:      guest,
		Insts:        insts,
		HostAddr:     vm.AllocCode(size),
		Bytes:        size,
		Synth:        !term.Op.IsControl(),
		epoch:        vm.epoch,
		staticCycles: machine.StaticBodyCost(m, insts),
	}
	if term.Op.IsIndirect() {
		s := vm.newSite()
		*s = IBSite{
			GuestPC:  termPC,
			Kind:     isa.KindOf(term.Op),
			HostAddr: f.HostAddr + bodyBytes,
			frag:     f,
		}
		f.Site = s
		vm.opts.Handler.Attach(vm, f.Site)
	}
	vm.frags[startIdx] = f
	vm.hostTab.put(f.HostAddr).frag = f

	vm.Env.Charge(m.TransBase + m.TransPerInst*count)
	vm.Prof.Translations++
	vm.Prof.TransInsts += uint64(count)
	vm.Prof.CyclesTrans += vm.Env.Cycles - start
	return f, nil
}

// flush empties the fragment cache: the epoch bump invalidates every
// fragment and every patched link at once, and all handler state is
// dropped. The dense translation table and the host-address index keep
// their (now stale) entries — liveness is the epoch tag, so no per-entry
// work happens. Hostized return addresses stay resolvable through the host
// table, so fast returns into flushed code fall back to the translator
// instead of misbehaving.
//
// Arena chunks move to a free list for reuse by the next epoch's
// translations — except in trace mode, where a trace that is mid-execution
// may legitimately keep reading the bodies of just-flushed fragments, so
// the chunks are handed to the garbage collector instead.
func (vm *VM) flush() {
	vm.epoch++
	vm.Prof.Flushes++
	vm.rec = nil // any in-progress trace recording holds doomed fragments
	vm.cacheUsed = 0
	if vm.opts.Traces {
		for i := range vm.fchunks {
			vm.fchunks[i] = nil
		}
		for i := range vm.schunks {
			vm.schunks[i] = nil
		}
		vm.fchunks = vm.fchunks[:0]
		vm.schunks = vm.schunks[:0]
	} else {
		// Age the limbo generations: the oldest becomes reusable, this
		// epoch's chunks enter limbo. The vacated slice header backs the
		// next epoch's chunk list, so rotation allocates nothing.
		last := limboGens - 1
		vm.freeFrag = append(vm.freeFrag, vm.fragLimbo[last]...)
		ff := vm.fragLimbo[last][:0]
		copy(vm.fragLimbo[1:], vm.fragLimbo[:last])
		vm.fragLimbo[0] = vm.fchunks
		vm.fchunks = ff
		vm.freeSite = append(vm.freeSite, vm.siteLimbo[last]...)
		fs := vm.siteLimbo[last][:0]
		copy(vm.siteLimbo[1:], vm.siteLimbo[:last])
		vm.siteLimbo[0] = vm.schunks
		vm.schunks = fs
	}
	if !vm.opts.FastReturns && vm.codeTop >= TableBase-vm.opts.CacheBytes {
		// Reuse the address space; with fast returns it must stay unique
		// because guest registers may hold old fragment addresses.
		vm.codeTop = FragBase
	}
	vm.opts.Handler.Flush(vm)
}

// link resolves a direct fragment exit through *slot, patching it on first
// use. With linking disabled, every exit pays a translator entry.
//
// e0 is the epoch observed when f was last known live (at exit entry). In
// the normal (non-trace) mode the slot is only trusted and only patched
// while vm.epoch == e0: once a translator entry inside this exit flushes
// the cache, f's own storage may already have been reused for a different
// fragment, so both reading and writing its link slots would touch the
// wrong fragment's state. In trace mode fragment storage is never reused
// (see flush), so slots stay trustworthy even on stale trace parts and are
// patched unconditionally — stale parts can recur within one trace
// execution and the patch legitimately serves the later occurrence.
func (vm *VM) link(f *Fragment, slot *fragLink, guest uint32, e0 uint64) (*Fragment, error) {
	if vm.opts.DisableLinking {
		return vm.EnterTranslator(guest)
	}
	trust := vm.opts.Traces || vm.epoch == e0
	// next.epoch must match too: a patch made this epoch may point at a
	// fragment since retired by a targeted Invalidate (never by a flush,
	// which would fail the slot.epoch check first).
	if next := slot.f; trust && next != nil && slot.epoch == vm.epoch && next.epoch == vm.epoch && next.GuestPC == guest {
		return next, nil
	}
	next, err := vm.EnterTranslator(guest)
	if err != nil {
		return nil, err
	}
	if vm.opts.Traces || vm.epoch == e0 {
		*slot = fragLink{f: next, epoch: vm.epoch}
	}
	return next, nil
}

// Run executes the guest under translation until it halts or limit
// instructions retire (0 selects machine.DefaultLimit).
func (vm *VM) Run(limit uint64) error {
	return vm.RunContext(context.Background(), limit)
}

// ctxCheckExits is how many fragment exits pass between cancellation
// checks in RunContext. Checking per fragment would put a channel poll on
// the hottest loop in the system; a fragment averages a handful of guest
// instructions, so this granularity bounds cancellation latency to a few
// thousand simulated instructions while keeping the check off the profile.
const ctxCheckExits = 1024

// RunContext executes like Run but additionally stops when ctx is
// cancelled or its deadline passes, returning an error wrapping ctx's
// cause (so errors.Is(err, context.DeadlineExceeded) and
// context.Canceled work). Cancellation is checked every ctxCheckExits
// fragment exits, not every instruction; a context that is never
// cancellable (context.Background) costs nothing.
func (vm *VM) RunContext(ctx context.Context, limit uint64) error {
	if limit == 0 {
		limit = machine.DefaultLimit
	}
	vm.limit = limit
	f, err := vm.EnterTranslator(vm.img.Entry)
	if err != nil {
		return err
	}
	done := ctx.Done()
	sinceCheck := 0
	for !vm.State.Halted {
		if vm.opts.Traces {
			f, err = vm.traceStep(f)
		} else {
			f, err = vm.execFragment(f)
		}
		if err != nil {
			return err
		}
		if done != nil {
			if sinceCheck++; sinceCheck >= ctxCheckExits {
				sinceCheck = 0
				select {
				case <-done:
					return fmt.Errorf("core: run stopped after %d instructions: %w",
						vm.State.Instret, context.Cause(ctx))
				default:
				}
			}
		}
	}
	return nil
}

// execBody runs a fragment's instructions (including the terminator) with
// instruction fetches charged at hostBase, returning the terminator's
// outcome. Exit resolution is the caller's job, which lets trace execution
// (trace.go) lay the same fragments out at trace-local addresses.
//
// The data-independent body cost is charged in one batch up front
// (f.staticCycles); the per-instruction work is the fetch, the D-cache
// touch for loads and stores, and the architectural Exec. Because
// simulated cycles are a pure sum and the cache/predictor access sequence
// is unchanged, completed runs total bit-identically to per-instruction
// charging; only runs cut short by a fault or the instruction limit (whose
// cycle totals nothing compares) can differ.
func (vm *VM) execBody(f *Fragment, hostBase uint32) (machine.Outcome, error) {
	env := vm.Env
	st := vm.State
	env.Cycles += f.staticCycles
	m := env.Model
	cb := uint32(m.CodeBytesPerInst)
	pc := f.GuestPC
	n := len(f.Insts)

	// Fast path: the whole body fits in the remaining instruction budget,
	// so the limit check hoists out of the loop, the I-fetches collapse to
	// one access per touched line (fetch is sequential, so re-accessing
	// the current line is an LRU-neutral hit — the distinct-line sequence,
	// and therefore every miss and every replacement decision, is
	// unchanged), and the body up to the terminator runs through the
	// batched machine.ExecStraight.
	if st.Instret+uint64(n) <= vm.limit {
		line := uint32(m.ICache.LineBytes)
		lastAddr := hostBase + uint32(n-1)*cb
		env.IFetch(hostBase)
		for a := (hostBase &^ (line - 1)) + line; a <= lastAddr; a += line {
			env.IFetch(a)
		}
		var err error
		pc, err = machine.ExecStraight(st, env, f.Insts[:n-1], pc)
		if err != nil {
			return machine.Outcome{}, fmt.Errorf("core: in fragment %#x: %w", f.GuestPC, err)
		}
		term := f.Insts[n-1]
		if term.Op.IsMem() {
			env.DTouch(st.Regs[term.Rs1] + uint32(term.Imm))
		}
		out, err := machine.Exec(st, term, pc)
		if err != nil {
			return machine.Outcome{}, fmt.Errorf("core: in fragment %#x: %w", f.GuestPC, err)
		}
		return out, nil
	}

	// Near the end of the budget the per-instruction loop takes over so
	// the limit faults at the exact instruction.
	last := n - 1
	for i, in := range f.Insts {
		if st.Instret >= vm.limit {
			return machine.Outcome{}, fmt.Errorf("%w (%d instructions)", ErrLimit, vm.limit)
		}
		env.IFetch(hostBase + uint32(i)*cb)
		if in.Op.IsMem() {
			env.DTouch(st.Regs[in.Rs1] + uint32(in.Imm))
		}
		out, err := machine.Exec(st, in, pc)
		if err != nil {
			return machine.Outcome{}, fmt.Errorf("core: in fragment %#x: %w", f.GuestPC, err)
		}
		if i == last {
			return out, nil
		}
		pc = out.Target
	}
	panic("core: fragment without instructions")
}

// execFragment runs one fragment body and resolves its exit, returning the
// next fragment (nil after HALT).
func (vm *VM) execFragment(f *Fragment) (*Fragment, error) {
	out, err := vm.execBody(f, f.HostAddr)
	if err != nil {
		return nil, err
	}
	return vm.exit(f, out)
}

// exit charges and resolves a fragment's terminating control transfer.
// The epoch at entry is captured and threaded to the link/return-point
// logic so that a flush triggered mid-exit (by a translator entry) stops
// any further use of f's patchable slots — see link.
func (vm *VM) exit(f *Fragment, out machine.Outcome) (*Fragment, error) {
	e0 := vm.epoch
	env := vm.Env
	m := env.Model
	switch out.Kind {
	case OutHalt:
		env.Charge(m.ALU)
		return nil, nil
	case OutNext:
		// Synthesized fall-through for an over-long block.
		env.Charge(m.DirectJump)
		return vm.link(f, &f.FallLink, out.Target, e0)
	case OutBranch:
		if out.Taken {
			env.Charge(m.BranchTaken)
			return vm.link(f, &f.TakenLink, out.Target, e0)
		}
		env.Charge(m.BranchNotTaken)
		return vm.link(f, &f.FallLink, out.Target, e0)
	case OutJump:
		env.Charge(m.DirectJump)
		return vm.link(f, &f.TakenLink, out.Target, e0)
	case OutCall:
		// Direct call (JAL). Exec already set ra to the guest return
		// address; under fast returns the emitted code loads the
		// fragment-cache return address instead and executes a host call.
		guestRet := vm.State.Regs[isa.RegRA] // set by Exec before the transfer
		if vm.callObs != nil {
			vm.callObs.OnCall(vm, guestRet)
		}
		if vm.opts.FastReturns {
			if err := vm.fastCall(f, guestRet, e0); err != nil {
				return nil, err
			}
		} else {
			env.Charge(m.DirectJump)
		}
		return vm.link(f, &f.TakenLink, out.Target, e0)
	case OutIndirect:
		return vm.indirect(f, out, e0)
	}
	panic("core: unhandled outcome kind")
}

// outcome kind aliases to keep the switch readable.
const (
	OutNext     = machine.OutNext
	OutBranch   = machine.OutBranch
	OutJump     = machine.OutJump
	OutCall     = machine.OutCall
	OutIndirect = machine.OutIndirect
	OutHalt     = machine.OutHalt
)

// retPoint resolves the return-point fragment for a call with guest return
// address guestRet, through f's RetFrag slot (same trust/patch discipline
// as link). It records the hostized return address so a later fast return
// into flushed code can recover the guest pc.
func (vm *VM) retPoint(f *Fragment, guestRet uint32, e0 uint64) (*Fragment, error) {
	trust := vm.opts.Traces || vm.epoch == e0
	rl := f.RetFrag
	if rf := rl.f; trust && rf != nil && rl.epoch == vm.epoch && rf.epoch == vm.epoch && rf.GuestPC == guestRet {
		return rf, nil
	}
	// First execution (or flushed): materialize the return-point fragment
	// the way the translator does when it rewrites the call.
	rf, err := vm.EnterTranslator(guestRet)
	if err != nil {
		return nil, err
	}
	if vm.opts.Traces || vm.epoch == e0 {
		f.RetFrag = fragLink{f: rf, epoch: vm.epoch}
	}
	e := vm.hostTab.put(rf.HostAddr)
	e.hasRet = true
	e.guestRet = guestRet
	return rf, nil
}

// fastCall rewrites the guest's return-address register to the
// fragment-cache address of the return point and performs a host call
// (pushing the return-address stack), realizing the paper's "fast returns".
func (vm *VM) fastCall(f *Fragment, guestRet uint32, e0 uint64) error {
	rf, err := vm.retPoint(f, guestRet, e0)
	if err != nil {
		return err
	}
	vm.State.SetReg(isa.RegRA, rf.HostAddr)
	vm.Env.HostCall(rf.HostAddr)
	return nil
}

// indirect dispatches an indirect-branch exit through the configured
// handler (or the fast-return path), attributing cycles to the IB category.
func (vm *VM) indirect(f *Fragment, out machine.Outcome, e0 uint64) (*Fragment, error) {
	vm.Prof.IBExec[out.IB]++
	site := f.Site
	if site == nil {
		panic(fmt.Sprintf("core: indirect exit without site at %#x", f.GuestPC))
	}

	start := vm.Env.Cycles
	ctx0, tr0 := vm.Prof.CyclesCtx, vm.Prof.CyclesTrans
	defer func() {
		vm.Prof.CyclesIB += (vm.Env.Cycles - start) -
			(vm.Prof.CyclesCtx - ctx0) - (vm.Prof.CyclesTrans - tr0)
	}()

	if out.IB == isa.IBReturn && vm.opts.FastReturns {
		return vm.fastReturn(site, out.Target)
	}

	guestRet := vm.State.Regs[isa.RegRA] // valid for IBCall (just set by Exec)
	next, err := vm.opts.Handler.Resolve(vm, site, out.Target)
	if err != nil {
		return nil, err
	}
	if out.IB == isa.IBCall {
		if vm.callObs != nil {
			vm.callObs.OnCall(vm, guestRet)
		}
		if vm.opts.FastReturns {
			// The emitted indirect call is a host call: hostize ra and
			// push the RAS (the transfer itself was charged by Resolve).
			rf, err := vm.retPoint(f, guestRet, e0)
			if err != nil {
				return nil, err
			}
			vm.State.SetReg(isa.RegRA, rf.HostAddr)
			vm.Env.RAS.Push(rf.HostAddr)
		}
	}
	return next, nil
}

// fastReturn executes a return whose target may be a hostized fragment
// address: a host return instruction predicted by the RAS. Guest addresses
// (the program manufactured a return target) and flushed fragments fall
// back to the handler / translator.
func (vm *VM) fastReturn(site *IBSite, target uint32) (*Fragment, error) {
	if target < FragBase {
		// Transparency escape: the guest put a guest address in ra.
		vm.Prof.MechMisses++
		vm.Prof.IBMiss[isa.IBReturn]++
		return vm.opts.Handler.Resolve(vm, site, target)
	}
	vm.Env.HostReturn(target)
	if e := vm.hostTab.get(target); e != nil {
		if f := e.frag; f != nil && f.epoch == vm.epoch && f.HostAddr == target {
			vm.Prof.MechHits++
			return f, nil
		}
		if e.hasRet {
			// The fragment was flushed; recover its guest pc and
			// retranslate.
			vm.Prof.MechMisses++
			vm.Prof.IBMiss[isa.IBReturn]++
			return vm.EnterTranslator(e.guestRet)
		}
	}
	return nil, &machine.Fault{PC: site.GuestPC, Addr: target, Msg: "return to unknown fragment-cache address"}
}

// Result summarizes the run in the same shape as the native machine's.
func (vm *VM) Result() machine.Result {
	return machine.Result{
		Cycles:   vm.Env.Cycles,
		Instret:  vm.State.Instret,
		Checksum: vm.State.Out.Checksum,
		OutCount: vm.State.Out.Count,
		ExitCode: vm.State.ExitCode,
	}
}
