package core

import (
	"context"
	"fmt"

	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/profile"
	"sdt/internal/program"
)

// VM is the software dynamic translator executing one guest image.
type VM struct {
	State *machine.State
	Env   *machine.CostEnv
	Prof  profile.Profile

	opts Options
	img  *program.Image
	code []isa.Inst // predecoded guest code section

	frags   map[uint32]*Fragment // guest pc -> fragment (translation table)
	byHost  map[uint32]*Fragment // fragment cache addr -> fragment
	hostRet map[uint32]uint32    // hostized return addr -> guest return pc

	codeTop   uint32 // next fragment cache address
	dataTop   uint32 // next SDT table address
	cacheUsed uint32 // fragment cache bytes live since last flush
	epoch     uint64 // bumped on every flush

	limit   uint64
	callObs CallObserver // opts.Handler, if it observes calls
	rec     *traceRec    // active trace recording, if any
}

// New builds a VM for img. The handler's Init hook runs before New returns.
func New(img *program.Image, opts Options) (*VM, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	st, err := machine.NewState(img)
	if err != nil {
		return nil, err
	}
	env, err := machine.NewCostEnv(o.Model)
	if err != nil {
		return nil, err
	}
	code := make([]isa.Inst, len(img.Code))
	for i, w := range img.Code {
		code[i] = isa.Decode(w)
	}
	vm := &VM{
		State:   st,
		Env:     env,
		opts:    o,
		img:     img,
		code:    code,
		frags:   make(map[uint32]*Fragment),
		byHost:  make(map[uint32]*Fragment),
		hostRet: make(map[uint32]uint32),
		codeTop: FragBase,
		dataTop: TableBase,
	}
	vm.callObs, _ = o.Handler.(CallObserver)
	o.Handler.Init(vm)
	return vm, nil
}

// Options returns the effective (defaulted) options.
func (vm *VM) Options() Options { return vm.opts }

// Image returns the guest image.
func (vm *VM) Image() *program.Image { return vm.img }

// Handler returns the configured IB handler.
func (vm *VM) Handler() IBHandler { return vm.opts.Handler }

// Epoch returns the current fragment cache generation; it increments on
// every flush. Handlers can use it to detect stale cached state.
func (vm *VM) Epoch() uint64 { return vm.epoch }

// AllocCode reserves bytes in the fragment cache (for mechanism stubs such
// as sieve chain entries) and returns their address.
func (vm *VM) AllocCode(bytes uint32) uint32 {
	addr := vm.codeTop
	vm.codeTop += bytes
	vm.cacheUsed += bytes
	return addr
}

// AllocData reserves bytes in the SDT's data space (for lookup tables) and
// returns their address.
func (vm *VM) AllocData(bytes uint32) uint32 {
	addr := vm.dataTop
	vm.dataTop += bytes
	return addr
}

// Lookup returns the fragment for a guest pc without charging any cost
// (handlers use it for bookkeeping, not on simulated lookup paths).
func (vm *VM) Lookup(guest uint32) *Fragment { return vm.frags[guest] }

// FragmentByHost returns the fragment whose code starts at the given
// fragment cache address, if it is live in the current epoch.
func (vm *VM) FragmentByHost(host uint32) *Fragment { return vm.byHost[host] }

// GuestOfHostRet translates a hostized return address back to its guest
// return pc. It reports false for addresses the VM never issued.
func (vm *VM) GuestOfHostRet(host uint32) (uint32, bool) {
	g, ok := vm.hostRet[host]
	return g, ok
}

// EnterTranslator models the full slow path of an indirect branch or
// unlinked exit: a context switch out of translated code, a probe of the
// translator's guest-pc-to-fragment map, translation if the target has
// never been seen, and the context switch back. It returns the target
// fragment. Cycles are attributed to the Ctx and Trans profile categories.
func (vm *VM) EnterTranslator(guest uint32) (*Fragment, error) {
	m := vm.Env.Model
	vm.Prof.TranslatorEntries++
	start := vm.Env.Cycles
	trans0 := vm.Prof.CyclesTrans

	vm.Env.Charge(m.CtxSave)
	vm.Env.Charge(m.MapProbe)
	// Two dependent probes of the translator's map, in SDT data space.
	h := (guest >> 2) * 2654435761 // Fibonacci hashing
	vm.Env.DTouch(translatorMapAddr + h%(1<<20)&^3)
	vm.Env.DTouch(translatorMapAddr + (1 << 20) + h/(1<<20)&^3)

	f := vm.frags[guest]
	if f == nil {
		var err error
		f, err = vm.translate(guest)
		if err != nil {
			return nil, err
		}
	}
	vm.Env.Charge(m.CtxRestore)
	vm.Prof.CyclesCtx += (vm.Env.Cycles - start) - (vm.Prof.CyclesTrans - trans0)
	return f, nil
}

// fetchGuest bounds-checks pc against the static code section.
func (vm *VM) fetchGuest(pc uint32) (isa.Inst, error) {
	idx := (pc - program.CodeBase) / isa.WordSize
	if pc < program.CodeBase || pc%isa.WordSize != 0 || int(idx) >= len(vm.code) {
		return isa.Inst{}, &machine.Fault{PC: pc, Addr: pc, Msg: "translation target outside code section"}
	}
	return vm.code[idx], nil
}

// translate builds the fragment for the basic block at guest, charging
// translation costs and flushing the fragment cache if it is full.
func (vm *VM) translate(guest uint32) (*Fragment, error) {
	start := vm.Env.Cycles
	m := vm.Env.Model

	// Decode the block: up to MaxBlockInsts instructions, through the
	// first control transfer. With superblock formation, forward direct
	// jumps are followed (and elided from the emitted code) instead of
	// ending the block; forward-only following keeps decoding loop-free.
	const maxFollows = 8
	var insts []isa.Inst
	pc := guest
	termPC := guest
	follows := 0
	for len(insts) < vm.opts.MaxBlockInsts {
		in, err := vm.fetchGuest(pc)
		if err != nil {
			if len(insts) == 0 {
				return nil, err
			}
			// The block ran off the end of the code section. Native
			// execution retires the valid prefix before the overrun
			// fetch faults, so translation must not fault early: end
			// the fragment here and let its fall-through (or followed
			// jump) re-enter the translator at the bad pc, which
			// faults at the architecturally correct instruction count.
			break
		}
		insts = append(insts, in)
		termPC = pc
		if in.Op.IsControl() {
			if vm.opts.Superblocks && in.Op == isa.JMP && follows < maxFollows {
				if target := uint32(in.Imm) * isa.WordSize; target > pc {
					pc = target
					follows++
					continue
				}
			}
			break
		}
		pc += isa.WordSize
	}
	term := insts[len(insts)-1]
	bodyBytes := uint32(len(insts) * m.CodeBytesPerInst)
	size := bodyBytes + uint32(m.StubBytes)

	if vm.cacheUsed+size > vm.opts.CacheBytes {
		vm.flush()
	}

	f := &Fragment{
		GuestPC:  guest,
		Insts:    insts,
		HostAddr: vm.AllocCode(size),
		Bytes:    size,
		Synth:    !term.Op.IsControl(),
	}
	if term.Op.IsIndirect() {
		f.Site = &IBSite{
			GuestPC:  termPC,
			Kind:     isa.KindOf(term.Op),
			HostAddr: f.HostAddr + bodyBytes,
		}
		vm.opts.Handler.Attach(vm, f.Site)
	}
	vm.frags[guest] = f
	vm.byHost[f.HostAddr] = f

	vm.Env.Charge(m.TransBase + m.TransPerInst*len(insts))
	vm.Prof.Translations++
	vm.Prof.TransInsts += uint64(len(insts))
	vm.Prof.CyclesTrans += vm.Env.Cycles - start
	return f, nil
}

// flush empties the fragment cache: the translation table, host-address
// index and all handler state are dropped. Hostized return addresses stay
// resolvable through hostRet, so fast returns into flushed code fall back
// to the translator instead of misbehaving.
func (vm *VM) flush() {
	vm.epoch++
	vm.Prof.Flushes++
	vm.frags = make(map[uint32]*Fragment)
	vm.byHost = make(map[uint32]*Fragment)
	vm.rec = nil // any in-progress trace recording holds doomed fragments
	vm.cacheUsed = 0
	if !vm.opts.FastReturns && vm.codeTop >= TableBase-vm.opts.CacheBytes {
		// Reuse the address space; with fast returns it must stay unique
		// because guest registers may hold old fragment addresses.
		vm.codeTop = FragBase
	}
	vm.opts.Handler.Flush(vm)
}

// link resolves a direct fragment exit through *slot, patching it on first
// use. With linking disabled, every exit pays a translator entry.
func (vm *VM) link(f *Fragment, slot **Fragment, guest uint32) (*Fragment, error) {
	if vm.opts.DisableLinking {
		return vm.EnterTranslator(guest)
	}
	if next := *slot; next != nil && next.epochOK(vm) && next.GuestPC == guest {
		return next, nil
	}
	next, err := vm.EnterTranslator(guest)
	if err != nil {
		return nil, err
	}
	*slot = next
	return next, nil
}

// epoch tagging: fragments translated before the last flush must not be
// followed through stale links.
func (f *Fragment) epochOK(vm *VM) bool { return vm.byHost[f.HostAddr] == f }

// Run executes the guest under translation until it halts or limit
// instructions retire (0 selects machine.DefaultLimit).
func (vm *VM) Run(limit uint64) error {
	return vm.RunContext(context.Background(), limit)
}

// ctxCheckExits is how many fragment exits pass between cancellation
// checks in RunContext. Checking per fragment would put a channel poll on
// the hottest loop in the system; a fragment averages a handful of guest
// instructions, so this granularity bounds cancellation latency to a few
// thousand simulated instructions while keeping the check off the profile.
const ctxCheckExits = 1024

// RunContext executes like Run but additionally stops when ctx is
// cancelled or its deadline passes, returning an error wrapping ctx's
// cause (so errors.Is(err, context.DeadlineExceeded) and
// context.Canceled work). Cancellation is checked every ctxCheckExits
// fragment exits, not every instruction; a context that is never
// cancellable (context.Background) costs nothing.
func (vm *VM) RunContext(ctx context.Context, limit uint64) error {
	if limit == 0 {
		limit = machine.DefaultLimit
	}
	vm.limit = limit
	f, err := vm.EnterTranslator(vm.img.Entry)
	if err != nil {
		return err
	}
	done := ctx.Done()
	sinceCheck := 0
	for !vm.State.Halted {
		if vm.opts.Traces {
			f, err = vm.traceStep(f)
		} else {
			f, err = vm.execFragment(f)
		}
		if err != nil {
			return err
		}
		if done != nil {
			if sinceCheck++; sinceCheck >= ctxCheckExits {
				sinceCheck = 0
				select {
				case <-done:
					return fmt.Errorf("core: run stopped after %d instructions: %w",
						vm.State.Instret, context.Cause(ctx))
				default:
				}
			}
		}
	}
	return nil
}

// execBody runs a fragment's instructions (including the terminator) with
// instruction fetches charged at hostBase, returning the terminator's
// outcome. Exit resolution is the caller's job, which lets trace execution
// (trace.go) lay the same fragments out at trace-local addresses.
func (vm *VM) execBody(f *Fragment, hostBase uint32) (machine.Outcome, error) {
	env := vm.Env
	cb := uint32(env.Model.CodeBytesPerInst)
	pc := f.GuestPC
	last := len(f.Insts) - 1
	for i, in := range f.Insts {
		if vm.State.Instret >= vm.limit {
			return machine.Outcome{}, fmt.Errorf("%w (%d instructions)", ErrLimit, vm.limit)
		}
		env.IFetch(hostBase + uint32(i)*cb)
		env.ChargeBody(vm.State, in)
		out, err := machine.Exec(vm.State, in, pc)
		if err != nil {
			return machine.Outcome{}, fmt.Errorf("core: in fragment %#x: %w", f.GuestPC, err)
		}
		if i == last {
			return out, nil
		}
		pc = out.Target
	}
	panic("core: fragment without instructions")
}

// execFragment runs one fragment body and resolves its exit, returning the
// next fragment (nil after HALT).
func (vm *VM) execFragment(f *Fragment) (*Fragment, error) {
	out, err := vm.execBody(f, f.HostAddr)
	if err != nil {
		return nil, err
	}
	return vm.exit(f, out)
}

// exit charges and resolves a fragment's terminating control transfer.
func (vm *VM) exit(f *Fragment, out machine.Outcome) (*Fragment, error) {
	env := vm.Env
	m := env.Model
	switch out.Kind {
	case OutHalt:
		env.Charge(m.ALU)
		return nil, nil
	case OutNext:
		// Synthesized fall-through for an over-long block.
		env.Charge(m.DirectJump)
		return vm.link(f, &f.FallLink, out.Target)
	case OutBranch:
		if out.Taken {
			env.Charge(m.BranchTaken)
			return vm.link(f, &f.TakenLink, out.Target)
		}
		env.Charge(m.BranchNotTaken)
		return vm.link(f, &f.FallLink, out.Target)
	case OutJump:
		env.Charge(m.DirectJump)
		return vm.link(f, &f.TakenLink, out.Target)
	case OutCall:
		// Direct call (JAL). Exec already set ra to the guest return
		// address; under fast returns the emitted code loads the
		// fragment-cache return address instead and executes a host call.
		guestRet := vm.State.Regs[isa.RegRA] // set by Exec before the transfer
		if vm.callObs != nil {
			vm.callObs.OnCall(vm, guestRet)
		}
		if vm.opts.FastReturns {
			if err := vm.fastCall(f, guestRet); err != nil {
				return nil, err
			}
		} else {
			env.Charge(m.DirectJump)
		}
		return vm.link(f, &f.TakenLink, out.Target)
	case OutIndirect:
		return vm.indirect(f, out)
	}
	panic("core: unhandled outcome kind")
}

// outcome kind aliases to keep the switch readable.
const (
	OutNext     = machine.OutNext
	OutBranch   = machine.OutBranch
	OutJump     = machine.OutJump
	OutCall     = machine.OutCall
	OutIndirect = machine.OutIndirect
	OutHalt     = machine.OutHalt
)

// fastCall rewrites the guest's return-address register to the
// fragment-cache address of the return point and performs a host call
// (pushing the return-address stack), realizing the paper's "fast returns".
func (vm *VM) fastCall(f *Fragment, guestRet uint32) error {
	if f.RetFrag == nil || !f.RetFrag.epochOK(vm) || f.RetFrag.GuestPC != guestRet {
		// First execution (or flushed): materialize the return-point
		// fragment the way the translator does when it rewrites the call.
		rf, err := vm.EnterTranslator(guestRet)
		if err != nil {
			return err
		}
		f.RetFrag = rf
		vm.hostRet[rf.HostAddr] = guestRet
	}
	vm.State.SetReg(isa.RegRA, f.RetFrag.HostAddr)
	vm.Env.HostCall(f.RetFrag.HostAddr)
	return nil
}

// indirect dispatches an indirect-branch exit through the configured
// handler (or the fast-return path), attributing cycles to the IB category.
func (vm *VM) indirect(f *Fragment, out machine.Outcome) (*Fragment, error) {
	vm.Prof.IBExec[out.IB]++
	site := f.Site
	if site == nil {
		panic(fmt.Sprintf("core: indirect exit without site at %#x", f.GuestPC))
	}

	start := vm.Env.Cycles
	ctx0, tr0 := vm.Prof.CyclesCtx, vm.Prof.CyclesTrans
	defer func() {
		vm.Prof.CyclesIB += (vm.Env.Cycles - start) -
			(vm.Prof.CyclesCtx - ctx0) - (vm.Prof.CyclesTrans - tr0)
	}()

	if out.IB == isa.IBReturn && vm.opts.FastReturns {
		return vm.fastReturn(site, out.Target)
	}

	guestRet := vm.State.Regs[isa.RegRA] // valid for IBCall (just set by Exec)
	next, err := vm.opts.Handler.Resolve(vm, site, out.Target)
	if err != nil {
		return nil, err
	}
	if out.IB == isa.IBCall {
		if vm.callObs != nil {
			vm.callObs.OnCall(vm, guestRet)
		}
		if vm.opts.FastReturns {
			// The emitted indirect call is a host call: hostize ra and
			// push the RAS (the transfer itself was charged by Resolve).
			if f.RetFrag == nil || !f.RetFrag.epochOK(vm) || f.RetFrag.GuestPC != guestRet {
				rf, err := vm.EnterTranslator(guestRet)
				if err != nil {
					return nil, err
				}
				f.RetFrag = rf
				vm.hostRet[rf.HostAddr] = guestRet
			}
			vm.State.SetReg(isa.RegRA, f.RetFrag.HostAddr)
			vm.Env.RAS.Push(f.RetFrag.HostAddr)
		}
	}
	return next, nil
}

// fastReturn executes a return whose target may be a hostized fragment
// address: a host return instruction predicted by the RAS. Guest addresses
// (the program manufactured a return target) and flushed fragments fall
// back to the handler / translator.
func (vm *VM) fastReturn(site *IBSite, target uint32) (*Fragment, error) {
	if target < FragBase {
		// Transparency escape: the guest put a guest address in ra.
		vm.Prof.MechMisses++
		vm.Prof.IBMiss[isa.IBReturn]++
		return vm.opts.Handler.Resolve(vm, site, target)
	}
	vm.Env.HostReturn(target)
	if f := vm.byHost[target]; f != nil {
		vm.Prof.MechHits++
		return f, nil
	}
	// The fragment was flushed; recover its guest pc and retranslate.
	guest, ok := vm.hostRet[target]
	if !ok {
		return nil, &machine.Fault{PC: site.GuestPC, Addr: target, Msg: "return to unknown fragment-cache address"}
	}
	vm.Prof.MechMisses++
	vm.Prof.IBMiss[isa.IBReturn]++
	return vm.EnterTranslator(guest)
}

// Result summarizes the run in the same shape as the native machine's.
func (vm *VM) Result() machine.Result {
	return machine.Result{
		Cycles:   vm.Env.Cycles,
		Instret:  vm.State.Instret,
		Checksum: vm.State.Out.Checksum,
		OutCount: vm.State.Out.Count,
		ExitCode: vm.State.ExitCode,
	}
}
