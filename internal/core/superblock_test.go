package core_test

import (
	"testing"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/randprog"
)

// jumpChainProg hops through a chain of forward direct jumps each
// iteration — the best case for superblock formation.
const jumpChainProg = `
main:
	li r10, 0
	li r11, 5000
loop:
	addi r10, r10, 1
	jmp hop1
hop1:
	addi r12, r12, 3
	jmp hop2
hop2:
	xor r12, r12, r10
	jmp hop3
hop3:
	addi r12, r12, 7
	blt r10, r11, loop
	out r12
	halt
`

func TestSuperblocksElideDirectJumps(t *testing.T) {
	img := assemble(t, jumpChainProg)
	native := runNative(t, img)
	plain := runSDT(t, img, "ibtc:1024", nil)
	super := runSDT(t, img, "ibtc:1024", func(o *core.Options) { o.Superblocks = true })

	if super.Result().Checksum != native.Result().Checksum {
		t.Fatal("superblocks changed program output")
	}
	if super.Result().Instret != native.Result().Instret {
		t.Fatal("superblocks changed instruction count")
	}
	if super.Env.Cycles >= plain.Env.Cycles {
		t.Errorf("superblocks (%d cycles) should beat plain fragments (%d cycles) on a jump chain",
			super.Env.Cycles, plain.Env.Cycles)
	}
	if super.Prof.Translations >= plain.Prof.Translations {
		t.Errorf("superblocks should produce fewer, longer fragments: %d vs %d",
			super.Prof.Translations, plain.Prof.Translations)
	}
}

func TestSuperblocksNeverFollowBackwardJumps(t *testing.T) {
	// A backward jmp (the loop) must still end the fragment, or
	// translation would loop forever.
	src := `
	main:
		li r10, 10
	top:
		subi r10, r10, 1
		bnez r10, top
		out r10
		halt
	`
	img := assemble(t, src)
	vm := runSDT(t, img, "ibtc:64", func(o *core.Options) { o.Superblocks = true })
	if vm.Result().OutCount != 1 {
		t.Fatal("backward-jump program misbehaved under superblocks")
	}
}

func TestSuperblocksAllPrograms(t *testing.T) {
	// Equivalence across the shared test programs and random programs.
	for name, src := range testPrograms {
		img := assemble(t, src)
		native := runNative(t, img)
		vm := runSDT(t, img, "fastret+ibtc:1024", func(o *core.Options) { o.Superblocks = true })
		if vm.Result().Checksum != native.Result().Checksum {
			t.Errorf("%s: superblocks diverged", name)
		}
	}
	for seed := int64(50); seed < 60; seed++ {
		src := randprog.Generate(randprog.Default(seed))
		img := assemble(t, src)
		native := runNative(t, img)
		vm := runSDT(t, img, "ibtc:1024", func(o *core.Options) { o.Superblocks = true })
		if vm.Result().Checksum != native.Result().Checksum {
			t.Errorf("seed %d: superblocks diverged", seed)
		}
	}
}

func TestSuperblocksSiteAddressCorrect(t *testing.T) {
	// With elided jumps the IB site's guest pc is no longer
	// fragment-start + offset; verify the recorded site matches the
	// actual ret location.
	src := `
	main:
		jmp stepa
	stepa:
		jmp stepb
	stepb:
		call fn
		halt
	fn:
		ret
	`
	img := assemble(t, src)
	cfg, _ := ib.Parse("ibtc:64")
	var siteAt uint32
	probe := &siteProbe{inner: cfg.Handler, sawSite: &siteAt}
	vm, err := core.New(img, core.Options{Model: hostarch.X86(), Handler: probe, Superblocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if want := img.Symbols["fn"]; siteAt != want {
		t.Errorf("ret site recorded at %#x, want %#x", siteAt, want)
	}
}

// siteProbe records the guest pc of the return site it resolves.
type siteProbe struct {
	inner   core.IBHandler
	sawSite *uint32
}

func (p *siteProbe) Name() string                       { return "probe" }
func (p *siteProbe) Init(vm *core.VM)                   { p.inner.Init(vm) }
func (p *siteProbe) Flush(vm *core.VM)                  { p.inner.Flush(vm) }
func (p *siteProbe) Attach(vm *core.VM, s *core.IBSite) { p.inner.Attach(vm, s) }
func (p *siteProbe) Resolve(vm *core.VM, s *core.IBSite, target uint32) (*core.Fragment, error) {
	*p.sawSite = s.GuestPC
	return p.inner.Resolve(vm, s, target)
}
