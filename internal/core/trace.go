package core

import (
	"fmt"

	"sdt/internal/isa"
	"sdt/internal/machine"
)

// Trace is a materialized hot path compiled as a superblock: the recorded
// fragment sequence fused into one contiguous single-entry body in the
// fragment cache (NET-style, after Dynamo and Strata's trace mode).
//
// Superblock compilation changes how the path executes, not what it
// computes:
//
//   - The parts' predecoded instructions are referenced zero-copy and the
//     whole body's data-independent cost is precomputed as one batch
//     charge, with the unexecuted tail refunded on a side exit.
//   - Direct transfers along the recorded path are elided from the emitted
//     code: the successor is laid out fall-through, so an on-trace
//     conditional branch costs a not-taken branch, and an on-trace jump or
//     fall-through costs nothing.
//   - Indirect branches whose recorded continuation is the next part are
//     lowered to inline side-exit guards — one compare (plus the flags
//     spill x86 makes expensive) against the recorded target, with the
//     configured mechanism as the miss path. A guard that keeps missing is
//     patched out (guardStat).
//   - The body is peephole-rewritten through the model's super-op table
//     (hostarch.SuperOp, mined from the corpus by sdtfuzz -mine): matched
//     sequences retire as single host operations with fused cost and a
//     compacted I-cache footprint.
//
// Side exits resolve through the same epoch-tagged fragLink slots and
// handler paths as ordinary fragment exits, so flush and limbo semantics
// are unchanged.
type Trace struct {
	HostAddr uint32 // contiguous superblock layout in the fragment cache
	Bytes    uint32 // emitted size after fusion and elision (incl. stub)

	staticCycles uint64 // whole-body batch charge (sum of part statics)
	parts        []superPart
}

// superPart is one recorded fragment inside a superblock, with everything
// execution needs precomputed at materialization time.
type superPart struct {
	// A part is a maximal straight run of recorded fragments: fragments
	// joined by transfers that always stay on trace (an elided direct
	// jump, or a synthesized fall-through) are concatenated into one body
	// at materialization time, so a part boundary is exactly a point where
	// execution can leave the trace — a conditional branch, a call, an
	// indirect transfer or a halt.
	frag   *Fragment  // fragment owning the terminator (sites, links)
	insts  []isa.Inst // concatenated body; zero-copy for single fragments
	headPC uint32     // guest pc of the part's first instruction

	// [fetchFrom, fetchEnd) is the part's emitted code as line-aligned
	// fetch addresses, precomputed so execution walks exactly the I-cache
	// lines this part introduces. Fetch inside a superblock is strictly
	// sequential, so a line already touched by the previous part (a
	// boundary shared mid-line) would re-hit as the cache's most recently
	// used entry — LRU-neutral — and is excluded from the span.
	fetchFrom  uint32
	fetchEnd   uint32
	tailStatic uint64 // static cost of all later parts (side-exit refund)
	fused      uint64 // super-ops retired per execution of this body
	nextPC     uint32 // recorded continuation (head for the last part)

	// guard holds the side-exit guard statistics for an indirect
	// terminator. A guard that keeps missing is patched out (off) —
	// speculating on a polymorphic indirect branch only adds a wasted
	// compare to every execution.
	guard guardStat
}

type guardStat struct {
	hits   uint32
	misses uint32
	off    bool
}

// guardSample records one guard outcome and disables the guard once it has
// proven unprofitable: at least guardProbation samples with under 50% hits.
const guardProbation = 32

func (g *guardStat) sample(hit bool) {
	if hit {
		g.hits++
	} else {
		g.misses++
	}
	if g.hits+g.misses >= guardProbation && g.misses >= g.hits {
		g.off = true
	}
}

// traceRec is an in-progress recording.
type traceRec struct {
	head  *Fragment
	parts []*Fragment
}

// traceStep is one iteration of the Run loop under Options.Traces: execute
// a superblock if one starts here, otherwise count hotness, possibly start
// or extend a recording, and execute the fragment normally.
func (vm *VM) traceStep(f *Fragment) (*Fragment, error) {
	if tr := f.Trace; tr != nil {
		vm.rec = nil // never record across a trace execution
		return vm.execTrace(tr)
	}
	f.Hits++
	if vm.rec == nil && f.Hits == uint64(vm.opts.TraceThreshold) {
		vm.rec = &traceRec{head: f}
	}
	next, err := vm.execFragment(f)
	if err != nil {
		return nil, err
	}
	if vm.rec != nil {
		vm.recordStep(f, next)
	}
	return next, nil
}

// recordStep appends the just-executed fragment to the active recording
// and decides whether the trace is complete.
func (vm *VM) recordStep(f *Fragment, next *Fragment) {
	rec := vm.rec
	if len(rec.parts) == 0 && f != rec.head {
		// Recording armed but execution never came back through the
		// head (e.g. the head exited the program); abandon.
		vm.rec = nil
		return
	}
	rec.parts = append(rec.parts, f)
	switch {
	case next == nil:
		vm.rec = nil
	case next == rec.head, len(rec.parts) >= vm.opts.MaxTraceFrags, next.Trace != nil:
		vm.materializeTrace(rec)
		vm.rec = nil
	}
}

// materializeTrace compiles the recorded path into a superblock and
// installs it at the head. Recordings of fewer than two parts are not
// worth a trace; a full fragment cache stops trace formation rather than
// forcing flush churn. Both abandonment causes are counted — cache-full
// abandonment in particular silently disables trace formation for the rest
// of an epoch, which the profile must make visible.
func (vm *VM) materializeTrace(rec *traceRec) {
	if len(rec.parts) < 2 {
		vm.Prof.TraceAbandonedShort++
		return
	}
	m := vm.Env.Model
	table := m.SuperOps
	if vm.opts.NoSuperOps {
		table = nil
	}

	// Group the recorded fragments into maximal straight runs: a fragment
	// whose terminator always continues to the recorded successor — a
	// direct jump (elided from the emitted code) or a synthesized
	// fall-through — is concatenated with that successor, so the compiled
	// body crosses the dead transfer without a part boundary. The last
	// fragment always ends its group: its exit is the trace's closure.
	var parts []superPart
	emit := []uint32(nil) // per-part emitted bytes, parallel to parts
	totalInsts := 0
	var off uint32
	for i := 0; i < len(rec.parts); {
		j := i // group is rec.parts[i..j]
		for j < len(rec.parts)-1 {
			term := rec.parts[j].Terminator()
			if term.Op != isa.JMP && term.Op.IsControl() {
				break
			}
			j++
		}
		insts := rec.parts[i].Insts
		if j > i {
			merged := make([]isa.Inst, 0, (j-i+1)*len(insts))
			for _, f := range rec.parts[i : j+1] {
				merged = append(merged, f.Insts...)
			}
			insts = merged
		}
		totalInsts += len(insts)
		plan := machine.PlanFusedBody(m, insts, table)
		nextPC := rec.head.GuestPC // tail speculates loop closure (NET shape)
		if j+1 < len(rec.parts) {
			nextPC = rec.parts[j+1].GuestPC
		}
		parts = append(parts, superPart{
			frag:       rec.parts[j],
			insts:      insts,
			headPC:     rec.parts[i].GuestPC,
			fused:      plan.Fused,
			nextPC:     nextPC,
			tailStatic: plan.Static, // reused below for suffix sums
		})
		emit = append(emit, plan.EmitBytes)
		off += plan.EmitBytes
		i = j + 1
	}
	// tailStatic currently holds each part's own static cost; fold into
	// the whole-body charge and the per-part suffix refunds.
	var static uint64
	for i := len(parts) - 1; i >= 0; i-- {
		own := parts[i].tailStatic
		parts[i].tailStatic = static
		static += own
	}

	bytes := off + uint32(m.StubBytes)
	if vm.cacheUsed+bytes > vm.opts.CacheBytes {
		vm.Prof.TraceAbandonedCacheFull++
		return
	}
	start := vm.Env.Cycles
	vm.Env.Charge(m.TransBase/2 + m.TransPerInst*totalInsts/2) // code copying
	vm.Prof.CyclesTrans += vm.Env.Cycles - start
	host := vm.AllocCode(bytes)

	// Lay out the per-part I-fetch spans over the contiguous body.
	line := uint32(m.ICache.LineBytes)
	addr := host
	noLine := ^uint32(0)
	prevLast := noLine
	for i := range parts {
		if emit[i] == 0 {
			continue // fully elided part introduces no code
		}
		first := addr &^ (line - 1)
		if first == prevLast {
			first += line
		}
		lastLine := (addr + emit[i] - 1) &^ (line - 1)
		parts[i].fetchFrom = first
		parts[i].fetchEnd = lastLine + line
		prevLast = lastLine
		addr += emit[i]
	}

	rec.head.Trace = &Trace{
		HostAddr:     host,
		Bytes:        bytes,
		staticCycles: static,
		parts:        parts,
	}
	vm.Prof.TracesFormed++
}

// traceSpins bounds how many loop closures execTrace runs internally
// before returning to the Run loop, keeping cancellation latency in the
// same ballpark as fragment-by-fragment dispatch (RunContext checks its
// context every ctxCheckExits fragment exits anyway).
const traceSpins = 64

// execTrace runs a superblock from its head. The whole body's static cost
// is charged up front and the unexecuted tail refunded on a side exit, so
// a run that leaves at part i pays exactly the parts it executed — a
// megamorphic trace whose guards have patched out costs no more than the
// fragments it replaced. It returns the next fragment to execute (nil
// after HALT). Loop closures re-enter the superblock directly — a flush
// cannot have happened on any path that closes the loop (a mid-trace
// flush via a fast call fails its epoch check and side-exits first), so
// the trace is still live — up to traceSpins times before handing back.
func (vm *VM) execTrace(tr *Trace) (*Fragment, error) {
	env := vm.Env
	m := env.Model
	st := vm.State
	lineBytes := uint32(m.ICache.LineBytes)
	lastIdx := len(tr.parts) - 1
run:
	for spin := 0; ; spin++ {
		vm.Prof.SuperblockExecs++
		env.Cycles += tr.staticCycles
		e0 := vm.epoch
		for idx := range tr.parts {
			p := &tr.parts[idx]

			// I-fetch the part's precomputed span of cache lines. Within a
			// superblock fetch is strictly sequential, so any access beyond
			// the span (same-line bytes, a boundary line the previous part
			// touched) would re-hit the most recently used line —
			// LRU-neutral — making the span walk bit-identical to
			// per-instruction fetching of the same bytes.
			for a := p.fetchFrom; a < p.fetchEnd; a += lineBytes {
				env.IFetch(a)
			}

			// Execute the body through the shared semantic core: the
			// batched straight-line executor up to the terminator (with
			// the limit check hoisted out of the loop), then the
			// terminator itself. Near the end of the instruction budget
			// the per-instruction loop takes over so the limit faults at
			// the exact instruction.
			insts := p.insts
			pc := p.headPC
			var out machine.Outcome
			var err error
			if st.Instret+uint64(len(insts)) <= vm.limit {
				pc, err = machine.ExecStraight(st, env, insts[:len(insts)-1], pc)
				if err != nil {
					return nil, fmt.Errorf("core: in superblock part at %#x: %w", p.headPC, err)
				}
				term := insts[len(insts)-1]
				if term.Op.IsMem() {
					env.DTouch(st.Regs[term.Rs1] + uint32(term.Imm))
				}
				out, err = machine.Exec(st, term, pc)
				if err != nil {
					return nil, fmt.Errorf("core: in superblock part at %#x: %w", p.headPC, err)
				}
			} else {
				for _, in := range insts {
					if st.Instret >= vm.limit {
						return nil, fmt.Errorf("%w (%d instructions)", ErrLimit, vm.limit)
					}
					if in.Op.IsMem() {
						env.DTouch(st.Regs[in.Rs1] + uint32(in.Imm))
					}
					out, err = machine.Exec(st, in, pc)
					if err != nil {
						return nil, fmt.Errorf("core: in superblock part at %#x: %w", p.headPC, err)
					}
					pc = out.Target
				}
			}
			vm.Prof.SuperOpsRetired += p.fused
			last := idx == lastIdx

			switch out.Kind {
			case machine.OutIndirect:
				// Speculative side-exit guard against the recorded
				// continuation. Fast returns make the comparison useless
				// for returns (the live value is a fragment-cache address)
				// and unsound to shortcut for calls (the emitted host call
				// must still run), so those combinations go straight to
				// the normal path — as do guards that proved polymorphic
				// and were patched out.
				g := &p.guard
				if (!vm.opts.FastReturns || out.IB == isa.IBJump) && !g.off {
					env.Charge(m.FlagsSave + m.CompareBranch + m.FlagsRestore)
					hit := out.Target == p.nextPC
					g.sample(hit)
					if hit {
						vm.Prof.IBExec[out.IB]++
						vm.Prof.TraceGuardHits++
						if out.IB == isa.IBCall && vm.callObs != nil {
							vm.callObs.OnCall(vm, st.Regs[isa.RegRA])
						}
						if !last {
							continue
						}
						// Loop closure: a predicted branch to the top.
						env.Charge(m.BranchTaken)
						if spin < traceSpins {
							continue run
						}
						return tr.parts[0].frag, nil
					}
					vm.Prof.TraceGuardMisses++
				}
				vm.Prof.TraceExits++
				env.Cycles -= p.tailStatic
				return vm.indirect(p.frag, out, vm.epoch)

			case machine.OutBranch:
				if out.Target == p.nextPC {
					if !last {
						// The recorded direction is laid out fall-through.
						env.Charge(m.BranchNotTaken)
						continue
					}
					env.Charge(m.BranchTaken) // backedge to the head
					if spin < traceSpins {
						continue run
					}
					return tr.parts[0].frag, nil
				}
				// Side exit: the flipped branch fires off the recorded
				// path.
				env.Charge(m.BranchTaken)
				if !last {
					vm.Prof.TraceExits++
					env.Cycles -= p.tailStatic
				}
				slot := &p.frag.TakenLink
				if !out.Taken {
					slot = &p.frag.FallLink
				}
				return vm.link(p.frag, slot, out.Target, e0)

			case machine.OutJump, machine.OutNext:
				if out.Target == p.nextPC {
					if !last {
						continue // elided: the successor is laid out next
					}
					env.Charge(m.DirectJump) // backedge to the head
					if spin < traceSpins {
						continue run
					}
					return tr.parts[0].frag, nil
				}
				// Unreachable for these deterministic transfers while the
				// layout matches the recording; resolve defensively.
				env.Charge(m.DirectJump)
				if !last {
					vm.Prof.TraceExits++
					env.Cycles -= p.tailStatic
				}
				slot := &p.frag.TakenLink
				if out.Kind == machine.OutNext {
					slot = &p.frag.FallLink
				}
				return vm.link(p.frag, slot, out.Target, e0)

			case machine.OutCall:
				// Exec already set ra to the guest return address; the
				// emitted code must still materialize it (one ALU op)
				// unless fast returns rewrite it to a host call entirely.
				guestRet := st.Regs[isa.RegRA]
				if vm.callObs != nil {
					vm.callObs.OnCall(vm, guestRet)
				}
				if vm.opts.FastReturns {
					if err := vm.fastCall(p.frag, guestRet, e0); err != nil {
						return nil, err
					}
				} else {
					env.Charge(m.ALU)
				}
				// fastCall can enter the translator for the return point
				// and flush the cache; past that the recorded parts are
				// stale, so the trace must not continue even though the
				// target matches.
				if out.Target == p.nextPC && vm.epoch == e0 {
					if !last {
						continue // callee laid out inline: transfer elided
					}
					if !vm.opts.FastReturns {
						env.Charge(m.DirectJump) // backedge to the head
					}
					if spin < traceSpins {
						continue run
					}
					return tr.parts[0].frag, nil
				}
				if !vm.opts.FastReturns {
					env.Charge(m.DirectJump)
				}
				if !last {
					vm.Prof.TraceExits++
					env.Cycles -= p.tailStatic
				}
				return vm.link(p.frag, &p.frag.TakenLink, out.Target, e0)

			case machine.OutHalt:
				env.Charge(m.ALU)
				if !last {
					vm.Prof.TraceExits++
					env.Cycles -= p.tailStatic
				}
				return nil, nil
			}
			panic("core: unhandled outcome kind in trace")
		}
		panic("core: trace fell off its tail")
	}
}
