package core

import (
	"sdt/internal/isa"
	"sdt/internal/machine"
)

// Trace is a materialized hot path: a sequence of fragments copied into a
// contiguous stretch of the fragment cache (NET-style, after Dynamo and
// Strata's trace mode). Direct transfers between consecutive parts execute
// as in linked fragments; indirect branches whose recorded continuation is
// the next part are guarded by one inline compare — a speculative inline
// cache costing a flag spill and a compare while the branch stays
// monomorphic along the trace, with the configured mechanism as the miss
// path.
type Trace struct {
	Parts    []*Fragment
	HostAddr uint32 // contiguous trace layout in the fragment cache
	Bytes    uint32

	// guards holds per-part guard statistics. A guard that keeps missing
	// is patched out (off) — speculating on a polymorphic indirect branch
	// only adds a wasted compare to every execution.
	guards []guardStat
}

type guardStat struct {
	hits   uint32
	misses uint32
	off    bool
}

// guardSample records one guard outcome and disables the guard once it has
// proven unprofitable: at least guardProbation samples with under 50% hits.
const guardProbation = 32

func (g *guardStat) sample(hit bool) {
	if hit {
		g.hits++
	} else {
		g.misses++
	}
	if g.hits+g.misses >= guardProbation && g.misses >= g.hits {
		g.off = true
	}
}

// traceRec is an in-progress recording.
type traceRec struct {
	head  *Fragment
	parts []*Fragment
}

// traceStep is one iteration of the Run loop under Options.Traces: execute
// a trace if one starts here, otherwise count hotness, possibly start or
// extend a recording, and execute the fragment normally.
func (vm *VM) traceStep(f *Fragment) (*Fragment, error) {
	if tr := f.Trace; tr != nil {
		vm.rec = nil // never record across a trace execution
		return vm.execTrace(tr)
	}
	f.Hits++
	if vm.rec == nil && f.Hits == uint64(vm.opts.TraceThreshold) {
		vm.rec = &traceRec{head: f}
	}
	next, err := vm.execFragment(f)
	if err != nil {
		return nil, err
	}
	if vm.rec != nil {
		vm.recordStep(f, next)
	}
	return next, nil
}

// recordStep appends the just-executed fragment to the active recording
// and decides whether the trace is complete.
func (vm *VM) recordStep(f *Fragment, next *Fragment) {
	rec := vm.rec
	if len(rec.parts) == 0 && f != rec.head {
		// Recording armed but execution never came back through the
		// head (e.g. the head exited the program); abandon.
		vm.rec = nil
		return
	}
	rec.parts = append(rec.parts, f)
	switch {
	case next == nil:
		vm.rec = nil
	case next == rec.head, len(rec.parts) >= vm.opts.MaxTraceFrags, next.Trace != nil:
		vm.materializeTrace(rec)
		vm.rec = nil
	}
}

// materializeTrace copies the recorded path into the fragment cache and
// installs it at the head. Recordings of fewer than two parts are not
// worth a trace; a full fragment cache stops trace formation rather than
// forcing flush churn.
func (vm *VM) materializeTrace(rec *traceRec) {
	if len(rec.parts) < 2 {
		return
	}
	m := vm.Env.Model
	totalInsts := 0
	for _, p := range rec.parts {
		totalInsts += len(p.Insts)
	}
	bytes := uint32(totalInsts*m.CodeBytesPerInst + m.StubBytes)
	if vm.cacheUsed+bytes > vm.opts.CacheBytes {
		return
	}
	start := vm.Env.Cycles
	vm.Env.Charge(m.TransBase/2 + m.TransPerInst*totalInsts/2) // code copying
	vm.Prof.CyclesTrans += vm.Env.Cycles - start
	tr := &Trace{
		Parts:    append([]*Fragment(nil), rec.parts...),
		HostAddr: vm.AllocCode(bytes),
		Bytes:    bytes,
		guards:   make([]guardStat, len(rec.parts)),
	}
	rec.head.Trace = tr
	vm.Prof.TracesFormed++
}

// execTrace runs a trace from its head, leaving it at the first off-trace
// transfer. It returns the next fragment to execute (nil after HALT).
func (vm *VM) execTrace(tr *Trace) (*Fragment, error) {
	env := vm.Env
	m := env.Model
	cb := uint32(m.CodeBytesPerInst)
	off := uint32(0)
	for idx, part := range tr.Parts {
		out, err := vm.execBody(part, tr.HostAddr+off)
		if err != nil {
			return nil, err
		}
		off += uint32(len(part.Insts)) * cb
		// The tail speculates loop closure back to the trace head — the
		// NET shape: most traces are loop bodies whose last transfer
		// returns to the top.
		last := idx+1 == len(tr.Parts)
		next := tr.Parts[(idx+1)%len(tr.Parts)]

		if out.Kind == machine.OutIndirect {
			// Speculative guard against the recorded continuation. Fast
			// returns make the comparison useless for returns (the live
			// value is a fragment-cache address) and unsound to shortcut
			// for calls (the emitted host call must still run), so those
			// combinations go straight to the normal path — as do guards
			// that proved polymorphic and were patched out.
			g := &tr.guards[idx]
			useGuard := (!vm.opts.FastReturns || out.IB == isa.IBJump) && !g.off
			if useGuard {
				env.Charge(m.FlagsSave + m.CompareBranch + m.FlagsRestore)
				hit := out.Target == next.GuestPC
				g.sample(hit)
				if hit {
					vm.Prof.IBExec[out.IB]++
					vm.Prof.TraceGuardHits++
					if out.IB == isa.IBCall && vm.callObs != nil {
						vm.callObs.OnCall(vm, vm.State.Regs[isa.RegRA])
					}
					if !last {
						continue
					}
					// Loop closure: a predicted direct branch to the top.
					env.Charge(m.BranchTaken)
					return next, nil
				}
				vm.Prof.TraceGuardMisses++
			}
			vm.Prof.TraceExits++
			return vm.indirect(part, out, vm.epoch)
		}

		// Direct transfer: resolve through the normal exit (linking,
		// fast-call fixups); staying on trace means the resolved target
		// is the recorded next part.
		nf, err := vm.exit(part, out)
		if err != nil {
			return nil, err
		}
		if last {
			return nf, nil
		}
		if nf != next {
			vm.Prof.TraceExits++
			return nf, nil
		}
	}
	panic("core: trace fell off its tail")
}
