package core_test

import (
	"testing"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
)

func newVM(t *testing.T, src, spec string, mutate func(*core.Options)) *core.VM {
	t.Helper()
	cfg, err := ib.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := cfg.Options(hostarch.X86())
	if mutate != nil {
		mutate(&opts)
	}
	vm, err := core.New(assemble(t, src), opts)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestOptionsDefaulted(t *testing.T) {
	vm := newVM(t, "main: halt\n", "ibtc:64", nil)
	o := vm.Options()
	if o.MaxBlockInsts != 128 || o.CacheBytes != 8<<20 || o.TraceThreshold != 64 || o.MaxTraceFrags != 8 {
		t.Errorf("defaults not applied: %+v", o)
	}
	if vm.Handler() == nil || vm.Handler().Name() != "ibtc(shared,64)" {
		t.Errorf("Handler() = %v", vm.Handler())
	}
	if vm.Image() == nil {
		t.Error("Image() nil")
	}
}

func TestAllocatorsMonotonic(t *testing.T) {
	vm := newVM(t, "main: halt\n", "translator", nil)
	a := vm.AllocCode(64)
	b := vm.AllocCode(32)
	if b != a+64 {
		t.Errorf("AllocCode not contiguous: %#x then %#x", a, b)
	}
	if a < core.FragBase {
		t.Errorf("code alloc %#x below FragBase", a)
	}
	d1 := vm.AllocData(128)
	d2 := vm.AllocData(8)
	if d2 != d1+128 {
		t.Errorf("AllocData not contiguous: %#x then %#x", d1, d2)
	}
	if d1 < core.TableBase {
		t.Errorf("data alloc %#x below TableBase", d1)
	}
}

func TestLookupAndByHost(t *testing.T) {
	vm := newVM(t, `
	main:
		call fn
		halt
	fn:	ret
	`, "ibtc:64", nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	entry := vm.Image().Entry
	f := vm.Lookup(entry)
	if f == nil || f.GuestPC != entry {
		t.Fatalf("Lookup(entry) = %v", f)
	}
	if got := vm.FragmentByHost(f.HostAddr); got != f {
		t.Error("FragmentByHost disagrees with Lookup")
	}
	if vm.FragmentByHost(0xdeadbeef) != nil {
		t.Error("FragmentByHost invented a fragment")
	}
	if vm.Lookup(0x42) != nil {
		t.Error("Lookup invented a fragment")
	}
	if f.Terminator().Op.String() != "jal" {
		t.Errorf("entry fragment terminator = %v", f.Terminator())
	}
}

func TestGuestOfHostRet(t *testing.T) {
	vm := newVM(t, `
	main:
		call fn
		halt
	fn:	ret
	`, "fastret+ibtc:64", nil)
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	// The call's return point (main+4) was hostized; find its record.
	retGuest := vm.Image().Entry + 4
	rf := vm.Lookup(retGuest)
	if rf == nil {
		t.Fatal("return-point fragment missing")
	}
	g, ok := vm.GuestOfHostRet(rf.HostAddr)
	if !ok || g != retGuest {
		t.Errorf("GuestOfHostRet = %#x,%v want %#x", g, ok, retGuest)
	}
	if _, ok := vm.GuestOfHostRet(12345); ok {
		t.Error("GuestOfHostRet invented a mapping")
	}
}

func TestEpochAdvancesOnFlush(t *testing.T) {
	vm := newVM(t, testPrograms["mutual"], "ibtc:64", func(o *core.Options) {
		o.CacheBytes = 200
	})
	before := vm.Epoch()
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if vm.Prof.Flushes == 0 {
		t.Fatal("expected flushes")
	}
	if vm.Epoch() == before {
		t.Error("Epoch did not advance across flushes")
	}
	if vm.Epoch() != before+vm.Prof.Flushes {
		t.Errorf("Epoch = %d, want %d", vm.Epoch(), before+vm.Prof.Flushes)
	}
}
