//go:build !race

package core_test

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates on its own, making allocation counts
// meaningless (see alloc_test.go).
const raceEnabled = false
