package core

import (
	"math/bits"
	"sync"
)

// This file holds the VM's allocation machinery: chunked arenas for
// fragments and IB sites, the dense guest-pc translation table, and the flat
// open-addressed host-address table. Together they make the dispatch loop
// allocation-free in steady state and make a flush O(live fragments): the
// epoch bumps, arena chunks move to a free list (or are dropped wholesale),
// and no per-fragment map surgery happens at all.

// fragChunkLen is the arena granularity. 256 fragments is a few hot loops'
// worth of translations per chunk while keeping a chunk small enough that a
// mostly-empty one is cheap to carry.
const fragChunkLen = 256

type fragChunk [fragChunkLen]Fragment

// siteChunkLen is smaller because only indirect-branch terminators need a
// site — typically well under half of all fragments.
const siteChunkLen = 64

type siteChunk [siteChunkLen]IBSite

// Pools shared across VMs. Chunks are zeroed before they are returned (see
// VM.Recycle), so a pooled chunk never leaks another run's state.
var (
	fragChunkPool = sync.Pool{New: func() any { return new(fragChunk) }}
	siteChunkPool = sync.Pool{New: func() any { return new(siteChunk) }}
	fragTabPool   sync.Pool // *[]*Fragment, cleared before Put
	hostTabPool   sync.Pool // *[]hostEntry, cleared before Put
)

// limboGens is how many flushes a fragment or site chunk sits out before
// its storage is reused. Execution legitimately holds pointers into
// just-flushed fragments for a short window: the run loop dispatches the
// fragment an exit resolved even if a later translator entry in the same
// exit flushed it (at most one flush stale), and during that fragment's own
// exit each translator entry can flush again while its site and link slots
// are still referenced. Each exit performs at most two translator entries,
// so no pointer outlives three flushes; three limbo generations keep every
// such object intact with one generation to spare.
const limboGens = 3

// newFragment hands out the next arena slot. The caller must overwrite the
// whole struct (slots reused after a flush still hold their previous
// fragment's fields).
func (vm *VM) newFragment() *Fragment {
	if len(vm.fchunks) == 0 || vm.fused == fragChunkLen {
		var c *fragChunk
		if n := len(vm.freeFrag); n > 0 {
			c = vm.freeFrag[n-1]
			vm.freeFrag[n-1] = nil
			vm.freeFrag = vm.freeFrag[:n-1]
		} else {
			c = fragChunkPool.Get().(*fragChunk)
		}
		vm.fchunks = append(vm.fchunks, c)
		vm.fused = 0
	}
	f := &vm.fchunks[len(vm.fchunks)-1][vm.fused]
	vm.fused++
	return f
}

// newSite is newFragment for IB sites.
func (vm *VM) newSite() *IBSite {
	if len(vm.schunks) == 0 || vm.sused == siteChunkLen {
		var c *siteChunk
		if n := len(vm.freeSite); n > 0 {
			c = vm.freeSite[n-1]
			vm.freeSite[n-1] = nil
			vm.freeSite = vm.freeSite[:n-1]
		} else {
			c = siteChunkPool.Get().(*siteChunk)
		}
		vm.schunks = append(vm.schunks, c)
		vm.sused = 0
	}
	s := &vm.schunks[len(vm.schunks)-1][vm.sused]
	vm.sused++
	return s
}

// grabFragTable returns a zeroed dense translation table with one slot per
// guest code word, reusing a pooled table when it is big enough.
func grabFragTable(n int) []*Fragment {
	if p, _ := fragTabPool.Get().(*[]*Fragment); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]*Fragment, n)
}

// hostEntry is one slot of the host-address table. addr == 0 marks an empty
// slot; every fragment-cache address is at or above FragBase, so 0 never
// collides with a key. One entry carries both roles the old maps had: the
// fragment whose code starts at addr (byHost) and, under fast returns, the
// guest return pc a hostized return address stands for (hostRet). The
// latter intentionally survives flushes.
type hostEntry struct {
	addr     uint32
	hasRet   bool
	guestRet uint32
	frag     *Fragment
}

// hostTable is a flat open-addressed hash table keyed by fragment-cache
// address: multiplicative (Fibonacci) hashing, linear probing, grown at 3/4
// load. Lookups on the fast-return dispatch path touch one cache line in
// the common case and never allocate.
type hostTable struct {
	entries []hostEntry // power-of-two length
	used    int
	shift   uint32 // 32 - log2(len(entries))
}

const hostTabInitLen = 1 << 10

func hostHash(addr uint32) uint32 { return addr * 2654435761 }

func (t *hostTable) init(entries []hostEntry) {
	if entries == nil {
		entries = make([]hostEntry, hostTabInitLen)
	}
	t.entries = entries
	t.used = 0
	t.shift = 32 - uint32(bits.TrailingZeros(uint(len(entries))))
}

// get returns the entry for addr, or nil if addr was never inserted.
func (t *hostTable) get(addr uint32) *hostEntry {
	mask := uint32(len(t.entries) - 1)
	for i := hostHash(addr) >> t.shift; ; i++ {
		e := &t.entries[i&mask]
		if e.addr == addr {
			return e
		}
		if e.addr == 0 {
			return nil
		}
	}
}

// put returns the entry for addr, inserting an empty one if needed.
func (t *hostTable) put(addr uint32) *hostEntry {
	if (t.used+1)*4 >= len(t.entries)*3 {
		t.grow()
	}
	mask := uint32(len(t.entries) - 1)
	for i := hostHash(addr) >> t.shift; ; i++ {
		e := &t.entries[i&mask]
		if e.addr == addr {
			return e
		}
		if e.addr == 0 {
			e.addr = addr
			t.used++
			return e
		}
	}
}

func (t *hostTable) grow() {
	old := t.entries
	t.entries = make([]hostEntry, 2*len(old))
	t.shift--
	mask := uint32(len(t.entries) - 1)
	for i := range old {
		if old[i].addr == 0 {
			continue
		}
		j := hostHash(old[i].addr) >> t.shift
		for t.entries[j&mask].addr != 0 {
			j++
		}
		t.entries[j&mask] = old[i]
	}
}

// Recycle returns the VM's reusable storage — guest memory, fragment and
// site arenas, the translation and host tables — to their shared pools. The
// VM must not be used afterwards, and no *Fragment obtained from it may be
// dereferenced again.
func (vm *VM) Recycle() {
	vm.fchunks = append(vm.fchunks, vm.freeFrag...)
	for _, gen := range vm.fragLimbo {
		vm.fchunks = append(vm.fchunks, gen...)
	}
	for _, c := range vm.fchunks {
		*c = fragChunk{}
		fragChunkPool.Put(c)
	}
	vm.fchunks, vm.freeFrag = nil, nil
	vm.fragLimbo = [limboGens][]*fragChunk{}
	vm.schunks = append(vm.schunks, vm.freeSite...)
	for _, gen := range vm.siteLimbo {
		vm.schunks = append(vm.schunks, gen...)
	}
	for _, c := range vm.schunks {
		*c = siteChunk{}
		siteChunkPool.Put(c)
	}
	vm.schunks, vm.freeSite = nil, nil
	vm.siteLimbo = [limboGens][]*siteChunk{}
	if vm.frags != nil {
		t := vm.frags[:cap(vm.frags)]
		vm.frags = nil
		clear(t)
		fragTabPool.Put(&t)
	}
	if vm.hostTab.entries != nil {
		e := vm.hostTab.entries
		vm.hostTab.entries = nil
		clear(e)
		hostTabPool.Put(&e)
	}
	vm.rec = nil
	vm.State.Recycle()
}

// grabHostTab fetches a pooled (already cleared) host table backing array,
// or nil when none is pooled; hostTable.init treats nil as "allocate".
func grabHostTab() []hostEntry {
	if p, _ := hostTabPool.Get().(*[]hostEntry); p != nil {
		return *p
	}
	return nil
}
