package core_test

import (
	"testing"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/randprog"
)

func withTraces(o *core.Options) { o.Traces = true }

func TestTracesEquivalentOnAllPrograms(t *testing.T) {
	for name, src := range testPrograms {
		img := assemble(t, src)
		native := runNative(t, img)
		for _, spec := range []string{"ibtc:1024", "sieve:256", "fastret+ibtc:1024"} {
			vm := runSDT(t, img, spec, withTraces)
			if vm.Result().Checksum != native.Result().Checksum {
				t.Errorf("%s under %s: traces diverged", name, spec)
			}
			if vm.Result().Instret != native.Result().Instret {
				t.Errorf("%s under %s: traces changed instret", name, spec)
			}
		}
	}
}

func TestTracesEquivalentOnRandomPrograms(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		src := randprog.Generate(randprog.Default(seed))
		img := assemble(t, src)
		native := runNative(t, img)
		vm := runSDT(t, img, "ibtc:1024", func(o *core.Options) {
			o.Traces = true
			o.TraceThreshold = 4 // form traces aggressively
			o.MaxTraceFrags = 6
		})
		if vm.Result().Checksum != native.Result().Checksum {
			t.Errorf("seed %d: traces diverged", seed)
		}
	}
}

func TestTracesFormAndGuardsHit(t *testing.T) {
	// A hot loop whose jump-table dispatch is monomorphic: the trace's IB
	// guard should absorb almost every dispatch.
	src := `
	main:
		li r10, 0
		li r11, 20000
	loop:
		la r1, table
		lw r3, (r1)      ; always case0
		jr r3
	case0:
		addi r12, r12, 3
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	.data
	table: .word case0
	`
	img := assemble(t, src)
	vm := runSDT(t, img, "ibtc:1024", withTraces)
	if vm.Prof.TracesFormed == 0 {
		t.Fatal("no traces formed on a hot loop")
	}
	if vm.Prof.TraceGuardHits < 15000 {
		t.Errorf("guard hits = %d, want most of the 20k dispatches", vm.Prof.TraceGuardHits)
	}
	plain := runSDT(t, img, "ibtc:1024", nil)
	if vm.Env.Cycles >= plain.Env.Cycles {
		t.Errorf("traces (%d cycles) should beat plain (%d cycles) on a monomorphic hot loop",
			vm.Env.Cycles, plain.Env.Cycles)
	}
}

func TestTracesGuardMissesOnPolymorphicDispatch(t *testing.T) {
	// Alternating dispatch targets: guards miss roughly half the time and
	// fall through to the mechanism; results stay correct.
	src := `
	main:
		li r10, 0
		li r11, 8000
	loop:
		andi r2, r10, 1
		la r1, table
		slli r2, r2, 2
		add r1, r1, r2
		lw r3, (r1)
		jr r3
	c0:	addi r12, r12, 1
		jmp next
	c1:	addi r12, r12, 2
	next:
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	.data
	table: .word c0, c1
	`
	img := assemble(t, src)
	native := runNative(t, img)
	vm := runSDT(t, img, "ibtc:1024", withTraces)
	if vm.Result().Checksum != native.Result().Checksum {
		t.Fatal("polymorphic trace run diverged")
	}
	if vm.Prof.TracesFormed == 0 {
		t.Fatal("no traces formed")
	}
	if vm.Prof.TraceGuardMisses == 0 {
		t.Error("alternating targets should miss trace guards")
	}
}

func TestTraceGuardsDisableWhenPolymorphic(t *testing.T) {
	// A megamorphic dispatch loop: guards must stop sampling (and stop
	// charging) once they prove unprofitable, so the traced run costs at
	// most a small overhead above the plain run.
	src := `
	main:
		li r10, 0
		li r11, 30000
		li r25, 1
	loop:
		li r1, 1103515245
		mul r25, r25, r1
		addi r25, r25, 12345
		srli r2, r25, 9
		andi r2, r2, 7
		la r1, table
		slli r2, r2, 2
		add r1, r1, r2
		lw r3, (r1)
		jr r3
	c0:	jmp next
	c1:	jmp next
	c2:	jmp next
	c3:	jmp next
	c4:	jmp next
	c5:	jmp next
	c6:	jmp next
	c7:	addi r12, r12, 1
	next:
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	.data
	table: .word c0, c1, c2, c3, c4, c5, c6, c7
	`
	img := assemble(t, src)
	traced := runSDT(t, img, "ibtc:1024", withTraces)
	plain := runSDT(t, img, "ibtc:1024", nil)
	if traced.Result().Checksum != plain.Result().Checksum {
		t.Fatal("diverged")
	}
	// The disabled guards bound the damage: within 3% of plain.
	if float64(traced.Env.Cycles) > 1.03*float64(plain.Env.Cycles) {
		t.Errorf("adaptive guards failed to bound polymorphic overhead: traced %d vs plain %d",
			traced.Env.Cycles, plain.Env.Cycles)
	}
	if traced.Prof.TraceGuardMisses == 0 {
		t.Error("expected some guard misses before the disable kicks in")
	}
}

func TestTracesUnderFlushPressure(t *testing.T) {
	img := assemble(t, testPrograms["mutual"])
	native := runNative(t, img)
	vm := runSDT(t, img, "ibtc:256", func(o *core.Options) {
		o.Traces = true
		o.TraceThreshold = 2
		// Small enough that fragment translation alone overflows it: fused
		// superblock bodies are compact enough that 400 bytes no longer
		// flushes (materialization abandons instead, see
		// TraceAbandonedCacheFull).
		o.CacheBytes = 280
	})
	if vm.Prof.Flushes == 0 {
		t.Fatal("expected flushes")
	}
	if vm.Result().Checksum != native.Result().Checksum {
		t.Error("traces diverged under flush pressure")
	}
}

func TestTraceAbandonmentCounted(t *testing.T) {
	// Cache-full: a fragment cache sized so translation succeeds but at
	// least one materialization finds no room for its superblock body. The
	// recording must be dropped (and counted), never half-installed.
	img := assemble(t, testPrograms["mutual"])
	native := runNative(t, img)
	vm := runSDT(t, img, "ibtc:256", func(o *core.Options) {
		o.Traces = true
		o.TraceThreshold = 2
		o.CacheBytes = 320
	})
	if vm.Prof.TraceAbandonedCacheFull == 0 {
		t.Error("no cache-full abandonment at 320 bytes; the counter (or the test's sizing) is wrong")
	}
	if vm.Result().Checksum != native.Result().Checksum {
		t.Error("diverged after abandoning a trace on cache-full")
	}

	// Short: a loop that is a single self-looping fragment records one part
	// and has nothing to fuse; the recording is abandoned as too short.
	short := assemble(t, `
	main:
		li r10, 0
		li r11, 5000
	loop:
		addi r12, r12, 1
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	`)
	vm = runSDT(t, short, "ibtc:256", func(o *core.Options) {
		o.Traces = true
		o.TraceThreshold = 2
	})
	if vm.Prof.TraceAbandonedShort == 0 {
		t.Error("self-looping fragment was not abandoned as a short trace")
	}
	if vm.Prof.TracesFormed != 0 {
		t.Errorf("single-fragment loop formed %d traces", vm.Prof.TracesFormed)
	}
}

func TestTraceOptionsValidated(t *testing.T) {
	img := assemble(t, "main: halt\n")
	bad := []core.Options{
		{Model: hostarch.X86(), Handler: ib.NewTranslator(), TraceThreshold: -1},
		{Model: hostarch.X86(), Handler: ib.NewTranslator(), MaxTraceFrags: 1},
	}
	for i, o := range bad {
		if _, err := core.New(img, o); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
}

func TestTracesHelpReturnHeavyCode(t *testing.T) {
	// The trace guard turns a monomorphic return (one hot caller) into a
	// compare — the same effect the paper gets from fast returns, bought
	// without sacrificing transparency.
	src := `
	main:
		li r10, 0
		li r11, 15000
	loop:
		call leaf
		add r12, r12, rv
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	leaf:
		addi rv, r10, 1
		ret
	`
	img := assemble(t, src)
	traced := runSDT(t, img, "ibtc:1024", withTraces)
	plain := runSDT(t, img, "ibtc:1024", nil)
	if traced.Prof.TraceGuardHits == 0 {
		t.Fatal("return guard never hit")
	}
	if traced.Env.Cycles >= plain.Env.Cycles {
		t.Errorf("traces (%d) should beat plain IBTC (%d) on monomorphic returns",
			traced.Env.Cycles, plain.Env.Cycles)
	}
	// But they keep transparency, unlike fast returns.
	native := runNative(t, img)
	if traced.Result().Checksum != native.Result().Checksum {
		t.Error("traced run diverged")
	}
}

func TestTraceProfileConsistency(t *testing.T) {
	img := assemble(t, testPrograms["funcptr"])
	native := runNative(t, img)
	vm := runSDT(t, img, "ibtc:1024", withTraces)
	// Every native IB execution must be accounted for under traces too:
	// guard hits + mechanism resolutions together cover them.
	var wantIB uint64
	for _, n := range native.Counts.IB {
		wantIB += n
	}
	if got := vm.Prof.IBTotal(); got != wantIB {
		t.Errorf("IB accounting under traces: got %d, want %d", got, wantIB)
	}
	if vm.Prof.TraceGuardHits+vm.Prof.MechHits+vm.Prof.MechMisses != wantIB {
		t.Errorf("guard+mechanism events (%d+%d+%d) != IBs (%d)",
			vm.Prof.TraceGuardHits, vm.Prof.MechHits, vm.Prof.MechMisses, wantIB)
	}
}

func TestTraceThresholdControlsFormation(t *testing.T) {
	img := assemble(t, testPrograms["jumptable"])
	never := runSDT(t, img, "ibtc:1024", func(o *core.Options) {
		o.Traces = true
		o.TraceThreshold = 1 << 30
	})
	if never.Prof.TracesFormed != 0 {
		t.Errorf("huge threshold formed %d traces", never.Prof.TracesFormed)
	}
	eager := runSDT(t, img, "ibtc:1024", func(o *core.Options) {
		o.Traces = true
		o.TraceThreshold = 2
	})
	if eager.Prof.TracesFormed == 0 {
		t.Error("low threshold formed no traces")
	}
	for i, vm := range []*core.VM{never, eager} {
		if vm.Result().Checksum != runNative(t, img).Result().Checksum {
			t.Errorf("run %d diverged", i)
		}
	}
}
