package core_test

import (
	"testing"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
)

// Targeted single-fragment invalidation: the retired fragment must vanish
// from every lookup surface without disturbing the rest of the cache or
// bumping the epoch (no flush).
func TestInvalidateFragment(t *testing.T) {
	img, err := asm.Assemble("inv.s", `
	main:
		call f1
		call f1
		out rv
		halt
	f1:
		addi rv, rv, 7
		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ib.Parse("ibtc:64")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := core.New(img, cfg.Options(hostarch.X86()))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if vm.Prof.Flushes != 0 {
		t.Fatal("program flushed; the test needs a quiet cache")
	}

	f := vm.Lookup(img.Entry)
	if f == nil {
		t.Fatal("entry fragment not found after run")
	}
	host := f.HostAddr
	epoch := vm.Epoch()

	if !vm.Invalidate(f) {
		t.Fatal("Invalidate returned false for a live fragment")
	}
	if vm.Live(f) {
		t.Error("fragment still Live after Invalidate")
	}
	if vm.Lookup(img.Entry) != nil {
		t.Error("translation table still resolves the invalidated fragment")
	}
	if vm.FragmentByHost(host) != nil {
		t.Error("host-address index still resolves the invalidated fragment")
	}
	if vm.Epoch() != epoch {
		t.Error("Invalidate bumped the epoch (that is a flush, not a targeted retire)")
	}
	if vm.Invalidate(f) {
		t.Error("second Invalidate of a dead fragment returned true")
	}

	// Unrelated fragments are untouched.
	if g := vm.Lookup(img.Entry + 8); g != nil && !vm.Live(g) {
		t.Error("invalidation leaked onto an unrelated fragment")
	}
}
