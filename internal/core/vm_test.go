package core_test

import (
	"strings"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/program"
)

// Guest programs exercising every control-flow shape.
var testPrograms = map[string]string{
	"factorial": `
		main:
			li a0, 10
			call fact
			out rv
			halt
		fact:
			li rv, 1
			li r9, 2
			blt a0, r9, done
			push ra
			push a0
			subi a0, a0, 1
			call fact
			pop a0
			pop ra
			mul rv, rv, a0
		done:
			ret
	`,
	"jumptable": `
		main:
			li r10, 0
			li r11, 0
			li r12, 500
		loop:
			andi r2, r10, 3
			la r1, table
			slli r2, r2, 2
			add r1, r1, r2
			lw r3, (r1)
			jr r3
		c0: addi r11, r11, 1
			jmp next
		c1: addi r11, r11, 10
			jmp next
		c2: addi r11, r11, 100
			jmp next
		c3: addi r11, r11, 1000
		next:
			addi r10, r10, 1
			blt r10, r12, loop
			out r11
			halt
		.data
		table: .word c0, c1, c2, c3
	`,
	"funcptr": `
		main:
			li r10, 0
			li r11, 300
			li r12, 0
		loop:
			andi r2, r10, 1
			la r1, fns
			slli r2, r2, 2
			add r1, r1, r2
			lw r3, (r1)
			mov a0, r10
			callr r3
			add r12, r12, rv
			addi r10, r10, 1
			blt r10, r11, loop
			out r12
			halt
		inc:
			addi rv, a0, 1
			ret
		dbl:
			add rv, a0, a0
			ret
		.data
		fns: .word inc, dbl
	`,
	"mutual": `
		main:
			li a0, 20
			call even
			out rv
			halt
		even:            ; rv = 1 if a0 even
			bnez a0, even_rec
			li rv, 1
			ret
		even_rec:
			push ra
			subi a0, a0, 1
			call odd
			pop ra
			ret
		odd:
			bnez a0, odd_rec
			li rv, 0
			ret
		odd_rec:
			push ra
			subi a0, a0, 1
			call even
			pop ra
			ret
	`,
	"deeprecursion": `
		main:
			li a0, 200       ; deeper than any RAS
			call sum
			out rv
			halt
		sum:                 ; rv = a0 + a0-1 + ... + 1
			beqz a0, zero
			push ra
			push a0
			subi a0, a0, 1
			call sum
			pop a0
			pop ra
			add rv, rv, a0
			ret
		zero:
			li rv, 0
			ret
	`,
	"interp": `
		; a tiny bytecode interpreter: the perlbmk-shaped workload
		main:
			la r20, prog     ; bytecode pc
			li r21, 0        ; accumulator
		dispatch:
			lbu r1, (r20)
			addi r20, r20, 1
			la r2, ops
			slli r3, r1, 2
			add r2, r2, r3
			lw r3, (r2)
			jr r3
		op_add:
			lbu r4, (r20)
			addi r20, r20, 1
			add r21, r21, r4
			jmp dispatch
		op_mul:
			lbu r4, (r20)
			addi r20, r20, 1
			mul r21, r21, r4
			jmp dispatch
		op_out:
			out r21
			jmp dispatch
		op_loop:
			lbu r4, (r20)    ; counter cell offset... simple: repeat from start r4 times
			addi r20, r20, 1
			addi r22, r22, 1
			bge r22, r4, dispatch
			la r20, prog
			jmp dispatch
		op_halt:
			out r21
			halt
		.data
		ops: .word op_add, op_mul, op_out, op_loop, op_halt
		prog:
			.byte 0, 5       ; add 5
			.byte 1, 3       ; mul 3
			.byte 0, 7       ; add 7
			.byte 2          ; out
			.byte 3, 200     ; loop 200x
			.byte 4          ; halt
	`,
}

// mechanisms every equivalence test runs under.
var testSpecs = []string{
	"translator",
	"ibtc:64",
	"ibtc:4096",
	"ibtc:4096:private",
	"ibtc:4096:sharedjump",
	"inline:1+translator",
	"inline:2+ibtc:4096",
	"sieve:16",
	"sieve:1024",
	"retcache:1024+ibtc:4096",
	"fastret+ibtc:4096",
	"fastret+sieve:1024",
	"fastret+inline:2+ibtc:4096",
}

func assemble(t *testing.T, src string) *program.Image {
	t.Helper()
	img, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func runNative(t *testing.T, img *program.Image) *machine.Machine {
	t.Helper()
	m, err := machine.RunImage(img, hostarch.X86(), 50_000_000)
	if err != nil {
		t.Fatalf("native run: %v", err)
	}
	return m
}

func runSDT(t *testing.T, img *program.Image, spec string, mutate func(*core.Options)) *core.VM {
	t.Helper()
	cfg, err := ib.Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	opts := core.Options{Model: hostarch.X86(), Handler: cfg.Handler, FastReturns: cfg.FastReturns}
	if mutate != nil {
		mutate(&opts)
	}
	vm, err := core.New(img, opts)
	if err != nil {
		t.Fatalf("new VM: %v", err)
	}
	if err := vm.Run(50_000_000); err != nil {
		t.Fatalf("SDT run under %s: %v", spec, err)
	}
	return vm
}

func TestSDTMatchesNativeAllMechanisms(t *testing.T) {
	for name, src := range testPrograms {
		img := assemble(t, src)
		native := runNative(t, img)
		for _, spec := range testSpecs {
			t.Run(name+"/"+spec, func(t *testing.T) {
				vm := runSDT(t, img, spec, nil)
				nr, sr := native.Result(), vm.Result()
				if sr.Checksum != nr.Checksum || sr.OutCount != nr.OutCount {
					t.Errorf("output mismatch: native %d values chk=%#x, sdt %d values chk=%#x",
						nr.OutCount, nr.Checksum, sr.OutCount, sr.Checksum)
				}
				if sr.Instret != nr.Instret {
					t.Errorf("instret mismatch: native %d, sdt %d", nr.Instret, sr.Instret)
				}
				if sr.ExitCode != nr.ExitCode {
					t.Errorf("exit code mismatch: %d vs %d", sr.ExitCode, nr.ExitCode)
				}
				if sr.Cycles <= nr.Cycles {
					t.Errorf("SDT (%d cycles) should not beat native (%d cycles)", sr.Cycles, nr.Cycles)
				}
			})
		}
	}
}

func TestIBCountsMatchNative(t *testing.T) {
	img := assemble(t, testPrograms["funcptr"])
	native := runNative(t, img)
	vm := runSDT(t, img, "ibtc:4096", nil)
	for k := isa.IBKind(0); k < isa.NumIBKinds; k++ {
		if vm.Prof.IBExec[k] != native.Counts.IB[k] {
			t.Errorf("%v count: sdt %d, native %d", k, vm.Prof.IBExec[k], native.Counts.IB[k])
		}
	}
}

func TestLinkingAmortizesTranslatorEntries(t *testing.T) {
	img := assemble(t, testPrograms["jumptable"])
	vm := runSDT(t, img, "ibtc:4096", nil)
	// With linking, translator entries should be close to the number of
	// distinct fragments, not the number of executed blocks.
	if vm.Prof.TranslatorEntries > vm.Prof.Translations*3 {
		t.Errorf("translator entries %d vs %d translations: linking is not amortizing",
			vm.Prof.TranslatorEntries, vm.Prof.Translations)
	}
}

func TestDisableLinkingCostsMore(t *testing.T) {
	img := assemble(t, testPrograms["factorial"])
	linked := runSDT(t, img, "ibtc:4096", nil)
	unlinked := runSDT(t, img, "ibtc:4096", func(o *core.Options) { o.DisableLinking = true })
	if unlinked.Result().Checksum != linked.Result().Checksum {
		t.Fatal("unlinked run computed a different answer")
	}
	if unlinked.Env.Cycles <= linked.Env.Cycles {
		t.Errorf("unlinked (%d) should cost more than linked (%d)", unlinked.Env.Cycles, linked.Env.Cycles)
	}
	if unlinked.Prof.TranslatorEntries <= linked.Prof.TranslatorEntries*2 {
		t.Errorf("unlinked translator entries %d vs linked %d: expected a large increase",
			unlinked.Prof.TranslatorEntries, linked.Prof.TranslatorEntries)
	}
}

func TestSmallBlocksStillCorrect(t *testing.T) {
	img := assemble(t, testPrograms["interp"])
	native := runNative(t, img)
	vm := runSDT(t, img, "ibtc:4096", func(o *core.Options) { o.MaxBlockInsts = 2 })
	if vm.Result().Checksum != native.Result().Checksum {
		t.Error("tiny MaxBlockInsts changed program output")
	}
	if vm.Result().Instret != native.Result().Instret {
		t.Error("tiny MaxBlockInsts changed instruction count")
	}
}

func TestCacheFlushCorrectness(t *testing.T) {
	// A fragment cache far too small for the program forces continual
	// flushes; results must not change, under any mechanism.
	for _, spec := range []string{"ibtc:256", "sieve:64", "fastret+ibtc:256"} {
		t.Run(spec, func(t *testing.T) {
			img := assemble(t, testPrograms["mutual"])
			native := runNative(t, img)
			vm := runSDT(t, img, spec, func(o *core.Options) { o.CacheBytes = 200 })
			if vm.Prof.Flushes == 0 {
				t.Fatal("test expected flushes; raise the pressure")
			}
			if vm.Result().Checksum != native.Result().Checksum {
				t.Error("flushes changed program output")
			}
		})
	}
}

func TestFastReturnsHitRAS(t *testing.T) {
	img := assemble(t, testPrograms["factorial"])
	vm := runSDT(t, img, "fastret+ibtc:4096", nil)
	hits, misses := vm.Env.RAS.Stats()
	if hits == 0 {
		t.Fatal("fast returns never hit the RAS")
	}
	if misses > hits/4 {
		t.Errorf("RAS under fast returns: %d hits, %d misses", hits, misses)
	}
}

func TestFastReturnsBeatIBTCOnCallHeavyCode(t *testing.T) {
	// Shallow call nesting repeated many times: the regime where the RAS
	// wins. (Recursion deeper than the RAS overflows it and fast returns
	// lose their edge — see TestDeepRecursionOverflowsRAS.)
	src := `
		main:
			li r10, 0
			li r11, 3000
			li r12, 0
		loop:
			mov a0, r10
			call f1
			add r12, r12, rv
			call f2
			add r12, r12, rv
			addi r10, r10, 1
			blt r10, r11, loop
			out r12
			halt
		f1:
			addi rv, a0, 1
			ret
		f2:
			push ra
			call f1
			pop ra
			add rv, rv, rv
			ret
	`
	img := assemble(t, src)
	fast := runSDT(t, img, "fastret+ibtc:4096", nil)
	slow := runSDT(t, img, "ibtc:4096", nil)
	if fast.Env.Cycles >= slow.Env.Cycles {
		t.Errorf("fast returns (%d cycles) should beat IBTC returns (%d cycles) on call-heavy code",
			fast.Env.Cycles, slow.Env.Cycles)
	}
}

func TestDeepRecursionOverflowsRAS(t *testing.T) {
	// Recursion deeper than the hardware return-address stack wraps it,
	// so most fast returns mispredict — the regime where table-based
	// return handling catches up.
	img := assemble(t, testPrograms["deeprecursion"])
	vm := runSDT(t, img, "fastret+ibtc:4096", nil)
	hits, misses := vm.Env.RAS.Stats()
	if misses < hits {
		t.Errorf("depth-200 recursion against a 16-deep RAS: %d hits, %d misses — expected mostly misses", hits, misses)
	}
}

func TestFastReturnTransparencyHazard(t *testing.T) {
	// The paper's transparency discussion: a guest that inspects its own
	// return address observes fragment-cache addresses under fast returns.
	src := `
		main:
			call probe
			halt
		probe:
			out ra        ; leaks the return address
			ret
	`
	img := assemble(t, src)
	native := runNative(t, img)
	honest := runSDT(t, img, "ibtc:4096", nil)
	fast := runSDT(t, img, "fastret+ibtc:4096", nil)

	if honest.Result().Checksum != native.Result().Checksum {
		t.Error("IBTC must be fully transparent")
	}
	if fast.Result().Checksum == native.Result().Checksum {
		t.Error("fast returns should (by design) leak host addresses to the guest")
	}
	if got := fast.State.Out.Values[0]; got < core.FragBase {
		t.Errorf("leaked ra = %#x, expected a fragment-cache address", got)
	}
}

func TestFastReturnToComputedGuestAddress(t *testing.T) {
	// A guest that manufactures a return target (longjmp-style) must
	// still work under fast returns via the fallback path.
	src := `
		main:
			la ra, landing
			ret              ; "return" to a guest address never hostized
		landing:
			li r1, 77
			out r1
			halt
	`
	img := assemble(t, src)
	native := runNative(t, img)
	vm := runSDT(t, img, "fastret+ibtc:4096", nil)
	if vm.Result().Checksum != native.Result().Checksum {
		t.Error("computed guest return address broke under fast returns")
	}
}

func TestNaiveOverheadDwarfsIBTC(t *testing.T) {
	img := assemble(t, testPrograms["interp"])
	naive := runSDT(t, img, "translator", nil)
	ibtc := runSDT(t, img, "ibtc:4096", nil)
	if naive.Env.Cycles < ibtc.Env.Cycles*2 {
		t.Errorf("naive (%d) should be far slower than IBTC (%d) on dispatch-heavy code",
			naive.Env.Cycles, ibtc.Env.Cycles)
	}
}

func TestProfileBreakdownSane(t *testing.T) {
	img := assemble(t, testPrograms["funcptr"])
	vm := runSDT(t, img, "ibtc:4096", nil)
	b := vm.Prof.Overhead(vm.Env.Cycles)
	if b.Body+b.IB+b.Ctx+b.Trans != b.Total {
		t.Errorf("breakdown does not sum: body=%d ib=%d ctx=%d trans=%d total=%d",
			b.Body, b.IB, b.Ctx, b.Trans, b.Total)
	}
	if b.Body == 0 || b.IB == 0 || b.Trans == 0 {
		t.Errorf("expected nonzero body/ib/trans, got %+v", b)
	}
}

func TestOptionsValidation(t *testing.T) {
	img := assemble(t, "main: halt\n")
	if _, err := core.New(img, core.Options{}); err == nil {
		t.Error("New accepted empty options")
	}
	if _, err := core.New(img, core.Options{Model: hostarch.X86()}); err == nil {
		t.Error("New accepted options without handler")
	}
	if _, err := core.New(img, core.Options{Model: hostarch.X86(), Handler: ib.NewTranslator(), MaxBlockInsts: -1}); err == nil {
		t.Error("New accepted negative MaxBlockInsts")
	}
}

func TestRunLimit(t *testing.T) {
	img := assemble(t, "main: jmp main\n")
	cfg, _ := ib.Parse("ibtc:64")
	vm, err := core.New(img, core.Options{Model: hostarch.X86(), Handler: cfg.Handler})
	if err != nil {
		t.Fatal(err)
	}
	err = vm.Run(1000)
	if err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Errorf("err = %v, want instruction limit", err)
	}
}

func TestWildIndirectTargetFaults(t *testing.T) {
	src := `
		main:
			li r1, 0x2000   ; data address, not code
			jr r1
	`
	img := assemble(t, src)
	vm, err := core.New(img, core.Options{Model: hostarch.X86(), Handler: ib.NewIBTC(ib.IBTCConfig{Entries: 64})})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(1000); err == nil {
		t.Error("jump to data should fault under the SDT")
	}
}
