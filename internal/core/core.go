// Package core implements the software dynamic translator itself — the
// Strata-shaped virtual machine the paper's experiments run on.
//
// The SDT executes a guest program out of a fragment cache. A fragment is
// one translated guest basic block living at a simulated host address.
// Direct control transfers are linked fragment-to-fragment after their
// first execution and cost what the equivalent host branch costs. Indirect
// control transfers cannot be linked: their guest target is a run-time
// value, and mapping it to a fragment-cache address is the job of the
// pluggable IBHandler — the subject of the paper.
//
// Cost accounting: the VM executes guest instructions for their
// architectural effect (via machine.Exec, the same semantic core the native
// baseline uses) and charges a machine.CostEnv for the host-level work the
// emitted code would perform: instruction fetches at fragment-cache
// addresses, data references, branch-predictor and cache behaviour, context
// switches into the translator and translation work itself.
package core

import (
	"errors"
	"fmt"

	"sdt/internal/hostarch"
	"sdt/internal/isa"
)

// Simulated host address-space layout. Guest addresses stay below
// program.MaxGuestAddr; the fragment cache and the SDT's data tables live
// above it, sharing the I- and D-cache simulators with the guest exactly
// the way a real SDT shares the host caches with its guest.
const (
	// FragBase is the base address of the fragment cache (code side).
	FragBase = 0x4000_0000
	// TableBase is the base address of SDT-owned data (IBTC tables, the
	// translator's lookup structures).
	TableBase = 0x8000_0000
	// translatorMapAddr stands in for the translator's internal hash map
	// storage; probe addresses are derived from it.
	translatorMapAddr = 0xC000_0000
)

// ErrLimit is returned by Run when the instruction budget is exhausted.
var ErrLimit = errors.New("core: instruction limit exceeded")

// Options configure a VM.
type Options struct {
	// Model prices host operations. Required.
	Model *hostarch.Model
	// Handler resolves indirect branches. Required.
	Handler IBHandler
	// DisableLinking makes every direct fragment exit re-enter the
	// translator instead of being patched to its successor (ablation).
	DisableLinking bool
	// FastReturns rewrites calls so the guest's return-address register
	// holds the fragment-cache address of the return point; returns then
	// execute as host returns. Sacrifices transparency (the guest can
	// observe host addresses in ra).
	FastReturns bool
	// Superblocks lets translation continue through forward direct jumps,
	// eliding the jump from the emitted code and building longer
	// fragments (Strata-style partial superblock formation). Purely a
	// code-layout optimization; indirect branches still end fragments.
	Superblocks bool
	// Traces enables NET-style trace formation: fragments that execute
	// TraceThreshold times seed a recording of the next executed path,
	// which is materialized as a contiguous trace. Indirect branches
	// inside a trace are guarded by an inline compare against the
	// recorded continuation — a speculative inline cache that skips the
	// full lookup while the IB stays monomorphic along the trace.
	Traces bool
	// NoSuperOps disables super-op fusion during superblock compilation
	// while keeping trace formation itself on: trace bodies are priced
	// instruction-by-instruction instead of through the model's SuperOps
	// table (ablation; see hostarch.SuperOp and machine.PlanFusedBody).
	NoSuperOps bool
	// TraceThreshold is the fragment hotness bar for seeding a trace.
	// 0 means 64.
	TraceThreshold int
	// MaxTraceFrags bounds trace length in fragments. 0 means 8.
	MaxTraceFrags int
	// MaxBlockInsts bounds fragment length. 0 means 128.
	MaxBlockInsts int
	// CacheBytes is the fragment cache capacity before a full flush.
	// 0 means 8 MiB.
	CacheBytes uint32
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Model == nil {
		return opts, errors.New("core: Options.Model is required")
	}
	if opts.Handler == nil {
		return opts, errors.New("core: Options.Handler is required")
	}
	if opts.MaxBlockInsts == 0 {
		opts.MaxBlockInsts = 128
	}
	if opts.TraceThreshold == 0 {
		opts.TraceThreshold = 64
	}
	if opts.TraceThreshold < 0 {
		return opts, fmt.Errorf("core: TraceThreshold = %d out of range", opts.TraceThreshold)
	}
	if opts.MaxTraceFrags == 0 {
		opts.MaxTraceFrags = 8
	}
	if opts.MaxTraceFrags < 2 {
		return opts, fmt.Errorf("core: MaxTraceFrags = %d out of range (need >= 2)", opts.MaxTraceFrags)
	}
	if opts.MaxBlockInsts < 1 {
		return opts, fmt.Errorf("core: MaxBlockInsts = %d out of range", opts.MaxBlockInsts)
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 8 << 20
	}
	return opts, nil
}

// Fragment is one translated guest basic block in the fragment cache.
// Fragments are allocated from per-VM arenas (see alloc.go); a fragment is
// live while its epoch matches the VM's, and its storage may be reused after
// the next flush, so handlers must not retain a *Fragment across more than
// one Flush callback.
type Fragment struct {
	GuestPC  uint32     // guest address of the first instruction
	Insts    []isa.Inst // body; the last instruction is the terminator
	HostAddr uint32     // fragment cache address
	Bytes    uint32     // emitted code size

	// Direct-exit links, patched on first use. TakenLink serves branch
	// taken targets and direct jump/call targets; FallLink serves branch
	// fall-through and block-split fall-through.
	TakenLink fragLink
	FallLink  fragLink

	// Site is the indirect-branch site state when the terminator is an
	// indirect transfer, else nil.
	Site *IBSite

	// RetFrag caches the return-point fragment for call terminators under
	// fast returns.
	RetFrag fragLink

	// Synth is true when the terminator is a synthesized fall-through
	// (the block hit MaxBlockInsts without a control instruction).
	Synth bool

	// Hits counts executions (trace-formation hotness); Trace points to
	// the trace seeded at this fragment once one is materialized.
	Hits  uint64
	Trace *Trace

	// epoch is the flush generation the fragment was translated in; the
	// fragment is live while it equals the VM's current epoch.
	epoch uint64

	// staticCycles is the data-independent body cost (see
	// machine.StaticBodyCost), precomputed at translation time and charged
	// in one batch per execution.
	staticCycles uint64
}

// fragLink is a patchable direct-exit slot: the target fragment plus the
// epoch the patch was made in. A link is only followed when its patch epoch
// matches the VM's current epoch; anything older refers to a flushed target
// whose storage may since have been reused.
type fragLink struct {
	f     *Fragment
	epoch uint64
}

// Terminator returns the fragment's final (control) instruction.
func (f *Fragment) Terminator() isa.Inst { return f.Insts[len(f.Insts)-1] }

// IBSite is the per-site state of one indirect branch in translated code.
// Handlers hang mechanism-specific state off Data at Attach time.
type IBSite struct {
	GuestPC  uint32     // guest address of the indirect branch
	Kind     isa.IBKind // return / indirect jump / indirect call
	HostAddr uint32     // address of the emitted handling code for this site
	Data     any        // mechanism-specific per-site state

	// frag is the fragment whose terminator this site belongs to; set by
	// the translator for real sites, nil for handler-built shadow sites.
	frag *Fragment
}

// Owner returns the fragment whose terminator this site handles, or nil
// for shadow sites a handler constructed itself (inline-cache fallbacks).
// Handlers use it to target a single-fragment invalidation (VM.Invalidate)
// at the code that emitted their lookup sequence.
func (s *IBSite) Owner() *Fragment { return s.frag }

// IBHandler is an indirect-branch handling mechanism. Implementations
// charge the VM's cost environment for every host-level operation their
// emitted lookup code performs and return the fragment to execute next,
// entering the translator (vm.EnterTranslator) on their miss path.
type IBHandler interface {
	// Name identifies the mechanism and its configuration, e.g.
	// "ibtc(shared,4096)".
	Name() string
	// Init is called once before execution begins, after the VM is fully
	// constructed; handlers allocate shared tables and stubs here.
	Init(vm *VM)
	// Attach is called when a fragment ending in an indirect branch is
	// translated; handlers allocate per-site state here.
	Attach(vm *VM, site *IBSite)
	// Resolve maps the guest target of the indirect branch at site to its
	// fragment, charging all costs of the emitted lookup sequence and of
	// the final dispatch transfer.
	Resolve(vm *VM, site *IBSite, target uint32) (*Fragment, error)
	// Flush is called when the fragment cache is flushed; handlers must
	// drop every Fragment pointer and every code-cache stub they hold.
	Flush(vm *VM)
}

// CallObserver is implemented by handlers that want to see direct and
// indirect calls as they execute (the return cache pre-fills its table at
// call time). guestRet is the guest return address the call produced.
type CallObserver interface {
	OnCall(vm *VM, guestRet uint32)
}
