package core_test

import (
	"testing"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/program"
)

// Dispatch-heavy benchmark programs. Each spends nearly all of its time in
// the steady-state dispatch loop (translation is a negligible prefix), so
// ns/op and allocs/op here measure the simulator's hot path, not setup.
// These are the benchmarks the perf-regression gate (scripts/bench.sh,
// BENCH_*.json) tracks; see docs/PERF.md.
const benchDispatchSrc = `
	; indirect-jump dispatch loop: a bytecode-interpreter shape where
	; every iteration executes an indirect jump through a table.
	main:
		li r10, 0
		li r11, 60000
	loop:
		andi r2, r10, 3
		la r1, table
		slli r2, r2, 2
		add r1, r1, r2
		lw r3, (r1)
		jr r3
	c0:	addi r12, r12, 1
		jmp next
	c1:	addi r12, r12, 10
		jmp next
	c2:	addi r12, r12, 100
		jmp next
	c3:	addi r12, r12, 1000
	next:
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	.data
	table: .word c0, c1, c2, c3
`

const benchCallRetSrc = `
	; call/return-heavy loop: the regime fast returns and return caches
	; target. Two call sites, shallow nesting, repeated many times.
	main:
		li r10, 0
		li r11, 40000
	loop:
		mov a0, r10
		call f1
		add r12, r12, rv
		call f2
		add r12, r12, rv
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	f1:
		addi rv, a0, 1
		ret
	f2:
		push ra
		call f1
		pop ra
		add rv, rv, rv
		ret
`

const benchLinkedSrc = `
	; direct-branch-only loop: no indirect branches at all, so every
	; fragment exit resolves through the direct-link fast path.
	main:
		li r10, 0
		li r11, 120000
	loop:
		andi r2, r10, 1
		beqz r2, even
		addi r12, r12, 3
		jmp next
	even:
		addi r12, r12, 5
	next:
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
`

const benchGuardThrashSrc = `
	; megamorphic dispatch loop: a pseudo-random walk over eight targets,
	; so any trace formed through the indirect jump sees a polymorphic
	; continuation. Trace guards must prove unprofitable, patch out, and
	; leave only the side-exit cost behind.
	main:
		li r10, 0
		li r11, 50000
		li r25, 1
	loop:
		li r1, 1103515245
		mul r25, r25, r1
		addi r25, r25, 12345
		srli r2, r25, 9
		andi r2, r2, 7
		la r1, table
		slli r2, r2, 2
		add r1, r1, r2
		lw r3, (r1)
		jr r3
	c0:	addi r12, r12, 1
		jmp next
	c1:	addi r12, r12, 2
		jmp next
	c2:	addi r12, r12, 3
		jmp next
	c3:	addi r12, r12, 4
		jmp next
	c4:	addi r12, r12, 5
		jmp next
	c5:	addi r12, r12, 6
		jmp next
	c6:	addi r12, r12, 7
		jmp next
	c7:	addi r12, r12, 8
	next:
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	.data
	table: .word c0, c1, c2, c3, c4, c5, c6, c7
`

func benchImage(b *testing.B, src string) *program.Image {
	b.Helper()
	img, err := asm.Assemble("bench.s", src)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// runDispatchBench measures end-to-end VM construction plus execution of a
// dispatch-heavy guest under one mechanism spec, reporting retired guest
// instructions per second.
func runDispatchBench(b *testing.B, src, spec string) {
	b.Helper()
	img := benchImage(b, src)
	cfg, err := ib.Parse(spec)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm, err := core.New(img, cfg.Options(hostarch.X86()))
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Run(0); err != nil {
			b.Fatal(err)
		}
		insts += vm.State.Instret
		vm.Recycle()
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}

// The BenchmarkRun family is the dispatch-heavy benchmark set the
// regression gate tracks (scripts/bench.sh compares them against the
// committed BENCH_*.json baseline).

func BenchmarkRunDispatchIBTC(b *testing.B) {
	runDispatchBench(b, benchDispatchSrc, "ibtc:4096")
}

func BenchmarkRunDispatchSieve(b *testing.B) {
	runDispatchBench(b, benchDispatchSrc, "sieve:1024")
}

func BenchmarkRunDispatchTranslator(b *testing.B) {
	runDispatchBench(b, benchDispatchSrc, "translator")
}

func BenchmarkRunCallRetFastret(b *testing.B) {
	runDispatchBench(b, benchCallRetSrc, "fastret+ibtc:4096")
}

func BenchmarkRunCallRetInline(b *testing.B) {
	runDispatchBench(b, benchCallRetSrc, "inline:2+ibtc:4096")
}

func BenchmarkRunLinkedLoop(b *testing.B) {
	runDispatchBench(b, benchLinkedSrc, "ibtc:4096")
}

// The BenchmarkRunSuperblock family runs the same guests with trace
// formation on: steady state executes a fused superblock body instead of
// chaining fragments. Linked-loop is the pure win case (no indirect
// branches, every exit elided), call-ret exercises fast calls and return
// guards inside a trace, and guard-thrash is the adversarial case — a
// megamorphic dispatch whose guards must patch out, leaving side exits as
// the dominant path.

func BenchmarkRunSuperblockLinkedLoop(b *testing.B) {
	runDispatchBench(b, benchLinkedSrc, "trace+ibtc:4096")
}

func BenchmarkRunSuperblockCallRet(b *testing.B) {
	runDispatchBench(b, benchCallRetSrc, "trace+fastret+ibtc:4096")
}

func BenchmarkRunSuperblockGuardThrash(b *testing.B) {
	runDispatchBench(b, benchGuardThrashSrc, "trace+ibtc:4096")
}

// The BenchmarkRunAdaptive family runs the same guests under per-site
// adaptive selection: dispatch is the polymorphic case (the 4-target site
// promotes to the IBTC tier and re-translates once), call-ret is the
// monomorphic case (every site stays on the one-compare inline tier), and
// guard-thrash is the megamorphic adversary. These track both the
// steady-state cost of the per-resolve policy evaluation and the one-time
// promotion machinery.

func BenchmarkRunAdaptiveDispatch(b *testing.B) {
	runDispatchBench(b, benchDispatchSrc, "adaptive:4096")
}

func BenchmarkRunAdaptiveCallRet(b *testing.B) {
	runDispatchBench(b, benchCallRetSrc, "adaptive:4096")
}

func BenchmarkRunAdaptiveGuardThrash(b *testing.B) {
	runDispatchBench(b, benchGuardThrashSrc, "adaptive:4096")
}

// BenchmarkFlushStorm squeezes the fragment cache far below the working
// set, so the VM flushes continuously: it measures the cost of flush +
// retranslation churn. Flush must be O(live fragments) with no wholesale
// table reallocation — this benchmark regressing means flush pressure got
// expensive again.
func BenchmarkFlushStorm(b *testing.B) {
	img := benchImage(b, benchDispatchSrc)
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := ib.Parse("ibtc:64")
		if err != nil {
			b.Fatal(err)
		}
		vm, err := core.New(img, core.Options{
			Model:      hostarch.X86(),
			Handler:    cfg.Handler,
			CacheBytes: 192,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Run(0); err != nil {
			b.Fatal(err)
		}
		if vm.Prof.Flushes == 0 {
			b.Fatal("flush storm never flushed")
		}
		insts += vm.State.Instret
		vm.Recycle()
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}
