package core_test

import (
	"fmt"
	"runtime/debug"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/program"
)

// Steady-state allocation budget: once a run's working set is translated,
// executing more guest instructions must allocate nothing. The test measures
// this by differencing: a run of N loop iterations and a run of 4N loop
// iterations perform identical setup (VM construction, handler tables,
// translation of the same fragments), so any allocation difference is
// attributable purely to steady-state dispatch — and must be zero.
//
// docs/PERF.md documents this budget; the dispatch benchmarks in
// dispatch_bench_test.go track the same property as allocs/op.

// allocLoopSrc is benchDispatchSrc with a parameterized iteration count:
// an indirect-jump dispatch loop plus a pair of calls, touching the IB
// lookup path, the fast-return path and the direct-link path every
// iteration.
const allocLoopSrc = `
	main:
		li r10, 0
		li r11, %d
	loop:
		andi r2, r10, 3
		la r1, table
		slli r2, r2, 2
		add r1, r1, r2
		lw r3, (r1)
		jr r3
	c0:	addi r12, r12, 1
		jmp calls
	c1:	addi r12, r12, 10
		jmp calls
	c2:	addi r12, r12, 100
		jmp calls
	c3:	addi r12, r12, 1000
	calls:
		mov a0, r10
		call f1
		add r12, r12, rv
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	f1:
		addi rv, a0, 1
		ret
	.data
	table: .word c0, c1, c2, c3
`

func allocImage(t *testing.T, iters int) *program.Image {
	t.Helper()
	img, err := asm.Assemble("alloc.s", fmt.Sprintf(allocLoopSrc, iters))
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// runAllocs returns the average allocations of one full construct+run+recycle
// cycle over the given image under spec. When check is non-nil it receives
// each finished VM before recycling, so callers can assert the measured runs
// actually exercised the paths they meant to measure.
func runAllocs(t *testing.T, img *program.Image, spec string, check func(*core.VM)) float64 {
	t.Helper()
	cfg, err := ib.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		vm, err := core.New(img, cfg.Options(hostarch.X86()))
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(0); err != nil {
			t.Fatal(err)
		}
		if check != nil {
			check(vm)
		}
		vm.Recycle()
	}
	run() // warm the arena, table and guest-memory pools
	return testing.AllocsPerRun(5, run)
}

func TestDispatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are not meaningful")
	}
	// sync.Pool empties on GC, which would charge a pool refill to whichever
	// run the collector happened to interrupt; disable GC so the measurement
	// is deterministic.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	short := allocImage(t, 2_000)
	long := allocImage(t, 8_000)
	for _, spec := range []string{
		"translator",
		"ibtc:4096",
		"sieve:1024",
		"retcache+ibtc:4096",
		"fastret+ibtc:4096",
		"inline:2+ibtc:4096",
		"adaptive:4096",
		"trace+ibtc:4096",
		"trace:3+ibtc:4096",
		"trace:3:nosuper+ibtc:4096",
		"trace:3+fastret+ibtc:4096",
	} {
		t.Run(spec, func(t *testing.T) {
			base := runAllocs(t, short, spec, nil)
			scaled := runAllocs(t, long, spec, nil)
			if scaled > base {
				t.Errorf("steady-state dispatch allocates: %.1f allocs/run at 2k iterations, %.1f at 8k (want no growth)", base, scaled)
			}
		})
	}
}

// TestSuperblockSteadyStateZeroAlloc pins down what the trace rows of the
// scale-differencing test above actually measured: the runs form
// superblocks, take guard hits AND side exits — the full superblock dispatch
// surface — and still allocate nothing per added iteration. Trace
// materialization itself may allocate (it happens once, in the "setup" both
// run lengths share); only the steady state must be free.
func TestSuperblockSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are not meaningful")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	short := allocImage(t, 2_000)
	long := allocImage(t, 8_000)
	exercised := func(vm *core.VM) {
		p := &vm.Prof
		if p.TracesFormed == 0 || p.SuperblockExecs == 0 {
			t.Fatalf("run formed %d traces, executed %d superblocks; the measurement is vacuous",
				p.TracesFormed, p.SuperblockExecs)
		}
		if p.TraceGuardHits == 0 {
			t.Fatal("no guard hits: the in-trace IB guard path went unmeasured")
		}
		if p.TraceExits == 0 {
			t.Fatal("no side exits: the trace-exit path went unmeasured")
		}
	}
	base := runAllocs(t, short, "trace:3+ibtc:4096", exercised)
	scaled := runAllocs(t, long, "trace:3+ibtc:4096", exercised)
	if scaled > base {
		t.Errorf("superblock steady state allocates: %.1f allocs/run at 2k iterations, %.1f at 8k (want no growth)", base, scaled)
	}
}

// TestAdaptiveSteadyStateZeroAlloc pins down the adaptive row of the
// scale-differencing test: the runs actually promote (the 4-target
// dispatch site crosses the x86 polymorphism bar) and re-translate the
// owning fragment, and the post-stabilization steady state still
// allocates nothing per added iteration. The promotions themselves happen
// in the prefix both run lengths share.
func TestAdaptiveSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are not meaningful")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	short := allocImage(t, 2_000)
	long := allocImage(t, 8_000)
	exercised := func(vm *core.VM) {
		p := &vm.Prof
		if p.AdaptPromotions == 0 || p.AdaptRetrans == 0 {
			t.Fatalf("run promoted %d times with %d re-translations; the measurement is vacuous",
				p.AdaptPromotions, p.AdaptRetrans)
		}
	}
	base := runAllocs(t, short, "adaptive:4096", exercised)
	scaled := runAllocs(t, long, "adaptive:4096", exercised)
	if scaled > base {
		t.Errorf("adaptive steady state allocates: %.1f allocs/run at 2k iterations, %.1f at 8k (want no growth)", base, scaled)
	}
}
