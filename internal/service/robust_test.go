package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sdt/internal/faultinject"
	"sdt/internal/store"
)

func getHealth(t *testing.T, ts *httptest.Server) (int, Health) {
	t.Helper()
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var h Health
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatalf("healthz body is not JSON: %v", err)
	}
	return res.StatusCode, h
}

func TestHealthzBodyShape(t *testing.T) {
	s, ts := newTestServer(t, Config{StoreDir: t.TempDir()})

	code, h := getHealth(t, ts)
	if code != http.StatusOK || h.Status != HealthOK {
		t.Fatalf("healthz = %d %q, want 200 %q", code, h.Status, HealthOK)
	}
	if !h.Store.Persistent || h.Store.Degraded {
		t.Fatalf("store health = %+v, want persistent and not degraded", h.Store)
	}

	s.StartDrain()
	code, h = getHealth(t, ts)
	if code != http.StatusServiceUnavailable || h.Status != HealthDraining {
		t.Fatalf("draining healthz = %d %q, want 503 %q", code, h.Status, HealthDraining)
	}
}

// A tripped store breaker must surface as status "degraded" on a 200 —
// the daemon still serves correct results from memory — and the body
// must carry the disk-error detail.
func TestHealthzDegradedUnderDiskFaults(t *testing.T) {
	inj := faultinject.New(&faultinject.Plan{Seed: 7, Points: []faultinject.Point{
		{Site: store.SiteDiskRead, Class: faultinject.ClassIO, Every: 1},
		{Site: store.SiteDiskWrite, Class: faultinject.ClassIO, Every: 1},
	}})
	_, ts := newTestServer(t, Config{
		StoreDir:              t.TempDir(),
		Faults:                inj,
		StoreBreakerThreshold: 2,
		StoreBreakerCooldown:  time.Hour, // stay open for the whole test
	})
	req := RunRequest{Name: "quick.s", Source: quickSrc, Arch: "x86", Mech: "ibtc:4096"}

	for seed := uint64(0); seed < 3; seed++ {
		req.Seed = seed
		status, data := submit(t, ts, req)
		if status != http.StatusOK {
			t.Fatalf("run under disk faults = %d: %s", status, data)
		}
	}
	code, h := getHealth(t, ts)
	if code != http.StatusOK || h.Status != HealthDegraded {
		t.Fatalf("healthz = %d %q, want 200 %q", code, h.Status, HealthDegraded)
	}
	if !h.Store.Degraded || h.Store.DiskErrors < 2 {
		t.Fatalf("store health = %+v, want degraded with >= 2 disk errors", h.Store)
	}
}

// An injected panic at the job boundary must be recovered by the worker
// (500 internal, panic counted) and must not poison a retry of the same
// request.
func TestRunInjectedPanicRecovered(t *testing.T) {
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		{Site: siteJob, Class: faultinject.ClassPanic, Every: 1, Limit: 1},
	}})
	s, ts := newTestServer(t, Config{Faults: inj})
	req := RunRequest{Name: "quick.s", Source: quickSrc, Arch: "x86", Mech: "ibtc:4096"}

	status, data := submit(t, ts, req)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked run = %d: %s", status, data)
	}
	if e := decodeError(t, data); e.Code != CodeInternal {
		t.Fatalf("error code = %q, want %q", e.Code, CodeInternal)
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// The plan is exhausted (Limit 1): the retry must compute cleanly.
	status, data = submit(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("retry after panic = %d: %s", status, data)
	}
	if code, h := getHealth(t, ts); code != http.StatusOK || h.Status != HealthOK {
		t.Fatalf("healthz after recovered panic = %d %q", code, h.Status)
	}
}

// Read-repair end to end: flip one bit in a stored entry, restart the
// service over the same directory, and re-submit. The corrupt entry must
// be quarantined, the result recomputed byte-identically, and the repair
// visible in the store counters.
func TestServiceReadRepair(t *testing.T) {
	dir := t.TempDir()
	req := RunRequest{Name: "quick.s", Source: quickSrc, Arch: "x86", Mech: "ibtc:4096"}

	_, ts1 := newTestServer(t, Config{StoreDir: dir})
	status, data := submit(t, ts1, req)
	if status != http.StatusOK {
		t.Fatalf("seeding run = %d: %s", status, data)
	}
	resp1, res1 := decodeRun(t, data)
	ts1.Close()

	path := filepath.Join(dir, res1.Key[:2], res1.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	status, data = submit(t, ts2, req)
	if status != http.StatusOK {
		t.Fatalf("run over corrupt entry = %d: %s", status, data)
	}
	resp2, _ := decodeRun(t, data)
	if resp2.Cached {
		t.Fatal("corrupt entry was served as a cache hit")
	}
	if !bytes.Equal(resp1.Result, resp2.Result) {
		t.Fatalf("recomputed result differs from original:\n%s\nvs\n%s", resp1.Result, resp2.Result)
	}
	st := s2.Store().Stats()
	if st.Corruptions != 1 || st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want exactly one corruption and one quarantine", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", res1.Key)); err != nil {
		t.Fatalf("quarantined entry missing: %v", err)
	}
	// The repaired entry must verify again on a fresh read.
	status, data = submit(t, ts2, req)
	if status != http.StatusOK {
		t.Fatalf("post-repair run = %d: %s", status, data)
	}
}

// Checkpointed sweep end to end: a sweep under a hostile plan completes
// some cells and fails the rest; a resume on a clean daemon over the same
// store replays exactly the journaled cells and executes only the
// remainder, then retires the journal.
func TestSweepCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	req := SweepRequest{
		ID:        "resume-e2e",
		Workloads: []string{"gzip"},
		Mechs:     []string{"ibtc:256", "sieve:64", "retcache+ibtc:128", "fastret+sieve:32"},
		Limit:     5_000_000,
	}

	// Phase 1: the first two cell attempts pass, every later one fails
	// with a permanent (non-retried) fault.
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		{Site: "sweep.cell", Class: faultinject.ClassPermanent, Every: 1, After: 2},
	}})
	cfg := Config{StoreDir: dir, Workers: 1, Faults: inj}
	_, ts1 := newTestServer(t, cfg)
	status, recs := submitSweep(t, ts1, req)
	if status != http.StatusOK {
		t.Fatalf("phase-1 sweep status = %d", status)
	}
	_, cells1, done1 := splitSweep(t, recs)
	if done1.Done != 2 || done1.Errors != 2 {
		t.Fatalf("phase-1 done = %+v, want 2 successes and 2 errors", done1)
	}
	ts1.Close()
	if _, err := os.Stat(filepath.Join(dir, "sweeps", req.ID+".json")); err != nil {
		t.Fatalf("journal missing after partial sweep: %v", err)
	}

	// Phase 2: clean daemon, same store, same ID.
	s2, ts2 := newTestServer(t, Config{StoreDir: dir, Workers: 1})
	status, recs = submitSweep(t, ts2, req)
	if status != http.StatusOK {
		t.Fatalf("resume status = %d", status)
	}
	start2, cells2, done2 := splitSweep(t, recs)
	if start2.Resumed != 2 {
		t.Fatalf("start.resumed = %d, want 2", start2.Resumed)
	}
	if done2.Done != 4 || done2.Errors != 0 {
		t.Fatalf("resume done = %+v, want all 4 cells successful", done2)
	}
	replayed := 0
	for idx, rec := range cells2 {
		if rec.Error != nil {
			t.Fatalf("resumed cell %d errored: %v", idx, rec.Error)
		}
		if rec.Replayed == true {
			replayed++
			if !rec.Cached {
				t.Fatalf("replayed cell %d not marked cached", idx)
			}
			// A replayed cell must carry the bytes the original sweep
			// produced.
			orig, ok := cells1[idx]
			if !ok || orig.Error != nil {
				t.Fatalf("cell %d replayed but was not a phase-1 success", idx)
			}
			if !bytes.Equal(rec.Result, orig.Result) {
				t.Fatalf("replayed cell %d bytes differ from original", idx)
			}
		}
	}
	if replayed != 2 {
		t.Fatalf("replayed %d cells, want 2", replayed)
	}
	// Only the two unjournaled cells may have executed.
	if got := s2.met.runsTotal.total(); got != 2 {
		t.Fatalf("resume executed %d runs, want 2", got)
	}
	if got := s2.met.sweepReplayed.Value(); got != 2 {
		t.Fatalf("sweepReplayed = %d, want 2", got)
	}
	// Fully successful: the journal must be gone.
	if _, err := os.Stat(filepath.Join(dir, "sweeps", req.ID+".json")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("journal still present after full completion (err=%v)", err)
	}
}

// A resume whose matrix does not match the journal must be refused
// before any streaming starts.
func TestSweepResumeMatrixMismatch(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{StoreDir: dir, Workers: 1})

	// Seed a journal that survives: one valid cell, one invalid mech.
	req := SweepRequest{
		ID:        "mismatch",
		Workloads: []string{"gzip"},
		Mechs:     []string{"ibtc:256", "bogus:1"},
		Limit:     5_000_000,
	}
	status, recs := submitSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("seed sweep status = %d", status)
	}
	if _, _, done := splitSweep(t, recs); done.Done != 1 || done.Errors != 1 {
		t.Fatalf("seed sweep done = %+v, want one success, one error", done)
	}
	if _, err := os.Stat(filepath.Join(dir, "sweeps", "mismatch.json")); err != nil {
		t.Fatalf("journal missing after erroring sweep: %v", err)
	}

	// Same ID, different matrix: must 400.
	req.Mechs = []string{"ibtc:256"}
	body, _ := json.Marshal(req)
	res, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched resume status = %d, want 400", res.StatusCode)
	}
}

func TestSweepIDValidation(t *testing.T) {
	_, tsMem := newTestServer(t, Config{}) // memory-only
	_, tsDisk := newTestServer(t, Config{StoreDir: t.TempDir()})
	base := SweepRequest{Workloads: []string{"gzip"}, Mechs: []string{"ibtc:256"}, Limit: 1_000_000}

	post := func(ts *httptest.Server, req SweepRequest, query string) int {
		body, _ := json.Marshal(req)
		res, err := http.Post(ts.URL+"/v1/sweep"+query, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}

	bad := base
	bad.ID = "../escape"
	if code := post(tsDisk, bad, ""); code != http.StatusBadRequest {
		t.Fatalf("path-escaping id accepted: %d", code)
	}
	if code := post(tsDisk, base, "?resume=.hidden"); code != http.StatusBadRequest {
		t.Fatalf("dot-leading resume id accepted: %d", code)
	}
	ok := base
	ok.ID = "fine-id.v1"
	if code := post(tsMem, ok, ""); code != http.StatusBadRequest {
		t.Fatalf("checkpointing without a disk store accepted: %d", code)
	}
	if code := post(tsDisk, ok, ""); code != http.StatusOK {
		t.Fatalf("valid checkpointed sweep refused: %d", code)
	}
}

// Injected journal-write faults must not fail the sweep — persistence is
// best-effort — but must be counted.
func TestSweepJournalFaultsBestEffort(t *testing.T) {
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		{Site: siteJournal, Class: faultinject.ClassIO, Every: 1},
	}})
	s, ts := newTestServer(t, Config{StoreDir: t.TempDir(), Workers: 1, Faults: inj})
	req := SweepRequest{
		ID:        "journal-faults",
		Workloads: []string{"gzip"},
		Mechs:     []string{"ibtc:256", "sieve:64"},
		Limit:     5_000_000,
	}
	status, recs := submitSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("sweep status = %d", status)
	}
	if _, _, done := splitSweep(t, recs); done.Done != 2 {
		t.Fatalf("done = %+v, want both cells successful", done)
	}
	if got := s.met.journalErrs.Value(); got == 0 {
		t.Fatal("journal faults fired but journalErrs stayed 0")
	}
}
