package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// The observability surface is a hand-rolled Prometheus-text-format
// registry (the repo is stdlib-only by charter). Three primitives cover
// what /metrics needs: counters, labelled counter families, and
// fixed-bucket histograms.

// counter is a monotonically increasing uint64.
type counter struct{ n atomic.Uint64 }

func (c *counter) Inc()          { c.n.Add(1) }
func (c *counter) Add(d uint64)  { c.n.Add(d) }
func (c *counter) Value() uint64 { return c.n.Load() }

// counterVec is a family of counters keyed by a pre-rendered label string
// (e.g. `path="/v1/run",code="200"`). Label strings come from a small
// closed set built by the server, never from raw client input.
type counterVec struct {
	mu   sync.Mutex
	vals map[string]*counter
}

func newCounterVec() *counterVec { return &counterVec{vals: make(map[string]*counter)} }

func (v *counterVec) get(labels string) *counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.vals[labels]
	if !ok {
		c = &counter{}
		v.vals[labels] = c
	}
	return c
}

// total sums the family.
func (v *counterVec) total() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var t uint64
	for _, c := range v.vals {
		t += c.Value()
	}
	return t
}

func (v *counterVec) render(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		val    uint64
	}
	rows := make([]row, len(keys))
	for i, k := range keys {
		rows[i] = row{k, v.vals[k].Value()}
	}
	v.mu.Unlock()
	for _, r := range rows {
		fmt.Fprintf(w, "%s{%s} %d\n", name, r.labels, r.val)
	}
}

// histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each bucket counts observations <= its upper bound).
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// quantile estimates the q-quantile from the bucket counts: the upper
// bound of the first bucket whose cumulative count reaches rank q·count.
// Observations that overflowed into the +Inf bucket are estimated by the
// mean (floored at the last finite bound), the only summary available for
// them. Returns 0 when nothing has been observed.
func (h *histogram) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		if cum >= rank {
			return b
		}
	}
	mean := h.sum / float64(h.count)
	if n := len(h.bounds); n > 0 && mean < h.bounds[n-1] {
		return h.bounds[n-1]
	}
	return mean
}

func (h *histogram) render(w io.Writer, name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

// latencyBounds spans sub-millisecond cache hits to multi-second cold
// simulations.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Run outcome labels for runsTotal.
const (
	outcomeOK       = `outcome="ok"`
	outcomeError    = `outcome="error"`
	outcomeDeadline = `outcome="deadline"`
	outcomeCanceled = `outcome="canceled"`
	outcomePanic    = `outcome="panic"`
)

// metrics is the server's registry.
type metrics struct {
	requestsTotal *counterVec // path, code
	runsTotal     *counterVec // outcome — one increment per actual execution
	runLatency    *histogram  // seconds per executed (non-cached) run
	fragments     *counter    // translated fragments across all runs
	transInsts    *counter    // guest instructions translated
	ibLookups     *counterVec // mech, kind — executed indirect branches
	panics        *counter    // recovered job panics
	sweepsTotal   *counterVec // outcome — one increment per finished sweep stream
	sweepCells    *counterVec // outcome — one increment per emitted cell record
	sweepReplayed *counter    // cells served from a checkpoint journal on resume
	journalErrs   *counter    // sweep-journal persistence failures (best-effort)

	clusterSweeps     *counterVec // outcome — one increment per coordinated sweep
	clusterCells      *counterVec // outcome — one increment per merged cell record
	clusterReassigned *counter    // cells reassigned away from a failed shard
	sweepsAdopted     *counter    // orphaned cluster sweeps taken over via a replicated journal
	membershipChanges *counterVec // op = join / leave / apply — ring rebuilds on this node
	journalPushes     *counterVec // outcome — coordinator journal replications to successors
}

func newMetrics() *metrics {
	return &metrics{
		requestsTotal: newCounterVec(),
		runsTotal:     newCounterVec(),
		runLatency:    newHistogram(latencyBounds),
		fragments:     &counter{},
		transInsts:    &counter{},
		ibLookups:     newCounterVec(),
		panics:        &counter{},
		sweepsTotal:   newCounterVec(),
		sweepCells:    newCounterVec(),
		sweepReplayed: &counter{},
		journalErrs:   &counter{},

		clusterSweeps:     newCounterVec(),
		clusterCells:      newCounterVec(),
		clusterReassigned: &counter{},
		sweepsAdopted:     &counter{},
		membershipChanges: newCounterVec(),
		journalPushes:     newCounterVec(),
	}
}

// render writes the whole exposition; the server appends store/pool gauges
// via the callback so metrics stays decoupled from them.
func (m *metrics) render(w io.Writer, gauges func(w io.Writer)) {
	fmt.Fprint(w, "# TYPE sdtd_requests_total counter\n")
	m.requestsTotal.render(w, "sdtd_requests_total")
	fmt.Fprint(w, "# TYPE sdtd_runs_total counter\n")
	m.runsTotal.render(w, "sdtd_runs_total")
	fmt.Fprint(w, "# TYPE sdtd_run_latency_seconds histogram\n")
	m.runLatency.render(w, "sdtd_run_latency_seconds")
	fmt.Fprintf(w, "# TYPE sdtd_translated_fragments_total counter\nsdtd_translated_fragments_total %d\n", m.fragments.Value())
	fmt.Fprintf(w, "# TYPE sdtd_translated_insts_total counter\nsdtd_translated_insts_total %d\n", m.transInsts.Value())
	fmt.Fprint(w, "# TYPE sdtd_ib_lookups_total counter\n")
	m.ibLookups.render(w, "sdtd_ib_lookups_total")
	fmt.Fprintf(w, "# TYPE sdtd_job_panics_total counter\nsdtd_job_panics_total %d\n", m.panics.Value())
	fmt.Fprint(w, "# TYPE sdtd_sweeps_total counter\n")
	m.sweepsTotal.render(w, "sdtd_sweeps_total")
	fmt.Fprint(w, "# TYPE sdtd_sweep_cells_total counter\n")
	m.sweepCells.render(w, "sdtd_sweep_cells_total")
	fmt.Fprintf(w, "# TYPE sdtd_sweep_replayed_cells_total counter\nsdtd_sweep_replayed_cells_total %d\n", m.sweepReplayed.Value())
	fmt.Fprintf(w, "# TYPE sdtd_sweep_journal_errors_total counter\nsdtd_sweep_journal_errors_total %d\n", m.journalErrs.Value())
	fmt.Fprint(w, "# TYPE sdtd_cluster_sweeps_total counter\n")
	m.clusterSweeps.render(w, "sdtd_cluster_sweeps_total")
	fmt.Fprint(w, "# TYPE sdtd_cluster_sweep_cells_total counter\n")
	m.clusterCells.render(w, "sdtd_cluster_sweep_cells_total")
	fmt.Fprintf(w, "# TYPE sdtd_cluster_sweep_reassigned_cells_total counter\nsdtd_cluster_sweep_reassigned_cells_total %d\n", m.clusterReassigned.Value())
	fmt.Fprintf(w, "# TYPE sdtd_cluster_sweeps_adopted_total counter\nsdtd_cluster_sweeps_adopted_total %d\n", m.sweepsAdopted.Value())
	fmt.Fprint(w, "# TYPE sdtd_cluster_membership_changes_total counter\n")
	m.membershipChanges.render(w, "sdtd_cluster_membership_changes_total")
	fmt.Fprint(w, "# TYPE sdtd_replication_journal_pushes_total counter\n")
	m.journalPushes.render(w, "sdtd_replication_journal_pushes_total")
	if gauges != nil {
		gauges(w)
	}
}
