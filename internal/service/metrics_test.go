package service

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// parseExposition extracts "name{labels} value" and "name value" samples
// from rendered text, keyed by the full series string before the value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func renderHistogram(h *histogram, name string) string {
	var sb strings.Builder
	h.render(&sb, name)
	return sb.String()
}

// The +Inf bucket must equal _count, cumulative buckets must be
// monotonically non-decreasing, and _sum must equal the observed total.
func TestHistogramExposition(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	obs := []float64{0.005, 0.05, 0.05, 0.5, 5} // one below each bound plus a +Inf overflow
	var sum float64
	for _, v := range obs {
		h.Observe(v)
		sum += v
	}
	samples := parseExposition(t, renderHistogram(h, "m"))

	count := samples["m_count"]
	if count != float64(len(obs)) {
		t.Errorf("m_count = %v, want %d", count, len(obs))
	}
	if inf := samples[`m_bucket{le="+Inf"}`]; inf != count {
		t.Errorf("+Inf bucket = %v, want m_count %v", inf, count)
	}
	if got := samples["m_sum"]; got != sum {
		t.Errorf("m_sum = %v, want %v", got, sum)
	}
	// Cumulative semantics: each bucket counts observations <= its bound.
	prev := -1.0
	for _, le := range []string{`m_bucket{le="0.01"}`, `m_bucket{le="0.1"}`, `m_bucket{le="1"}`, `m_bucket{le="+Inf"}`} {
		v, ok := samples[le]
		if !ok {
			t.Fatalf("missing bucket %s in:\n%s", le, renderHistogram(h, "m"))
		}
		if v < prev {
			t.Errorf("bucket %s = %v below previous %v (not cumulative)", le, v, prev)
		}
		prev = v
	}
	if got := samples[`m_bucket{le="0.01"}`]; got != 1 {
		t.Errorf("first bucket = %v, want 1", got)
	}
	if got := samples[`m_bucket{le="0.1"}`]; got != 3 {
		t.Errorf("second bucket = %v, want 3 (cumulative)", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if got := h.quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	for _, v := range []float64{0.5, 0.5, 1.5, 1.5, 3} {
		h.Observe(v)
	}
	// Ranks: ceil(0.5*5) = 3 → the bucket holding the 3rd observation
	// cumulatively, upper bound 2.
	if got := h.quantile(0.5); got != 2 {
		t.Errorf("median = %v, want bucket bound 2", got)
	}
	if got := h.quantile(0.1); got != 1 {
		t.Errorf("p10 = %v, want bucket bound 1", got)
	}
	// Overflow-dominated: every observation in +Inf; estimate must be at
	// least the last finite bound, not 0.
	h2 := newHistogram([]float64{1, 2})
	for i := 0; i < 4; i++ {
		h2.Observe(100)
	}
	if got := h2.quantile(0.5); got < 2 {
		t.Errorf("overflowed median = %v, want >= last bound 2", got)
	}
}

// Label values rendered through %q must stay parseable when they contain
// quotes and backslashes (mechanism specs are client-influenced text).
func TestCounterVecLabelEscaping(t *testing.T) {
	v := newCounterVec()
	hostile := `a"b\c`
	v.get(fmt.Sprintf("mech=%q", hostile)).Add(3)
	v.get(`plain="x"`).Inc()
	var sb strings.Builder
	v.render(&sb, "m")
	text := sb.String()
	want := `m{mech="a\"b\\c"} 3`
	if !strings.Contains(text, want) {
		t.Errorf("rendered family missing %q:\n%s", want, text)
	}
	// The escaped line must survive the same exposition parse the tests
	// use: one sample, numeric value, original label recoverable.
	samples := parseExposition(t, text)
	if got := samples[`m{mech="a\"b\\c"}`]; got != 3 {
		t.Errorf("escaped series value = %v, want 3", got)
	}
	if got, err := strconv.Unquote(`"a\"b\\c"`); err != nil || got != hostile {
		t.Errorf("label does not round-trip: %q, %v", got, err)
	}
	if v.total() != 4 {
		t.Errorf("family total = %d, want 4", v.total())
	}
}
