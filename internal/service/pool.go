package service

import (
	"context"
	"errors"
	"sync"
)

// Pool admission errors.
var (
	// errQueueFull is returned by submit when the bounded queue is at
	// capacity; the HTTP layer maps it to 429 + Retry-After.
	errQueueFull = errors.New("service: job queue full")
	// errPoolClosed is returned by submit once draining has begun.
	errPoolClosed = errors.New("service: pool is draining")
)

// job is one unit of work for the pool. The function runs on a worker;
// done closes when data/err are set. A job whose ctx is already over when
// a worker picks it up is skipped, so queue time counts against the
// caller's deadline.
type job struct {
	ctx  context.Context
	fn   func(ctx context.Context) ([]byte, error)
	data []byte
	err  error
	done chan struct{}
}

func newJob(ctx context.Context, fn func(ctx context.Context) ([]byte, error)) *job {
	return &job{ctx: ctx, fn: fn, done: make(chan struct{})}
}

// pool is a fixed-size worker pool over a bounded queue. Submission is
// non-blocking: a full queue rejects immediately (backpressure) instead of
// stalling the HTTP handler. close drains: queued jobs still execute, then
// the workers exit.
type pool struct {
	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// newPool starts workers goroutines servicing a queue of depth queueDepth.
func newPool(workers, queueDepth int) *pool {
	p := &pool{queue: make(chan *job, queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.run(j)
	}
}

// run executes one job. The job function is responsible for its own panic
// isolation (see Server.runJob); a panic escaping anyway must not kill the
// worker, so run recovers as a last resort.
func (p *pool) run(j *job) {
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			j.err = errors.Join(errJobPanic, errors.New(describePanic(r)))
		}
	}()
	if err := j.ctx.Err(); err != nil {
		j.err = context.Cause(j.ctx)
		return
	}
	j.data, j.err = j.fn(j.ctx)
}

// submit enqueues j, failing fast when the queue is full or the pool is
// draining.
func (p *pool) submit(j *job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errPoolClosed
	}
	select {
	case p.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// depth returns the number of queued (not yet started) jobs.
func (p *pool) depth() int { return len(p.queue) }

// close stops admission, lets queued jobs finish, and waits for the
// workers to exit. Safe to call more than once.
func (p *pool) close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if already {
		return
	}
	close(p.queue)
	p.wg.Wait()
}
