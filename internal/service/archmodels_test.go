package service

import (
	"net/http"
	"sort"
	"testing"

	"sdt/internal/hostarch"
)

// Every shipped hostarch model — and every "-like" alias — must validate
// and be reachable as a sweep dimension: a registry-style guarantee that
// adding a model (arm-like arrived with the two-level BTB work) wires it
// into the /v1/sweep API with no further plumbing.
func TestAllModelsReachableFromSweepAPI(t *testing.T) {
	var archs []string
	for name := range hostarch.Models() {
		archs = append(archs, name, name+"-like")
	}
	sort.Strings(archs)

	for _, arch := range archs {
		m, err := hostarch.ByName(arch)
		if err != nil {
			t.Fatalf("ByName(%q): %v", arch, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("model %q invalid: %v", arch, err)
		}
	}

	_, ts := newTestServer(t, Config{Workers: 4})
	req := SweepRequest{
		Workloads: []string{"micro.ret"},
		Archs:     archs,
		Mechs:     []string{"ibtc:256"},
		Scales:    []int{2000},
		Limit:     20_000_000,
	}
	status, recs := submitSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	_, cells, done := splitSweep(t, recs)
	if len(cells) != len(archs) {
		t.Fatalf("got %d cells, want %d", len(cells), len(archs))
	}
	for i, arch := range archs {
		c, ok := cells[i]
		if !ok {
			t.Errorf("no cell for arch %q", arch)
			continue
		}
		if c.Arch != arch {
			t.Errorf("cell %d arch = %q, want %q", i, c.Arch, arch)
		}
		if c.Error != nil {
			t.Errorf("arch %q cell failed: %+v", arch, c.Error)
		}
	}
	if done.Errors != 0 || done.Done != len(archs) {
		t.Errorf("done = %+v, want %d clean cells", done, len(archs))
	}
}
