package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sdt/internal/workload"
)

func mustWorkload(t *testing.T, name string) *workload.Spec {
	t.Helper()
	spec, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// sweepRecord is the union of every NDJSON record type, for decoding a
// stream line by line in tests.
type sweepRecord struct {
	Type      string          `json:"type"`
	Index     int             `json:"index"`
	Workload  string          `json:"workload"`
	Arch      string          `json:"arch"`
	Mech      string          `json:"mech"`
	Scale     int             `json:"scale"`
	Cached    bool            `json:"cached"`
	// Replayed is bool on cell records and int on the done record; any
	// absorbs both shapes.
	Replayed  any             `json:"replayed"`
	Resumed   int             `json:"resumed"`
	Attempts  int             `json:"attempts"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Result    json.RawMessage `json:"result"`
	Error     *ErrorInfo      `json:"error"`
	Total     int             `json:"total"`
	Done      int             `json:"done"`
	Errors    int             `json:"errors"`
	Canceled  int             `json:"canceled"`
}

func submitSweep(t *testing.T, ts *httptest.Server, req SweepRequest) (int, []sweepRecord) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []sweepRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec sweepRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("decoding stream line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, recs
}

// splitSweep indexes a stream by record type.
func splitSweep(t *testing.T, recs []sweepRecord) (start sweepRecord, cells map[int]sweepRecord, done sweepRecord) {
	t.Helper()
	cells = map[int]sweepRecord{}
	var haveStart, haveDone bool
	for _, rec := range recs {
		switch rec.Type {
		case "start":
			start, haveStart = rec, true
		case "cell":
			if _, dup := cells[rec.Index]; dup {
				t.Errorf("cell index %d emitted twice", rec.Index)
			}
			cells[rec.Index] = rec
		case "done":
			done, haveDone = rec, true
		case "progress":
			// heartbeats are timing-dependent; ignore
		default:
			t.Errorf("unknown record type %q", rec.Type)
		}
	}
	if !haveStart || !haveDone {
		t.Fatalf("stream missing start (%v) or done (%v) record", haveStart, haveDone)
	}
	return start, cells, done
}

// A small matrix must stream exactly one result record per cell, all
// successful, with indices covering the matrix in its deterministic
// expansion order.
func TestSweepStreamCompleteness(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	req := SweepRequest{
		Workloads: []string{"gzip", "vpr"},
		Mechs:     []string{"ibtc:4096", "sieve:1024"},
		Limit:     20_000_000,
	}
	status, recs := submitSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	start, cells, done := splitSweep(t, recs)
	if start.Total != 4 {
		t.Errorf("start.total = %d, want 4", start.Total)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cell records, want 4", len(cells))
	}
	// Expansion is workload-major: gzip×ibtc, gzip×sieve, vpr×ibtc, vpr×sieve.
	wantCells := []struct{ wl, mech string }{
		{"gzip", "ibtc:4096"}, {"gzip", "sieve:1024"},
		{"vpr", "ibtc:4096"}, {"vpr", "sieve:1024"},
	}
	for i, want := range wantCells {
		c, ok := cells[i]
		if !ok {
			t.Errorf("no record for cell %d", i)
			continue
		}
		if c.Workload != want.wl || c.Mech != want.mech || c.Arch != "x86" {
			t.Errorf("cell %d = %s/%s/%s, want %s/x86/%s", i, c.Workload, c.Arch, c.Mech, want.wl, want.mech)
		}
		if c.Error != nil {
			t.Errorf("cell %d failed: %+v", i, c.Error)
			continue
		}
		var res RunResult
		if err := json.Unmarshal(c.Result, &res); err != nil {
			t.Fatalf("cell %d result: %v", i, err)
		}
		if res.Name != want.wl || res.Mech != want.mech || res.Lang != LangWorkload {
			t.Errorf("cell %d result = %s/%s lang %s", i, res.Name, res.Mech, res.Lang)
		}
		if res.Slowdown <= 1 {
			t.Errorf("cell %d slowdown = %v, want > 1", i, res.Slowdown)
		}
	}
	if done.Done != 4 || done.Errors != 0 || done.Canceled != 0 {
		t.Errorf("done = %+v, want 4/0/0", done)
	}
}

// One poisoned cell must produce exactly one error record while every
// other cell completes — per-cell isolation, never batch failure.
func TestSweepPoisonedCellIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	req := SweepRequest{
		Workloads: []string{"gzip", "nosuchworkload", "vpr"},
		Mechs:     []string{"ibtc:1024"},
		Limit:     20_000_000,
	}
	status, recs := submitSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (errors are per-cell)", status)
	}
	_, cells, done := splitSweep(t, recs)
	if len(cells) != 3 {
		t.Fatalf("got %d cell records, want 3", len(cells))
	}
	for i, c := range cells {
		if c.Workload == "nosuchworkload" {
			if c.Error == nil || c.Error.Code != CodeInvalidArgument {
				t.Errorf("poisoned cell error = %+v, want code %q", c.Error, CodeInvalidArgument)
			}
		} else if c.Error != nil {
			t.Errorf("healthy cell %d (%s) failed: %+v", i, c.Workload, c.Error)
		}
	}
	if done.Done != 2 || done.Errors != 1 {
		t.Errorf("done = %+v, want done=2 errors=1", done)
	}
	if got := s.met.sweepCells.get(outcomeError).Value(); got != 1 {
		t.Errorf("sweep cell error count = %d, want 1", got)
	}
}

// Resubmitting an identical sweep must serve every cell from the store —
// no new executions — with per-cell result bytes identical to the first
// stream's.
func TestSweepCachedResubmit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	req := SweepRequest{
		Workloads: []string{"gzip"},
		Mechs:     []string{"ibtc:1024", "translator"},
		Limit:     20_000_000,
	}
	status, recs := submitSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("cold sweep status = %d", status)
	}
	_, cold, _ := splitSweep(t, recs)
	executed := s.met.runsTotal.total()
	if executed == 0 {
		t.Fatal("cold sweep executed nothing")
	}

	status, recs = submitSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("warm sweep status = %d", status)
	}
	_, warm, _ := splitSweep(t, recs)
	if got := s.met.runsTotal.total(); got != executed {
		t.Errorf("warm sweep executed %d new runs, want 0", got-executed)
	}
	for i, c := range warm {
		if !c.Cached {
			t.Errorf("warm cell %d not served from cache", i)
		}
		if !bytes.Equal(c.Result, cold[i].Result) {
			t.Errorf("warm cell %d result differs from cold:\n%s\n%s", i, cold[i].Result, c.Result)
		}
	}
}

// A sweep cell and a direct /v1/run of the same program share one cache
// entry: the sweep populates it, the direct submission hits it.
func TestSweepSharesStoreWithRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	status, recs := submitSweep(t, ts, SweepRequest{
		Workloads: []string{"gzip"},
		Mechs:     []string{"ibtc:1024"},
		Limit:     20_000_000,
	})
	if status != http.StatusOK {
		t.Fatalf("sweep status = %d", status)
	}
	_, cells, _ := splitSweep(t, recs)
	if cells[0].Error != nil {
		t.Fatalf("sweep cell failed: %+v", cells[0].Error)
	}
	executed := s.met.runsTotal.total()

	// The equivalent direct submission: same generated source, same tuple.
	spec := mustWorkload(t, "gzip")
	status, data := submit(t, ts, RunRequest{
		Name:   "gzip",
		Source: spec.Generate(0),
		Mech:   "ibtc:1024",
		Limit:  20_000_000,
	})
	if status != http.StatusOK {
		t.Fatalf("direct run status = %d, body %s", status, data)
	}
	resp, _ := decodeRun(t, data)
	if !resp.Cached {
		t.Error("direct /v1/run after the sweep was not served from cache")
	}
	if !bytes.Equal(resp.Result, cells[0].Result) {
		t.Errorf("direct result differs from sweep cell:\n%s\n%s", resp.Result, cells[0].Result)
	}
	if got := s.met.runsTotal.total(); got != executed {
		t.Errorf("direct run executed again (%d -> %d runs)", executed, got)
	}
}

// Disconnecting mid-stream must cancel outstanding cells: with a single
// worker and a wide matrix, most cells never start, which is observable
// in the run and sweep-cell counters.
func TestSweepClientDisconnectCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	body, _ := json.Marshal(SweepRequest{
		Workloads: []string{"gzip", "vpr", "gcc", "mcf", "crafty", "parser",
			"eon", "perlbmk", "gap", "vortex", "bzip2", "twolf"},
		Mechs: []string{"ibtc:1024"},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read just the start record, then walk away mid-stream.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}
	cancel()

	// The server must notice the disconnect and drain the remaining cells
	// as canceled without executing them.
	waitFor(t, "sweep to finish as canceled", func() bool {
		return s.met.sweepsTotal.get(outcomeCanceled).Value() == 1
	})
	if got := s.met.sweepCells.get(outcomeCanceled).Value(); got == 0 {
		t.Error("no sweep cells recorded as canceled")
	}
	if executed := s.met.runsTotal.total(); executed >= 12 {
		t.Errorf("all %d cells executed despite the disconnect", executed)
	}
}

func TestSweepBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepCells: 3})
	cases := []struct {
		name string
		req  SweepRequest
	}{
		{"empty workloads", SweepRequest{Mechs: []string{"ibtc:1024"}}},
		{"negative scale", SweepRequest{Workloads: []string{"gzip"}, Scales: []int{-1}}},
		{"cell cap", SweepRequest{Workloads: []string{"gzip", "vpr"}, Mechs: []string{"a", "b"}}},
	}
	for _, tc := range cases {
		body, _ := json.Marshal(tc.req)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
