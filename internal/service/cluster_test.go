package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sdt/internal/cluster"
	"sdt/internal/faultinject"
	"sdt/internal/store"
	"sdt/internal/sweep"
)

// switchable defers handler installation: cluster membership needs the
// listener URLs, which only exist once the test servers are up, but the
// servers need a handler at construction.
type switchable struct {
	mu sync.RWMutex
	h  http.Handler
}

func (sw *switchable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw.mu.RLock()
	h := sw.h
	sw.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (sw *switchable) set(h http.Handler) {
	sw.mu.Lock()
	sw.h = h
	sw.mu.Unlock()
}

type clusterNode struct {
	s  *Server
	ts *httptest.Server
	cl *cluster.Cluster
}

// newClusterNodes boots n in-process sdtd nodes sharing one static
// membership list. probe < 0 disables the health prober (liveness then
// comes from dispatch outcomes, keeping tests deterministic).
func newClusterNodes(t *testing.T, n int, probe time.Duration, mut func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	return newClusterNodesRF(t, n, 1, probe, mut)
}

// newClusterNodesRF is newClusterNodes with a replication factor.
func newClusterNodesRF(t *testing.T, n, rf int, probe time.Duration, mut func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	sws := make([]*switchable, n)
	urls := make([]string, n)
	tss := make([]*httptest.Server, n)
	for i := range sws {
		sws[i] = &switchable{}
		tss[i] = httptest.NewServer(sws[i])
		urls[i] = tss[i].URL
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cl, err := cluster.New(cluster.Config{
			Self:             urls[i],
			Peers:            urls,
			Replication:      rf,
			ProbeInterval:    probe,
			BreakerThreshold: 2,
			BreakerCooldown:  time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Workers: 2, StoreDir: t.TempDir(), Cluster: cl}
		if mut != nil {
			mut(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sws[i].set(s.Handler())
		nodes[i] = &clusterNode{s: s, ts: tss[i], cl: cl}
		ts := tss[i]
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
	}
	return nodes
}

// clusterSweep posts to /v1/cluster/sweep and returns the status, the
// deterministic stream bytes (heartbeat progress records filtered out,
// exactly as documented in docs/CLUSTER.md) and the decoded records.
func clusterSweep(t *testing.T, ts *httptest.Server, req SweepRequest, query string) (int, []byte, []sweepRecord) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/cluster/sweep"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data, nil
	}
	var canonical bytes.Buffer
	var recs []sweepRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec sweepRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("decoding stream line %q: %v", sc.Text(), err)
		}
		if rec.Type != "progress" {
			canonical.Write(line)
			canonical.WriteByte('\n')
			recs = append(recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, canonical.Bytes(), recs
}

var clusterMatrix = SweepRequest{
	Workloads: []string{"gzip", "vpr"},
	Mechs:     []string{"ibtc:256", "sieve:64"},
	Limit:     20_000_000,
}

// The tentpole guarantee: a 3-node cluster's merged sweep stream is
// byte-identical to a 1-node run of the same request, and the fleet
// executes every cell exactly once.
func TestClusterSweepMergedOutputMatchesSingleNode(t *testing.T) {
	single := newClusterNodes(t, 1, -1, nil)
	status, golden, grecs := clusterSweep(t, single[0].ts, clusterMatrix, "")
	if status != http.StatusOK {
		t.Fatalf("single-node cluster sweep = %d: %s", status, golden)
	}
	_, gcells, gdone := splitSweep(t, grecs)
	if gdone.Done != 4 || gdone.Errors != 0 {
		t.Fatalf("single-node done = %+v, want 4 clean cells", gdone)
	}
	// Canonical stream: cells arrive in matrix-index order.
	for i, rec := range grecs[1 : len(grecs)-1] {
		if rec.Type != "cell" || rec.Index != i {
			t.Fatalf("record %d = type %q index %d, want ordered cells", i, rec.Type, rec.Index)
		}
	}
	_ = gcells

	nodes := newClusterNodes(t, 3, -1, nil)
	status, merged, mrecs := clusterSweep(t, nodes[0].ts, clusterMatrix, "")
	if status != http.StatusOK {
		t.Fatalf("3-node cluster sweep = %d: %s", status, merged)
	}
	if !bytes.Equal(golden, merged) {
		t.Fatalf("3-node merged stream differs from single-node golden:\n--- golden\n%s--- merged\n%s", golden, merged)
	}
	if _, _, mdone := splitSweep(t, mrecs); mdone.Done != 4 {
		t.Fatalf("3-node done = %+v", mdone)
	}
	// Exactly one execution per cell across the whole fleet: ownership-
	// aligned placement means no node duplicated another's work.
	var runs uint64
	for _, n := range nodes {
		runs += n.s.met.runsTotal.total()
	}
	if runs != 4 {
		t.Fatalf("fleet executed %d runs for 4 cells, want exactly 4", runs)
	}
}

// A peer whose shard dispatch fails is excluded and its cells
// reassigned; the merged output must be indistinguishable from a
// healthy run.
func TestClusterSweepReassignsFailedShard(t *testing.T) {
	single := newClusterNodes(t, 1, -1, nil)
	status, golden, _ := clusterSweep(t, single[0].ts, clusterMatrix, "")
	if status != http.StatusOK {
		t.Fatal("golden sweep failed")
	}

	// The coordinator's first shard dispatch fails (io-class injection
	// at the dispatch seam); the target peer is distrusted and its
	// cells rerouted.
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		{Site: cluster.SiteShard, Class: faultinject.ClassIO, Every: 1, Limit: 1},
	}})
	nodes := newClusterNodes(t, 3, -1, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Faults = inj
		}
	})
	status, merged, mrecs := clusterSweep(t, nodes[0].ts, clusterMatrix, "")
	if status != http.StatusOK {
		t.Fatalf("sweep with failed shard = %d", status)
	}
	if !bytes.Equal(golden, merged) {
		t.Fatalf("recovered stream differs from golden:\n--- golden\n%s--- merged\n%s", golden, merged)
	}
	if _, _, done := splitSweep(t, mrecs); done.Done != 4 || done.Errors != 0 {
		t.Fatalf("done = %+v, want 4 clean cells", done)
	}
	coord := nodes[0].s
	if coord.met.clusterReassigned.Value() == 0 {
		t.Fatal("a shard dispatch failed but no cells were counted reassigned")
	}
}

// A draining peer refuses its shard (503); the coordinator must treat
// it like a dead node and finish the matrix elsewhere, with the exact
// number of reassignments its ownership share predicts.
func TestClusterSweepRoutesAroundDrainingPeer(t *testing.T) {
	nodes := newClusterNodes(t, 3, -1, nil)
	req := clusterMatrix
	nodes[2].s.StartDrain()

	// White-box: compute how many cells the drained node owns (the ring
	// depends on ephemeral ports, so this varies run to run).
	m := req.matrix()
	expected := 0
	for _, c := range m.Cells() {
		key, err := nodes[0].s.planCell(context.Background(), c, &req)
		if err != nil {
			t.Fatal(err)
		}
		if nodes[0].cl.Owner(key).Name() == nodes[2].cl.SelfName() {
			expected++
		}
	}

	status, _, recs := clusterSweep(t, nodes[0].ts, req, "")
	if status != http.StatusOK {
		t.Fatalf("sweep status = %d", status)
	}
	if _, _, done := splitSweep(t, recs); done.Done != 4 || done.Errors != 0 || done.Canceled != 0 {
		t.Fatalf("done = %+v, want 4 clean cells despite a draining peer", done)
	}
	if got := nodes[0].s.met.clusterReassigned.Value(); got != uint64(expected) {
		t.Fatalf("reassigned %d cells, drained node owned %d", got, expected)
	}
	if nodes[2].s.met.runsTotal.total() != 0 {
		t.Fatal("draining node executed cells")
	}
}

// The peer-result endpoint serves sealed entries from the strictly
// local store tiers.
func TestPeerResultEndpoint(t *testing.T) {
	nodes := newClusterNodes(t, 2, -1, nil)
	req := RunRequest{Name: "quick.s", Source: quickSrc, Arch: "x86", Mech: "ibtc:4096"}
	status, data := submit(t, nodes[0].ts, req)
	if status != http.StatusOK {
		t.Fatalf("seed run = %d: %s", status, data)
	}
	_, res := decodeRun(t, data)

	resp, err := http.Get(nodes[0].ts.URL + "/v1/peer/result/" + res.Key)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer result = %d", resp.StatusCode)
	}
	payload, err := store.OpenEntry(raw)
	if err != nil {
		t.Fatalf("peer response failed integrity verification: %v", err)
	}
	var got RunResult
	if err := json.Unmarshal(payload, &got); err != nil || got.Key != res.Key {
		t.Fatalf("sealed payload = %q (%v)", payload, err)
	}

	resp, err = http.Get(nodes[0].ts.URL + "/v1/peer/result/" + "00ab" + res.Key[4:])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing peer result = %d, want 404", resp.StatusCode)
	}
}

// A /v1/run on one node must be served from a peer's store when the
// owning peer already holds the result: a peer hit is a cache hit, and
// the bytes are identical to the original.
func TestRunServedFromPeerTier(t *testing.T) {
	nodes := newClusterNodes(t, 2, -1, nil)
	base := RunRequest{Name: "quick.s", Source: quickSrc, Arch: "x86", Mech: "ibtc:4096"}
	base.withDefaults()
	img, err := base.compile()
	if err != nil {
		t.Fatal(err)
	}
	// Ownership depends on ephemeral ports: pick seeds whose keys node 0
	// owns, so a submission on node 1 must cross the wire.
	var seeds []uint64
	for seed := uint64(0); seed < 256 && len(seeds) < 3; seed++ {
		req := base
		req.Seed = seed
		if nodes[1].cl.Owner(req.key(img)).Name() == nodes[0].cl.SelfName() {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) < 3 {
		t.Fatal("no seeds owned by node 0 in 256 candidates")
	}

	originals := make(map[uint64][]byte)
	for _, seed := range seeds {
		req := base
		req.Seed = seed
		status, data := submit(t, nodes[0].ts, req)
		if status != http.StatusOK {
			t.Fatalf("seed run = %d: %s", status, data)
		}
		resp, _ := decodeRun(t, data)
		originals[seed] = resp.Result
	}
	for _, seed := range seeds {
		req := base
		req.Seed = seed
		status, data := submit(t, nodes[1].ts, req)
		if status != http.StatusOK {
			t.Fatalf("peer-tier run = %d: %s", status, data)
		}
		resp, _ := decodeRun(t, data)
		if !resp.Cached {
			t.Fatalf("seed %d: peer-held result not reported as a cache hit", seed)
		}
		if !bytes.Equal(resp.Result, originals[seed]) {
			t.Fatalf("seed %d: peer-fetched bytes differ from the original", seed)
		}
	}
	st := nodes[1].s.Store().Stats()
	if st.PeerHits != uint64(len(seeds)) || st.PeerErrors != 0 {
		t.Fatalf("node 1 store stats = %+v, want %d peer hits", st, len(seeds))
	}
	if nodes[1].s.met.runsTotal.total() != 0 {
		t.Fatal("node 1 executed despite peer-held results")
	}
}

// With the owning peer unreachable, runs must still succeed from local
// compute, the peer breaker must trip, and /healthz must report the
// degraded peer — the tier-degradation satellite end to end.
func TestPeerOutageDegradesGracefully(t *testing.T) {
	nodes := newClusterNodes(t, 2, 20*time.Millisecond, nil)
	base := RunRequest{Name: "quick.s", Source: quickSrc, Arch: "x86", Mech: "ibtc:4096"}
	base.withDefaults()
	img, err := base.compile()
	if err != nil {
		t.Fatal(err)
	}
	var seeds []uint64
	for seed := uint64(0); seed < 256 && len(seeds) < 3; seed++ {
		req := base
		req.Seed = seed
		if nodes[1].cl.Owner(req.key(img)).Name() == nodes[0].cl.SelfName() {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) < 3 {
		t.Fatal("no seeds owned by node 0 in 256 candidates")
	}

	nodes[0].ts.Close() // the owner vanishes

	// Wait for the prober to mark the dead owner down: fetches then skip
	// it outright (no per-request timeout bleed) instead of feeding its
	// breaker. The transport-error-then-breaker path is unit-covered in
	// internal/cluster.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, h := getHealth(t, nodes[1].ts)
		if code == http.StatusOK && h.Status == HealthDegraded {
			var dead *cluster.PeerHealth
			for i := range h.Cluster {
				if !h.Cluster[i].Self {
					dead = &h.Cluster[i]
				}
			}
			if dead == nil || dead.Up {
				t.Fatalf("cluster health = %+v, want the dead peer down", h.Cluster)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported the dead peer: %d %+v", code, h)
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, seed := range seeds {
		req := base
		req.Seed = seed
		status, data := submit(t, nodes[1].ts, req)
		if status != http.StatusOK {
			t.Fatalf("run with dead owner = %d: %s", status, data)
		}
		if resp, _ := decodeRun(t, data); resp.Cached {
			t.Fatalf("seed %d reported cached with the owner dead", seed)
		}
	}
	st := nodes[1].s.Store().Stats()
	if st.PeerHits != 0 {
		t.Fatalf("store stats = %+v, want no peer hits with the owner dead", st)
	}
	_, h := getHealth(t, nodes[1].ts)
	for _, p := range h.Cluster {
		if !p.Self && p.Skipped < 3 {
			t.Fatalf("dead peer health = %+v, want >= 3 skipped fetches", p)
		}
	}
}

// Shard endpoint contract: key-carrying records for exactly the
// requested cells, and journal-less by design.
func TestSweepShardEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	post := func(req ShardRequest) (int, []sweepRecord) {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/sweep/shard", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return resp.StatusCode, nil
		}
		var recs []sweepRecord
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			var rec sweepRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec)
		}
		return resp.StatusCode, recs
	}

	status, recs := post(ShardRequest{Sweep: clusterMatrix, Cells: []int{1, 3}})
	if status != http.StatusOK {
		t.Fatalf("shard status = %d", status)
	}
	_, cells, done := splitSweep(t, recs)
	if done.Done != 2 || len(cells) != 2 {
		t.Fatalf("shard done = %+v over %d cells, want exactly the 2 requested", done, len(cells))
	}
	for idx, rec := range cells {
		if idx != 1 && idx != 3 {
			t.Fatalf("shard executed unrequested cell %d", idx)
		}
		if rec.Error != nil {
			t.Fatalf("cell %d errored: %v", idx, rec.Error)
		}
	}
	// Key is on the raw records (sweepRecord drops it); decode one line
	// again to check it.
	var withKey struct {
		Key string `json:"key"`
	}
	raw, _ := json.Marshal(ShardRequest{Sweep: clusterMatrix, Cells: []int{0}})
	resp, err := http.Post(ts.URL+"/v1/sweep/shard", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	found := false
	for sc.Scan() {
		var rec sweepRecord
		if json.Unmarshal(sc.Bytes(), &rec) == nil && rec.Type == "cell" {
			if err := json.Unmarshal(sc.Bytes(), &withKey); err != nil || len(withKey.Key) != 64 {
				t.Fatalf("shard cell record key = %q (%v), want a sha256 hex key", withKey.Key, err)
			}
			found = true
		}
	}
	resp.Body.Close()
	if !found {
		t.Fatal("no cell record on the shard stream")
	}

	bad := ShardRequest{Sweep: clusterMatrix, Cells: []int{99}}
	if status, _ := post(bad); status != http.StatusBadRequest {
		t.Fatalf("out-of-range cell accepted: %d", status)
	}
	bad = ShardRequest{Sweep: clusterMatrix, Cells: []int{0, 0}}
	if status, _ := post(bad); status != http.StatusBadRequest {
		t.Fatalf("duplicate cell accepted: %d", status)
	}
	withID := clusterMatrix
	withID.ID = "nope"
	if status, _ := post(ShardRequest{Sweep: withID, Cells: []int{0}}); status != http.StatusBadRequest {
		t.Fatalf("journaled shard accepted: %d", status)
	}
}

// The drain satellite: SIGTERM mid-sweep (StartDrain) must cancel the
// sweep stream promptly, emit cancellation records for unfinished
// cells, and leave a journal that a later daemon resumes with zero
// duplicate executions.
func TestDrainCancelsSweepAndLeavesResumableJournal(t *testing.T) {
	dir := t.TempDir()
	// Latency injection keeps each cell slow enough that the drain
	// lands mid-matrix deterministically, without big instruction
	// budgets.
	inj := faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
		{Site: sweep.SiteCell, Class: faultinject.ClassLatency, Every: 1, LatencyMS: 150},
	}})
	s, ts := newTestServer(t, Config{StoreDir: dir, Workers: 1, Faults: inj})
	req := SweepRequest{
		ID:        "drain-mid-sweep",
		Workloads: []string{"gzip"},
		Mechs:     []string{"ibtc:256", "sieve:64", "retcache+ibtc:128", "fastret+sieve:32"},
		Limit:     20_000_000,
	}

	type sweepResult struct {
		status int
		recs   []sweepRecord
	}
	res := make(chan sweepResult, 1)
	go func() {
		status, recs := submitSweep(t, ts, req)
		res <- sweepResult{status, recs}
	}()

	// Wait for the first completed cell, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for s.met.sweepCells.get(outcomeOK).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no cell completed before the drain deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.StartDrain()

	r := <-res
	if r.status != http.StatusOK {
		t.Fatalf("drained sweep status = %d", r.status)
	}
	_, cells, done := splitSweep(t, r.recs)
	if done.Done == 0 || done.Done == done.Total {
		t.Fatalf("drained sweep done = %+v, want a partial matrix", done)
	}
	// Unfinished cells surface as canceled (caught mid-run) or draining
	// (refused by the closing pool) — both resumable, nothing else.
	for idx, rec := range cells {
		if rec.Error != nil && rec.Error.Code != CodeCanceled && rec.Error.Code != CodeDraining {
			t.Fatalf("cell %d failed with %q, want only drain codes", idx, rec.Error.Code)
		}
	}
	jpath := filepath.Join(dir, "sweeps", req.ID+".json")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatalf("drain did not leave a journal: %v", err)
	}
	var jf struct {
		Cells []struct {
			Index int `json:"index"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(data, &jf); err != nil {
		t.Fatalf("journal is torn: %v", err)
	}
	if len(jf.Cells) != done.Done {
		t.Fatalf("journal covers %d cells, stream completed %d", len(jf.Cells), done.Done)
	}

	// Resume on a fresh daemon over the same store: journaled cells
	// replay, only the cancelled remainder executes.
	s2, ts2 := newTestServer(t, Config{StoreDir: dir, Workers: 1})
	status, recs := submitSweep(t, ts2, req)
	if status != http.StatusOK {
		t.Fatalf("resume status = %d", status)
	}
	start2, _, done2 := splitSweep(t, recs)
	if start2.Resumed != done.Done {
		t.Fatalf("resume replayed %d cells, journal held %d", start2.Resumed, done.Done)
	}
	if done2.Done != done2.Total || done2.Errors != 0 {
		t.Fatalf("resume done = %+v, want the full matrix", done2)
	}
	if got := s2.met.runsTotal.total(); got != uint64(done.Total-done.Done) {
		t.Fatalf("resume executed %d cells, want only the %d unfinished ones", got, done.Total-done.Done)
	}
	if _, err := os.Stat(jpath); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("journal not retired after full completion (err=%v)", err)
	}
}

// The clustered exposition: peer and cluster-sweep series appear with
// their documented names once the node is a cluster member.
func TestClusterMetricsExposition(t *testing.T) {
	nodes := newClusterNodes(t, 2, -1, nil)
	if status, body, _ := clusterSweep(t, nodes[0].ts, clusterMatrix, ""); status != http.StatusOK {
		t.Fatalf("sweep = %d: %s", status, body)
	}
	resp, err := http.Get(nodes[0].ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		"sdtd_peer_up{peer=",
		"sdtd_peer_fetches_total{peer=",
		"sdtd_peer_breaker_trips_total{peer=",
		`sdtd_cluster_sweeps_total{outcome="ok"} 1`,
		`sdtd_cluster_sweep_cells_total{outcome="ok"} 4`,
		"sdtd_cluster_sweep_reassigned_cells_total 0",
		`sdtd_cache_hits_total{layer="peer"}`,
		"sdtd_cache_peer_errors_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n--- exposition:\n%s", want, text)
		}
	}
}

// A cluster sweep checkpoint must also resume with zero duplicate
// executions — the failure-recovery half of the tentpole, driven
// through the coordinator endpoint.
func TestClusterSweepCheckpointResume(t *testing.T) {
	nodes := newClusterNodes(t, 2, -1, nil)
	req := clusterMatrix
	req.ID = "cluster-ckpt"

	status, golden, recs := clusterSweep(t, nodes[0].ts, req, "")
	if status != http.StatusOK {
		t.Fatalf("sweep status = %d", status)
	}
	if _, _, done := splitSweep(t, recs); done.Done != 4 {
		t.Fatalf("done = %+v", done)
	}
	// Completed fully: journal retired, so re-running with the same ID
	// executes nothing anywhere — every cell is already in some node's
	// store, found locally or over the peer tier.
	var runsBefore uint64
	for _, n := range nodes {
		runsBefore += n.s.met.runsTotal.total()
	}
	status, second, recs := clusterSweep(t, nodes[0].ts, req, "")
	if status != http.StatusOK {
		t.Fatalf("re-run status = %d", status)
	}
	if _, _, done := splitSweep(t, recs); done.Done != 4 {
		t.Fatalf("re-run done = %+v", done)
	}
	var runsAfter uint64
	for _, n := range nodes {
		runsAfter += n.s.met.runsTotal.total()
	}
	if runsAfter != runsBefore {
		t.Fatalf("re-run executed %d new cells, want 0 (all cached)", runsAfter-runsBefore)
	}
	// Cached results and executed results are canonically identical.
	if !bytes.Equal(golden, second) {
		t.Fatal("cached cluster sweep stream differs from the original")
	}
}
