package service

// Cluster endpoints: the peer-facing sealed-entry store, the peer-facing
// sweep shard executor, and the client-facing sweep coordinator. The
// protocol is documented in docs/CLUSTER.md; membership and the fetch
// path live in internal/cluster.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sdt/internal/cluster"
	"sdt/internal/faultinject"
	"sdt/internal/store"
	"sdt/internal/sweep"
)

// ShardRequest is the body of POST /v1/sweep/shard: the coordinator's
// full sweep request plus the global matrix indices this node should
// execute. Every node expands the matrix with the same deterministic
// code, so indices are a complete cell description. RingEpoch pins the
// membership view the coordinator partitioned under: a sweep spanning a
// join or leave completes against the epoch it started under (the
// shard executes by index and needs no ring, so the epoch is carried
// for observability and never rejected — epochs converge lazily).
type ShardRequest struct {
	Sweep     SweepRequest `json:"sweep"`
	Cells     []int        `json:"cells"`
	RingEpoch uint64       `json:"ring_epoch,omitempty"`
}

// Coordinator stream records. Unlike /v1/sweep, the cluster stream is
// canonical: cells are emitted in matrix order and carry only fields
// derived from (matrix, seed, limit) — no timings, attempt counts or
// cache provenance — so the merged output of an N-node sweep is
// byte-identical to a 1-node run of the same request. Heartbeat
// progress records (type "progress") are the one timing-dependent
// exception; deterministic consumers filter them out.
type (
	clusterStart struct {
		Type    string `json:"type"` // "start"
		Total   int    `json:"total"`
		Resumed int    `json:"resumed,omitempty"`
	}
	clusterCell struct {
		Type     string          `json:"type"` // "cell"
		Index    int             `json:"index"`
		Workload string          `json:"workload"`
		Arch     string          `json:"arch"`
		Mech     string          `json:"mech"`
		Scale    int             `json:"scale,omitempty"`
		Result   json.RawMessage `json:"result,omitempty"`
		Error    *ErrorInfo      `json:"error,omitempty"`
	}
	clusterDone struct {
		Type     string `json:"type"` // "done"
		Done     int    `json:"done"`
		Errors   int    `json:"errors"`
		Canceled int    `json:"canceled,omitempty"`
		Total    int    `json:"total"`
	}
)

// plannedCell is a validated sweep cell with its content-store key —
// the unit the coordinator partitions, dispatches and journals.
type plannedCell struct {
	idx  int
	cell sweep.Cell
	key  string
}

// handlePeerResult serves the sealed entry for a locally stored result.
// It reads through ByteStore.Get, which is strictly local — so a fleet
// of nodes serving each other can never cascade a fetch into further
// peer fetches. The sealed framing lets the fetching node verify
// integrity exactly as it would a local disk read.
func (s *Server) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.store.Get(key)
	if !ok {
		s.countRequest(r, http.StatusNotFound)
		http.Error(w, "no result stored under "+key, http.StatusNotFound)
		return
	}
	s.countRequest(r, http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(store.SealEntry(data))
}

// handleSweepShard executes a subset of a sweep matrix on behalf of a
// cluster coordinator, streaming /v1/sweep-shaped records (with the
// result's store key attached) in completion order. Shards are
// journal-less: checkpointing is the coordinator's job.
func (s *Server) handleSweepShard(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.setRetryAfter(w)
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	var req ShardRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	if req.Sweep.ID != "" {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "shard requests are journal-less; checkpointing belongs to the coordinator")
		return
	}
	if len(req.Sweep.Workloads) == 0 {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "workloads must be non-empty")
		return
	}
	for _, sc := range req.Sweep.Scales {
		if sc < 0 {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, fmt.Sprintf("negative scale %d", sc))
			return
		}
	}
	m := req.Sweep.matrix()
	if n := m.Size(); n > s.cfg.MaxSweepCells {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("sweep expands to %d cells, limit %d", n, s.cfg.MaxSweepCells))
		return
	}
	if len(req.Cells) == 0 {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "cells must be non-empty")
		return
	}
	cells := m.Cells()
	work := make([]idxCell, 0, len(req.Cells))
	seen := make(map[int]bool, len(req.Cells))
	for _, idx := range req.Cells {
		if idx < 0 || idx >= len(cells) || seen[idx] {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("cell index %d out of range or duplicated (matrix has %d cells)", idx, len(cells)))
			return
		}
		seen[idx] = true
		work = append(work, idxCell{idx: idx, cell: cells[idx]})
	}

	// A drain mid-shard cancels this context like any other sweep; the
	// coordinator sees canceled cell records and reassigns them.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	sweepID := s.registerSweep(cancel)
	defer s.unregisterSweep(sweepID)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.countRequest(r, http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(SweepStart{Type: "start", Total: len(work)})

	eng := &sweep.Engine[idxCell, cellValue]{
		Workers: s.cfg.Workers,
		Retries: sweepRetries,
		IsTransient: func(err error) bool {
			return errors.Is(err, errQueueFull) || faultinject.IsTransient(err)
		},
		Exec: func(ctx context.Context, ic idxCell) (cellValue, error) {
			return s.runCell(ctx, ic.cell, &req.Sweep)
		},
	}
	if s.cfg.Faults != nil {
		eng.Faults = s.cfg.Faults
	}
	outcomes := make(chan sweep.Outcome[idxCell, cellValue])
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- eng.Stream(ctx, work, func(o sweep.Outcome[idxCell, cellValue]) {
			outcomes <- o
		})
		close(outcomes)
	}()
	heartbeat := time.NewTicker(s.cfg.SweepHeartbeat)
	defer heartbeat.Stop()

	var done, errCount, canceled int
	for outcomes != nil {
		select {
		case o, ok := <-outcomes:
			if !ok {
				outcomes = nil
				continue
			}
			rec := SweepCellRecord{
				Type:      "cell",
				Index:     o.Item.idx,
				Workload:  o.Item.cell.Workload,
				Arch:      o.Item.cell.Arch,
				Mech:      o.Item.cell.Mech,
				Scale:     o.Item.cell.Scale,
				Key:       o.Result.key,
				Cached:    o.Result.cached,
				Attempts:  o.Attempts,
				ElapsedMS: float64(o.Elapsed.Microseconds()) / 1000,
			}
			rec.Result, rec.Error = cellOutcome(o.Err, o.Result.data)
			switch {
			case o.Err == nil:
				done++
				s.met.sweepCells.get(outcomeOK).Inc()
			case errors.Is(o.Err, context.Canceled):
				canceled++
				s.met.sweepCells.get(outcomeCanceled).Inc()
			default:
				errCount++
				s.met.sweepCells.get(outcomeError).Inc()
			}
			emit(rec)
		case <-heartbeat.C:
			emit(SweepProgress{Type: "progress", Done: done, Errors: errCount, Total: len(work)})
		}
	}
	err := <-streamErr
	emit(SweepDone{
		Type:      "done",
		Done:      done,
		Errors:    errCount,
		Canceled:  canceled,
		Total:     len(work),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
	s.met.sweepsTotal.get(outcomeLabel(err)).Inc()
	s.cfg.Log.Printf("sweep shard %d cells: done=%d errors=%d canceled=%d elapsed=%s",
		len(work), done, errCount, canceled, time.Since(start).Round(time.Millisecond))
}

// cellOutcome maps a cell execution outcome to the (result, error)
// pair of its stream record. Exactly one is set.
func cellOutcome(err error, data []byte) (json.RawMessage, *ErrorInfo) {
	switch {
	case err == nil:
		return data, nil
	case errors.Is(err, context.Canceled):
		return nil, &ErrorInfo{Code: CodeCanceled, Message: err.Error()}
	case errors.Is(err, errCellInvalid):
		return nil, &ErrorInfo{Code: CodeInvalidArgument, Message: err.Error()}
	default:
		_, code := mapError(err)
		return nil, &ErrorInfo{Code: code, Message: err.Error()}
	}
}

// reassignable reports whether a shard cell record describes work that
// died with its node (drain/cancellation) rather than a real per-cell
// outcome, and should therefore be run somewhere else.
func reassignable(e *ErrorInfo) bool {
	return e != nil && (e.Code == CodeCanceled || e.Code == CodeDraining)
}

// handleClusterSweep coordinates a sweep across the fleet: it expands
// and validates the matrix, computes every cell's content-store key,
// partitions cells by the ring owner of their key (so results land on
// the node that owns them), dispatches each partition as a shard,
// merges the returned streams back into matrix order, and reassigns the
// unfinished cells of any shard that dies. With no cluster configured
// it degenerates to a single local shard — emitting the same canonical
// stream, which is what makes N-node output comparable to 1-node.
func (s *Server) handleClusterSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.setRetryAfter(w)
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	var req SweepRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	if len(req.Workloads) == 0 {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "workloads must be non-empty")
		return
	}
	for _, sc := range req.Scales {
		if sc < 0 {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, fmt.Sprintf("negative scale %d", sc))
			return
		}
	}
	m := req.matrix()
	if n := m.Size(); n > s.cfg.MaxSweepCells {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("sweep expands to %d cells, limit %d", n, s.cfg.MaxSweepCells))
		return
	}
	cells := m.Cells()

	// Pin the membership view for the whole sweep: partitioning,
	// liveness seeding and shard dispatch all use this epoch, so a join
	// or leave mid-sweep never re-routes in-flight work (new sweeps see
	// the new ring; this one completes under the ring it started with).
	var view *cluster.View
	if c := s.cfg.Cluster; c != nil {
		view = c.CurrentView()
	}

	// Checkpointing works exactly as on /v1/sweep: the journal lives on
	// the coordinator, binding cell indices to store keys. Keys are
	// location-independent, so a resumed coordinator replays what it
	// holds locally and lets the content-addressed store (local tiers,
	// then peers) absorb the rest without re-execution. ?adopt=<id>
	// additionally pulls a dead coordinator's replicated journal from
	// the fleet, letting a survivor take the sweep over (the client
	// resubmits the same request body to the survivor).
	if id := r.URL.Query().Get("resume"); id != "" {
		req.ID = id
	}
	adopt := r.URL.Query().Get("adopt")
	if adopt != "" {
		req.ID = adopt
	}
	var jr *sweepJournal
	var shipper *journalShipper
	if req.ID != "" {
		if !validSweepID(req.ID) {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
				"sweep id must be 1-64 chars of [A-Za-z0-9._-] starting with an alphanumeric")
			return
		}
		if s.cfg.StoreDir == "" {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
				"sweep checkpointing requires an on-disk store")
			return
		}
		if adopt != "" {
			if err := s.adoptJournal(adopt); err != nil {
				status, code := http.StatusInternalServerError, CodeInternal
				if errors.Is(err, errNoJournal) {
					status, code = http.StatusNotFound, CodeNotFound
				}
				s.writeError(w, r, status, code, fmt.Sprintf("adopting sweep %s: %v", adopt, err))
				return
			}
		}
		var jerr error
		jr, jerr = openSweepJournal(filepath.Join(s.cfg.StoreDir, "sweeps"),
			req.ID, sweepDigest(m, req.Seed, req.Limit), s.cfg.Faults, s.journalError)
		if jerr != nil {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, jerr.Error())
			return
		}
		if adopt != "" {
			s.met.sweepsAdopted.Inc()
		}
		if view != nil {
			// Replicate the journal as it checkpoints, so this sweep is
			// in turn adoptable if this coordinator dies.
			if shipper = s.newJournalShipper(view, req.ID); shipper != nil {
				jr.onPersist = shipper.push
			}
		}
	}

	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	sweepID := s.registerSweep(cancel)
	defer s.unregisterSweep(sweepID)

	// Plan every cell: validate and derive its store key. Planning
	// compiles each workload|scale image once (memoized in s.images).
	// Invalid cells become canonical error records without dispatch;
	// journaled cells whose bytes are still held locally are replayed.
	type replay struct {
		pc   plannedCell
		data []byte
	}
	var (
		invalid []plannedCell
		errInfo = make(map[int]*ErrorInfo)
		replays []replay
		pending = make(map[int]plannedCell, len(cells))
	)
	for i, c := range cells {
		key, err := s.planCell(ctx, c, &req)
		if err != nil {
			pc := plannedCell{idx: i, cell: c}
			invalid = append(invalid, pc)
			_, code := mapError(err)
			if errors.Is(err, errCellInvalid) {
				code = CodeInvalidArgument
			}
			errInfo[i] = &ErrorInfo{Code: code, Message: err.Error()}
			continue
		}
		pc := plannedCell{idx: i, cell: c, key: key}
		if jr != nil {
			if key, ok := jr.have[i]; ok {
				if data, ok := s.store.Get(key); ok {
					replays = append(replays, replay{pc: pc, data: data})
					continue
				}
			}
		}
		pending[i] = pc
	}

	// Committed to streaming.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.countRequest(r, http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	writeRec := func(v any) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeRec(clusterStart{Type: "start", Total: len(cells), Resumed: len(replays)})

	merge := cluster.NewMerge[clusterCell](len(cells), func(_ int, rec clusterCell) {
		writeRec(rec)
	})

	var (
		mu       sync.Mutex // guards counters, alive, pending, jr
		done     int
		errCount int
		canceled int
	)
	canonical := func(pc plannedCell, result json.RawMessage, e *ErrorInfo) clusterCell {
		return clusterCell{
			Type:     "cell",
			Index:    pc.idx,
			Workload: pc.cell.Workload,
			Arch:     pc.cell.Arch,
			Mech:     pc.cell.Mech,
			Scale:    pc.cell.Scale,
			Result:   result,
			Error:    e,
		}
	}
	for _, pc := range invalid {
		errCount++
		s.met.clusterCells.get(outcomeError).Inc()
		merge.Add(pc.idx, canonical(pc, nil, errInfo[pc.idx]))
	}
	for _, rp := range replays {
		done++
		s.met.clusterCells.get(outcomeOK).Inc()
		s.met.sweepReplayed.Inc()
		merge.Add(rp.pc.idx, canonical(rp.pc, rp.data, nil))
	}

	// finalize merges one dispatched cell's terminal outcome. Called
	// concurrently from local shard engines and peer stream readers.
	finalize := func(pc plannedCell, result json.RawMessage, e *ErrorInfo) {
		mu.Lock()
		if _, live := pending[pc.idx]; !live {
			mu.Unlock()
			return // duplicate delivery (e.g. a record racing a reassignment)
		}
		delete(pending, pc.idx)
		switch {
		case e == nil:
			done++
			s.met.clusterCells.get(outcomeOK).Inc()
			if jr != nil {
				jr.record(pc.idx, pc.key)
			}
		case e.Code == CodeCanceled || e.Code == CodeDraining:
			canceled++
			s.met.clusterCells.get(outcomeCanceled).Inc()
		default:
			errCount++
			s.met.clusterCells.get(outcomeError).Inc()
		}
		mu.Unlock()
		merge.Add(pc.idx, canonical(pc, result, e))
	}

	heartbeat := time.NewTicker(s.cfg.SweepHeartbeat)
	hbStop := make(chan struct{})
	go func() {
		defer heartbeat.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-heartbeat.C:
				mu.Lock()
				p := SweepProgress{Type: "progress", Done: done, Errors: errCount, Total: len(cells)}
				mu.Unlock()
				writeRec(p)
			}
		}
	}()

	// Liveness for this sweep: start from the prober's view, and stop
	// trusting any peer whose shard fails mid-flight. Once distrusted a
	// peer is excluded for the rest of the sweep, so the dispatch loop
	// terminates: every round either finishes the matrix or shrinks the
	// candidate set, and self always accepts work.
	alive := make(map[string]bool)
	peerByName := make(map[string]*cluster.Peer)
	selfName := ""
	if view != nil {
		selfName = view.Self().Name()
		for _, p := range view.Members() {
			alive[p.Name()] = p.Up()
			peerByName[p.Name()] = p
		}
	}
	reassigned := 0
	for round := 0; ; round++ {
		mu.Lock()
		if len(pending) == 0 {
			mu.Unlock()
			break
		}
		if round > 0 {
			reassigned += len(pending)
			s.met.clusterReassigned.Add(uint64(len(pending)))
		}
		idxs := make([]int, 0, len(pending))
		for i := range pending {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		shards := make(map[string][]plannedCell)
		for _, i := range idxs {
			pc := pending[i]
			name := selfName
			if view != nil {
				name = view.Assign(pc.key, func(p *cluster.Peer) bool { return p.Self() || alive[p.Name()] }).Name()
			}
			shards[name] = append(shards[name], pc)
		}
		mu.Unlock()

		var wg sync.WaitGroup
		for name, batch := range shards {
			if view == nil || name == selfName {
				wg.Add(1)
				go func(batch []plannedCell) {
					defer wg.Done()
					s.runShardLocal(ctx, &req, batch, finalize)
				}(batch)
				continue
			}
			wg.Add(1)
			go func(p *cluster.Peer, batch []plannedCell) {
				defer wg.Done()
				if err := s.dispatchShard(ctx, p, &req, batch, view.Epoch(), finalize); err != nil {
					s.cfg.Log.Printf("cluster sweep: shard on %s failed: %v", p.Name(), err)
					p.MarkDown()
					mu.Lock()
					alive[p.Name()] = false
					mu.Unlock()
				}
			}(peerByName[name], batch)
		}
		wg.Wait()
	}
	close(hbStop)

	mu.Lock()
	complete := done == len(cells)
	if jr != nil {
		if complete {
			jr.remove()
		} else {
			jr.persist()
		}
	}
	final := clusterDone{Type: "done", Done: done, Errors: errCount, Canceled: canceled, Total: len(cells)}
	mu.Unlock()
	if shipper != nil {
		// Flush the final journal state to the successors (or, on full
		// completion, tombstone their copies) before answering.
		shipper.finish(complete)
	}
	writeRec(final)
	s.met.clusterSweeps.get(outcomeLabel(context.Cause(ctx))).Inc()
	s.cfg.Log.Printf("cluster sweep %d cells: done=%d errors=%d canceled=%d replayed=%d reassigned=%d elapsed=%s",
		len(cells), final.Done, final.Errors, final.Canceled, len(replays), reassigned, time.Since(start).Round(time.Millisecond))
}

// planCell validates one cell and returns its content-store key,
// compiling the workload image through the memoized image group. An
// invalid cell reports errCellInvalid.
func (s *Server) planCell(ctx context.Context, c sweep.Cell, req *SweepRequest) (string, error) {
	rr, img, err := s.prepareCell(ctx, c, req)
	if err != nil {
		return "", err
	}
	return rr.key(img), nil
}

// runShardLocal executes a batch of planned cells through the local
// sweep engine, delivering each terminal outcome to finalize. It is the
// coordinator's "self shard": unlike a peer dispatch it cannot fail as
// a unit, which is what guarantees the dispatch loop terminates.
func (s *Server) runShardLocal(ctx context.Context, req *SweepRequest, batch []plannedCell, finalize func(plannedCell, json.RawMessage, *ErrorInfo)) {
	byIdx := make(map[int]plannedCell, len(batch))
	work := make([]idxCell, len(batch))
	for i, pc := range batch {
		byIdx[pc.idx] = pc
		work[i] = idxCell{idx: pc.idx, cell: pc.cell}
	}
	eng := &sweep.Engine[idxCell, cellValue]{
		Workers: s.cfg.Workers,
		Retries: sweepRetries,
		IsTransient: func(err error) bool {
			return errors.Is(err, errQueueFull) || faultinject.IsTransient(err)
		},
		Exec: func(ctx context.Context, ic idxCell) (cellValue, error) {
			return s.runCell(ctx, ic.cell, req)
		},
	}
	if s.cfg.Faults != nil {
		eng.Faults = s.cfg.Faults
	}
	eng.Stream(ctx, work, func(o sweep.Outcome[idxCell, cellValue]) {
		result, e := cellOutcome(o.Err, o.Result.data)
		finalize(byIdx[o.Item.idx], result, e)
	})
}

// dispatchShard sends one peer its shard and consumes the returned
// NDJSON stream, delivering terminal cell outcomes to finalize. Cells
// the shard reports as canceled (its node draining, or the stream dying
// with the node) are NOT finalized — they stay pending for
// reassignment — unless this coordinator itself is shutting down. Any
// error return means the peer should be distrusted for the rest of the
// sweep.
func (s *Server) dispatchShard(ctx context.Context, p *cluster.Peer, req *SweepRequest, batch []plannedCell, epoch uint64, finalize func(plannedCell, json.RawMessage, *ErrorInfo)) error {
	if s.cfg.Faults != nil {
		if err := s.cfg.Faults.Fail(cluster.SiteShard); err != nil {
			return err
		}
	}
	byIdx := make(map[int]plannedCell, len(batch))
	indices := make([]int, len(batch))
	for i, pc := range batch {
		byIdx[pc.idx] = pc
		indices[i] = pc.idx
	}
	shardReq := ShardRequest{Sweep: *req, Cells: indices, RingEpoch: epoch}
	shardReq.Sweep.ID = "" // journaling is the coordinator's job
	body, err := json.Marshal(shardReq)
	if err != nil {
		return err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, p.URL()+"/v1/sweep/shard", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := s.shardClient().Do(hr)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard dispatch answered %s", resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	abandoned := false
	for {
		var rec SweepCellRecord
		if derr := dec.Decode(&rec); derr != nil {
			if derr == io.EOF {
				return fmt.Errorf("shard stream ended without a done record")
			}
			return fmt.Errorf("shard stream died: %w", derr)
		}
		switch rec.Type {
		case "cell":
			pc, ok := byIdx[rec.Index]
			if !ok {
				return fmt.Errorf("shard answered for cell %d it was never assigned", rec.Index)
			}
			if reassignable(rec.Error) && ctx.Err() == nil {
				// The cell died with the shard (drain), not on its own
				// merits: leave it pending for reassignment.
				abandoned = true
				continue
			}
			finalize(pc, rec.Result, rec.Error)
		case "done":
			if abandoned {
				return fmt.Errorf("shard abandoned cells while draining")
			}
			return nil
		}
	}
}

// shardClient is the HTTP client used for shard dispatch: the
// cluster's (so tests and operators configure one transport for all
// peer traffic), falling back to the default client. Shard streams are
// long-lived, so requests are bounded by their context, not a client
// timeout.
func (s *Server) shardClient() *http.Client {
	if c := s.cfg.Cluster; c != nil {
		return c.HTTPClient()
	}
	return http.DefaultClient
}
