package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sdt/internal/cluster"
	"sdt/internal/faultinject"
	"sdt/internal/sweep"
)

const testAdminToken = "test-admin-token"

// postAdmin POSTs a JSON body with an admin token ("" = no token).
func postAdmin(t *testing.T, url, token string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("X-Admin-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}

// newSoloNode boots one clustered node whose boot membership is just
// itself — the shape of a daemon started fresh to join a running fleet.
func newSoloNode(t *testing.T, mut func(cfg *Config)) *clusterNode {
	t.Helper()
	sw := &switchable{}
	ts := httptest.NewServer(sw)
	cl, err := cluster.New(cluster.Config{
		Self:          ts.URL,
		Peers:         []string{ts.URL},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 2, StoreDir: t.TempDir(), Cluster: cl}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw.set(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return &clusterNode{s: s, ts: ts, cl: cl}
}

// The membership surface is admin-only: disabled without a configured
// token, refused on a wrong token, allowed on the right one via either
// header form.
func TestMembershipEndpointsAdminGuard(t *testing.T) {
	open := newClusterNodes(t, 2, -1, nil)
	status, body := postAdmin(t, open[0].ts.URL+"/v1/cluster/join", "", MemberChange{URL: "http://x:1"})
	if status != http.StatusForbidden {
		t.Fatalf("join without configured token = %d: %s", status, body)
	}

	guarded := newClusterNodes(t, 2, -1, func(i int, cfg *Config) { cfg.AdminToken = testAdminToken })
	status, body = postAdmin(t, guarded[0].ts.URL+"/v1/cluster/leave", "wrong", MemberChange{URL: "http://x:1"})
	if status != http.StatusForbidden {
		t.Fatalf("leave with wrong token = %d: %s", status, body)
	}
	status, body = postAdmin(t, guarded[0].ts.URL+"/v1/cluster/membership", "", MembershipUpdate{Epoch: 1})
	if status != http.StatusForbidden {
		t.Fatalf("membership without token = %d: %s", status, body)
	}
	// The bearer form passes too.
	req, _ := http.NewRequest(http.MethodPost, guarded[0].ts.URL+"/v1/cluster/join",
		bytes.NewReader([]byte(`{"url":"http://joiner.invalid:9"}`)))
	req.Header.Set("Authorization", "Bearer "+testAdminToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join with bearer token = %d", resp.StatusCode)
	}
}

// Join and leave rebuild the ring on every member without restarting
// anything: the fleet converges to one epoch, the joiner adopts it, and
// a removed node installs a solo view but keeps serving.
func TestJoinLeaveRebuildsRingEverywhere(t *testing.T) {
	nodes := newClusterNodes(t, 3, -1, func(i int, cfg *Config) { cfg.AdminToken = testAdminToken })
	joiner := newSoloNode(t, func(cfg *Config) { cfg.AdminToken = testAdminToken })

	status, body := postAdmin(t, nodes[0].ts.URL+"/v1/cluster/join", testAdminToken, MemberChange{URL: joiner.ts.URL})
	if status != http.StatusOK {
		t.Fatalf("join = %d: %s", status, body)
	}
	var mr MembershipResponse
	if err := json.Unmarshal(body, &mr); err != nil || mr.Epoch != 1 || len(mr.Members) != 4 {
		t.Fatalf("join response = %+v (%v), want epoch 1 with 4 members", mr, err)
	}
	all := append(append([]*clusterNode(nil), nodes...), joiner)
	for i, n := range all {
		_, h := getHealth(t, n.ts)
		if h.ClusterEpoch != 1 || len(h.Cluster) != 4 {
			t.Fatalf("node %d after join: epoch=%d members=%d, want 1/4", i, h.ClusterEpoch, len(h.Cluster))
		}
	}

	// A duplicate join is a client error and does not bump the epoch.
	if status, _ := postAdmin(t, nodes[0].ts.URL+"/v1/cluster/join", testAdminToken, MemberChange{URL: joiner.ts.URL}); status != http.StatusBadRequest {
		t.Fatalf("duplicate join = %d, want 400", status)
	}

	status, body = postAdmin(t, nodes[0].ts.URL+"/v1/cluster/leave", testAdminToken, MemberChange{URL: nodes[2].ts.URL})
	if status != http.StatusOK {
		t.Fatalf("leave = %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil || mr.Epoch != 2 || len(mr.Members) != 3 {
		t.Fatalf("leave response = %+v (%v), want epoch 2 with 3 members", mr, err)
	}
	for i, n := range []*clusterNode{nodes[0], nodes[1], joiner} {
		_, h := getHealth(t, n.ts)
		if h.ClusterEpoch != 2 || len(h.Cluster) != 3 {
			t.Fatalf("survivor %d after leave: epoch=%d members=%d, want 2/3", i, h.ClusterEpoch, len(h.Cluster))
		}
	}
	// The removed node knows it is out (solo view at the fleet epoch) but
	// still answers — its keys migrate lazily before it is shut down.
	code, h := getHealth(t, nodes[2].ts)
	if code != http.StatusOK || h.ClusterEpoch != 2 || len(h.Cluster) != 1 {
		t.Fatalf("removed node health = %d %+v, want a serving solo view at epoch 2", code, h)
	}

	// The ring rebuilds are visible in the exposition.
	text := scrape(t, nodes[0].ts)
	for _, want := range []string{
		"sdtd_cluster_ring_epoch 2",
		`sdtd_cluster_membership_changes_total{op="join"} 1`,
		`sdtd_cluster_membership_changes_total{op="leave"} 1`,
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}
	if text := scrape(t, nodes[1].ts); !bytes.Contains([]byte(text), []byte(`sdtd_cluster_membership_changes_total{op="apply"} 2`)) {
		t.Errorf("follower metrics missing the applied ring rebuilds:\n%s", text)
	}
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return out.String()
}

// An RF=2 fleet fans every freshly computed result out to its replica
// peer, asynchronously, and the counters on both sides agree.
func TestWriteReplicationFansOut(t *testing.T) {
	nodes := newClusterNodesRF(t, 2, 2, -1, nil)
	req := RunRequest{Name: "quick.s", Source: quickSrc, Arch: "x86", Mech: "ibtc:4096"}
	status, data := submit(t, nodes[0].ts, req)
	if status != http.StatusOK {
		t.Fatalf("run = %d: %s", status, data)
	}
	_, res := decodeRun(t, data)

	// With 2 members at RF=2 every key's replica set is both nodes, so
	// the non-computing node must receive the entry. Wait on the sender's
	// counter: it is the last thing to settle (after the PUT round-trip).
	deadline := time.Now().Add(5 * time.Second)
	for nodes[0].cl.ReplStats().Sent == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never sent: %+v", nodes[0].cl.ReplStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := nodes[1].s.Store().Get(res.Key); !ok {
		t.Fatal("replica not in the peer's local store")
	}
	if st := nodes[0].cl.ReplStats(); st.Sent != 1 || st.Failed != 0 {
		t.Fatalf("sender repl stats = %+v, want 1 clean send", st)
	}
	if st := nodes[1].cl.ReplStats(); st.Received != 1 {
		t.Fatalf("receiver repl stats = %+v, want 1 received", st)
	}
	// The replica write must not echo back: the receiver stored via Put,
	// so its own fan-out stays silent.
	if st := nodes[1].cl.ReplStats(); st.Sent != 0 {
		t.Fatalf("receiver re-replicated the entry: %+v", st)
	}

	_, h := getHealth(t, nodes[0].ts)
	if h.Replication != 2 || h.ReplStats == nil || h.ReplStats.Sent != 1 {
		t.Fatalf("health = replication=%d stats=%+v, want the fan-out surfaced", h.Replication, h.ReplStats)
	}
	text := scrape(t, nodes[0].ts)
	for _, want := range []string{
		"sdtd_replication_factor 2",
		"sdtd_cluster_ring_epoch 0",
		"sdtd_replication_sent_total 1",
		"sdtd_replication_pending 0",
		"sdtd_replication_queue_depth 0",
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("sender metrics missing %q", want)
		}
	}
	if text := scrape(t, nodes[1].ts); !bytes.Contains([]byte(text), []byte("sdtd_replication_received_total 1")) {
		t.Error("receiver metrics missing the received replica")
	}
}

// The degraded-replica read satellite, end to end: a corrupt disk frame
// on one node is repaired from its replica without re-running the cell,
// and the repair re-seals the local frame.
func TestDegradedReplicaReadRepairsWithoutRecompute(t *testing.T) {
	dirs := make([]string, 2)
	nodes := newClusterNodesRF(t, 2, 2, -1, func(i int, cfg *Config) {
		cfg.MemEntries = 1 // tiny memory tier so reads reach the disk frame
		dirs[i] = cfg.StoreDir
	})
	base := RunRequest{Name: "quick.s", Source: quickSrc, Arch: "x86", Mech: "ibtc:4096"}
	status, data := submit(t, nodes[0].ts, base)
	if status != http.StatusOK {
		t.Fatalf("seed run = %d: %s", status, data)
	}
	_, res := decodeRun(t, data)

	// Wait for the replica, then evict the entry from node 0's memory
	// tier and corrupt its disk frame.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := nodes[1].s.Store().Get(res.Key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	evict := base
	evict.Seed = 7
	if status, _ := submit(t, nodes[0].ts, evict); status != http.StatusOK {
		t.Fatal("evicting run failed")
	}
	frame := filepath.Join(dirs[0], res.Key[:2], res.Key)
	raw, err := os.ReadFile(frame)
	if err != nil {
		t.Fatalf("reading disk frame: %v", err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(frame, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	runsBefore := nodes[0].s.met.runsTotal.total() + nodes[1].s.met.runsTotal.total()
	status, data = submit(t, nodes[0].ts, base)
	if status != http.StatusOK {
		t.Fatalf("degraded read = %d: %s", status, data)
	}
	if resp, _ := decodeRun(t, data); !resp.Cached {
		t.Fatal("replica-repaired read not reported as a cache hit")
	}
	if runsAfter := nodes[0].s.met.runsTotal.total() + nodes[1].s.met.runsTotal.total(); runsAfter != runsBefore {
		t.Fatalf("corruption repair re-executed the cell (%d -> %d runs)", runsBefore, runsAfter)
	}
	st := nodes[0].s.Store().Stats()
	if st.Corruptions != 1 || st.PeerHits != 1 {
		t.Fatalf("store stats = %+v, want 1 corruption repaired via 1 peer hit", st)
	}
	if text := scrape(t, nodes[0].ts); !bytes.Contains([]byte(text), []byte("sdtd_store_corruption_total 1")) {
		t.Error("metrics missing the corruption count")
	}

	// Repair re-sealed the frame: evict again and re-read — served from
	// the local disk, no second peer fetch, no new corruption.
	if status, _ := submit(t, nodes[0].ts, evict); status != http.StatusOK {
		t.Fatal("second evicting run failed")
	}
	status, data = submit(t, nodes[0].ts, base)
	if status != http.StatusOK {
		t.Fatalf("post-repair read = %d", status)
	}
	if resp, _ := decodeRun(t, data); !resp.Cached {
		t.Fatal("post-repair read missed")
	}
	st = nodes[0].s.Store().Stats()
	if st.Corruptions != 1 || st.PeerHits != 1 {
		t.Fatalf("post-repair stats = %+v, want the frame served locally", st)
	}
}

// Coordinator failover: a cluster sweep's checkpoint journal is
// replicated as it persists, and after the coordinator dies mid-sweep a
// survivor adopts the sweep, replays the journal, and the fleet never
// re-executes a journaled cell.
func TestClusterSweepAdoptedBySurvivor(t *testing.T) {
	dirs := make([]string, 2)
	nodes := newClusterNodesRF(t, 2, 2, -1, func(i int, cfg *Config) {
		cfg.Workers = 1
		cfg.Faults = faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
			{Site: sweep.SiteCell, Class: faultinject.ClassLatency, Every: 1, LatencyMS: 150},
		}})
		dirs[i] = cfg.StoreDir
	})
	req := clusterMatrix
	req.ID = "adopt-mid-sweep"

	type sweepResult struct {
		status int
		recs   []sweepRecord
	}
	res := make(chan sweepResult, 1)
	go func() {
		status, _, recs := clusterSweep(t, nodes[0].ts, req, "")
		res <- sweepResult{status, recs}
	}()

	// Pull the plug on the coordinator once the fleet completed at least
	// one cell (but, with 150ms latency per cell, not the whole matrix).
	deadline := time.Now().Add(10 * time.Second)
	for nodes[0].s.met.sweepCells.get(outcomeOK).Value()+nodes[1].s.met.sweepCells.get(outcomeOK).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no cell completed before the kill deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	nodes[0].s.StartDrain()
	r := <-res
	if r.status != http.StatusOK {
		t.Fatalf("drained cluster sweep status = %d", r.status)
	}
	_, _, done := splitSweep(t, r.recs)
	if done.Done == 0 || done.Done == done.Total {
		t.Fatalf("drained cluster sweep done = %+v, want a partial matrix", done)
	}

	// The tentpole artifact: the survivor holds a replicated copy of the
	// dead coordinator's journal.
	if _, err := os.Stat(filepath.Join(dirs[1], "sweeps", req.ID+".json")); err != nil {
		t.Fatalf("journal replica missing on the survivor: %v", err)
	}

	status, _, recs := clusterSweep(t, nodes[1].ts, req, "?adopt="+req.ID)
	if status != http.StatusOK {
		t.Fatalf("adoption status = %d", status)
	}
	start2, _, done2 := splitSweep(t, recs)
	if start2.Resumed != done.Done {
		t.Fatalf("adoption replayed %d cells, the replicated journal held %d", start2.Resumed, done.Done)
	}
	if done2.Done != done2.Total || done2.Errors != 0 {
		t.Fatalf("adopted sweep done = %+v, want the full matrix", done2)
	}
	if got := nodes[1].s.met.sweepsAdopted.Value(); got != 1 {
		t.Fatalf("sweeps adopted = %d, want 1", got)
	}
	if text := scrape(t, nodes[0].ts); !bytes.Contains([]byte(text), []byte(`sdtd_replication_journal_pushes_total{outcome="ok"}`)) {
		t.Error("coordinator metrics missing the journal pushes")
	}
	if text := scrape(t, nodes[1].ts); !bytes.Contains([]byte(text), []byte("sdtd_cluster_sweeps_adopted_total 1")) {
		t.Error("survivor metrics missing the adoption")
	}

	// Adopting a sweep nobody journaled is a clean 404, not a silent
	// from-scratch run.
	unknown := clusterMatrix
	unknown.ID = "never-ran"
	if status, body, _ := clusterSweep(t, nodes[1].ts, unknown, "?adopt=never-ran"); status != http.StatusNotFound {
		t.Fatalf("adopting an unknown sweep = %d: %s", status, body)
	}
}

// A sweep in flight across a membership change completes against its
// pinned ring epoch: the merged stream is byte-identical to a
// single-node run, and the joiner (not in the pinned view) executes
// nothing.
func TestClusterSweepSpansMembershipChange(t *testing.T) {
	single := newClusterNodes(t, 1, -1, nil)
	status, golden, _ := clusterSweep(t, single[0].ts, clusterMatrix, "")
	if status != http.StatusOK {
		t.Fatal("golden sweep failed")
	}

	nodes := newClusterNodesRF(t, 3, 2, -1, func(i int, cfg *Config) {
		cfg.Workers = 1
		cfg.AdminToken = testAdminToken
		cfg.Faults = faultinject.New(&faultinject.Plan{Points: []faultinject.Point{
			{Site: sweep.SiteCell, Class: faultinject.ClassLatency, Every: 1, LatencyMS: 150},
		}})
	})
	joiner := newSoloNode(t, func(cfg *Config) { cfg.AdminToken = testAdminToken })

	type sweepResult struct {
		status int
		merged []byte
	}
	res := make(chan sweepResult, 1)
	go func() {
		status, merged, _ := clusterSweep(t, nodes[0].ts, clusterMatrix, "")
		res <- sweepResult{status, merged}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cells uint64
		for _, n := range nodes {
			cells += n.s.met.sweepCells.get(outcomeOK).Value()
		}
		if cells > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed before the join")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status, body := postAdmin(t, nodes[0].ts.URL+"/v1/cluster/join", testAdminToken, MemberChange{URL: joiner.ts.URL}); status != http.StatusOK {
		t.Fatalf("mid-sweep join = %d: %s", status, body)
	}

	r := <-res
	if r.status != http.StatusOK {
		t.Fatalf("sweep across membership change = %d", r.status)
	}
	if !bytes.Equal(golden, r.merged) {
		t.Fatalf("stream across membership change differs from golden:\n--- golden\n%s--- merged\n%s", golden, r.merged)
	}
	if got := joiner.s.met.runsTotal.total(); got != 0 {
		t.Fatalf("joiner executed %d cells of a sweep pinned to the pre-join ring", got)
	}
	// The ring did change under the sweep.
	_, h := getHealth(t, nodes[0].ts)
	if h.ClusterEpoch != 1 || len(h.Cluster) != 4 {
		t.Fatalf("post-sweep health = epoch %d, %d members, want the joined ring", h.ClusterEpoch, len(h.Cluster))
	}
}
