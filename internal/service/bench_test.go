package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// coldSeq makes every cold-bench request unique across iterations, runs
// and parallel client goroutines.
var coldSeq atomic.Int64

// Serving-path benchmarks: requests/sec through the full HTTP + store +
// pool stack, cold (every request a distinct program, so every request
// executes) and cached (one program, so after the first request everything
// is a store hit). Run at pool sizes 1, 4 and GOMAXPROCS to see admission
// and dedup costs separately from execution costs.

func poolSizes() []int {
	sizes := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		sizes = append(sizes, n)
	}
	return sizes
}

func benchServer(b *testing.B, workers int) *httptest.Server {
	b.Helper()
	s, err := New(Config{Workers: workers, QueueDepth: 1024, MemEntries: -1})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

func benchSubmit(b *testing.B, ts *httptest.Server, req RunRequest) {
	b.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d: %s", resp.StatusCode, data)
	}
}

// benchReq returns the benchmark guest; i != 0 makes the program (and so
// its key) unique per iteration.
func benchReq(i int) RunRequest {
	src := strings.Replace(quickSrc, "li r11, 64", fmt.Sprintf("li r11, %d", 64+i%1024), 1)
	return RunRequest{Name: "bench.s", Source: src, Mech: "ibtc:4096", Seed: uint64(i)}
}

func BenchmarkServiceCold(b *testing.B) {
	for _, workers := range poolSizes() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ts := benchServer(b, workers)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					benchSubmit(b, ts, benchReq(int(coldSeq.Add(1))))
				}
			})
		})
	}
}

func BenchmarkServiceCached(b *testing.B) {
	for _, workers := range poolSizes() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ts := benchServer(b, workers)
			req := RunRequest{Name: "bench.s", Source: quickSrc, Mech: "ibtc:4096"}
			benchSubmit(b, ts, req) // warm the store
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					benchSubmit(b, ts, req)
				}
			})
		})
	}
}
