package service

// Dynamic membership and coordinator-failover plumbing: the
// admin-guarded join/leave/membership endpoints that rebuild the ring
// without restarting any daemon, the peer-facing replica-write and
// journal endpoints, and the journal shipper that makes a coordinator's
// sweep checkpoint adoptable by a survivor. Protocol in docs/CLUSTER.md.

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sdt/internal/cluster"
	"sdt/internal/store"
)

// adminOK reports whether the request carries the configured admin
// token (X-Admin-Token or Authorization bearer). With no token
// configured the admin surface is disabled and nothing passes.
func (s *Server) adminOK(r *http.Request) bool {
	token := s.cfg.AdminToken
	if token == "" {
		return false
	}
	if h := r.Header.Get("X-Admin-Token"); h != "" {
		return subtle.ConstantTimeCompare([]byte(h), []byte(token)) == 1
	}
	if h := r.Header.Get("Authorization"); h != "" {
		return subtle.ConstantTimeCompare([]byte(h), []byte("Bearer "+token)) == 1
	}
	return false
}

// requireAdmin writes the 403 for a rejected admin request and reports
// whether the caller may proceed.
func (s *Server) requireAdmin(w http.ResponseWriter, r *http.Request) bool {
	if s.adminOK(r) {
		return true
	}
	msg := "admin token mismatch"
	if s.cfg.AdminToken == "" {
		msg = "membership endpoints are disabled (no -admin-token configured)"
	}
	s.writeError(w, r, http.StatusForbidden, CodeForbidden, msg)
	return false
}

// decodeMemberChange parses a join/leave body.
func (s *Server) decodeMemberChange(w http.ResponseWriter, r *http.Request) (MemberChange, bool) {
	var req MemberChange
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return req, false
	}
	if req.URL == "" {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "url must be non-empty")
		return req, false
	}
	return req, true
}

// handleJoin adds a member to the ring (epoch+1) and broadcasts the new
// membership to every node that appears in the old or new view — the
// joiner included, so it adopts the fleet's epoch instead of its boot
// view.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	s.handleMemberChange(w, r, "join")
}

// handleLeave removes a member from the ring (epoch+1). The broadcast
// reaches the removed node too (it is in the old view), so it installs
// a solo view and knows it is out — but keeps serving its store, which
// is what lets its keys migrate lazily to their new owners before it is
// actually shut down.
func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	s.handleMemberChange(w, r, "leave")
}

func (s *Server) handleMemberChange(w http.ResponseWriter, r *http.Request, op string) {
	c := s.cfg.Cluster
	if c == nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "this node is not clustered")
		return
	}
	if !s.requireAdmin(w, r) {
		return
	}
	req, ok := s.decodeMemberChange(w, r)
	if !ok {
		return
	}
	old := c.CurrentView()
	var (
		v   *cluster.View
		err error
	)
	if op == "join" {
		v, err = c.Join(req.URL)
	} else {
		v, err = c.Leave(req.URL)
	}
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	s.met.membershipChanges.get(fmt.Sprintf("op=%q", op)).Inc()
	s.broadcastMembership(r.Context(), old, v)
	s.cfg.Log.Printf("cluster %s %s: epoch %d -> %d, %d members",
		op, req.URL, old.Epoch(), v.Epoch(), v.Size())
	s.writeJSON(w, r, http.StatusOK, MembershipResponse{Epoch: v.Epoch(), Members: v.MemberURLs()})
}

// handleMembership applies a broadcast membership update. It carries
// the same admin guard as join/leave (the broadcaster authenticates
// with the shared token); stale epochs are acknowledged without effect,
// which makes rebroadcasts and request races harmless.
func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	c := s.cfg.Cluster
	if c == nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "this node is not clustered")
		return
	}
	if !s.requireAdmin(w, r) {
		return
	}
	var req MembershipUpdate
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	v, changed, err := c.Apply(req.Epoch, req.Peers)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	if changed {
		s.met.membershipChanges.get(`op="apply"`).Inc()
		s.cfg.Log.Printf("cluster membership applied: epoch %d, %d members", v.Epoch(), v.Size())
	}
	s.writeJSON(w, r, http.StatusOK, MembershipResponse{Epoch: v.Epoch(), Members: v.MemberURLs()})
}

// broadcastMembership pushes the new view to every node in the union of
// the old and new memberships, concurrently and best-effort: a node
// that misses the broadcast (down, racing) converges later — any member
// can re-POST /v1/cluster/membership, and epoch comparison makes the
// operation idempotent. Waits for the fan-out so the admin response
// means "the reachable fleet has the new ring".
func (s *Server) broadcastMembership(ctx context.Context, old, v *cluster.View) {
	c := s.cfg.Cluster
	update, err := json.Marshal(MembershipUpdate{Epoch: v.Epoch(), Peers: v.MemberURLs()})
	if err != nil {
		return
	}
	urls := make(map[string]bool)
	for _, p := range old.Members() {
		if !p.Self() {
			urls[p.URL()] = true
		}
	}
	for _, p := range v.Members() {
		if !p.Self() {
			urls[p.URL()] = true
		}
	}
	var wg sync.WaitGroup
	for u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				u+"/v1/cluster/membership", bytes.NewReader(update))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Admin-Token", s.cfg.AdminToken)
			resp, err := c.HTTPClient().Do(req)
			if err != nil {
				s.cfg.Log.Printf("membership broadcast to %s failed: %v", u, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				s.cfg.Log.Printf("membership broadcast to %s answered %s", u, resp.Status)
			}
		}(u)
	}
	wg.Wait()
}

// ---- peer replica writes ----

// validStoreKey accepts content-store keys: 64 lowercase hex chars
// (sha256). Anything else on the peer write path is a protocol error.
func validStoreKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handlePeerResultPut accepts one replicated sealed entry from a peer.
// The seal is verified before the bytes are admitted, and the write
// goes through Put — never Do — so an accepted replica is stored
// locally without triggering this node's own replication fan-out
// (which would echo entries around the ring forever).
func (s *Server) handlePeerResultPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validStoreKey(key) {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "malformed store key")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "reading entry: "+err.Error())
		return
	}
	data, err := store.OpenEntry(raw)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "sealed entry rejected: "+err.Error())
		return
	}
	s.store.Put(key, data)
	if c := s.cfg.Cluster; c != nil {
		c.NoteReplicaReceived()
	}
	s.countRequest(r, http.StatusNoContent)
	w.WriteHeader(http.StatusNoContent)
}

// ---- replicated sweep journals ----

// journalPath locates id's checkpoint file under the store root.
func (s *Server) journalPath(id string) string {
	return filepath.Join(s.cfg.StoreDir, "sweeps", id+".json")
}

// checkJournalReq validates the common preconditions of the peer
// journal endpoints.
func (s *Server) checkJournalReq(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := r.PathValue("id")
	if !validSweepID(id) {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
			"sweep id must be 1-64 chars of [A-Za-z0-9._-] starting with an alphanumeric")
		return "", false
	}
	if s.cfg.StoreDir == "" {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
			"journal replication requires an on-disk store")
		return "", false
	}
	return id, true
}

// handlePeerJournalGet serves a locally held sweep journal, sealed like
// a store entry so the fetching node can verify integrity.
func (s *Server) handlePeerJournalGet(w http.ResponseWriter, r *http.Request) {
	id, ok := s.checkJournalReq(w, r)
	if !ok {
		return
	}
	data, err := os.ReadFile(s.journalPath(id))
	if err != nil {
		s.writeError(w, r, http.StatusNotFound, CodeNotFound, "no journal stored under "+id)
		return
	}
	s.countRequest(r, http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(store.SealEntry(data))
}

// handlePeerJournalPut accepts a coordinator's replicated checkpoint.
// The seal and the journal's ID binding are verified before the atomic
// write; a bad replica is rejected rather than shadowing a good one.
func (s *Server) handlePeerJournalPut(w http.ResponseWriter, r *http.Request) {
	id, ok := s.checkJournalReq(w, r)
	if !ok {
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "reading journal: "+err.Error())
		return
	}
	data, err := store.OpenEntry(raw)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "sealed journal rejected: "+err.Error())
		return
	}
	var jf journalFile
	if err := json.Unmarshal(data, &jf); err != nil || jf.ID != id {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "journal body does not match id "+id)
		return
	}
	if err := writeFileAtomic(s.journalPath(id), data); err != nil {
		s.met.journalErrs.Inc()
		s.writeError(w, r, http.StatusInternalServerError, CodeInternal, "storing journal: "+err.Error())
		return
	}
	s.countRequest(r, http.StatusNoContent)
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerJournalDelete removes a replicated journal — the tombstone
// a coordinator sends once its sweep fully completes. Idempotent.
func (s *Server) handlePeerJournalDelete(w http.ResponseWriter, r *http.Request) {
	id, ok := s.checkJournalReq(w, r)
	if !ok {
		return
	}
	if err := os.Remove(s.journalPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		s.writeError(w, r, http.StatusInternalServerError, CodeInternal, "removing journal: "+err.Error())
		return
	}
	s.countRequest(r, http.StatusNoContent)
	w.WriteHeader(http.StatusNoContent)
}

// writeFileAtomic writes data via temp file + rename (the same torn-write
// guarantee the journal itself uses).
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".adopt*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
	}
	return werr
}

// journalKey is the ring key a sweep's journal replicates under. The
// prefix segregates journal placement from result placement; the id
// makes it deterministic, so an adopting survivor walks the same
// successor order the dead coordinator shipped to.
func journalKey(id string) string { return "journal|" + id }

// journalTargets picks the peers a coordinator ships its journal to:
// the first max(1, RF-1) non-self members in the journal key's
// successor order on the pinned view. Even an RF=1 fleet gets one
// journal replica — coordinator failover must not depend on data
// replication being enabled.
func journalTargets(v *cluster.View, id string) []*cluster.Peer {
	n := v.RF() - 1
	if n < 1 {
		n = 1
	}
	var out []*cluster.Peer
	for _, p := range v.Successors(journalKey(id)) {
		if p.Self() {
			continue
		}
		out = append(out, p)
		if len(out) == n {
			break
		}
	}
	return out
}

// journalShipper replicates a coordinator's checkpoint journal to its
// ring successors as it persists, making the sweep adoptable if the
// coordinator dies. Shipping is asynchronous and latest-wins: the
// journal is a cumulative snapshot, so only the newest state matters
// and a slow successor coalesces intermediate versions instead of
// queueing them. finish flushes the last state and, when the sweep
// completed, replaces it with a DELETE tombstone.
type journalShipper struct {
	s        *Server
	id       string
	targets  []*cluster.Peer
	ch       chan []byte
	done     chan struct{}
	complete bool
}

// newJournalShipper starts the pump. Returns nil when there is nowhere
// to ship (single-node, or no live successors at start — targets are
// fixed for the sweep, like its partitioning view).
func (s *Server) newJournalShipper(v *cluster.View, id string) *journalShipper {
	targets := journalTargets(v, id)
	if len(targets) == 0 {
		return nil
	}
	js := &journalShipper{
		s:       s,
		id:      id,
		targets: targets,
		ch:      make(chan []byte, 1),
		done:    make(chan struct{}),
	}
	go js.run()
	return js
}

// push hands the shipper a freshly persisted journal (single producer:
// the coordinator's finalize path, serialized by its mutex).
func (js *journalShipper) push(data []byte) {
	select {
	case <-js.ch: // drop the stale snapshot
	default:
	}
	js.ch <- data
}

func (js *journalShipper) run() {
	defer close(js.done)
	for data := range js.ch {
		js.ship(data)
	}
	if js.complete {
		js.tombstone()
	}
}

// finish flushes any final snapshot and stops the pump. complete=true
// (the sweep finished, the local journal was removed) sends DELETE
// tombstones so successors do not keep an adoptable journal for a
// sweep that no longer exists.
func (js *journalShipper) finish(complete bool) {
	js.complete = complete
	close(js.ch)
	<-js.done
}

func (js *journalShipper) ship(data []byte) {
	c := js.s.cfg.Cluster
	sealed := store.SealEntry(data)
	for _, p := range js.targets {
		req, err := http.NewRequest(http.MethodPut,
			p.URL()+cluster.PeerJournalPath+js.id, bytes.NewReader(sealed))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := c.HTTPClient().Do(req)
		if err != nil {
			js.s.met.journalPushes.get(outcomeError).Inc()
			js.s.cfg.Log.Printf("journal %s push to %s failed: %v", js.id, p.Name(), err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			js.s.met.journalPushes.get(outcomeError).Inc()
			js.s.cfg.Log.Printf("journal %s push to %s answered %s", js.id, p.Name(), resp.Status)
			continue
		}
		js.s.met.journalPushes.get(outcomeOK).Inc()
	}
}

func (js *journalShipper) tombstone() {
	c := js.s.cfg.Cluster
	for _, p := range js.targets {
		req, err := http.NewRequest(http.MethodDelete, p.URL()+cluster.PeerJournalPath+js.id, nil)
		if err != nil {
			continue
		}
		resp, err := c.HTTPClient().Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// errNoJournal marks an adoption attempt that found no journal anywhere
// — neither locally nor on any reachable peer.
var errNoJournal = errors.New("service: no journal found for adoption")

// adoptJournal materializes a dead coordinator's replicated journal
// locally so openSweepJournal can resume from it. If a local copy
// already exists (this node was a shipping target, or the coordinator
// itself restarting) it is used as-is; otherwise the journal key's
// successors are asked in ring order. The fetched copy is seal-verified
// and ID-checked before it is written; digest validation against the
// resubmitted request happens in openSweepJournal, exactly as for a
// local resume.
func (s *Server) adoptJournal(id string) error {
	if _, err := os.Stat(s.journalPath(id)); err == nil {
		return nil
	}
	c := s.cfg.Cluster
	if c == nil {
		return errNoJournal
	}
	v := c.CurrentView()
	for _, p := range v.Successors(journalKey(id)) {
		if p.Self() || !p.Up() {
			continue
		}
		data, err := s.fetchJournal(p, id)
		if err != nil {
			s.cfg.Log.Printf("adopt %s: fetch from %s failed: %v", id, p.Name(), err)
			continue
		}
		if data == nil {
			continue // peer answered: it has no copy
		}
		var jf journalFile
		if err := json.Unmarshal(data, &jf); err != nil || jf.ID != id {
			s.cfg.Log.Printf("adopt %s: journal from %s rejected (id mismatch or malformed)", id, p.Name())
			continue
		}
		if err := writeFileAtomic(s.journalPath(id), data); err != nil {
			return err
		}
		return nil
	}
	return errNoJournal
}

// fetchJournal retrieves and unseals id's journal from p. A 404 returns
// (nil, nil): the peer answered but holds no copy.
func (s *Server) fetchJournal(p *cluster.Peer, id string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.URL()+cluster.PeerJournalPath+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.cfg.Cluster.HTTPClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("peer answered %s", resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, err
	}
	return store.OpenEntry(raw)
}
