// Package service implements sdtd, the translation-as-a-service daemon: an
// HTTP front end that accepts guest programs (SimRISC-32 assembly or MiniC
// source) plus an {arch, mechanism spec, seed} tuple, executes them through
// the sdt pipeline on a bounded worker pool, and serves the full
// measurement — native baseline, SDT result, slowdown and IB profile — as
// JSON. Results are memoized in a content-addressed store (in-memory LRU
// over an optional on-disk layer, shared single-flight with the bench
// Runner), so identical submissions are served from cache across restarts
// and concurrent duplicates execute once. Execution is cancellable: each
// request carries a deadline that is plumbed as a context down into the
// dispatch loops of both the native machine and the SDT.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"sdt/internal/asm"
	"sdt/internal/cluster"
	"sdt/internal/hostarch"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/minic"
	"sdt/internal/profile"
	"sdt/internal/program"
)

// Request languages.
const (
	LangAsm   = "asm"
	LangMiniC = "minic"
)

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	// Name labels the program in errors and results (default "guest").
	Name string `json:"name,omitempty"`
	// Lang is the source language: "asm" (default) or "minic".
	Lang string `json:"lang,omitempty"`
	// Source is the guest program text.
	Source string `json:"source"`
	// Arch names the host cost model: "x86" (default), "sparc" or "arm",
	// each also reachable under its "-like" alias (e.g. "arm-like").
	Arch string `json:"arch,omitempty"`
	// Mech is the indirect-branch mechanism spec (default "ibtc:16384").
	Mech string `json:"mech,omitempty"`
	// Seed partitions the result key space; the pipeline is deterministic,
	// so distinct seeds produce identical measurements in distinct cache
	// entries (clients use it to force or segregate recomputation).
	Seed uint64 `json:"seed,omitempty"`
	// Limit is the instruction budget per execution (0 = default 2e9).
	Limit uint64 `json:"limit,omitempty"`
	// TimeoutMS bounds wall-clock execution for this request; 0 selects
	// the server default, and values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (req *RunRequest) withDefaults() {
	if req.Name == "" {
		req.Name = "guest"
	}
	if req.Lang == "" {
		req.Lang = LangAsm
	}
	if req.Arch == "" {
		req.Arch = "x86"
	}
	if req.Mech == "" {
		req.Mech = "ibtc:16384"
	}
}

// compile builds the program image for the request.
func (req *RunRequest) compile() (*program.Image, error) {
	switch req.Lang {
	case LangAsm:
		return asm.Assemble(req.Name, req.Source)
	case LangMiniC:
		return minic.CompileToImage(req.Name, req.Source)
	default:
		return nil, fmt.Errorf("unknown lang %q (want %q or %q)", req.Lang, LangAsm, LangMiniC)
	}
}

// key derives the content address of the request's result:
// hash(image bytes | arch | mech | seed | limit | cost-model version).
// Hashing the compiled image (not the source text) means formatting-only
// source changes still hit the cache, while anything that could change the
// measurement — including recalibrated cost models — misses.
func (req *RunRequest) key(img *program.Image) string {
	h := sha256.New()
	img.WriteTo(h)
	fmt.Fprintf(h, "|%s|%s|%d|%d|cm%d", req.Arch, req.Mech, req.Seed, req.Limit, hostarch.CostModelVersion)
	return hex.EncodeToString(h.Sum(nil))
}

// ExecSummary is one execution's result in the JSON response. Checksum is
// hex-formatted: it ranges over all 64 bits, which arbitrary JSON clients
// cannot round-trip as a number.
type ExecSummary struct {
	Cycles   uint64 `json:"cycles"`
	Instret  uint64 `json:"instret"`
	Checksum string `json:"checksum"`
	OutCount uint64 `json:"out_count"`
	ExitCode uint32 `json:"exit_code"`
}

func summarize(r machine.Result) ExecSummary {
	return ExecSummary{
		Cycles:   r.Cycles,
		Instret:  r.Instret,
		Checksum: fmt.Sprintf("0x%016x", r.Checksum),
		OutCount: r.OutCount,
		ExitCode: r.ExitCode,
	}
}

// RunProfile is the SDT execution profile in the JSON response.
type RunProfile struct {
	IBReturns         uint64  `json:"ib_returns"`
	IBJumps           uint64  `json:"ib_jumps"`
	IBCalls           uint64  `json:"ib_calls"`
	MechHits          uint64  `json:"mech_hits"`
	MechMisses        uint64  `json:"mech_misses"`
	HitRate           float64 `json:"hit_rate"`
	TranslatorEntries uint64  `json:"translator_entries"`
	Translations      uint64  `json:"translations"`
	TransInsts        uint64  `json:"trans_insts"`
	Flushes           uint64  `json:"flushes"`
	CyclesIB          uint64  `json:"cycles_ib"`
	CyclesCtx         uint64  `json:"cycles_ctx"`
	CyclesTrans       uint64  `json:"cycles_trans"`
}

func summarizeProfile(p *profile.Profile) RunProfile {
	return RunProfile{
		IBReturns:         p.IBExec[isa.IBReturn],
		IBJumps:           p.IBExec[isa.IBJump],
		IBCalls:           p.IBExec[isa.IBCall],
		MechHits:          p.MechHits,
		MechMisses:        p.MechMisses,
		HitRate:           p.HitRate(),
		TranslatorEntries: p.TranslatorEntries,
		Translations:      p.Translations,
		TransInsts:        p.TransInsts,
		Flushes:           p.Flushes,
		CyclesIB:          p.CyclesIB,
		CyclesCtx:         p.CyclesCtx,
		CyclesTrans:       p.CyclesTrans,
	}
}

// RunResult is the cacheable measurement: everything derived only from
// (image, arch, mech, seed, limit). It is what the content-addressed store
// persists, so identical submissions return byte-identical result objects.
type RunResult struct {
	Key      string      `json:"key"`
	Name     string      `json:"name"`
	Lang     string      `json:"lang"`
	Arch     string      `json:"arch"`
	Mech     string      `json:"mech"`
	Seed     uint64      `json:"seed"`
	Native   ExecSummary `json:"native"`
	SDT      ExecSummary `json:"sdt"`
	Slowdown float64     `json:"slowdown"`
	Profile  RunProfile  `json:"profile"`
}

// RunResponse is the body of a successful POST /v1/run.
type RunResponse struct {
	// Cached reports whether Result was served from the store (memory or
	// disk) rather than executed for this request.
	Cached bool `json:"cached"`
	// ElapsedMS is this request's wall-clock service time.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Result is the stored RunResult, verbatim.
	Result json.RawMessage `json:"result"`
}

// Error codes returned in ErrorInfo.Code.
const (
	CodeInvalidRequest   = "invalid_request"   // malformed JSON / unsupported fields
	CodeInvalidArgument  = "invalid_argument"  // unknown arch or mechanism spec
	CodeInvalidProgram   = "invalid_program"   // source failed to assemble/compile
	CodeQueueFull        = "queue_full"        // admission queue at capacity (retry later)
	CodeDraining         = "draining"          // server is shutting down
	CodeDeadlineExceeded = "deadline_exceeded" // run cancelled at its deadline
	CodeCanceled         = "canceled"          // client went away mid-run
	CodeLimitExceeded    = "limit_exceeded"    // instruction budget exhausted
	CodeRunFailed        = "run_failed"        // guest faulted
	CodeDivergence       = "divergence"        // SDT result != native result (a bug)
	CodeForbidden        = "forbidden"         // admin endpoint without a valid admin token
	CodeNotFound         = "not_found"         // referenced object does not exist
	CodeInternal         = "internal"          // panic or other server-side failure
)

// Health statuses reported by GET /healthz.
const (
	HealthOK       = "ok"       // fully operational (200)
	HealthDegraded = "degraded" // serving, but the disk store is bypassed (200)
	HealthDraining = "draining" // shutting down, stop routing here (503)
)

// StoreHealth is the result-store section of a Health report.
type StoreHealth struct {
	// Persistent reports whether the store was opened with a disk layer.
	Persistent bool `json:"persistent"`
	// Degraded reports whether the disk layer is currently bypassed by
	// its circuit breaker (memory-LRU-only operation).
	Degraded bool `json:"degraded"`
	// Corruptions counts entries that failed integrity verification.
	Corruptions uint64 `json:"corruptions"`
	// Quarantined counts corrupt entries preserved under quarantine/.
	Quarantined uint64 `json:"quarantined"`
	// DiskErrors counts disk reads/writes that failed outright.
	DiskErrors uint64 `json:"disk_errors"`
}

// Health is the body of GET /healthz. The HTTP status stays coarse for
// load balancers (200 while serving — including degraded — 503 while
// draining); the body carries the detail.
type Health struct {
	Status string      `json:"status"` // HealthOK, HealthDegraded or HealthDraining
	Store  StoreHealth `json:"store"`
	// Cluster is the per-peer fleet view when this node runs clustered
	// (absent single-node). Any down or breaker-guarded peer reports
	// the node degraded: it keeps serving, but results owned elsewhere
	// may be recomputed locally instead of fetched.
	Cluster []cluster.PeerHealth `json:"cluster,omitempty"`
	// ClusterEpoch is the ring epoch of this node's current membership
	// view (0 at boot; every join or leave increments it). All members
	// report the same epoch once a membership change has converged.
	ClusterEpoch uint64 `json:"cluster_epoch,omitempty"`
	// Replication is the configured replication factor (clustered only;
	// 1 = no replication).
	Replication int `json:"replication,omitempty"`
	// ReplStats snapshots the replication counters (clustered only).
	ReplStats *cluster.ReplStats `json:"replication_stats,omitempty"`
}

// MemberChange is the body of POST /v1/cluster/join and /leave: the
// base URL of the member being added or removed.
type MemberChange struct {
	URL string `json:"url"`
}

// MembershipUpdate is the body of POST /v1/cluster/membership — the
// authoritative membership at one ring epoch, broadcast by whichever
// node served a join or leave. Nodes apply it only if the epoch is
// newer than their current view.
type MembershipUpdate struct {
	Epoch uint64   `json:"epoch"`
	Peers []string `json:"peers"`
}

// MembershipResponse answers the membership endpoints with the view now
// in effect on the serving node.
type MembershipResponse struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// ErrorInfo is the machine-readable error in an ErrorResponse.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorInfo `json:"error"`
}
