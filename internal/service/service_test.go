package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// quickSrc is a small returns-dense program that halts on its own.
const quickSrc = `
main:
	li r10, 0
	li r11, 64
loop:
	mov a0, r10
	call double
	out rv
	addi r10, r10, 1
	blt r10, r11, loop
	halt
double:
	add rv, a0, a0
	ret
`

// spinSrc never halts; only a deadline, cancellation or the instruction
// budget stops it.
const spinSrc = `
main:
	li r10, 0
spin:
	addi r10, r10, 1
	jmp spin
`

// minicSrc exercises the MiniC front end.
const minicSrc = `
func twice(x) { return x + x; }
func main() { out twice(21); }
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req RunRequest) (int, []byte) {
	t.Helper()
	return submitCtx(t, context.Background(), ts, req)
}

func submitCtx(t *testing.T, ctx context.Context, ts *httptest.Server, req RunRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeRun(t *testing.T, data []byte) (RunResponse, RunResult) {
	t.Helper()
	var resp RunResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("decoding response %q: %v", data, err)
	}
	var res RunResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("decoding result %q: %v", resp.Result, err)
	}
	return resp, res
}

func decodeError(t *testing.T, data []byte) ErrorInfo {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("decoding error body %q: %v", data, err)
	}
	return e.Error
}

func TestRunColdThenCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := RunRequest{Name: "quick.s", Source: quickSrc, Arch: "x86", Mech: "ibtc:4096"}

	status, data := submit(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("cold submit: status %d, body %s", status, data)
	}
	resp1, res1 := decodeRun(t, data)
	if resp1.Cached {
		t.Error("first submission claims to be cached")
	}
	if res1.Slowdown <= 1 {
		t.Errorf("slowdown = %v, want > 1", res1.Slowdown)
	}
	if res1.Profile.IBReturns == 0 {
		t.Error("returns-dense program reports no return lookups")
	}
	if res1.SDT.Instret != res1.Native.Instret || res1.SDT.Checksum != res1.Native.Checksum {
		t.Errorf("sdt/native mismatch in result: %+v vs %+v", res1.SDT, res1.Native)
	}

	status, data = submit(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("warm submit: status %d, body %s", status, data)
	}
	resp2, _ := decodeRun(t, data)
	if !resp2.Cached {
		t.Error("second submission was not served from cache")
	}
	if !bytes.Equal(resp1.Result, resp2.Result) {
		t.Errorf("cached result differs:\n%s\n%s", resp1.Result, resp2.Result)
	}
	if got := s.met.runsTotal.total(); got != 1 {
		t.Errorf("runs executed = %d, want 1", got)
	}

	// The result is also addressable directly.
	hres, err := http.Get(ts.URL + "/v1/result/" + res1.Key)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := io.ReadAll(hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK || !bytes.Equal(direct, resp1.Result) {
		t.Errorf("GET /v1/result: status %d, body %s", hres.StatusCode, direct)
	}
}

func TestRunMiniC(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, data := submit(t, ts, RunRequest{Name: "t.mc", Lang: LangMiniC, Source: minicSrc, Mech: "sieve:64"})
	if status != http.StatusOK {
		t.Fatalf("minic submit: status %d, body %s", status, data)
	}
	_, res := decodeRun(t, data)
	if res.Native.OutCount != 1 {
		t.Errorf("out count = %d, want 1", res.Native.OutCount)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name     string
		req      RunRequest
		wantCode string
	}{
		{"bad arch", RunRequest{Source: quickSrc, Arch: "mips"}, CodeInvalidArgument},
		{"bad mech", RunRequest{Source: quickSrc, Mech: "warp:9"}, CodeInvalidArgument},
		{"bad asm", RunRequest{Source: "frobnicate r1, r2"}, CodeInvalidProgram},
		{"bad minic", RunRequest{Lang: LangMiniC, Source: "func {"}, CodeInvalidProgram},
		{"bad lang", RunRequest{Lang: "cobol", Source: quickSrc}, CodeInvalidProgram},
	}
	for _, tc := range cases {
		status, data := submit(t, ts, tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, status, data)
			continue
		}
		if e := decodeError(t, data); e.Code != tc.wantCode {
			t.Errorf("%s: code = %q, want %q", tc.name, e.Code, tc.wantCode)
		}
	}
}

// Identical concurrent submissions must collapse to a single execution.
func TestConcurrentSubmitStormDedups(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	req := RunRequest{Name: "storm.s", Source: quickSrc, Mech: "ibtc:1024"}

	const n = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	var cold int
	var results [][]byte
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, data := submit(t, ts, req)
			if status != http.StatusOK {
				t.Errorf("storm submit: status %d, body %s", status, data)
				return
			}
			resp, _ := decodeRun(t, data)
			mu.Lock()
			defer mu.Unlock()
			if !resp.Cached {
				cold++
			}
			results = append(results, resp.Result)
		}()
	}
	wg.Wait()

	if got := s.met.runsTotal.total(); got != 1 {
		t.Errorf("runs executed = %d, want 1 (dedup failed)", got)
	}
	if cold != 1 {
		t.Errorf("%d submissions reported cached=false, want exactly 1", cold)
	}
	for i := 1; i < len(results); i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("result %d differs from result 0", i)
		}
	}
}

// A deadline must stop a runaway guest mid-loop with a distinct error
// code, well before the instruction budget would.
func TestDeadlineExceededMidGuest(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	start := time.Now()
	status, data := submit(t, ts, RunRequest{Name: "spin.s", Source: spinSrc, TimeoutMS: 100})
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", status, data)
	}
	if e := decodeError(t, data); e.Code != CodeDeadlineExceeded {
		t.Errorf("code = %q, want %q", e.Code, CodeDeadlineExceeded)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline response took %v, want well under 2s for a 100ms deadline", elapsed)
	}
	if got := s.met.runsTotal.get(outcomeDeadline).Value(); got != 1 {
		t.Errorf("deadline outcome count = %d, want 1", got)
	}
}

// The instruction budget is still enforced and maps to its own code.
func TestInstructionLimitExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, data := submit(t, ts, RunRequest{Name: "spin.s", Source: spinSrc, Limit: 50_000})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %s)", status, data)
	}
	if e := decodeError(t, data); e.Code != CodeLimitExceeded {
		t.Errorf("code = %q, want %q", e.Code, CodeLimitExceeded)
	}
}

// spinReq returns a unique never-halting request (distinct cache keys so
// submissions do not dedup).
func spinReq(i int, timeoutMS int64) RunRequest {
	src := strings.Replace(spinSrc, "li r10, 0", fmt.Sprintf("li r10, %d", i), 1)
	return RunRequest{Name: fmt.Sprintf("spin%d.s", i), Source: src, TimeoutMS: timeoutMS}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// With one worker and a one-slot queue, a third distinct submission must
// be rejected with 429 + Retry-After.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// These run until the test cancels them; status is irrelevant.
			submitCancelable(t, ctx, ts, spinReq(i, 30_000))
		}(i)
	}
	// One job on the worker, one in the queue.
	waitFor(t, "worker busy", func() bool { return s.inflight.Load() == 1 })
	waitFor(t, "queue full", func() bool { return s.pool.depth() == 1 })

	body, _ := json.Marshal(spinReq(99, 30_000))
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, data)
	}
	// Retry-After must be present and a computed, sane backoff: an
	// integer number of seconds within the documented [1, 30] bounds.
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Error("429 response carries no Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 30 {
		t.Errorf("Retry-After = %q, want an integer in [1, 30]", ra)
	}
	if e := decodeError(t, data); e.Code != CodeQueueFull {
		t.Errorf("code = %q, want %q", e.Code, CodeQueueFull)
	}

	cancel() // release the stuck jobs; VM stops at the next ctx check
	wg.Wait()
}

// submitCancelable is submit but tolerant of the transport error produced
// when ctx is cancelled mid-request.
func submitCancelable(t *testing.T, ctx context.Context, ts *httptest.Server, req RunRequest) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return // cancelled — expected
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Draining must finish in-flight work while rejecting new submissions.
func TestGracefulDrainFinishesInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	// A finite but slow job: ~1.6M instructions.
	slow := RunRequest{Name: "slow.s", Source: `
main:
	li r10, 0
	lui r11, 12
loop:
	addi r10, r10, 1
	blt r10, r11, loop
	out r10
	halt
`}
	type outcome struct {
		status int
		data   []byte
	}
	ch := make(chan outcome, 1)
	go func() {
		status, data := submit(t, ts, slow)
		ch <- outcome{status, data}
	}()
	waitFor(t, "job in flight", func() bool { return s.inflight.Load() >= 1 })

	s.StartDrain()

	// New work is refused...
	status, data := submit(t, ts, RunRequest{Source: quickSrc})
	if status != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503 (body %s)", status, data)
	}
	if e := decodeError(t, data); e.Code != CodeDraining {
		t.Errorf("draining code = %q, want %q", e.Code, CodeDraining)
	}
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hres.StatusCode)
	}

	// ...but the in-flight job completes.
	got := <-ch
	if got.status != http.StatusOK {
		t.Fatalf("in-flight job during drain: status %d, body %s", got.status, got.data)
	}
	s.Close() // must not hang
}

// Results must survive a full server restart via the on-disk layer.
func TestDiskStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := RunRequest{Name: "persist.s", Source: quickSrc, Mech: "retcache:256+ibtc:256"}

	s1, ts1 := newTestServer(t, Config{StoreDir: dir})
	status, data := submit(t, ts1, req)
	if status != http.StatusOK {
		t.Fatalf("first server submit: status %d, body %s", status, data)
	}
	resp1, _ := decodeRun(t, data)
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	status, data = submit(t, ts2, req)
	if status != http.StatusOK {
		t.Fatalf("restarted server submit: status %d, body %s", status, data)
	}
	resp2, _ := decodeRun(t, data)
	if !resp2.Cached {
		t.Error("restarted server did not serve from the on-disk store")
	}
	if !bytes.Equal(resp1.Result, resp2.Result) {
		t.Errorf("result changed across restart:\n%s\n%s", resp1.Result, resp2.Result)
	}
	if st := s2.Store().Stats(); st.DiskHits == 0 {
		t.Errorf("store stats after restart: %+v, want a disk hit", st)
	}
	if got := s2.met.runsTotal.total(); got != 0 {
		t.Errorf("restarted server executed %d runs, want 0", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	submit(t, ts, RunRequest{Source: quickSrc})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		`sdtd_requests_total{path="/v1/run",code="200"} 1`,
		`sdtd_runs_total{outcome="ok"} 1`,
		"sdtd_run_latency_seconds_count 1",
		"sdtd_translated_fragments_total",
		`sdtd_ib_lookups_total{mech="ibtc:16384",kind="return"}`,
		"sdtd_cache_misses_total 1",
		"sdtd_queue_depth 0",
		"sdtd_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n--- exposition:\n%s", want, text)
		}
	}
}

// A panicking job must produce a 500 for its caller and leave the worker
// alive for the next job.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// Reach into the pool directly with a job that panics; the HTTP
	// surface has no intentional panic path.
	j := newJob(context.Background(), func(context.Context) ([]byte, error) {
		panic("boom")
	})
	if err := s.pool.submit(j); err != nil {
		t.Fatal(err)
	}
	<-j.done
	if j.err == nil || !strings.Contains(j.err.Error(), "boom") {
		t.Fatalf("panicking job error = %v, want wrapped panic", j.err)
	}
	// The single worker must still serve real traffic.
	status, data := submit(t, ts, RunRequest{Source: quickSrc})
	if status != http.StatusOK {
		t.Fatalf("submit after panic: status %d, body %s", status, data)
	}
}
