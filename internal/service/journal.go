package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"sdt/internal/faultinject"
	"sdt/internal/sweep"
)

// siteJournal is the fault-injection site armed around sweep-journal
// persistence (the marshalled write and its committing rename).
const siteJournal = "service.sweep.journal"

// errJournalMismatch marks a resume whose journal was written by a sweep
// with a different matrix/seed/limit — replaying it would serve cells
// from the wrong experiment.
var errJournalMismatch = errors.New("service: sweep id was journaled for a different request")

// journalCell records one completed cell: its matrix index and the
// content-store key its result bytes live under.
type journalCell struct {
	Index int    `json:"index"`
	Key   string `json:"key"`
}

// journalFile is the on-disk shape of a sweep checkpoint.
type journalFile struct {
	ID     string        `json:"id"`
	Matrix string        `json:"matrix"`
	Cells  []journalCell `json:"cells"`
}

// sweepJournal checkpoints completed cells for one sweep ID. Every
// completed cell rewrites the whole journal through a temp file and an
// atomic rename (matrices are bounded by MaxSweepCells, so the rewrite
// is small), meaning a killed connection or daemon loses at most the
// record of cells finishing right then — never a torn journal. Journal
// persistence is best-effort: a failed write degrades resume coverage,
// not the sweep itself.
type sweepJournal struct {
	path   string
	state  journalFile
	have   map[int]string // index -> store key, for resume replay
	faults *faultinject.Injector
	onErr  func(error) // receives persistence failures (metrics + log)

	// onPersist receives the marshalled journal after each successful
	// local write. The cluster coordinator hooks it to replicate the
	// journal to ring successors, making the checkpoint adoptable by a
	// survivor if this coordinator dies (docs/CLUSTER.md).
	onPersist func(data []byte)
}

// sweepDigest canonically hashes the request fields that define cell
// identity, binding a journal to its matrix: same workloads, archs,
// mechs, scales, seed and limit — per-cell timeouts may differ between
// the original run and the resume.
func sweepDigest(m sweep.Matrix, seed, limit uint64) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	enc.Encode(m)
	fmt.Fprintf(h, "|%d|%d|cells", seed, limit)
	return hex.EncodeToString(h.Sum(nil))
}

// validSweepID accepts client-chosen sweep IDs that are safe as file
// names: 1-64 chars of [A-Za-z0-9._-], starting with an alphanumeric.
func validSweepID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

// openSweepJournal loads (or initializes) the checkpoint for id under
// dir. An existing journal for a different matrix digest is refused with
// errJournalMismatch; an unreadable or torn journal is discarded and
// restarted fresh — checkpointing must never make a sweep less available
// than having no checkpoint at all.
func openSweepJournal(dir, id, digest string, faults *faultinject.Injector, onErr func(error)) (*sweepJournal, error) {
	j := &sweepJournal{
		path:   filepath.Join(dir, id+".json"),
		state:  journalFile{ID: id, Matrix: digest},
		have:   make(map[int]string),
		faults: faults,
		onErr:  onErr,
	}
	data, err := os.ReadFile(j.path)
	if errors.Is(err, fs.ErrNotExist) {
		return j, nil
	}
	if err != nil {
		onErr(fmt.Errorf("reading sweep journal %s: %w", id, err))
		return j, nil
	}
	var prev journalFile
	if err := json.Unmarshal(data, &prev); err != nil {
		onErr(fmt.Errorf("decoding sweep journal %s: %w", id, err))
		return j, nil
	}
	if prev.Matrix != digest {
		return nil, errJournalMismatch
	}
	j.state.Cells = prev.Cells
	for _, c := range prev.Cells {
		j.have[c.Index] = c.Key
	}
	return j, nil
}

// record checkpoints one completed cell and persists the journal.
func (j *sweepJournal) record(index int, key string) {
	if _, dup := j.have[index]; dup {
		return
	}
	j.have[index] = key
	j.state.Cells = append(j.state.Cells, journalCell{Index: index, Key: key})
	j.persist()
}

// persist writes the journal atomically (temp file + rename), reporting
// failures — including injected ones — through onErr.
func (j *sweepJournal) persist() {
	if j.faults != nil {
		if err := j.faults.Fail(siteJournal); err != nil {
			j.onErr(fmt.Errorf("writing sweep journal %s: %w", j.state.ID, err))
			return
		}
	}
	data, err := json.Marshal(j.state)
	if err == nil {
		err = os.MkdirAll(filepath.Dir(j.path), 0o755)
	}
	var tmp *os.File
	if err == nil {
		tmp, err = os.CreateTemp(filepath.Dir(j.path), "."+j.state.ID+".tmp*")
	}
	if err == nil {
		_, werr := tmp.Write(data)
		cerr := tmp.Close()
		if werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), j.path)
		}
		if werr != nil {
			os.Remove(tmp.Name())
		}
		err = werr
	}
	if err != nil {
		j.onErr(fmt.Errorf("writing sweep journal %s: %w", j.state.ID, err))
		return
	}
	if j.onPersist != nil {
		j.onPersist(data)
	}
}

// remove deletes the journal once the sweep has fully completed.
func (j *sweepJournal) remove() {
	if err := os.Remove(j.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		j.onErr(fmt.Errorf("removing sweep journal %s: %w", j.state.ID, err))
	}
}
