package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"sdt/internal/faultinject"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/program"
	"sdt/internal/sweep"
	"sdt/internal/workload"
)

// LangWorkload marks results computed from a named generated workload
// rather than client-supplied source. It appears in RunResult.Lang for
// sweep cells; it is not accepted as a RunRequest.Lang.
const LangWorkload = "workload"

// sweepRetries is how many times a cell that bounced off the admission
// queue (429 territory on /v1/run) is retried before its error record is
// emitted. Queue-full is the only transient error class: the sweep itself
// occupies workers, so a full queue clears as cells finish.
const sweepRetries = 3

// SweepRequest is the body of POST /v1/sweep: a (workloads × archs ×
// mechs × scales) matrix over the built-in workload generators. Cells are
// validated individually — an unknown workload, arch, or mechanism spec
// poisons only its own cells, never the batch.
type SweepRequest struct {
	// ID, when set, checkpoints the sweep: completed cells are journaled
	// under the on-disk store, and a later request with the same ID (or
	// ?resume=<id>) replays them from the store instead of re-executing.
	// Requires an on-disk store; 1-64 chars of [A-Za-z0-9._-] starting
	// with an alphanumeric. The journal is deleted once every cell has
	// succeeded.
	ID string `json:"id,omitempty"`
	// Workloads names built-in workload generators (required).
	Workloads []string `json:"workloads"`
	// Archs names host cost models (default ["x86"]).
	Archs []string `json:"archs,omitempty"`
	// Mechs lists IB mechanism specs (default ["ibtc:16384"]).
	Mechs []string `json:"mechs,omitempty"`
	// Scales lists workload scales; empty selects each workload's default
	// (scale 0). Scales must be non-negative.
	Scales []int `json:"scales,omitempty"`
	// Seed, Limit and TimeoutMS apply to every cell, with /v1/run
	// semantics (TimeoutMS bounds each cell, not the whole sweep).
	Seed      uint64 `json:"seed,omitempty"`
	Limit     uint64 `json:"limit,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func (req *SweepRequest) matrix() sweep.Matrix {
	m := sweep.Matrix{
		Workloads: req.Workloads,
		Archs:     req.Archs,
		Mechs:     req.Mechs,
		Scales:    req.Scales,
	}
	if len(m.Archs) == 0 {
		m.Archs = []string{"x86"}
	}
	if len(m.Mechs) == 0 {
		m.Mechs = []string{"ibtc:16384"}
	}
	return m
}

// NDJSON stream records. Every record carries Type; clients switch on it
// and must ignore unknown types.
type (
	// SweepStart is the first record: the expanded cell count, and — on
	// a checkpointed resume — how many cells will be replayed from the
	// journal rather than executed.
	SweepStart struct {
		Type    string `json:"type"` // "start"
		Total   int    `json:"total"`
		Resumed int    `json:"resumed,omitempty"`
	}
	// SweepCellRecord reports one finished cell, in completion order
	// (Index places it in the deterministic matrix order: workloads,
	// then archs, then mechs, then scales). Exactly one of Result and
	// Error is set.
	SweepCellRecord struct {
		Type     string `json:"type"` // "cell"
		Index    int    `json:"index"`
		Workload string `json:"workload"`
		Arch     string `json:"arch"`
		Mech     string `json:"mech"`
		Scale    int    `json:"scale,omitempty"`
		// Key is the result's content-store address. It is set on
		// /v1/sweep/shard streams — the cluster coordinator journals it
		// — and omitted on client-facing /v1/sweep streams.
		Key       string          `json:"key,omitempty"`
		Cached    bool            `json:"cached,omitempty"`
		Replayed  bool            `json:"replayed,omitempty"`
		Attempts  int             `json:"attempts"`
		ElapsedMS float64         `json:"elapsed_ms"`
		Result    json.RawMessage `json:"result,omitempty"`
		Error     *ErrorInfo      `json:"error,omitempty"`
	}
	// SweepProgress is a heartbeat emitted between cells on slow sweeps
	// so proxies do not idle out the connection.
	SweepProgress struct {
		Type   string `json:"type"` // "progress"
		Done   int    `json:"done"`
		Errors int    `json:"errors"`
		Total  int    `json:"total"`
	}
	// SweepDone is the final record. Canceled counts cells that never
	// ran (or were cut short) because the client went away or a cell
	// deadline collapsed the request context.
	SweepDone struct {
		Type      string  `json:"type"` // "done"
		Done      int     `json:"done"`
		Errors    int     `json:"errors"`
		Canceled  int     `json:"canceled"`
		Replayed  int     `json:"replayed,omitempty"`
		Total     int     `json:"total"`
		ElapsedMS float64 `json:"elapsed_ms"`
	}
)

// cellValue is a sweep engine result: the stored measurement bytes, the
// content-store key they live under (what the checkpoint journal
// records), and whether they came from the store.
type cellValue struct {
	key    string
	data   []byte
	cached bool
}

// idxCell carries a cell through the engine together with its position
// in the full matrix, so a resumed sweep — which only schedules the
// unfinished remainder — still reports original matrix indices.
type idxCell struct {
	idx  int
	cell sweep.Cell
}

// errCellInvalid marks a cell that failed validation (unknown workload,
// arch, or mechanism spec) rather than execution.
var errCellInvalid = errors.New("invalid sweep cell")

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.setRetryAfter(w)
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	var req SweepRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	if len(req.Workloads) == 0 {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "workloads must be non-empty")
		return
	}
	for _, sc := range req.Scales {
		if sc < 0 {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("negative scale %d", sc))
			return
		}
	}
	m := req.matrix()
	if n := m.Size(); n > s.cfg.MaxSweepCells {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("sweep expands to %d cells, limit %d", n, s.cfg.MaxSweepCells))
		return
	}
	cells := m.Cells()

	// Checkpointing: ?resume=<id> overrides (or supplies) the body ID; an
	// ID binds this sweep to a journal of completed cells so a broken
	// connection can be resumed without re-executing finished work.
	if id := r.URL.Query().Get("resume"); id != "" {
		req.ID = id
	}
	var jr *sweepJournal
	if req.ID != "" {
		if !validSweepID(req.ID) {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
				"sweep id must be 1-64 chars of [A-Za-z0-9._-] starting with an alphanumeric")
			return
		}
		if s.cfg.StoreDir == "" {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
				"sweep checkpointing requires an on-disk store")
			return
		}
		var jerr error
		jr, jerr = openSweepJournal(filepath.Join(s.cfg.StoreDir, "sweeps"),
			req.ID, sweepDigest(m, req.Seed, req.Limit), s.cfg.Faults, s.journalError)
		if jerr != nil {
			// The only surfaced open error is a matrix mismatch — resuming
			// someone else's journal would serve cells from the wrong
			// experiment.
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, jerr.Error())
			return
		}
	}

	// Split the matrix into journaled cells replayable from the store and
	// the remainder to execute. A journaled cell whose stored bytes are
	// gone (evicted memory-only copy, quarantined entry) falls back to
	// execution — the journal is an optimization, never an authority.
	type replayedCell struct {
		idx  int
		data []byte
	}
	var replays []replayedCell
	work := make([]idxCell, 0, len(cells))
	for i, c := range cells {
		if jr != nil {
			if key, ok := jr.have[i]; ok {
				if data, ok := s.store.Get(key); ok {
					replays = append(replays, replayedCell{idx: i, data: data})
					continue
				}
			}
		}
		work = append(work, idxCell{idx: i, cell: c})
	}

	// Register with the drain machinery: a SIGTERM mid-sweep cancels
	// this context, the engine stops scheduling, unfinished cells emit
	// cancellation records, and the journal gets a final flush below —
	// leaving a resumable checkpoint instead of an abandoned matrix.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	sweepID := s.registerSweep(cancel)
	defer s.unregisterSweep(sweepID)

	// Committed to streaming from here: request-level errors are over,
	// everything else is a per-cell record on a 200.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.countRequest(r, http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(SweepStart{Type: "start", Total: len(cells), Resumed: len(replays)})

	var done, errCount, canceled int
	for _, rp := range replays {
		c := cells[rp.idx]
		emit(SweepCellRecord{
			Type:     "cell",
			Index:    rp.idx,
			Workload: c.Workload,
			Arch:     c.Arch,
			Mech:     c.Mech,
			Scale:    c.Scale,
			Cached:   true,
			Replayed: true,
			Result:   rp.data,
		})
		done++
		s.met.sweepCells.get(outcomeOK).Inc()
		s.met.sweepReplayed.Inc()
	}

	eng := &sweep.Engine[idxCell, cellValue]{
		Workers: s.cfg.Workers,
		Retries: sweepRetries,
		IsTransient: func(err error) bool {
			return errors.Is(err, errQueueFull) || faultinject.IsTransient(err)
		},
		Exec: func(ctx context.Context, ic idxCell) (cellValue, error) {
			return s.runCell(ctx, ic.cell, &req)
		},
	}
	if s.cfg.Faults != nil {
		eng.Faults = s.cfg.Faults
	}

	// The engine emits from one goroutine; the handler loop interleaves
	// its outcomes with heartbeat ticks and owns all writes to w (and all
	// journal updates).
	outcomes := make(chan sweep.Outcome[idxCell, cellValue])
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- eng.Stream(ctx, work, func(o sweep.Outcome[idxCell, cellValue]) {
			outcomes <- o
		})
		close(outcomes)
	}()
	heartbeat := time.NewTicker(s.cfg.SweepHeartbeat)
	defer heartbeat.Stop()

	for outcomes != nil {
		select {
		case o, ok := <-outcomes:
			if !ok {
				outcomes = nil
				continue
			}
			rec := SweepCellRecord{
				Type:      "cell",
				Index:     o.Item.idx,
				Workload:  o.Item.cell.Workload,
				Arch:      o.Item.cell.Arch,
				Mech:      o.Item.cell.Mech,
				Scale:     o.Item.cell.Scale,
				Cached:    o.Result.cached,
				Attempts:  o.Attempts,
				ElapsedMS: float64(o.Elapsed.Microseconds()) / 1000,
			}
			switch {
			case o.Err == nil:
				rec.Result = o.Result.data
				done++
				s.met.sweepCells.get(outcomeOK).Inc()
				if jr != nil {
					jr.record(o.Item.idx, o.Result.key)
				}
			case errors.Is(o.Err, context.Canceled):
				rec.Error = &ErrorInfo{Code: CodeCanceled, Message: o.Err.Error()}
				canceled++
				s.met.sweepCells.get(outcomeCanceled).Inc()
			case errors.Is(o.Err, errCellInvalid):
				rec.Error = &ErrorInfo{Code: CodeInvalidArgument, Message: o.Err.Error()}
				errCount++
				s.met.sweepCells.get(outcomeError).Inc()
			default:
				_, code := mapError(o.Err)
				rec.Error = &ErrorInfo{Code: code, Message: o.Err.Error()}
				errCount++
				s.met.sweepCells.get(outcomeError).Inc()
			}
			emit(rec)
		case <-heartbeat.C:
			emit(SweepProgress{Type: "progress", Done: done, Errors: errCount, Total: len(cells)})
		}
	}
	err := <-streamErr
	if jr != nil {
		if done == len(cells) {
			// Every cell succeeded: the checkpoint has served its purpose.
			// A sweep with errors keeps its journal, so a retry under the
			// same ID replays the successes and re-attempts only the errors.
			jr.remove()
		} else {
			// Incomplete (errors, cancellation, drain): flush once more so
			// the journal durably covers every recorded cell even if an
			// earlier best-effort persist failed mid-sweep.
			jr.persist()
		}
	}
	emit(SweepDone{
		Type:      "done",
		Done:      done,
		Errors:    errCount,
		Canceled:  canceled,
		Replayed:  len(replays),
		Total:     len(cells),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
	s.met.sweepsTotal.get(outcomeLabel(err)).Inc()
	s.cfg.Log.Printf("sweep %d cells: done=%d errors=%d canceled=%d replayed=%d elapsed=%s",
		len(cells), done, errCount, canceled, len(replays), time.Since(start).Round(time.Millisecond))
}

// journalError counts and logs a best-effort journal failure.
func (s *Server) journalError(err error) {
	s.met.journalErrs.Inc()
	s.cfg.Log.Printf("sweep journal: %v", err)
}

// prepareCell validates one cell and builds its run request and
// compiled image (memoized across cells sharing workload|scale). It is
// shared by cell execution and by the cluster coordinator's planning
// pass, so both derive identical content-store keys.
func (s *Server) prepareCell(ctx context.Context, c sweep.Cell, req *SweepRequest) (*RunRequest, *program.Image, error) {
	spec, err := workload.Get(c.Workload)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", errCellInvalid, err)
	}
	if _, err := hostarch.ByName(c.Arch); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", errCellInvalid, err)
	}
	if _, err := ib.Parse(c.Mech); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", errCellInvalid, err)
	}
	img, _, err := s.images.Do(ctx, fmt.Sprintf("%s|%d", c.Workload, c.Scale), func() (*program.Image, error) {
		return spec.Image(c.Scale)
	})
	if err != nil {
		return nil, nil, err
	}
	rr := &RunRequest{
		Name:  c.Workload,
		Lang:  LangWorkload,
		Arch:  c.Arch,
		Mech:  c.Mech,
		Seed:  req.Seed,
		Limit: req.Limit,
	}
	return rr, img, nil
}

// runCell executes one cell through the same content-addressed store tier
// as /v1/run: the cell key is derived from the workload's compiled image,
// so a sweep cell and a direct submission of the same program share one
// cache entry, and duplicate cells across concurrent sweeps single-flight.
func (s *Server) runCell(ctx context.Context, c sweep.Cell, req *SweepRequest) (cellValue, error) {
	rr, img, err := s.prepareCell(ctx, c, req)
	if err != nil {
		return cellValue{}, err
	}
	// Scale participates in the key through the image bytes themselves:
	// a different scale assembles to a different image.
	key := rr.key(img)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	cellCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	data, hit, err := s.store.Do(cellCtx, key, func() ([]byte, error) {
		return s.execute(cellCtx, key, img, rr)
	})
	if err != nil {
		return cellValue{}, err
	}
	return cellValue{key: key, data: data, cached: hit}, nil
}
