package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/program"
	"sdt/internal/sweep"
	"sdt/internal/workload"
)

// LangWorkload marks results computed from a named generated workload
// rather than client-supplied source. It appears in RunResult.Lang for
// sweep cells; it is not accepted as a RunRequest.Lang.
const LangWorkload = "workload"

// sweepRetries is how many times a cell that bounced off the admission
// queue (429 territory on /v1/run) is retried before its error record is
// emitted. Queue-full is the only transient error class: the sweep itself
// occupies workers, so a full queue clears as cells finish.
const sweepRetries = 3

// SweepRequest is the body of POST /v1/sweep: a (workloads × archs ×
// mechs × scales) matrix over the built-in workload generators. Cells are
// validated individually — an unknown workload, arch, or mechanism spec
// poisons only its own cells, never the batch.
type SweepRequest struct {
	// Workloads names built-in workload generators (required).
	Workloads []string `json:"workloads"`
	// Archs names host cost models (default ["x86"]).
	Archs []string `json:"archs,omitempty"`
	// Mechs lists IB mechanism specs (default ["ibtc:16384"]).
	Mechs []string `json:"mechs,omitempty"`
	// Scales lists workload scales; empty selects each workload's default
	// (scale 0). Scales must be non-negative.
	Scales []int `json:"scales,omitempty"`
	// Seed, Limit and TimeoutMS apply to every cell, with /v1/run
	// semantics (TimeoutMS bounds each cell, not the whole sweep).
	Seed      uint64 `json:"seed,omitempty"`
	Limit     uint64 `json:"limit,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func (req *SweepRequest) matrix() sweep.Matrix {
	m := sweep.Matrix{
		Workloads: req.Workloads,
		Archs:     req.Archs,
		Mechs:     req.Mechs,
		Scales:    req.Scales,
	}
	if len(m.Archs) == 0 {
		m.Archs = []string{"x86"}
	}
	if len(m.Mechs) == 0 {
		m.Mechs = []string{"ibtc:16384"}
	}
	return m
}

// NDJSON stream records. Every record carries Type; clients switch on it
// and must ignore unknown types.
type (
	// SweepStart is the first record: the expanded cell count.
	SweepStart struct {
		Type  string `json:"type"` // "start"
		Total int    `json:"total"`
	}
	// SweepCellRecord reports one finished cell, in completion order
	// (Index places it in the deterministic matrix order: workloads,
	// then archs, then mechs, then scales). Exactly one of Result and
	// Error is set.
	SweepCellRecord struct {
		Type      string          `json:"type"` // "cell"
		Index     int             `json:"index"`
		Workload  string          `json:"workload"`
		Arch      string          `json:"arch"`
		Mech      string          `json:"mech"`
		Scale     int             `json:"scale,omitempty"`
		Cached    bool            `json:"cached,omitempty"`
		Attempts  int             `json:"attempts"`
		ElapsedMS float64         `json:"elapsed_ms"`
		Result    json.RawMessage `json:"result,omitempty"`
		Error     *ErrorInfo      `json:"error,omitempty"`
	}
	// SweepProgress is a heartbeat emitted between cells on slow sweeps
	// so proxies do not idle out the connection.
	SweepProgress struct {
		Type   string `json:"type"` // "progress"
		Done   int    `json:"done"`
		Errors int    `json:"errors"`
		Total  int    `json:"total"`
	}
	// SweepDone is the final record. Canceled counts cells that never
	// ran (or were cut short) because the client went away or a cell
	// deadline collapsed the request context.
	SweepDone struct {
		Type      string  `json:"type"` // "done"
		Done      int     `json:"done"`
		Errors    int     `json:"errors"`
		Canceled  int     `json:"canceled"`
		Total     int     `json:"total"`
		ElapsedMS float64 `json:"elapsed_ms"`
	}
)

// cellValue is a sweep engine result: the stored measurement bytes plus
// whether they came from the store.
type cellValue struct {
	data   []byte
	cached bool
}

// errCellInvalid marks a cell that failed validation (unknown workload,
// arch, or mechanism spec) rather than execution.
var errCellInvalid = errors.New("invalid sweep cell")

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.setRetryAfter(w)
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	var req SweepRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	if len(req.Workloads) == 0 {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "workloads must be non-empty")
		return
	}
	for _, sc := range req.Scales {
		if sc < 0 {
			s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("negative scale %d", sc))
			return
		}
	}
	m := req.matrix()
	if n := m.Size(); n > s.cfg.MaxSweepCells {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("sweep expands to %d cells, limit %d", n, s.cfg.MaxSweepCells))
		return
	}
	cells := m.Cells()

	// Committed to streaming from here: request-level errors are over,
	// everything else is a per-cell record on a 200.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.countRequest(r, http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(SweepStart{Type: "start", Total: len(cells)})

	eng := &sweep.Engine[sweep.Cell, cellValue]{
		Workers: s.cfg.Workers,
		Retries: sweepRetries,
		IsTransient: func(err error) bool {
			return errors.Is(err, errQueueFull)
		},
		Exec: func(ctx context.Context, c sweep.Cell) (cellValue, error) {
			return s.runCell(ctx, c, &req)
		},
	}

	// The engine emits from one goroutine; the handler loop interleaves
	// its outcomes with heartbeat ticks and owns all writes to w.
	outcomes := make(chan sweep.Outcome[sweep.Cell, cellValue])
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- eng.Stream(r.Context(), cells, func(o sweep.Outcome[sweep.Cell, cellValue]) {
			outcomes <- o
		})
		close(outcomes)
	}()
	heartbeat := time.NewTicker(s.cfg.SweepHeartbeat)
	defer heartbeat.Stop()

	var done, errCount, canceled int
	for outcomes != nil {
		select {
		case o, ok := <-outcomes:
			if !ok {
				outcomes = nil
				continue
			}
			rec := SweepCellRecord{
				Type:      "cell",
				Index:     o.Index,
				Workload:  o.Item.Workload,
				Arch:      o.Item.Arch,
				Mech:      o.Item.Mech,
				Scale:     o.Item.Scale,
				Cached:    o.Result.cached,
				Attempts:  o.Attempts,
				ElapsedMS: float64(o.Elapsed.Microseconds()) / 1000,
			}
			switch {
			case o.Err == nil:
				rec.Result = o.Result.data
				done++
				s.met.sweepCells.get(outcomeOK).Inc()
			case errors.Is(o.Err, context.Canceled):
				rec.Error = &ErrorInfo{Code: CodeCanceled, Message: o.Err.Error()}
				canceled++
				s.met.sweepCells.get(outcomeCanceled).Inc()
			case errors.Is(o.Err, errCellInvalid):
				rec.Error = &ErrorInfo{Code: CodeInvalidArgument, Message: o.Err.Error()}
				errCount++
				s.met.sweepCells.get(outcomeError).Inc()
			default:
				_, code := mapError(o.Err)
				rec.Error = &ErrorInfo{Code: code, Message: o.Err.Error()}
				errCount++
				s.met.sweepCells.get(outcomeError).Inc()
			}
			emit(rec)
		case <-heartbeat.C:
			emit(SweepProgress{Type: "progress", Done: done, Errors: errCount, Total: len(cells)})
		}
	}
	err := <-streamErr
	emit(SweepDone{
		Type:      "done",
		Done:      done,
		Errors:    errCount,
		Canceled:  canceled,
		Total:     len(cells),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
	s.met.sweepsTotal.get(outcomeLabel(err)).Inc()
	s.cfg.Log.Printf("sweep %d cells: done=%d errors=%d canceled=%d elapsed=%s",
		len(cells), done, errCount, canceled, time.Since(start).Round(time.Millisecond))
}

// runCell executes one cell through the same content-addressed store tier
// as /v1/run: the cell key is derived from the workload's compiled image,
// so a sweep cell and a direct submission of the same program share one
// cache entry, and duplicate cells across concurrent sweeps single-flight.
func (s *Server) runCell(ctx context.Context, c sweep.Cell, req *SweepRequest) (cellValue, error) {
	spec, err := workload.Get(c.Workload)
	if err != nil {
		return cellValue{}, fmt.Errorf("%w: %v", errCellInvalid, err)
	}
	if _, err := hostarch.ByName(c.Arch); err != nil {
		return cellValue{}, fmt.Errorf("%w: %v", errCellInvalid, err)
	}
	if _, err := ib.Parse(c.Mech); err != nil {
		return cellValue{}, fmt.Errorf("%w: %v", errCellInvalid, err)
	}
	img, _, err := s.images.Do(ctx, fmt.Sprintf("%s|%d", c.Workload, c.Scale), func() (*program.Image, error) {
		return spec.Image(c.Scale)
	})
	if err != nil {
		return cellValue{}, err
	}
	rr := &RunRequest{
		Name:  c.Workload,
		Lang:  LangWorkload,
		Arch:  c.Arch,
		Mech:  c.Mech,
		Seed:  req.Seed,
		Limit: req.Limit,
	}
	// Scale participates in the key through the image bytes themselves:
	// a different scale assembles to a different image.
	key := rr.key(img)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	cellCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	data, hit, err := s.store.Do(cellCtx, key, func() ([]byte, error) {
		return s.execute(cellCtx, key, img, rr)
	})
	if err != nil {
		return cellValue{}, err
	}
	return cellValue{data: data, cached: hit}, nil
}
