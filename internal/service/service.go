package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdt/internal/cluster"
	"sdt/internal/core"
	"sdt/internal/faultinject"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/program"
	"sdt/internal/store"
)

// siteJob is the fault-injection site at the worker job boundary,
// consulted once per job after panic isolation is armed — so an injected
// panic exercises the same recovery path a real one would.
const siteJob = "service.job"

// errJobPanic marks a job that panicked; the worker recovered it and the
// pool stayed up.
var errJobPanic = errors.New("service: job panicked")

// errDivergence marks an SDT run whose architectural result differed from
// the native baseline — a translator bug, never a client error.
var errDivergence = errors.New("service: translated execution diverged from native")

func describePanic(r any) string { return fmt.Sprintf("panic: %v", r) }

// Config parameterizes a Server.
type Config struct {
	// Workers is the execution pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (0 = 64).
	// Submissions beyond it receive 429 + Retry-After.
	QueueDepth int
	// StoreDir is the on-disk result store root ("" = memory only).
	StoreDir string
	// MemEntries is the in-memory result LRU capacity (0 = 1024, < 0 =
	// unbounded).
	MemEntries int
	// DefaultTimeout bounds a run when the request carries no timeout
	// (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps any request-supplied timeout (0 = 2m).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds the request body (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxSweepCells bounds how many cells one POST /v1/sweep may expand
	// to (0 = 2048).
	MaxSweepCells int
	// SweepHeartbeat is the interval between progress records on an idle
	// sweep stream (0 = 5s).
	SweepHeartbeat time.Duration
	// StoreBreakerThreshold is how many consecutive disk failures trip
	// the store's circuit breaker (0 = store default, < 0 = disabled).
	StoreBreakerThreshold int
	// StoreBreakerCooldown is the breaker's base open -> half-open wait
	// (0 = store default).
	StoreBreakerCooldown time.Duration
	// Cluster is the fleet view when this node is part of one (nil =
	// single-node). The server takes lifecycle ownership: New arms it as
	// the store's remote tier and starts its health prober, Close stops
	// it. It is caller-constructed because membership (the node's own
	// URL) is only known once the listener is bound.
	Cluster *cluster.Cluster
	// AdminToken guards the membership endpoints (POST
	// /v1/cluster/join, /leave, /membership): requests must carry it in
	// X-Admin-Token or as an Authorization bearer token. Empty disables
	// those endpoints entirely (403) — membership then only changes by
	// restart, as before. Every fleet member must share one token,
	// since membership broadcasts authenticate with it.
	AdminToken string
	// Faults arms deterministic fault injection across the store, the
	// sweep engine, the job boundary, sweep-journal persistence and the
	// cluster's peer fetch/dispatch seams (nil = no injection; the hot
	// paths pay a single nil check).
	Faults *faultinject.Injector
	// Log receives request/lifecycle lines; nil discards them.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MemEntries == 0 {
		c.MemEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = 2048
	}
	if c.SweepHeartbeat <= 0 {
		c.SweepHeartbeat = 5 * time.Second
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
	return c
}

// runLimit bounds any single simulated execution when the request does not
// set one (matches the bench harness budget).
const runLimit = 2_000_000_000

// Server is the sdtd service: HTTP handlers over a worker pool and the
// content-addressed result store.
type Server struct {
	cfg      Config
	store    *store.ByteStore
	images   *store.Group[*program.Image] // sweep cells' assembled workloads, keyed name|scale
	pool     *pool
	met      *metrics
	mux      *http.ServeMux
	draining atomic.Bool
	inflight atomic.Int64 // jobs currently executing on a worker

	// Active sweep streams, so StartDrain can cancel them (flushing
	// their checkpoint journals) instead of waiting a whole matrix out.
	sweepMu  sync.Mutex
	sweeps   map[int]context.CancelCauseFunc
	sweepSeq int
}

// New builds a Server (opening the on-disk store, starting the pool).
// Callers must Close it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	opts := store.Options{
		Dir:              cfg.StoreDir,
		MemEntries:       cfg.MemEntries,
		BreakerThreshold: cfg.StoreBreakerThreshold,
		BreakerCooldown:  cfg.StoreBreakerCooldown,
	}
	if cfg.Faults != nil {
		// Assign only when armed: a typed-nil *Injector in the interface
		// field would defeat the store's nil fast path.
		opts.Faults = cfg.Faults
	}
	st, err := store.OpenByteStoreWith(opts)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		store:  st,
		images: store.NewGroup[*program.Image](nil),
		pool:   newPool(cfg.Workers, cfg.QueueDepth),
		met:    newMetrics(),
		mux:    http.NewServeMux(),
		sweeps: make(map[int]context.CancelCauseFunc),
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/cluster/sweep", s.handleClusterSweep)
	s.mux.HandleFunc("POST /v1/sweep/shard", s.handleSweepShard)
	s.mux.HandleFunc("GET /v1/result/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/peer/result/{key}", s.handlePeerResult)
	s.mux.HandleFunc("PUT /v1/peer/result/{key}", s.handlePeerResultPut)
	s.mux.HandleFunc("GET /v1/peer/journal/{id}", s.handlePeerJournalGet)
	s.mux.HandleFunc("PUT /v1/peer/journal/{id}", s.handlePeerJournalPut)
	s.mux.HandleFunc("DELETE /v1/peer/journal/{id}", s.handlePeerJournalDelete)
	s.mux.HandleFunc("POST /v1/cluster/join", s.handleJoin)
	s.mux.HandleFunc("POST /v1/cluster/leave", s.handleLeave)
	s.mux.HandleFunc("POST /v1/cluster/membership", s.handleMembership)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Cluster != nil {
		// The cluster becomes the store's remote tier (mem -> disk ->
		// peer) and its write fan-out; the store becomes the cluster's
		// local re-read source for anti-entropy. Then probing and the
		// replication workers start. Single-node servers never pay more
		// than a nil check for any of this.
		st.SetRemote(cfg.Cluster)
		st.SetReplicator(cfg.Cluster)
		cfg.Cluster.SetLocal(st)
		cfg.Cluster.Start()
	}
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the result store (tests and diagnostics).
func (s *Server) Store() *store.ByteStore { return s.store }

// errDraining is the cancellation cause handed to active sweep streams
// when the server starts draining.
var errDraining = errors.New("service: server draining")

// StartDrain flips the server into drain mode: /healthz answers 503 so
// load balancers stop routing here, and new submissions are rejected.
// In-flight and queued jobs keep running, but active sweep streams are
// cancelled — each one emits cancellation records for its unfinished
// cells, flushes its checkpoint journal a final time, and ends its
// stream, so a SIGTERM mid-sweep leaves a resumable journal behind
// instead of an abandoned matrix.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	for _, cancel := range s.sweeps {
		cancel(errDraining)
	}
}

// registerSweep tracks an active sweep stream's cancel function for
// StartDrain; the returned id unregisters it. A sweep that starts after
// drain began is cancelled immediately (the handler has already
// rejected new sweeps by then; this closes the race).
func (s *Server) registerSweep(cancel context.CancelCauseFunc) int {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	s.sweepSeq++
	s.sweeps[s.sweepSeq] = cancel
	if s.draining.Load() {
		cancel(errDraining)
	}
	return s.sweepSeq
}

func (s *Server) unregisterSweep(id int) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	delete(s.sweeps, id)
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the pool: admission stops, queued and running jobs finish,
// workers exit. Call after the HTTP server has stopped accepting requests.
func (s *Server) Close() {
	s.StartDrain()
	s.pool.close()
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.Close()
	}
}

// ---- HTTP handlers ----

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.setRetryAfter(w)
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	var req RunRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	req.withDefaults()
	if _, err := hostarch.ByName(req.Arch); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	if _, err := ib.Parse(req.Mech); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	img, err := req.compile()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeInvalidProgram, err.Error())
		return
	}
	key := req.key(img)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	data, hit, err := s.store.Do(ctx, key, func() ([]byte, error) {
		return s.execute(ctx, key, img, &req)
	})
	if err != nil {
		status, code := mapError(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			s.setRetryAfter(w)
		}
		s.writeError(w, r, status, code, err.Error())
		return
	}
	resp := RunResponse{
		Cached:    hit,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Result:    data,
	}
	s.writeJSON(w, r, http.StatusOK, resp)
	s.cfg.Log.Printf("run %s %s/%s key=%s cached=%v elapsed=%s",
		req.Name, req.Arch, req.Mech, key[:12], hit, time.Since(start).Round(time.Microsecond))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.store.Get(key)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "not_found", "no result stored under "+key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.countRequest(r, http.StatusOK)
	w.Write(data)
}

// health snapshots the server's health report. Degraded (store running
// memory-only behind a tripped breaker) is still a 200: the daemon
// serves correct results, just without persistence — load balancers
// should keep routing, operators should look at the body.
func (s *Server) health() Health {
	st := s.store.Stats()
	h := Health{
		Status: HealthOK,
		Store: StoreHealth{
			Persistent:  s.store.Persistent(),
			Degraded:    st.Degraded,
			Corruptions: st.Corruptions,
			Quarantined: st.Quarantined,
			DiskErrors:  st.DiskErrors,
		},
	}
	if st.Degraded {
		h.Status = HealthDegraded
	}
	if c := s.cfg.Cluster; c != nil {
		h.Cluster = c.Health()
		h.ClusterEpoch = c.Epoch()
		h.Replication = c.ReplicationFactor()
		rs := c.ReplStats()
		h.ReplStats = &rs
		// A down or breaker-guarded peer degrades this node's report:
		// results owned elsewhere may have to be recomputed locally.
		for _, p := range h.Cluster {
			if !p.Self && (!p.Up || p.Degraded) {
				h.Status = HealthDegraded
			}
		}
	}
	if s.draining.Load() {
		h.Status = HealthDraining
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	status := http.StatusOK
	if h.Status == HealthDraining {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, r, status, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.countRequest(r, http.StatusOK)
	s.met.render(w, func(w io.Writer) {
		st := s.store.Stats()
		fmt.Fprint(w, "# TYPE sdtd_cache_hits_total counter\n")
		fmt.Fprintf(w, "sdtd_cache_hits_total{layer=\"mem\"} %d\n", st.MemHits)
		fmt.Fprintf(w, "sdtd_cache_hits_total{layer=\"disk\"} %d\n", st.DiskHits)
		fmt.Fprintf(w, "sdtd_cache_hits_total{layer=\"peer\"} %d\n", st.PeerHits)
		fmt.Fprintf(w, "# TYPE sdtd_cache_misses_total counter\nsdtd_cache_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# TYPE sdtd_cache_disk_errors_total counter\nsdtd_cache_disk_errors_total %d\n", st.DiskErrors)
		fmt.Fprintf(w, "# TYPE sdtd_cache_peer_errors_total counter\nsdtd_cache_peer_errors_total %d\n", st.PeerErrors)
		fmt.Fprintf(w, "# TYPE sdtd_cache_mem_entries gauge\nsdtd_cache_mem_entries %d\n", st.MemEntries)
		fmt.Fprintf(w, "# TYPE sdtd_cache_evictions_total counter\nsdtd_cache_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(w, "# TYPE sdtd_queue_depth gauge\nsdtd_queue_depth %d\n", s.pool.depth())
		fmt.Fprintf(w, "# TYPE sdtd_inflight_runs gauge\nsdtd_inflight_runs %d\n", s.inflight.Load())
		draining := 0
		if s.draining.Load() {
			draining = 1
		}
		fmt.Fprintf(w, "# TYPE sdtd_draining gauge\nsdtd_draining %d\n", draining)
		fmt.Fprintf(w, "# TYPE sdtd_store_corruption_total counter\nsdtd_store_corruption_total %d\n", st.Corruptions)
		fmt.Fprintf(w, "# TYPE sdtd_store_quarantined_total counter\nsdtd_store_quarantined_total %d\n", st.Quarantined)
		fmt.Fprintf(w, "# TYPE sdtd_store_breaker_trips_total counter\nsdtd_store_breaker_trips_total %d\n", st.BreakerTrips)
		degraded := 0
		if st.Degraded {
			degraded = 1
		}
		fmt.Fprintf(w, "# TYPE sdtd_store_degraded gauge\nsdtd_store_degraded %d\n", degraded)
		if c := s.cfg.Cluster; c != nil {
			peers := c.Health()
			fmt.Fprint(w, "# TYPE sdtd_peer_up gauge\n")
			for _, p := range peers {
				up := 0
				if p.Up {
					up = 1
				}
				fmt.Fprintf(w, "sdtd_peer_up{peer=%q} %d\n", p.Name, up)
			}
			fmt.Fprint(w, "# TYPE sdtd_peer_fetches_total counter\n")
			for _, p := range peers {
				if p.Self {
					continue
				}
				fmt.Fprintf(w, "sdtd_peer_fetches_total{peer=%q,outcome=\"hit\"} %d\n", p.Name, p.Hits)
				fmt.Fprintf(w, "sdtd_peer_fetches_total{peer=%q,outcome=\"miss\"} %d\n", p.Name, p.Misses)
				fmt.Fprintf(w, "sdtd_peer_fetches_total{peer=%q,outcome=\"error\"} %d\n", p.Name, p.Errors)
				fmt.Fprintf(w, "sdtd_peer_fetches_total{peer=%q,outcome=\"skipped\"} %d\n", p.Name, p.Skipped)
			}
			fmt.Fprint(w, "# TYPE sdtd_peer_breaker_trips_total counter\n")
			for _, p := range peers {
				if !p.Self {
					fmt.Fprintf(w, "sdtd_peer_breaker_trips_total{peer=%q} %d\n", p.Name, p.BreakerTrips)
				}
			}
			fmt.Fprintf(w, "# TYPE sdtd_cluster_ring_epoch gauge\nsdtd_cluster_ring_epoch %d\n", c.Epoch())
			fmt.Fprintf(w, "# TYPE sdtd_replication_factor gauge\nsdtd_replication_factor %d\n", c.ReplicationFactor())
			rs := c.ReplStats()
			fmt.Fprintf(w, "# TYPE sdtd_replication_sent_total counter\nsdtd_replication_sent_total %d\n", rs.Sent)
			fmt.Fprintf(w, "# TYPE sdtd_replication_received_total counter\nsdtd_replication_received_total %d\n", rs.Received)
			fmt.Fprintf(w, "# TYPE sdtd_replication_failed_total counter\nsdtd_replication_failed_total %d\n", rs.Failed)
			fmt.Fprintf(w, "# TYPE sdtd_replication_dropped_total counter\nsdtd_replication_dropped_total %d\n", rs.Dropped)
			fmt.Fprintf(w, "# TYPE sdtd_replication_requeued_total counter\nsdtd_replication_requeued_total %d\n", rs.Requeued)
			fmt.Fprintf(w, "# TYPE sdtd_replication_migrated_keys_total counter\nsdtd_replication_migrated_keys_total %d\n", rs.Migrated)
			fmt.Fprintf(w, "# TYPE sdtd_replication_pending gauge\nsdtd_replication_pending %d\n", rs.Pending)
			fmt.Fprintf(w, "# TYPE sdtd_replication_queue_depth gauge\nsdtd_replication_queue_depth %d\n", rs.Queue)
		}
		if s.cfg.Faults != nil {
			fmt.Fprint(w, "# TYPE sdtd_faults_injected_total counter\n")
			stats := s.cfg.Faults.Stats()
			sites := make([]string, 0, len(stats))
			for site := range stats {
				sites = append(sites, site)
			}
			sort.Strings(sites)
			for _, site := range sites {
				fmt.Fprintf(w, "sdtd_faults_injected_total{site=%q} %d\n", site, stats[site].Fired)
			}
		}
	})
}

// ---- execution ----

// execute submits the run to the pool and waits for it or for ctx. It is
// always called inside the store's single-flight, so at most one execution
// per key is in the pool at a time.
func (s *Server) execute(ctx context.Context, key string, img *program.Image, req *RunRequest) ([]byte, error) {
	j := newJob(ctx, func(ctx context.Context) ([]byte, error) {
		return s.runJob(ctx, key, img, req)
	})
	if err := s.pool.submit(j); err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j.data, j.err
	case <-ctx.Done():
		// The worker notices the same ctx and stops shortly; respond now
		// so the client sees its deadline, not our check granularity.
		return nil, fmt.Errorf("service: request abandoned: %w", context.Cause(ctx))
	}
}

// runJob performs the measurement: native baseline, SDT run, equivalence
// check, profile extraction. It owns panic isolation and the per-run
// metrics. The returned bytes are the marshalled RunResult (the store's
// value), so a given key always maps to one byte sequence.
func (s *Server) runJob(ctx context.Context, key string, img *program.Image, req *RunRequest) (data []byte, err error) {
	s.inflight.Add(1)
	start := time.Now()
	defer func() {
		s.inflight.Add(-1)
		if r := recover(); r != nil {
			s.met.panics.Inc()
			err = errors.Join(errJobPanic, errors.New(describePanic(r)))
		}
		s.met.runsTotal.get(outcomeLabel(err)).Inc()
		s.met.runLatency.Observe(time.Since(start).Seconds())
	}()

	if inj := s.cfg.Faults; inj != nil {
		// Inside the recover scope: an injected panic is recovered and
		// counted like a real one; an injected error maps through the
		// normal outcome/response path.
		if ferr := inj.Fail(siteJob); ferr != nil {
			return nil, fmt.Errorf("service: worker fault: %w", ferr)
		}
	}

	model, err := hostarch.ByName(req.Arch)
	if err != nil {
		return nil, err
	}
	limit := req.Limit
	if limit == 0 {
		limit = runLimit
	}
	native, err := machine.New(img, model)
	if err != nil {
		return nil, err
	}
	if err := native.RunContext(ctx, limit); err != nil {
		return nil, fmt.Errorf("native run: %w", err)
	}
	cfg, err := ib.Parse(req.Mech)
	if err != nil {
		return nil, err
	}
	vm, err := core.New(img, cfg.Options(model))
	if err != nil {
		return nil, err
	}
	if err := vm.RunContext(ctx, limit); err != nil {
		return nil, fmt.Errorf("sdt run: %w", err)
	}

	nr, sr := native.Result(), vm.Result()
	native.Recycle()
	if nr.Checksum != sr.Checksum || nr.Instret != sr.Instret {
		vm.Recycle()
		return nil, errDivergence
	}
	res := RunResult{
		Key:      key,
		Name:     req.Name,
		Lang:     req.Lang,
		Arch:     req.Arch,
		Mech:     req.Mech,
		Seed:     req.Seed,
		Native:   summarize(nr),
		SDT:      summarize(sr),
		Slowdown: float64(sr.Cycles) / float64(nr.Cycles),
		Profile:  summarizeProfile(&vm.Prof),
	}
	s.met.fragments.Add(vm.Prof.Translations)
	s.met.transInsts.Add(vm.Prof.TransInsts)
	for kind := isa.IBKind(0); kind < isa.NumIBKinds; kind++ {
		if n := vm.Prof.IBExec[kind]; n > 0 {
			s.met.ibLookups.get(fmt.Sprintf("mech=%q,kind=%q", req.Mech, kind)).Add(n)
		}
	}
	vm.Recycle()
	return json.Marshal(res)
}

func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return outcomeOK
	case errors.Is(err, errJobPanic):
		return outcomePanic
	case errors.Is(err, context.DeadlineExceeded):
		return outcomeDeadline
	case errors.Is(err, context.Canceled):
		return outcomeCanceled
	default:
		return outcomeError
	}
}

// mapError translates an execution error into (HTTP status, error code).
func mapError(err error) (int, string) {
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests, CodeQueueFull
	case errors.Is(err, errPoolClosed), errors.Is(err, errDraining):
		// errDraining reaches here as the cancellation cause of a sweep
		// cut short by StartDrain; it must map to a drain code so cluster
		// coordinators know the cell is reassignable, not failed.
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		// Nginx's "client closed request"; the client is gone, the status
		// only lands in logs and metrics.
		return 499, CodeCanceled
	case errors.Is(err, errJobPanic):
		return http.StatusInternalServerError, CodeInternal
	case errors.Is(err, errDivergence):
		return http.StatusInternalServerError, CodeDivergence
	case errors.Is(err, machine.ErrLimit), errors.Is(err, core.ErrLimit):
		return http.StatusUnprocessableEntity, CodeLimitExceeded
	default:
		return http.StatusUnprocessableEntity, CodeRunFailed
	}
}

// ---- response plumbing ----

// retryAfterSeconds estimates when a rejected client should come back:
// the current backlog (queued + executing + this request) divided across
// the workers, paced at the observed median run latency, clamped to
// [1, 30] seconds. Before any run has been measured the median falls back
// to a quarter second, which keeps the floor at 1.
func (s *Server) retryAfterSeconds() int {
	med := s.met.runLatency.quantile(0.5)
	if med <= 0 {
		med = 0.25
	}
	backlog := float64(s.pool.depth() + int(s.inflight.Load()) + 1)
	secs := int(math.Ceil(backlog * med / float64(s.cfg.Workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	s.countRequest(r, status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	s.countRequest(r, status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: ErrorInfo{Code: code, Message: msg}})
	s.cfg.Log.Printf("error %d %s: %s", status, code, msg)
}

// endpoint collapses parameterized paths so metric label cardinality stays
// bounded by the route table, not by client input.
func endpoint(r *http.Request) string {
	if strings.HasPrefix(r.URL.Path, "/v1/peer/result/") {
		return "/v1/peer/result"
	}
	if strings.HasPrefix(r.URL.Path, "/v1/peer/journal/") {
		return "/v1/peer/journal"
	}
	if strings.HasPrefix(r.URL.Path, "/v1/result/") {
		return "/v1/result"
	}
	return r.URL.Path
}

func (s *Server) countRequest(r *http.Request, status int) {
	s.met.requestsTotal.get(fmt.Sprintf("path=%q,code=\"%d\"", endpoint(r), status)).Inc()
}
