package ib

import (
	"fmt"

	"sdt/internal/core"
)

// SieveConfig configures the sieve.
type SieveConfig struct {
	// Buckets is the number of hash buckets; a positive power of two.
	Buckets int
}

type sieveStub struct {
	tag  uint32
	frag *core.Fragment
	next *sieveStub
	addr uint32 // code-cache address of this stub
}

// Sieve implements sieve dispatch: each indirect branch jumps (indirectly,
// by hashed target) into a bucket of compare-and-branch stubs that live in
// the fragment cache. A hit costs the chain walk plus one direct branch; no
// data-side table exists, so the mechanism consumes I-cache rather than
// D-cache, and every comparison needs the flags saved — the property that
// makes the sieve architecture-sensitive.
type Sieve struct {
	cfg     SieveConfig
	mask    uint32
	buckets []*sieveStub
	// missStub is the shared "bucket empty / chain exhausted" exit into
	// the translator.
	missStub uint32
}

// NewSieve builds a sieve. It panics on an invalid bucket count.
func NewSieve(cfg SieveConfig) *Sieve {
	if err := checkPow2("sieve", cfg.Buckets); err != nil {
		panic(err)
	}
	return &Sieve{cfg: cfg, mask: uint32(cfg.Buckets - 1)}
}

// Name implements core.IBHandler.
func (c *Sieve) Name() string { return fmt.Sprintf("sieve(%d)", c.cfg.Buckets) }

// Config returns the mechanism's configuration.
func (c *Sieve) Config() SieveConfig { return c.cfg }

// Init implements core.IBHandler.
func (c *Sieve) Init(vm *core.VM) {
	c.buckets = make([]*sieveStub, c.cfg.Buckets)
	c.missStub = translatorDispatchAddr
}

// Attach implements core.IBHandler.
func (c *Sieve) Attach(*core.VM, *core.IBSite) {}

// Flush implements core.IBHandler: the chains live in the fragment cache,
// so a flush discards all of them.
func (c *Sieve) Flush(*core.VM) {
	clear(c.buckets)
}

// Resolve implements core.IBHandler.
func (c *Sieve) Resolve(vm *core.VM, site *core.IBSite, target uint32) (*core.Fragment, error) {
	env := vm.Env
	m := env.Model

	// Emitted at the branch site: save flags, hash, jump into the bucket.
	env.IFetch(site.HostAddr)
	env.Charge(m.FlagsSave + m.HashCompute)
	b := hashTarget(target, c.mask)
	head := c.buckets[b]
	bucketAddr := c.missStub
	if head != nil {
		bucketAddr = head.addr
	}
	env.IndirectTransfer(site.HostAddr, bucketAddr)

	// Walk the chain of compare-and-branch stubs.
	for walk := head; walk != nil; walk = walk.next {
		vm.Prof.SieveProbes++
		env.IFetch(walk.addr)
		env.Charge(m.CompareBranch)
		// A stub whose fragment was retired by a targeted invalidation
		// stays in the chain (its compare still executes and misses); the
		// walk skips it and the chain-exhausted path appends a fresh stub.
		if walk.tag == target && vm.Live(walk.frag) {
			vm.Prof.MechHits++
			env.Charge(m.FlagsRestore + m.BranchTaken)
			return walk.frag, nil
		}
	}

	// Chain exhausted: enter the translator and append a new stub. The
	// append keeps bucket head addresses stable so the per-site dispatch
	// jump stays predictable once a bucket exists.
	vm.Prof.MechMisses++
	vm.Prof.IBMiss[site.Kind]++
	env.Charge(m.FlagsRestore)
	f, err := vm.EnterTranslator(target)
	if err != nil {
		return nil, err
	}
	stub := &sieveStub{tag: target, frag: f, addr: vm.AllocCode(uint32(m.StubBytes))}
	if head == nil {
		c.buckets[b] = stub
	} else {
		tail := head
		for tail.next != nil {
			tail = tail.next
		}
		tail.next = stub
	}
	env.Charge(2 * m.TableStore) // emit the stub and rewrite the chain exit
	env.IndirectTransfer(translatorDispatchAddr, f.HostAddr)
	return f, nil
}
