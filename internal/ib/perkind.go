package ib

import (
	"fmt"

	"sdt/internal/core"
	"sdt/internal/isa"
)

// PerKind routes each indirect-branch kind to its own mechanism, the way
// Strata specializes handling by decoding the branch. Any field may repeat
// another; lifecycle hooks reach each distinct mechanism exactly once.
type PerKind struct {
	Ret  core.IBHandler
	Jump core.IBHandler
	Call core.IBHandler

	// subs and obs cache distinct() and its call observers from Init on:
	// OnCall runs once per executed guest call, so it must not rebuild the
	// handler list (or allocate) every time.
	subs []core.IBHandler
	obs  []core.CallObserver
}

// NewPerKind builds the combinator. All three fields are required.
func NewPerKind(ret, jump, call core.IBHandler) *PerKind {
	if ret == nil || jump == nil || call == nil {
		panic(fmt.Errorf("ib: PerKind requires all three handlers"))
	}
	return &PerKind{Ret: ret, Jump: jump, Call: call}
}

// Name implements core.IBHandler.
func (c *PerKind) Name() string {
	return fmt.Sprintf("perkind(ret=%s,jump=%s,call=%s)", c.Ret.Name(), c.Jump.Name(), c.Call.Name())
}

// distinct returns the unique sub-handlers in routing order.
func (c *PerKind) distinct() []core.IBHandler {
	out := []core.IBHandler{c.Ret}
	if c.Jump != c.Ret {
		out = append(out, c.Jump)
	}
	if c.Call != c.Ret && c.Call != c.Jump {
		out = append(out, c.Call)
	}
	return out
}

func (c *PerKind) forKind(kind isa.IBKind) core.IBHandler {
	switch kind {
	case isa.IBReturn:
		return c.Ret
	case isa.IBJump:
		return c.Jump
	case isa.IBCall:
		return c.Call
	}
	panic(fmt.Sprintf("ib: unknown IB kind %v", kind))
}

// Init implements core.IBHandler.
func (c *PerKind) Init(vm *core.VM) {
	c.subs = c.distinct()
	c.obs = c.obs[:0]
	for _, h := range c.subs {
		if o, ok := h.(core.CallObserver); ok {
			c.obs = append(c.obs, o)
		}
	}
	for _, h := range c.subs {
		h.Init(vm)
	}
}

// Attach implements core.IBHandler.
func (c *PerKind) Attach(vm *core.VM, site *core.IBSite) {
	c.forKind(site.Kind).Attach(vm, site)
}

// Resolve implements core.IBHandler.
func (c *PerKind) Resolve(vm *core.VM, site *core.IBSite, target uint32) (*core.Fragment, error) {
	return c.forKind(site.Kind).Resolve(vm, site, target)
}

// Flush implements core.IBHandler.
func (c *PerKind) Flush(vm *core.VM) {
	for _, h := range c.subs {
		h.Flush(vm)
	}
}

// OnCall implements core.CallObserver, forwarding to every distinct
// sub-handler that observes calls.
func (c *PerKind) OnCall(vm *core.VM, guestRet uint32) {
	for _, o := range c.obs {
		o.OnCall(vm, guestRet)
	}
}
