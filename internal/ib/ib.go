// Package ib implements the indirect-branch handling mechanisms the paper
// evaluates, behind the core.IBHandler interface:
//
//   - Translator: the naive baseline — every indirect branch context-
//     switches into the translator and probes its map.
//   - IBTC: the indirect branch translation cache — an inline, flag-saving
//     hash probe of a data-side table mapping guest targets to fragment
//     addresses; shared across sites or private per site; any power-of-two
//     size; final dispatch jump per-site or shared (the E12 ablation).
//   - Inline: inline caches — up to k predicted targets compared inline in
//     the fragment, falling back to any other mechanism.
//   - Sieve: dispatch through chains of compare-and-branch stubs that live
//     in the fragment cache itself, so lookups consume I-cache instead of
//     D-cache and need no table loads.
//   - RetCache: a return cache — call sites store the hostized return
//     address into a table slot hashed by return point; returns reload it
//     with one probe.
//   - PerKind: a combinator routing returns, indirect jumps and indirect
//     calls to different mechanisms.
//
// Fast returns are a translation-policy change rather than a lookup
// mechanism, so they live in core (Options.FastReturns); the handler
// configured here serves the remaining indirect branches and the
// non-transparent return escapes.
//
// Every mechanism charges the VM's cost environment exactly what its
// emitted host code would execute: condition-flag spills around compares,
// hash arithmetic, table loads through the D-cache, stub fetches through
// the I-cache, and a final dispatch transfer through the BTB.
package ib

import (
	"fmt"

	"sdt/internal/core"
)

// Permanent translator-owned code addresses (outside the flushable
// fragment cache): the shared dispatch jump the translator exits through,
// and the shared final jump of the E12 IBTC variant. Funneling many
// logical branch sites through one host jump is exactly what destroys BTB
// locality, and these constants are how the simulation expresses it.
const (
	translatorDispatchAddr = 0xC800_0000
	sharedJumpAddr         = 0xC800_0040
)

// Translator is the naive mechanism: no caching at all.
type Translator struct{}

// NewTranslator returns the naive handler.
func NewTranslator() *Translator { return &Translator{} }

// Name implements core.IBHandler.
func (t *Translator) Name() string { return "translator" }

// Init implements core.IBHandler.
func (t *Translator) Init(*core.VM) {}

// Attach implements core.IBHandler.
func (t *Translator) Attach(*core.VM, *core.IBSite) {}

// Flush implements core.IBHandler.
func (t *Translator) Flush(*core.VM) {}

// Resolve implements core.IBHandler: full context switch, map probe, and a
// dispatch through the translator's one shared exit jump.
func (t *Translator) Resolve(vm *core.VM, site *core.IBSite, target uint32) (*core.Fragment, error) {
	vm.Prof.IBMiss[site.Kind]++
	vm.Prof.MechMisses++
	f, err := vm.EnterTranslator(target)
	if err != nil {
		return nil, err
	}
	vm.Env.IndirectTransfer(translatorDispatchAddr, f.HostAddr)
	return f, nil
}

// hashTarget is the simple masking hash the inline mechanisms emit:
// word-index the target and mask. mask must be entries-1.
func hashTarget(target, mask uint32) uint32 { return (target >> 2) & mask }

// checkPow2 validates a table-size parameter.
func checkPow2(what string, n int) error {
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("ib: %s size %d must be a positive power of two", what, n)
	}
	return nil
}
