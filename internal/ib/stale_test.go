package ib_test

import (
	"testing"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
)

// Fragment storage is arena-allocated and reused across flushes, so a
// mechanism that held a *Fragment past a flush could see a ghost hit: a
// pointer that is live again as a different block. Every VM-side liveness
// probe must reject such pointers the moment the epoch bumps. This test
// drives each mechanism in the sweep set through repeated flushes and, at
// the instant the handler's Flush callback runs (epoch already bumped,
// nothing retranslated yet), asserts that every fragment resolved in the
// dying epoch now misses through all three lookup paths.

// staleCap snapshots a resolved fragment's identity at capture time; the
// assertions must not trust fields read from a stale pointer.
type staleCap struct {
	f        *core.Fragment
	guestPC  uint32
	hostAddr uint32
}

// staleProbe wraps a real mechanism, recording every fragment its Resolve
// returns and auditing them when the fragment cache flushes.
type staleProbe struct {
	t        *testing.T
	inner    core.IBHandler
	captured []staleCap
	flushes  int
	checked  int
}

func (p *staleProbe) Name() string                          { return "staleprobe(" + p.inner.Name() + ")" }
func (p *staleProbe) Init(vm *core.VM)                      { p.inner.Init(vm) }
func (p *staleProbe) Attach(vm *core.VM, site *core.IBSite) { p.inner.Attach(vm, site) }

func (p *staleProbe) Resolve(vm *core.VM, site *core.IBSite, target uint32) (*core.Fragment, error) {
	f, err := p.inner.Resolve(vm, site, target)
	if err == nil && f != nil {
		p.captured = append(p.captured, staleCap{f: f, guestPC: f.GuestPC, hostAddr: f.HostAddr})
	}
	return f, err
}

// Flush runs after the VM bumped its epoch and before anything is
// retranslated: the window where a retained pointer is maximally dangerous.
func (p *staleProbe) Flush(vm *core.VM) {
	p.flushes++
	for _, c := range p.captured {
		if vm.Live(c.f) {
			p.t.Errorf("flush %d: fragment %#x (guest %#x) still reported live", p.flushes, c.hostAddr, c.guestPC)
		}
		if f := vm.Lookup(c.guestPC); f != nil {
			p.t.Errorf("flush %d: Lookup(%#x) returned %p after flush", p.flushes, c.guestPC, f)
		}
		if f := vm.FragmentByHost(c.hostAddr); f != nil {
			p.t.Errorf("flush %d: FragmentByHost(%#x) returned %p after flush", p.flushes, c.hostAddr, f)
		}
		p.checked++
	}
	p.captured = p.captured[:0]
	p.inner.Flush(vm)
}

// OnCall forwards call observations so pre-filling mechanisms (the return
// cache) behave identically under the probe.
func (p *staleProbe) OnCall(vm *core.VM, guestRet uint32) {
	if obs, ok := p.inner.(core.CallObserver); ok {
		obs.OnCall(vm, guestRet)
	}
}

func TestStaleFragmentsMissAfterFlush(t *testing.T) {
	src := polyProg(8, 30_000)
	for _, spec := range ib.SweepSpecs() {
		t.Run(spec, func(t *testing.T) {
			cfg, err := ib.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			probe := &staleProbe{t: t, inner: cfg.Handler}
			vm, err := core.New(assemble(t, src), core.Options{
				Model:       hostarch.X86(),
				Handler:     probe,
				FastReturns: cfg.FastReturns,
				Traces:      cfg.Traces,
				CacheBytes:  256, // far below the working set: constant flushing
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Run(20_000_000); err != nil {
				t.Fatalf("run: %v", err)
			}
			if probe.flushes == 0 {
				t.Fatal("cache never flushed; the staleness window was not exercised")
			}
			if probe.checked == 0 {
				t.Fatal("no fragments captured across a flush; probe saw nothing")
			}
		})
	}
}
