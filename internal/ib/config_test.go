package ib_test

import (
	"strings"
	"testing"

	"sdt/internal/ib"
)

// Tests for the configuration dimensions added beyond the paper's core
// mechanisms: IBTC associativity, hash choice, and the inline cache's MRU
// replacement policy.

func TestIBTCAssociativityToleratesConflicts(t *testing.T) {
	// polyProg's jump targets sit two words apart, so a 4-entry
	// direct-mapped table folds 4 round-robin targets onto 2 sets and
	// never hits twice in a row (0% hit rate); the same 4 entries as one
	// 4-way set hold all 4 targets and hit always after warmup.
	direct := runSpec(t, polyProg(4, 4000), "ibtc:4")
	assoc := runSpec(t, polyProg(4, 4000), "ibtc:4:4way")
	if assoc.Prof.HitRate() <= direct.Prof.HitRate() {
		t.Errorf("4-way hit rate %.4f should beat direct-mapped %.4f",
			assoc.Prof.HitRate(), direct.Prof.HitRate())
	}
}

func TestIBTCWaysNames(t *testing.T) {
	cfg, err := ib.Parse("ibtc:1024:2way:fib")
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Handler.Name(); got != "ibtc(shared,1024,2way,fib)" {
		t.Errorf("Name = %q", got)
	}
}

func TestIBTCBadWays(t *testing.T) {
	for _, spec := range []string{"ibtc:1024:3way", "ibtc:2:4way", "ibtc:64:way"} {
		if _, err := ib.Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted invalid ways", spec)
		}
	}
}

func TestIBTCFibHashEquivalent(t *testing.T) {
	// The hash choice must never change results, only costs.
	mask := runSpec(t, polyProg(16, 3000), "ibtc:256")
	fib := runSpec(t, polyProg(16, 3000), "ibtc:256:fib")
	if mask.Result().Checksum != fib.Result().Checksum {
		t.Fatal("hash choice changed program output")
	}
	// Fibonacci hashing pays a multiply per lookup; on these
	// well-distributed targets it cannot win.
	if fib.Env.Cycles <= mask.Env.Cycles {
		t.Errorf("fib hash (%d cy) should cost at least the mask hash (%d cy) here",
			fib.Env.Cycles, mask.Env.Cycles)
	}
}

func TestIBTCFibHashBeatsMaskOnStridedTargets(t *testing.T) {
	// Pathological case for the mask hash: targets exactly table-size
	// words apart all map to set 0. The jump targets in polyProg are a
	// few instructions apart, so instead build the collision by shrinking
	// the table below the target spacing... simpler: verify via hit rates
	// on a 4-entry table where mask-hash collisions are guaranteed for
	// some target subsets while fib spreads them.
	mask := runSpec(t, polyProg(16, 4000), "ibtc:4")
	fib := runSpec(t, polyProg(16, 4000), "ibtc:4:fib")
	// Not a strict dominance claim — just that the two hashes place
	// targets differently and both stay correct.
	if mask.Result().Checksum != fib.Result().Checksum {
		t.Fatal("hash choice changed output")
	}
	if mask.Prof.MechHits+mask.Prof.MechMisses != fib.Prof.MechHits+fib.Prof.MechMisses {
		t.Error("hash choice changed the number of lookups")
	}
}

func TestInlineMRUAdaptsToPhases(t *testing.T) {
	// A phased program: the site is monomorphic within each phase but the
	// target changes across phases. First-target inlining pins dead
	// targets; MRU repatches.
	src := phasedProg()
	frozen := runSpec(t, src, "inline:2+translator")
	mru := runSpec(t, src, "inline:2:mru+translator")
	if mru.Result().Checksum != frozen.Result().Checksum {
		t.Fatal("MRU changed program output")
	}
	if mru.Prof.MechHits <= frozen.Prof.MechHits {
		t.Errorf("MRU hits %d should exceed frozen-policy hits %d on phased targets",
			mru.Prof.MechHits, frozen.Prof.MechHits)
	}
	if mru.Env.Cycles >= frozen.Env.Cycles {
		t.Errorf("MRU (%d cy) should beat frozen (%d cy) on phased targets",
			mru.Env.Cycles, frozen.Env.Cycles)
	}
}

// phasedProg runs 4 phases of 2000 iterations; within a phase the single
// jr site always takes the same target.
func phasedProg() string {
	var b strings.Builder
	b.WriteString(`
	main:
		li r20, 0       ; phase
	phase:
		li r21, 0       ; iteration
	iter:
		la r1, table
		slli r3, r20, 2
		add r1, r1, r3
		lw r3, (r1)
		jr r3
	`)
	for i := 0; i < 4; i++ {
		b.WriteString("t" + itoa(i) + ":\n\taddi r13, r13, " + itoa(i+1) + "\n\tjmp next\n")
	}
	b.WriteString(`
	next:
		addi r21, r21, 1
		li r1, 2000
		blt r21, r1, iter
		addi r20, r20, 1
		li r1, 4
		blt r20, r1, phase
		out r13
		halt
	.data
	table:
	`)
	for i := 0; i < 4; i++ {
		b.WriteString("\t.word t" + itoa(i) + "\n")
	}
	return b.String()
}

func TestInlineMRUName(t *testing.T) {
	cfg, err := ib.Parse("inline:3:mru+ibtc:64")
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Handler.Name(); got != "inline(3,mru)+ibtc(shared,64)" {
		t.Errorf("Name = %q", got)
	}
	if _, err := ib.Parse("inline:3:lru+ibtc:64"); err == nil {
		t.Error("unknown inline flag accepted")
	}
}
