package ib

import (
	"fmt"

	"sdt/internal/core"
)

// IBTCConfig configures an indirect branch translation cache.
type IBTCConfig struct {
	// Entries is the table size; a positive power of two.
	Entries int
	// Ways is the set associativity (default 1 = direct-mapped). Higher
	// associativity costs one extra compare per additional way probed but
	// tolerates targets that collide under the hash.
	Ways int
	// FibHash selects multiplicative (Fibonacci) hashing of the target
	// instead of the default address-mask hash. Better spread for
	// regularly strided target sets, one extra multiply on the path.
	FibHash bool
	// Private gives every indirect-branch site its own table instead of
	// one shared table.
	Private bool
	// SharedFinalJump routes every IBTC hit through one shared dispatch
	// jump instead of a per-site jump, forfeiting BTB locality (the E12
	// ablation). Real implementations differ here depending on whether
	// the lookup is emitted inline or called as a common routine.
	SharedFinalJump bool
}

func (c IBTCConfig) validate() error {
	if err := checkPow2("IBTC", c.Entries); err != nil {
		return err
	}
	switch c.Ways {
	case 0, 1, 2, 4, 8:
		// 0 is defaulted to 1
	default:
		return fmt.Errorf("ib: IBTC ways %d must be 1, 2, 4 or 8", c.Ways)
	}
	if c.Ways > c.Entries {
		return fmt.Errorf("ib: IBTC ways %d exceeds entries %d", c.Ways, c.Entries)
	}
	return nil
}

type ibtcEntry struct {
	tag   uint32
	frag  *core.Fragment
	lru   uint64
	valid bool
}

type ibtcTable struct {
	base    uint32
	entries []ibtcEntry
	tick    uint64
}

// IBTC is the indirect branch translation cache mechanism: an inline hash
// probe over a data-side table of (guest target, fragment address) pairs.
type IBTC struct {
	cfg    IBTCConfig
	ways   int
	mask   uint32 // set index mask
	shared *ibtcTable
	tables []*ibtcTable // every live table, for Flush

	// aliasTags deliberately breaks the mechanism (see TestHookAliasTags).
	aliasTags bool
}

// TestHookAliasTags breaks the IBTC the way a real implementation bug
// would: entries are tagged with their set index instead of the full guest
// target, so any two targets that collide under the hash alias and the hit
// path dispatches to the wrong fragment. It exists so the differential
// oracle (internal/oracle) and the sdtfuzz minimizer can be validated
// against a known-injected divergence; never enable it outside tests.
func (c *IBTC) TestHookAliasTags() { c.aliasTags = true }

// NewIBTC builds an IBTC mechanism. It panics on an invalid configuration;
// validate external input through the registry (Parse) instead.
func NewIBTC(cfg IBTCConfig) *IBTC {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if cfg.Ways == 0 {
		cfg.Ways = 1
	}
	return &IBTC{cfg: cfg, ways: cfg.Ways, mask: uint32(cfg.Entries/cfg.Ways - 1)}
}

// Name implements core.IBHandler.
func (c *IBTC) Name() string {
	scope := "shared"
	if c.cfg.Private {
		scope = "private"
	}
	name := fmt.Sprintf("ibtc(%s,%d", scope, c.cfg.Entries)
	if c.ways > 1 {
		name += fmt.Sprintf(",%dway", c.ways)
	}
	if c.cfg.FibHash {
		name += ",fib"
	}
	if c.cfg.SharedFinalJump {
		name += ",sharedjump"
	}
	return name + ")"
}

// Config returns the mechanism's configuration.
func (c *IBTC) Config() IBTCConfig { return c.cfg }

func (c *IBTC) newTable(vm *core.VM) *ibtcTable {
	t := &ibtcTable{
		base:    vm.AllocData(uint32(c.cfg.Entries) * 8),
		entries: make([]ibtcEntry, c.cfg.Entries),
	}
	c.tables = append(c.tables, t)
	return t
}

// Init implements core.IBHandler.
func (c *IBTC) Init(vm *core.VM) {
	if !c.cfg.Private {
		c.shared = c.newTable(vm)
	}
}

// Attach implements core.IBHandler.
func (c *IBTC) Attach(vm *core.VM, site *core.IBSite) {
	if c.cfg.Private {
		site.Data = c.newTable(vm)
	}
}

// Flush implements core.IBHandler: drop every cached fragment pointer.
func (c *IBTC) Flush(*core.VM) {
	for _, t := range c.tables {
		clear(t.entries)
	}
}

func (c *IBTC) tableFor(site *core.IBSite) *ibtcTable {
	if c.cfg.Private {
		return site.Data.(*ibtcTable)
	}
	return c.shared
}

func (c *IBTC) hash(target uint32) uint32 {
	if c.cfg.FibHash {
		return (target * 2654435761) >> 9 & c.mask
	}
	return hashTarget(target, c.mask)
}

// Resolve implements core.IBHandler. The emitted hit path is: save flags,
// hash the target, load the set (one D-cache line covers the ways probed),
// compare each way, restore flags, jump indirect. The miss path
// additionally enters the translator and stores the new entry.
func (c *IBTC) Resolve(vm *core.VM, site *core.IBSite, target uint32) (*core.Fragment, error) {
	env := vm.Env
	m := env.Model
	env.IFetch(site.HostAddr)
	env.Charge(m.FlagsSave + m.HashCompute + m.TableAddr + m.Load)
	if c.cfg.FibHash {
		env.Charge(m.Mul) // the multiplicative hash's extra cost
	}

	tbl := c.tableFor(site)
	tbl.tick++
	tag := target
	if c.aliasTags {
		tag = c.hash(target) // injected bug: colliding targets alias
	}
	set := c.hash(target)
	setBase := int(set) * c.ways
	entryAddr := tbl.base + uint32(setBase)*8
	env.DTouch(entryAddr)

	victim := setBase
	for w := 0; w < c.ways; w++ {
		env.Charge(m.CompareBranch)
		e := &tbl.entries[setBase+w]
		// Live rejects entries pointing at fragments retired mid-epoch by
		// a targeted invalidation (flushes clear the whole table instead).
		if e.valid && e.tag == tag && vm.Live(e.frag) {
			e.lru = tbl.tick
			vm.Prof.MechHits++
			env.Charge(m.FlagsRestore)
			jumpSite := site.HostAddr
			if c.cfg.SharedFinalJump {
				jumpSite = sharedJumpAddr
			}
			env.IndirectTransfer(jumpSite, e.frag.HostAddr)
			return e.frag, nil
		}
		if v := &tbl.entries[victim]; e.lru < v.lru || (!e.valid && v.valid) {
			victim = setBase + w
		}
	}

	vm.Prof.MechMisses++
	vm.Prof.IBMiss[site.Kind]++
	env.Charge(m.FlagsRestore)
	f, err := vm.EnterTranslator(target)
	if err != nil {
		return nil, err
	}
	tbl.entries[victim] = ibtcEntry{tag: tag, frag: f, lru: tbl.tick, valid: true}
	env.Charge(m.TableStore + m.Store)
	env.DTouch(entryAddr)
	env.IndirectTransfer(translatorDispatchAddr, f.HostAddr)
	return f, nil
}
