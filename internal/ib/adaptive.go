package ib

import (
	"fmt"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/profile"
)

// AdaptiveConfig configures adaptive per-site mechanism selection.
type AdaptiveConfig struct {
	// Entries sizes the promoted tiers: the shared IBTC table and the
	// sieve bucket array. A positive power of two; default 4096.
	Entries int
}

// Adaptive tiers, in promotion order. Every site starts on the inline
// tier (one compare against the first observed target); sites that prove
// polymorphic are promoted to an IBTC probe, and megamorphic sites to
// sieve chains. Sites that go monomorphic again are demoted back.
type adaptTier uint8

const (
	tierInline adaptTier = iota
	tierIBTC
	tierSieve
)

func (t adaptTier) String() string {
	switch t {
	case tierInline:
		return "inline"
	case tierIBTC:
		return "ibtc"
	case tierSieve:
		return "sieve"
	}
	return "?"
}

// adaptSlot is the inline tier's single predicted-target slot.
type adaptSlot struct {
	tag   uint32
	frag  *core.Fragment
	valid bool
}

// adaptSite is the per-site state. It is keyed by guest pc and survives
// both full flushes and the targeted re-translations tier changes trigger:
// the learned tier and the observation record are properties of the guest
// site, while the slot and the shadow site's address track the current
// translation.
type adaptSite struct {
	tier   adaptTier
	stats  *profile.SiteStats
	slot   adaptSlot
	fbSite *core.IBSite // shadow site handed to the promoted tiers
	// tenureMisses counts inline-tier misses in the current translation
	// tenure (reset on flush and tier change); it backs the
	// thrash-promotion rule (hostarch.AdaptiveParams.MissBudget). Cold
	// misses after a flush restart the count, so only sustained
	// in-tenure thrash spends the budget.
	tenureMisses uint64
}

// Adaptive implements per-site mechanism selection with online
// re-translation: each indirect-branch site's emitted lookup sequence is
// chosen from its own observed behaviour, and crossing a threshold
// re-translates the owning fragment in place (core.VM.Invalidate) so the
// site's next execution runs the new sequence. Thresholds and the
// re-translation charge come from the host model (hostarch.AdaptiveParams).
type Adaptive struct {
	cfg    AdaptiveConfig
	params hostarch.AdaptiveParams

	ibtc  *IBTC
	sieve *Sieve

	sites map[uint32]*adaptSite
	list  []*adaptSite // for Flush
	table *profile.SiteTable
}

// NewAdaptive builds an adaptive mechanism. It panics on an invalid
// configuration; validate external input through the registry (Parse).
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	if cfg.Entries == 0 {
		cfg.Entries = 4096
	}
	if err := checkPow2("adaptive", cfg.Entries); err != nil {
		panic(err)
	}
	return &Adaptive{
		cfg:   cfg,
		ibtc:  NewIBTC(IBTCConfig{Entries: cfg.Entries}),
		sieve: NewSieve(SieveConfig{Buckets: cfg.Entries}),
		sites: make(map[uint32]*adaptSite),
	}
}

// Name implements core.IBHandler.
func (c *Adaptive) Name() string { return fmt.Sprintf("adaptive(%d)", c.cfg.Entries) }

// Config returns the mechanism's configuration.
func (c *Adaptive) Config() AdaptiveConfig { return c.cfg }

// SiteTable exposes the per-site observation records (for reporting).
func (c *Adaptive) SiteTable() *profile.SiteTable { return c.table }

// Init implements core.IBHandler.
func (c *Adaptive) Init(vm *core.VM) {
	c.params = vm.Env.Model.Adaptive
	// Track one target past the megamorphic bar: that answers every
	// threshold comparison the policy makes, with a bounded record.
	c.table = profile.NewSiteTable(c.params.MegaTargets + 1)
	// A handler instance is shared by every VM built from the same parsed
	// Config. Per-site records from an earlier VM hold fragment pointers
	// into that VM's cache (whose epoch numbering restarts, so liveness
	// checks cannot reject them) and tiers learned from a run that no
	// longer exists — start empty.
	c.sites = make(map[uint32]*adaptSite, len(c.sites))
	c.list = c.list[:0]
	c.ibtc.Init(vm)
	c.sieve.Init(vm)
}

// Attach implements core.IBHandler. On a site's first translation it
// builds the per-site record; on every re-translation (tier change, or
// organic retranslation after a flush) it re-binds the existing record, so
// tier memory and observation history persist across translations and the
// steady state allocates nothing.
func (c *Adaptive) Attach(vm *core.VM, site *core.IBSite) {
	s := c.sites[site.GuestPC]
	if s == nil {
		s = &adaptSite{
			stats:  c.table.Obtain(site.GuestPC),
			fbSite: &core.IBSite{GuestPC: site.GuestPC, Kind: site.Kind},
		}
		c.sites[site.GuestPC] = s
		c.list = append(c.list, s)
		c.ibtc.Attach(vm, s.fbSite)
		c.sieve.Attach(vm, s.fbSite)
	}
	// The whole lookup sequence is re-emitted per translation, so the
	// promoted tiers' code sits at the site address itself.
	s.fbSite.HostAddr = site.HostAddr
	site.Data = s
}

// Flush implements core.IBHandler: fragment pointers die with the cache,
// but tiers and observation records persist — a site's learned behaviour
// is a property of the guest, not of one translation.
func (c *Adaptive) Flush(vm *core.VM) {
	for _, s := range c.list {
		s.slot = adaptSlot{}
		s.tenureMisses = 0
	}
	c.ibtc.Flush(vm)
	c.sieve.Flush(vm)
}

// Resolve implements core.IBHandler: dispatch through the site's current
// tier, record the observation, and evaluate the promotion policy.
func (c *Adaptive) Resolve(vm *core.VM, site *core.IBSite, target uint32) (*core.Fragment, error) {
	s := site.Data.(*adaptSite)
	s.stats.Observe(target)

	var (
		f   *core.Fragment
		err error
		hit bool
	)
	switch s.tier {
	case tierInline:
		f, hit, err = c.resolveInline(vm, site, s, target)
		if !hit {
			s.tenureMisses++
		}
	default:
		inner := core.IBHandler(c.ibtc)
		if s.tier == tierSieve {
			inner = c.sieve
		}
		hits0 := vm.Prof.MechHits
		f, err = inner.Resolve(vm, s.fbSite, target)
		hit = vm.Prof.MechHits > hits0
	}
	if err != nil {
		return nil, err
	}
	if hit {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	c.evaluate(vm, site, s)
	return f, nil
}

// resolveInline is the inline tier: one flag-guarded compare against the
// predicted target, a direct jump on hit, translator entry plus slot
// reseed on miss — the cheapest possible sequence while the site stays
// monomorphic.
func (c *Adaptive) resolveInline(vm *core.VM, site *core.IBSite, s *adaptSite, target uint32) (*core.Fragment, bool, error) {
	env := vm.Env
	m := env.Model
	env.IFetch(site.HostAddr)
	env.Charge(m.FlagsSave + m.CompareBranch)
	vm.Prof.InlineProbes++
	if s.slot.valid && s.slot.tag == target && vm.Live(s.slot.frag) {
		vm.Prof.MechHits++
		vm.Prof.InlineHits++
		env.Charge(m.FlagsRestore + m.DirectJump)
		return s.slot.frag, true, nil
	}
	vm.Prof.MechMisses++
	vm.Prof.IBMiss[site.Kind]++
	env.Charge(m.FlagsRestore)
	f, err := vm.EnterTranslator(target)
	if err != nil {
		return nil, false, err
	}
	// The translator patches the new prediction into the compare, and the
	// miss path dispatches through the translator's shared exit jump.
	s.slot = adaptSlot{tag: target, frag: f, valid: true}
	env.Charge(m.TableStore)
	env.IndirectTransfer(translatorDispatchAddr, f.HostAddr)
	return f, false, nil
}

// evaluate applies the promotion state machine after each execution:
//
//	inline --(distinct > PolyTargets, or MissBudget in-tenure misses)--> ibtc
//	ibtc --(distinct > MegaTargets)--> sieve
//	ibtc/sieve --(run of DemoteRun same-target executions)--> inline
//
// No change is considered before PromoteExecs executions, so short-lived
// sites never pay a re-translation. The miss-budget rule exists because
// low polymorphism does not imply inline-friendliness: a site alternating
// between two targets stays at two distinct targets forever while missing
// a single-slot compare on most executions, each miss a full translator
// entry.
func (c *Adaptive) evaluate(vm *core.VM, site *core.IBSite, s *adaptSite) {
	p := c.params
	if s.stats.Execs < p.PromoteExecs {
		return
	}
	switch s.tier {
	case tierInline:
		if s.stats.Distinct() > p.PolyTargets || s.tenureMisses >= p.MissBudget {
			c.retarget(vm, site, s, tierIBTC, true)
		}
	case tierIBTC:
		if s.stats.Distinct() > p.MegaTargets {
			c.retarget(vm, site, s, tierSieve, true)
		} else if s.stats.Run >= p.DemoteRun {
			c.retarget(vm, site, s, tierInline, false)
		}
	case tierSieve:
		if s.stats.Run >= p.DemoteRun {
			c.retarget(vm, site, s, tierInline, false)
		}
	}
}

// retarget switches the site's tier and re-translates the owning fragment
// in place: the re-translation charge is attributed to the translation
// category, and the owner is retired by a targeted invalidation so its
// next execution re-emits the block with the new lookup sequence. Shadow
// sites (adaptive composed as another mechanism's fallback) have no owner;
// the tier still changes, without a re-translation.
func (c *Adaptive) retarget(vm *core.VM, site *core.IBSite, s *adaptSite, tier adaptTier, promote bool) {
	s.tier = tier
	s.slot = adaptSlot{}
	s.stats.Run = 0
	s.tenureMisses = 0
	if promote {
		vm.Prof.AdaptPromotions++
	} else {
		vm.Prof.AdaptDemotions++
		// Forget stale polymorphism evidence: the demoted site re-learns
		// its degree from current behaviour, so a single historical phase
		// change cannot re-promote it forever.
		s.stats.ResetTargets()
		// Seed the inline compare from the run that triggered demotion.
		if f := vm.Lookup(s.stats.LastTarget()); f != nil {
			s.slot = adaptSlot{tag: s.stats.LastTarget(), frag: f, valid: true}
		}
	}
	vm.Env.Charge(int(c.params.RetransCycles))
	vm.Prof.CyclesTrans += c.params.RetransCycles
	if owner := site.Owner(); owner != nil && vm.Invalidate(owner) {
		vm.Prof.AdaptRetrans++
	}
}
